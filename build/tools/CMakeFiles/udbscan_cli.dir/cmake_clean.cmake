file(REMOVE_RECURSE
  "CMakeFiles/udbscan_cli.dir/udbscan_cli.cpp.o"
  "CMakeFiles/udbscan_cli.dir/udbscan_cli.cpp.o.d"
  "udbscan"
  "udbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udbscan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
