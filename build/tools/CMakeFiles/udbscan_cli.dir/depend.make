# Empty dependencies file for udbscan_cli.
# This may be replaced when dependencies are built.
