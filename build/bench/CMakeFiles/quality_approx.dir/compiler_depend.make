# Empty compiler generated dependencies file for quality_approx.
# This may be replaced when dependencies are built.
