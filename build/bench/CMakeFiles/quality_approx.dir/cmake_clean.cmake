file(REMOVE_RECURSE
  "CMakeFiles/quality_approx.dir/quality_approx.cpp.o"
  "CMakeFiles/quality_approx.dir/quality_approx.cpp.o.d"
  "quality_approx"
  "quality_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
