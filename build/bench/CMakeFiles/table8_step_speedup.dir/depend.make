# Empty dependencies file for table8_step_speedup.
# This may be replaced when dependencies are built.
