file(REMOVE_RECURSE
  "CMakeFiles/table8_step_speedup.dir/table8_step_speedup.cpp.o"
  "CMakeFiles/table8_step_speedup.dir/table8_step_speedup.cpp.o.d"
  "table8_step_speedup"
  "table8_step_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_step_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
