file(REMOVE_RECURSE
  "CMakeFiles/table2_sequential.dir/table2_sequential.cpp.o"
  "CMakeFiles/table2_sequential.dir/table2_sequential.cpp.o.d"
  "table2_sequential"
  "table2_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
