# Empty compiler generated dependencies file for table2_sequential.
# This may be replaced when dependencies are built.
