file(REMOVE_RECURSE
  "CMakeFiles/table6_core_scaling.dir/table6_core_scaling.cpp.o"
  "CMakeFiles/table6_core_scaling.dir/table6_core_scaling.cpp.o.d"
  "table6_core_scaling"
  "table6_core_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
