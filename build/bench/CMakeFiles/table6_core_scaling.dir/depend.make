# Empty dependencies file for table6_core_scaling.
# This may be replaced when dependencies are built.
