# Empty dependencies file for ext_multicore.
# This may be replaced when dependencies are built.
