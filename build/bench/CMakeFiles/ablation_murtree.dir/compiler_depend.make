# Empty compiler generated dependencies file for ablation_murtree.
# This may be replaced when dependencies are built.
