file(REMOVE_RECURSE
  "CMakeFiles/ablation_murtree.dir/ablation_murtree.cpp.o"
  "CMakeFiles/ablation_murtree.dir/ablation_murtree.cpp.o.d"
  "ablation_murtree"
  "ablation_murtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_murtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
