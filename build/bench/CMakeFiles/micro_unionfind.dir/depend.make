# Empty dependencies file for micro_unionfind.
# This may be replaced when dependencies are built.
