file(REMOVE_RECURSE
  "CMakeFiles/micro_unionfind.dir/micro_unionfind.cpp.o"
  "CMakeFiles/micro_unionfind.dir/micro_unionfind.cpp.o.d"
  "micro_unionfind"
  "micro_unionfind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_unionfind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
