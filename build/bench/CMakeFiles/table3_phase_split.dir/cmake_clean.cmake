file(REMOVE_RECURSE
  "CMakeFiles/table3_phase_split.dir/table3_phase_split.cpp.o"
  "CMakeFiles/table3_phase_split.dir/table3_phase_split.cpp.o.d"
  "table3_phase_split"
  "table3_phase_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_phase_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
