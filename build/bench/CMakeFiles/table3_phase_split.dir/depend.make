# Empty dependencies file for table3_phase_split.
# This may be replaced when dependencies are built.
