file(REMOVE_RECURSE
  "CMakeFiles/table7_dist_phase_split.dir/table7_dist_phase_split.cpp.o"
  "CMakeFiles/table7_dist_phase_split.dir/table7_dist_phase_split.cpp.o.d"
  "table7_dist_phase_split"
  "table7_dist_phase_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_dist_phase_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
