# Empty compiler generated dependencies file for table7_dist_phase_split.
# This may be replaced when dependencies are built.
