# Empty dependencies file for table5_distributed.
# This may be replaced when dependencies are built.
