file(REMOVE_RECURSE
  "CMakeFiles/table5_distributed.dir/table5_distributed.cpp.o"
  "CMakeFiles/table5_distributed.dir/table5_distributed.cpp.o.d"
  "table5_distributed"
  "table5_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
