# Empty compiler generated dependencies file for udbscan.
# This may be replaced when dependencies are built.
