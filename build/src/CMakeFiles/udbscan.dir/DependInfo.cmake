
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/brute_dbscan.cpp" "src/CMakeFiles/udbscan.dir/baselines/brute_dbscan.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/baselines/brute_dbscan.cpp.o.d"
  "/root/repo/src/baselines/g_dbscan.cpp" "src/CMakeFiles/udbscan.dir/baselines/g_dbscan.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/baselines/g_dbscan.cpp.o.d"
  "/root/repo/src/baselines/grid_dbscan.cpp" "src/CMakeFiles/udbscan.dir/baselines/grid_dbscan.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/baselines/grid_dbscan.cpp.o.d"
  "/root/repo/src/baselines/qi_dbscan.cpp" "src/CMakeFiles/udbscan.dir/baselines/qi_dbscan.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/baselines/qi_dbscan.cpp.o.d"
  "/root/repo/src/baselines/r_dbscan.cpp" "src/CMakeFiles/udbscan.dir/baselines/r_dbscan.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/baselines/r_dbscan.cpp.o.d"
  "/root/repo/src/baselines/sampled_dbscan.cpp" "src/CMakeFiles/udbscan.dir/baselines/sampled_dbscan.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/baselines/sampled_dbscan.cpp.o.d"
  "/root/repo/src/common/cli.cpp" "src/CMakeFiles/udbscan.dir/common/cli.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/common/cli.cpp.o.d"
  "/root/repo/src/common/dataset.cpp" "src/CMakeFiles/udbscan.dir/common/dataset.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/common/dataset.cpp.o.d"
  "/root/repo/src/common/io.cpp" "src/CMakeFiles/udbscan.dir/common/io.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/common/io.cpp.o.d"
  "/root/repo/src/common/sysinfo.cpp" "src/CMakeFiles/udbscan.dir/common/sysinfo.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/common/sysinfo.cpp.o.d"
  "/root/repo/src/core/kdist.cpp" "src/CMakeFiles/udbscan.dir/core/kdist.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/core/kdist.cpp.o.d"
  "/root/repo/src/core/microcluster.cpp" "src/CMakeFiles/udbscan.dir/core/microcluster.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/core/microcluster.cpp.o.d"
  "/root/repo/src/core/mudbscan.cpp" "src/CMakeFiles/udbscan.dir/core/mudbscan.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/core/mudbscan.cpp.o.d"
  "/root/repo/src/core/murtree.cpp" "src/CMakeFiles/udbscan.dir/core/murtree.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/core/murtree.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/CMakeFiles/udbscan.dir/core/streaming.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/core/streaming.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/CMakeFiles/udbscan.dir/data/generators.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/data/generators.cpp.o.d"
  "/root/repo/src/data/named.cpp" "src/CMakeFiles/udbscan.dir/data/named.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/data/named.cpp.o.d"
  "/root/repo/src/dist/halo.cpp" "src/CMakeFiles/udbscan.dir/dist/halo.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/dist/halo.cpp.o.d"
  "/root/repo/src/dist/hpdbscan_d.cpp" "src/CMakeFiles/udbscan.dir/dist/hpdbscan_d.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/dist/hpdbscan_d.cpp.o.d"
  "/root/repo/src/dist/kd_partition.cpp" "src/CMakeFiles/udbscan.dir/dist/kd_partition.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/dist/kd_partition.cpp.o.d"
  "/root/repo/src/dist/merge.cpp" "src/CMakeFiles/udbscan.dir/dist/merge.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/dist/merge.cpp.o.d"
  "/root/repo/src/dist/mudbscan_d.cpp" "src/CMakeFiles/udbscan.dir/dist/mudbscan_d.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/dist/mudbscan_d.cpp.o.d"
  "/root/repo/src/dist/pdsdbscan_d.cpp" "src/CMakeFiles/udbscan.dir/dist/pdsdbscan_d.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/dist/pdsdbscan_d.cpp.o.d"
  "/root/repo/src/index/grid.cpp" "src/CMakeFiles/udbscan.dir/index/grid.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/index/grid.cpp.o.d"
  "/root/repo/src/index/kdtree.cpp" "src/CMakeFiles/udbscan.dir/index/kdtree.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/index/kdtree.cpp.o.d"
  "/root/repo/src/index/rtree.cpp" "src/CMakeFiles/udbscan.dir/index/rtree.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/index/rtree.cpp.o.d"
  "/root/repo/src/metrics/ari.cpp" "src/CMakeFiles/udbscan.dir/metrics/ari.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/metrics/ari.cpp.o.d"
  "/root/repo/src/metrics/exactness.cpp" "src/CMakeFiles/udbscan.dir/metrics/exactness.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/metrics/exactness.cpp.o.d"
  "/root/repo/src/metrics/verify.cpp" "src/CMakeFiles/udbscan.dir/metrics/verify.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/metrics/verify.cpp.o.d"
  "/root/repo/src/mpi/minimpi.cpp" "src/CMakeFiles/udbscan.dir/mpi/minimpi.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/mpi/minimpi.cpp.o.d"
  "/root/repo/src/unionfind/union_find.cpp" "src/CMakeFiles/udbscan.dir/unionfind/union_find.cpp.o" "gcc" "src/CMakeFiles/udbscan.dir/unionfind/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
