file(REMOVE_RECURSE
  "libudbscan.a"
)
