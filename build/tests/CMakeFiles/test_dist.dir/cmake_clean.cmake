file(REMOVE_RECURSE
  "CMakeFiles/test_dist.dir/dist/test_distributed.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_distributed.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_driver_common.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_driver_common.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_extensions.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_extensions.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_halo.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_halo.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_kd_partition.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_kd_partition.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_merge_protocol.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_merge_protocol.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_merge_strategies.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_merge_strategies.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/test_named_datasets.cpp.o"
  "CMakeFiles/test_dist.dir/dist/test_named_datasets.cpp.o.d"
  "test_dist"
  "test_dist.pdb"
  "test_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
