
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/test_distributed.cpp" "tests/CMakeFiles/test_dist.dir/dist/test_distributed.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/test_distributed.cpp.o.d"
  "/root/repo/tests/dist/test_driver_common.cpp" "tests/CMakeFiles/test_dist.dir/dist/test_driver_common.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/test_driver_common.cpp.o.d"
  "/root/repo/tests/dist/test_extensions.cpp" "tests/CMakeFiles/test_dist.dir/dist/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/test_extensions.cpp.o.d"
  "/root/repo/tests/dist/test_halo.cpp" "tests/CMakeFiles/test_dist.dir/dist/test_halo.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/test_halo.cpp.o.d"
  "/root/repo/tests/dist/test_kd_partition.cpp" "tests/CMakeFiles/test_dist.dir/dist/test_kd_partition.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/test_kd_partition.cpp.o.d"
  "/root/repo/tests/dist/test_merge_protocol.cpp" "tests/CMakeFiles/test_dist.dir/dist/test_merge_protocol.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/test_merge_protocol.cpp.o.d"
  "/root/repo/tests/dist/test_merge_strategies.cpp" "tests/CMakeFiles/test_dist.dir/dist/test_merge_strategies.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/test_merge_strategies.cpp.o.d"
  "/root/repo/tests/dist/test_named_datasets.cpp" "tests/CMakeFiles/test_dist.dir/dist/test_named_datasets.cpp.o" "gcc" "tests/CMakeFiles/test_dist.dir/dist/test_named_datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/udbscan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
