file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_exactness_property.cpp.o"
  "CMakeFiles/test_core.dir/core/test_exactness_property.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_kdist.cpp.o"
  "CMakeFiles/test_core.dir/core/test_kdist.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mudbscan.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mudbscan.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_murtree.cpp.o"
  "CMakeFiles/test_core.dir/core/test_murtree.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_streaming.cpp.o"
  "CMakeFiles/test_core.dir/core/test_streaming.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
