
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_exactness_property.cpp" "tests/CMakeFiles/test_core.dir/core/test_exactness_property.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_exactness_property.cpp.o.d"
  "/root/repo/tests/core/test_kdist.cpp" "tests/CMakeFiles/test_core.dir/core/test_kdist.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_kdist.cpp.o.d"
  "/root/repo/tests/core/test_mudbscan.cpp" "tests/CMakeFiles/test_core.dir/core/test_mudbscan.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mudbscan.cpp.o.d"
  "/root/repo/tests/core/test_murtree.cpp" "tests/CMakeFiles/test_core.dir/core/test_murtree.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_murtree.cpp.o.d"
  "/root/repo/tests/core/test_streaming.cpp" "tests/CMakeFiles/test_core.dir/core/test_streaming.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/udbscan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
