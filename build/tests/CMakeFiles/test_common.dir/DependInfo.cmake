
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_box.cpp" "tests/CMakeFiles/test_common.dir/common/test_box.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_box.cpp.o.d"
  "/root/repo/tests/common/test_cli.cpp" "tests/CMakeFiles/test_common.dir/common/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_cli.cpp.o.d"
  "/root/repo/tests/common/test_dataset.cpp" "tests/CMakeFiles/test_common.dir/common/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_dataset.cpp.o.d"
  "/root/repo/tests/common/test_distance.cpp" "tests/CMakeFiles/test_common.dir/common/test_distance.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_distance.cpp.o.d"
  "/root/repo/tests/common/test_io.cpp" "tests/CMakeFiles/test_common.dir/common/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_io.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_sysinfo_timer.cpp" "tests/CMakeFiles/test_common.dir/common/test_sysinfo_timer.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_sysinfo_timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/udbscan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
