file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_box.cpp.o"
  "CMakeFiles/test_common.dir/common/test_box.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_cli.cpp.o"
  "CMakeFiles/test_common.dir/common/test_cli.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_dataset.cpp.o"
  "CMakeFiles/test_common.dir/common/test_dataset.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_distance.cpp.o"
  "CMakeFiles/test_common.dir/common/test_distance.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_io.cpp.o"
  "CMakeFiles/test_common.dir/common/test_io.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_sysinfo_timer.cpp.o"
  "CMakeFiles/test_common.dir/common/test_sysinfo_timer.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
