file(REMOVE_RECURSE
  "CMakeFiles/test_index.dir/index/test_grid.cpp.o"
  "CMakeFiles/test_index.dir/index/test_grid.cpp.o.d"
  "CMakeFiles/test_index.dir/index/test_kdtree.cpp.o"
  "CMakeFiles/test_index.dir/index/test_kdtree.cpp.o.d"
  "CMakeFiles/test_index.dir/index/test_rtree.cpp.o"
  "CMakeFiles/test_index.dir/index/test_rtree.cpp.o.d"
  "CMakeFiles/test_index.dir/index/test_rtree_knn.cpp.o"
  "CMakeFiles/test_index.dir/index/test_rtree_knn.cpp.o.d"
  "test_index"
  "test_index.pdb"
  "test_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
