file(REMOVE_RECURSE
  "CMakeFiles/test_unionfind.dir/unionfind/test_union_find.cpp.o"
  "CMakeFiles/test_unionfind.dir/unionfind/test_union_find.cpp.o.d"
  "test_unionfind"
  "test_unionfind.pdb"
  "test_unionfind[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unionfind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
