# Empty dependencies file for test_unionfind.
# This may be replaced when dependencies are built.
