# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_unionfind[1]_include.cmake")
include("/root/repo/build/tests/test_index[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
add_test(smoke_quickstart "/root/repo/build/examples/quickstart" "--n" "500")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;59;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_galaxy "/root/repo/build/examples/galaxy_clustering" "--n" "3000")
set_tests_properties(smoke_galaxy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;60;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_roadnet "/root/repo/build/examples/road_network" "--n" "3000")
set_tests_properties(smoke_roadnet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_distributed "/root/repo/build/examples/distributed_demo" "--n" "3000" "--ranks" "1,3")
set_tests_properties(smoke_distributed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;62;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_make_dataset "/root/repo/build/tools/make_dataset" "--gen" "blobs" "--n" "500" "--dim" "2" "--out" "/root/repo/build/smoke_blobs.csv")
set_tests_properties(smoke_make_dataset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;63;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_udbscan_cli "/root/repo/build/tools/udbscan" "--input" "/root/repo/build/smoke_blobs.csv" "--eps" "3" "--minpts" "5")
set_tests_properties(smoke_udbscan_cli PROPERTIES  DEPENDS "smoke_make_dataset" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;66;add_test;/root/repo/tests/CMakeLists.txt;0;")
