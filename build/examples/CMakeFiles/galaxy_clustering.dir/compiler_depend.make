# Empty compiler generated dependencies file for galaxy_clustering.
# This may be replaced when dependencies are built.
