file(REMOVE_RECURSE
  "CMakeFiles/galaxy_clustering.dir/galaxy_clustering.cpp.o"
  "CMakeFiles/galaxy_clustering.dir/galaxy_clustering.cpp.o.d"
  "galaxy_clustering"
  "galaxy_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galaxy_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
