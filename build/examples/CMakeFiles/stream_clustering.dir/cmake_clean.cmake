file(REMOVE_RECURSE
  "CMakeFiles/stream_clustering.dir/stream_clustering.cpp.o"
  "CMakeFiles/stream_clustering.dir/stream_clustering.cpp.o.d"
  "stream_clustering"
  "stream_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
