# Empty compiler generated dependencies file for stream_clustering.
# This may be replaced when dependencies are built.
