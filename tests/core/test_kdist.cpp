#include "core/kdist.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/brute_dbscan.hpp"
#include "common/distance.hpp"
#include "data/generators.hpp"

namespace udb {
namespace {

TEST(KDist, RejectsZeroK) {
  Dataset ds(1, {0.0});
  EXPECT_THROW(kdist_graph(ds, 0), std::invalid_argument);
}

TEST(KDist, EmptyDataset) {
  Dataset ds = Dataset::empty(2);
  EXPECT_TRUE(kdist_graph(ds, 4).empty());
  EXPECT_EQ(suggest_eps(ds, 4), 0.0);
}

TEST(KDist, SortedDescending) {
  Dataset ds = gen_blobs(500, 3, 4, 60.0, 3.0, 0.1, 3);
  const auto curve = kdist_graph(ds, 4);
  ASSERT_EQ(curve.size(), ds.size());
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i - 1], curve[i]);
}

TEST(KDist, MatchesBruteForceValues) {
  Dataset ds = gen_uniform(150, 2, 0.0, 10.0, 5);
  const std::size_t k = 3;
  const auto curve = kdist_graph(ds, k);

  // Brute: per point, k-th smallest distance to another point.
  std::vector<double> want;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    std::vector<double> d;
    for (std::size_t j = 0; j < ds.size(); ++j) {
      if (i == j) continue;
      d.push_back(dist(ds.ptr(static_cast<PointId>(i)),
                       ds.ptr(static_cast<PointId>(j)), ds.dim()));
    }
    std::sort(d.begin(), d.end());
    want.push_back(d[k - 1]);
  }
  std::sort(want.rbegin(), want.rend());
  ASSERT_EQ(curve.size(), want.size());
  for (std::size_t i = 0; i < curve.size(); ++i)
    EXPECT_NEAR(curve[i], want[i], 1e-12);
}

TEST(KDist, SuggestedEpsSeparatesBlobNoiseRegimes) {
  // Dense blobs + sparse noise: the knee of the 4-dist curve should land
  // between the intra-blob spacing and the noise spacing, and DBSCAN with
  // the suggested eps should recover roughly the planted clusters.
  Dataset ds = gen_blobs(2000, 2, 4, 200.0, 1.5, 0.05, 7);
  const std::size_t k = 4;
  const double eps = suggest_eps(ds, k);
  EXPECT_GT(eps, 0.0);
  const auto r = brute_dbscan(ds, {eps, static_cast<std::uint32_t>(k + 1)});
  EXPECT_GE(r.num_clusters(), 3u);
  EXPECT_LE(r.num_clusters(), 12u);
  // Most points should be clustered, most planted noise rejected.
  EXPECT_GT(r.num_core(), ds.size() / 2);
}

TEST(KDist, SuggestionWithinCurveRange) {
  Dataset ds = gen_galaxy(800, GalaxyConfig{}, 9);
  const auto curve = kdist_graph(ds, 4);
  const double eps = suggest_eps(ds, 4);
  EXPECT_GE(eps, curve.back());
  EXPECT_LE(eps, curve.front());
}

}  // namespace
}  // namespace udb
