// The tentpole guarantee of the thread-parallel engine: for every thread
// count, the clustering is exact-equal to the sequential engine (same core
// set, same core partition, same noise set) — which is itself exact-equal to
// classical DBSCAN (Theorem 1). Each parallel configuration is run several
// times so racy interleavings get a chance to differ; they must not.

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

struct ParCase {
  const char* tag;
  std::size_t n;
  std::size_t dim;
  double eps;
  std::uint32_t min_pts;
  std::uint64_t seed;
};

void PrintTo(const ParCase& c, std::ostream* os) {
  *os << c.tag << "_n" << c.n << "_d" << c.dim << "_e" << c.eps << "_m"
      << c.min_pts;
}

Dataset make_dataset(const ParCase& c) {
  const std::string tag = c.tag;
  if (tag == "blobs") return gen_blobs(c.n, c.dim, 5, 100.0, 3.0, 0.15, c.seed);
  if (tag == "galaxy") {
    GalaxyConfig cfg;
    cfg.halos = 8;
    cfg.subhalos_per_halo = 5;
    cfg.box = 150.0;
    return gen_galaxy(c.n, cfg, c.seed);
  }
  if (tag == "roadnet") {
    RoadnetConfig cfg;
    cfg.waypoints = 50;
    return gen_roadnet(c.n, cfg, c.seed);
  }
  if (tag == "uniform") return gen_uniform(c.n, c.dim, 0.0, 25.0, c.seed);
  throw std::logic_error("unknown tag");
}

class ParallelExactness : public ::testing::TestWithParam<ParCase> {};

TEST_P(ParallelExactness, EveryThreadCountMatchesSequential) {
  const auto& c = GetParam();
  Dataset ds = make_dataset(c);
  const DbscanParams prm{c.eps, c.min_pts};

  MuDbscanConfig seq_cfg;
  seq_cfg.num_threads = 1;
  MuDbscanStats seq_st;
  const auto seq = mu_dbscan(ds, prm, &seq_st, seq_cfg);

  for (const unsigned nt : {2u, 4u, 8u}) {
    // Repeat: thread interleavings differ run to run, the clustering must
    // not.
    for (int rep = 0; rep < 3; ++rep) {
      MuDbscanConfig cfg;
      cfg.num_threads = nt;
      MuDbscanStats st;
      const auto got = mu_dbscan(ds, prm, &st, cfg);
      const auto rep_cmp = compare_exact(seq, got);
      EXPECT_TRUE(rep_cmp.exact())
          << "threads=" << nt << " rep=" << rep << ": " << rep_cmp.detail;
      // Tree phases are deterministic, so the MC census matches exactly.
      EXPECT_EQ(st.num_mcs, seq_st.num_mcs) << nt;
      EXPECT_EQ(st.dmc, seq_st.dmc) << nt;
      EXPECT_EQ(st.cmc, seq_st.cmc) << nt;
      EXPECT_EQ(st.smc, seq_st.smc) << nt;
      // Promotion races can only save queries relative to an adversarial
      // schedule, never exceed one query per point.
      EXPECT_LE(st.queries_performed, ds.size()) << nt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelExactness,
    ::testing::Values(ParCase{"blobs", 3000, 2, 2.0, 5, 41},
                      ParCase{"blobs", 2500, 3, 2.5, 5, 42},
                      ParCase{"galaxy", 3000, 3, 1.5, 5, 43},
                      ParCase{"roadnet", 2500, 3, 1.0, 4, 44},
                      ParCase{"uniform", 2000, 2, 1.0, 4, 45}));

TEST(ParallelExactnessExtra, ParallelMatchesBruteForce) {
  // Close the loop once against ground truth, not just against the
  // sequential engine.
  Dataset ds = gen_blobs(1200, 2, 4, 80.0, 3.0, 0.2, 77);
  const DbscanParams prm{2.0, 5};
  const auto truth = brute_dbscan(ds, prm);
  MuDbscanConfig cfg;
  cfg.num_threads = 4;
  const auto got = mu_dbscan(ds, prm, nullptr, cfg);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST(ParallelExactnessExtra, TinyAndDegenerateInputs) {
  MuDbscanConfig cfg;
  cfg.num_threads = 8;  // far more threads than points
  const DbscanParams prm{1.0, 3};

  Dataset one = Dataset::empty(2);
  one.push_back(std::vector<double>{0.0, 0.0});
  const auto r1 = mu_dbscan(one, prm, nullptr, cfg);
  EXPECT_EQ(r1.label.size(), 1u);
  EXPECT_EQ(r1.label[0], kNoise);

  Dataset few = gen_uniform(10, 2, 0.0, 100.0, 3);  // all noise, far apart
  const auto r2 = mu_dbscan(few, prm, nullptr, cfg);
  const auto seq2 = mu_dbscan(few, prm);
  EXPECT_TRUE(compare_exact(seq2, r2).exact());

  // Zero noise points: every point core. Exercises the noise CSR invariant
  // (noise_off_ must hold exactly one offset with no noise entries).
  Dataset dense = gen_blobs(200, 2, 1, 5.0, 0.3, 0.0, 9);
  const DbscanParams dense_prm{2.0, 3};
  const auto r3 = mu_dbscan(dense, dense_prm, nullptr, cfg);
  const auto seq3 = mu_dbscan(dense, dense_prm);
  EXPECT_TRUE(compare_exact(seq3, r3).exact());
}

}  // namespace
}  // namespace udb
