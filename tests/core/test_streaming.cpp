// Streaming µDBSCAN: the online/offline split must be exact offline and
// sound online (the guaranteed-core lower bound never exceeds the truth).

#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

TEST(Streaming, RejectsBadParameters) {
  EXPECT_THROW(StreamingMuDbscan(0, {1.0, 5}), std::invalid_argument);
  EXPECT_THROW(StreamingMuDbscan(2, {0.0, 5}), std::invalid_argument);
  EXPECT_THROW(StreamingMuDbscan(2, {1.0, 0}), std::invalid_argument);
}

TEST(Streaming, RejectsWrongDimension) {
  StreamingMuDbscan stream(3, {1.0, 5});
  EXPECT_THROW(stream.insert(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Streaming, EmptyStreamYieldsEmptyResult) {
  StreamingMuDbscan stream(2, {1.0, 5});
  EXPECT_EQ(stream.size(), 0u);
  EXPECT_EQ(stream.result().size(), 0u);
  EXPECT_EQ(stream.guaranteed_core_lower_bound(), 0u);
}

TEST(Streaming, OfflineResultMatchesBatch) {
  Dataset ds = gen_blobs(1500, 3, 4, 80.0, 3.0, 0.15, 3);
  const DbscanParams prm{2.0, 5};
  StreamingMuDbscan stream(3, prm);
  stream.insert_batch(ds);
  const auto& got = stream.result();
  const auto want = mu_dbscan(ds, prm);
  const auto rep = compare_exact(want, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST(Streaming, ExactAfterEveryCheckpoint) {
  // Insert in waves; after each wave the offline result must equal the batch
  // run over the prefix ingested so far.
  Dataset ds = gen_galaxy(1200, GalaxyConfig{}, 7);
  const DbscanParams prm{1.5, 5};
  StreamingMuDbscan stream(3, prm);
  const std::size_t wave = 400;
  for (std::size_t start = 0; start < ds.size(); start += wave) {
    for (std::size_t i = start; i < std::min(ds.size(), start + wave); ++i)
      stream.insert(ds.point(static_cast<PointId>(i)));
    std::vector<PointId> prefix_ids(std::min(ds.size(), start + wave));
    for (std::size_t i = 0; i < prefix_ids.size(); ++i)
      prefix_ids[i] = static_cast<PointId>(i);
    const Dataset prefix = ds.select(prefix_ids);
    const auto want = brute_dbscan(prefix, prm);
    const auto rep = compare_exact(want, stream.result());
    EXPECT_TRUE(rep.exact()) << "after " << prefix.size() << ": " << rep.detail;
  }
}

TEST(Streaming, CacheInvalidatedByInsert) {
  StreamingMuDbscan stream(1, {1.0, 2});
  stream.insert(std::vector<double>{0.0});
  EXPECT_EQ(stream.result().num_noise(), 1u);
  stream.insert(std::vector<double>{0.5});
  // Both points now core (each has 2 neighbors incl. itself).
  EXPECT_EQ(stream.result().num_core(), 2u);
  EXPECT_EQ(stream.result().num_clusters(), 1u);
}

TEST(Streaming, LowerBoundIsSoundAndUseful) {
  Dataset ds = gen_blobs(3000, 2, 3, 30.0, 0.8, 0.1, 11);
  const DbscanParams prm{1.0, 5};
  StreamingMuDbscan stream(2, prm);
  stream.insert_batch(ds);
  const std::size_t bound = stream.guaranteed_core_lower_bound();
  const std::size_t exact = stream.result().num_core();
  EXPECT_LE(bound, exact);          // sound
  EXPECT_GT(bound, exact / 10);     // and not vacuous on dense data
}

TEST(Streaming, LowerBoundMonotoneInIngestion) {
  Dataset ds = gen_blobs(2000, 2, 2, 20.0, 0.6, 0.05, 13);
  StreamingMuDbscan stream(2, {1.0, 5});
  std::size_t prev = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    stream.insert(ds.point(static_cast<PointId>(i)));
    if (i % 250 == 0) {
      const std::size_t bound = stream.guaranteed_core_lower_bound();
      EXPECT_GE(bound, prev);  // adding points never revokes a guarantee
      prev = bound;
    }
  }
}

TEST(Streaming, CrossesChunkBoundaries) {
  // More points than one storage chunk (4096) — pointers into earlier chunks
  // must stay valid.
  Dataset ds = gen_blobs(9000, 2, 3, 50.0, 2.0, 0.1, 17);
  const DbscanParams prm{1.5, 5};
  StreamingMuDbscan stream(2, prm);
  stream.insert_batch(ds);
  EXPECT_EQ(stream.size(), 9000u);
  const auto want = mu_dbscan(ds, prm);
  const auto rep = compare_exact(want, stream.result());
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST(Streaming, McCountTracksStructure) {
  StreamingMuDbscan stream(1, {1.0, 3});
  stream.insert(std::vector<double>{0.0});
  EXPECT_EQ(stream.num_mcs(), 1u);
  stream.insert(std::vector<double>{0.5});  // joins MC(0)
  EXPECT_EQ(stream.num_mcs(), 1u);
  stream.insert(std::vector<double>{5.0});  // founds a new MC
  EXPECT_EQ(stream.num_mcs(), 2u);
}

}  // namespace
}  // namespace udb
