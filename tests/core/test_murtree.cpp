#include "core/murtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/distance.hpp"
#include "data/generators.hpp"

namespace udb {
namespace {

TEST(MuRTree, RejectsNonPositiveEps) {
  Dataset ds(2, {0.0, 0.0});
  EXPECT_THROW(MuRTree(ds, 0.0), std::invalid_argument);
}

TEST(MuRTree, EmptyDatasetHasNoMcs) {
  Dataset ds = Dataset::empty(3);
  MuRTree tree(ds, 1.0);
  EXPECT_EQ(tree.num_mcs(), 0u);
}

TEST(MuRTree, SinglePointFormsSingletonMc) {
  Dataset ds(2, {1.0, 2.0});
  MuRTree tree(ds, 1.0);
  ASSERT_EQ(tree.num_mcs(), 1u);
  EXPECT_EQ(tree.mc(0).center, 0u);
  EXPECT_EQ(tree.mc(0).members.size(), 1u);
  EXPECT_EQ(tree.mc_of_point(0), 0u);
}

TEST(MuRTree, MembershipIsStrictlyWithinEpsOfCenter) {
  // Second point exactly eps from the first: cannot join its MC, and (with
  // the 2eps rule) is deferred, then founds its own MC.
  Dataset ds(1, {0.0, 1.0});
  MuRTree tree(ds, 1.0);
  EXPECT_EQ(tree.num_mcs(), 2u);
  // Just inside eps: joins.
  Dataset ds2(1, {0.0, 0.999});
  MuRTree tree2(ds2, 1.0);
  EXPECT_EQ(tree2.num_mcs(), 1u);
  EXPECT_EQ(tree2.mc(0).members.size(), 2u);
}

TEST(MuRTree, InvariantsOnRealisticData) {
  Dataset ds = gen_blobs(2000, 3, 5, 100.0, 3.0, 0.15, 3);
  MuRTree tree(ds, 2.0);
  tree.check_invariants();
  EXPECT_GT(tree.num_mcs(), 0u);
  EXPECT_LT(tree.num_mcs(), ds.size());
}

TEST(MuRTree, TwoEpsRuleLimitsMcCount) {
  Dataset ds = gen_blobs(3000, 3, 5, 100.0, 3.0, 0.15, 4);
  MuRTree with_rule(ds, 2.0);
  MuRTree::Config cfg;
  cfg.two_eps_rule = false;
  MuRTree without(ds, 2.0, cfg);
  with_rule.check_invariants();
  without.check_invariants();
  // The deferral rule exists to limit the MC count (Section IV-B1). It is a
  // heuristic: on some data it wins big, on some it breaks even or loses a
  // percent or two (a deferred point re-inserted later can found an MC that
  // immediate creation would have shared). Assert the weak guarantee.
  EXPECT_LT(static_cast<double>(with_rule.num_mcs()),
            static_cast<double>(without.num_mcs()) * 1.15);
  EXPECT_GT(with_rule.deferred_points(), 0u);
  EXPECT_EQ(without.deferred_points(), 0u);
}

TEST(MuRTree, InnerCircleCountsAreStrictHalfEps) {
  // Centre at 0; members at 0.49 (inside IC), 0.5 (exactly eps/2 — excluded
  // by the strict rule), 0.9 (outside IC).
  Dataset ds(1, {0.0, 0.49, 0.5, 0.9});
  MuRTree tree(ds, 1.0);
  tree.compute_inner_circles();
  ASSERT_EQ(tree.num_mcs(), 1u);
  EXPECT_EQ(tree.mc(0).ic_count, 1u);
}

TEST(MuRTree, ReachableListsIncludeSelf) {
  Dataset ds = gen_blobs(500, 2, 3, 50.0, 2.0, 0.1, 5);
  MuRTree tree(ds, 2.0);
  tree.compute_reachable();
  for (McId z = 0; z < tree.num_mcs(); ++z) {
    const auto& reach = tree.mc(z).reach;
    EXPECT_NE(std::find(reach.begin(), reach.end(), z), reach.end());
  }
}

TEST(MuRTree, ReachableListsMatchBruteForce3Eps) {
  Dataset ds = gen_blobs(800, 3, 4, 60.0, 3.0, 0.2, 6);
  const double eps = 2.0;
  MuRTree tree(ds, eps);
  tree.compute_reachable();
  const double r2 = 9.0 * eps * eps;
  for (McId z = 0; z < tree.num_mcs(); ++z) {
    std::vector<McId> want;
    const double* cz = ds.ptr(tree.mc(z).center);
    for (McId o = 0; o < tree.num_mcs(); ++o) {
      if (sq_dist(cz, ds.ptr(tree.mc(o).center), ds.dim()) <= r2)
        want.push_back(o);
    }
    std::vector<McId> got = tree.mc(z).reach;
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "MC " << z;
  }
}

TEST(MuRTree, NeighborhoodQueryMatchesLinearScan) {
  Dataset ds = gen_galaxy(1500, GalaxyConfig{}, 7);
  const double eps = 1.5;
  MuRTree tree(ds, eps);
  tree.compute_reachable();
  const double eps2 = eps * eps;
  for (PointId p = 0; p < ds.size(); p += 37) {
    std::vector<std::pair<PointId, double>> got;
    tree.query_neighborhood(p, eps, got);
    std::vector<PointId> got_ids;
    for (const auto& [id, d2] : got) {
      got_ids.push_back(id);
      EXPECT_LT(d2, eps2);
      EXPECT_NEAR(d2, sq_dist(ds.ptr(p), ds.ptr(id), ds.dim()), 1e-12);
    }
    std::vector<PointId> want;
    for (PointId q = 0; q < ds.size(); ++q)
      if (sq_dist(ds.ptr(p), ds.ptr(q), ds.dim()) < eps2) want.push_back(q);
    std::sort(got_ids.begin(), got_ids.end());
    EXPECT_EQ(got_ids, want) << "point " << p;
  }
}

TEST(MuRTree, DuplicateHeavyDataset) {
  std::vector<double> coords;
  for (int i = 0; i < 200; ++i) {
    coords.push_back(static_cast<double>(i % 4));
    coords.push_back(0.0);
  }
  Dataset ds(2, std::move(coords));
  MuRTree tree(ds, 0.5);
  tree.check_invariants();
  EXPECT_EQ(tree.num_mcs(), 4u);
}

TEST(MuRTree, MbrFiltrationSkipsUnreachableAuxTrees) {
  // The Section IV-B2 filtration: of an MC's reachable list, only the MCs
  // whose aux MBR intersects the query ball are searched. Querying every
  // point must touch strictly fewer aux trees than the sum of reach-list
  // lengths on spread-out data.
  Dataset ds = gen_blobs(1500, 2, 6, 80.0, 2.0, 0.1, 21);
  MuRTree tree(ds, 1.5);
  tree.compute_reachable();
  std::uint64_t reach_total = 0;
  for (McId z = 0; z < tree.num_mcs(); ++z)
    reach_total += tree.mc(z).reach.size();
  std::vector<std::pair<PointId, double>> out;
  for (PointId p = 0; p < ds.size(); p += 3) {
    out.clear();
    tree.query_neighborhood(p, 1.5, out);
  }
  // Average searched per query must be below the average reach-list length.
  const double queries = static_cast<double>(ds.size()) / 3.0;
  const double avg_searched =
      static_cast<double>(tree.aux_trees_searched()) / queries;
  const double avg_reach =
      static_cast<double>(reach_total) / static_cast<double>(tree.num_mcs());
  EXPECT_LT(avg_searched, avg_reach);
}

TEST(MuRTree, AuxTreesSearchedCounterAdvances) {
  Dataset ds = gen_blobs(600, 2, 3, 40.0, 2.0, 0.1, 8);
  MuRTree tree(ds, 1.5);
  tree.compute_reachable();
  std::vector<std::pair<PointId, double>> out;
  tree.query_neighborhood(0, 1.5, out);
  EXPECT_GT(tree.aux_trees_searched(), 0u);
}

}  // namespace
}  // namespace udb
