// run_guarded (core/guarded_run.*): the governable front door. Covers the
// acceptance contract of the run-guard runtime — clean Status on deadline /
// budget exhaustion with accounting drained, sampled fallback flagged
// approximate under --on-budget degrade, cancellation that never degrades —
// at multiple thread counts and through the distributed driver.

#include "core/guarded_run.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "baselines/brute_dbscan.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

Dataset small_blobs() { return gen_blobs(1500, 2, 3, 100.0, 3.0, 0.05, 7); }
DbscanParams small_params() { return DbscanParams{2.0, 5}; }

TEST(GuardedRun, RejectsBadArguments) {
  const Dataset ds = small_blobs();
  EXPECT_EQ(run_guarded(ds, DbscanParams{0.0, 5}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run_guarded(ds, DbscanParams{1.0, 0}).status().code(),
            StatusCode::kInvalidArgument);
  GuardedRunOptions opts;
  opts.ranks = 0;
  EXPECT_EQ(run_guarded(ds, small_params(), opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = {};
  opts.on_budget = OnBudget::kDegrade;
  opts.degrade_rho = 0.0;
  EXPECT_EQ(run_guarded(ds, small_params(), opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GuardedRun, UnlimitedRunIsExact) {
  const Dataset ds = small_blobs();
  const DbscanParams params = small_params();
  const ClusteringResult ref = brute_dbscan(ds, params);
  for (unsigned nt : {1u, 4u}) {
    GuardedRunOptions opts;
    opts.mu.num_threads = nt;
    auto run = run_guarded(ds, params, opts);
    ASSERT_TRUE(run.ok()) << run.status().to_string();
    EXPECT_FALSE(run->approximate);
    const auto rep = compare_exact(ref, run->result);
    EXPECT_TRUE(rep.exact()) << "threads=" << nt << ": " << rep.detail;
    EXPECT_GT(run->guard_checkpoints, 0u);
  }
}

TEST(GuardedRun, DistributedRunIsExactAndGoverned) {
  const Dataset ds = small_blobs();
  const DbscanParams params = small_params();
  GuardedRunOptions opts;
  opts.ranks = 3;
  opts.limits.memory_budget_bytes = std::size_t{1} << 30;  // roomy
  auto run = run_guarded(ds, params, opts);
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  const auto rep = compare_exact(brute_dbscan(ds, params), run->result);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  EXPECT_GT(run->guard_checkpoints, 0u);  // rank engines share the guard
  EXPECT_GT(run->mem_peak_bytes, vector_bytes(ds.raw()));
}

TEST(GuardedRun, BudgetExhaustionFailsCleanly) {
  const Dataset ds = small_blobs();
  for (unsigned nt : {1u, 2u}) {
    GuardedRunOptions opts;
    opts.mu.num_threads = nt;
    // Enough for the dataset (1500*2*8 = 24 KB) but not for the index.
    opts.limits.memory_budget_bytes = 32 * 1024;
    RunGuard guard;
    auto run = run_guarded(ds, small_params(), opts, &guard);
    ASSERT_FALSE(run.ok()) << "threads=" << nt;
    EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
    // Every charge drained on unwind: the accounting (and with it the heap,
    // checked by the sanitizer job) is clean after a failed run.
    EXPECT_EQ(guard.bytes_in_use(), 0u);
  }
}

TEST(GuardedRun, BudgetSmallerThanDatasetNamesTheDataset) {
  const Dataset ds = small_blobs();
  GuardedRunOptions opts;
  opts.limits.memory_budget_bytes = 1024;
  auto run = run_guarded(ds, small_params(), opts);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(run.status().message().find("dataset"), std::string::npos);
}

TEST(GuardedRun, DeadlineExhaustionFailsCleanly) {
  const Dataset ds = small_blobs();
  GuardedRunOptions opts;
  opts.limits.deadline_seconds = 1e-9;  // trips at the first checkpoint
  RunGuard guard;
  auto run = run_guarded(ds, small_params(), opts, &guard);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(guard.bytes_in_use(), 0u);
}

TEST(GuardedRun, DegradeFallsBackToSampledAndFlagsIt) {
  const Dataset ds = small_blobs();
  for (unsigned nt : {1u, 2u}) {
    GuardedRunOptions opts;
    opts.mu.num_threads = nt;
    opts.limits.memory_budget_bytes = 32 * 1024;  // exact run cannot fit
    opts.on_budget = OnBudget::kDegrade;
    opts.degrade_rho = 0.5;
    auto run = run_guarded(ds, small_params(), opts);
    ASSERT_TRUE(run.ok()) << run.status().to_string();
    EXPECT_TRUE(run->approximate);
    EXPECT_DOUBLE_EQ(run->sample_rho, 0.5);
    EXPECT_GT(run->sample_size, 0u);
    EXPECT_EQ(run->degrade_reason.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(run->result.size(), ds.size());
  }
}

TEST(GuardedRun, DegradeAppliesToDeadlineToo) {
  const Dataset ds = small_blobs();
  GuardedRunOptions opts;
  opts.limits.deadline_seconds = 1e-9;
  opts.on_budget = OnBudget::kDegrade;
  auto run = run_guarded(ds, small_params(), opts);
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  EXPECT_TRUE(run->approximate);
  EXPECT_EQ(run->degrade_reason.code(), StatusCode::kDeadlineExceeded);
}

TEST(GuardedRun, CancellationNeverDegrades) {
  const Dataset ds = small_blobs();
  for (unsigned nt : {1u, 4u}) {
    GuardedRunOptions opts;
    opts.mu.num_threads = nt;
    opts.on_budget = OnBudget::kDegrade;  // must NOT kick in for a cancel
    RunGuard guard;
    guard.request_cancel();
    auto run = run_guarded(ds, small_params(), opts, &guard);
    ASSERT_FALSE(run.ok()) << "threads=" << nt;
    EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
    EXPECT_EQ(guard.bytes_in_use(), 0u);
  }
}

TEST(GuardedRun, CancellationFromAnotherThreadStopsParallelRun) {
  // A watcher thread trips the token while the 4-thread engine runs; the
  // engine must come back CANCELLED (it observes the token at the next
  // chunk checkpoint — the per-chunk latency bound is asserted directly in
  // test_runguard.cpp).
  const Dataset ds = gen_blobs(20000, 3, 5, 100.0, 3.0, 0.05, 11);
  GuardedRunOptions opts;
  opts.mu.num_threads = 4;
  RunGuard guard;
  std::thread watcher([&guard] { guard.request_cancel(); });
  auto run = run_guarded(ds, DbscanParams{2.0, 5}, opts, &guard);
  watcher.join();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(guard.bytes_in_use(), 0u);
}

TEST(GuardedRun, DistributedDeadlineSurfacesCleanStatus) {
  const Dataset ds = small_blobs();
  GuardedRunOptions opts;
  opts.ranks = 3;
  opts.limits.deadline_seconds = 1e-9;
  RunGuard guard;
  auto run = run_guarded(ds, small_params(), opts, &guard);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(guard.bytes_in_use(), 0u);
}

TEST(GuardedRun, DistributedDegradeProducesApproximateResult) {
  const Dataset ds = small_blobs();
  GuardedRunOptions opts;
  opts.ranks = 3;
  opts.limits.deadline_seconds = 1e-9;
  opts.on_budget = OnBudget::kDegrade;
  auto run = run_guarded(ds, small_params(), opts);
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  EXPECT_TRUE(run->approximate);
  EXPECT_EQ(run->result.size(), ds.size());
}

}  // namespace
}  // namespace udb
