// Degenerate-dataset robustness (docs/ROBUSTNESS.md): every engine, at every
// thread count we ship, must survive the pathological inputs a production
// caller will eventually feed it — empty input, a single point, all points
// identical, MinPts larger than n, an eps that spans the whole domain, and
// zero-variance dimensions — and must agree exactly with brute-force DBSCAN
// on each of them.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "baselines/brute_dbscan.hpp"
#include "baselines/g_dbscan.hpp"
#include "baselines/grid_dbscan.hpp"
#include "baselines/r_dbscan.hpp"
#include "core/incremental.hpp"
#include "core/mudbscan.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

struct Engine {
  std::string name;
  std::function<ClusteringResult(const Dataset&, const DbscanParams&)> run;
};

std::vector<Engine> all_engines() {
  std::vector<Engine> engines;
  for (unsigned nt : {1u, 2u, 4u}) {
    engines.push_back(
        {"mudbscan/t" + std::to_string(nt),
         [nt](const Dataset& ds, const DbscanParams& p) {
           MuDbscanConfig cfg;
           cfg.num_threads = nt;
           return mu_dbscan(ds, p, nullptr, cfg);
         }});
  }
  engines.push_back({"rdbscan", [](const Dataset& ds, const DbscanParams& p) {
                       return r_dbscan(ds, p);
                     }});
  engines.push_back({"gdbscan", [](const Dataset& ds, const DbscanParams& p) {
                       return g_dbscan(ds, p);
                     }});
  engines.push_back({"griddbscan",
                     [](const Dataset& ds, const DbscanParams& p) {
                       return grid_dbscan(ds, p);
                     }});
  for (int ranks : {1, 3}) {
    engines.push_back({"mudbscan-d/r" + std::to_string(ranks),
                       [ranks](const Dataset& ds, const DbscanParams& p) {
                         return mudbscan_d(ds, p, ranks);
                       }});
  }
  return engines;
}

void expect_all_engines_match_brute(const Dataset& ds,
                                    const DbscanParams& params,
                                    const std::string& which) {
  const ClusteringResult ref = brute_dbscan(ds, params);
  ASSERT_EQ(ref.size(), ds.size());
  for (const Engine& e : all_engines()) {
    SCOPED_TRACE(which + " via " + e.name);
    ClusteringResult got;
    ASSERT_NO_THROW(got = e.run(ds, params));
    ASSERT_EQ(got.size(), ds.size());
    const ExactnessReport rep = compare_exact(ref, got);
    EXPECT_TRUE(rep.exact()) << rep.detail;
  }
}

TEST(Degenerate, EmptyInput) {
  expect_all_engines_match_brute(Dataset::empty(3), DbscanParams{1.0, 5},
                                 "empty");
}

TEST(Degenerate, SinglePoint) {
  Dataset ds(2, {4.0, 2.0});
  expect_all_engines_match_brute(ds, DbscanParams{1.0, 2}, "single point");
  // min_pts = 1: a lone point is its own core cluster.
  expect_all_engines_match_brute(ds, DbscanParams{1.0, 1},
                                 "single point, minpts 1");
}

TEST(Degenerate, AllDuplicates) {
  std::vector<double> coords;
  for (int i = 0; i < 64; ++i) {
    coords.push_back(3.5);
    coords.push_back(-1.0);
  }
  Dataset ds(2, std::move(coords));
  expect_all_engines_match_brute(ds, DbscanParams{0.5, 4}, "all duplicates");
}

TEST(Degenerate, MinPtsLargerThanN) {
  std::vector<double> coords;
  for (int i = 0; i < 10; ++i) {
    coords.push_back(static_cast<double>(i));
    coords.push_back(0.0);
  }
  Dataset ds(2, std::move(coords));
  expect_all_engines_match_brute(ds, DbscanParams{100.0, 50}, "minpts > n");
}

TEST(Degenerate, EpsSpansTheDomain) {
  // Every point within eps of every other: one all-core cluster, and the
  // reach lists degenerate to all-pairs (the charge-accounting worst case).
  std::vector<double> coords;
  for (int i = 0; i < 40; ++i) {
    coords.push_back(static_cast<double>(i % 7));
    coords.push_back(static_cast<double>(i % 5));
    coords.push_back(static_cast<double>(i % 3));
  }
  Dataset ds(3, std::move(coords));
  expect_all_engines_match_brute(ds, DbscanParams{1e6, 4}, "huge eps");
}

TEST(Degenerate, ZeroVarianceDimensions) {
  // Variation only in dimension 0; dims 1 and 2 are constant, so every MBR
  // is flat and every split on those axes is degenerate.
  std::vector<double> coords;
  for (int i = 0; i < 120; ++i) {
    coords.push_back(static_cast<double>(i / 3));
    coords.push_back(7.0);
    coords.push_back(-2.5);
  }
  Dataset ds(3, std::move(coords));
  expect_all_engines_match_brute(ds, DbscanParams{1.5, 4},
                                 "zero-variance dims");
}

// The incremental engine gets the same degenerate treatment: feed the points
// one at a time, then erase them all again, checking the maintained state
// against the canonicalized batch answer at every boundary that matters.
void expect_incremental_survives(const Dataset& ds, const DbscanParams& params,
                                 const std::string& which) {
  SCOPED_TRACE(which + " via incremental");
  IncrementalMuDbscan eng(ds.dim(), params);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    ASSERT_NO_THROW(eng.insert(ds.point(i)));
  }
  ASSERT_NO_THROW(eng.check_invariants());
  {
    const Dataset surv = eng.survivors();
    const ClusteringResult want =
        canonicalize_clustering(surv, params, mu_dbscan(surv, params));
    EXPECT_EQ(eng.result().label, want.label) << which << ": full set";
  }
  // Tear the set back down (front-to-back, so duplicates keep colliding)
  // and re-check exactness at a few intermediate sizes plus empty.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(eng.erase(static_cast<PointId>(i)));
    const std::size_t left = ds.size() - i - 1;
    if (left % 17 == 0 || left <= 1) {
      ASSERT_NO_THROW(eng.check_invariants());
      const Dataset surv = eng.survivors();
      const ClusteringResult want =
          canonicalize_clustering(surv, params, mu_dbscan(surv, params));
      EXPECT_EQ(eng.result().label, want.label)
          << which << ": " << left << " survivors";
    }
  }
  EXPECT_EQ(eng.size(), 0u);
  EXPECT_EQ(eng.num_mcs(), 0u);
  EXPECT_EQ(eng.num_core(), 0u);
}

TEST(DegenerateIncremental, EmptyInput) {
  IncrementalMuDbscan eng(3, DbscanParams{1.0, 5});
  EXPECT_EQ(eng.size(), 0u);
  EXPECT_TRUE(eng.result().label.empty());
  EXPECT_NO_THROW(eng.check_invariants());
  EXPECT_FALSE(eng.erase(0));  // never-allocated id
  const double probe[3] = {0.0, 0.0, 0.0};
  EXPECT_EQ(eng.erase_equal({probe, 3}), kInvalidPoint);
}

TEST(DegenerateIncremental, SinglePointLifecycle) {
  // minpts 1: a lone point is core; erase drains the engine back to empty.
  IncrementalMuDbscan eng(2, DbscanParams{1.0, 1});
  const double pt[2] = {4.0, 2.0};
  const PointId id = eng.insert({pt, 2});
  EXPECT_EQ(eng.result().label, (std::vector<std::int64_t>{0}));
  EXPECT_EQ(eng.num_core(), 1u);
  ASSERT_TRUE(eng.erase(id));
  EXPECT_FALSE(eng.erase(id));  // double erase
  EXPECT_TRUE(eng.result().label.empty());
  EXPECT_NO_THROW(eng.check_invariants());
}

TEST(DegenerateIncremental, AllDuplicates) {
  std::vector<double> coords;
  for (int i = 0; i < 64; ++i) {
    coords.push_back(3.5);
    coords.push_back(-1.0);
  }
  expect_incremental_survives(Dataset(2, std::move(coords)),
                              DbscanParams{0.5, 4}, "all duplicates");
}

TEST(DegenerateIncremental, MinPtsLargerThanN) {
  std::vector<double> coords;
  for (int i = 0; i < 10; ++i) {
    coords.push_back(static_cast<double>(i));
    coords.push_back(0.0);
  }
  expect_incremental_survives(Dataset(2, std::move(coords)),
                              DbscanParams{100.0, 50}, "minpts > n");
}

TEST(DegenerateIncremental, EpsSpansTheDomain) {
  std::vector<double> coords;
  for (int i = 0; i < 40; ++i) {
    coords.push_back(static_cast<double>(i % 7));
    coords.push_back(static_cast<double>(i % 5));
    coords.push_back(static_cast<double>(i % 3));
  }
  expect_incremental_survives(Dataset(3, std::move(coords)),
                              DbscanParams{1e6, 4}, "huge eps");
}

TEST(DegenerateIncremental, ZeroVarianceDimensions) {
  std::vector<double> coords;
  for (int i = 0; i < 120; ++i) {
    coords.push_back(static_cast<double>(i / 3));
    coords.push_back(7.0);
    coords.push_back(-2.5);
  }
  expect_incremental_survives(Dataset(3, std::move(coords)),
                              DbscanParams{1.5, 4}, "zero-variance dims");
}

TEST(DegenerateIncremental, BlastRadiusCapOfOneStaysExact) {
  // The tightest possible cap forces the global-relabel fallback on nearly
  // every update; exactness must not depend on the cap at all.
  IncrementalMuDbscan::Config cfg;
  cfg.max_touched_mcs_per_update = 1;
  const DbscanParams params{1.5, 4};
  IncrementalMuDbscan eng(2, params, cfg);
  std::vector<double> coords;
  for (int i = 0; i < 60; ++i) {
    coords.push_back(static_cast<double>(i % 12));
    coords.push_back(static_cast<double>(i % 4));
  }
  const Dataset ds(2, std::move(coords));
  for (std::size_t i = 0; i < ds.size(); ++i) eng.insert(ds.point(i));
  for (PointId id = 0; id < 30; ++id) ASSERT_TRUE(eng.erase(id));
  ASSERT_NO_THROW(eng.check_invariants());
  const Dataset surv = eng.survivors();
  const ClusteringResult want =
      canonicalize_clustering(surv, params, mu_dbscan(surv, params));
  EXPECT_EQ(eng.result().label, want.label);
  EXPECT_GT(eng.stats().full_fallbacks, 0u);
}

}  // namespace
}  // namespace udb
