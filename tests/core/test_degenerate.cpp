// Degenerate-dataset robustness (docs/ROBUSTNESS.md): every engine, at every
// thread count we ship, must survive the pathological inputs a production
// caller will eventually feed it — empty input, a single point, all points
// identical, MinPts larger than n, an eps that spans the whole domain, and
// zero-variance dimensions — and must agree exactly with brute-force DBSCAN
// on each of them.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "baselines/brute_dbscan.hpp"
#include "baselines/g_dbscan.hpp"
#include "baselines/grid_dbscan.hpp"
#include "baselines/r_dbscan.hpp"
#include "core/mudbscan.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

struct Engine {
  std::string name;
  std::function<ClusteringResult(const Dataset&, const DbscanParams&)> run;
};

std::vector<Engine> all_engines() {
  std::vector<Engine> engines;
  for (unsigned nt : {1u, 2u, 4u}) {
    engines.push_back(
        {"mudbscan/t" + std::to_string(nt),
         [nt](const Dataset& ds, const DbscanParams& p) {
           MuDbscanConfig cfg;
           cfg.num_threads = nt;
           return mu_dbscan(ds, p, nullptr, cfg);
         }});
  }
  engines.push_back({"rdbscan", [](const Dataset& ds, const DbscanParams& p) {
                       return r_dbscan(ds, p);
                     }});
  engines.push_back({"gdbscan", [](const Dataset& ds, const DbscanParams& p) {
                       return g_dbscan(ds, p);
                     }});
  engines.push_back({"griddbscan",
                     [](const Dataset& ds, const DbscanParams& p) {
                       return grid_dbscan(ds, p);
                     }});
  for (int ranks : {1, 3}) {
    engines.push_back({"mudbscan-d/r" + std::to_string(ranks),
                       [ranks](const Dataset& ds, const DbscanParams& p) {
                         return mudbscan_d(ds, p, ranks);
                       }});
  }
  return engines;
}

void expect_all_engines_match_brute(const Dataset& ds,
                                    const DbscanParams& params,
                                    const std::string& which) {
  const ClusteringResult ref = brute_dbscan(ds, params);
  ASSERT_EQ(ref.size(), ds.size());
  for (const Engine& e : all_engines()) {
    SCOPED_TRACE(which + " via " + e.name);
    ClusteringResult got;
    ASSERT_NO_THROW(got = e.run(ds, params));
    ASSERT_EQ(got.size(), ds.size());
    const ExactnessReport rep = compare_exact(ref, got);
    EXPECT_TRUE(rep.exact()) << rep.detail;
  }
}

TEST(Degenerate, EmptyInput) {
  expect_all_engines_match_brute(Dataset::empty(3), DbscanParams{1.0, 5},
                                 "empty");
}

TEST(Degenerate, SinglePoint) {
  Dataset ds(2, {4.0, 2.0});
  expect_all_engines_match_brute(ds, DbscanParams{1.0, 2}, "single point");
  // min_pts = 1: a lone point is its own core cluster.
  expect_all_engines_match_brute(ds, DbscanParams{1.0, 1},
                                 "single point, minpts 1");
}

TEST(Degenerate, AllDuplicates) {
  std::vector<double> coords;
  for (int i = 0; i < 64; ++i) {
    coords.push_back(3.5);
    coords.push_back(-1.0);
  }
  Dataset ds(2, std::move(coords));
  expect_all_engines_match_brute(ds, DbscanParams{0.5, 4}, "all duplicates");
}

TEST(Degenerate, MinPtsLargerThanN) {
  std::vector<double> coords;
  for (int i = 0; i < 10; ++i) {
    coords.push_back(static_cast<double>(i));
    coords.push_back(0.0);
  }
  Dataset ds(2, std::move(coords));
  expect_all_engines_match_brute(ds, DbscanParams{100.0, 50}, "minpts > n");
}

TEST(Degenerate, EpsSpansTheDomain) {
  // Every point within eps of every other: one all-core cluster, and the
  // reach lists degenerate to all-pairs (the charge-accounting worst case).
  std::vector<double> coords;
  for (int i = 0; i < 40; ++i) {
    coords.push_back(static_cast<double>(i % 7));
    coords.push_back(static_cast<double>(i % 5));
    coords.push_back(static_cast<double>(i % 3));
  }
  Dataset ds(3, std::move(coords));
  expect_all_engines_match_brute(ds, DbscanParams{1e6, 4}, "huge eps");
}

TEST(Degenerate, ZeroVarianceDimensions) {
  // Variation only in dimension 0; dims 1 and 2 are constant, so every MBR
  // is flat and every split on those axes is degenerate.
  std::vector<double> coords;
  for (int i = 0; i < 120; ++i) {
    coords.push_back(static_cast<double>(i / 3));
    coords.push_back(7.0);
    coords.push_back(-2.5);
  }
  Dataset ds(3, std::move(coords));
  expect_all_engines_match_brute(ds, DbscanParams{1.5, 4},
                                 "zero-variance dims");
}

}  // namespace
}  // namespace udb
