#include "core/mudbscan.hpp"

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "core/mudbscan_engine.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

TEST(MuDbscan, RejectsZeroMinPts) {
  Dataset ds(1, {0.0});
  EXPECT_THROW(mu_dbscan(ds, {1.0, 0}), std::invalid_argument);
}

TEST(MuDbscan, EmptyDataset) {
  Dataset ds = Dataset::empty(2);
  const auto r = mu_dbscan(ds, {1.0, 5});
  EXPECT_EQ(r.size(), 0u);
}

TEST(MuDbscan, SinglePointIsNoise) {
  Dataset ds(2, {0.0, 0.0});
  const auto r = mu_dbscan(ds, {1.0, 2});
  EXPECT_EQ(r.num_noise(), 1u);
}

TEST(MuDbscan, SinglePointIsCoreWithMinPtsOne) {
  Dataset ds(2, {0.0, 0.0});
  const auto r = mu_dbscan(ds, {1.0, 1});
  EXPECT_EQ(r.num_core(), 1u);
  EXPECT_EQ(r.num_clusters(), 1u);
}

TEST(MuDbscan, DenseMicroClusterCoresNeedNoQuery) {
  // 10 points tightly packed well inside eps/2 of the first point: the MC
  // centred at point 0 is a DMC, so every IC point (all of them) is tagged
  // wndq-core and the whole set costs zero neighborhood queries.
  std::vector<double> coords;
  for (int i = 0; i < 10; ++i) coords.push_back(0.01 * i);
  Dataset ds(1, std::move(coords));
  MuDbscanStats st;
  const auto r = mu_dbscan(ds, {1.0, 5}, &st);
  EXPECT_EQ(r.num_core(), 10u);
  EXPECT_EQ(r.num_clusters(), 1u);
  EXPECT_EQ(st.dmc, 1u);
  EXPECT_EQ(st.queries_performed, 0u);
  EXPECT_EQ(st.wndq_core_points, 10u);
}

TEST(MuDbscan, CoreMicroClusterMarksOnlyCenter) {
  // 5 points spread between eps/2 and eps of the centre: |IC| = 0 but
  // |MC| = 5 >= MinPts => CMC; only the centre is wndq-core, the rest are
  // queried.
  Dataset ds(1, {0.0, 0.6, 0.7, -0.6, -0.7});
  MuDbscanStats st;
  const auto r = mu_dbscan(ds, {1.0, 5}, &st);
  EXPECT_EQ(st.cmc, 1u);
  EXPECT_EQ(st.dmc, 0u);
  EXPECT_TRUE(r.is_core[0]);
  EXPECT_EQ(st.queries_performed, 4u);  // everyone but the centre
  EXPECT_EQ(r.num_clusters(), 1u);
}

TEST(MuDbscan, SparseMicroClustersYieldNoise) {
  Dataset ds(1, {0.0, 100.0, 200.0});
  MuDbscanStats st;
  const auto r = mu_dbscan(ds, {1.0, 2}, &st);
  EXPECT_EQ(st.smc, 3u);
  EXPECT_EQ(r.num_noise(), 3u);
}

TEST(MuDbscan, QueriesPlusWndqConsistent) {
  Dataset ds = gen_blobs(2000, 3, 5, 100.0, 3.0, 0.15, 17);
  MuDbscanStats st;
  (void)mu_dbscan(ds, {2.0, 5}, &st);
  // Every point either ran its query or was tagged wndq before its turn;
  // dynamic promotion can tag a point after its query, so the sum may
  // exceed n but queries alone never do.
  EXPECT_LE(st.queries_performed, ds.size());
  EXPECT_GE(st.queries_performed + st.wndq_core_points, ds.size());
  EXPECT_GT(st.wndq_core_points, 0u);
  EXPECT_GT(st.num_mcs, 0u);
  EXPECT_EQ(st.dmc + st.cmc + st.smc, st.num_mcs);
}

TEST(MuDbscan, PhaseTimesArePopulated) {
  Dataset ds = gen_blobs(1500, 3, 4, 80.0, 3.0, 0.1, 19);
  MuDbscanStats st;
  (void)mu_dbscan(ds, {2.0, 5}, &st);
  EXPECT_GT(st.t_tree, 0.0);
  EXPECT_GE(st.t_reach, 0.0);
  EXPECT_GT(st.t_cluster, 0.0);
  EXPECT_GE(st.t_post, 0.0);
  EXPECT_GT(st.total(), 0.0);
}

TEST(MuDbscan, QuerySaveFractionMatchesCounters) {
  Dataset ds = gen_blobs(1000, 2, 3, 50.0, 1.5, 0.1, 23);
  MuDbscanStats st;
  (void)mu_dbscan(ds, {1.5, 5}, &st);
  const double frac = st.query_save_fraction(ds.size());
  EXPECT_NEAR(frac,
              1.0 - static_cast<double>(st.queries_performed) /
                        static_cast<double>(ds.size()),
              1e-12);
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(MuDbscan, EngineStepwiseMatchesOneShot) {
  Dataset ds = gen_galaxy(1200, GalaxyConfig{}, 29);
  const DbscanParams prm{1.5, 5};
  MuDbscanEngine engine(ds, prm);
  engine.build_tree();
  engine.find_reachable();
  engine.cluster();
  engine.post_process();
  const auto stepwise = engine.extract_result();
  const auto oneshot = mu_dbscan(ds, prm);
  const auto rep = compare_exact(stepwise, oneshot);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST(MuDbscan, AblationConfigsStayExact) {
  Dataset ds = gen_blobs(800, 3, 4, 60.0, 2.5, 0.15, 31);
  const DbscanParams prm{2.0, 5};
  const auto truth = brute_dbscan(ds, prm);
  for (bool two_eps : {true, false}) {
    for (bool promo : {true, false}) {
      for (bool filt : {true, false}) {
        MuDbscanConfig cfg;
        cfg.two_eps_rule = two_eps;
        cfg.dynamic_promotion = promo;
        cfg.mbr_filtration = filt;
        const auto got = mu_dbscan(ds, prm, nullptr, cfg);
        const auto rep = compare_exact(truth, got);
        EXPECT_TRUE(rep.exact())
            << rep.detail << " (two_eps=" << two_eps << " promo=" << promo
            << " filt=" << filt << ")";
      }
    }
  }
}

TEST(MuDbscan, DynamicPromotionSavesQueries) {
  Dataset ds = gen_blobs(3000, 2, 4, 40.0, 1.0, 0.05, 37);
  const DbscanParams prm{1.2, 5};
  MuDbscanStats with_promo, without_promo;
  MuDbscanConfig cfg;
  (void)mu_dbscan(ds, prm, &with_promo, cfg);
  cfg.dynamic_promotion = false;
  (void)mu_dbscan(ds, prm, &without_promo, cfg);
  EXPECT_LE(with_promo.queries_performed, without_promo.queries_performed);
}

TEST(MuDbscan, NoisePromotedToBorderByLateWndqCore) {
  // Regression guard for Algorithm 8: a point processed as provisional noise
  // whose neighbor is promoted to wndq-core later must end as border. We
  // force this with a dataset where a border point precedes its dense blob
  // in processing order.
  std::vector<double> coords{-0.9};  // border-ish point, processed first
  for (int i = 0; i < 8; ++i) coords.push_back(0.05 * i);  // dense blob
  Dataset ds(1, std::move(coords));
  const auto truth = brute_dbscan(ds, {1.0, 6});
  const auto got = mu_dbscan(ds, {1.0, 6});
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  EXPECT_FALSE(got.is_core[0]);
  EXPECT_NE(got.label[0], kNoise);
}

}  // namespace
}  // namespace udb
