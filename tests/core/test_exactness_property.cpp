// The central property of the paper (Theorem 1): µDBSCAN produces exactly
// the classical DBSCAN clustering — same core set, same core partition, same
// noise set — across datasets, densities, dimensionalities and parameter
// regimes. Each case is checked against the brute-force ground truth.

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/brute_dbscan.hpp"
#include "common/rng.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "metrics/ari.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

struct ExactCase {
  const char* tag;
  std::size_t n;
  std::size_t dim;
  double eps;
  std::uint32_t min_pts;
  std::uint64_t seed;
};

void PrintTo(const ExactCase& c, std::ostream* os) {
  *os << c.tag << "_n" << c.n << "_d" << c.dim << "_e" << c.eps << "_m"
      << c.min_pts << "_s" << c.seed;
}

Dataset make_dataset(const ExactCase& c) {
  const std::string tag = c.tag;
  if (tag == "blobs") return gen_blobs(c.n, c.dim, 5, 100.0, 3.0, 0.15, c.seed);
  if (tag == "tight") return gen_blobs(c.n, c.dim, 3, 30.0, 0.7, 0.05, c.seed);
  if (tag == "galaxy") {
    GalaxyConfig cfg;
    cfg.halos = 8;
    cfg.subhalos_per_halo = 5;
    cfg.box = 150.0;
    return gen_galaxy(c.n, cfg, c.seed);
  }
  if (tag == "roadnet") {
    RoadnetConfig cfg;
    cfg.waypoints = 50;
    return gen_roadnet(c.n, cfg, c.seed);
  }
  if (tag == "uniform") return gen_uniform(c.n, c.dim, 0.0, 25.0, c.seed);
  if (tag == "moons") return gen_two_moons(c.n, 0.05, c.seed);
  if (tag == "rings") return gen_rings(c.n, 3, 0.04, c.seed);
  if (tag == "highdim") {
    HighDimConfig cfg;
    cfg.dim = c.dim;
    cfg.k = 4;
    return gen_highdim(c.n, cfg, c.seed);
  }
  if (tag == "dupes") {
    // Heavy duplication: every point repeated several times.
    Dataset base = gen_blobs(c.n / 4, c.dim, 3, 20.0, 1.0, 0.1, c.seed);
    Dataset out = Dataset::empty(c.dim);
    for (std::size_t i = 0; i < base.size(); ++i)
      for (int rep = 0; rep < 4; ++rep)
        out.push_back(base.point(static_cast<PointId>(i)));
    return out;
  }
  if (tag == "grid_lattice") {
    // Points on an exact integer lattice: adversarial for strict-boundary
    // handling (many distances exactly equal to eps multiples).
    Dataset out = Dataset::empty(2);
    const int side = static_cast<int>(std::sqrt(static_cast<double>(c.n)));
    for (int x = 0; x < side; ++x)
      for (int y = 0; y < side; ++y)
        out.push_back(std::vector<double>{static_cast<double>(x),
                                          static_cast<double>(y)});
    return out;
  }
  throw std::logic_error("unknown tag");
}

class MuDbscanExactness : public ::testing::TestWithParam<ExactCase> {};

TEST_P(MuDbscanExactness, MatchesBruteForce) {
  const auto& c = GetParam();
  Dataset ds = make_dataset(c);
  const DbscanParams prm{c.eps, c.min_pts};
  const auto truth = brute_dbscan(ds, prm);
  MuDbscanStats st;
  const auto got = mu_dbscan(ds, prm, &st);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  // Exactness implies a perfect ARI when noise is treated as a cluster of
  // its own per-point... not exactly (border flips), but the ARI should be
  // very high; guard against silent label corruption.
  EXPECT_GT(adjusted_rand_index(truth.label, got.label), 0.95);
  EXPECT_LE(st.queries_performed, ds.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MuDbscanExactness,
    ::testing::Values(
        // blobs across dim / eps / MinPts
        ExactCase{"blobs", 800, 2, 2.0, 5, 1}, ExactCase{"blobs", 800, 3, 2.5, 5, 2},
        ExactCase{"blobs", 600, 5, 5.0, 6, 3}, ExactCase{"blobs", 500, 2, 0.4, 3, 4},
        ExactCase{"blobs", 500, 2, 25.0, 10, 5}, ExactCase{"blobs", 400, 3, 2.0, 1, 6},
        ExactCase{"blobs", 400, 3, 2.0, 2, 7}, ExactCase{"blobs", 700, 3, 3.0, 25, 8},
        // dense regime: many DMCs, most queries saved
        ExactCase{"tight", 1000, 2, 1.0, 5, 9}, ExactCase{"tight", 1000, 3, 1.5, 5, 10},
        ExactCase{"tight", 800, 2, 2.5, 4, 11},
        // galaxy / roadnet analogs
        ExactCase{"galaxy", 1000, 3, 1.5, 5, 12}, ExactCase{"galaxy", 1000, 3, 4.0, 6, 13},
        ExactCase{"roadnet", 800, 3, 1.0, 4, 14}, ExactCase{"roadnet", 800, 3, 0.3, 5, 15},
        // sparse uniform noise-heavy
        ExactCase{"uniform", 600, 2, 1.0, 4, 16}, ExactCase{"uniform", 500, 3, 2.0, 5, 17},
        // arbitrary shapes
        ExactCase{"moons", 700, 2, 0.12, 5, 18}, ExactCase{"rings", 900, 2, 0.15, 5, 19},
        // high dimensional
        ExactCase{"highdim", 400, 14, 70.0, 5, 20}, ExactCase{"highdim", 300, 24, 110.0, 5, 21},
        ExactCase{"highdim", 150, 74, 250.0, 4, 22},
        // degenerate / adversarial
        ExactCase{"dupes", 400, 2, 0.8, 5, 23}, ExactCase{"dupes", 400, 3, 1.5, 8, 24},
        ExactCase{"grid_lattice", 400, 2, 1.0, 4, 25},
        ExactCase{"grid_lattice", 400, 2, 1.5, 5, 26},
        ExactCase{"grid_lattice", 625, 2, 2.0, 9, 27}));

// Permutation invariance of the exact-clustering invariants: shuffle the
// dataset, rerun, and compare the order-independent quantities point-wise.
class MuDbscanPermutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MuDbscanPermutation, InvariantsSurviveShuffling) {
  const std::uint64_t seed = GetParam();
  Dataset ds = gen_blobs(600, 3, 4, 80.0, 3.0, 0.2, seed);
  const DbscanParams prm{2.5, 5};
  const auto base = mu_dbscan(ds, prm);

  std::vector<PointId> perm(ds.size());
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(seed * 31 + 7);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
  Dataset shuffled = ds.select(perm);
  const auto shuf = mu_dbscan(shuffled, prm);

  EXPECT_EQ(base.num_clusters(), shuf.num_clusters());
  EXPECT_EQ(base.num_core(), shuf.num_core());
  EXPECT_EQ(base.num_noise(), shuf.num_noise());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(base.is_core[perm[i]], shuf.is_core[i]) << i;
    EXPECT_EQ(base.label[perm[i]] == kNoise, shuf.label[i] == kNoise) << i;
  }
  // Core partition must match under the permutation.
  ClusteringResult base_permuted;
  base_permuted.label.resize(perm.size());
  base_permuted.is_core.resize(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    base_permuted.label[i] = base.label[perm[i]];
    base_permuted.is_core[i] = base.is_core[perm[i]];
  }
  const auto rep = compare_exact(base_permuted, shuf);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuDbscanPermutation,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace udb
