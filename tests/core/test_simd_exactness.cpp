// Full-engine exactness under every runnable SIMD dispatch target
// (docs/KERNELS.md): forcing UDB_SIMD to any target must leave µDBSCAN's
// output exactly equal to brute-force DBSCAN — and, because the kernels are
// bit-exact vs scalar, the label vectors themselves must be identical across
// targets, not merely cluster-isomorphic.

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "common/simd.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

struct TargetGuard {
  SimdTarget prev = active_simd_target();
  ~TargetGuard() { force_simd_target(prev); }
};

struct Case {
  const char* name;
  Dataset ds;
  DbscanParams prm;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  cases.push_back({"blobs", gen_blobs(800, 3, 5, 100.0, 3.0, 0.15, 41),
                   DbscanParams{2.5, 5}});
  cases.push_back({"uniform", gen_uniform(500, 2, 0.0, 25.0, 42),
                   DbscanParams{1.0, 4}});
  // Exact integer lattice: many pairwise distances land exactly on eps, so
  // any tie-breaking drift between kernels would flip the clustering.
  Dataset lattice = Dataset::empty(2);
  for (int x = 0; x < 20; ++x)
    for (int y = 0; y < 20; ++y)
      lattice.push_back(
          std::vector<double>{static_cast<double>(x), static_cast<double>(y)});
  cases.push_back({"lattice", std::move(lattice), DbscanParams{1.0, 4}});
  // Heavy duplication: distance-0 pairs in every leaf block.
  Dataset base = gen_blobs(100, 2, 3, 20.0, 1.0, 0.1, 43);
  Dataset dupes = Dataset::empty(2);
  for (std::size_t i = 0; i < base.size(); ++i)
    for (int rep = 0; rep < 4; ++rep)
      dupes.push_back(base.point(static_cast<PointId>(i)));
  cases.push_back({"dupes", std::move(dupes), DbscanParams{0.8, 5}});
  return cases;
}

TEST(SimdEngineExactness, EveryForcedTargetMatchesBruteAndScalar) {
  TargetGuard guard;
  for (const Case& c : make_cases()) {
    const auto truth = brute_dbscan(c.ds, c.prm);

    force_simd_target(SimdTarget::kScalar);
    const auto scalar_res = mu_dbscan(c.ds, c.prm);
    {
      const auto rep = compare_exact(truth, scalar_res);
      EXPECT_TRUE(rep.exact()) << c.name << " scalar: " << rep.detail;
    }

    for (SimdTarget t : runnable_simd_targets()) {
      if (t == SimdTarget::kScalar) continue;
      force_simd_target(t);
      const auto got = mu_dbscan(c.ds, c.prm);
      const auto rep = compare_exact(truth, got);
      EXPECT_TRUE(rep.exact())
          << c.name << " " << simd_target_name(t) << ": " << rep.detail;
      // Bit-exact kernels imply a bit-identical execution: same labels, same
      // core flags, element for element.
      EXPECT_EQ(got.label, scalar_res.label)
          << c.name << " " << simd_target_name(t);
      EXPECT_EQ(got.is_core, scalar_res.is_core)
          << c.name << " " << simd_target_name(t);
    }
  }
}

TEST(SimdEngineExactness, QueryLedgerHoldsUnderEveryTarget) {
  TargetGuard guard;
  Dataset ds = gen_blobs(600, 3, 4, 80.0, 3.0, 0.2, 44);
  const DbscanParams prm{2.5, 5};
  for (SimdTarget t : runnable_simd_targets()) {
    force_simd_target(t);
    MuDbscanStats st;
    (void)mu_dbscan(ds, prm, &st);
    EXPECT_EQ(st.queries_performed + st.avoided_dmc + st.avoided_cmc +
                  st.avoided_promotion,
              ds.size())
        << simd_target_name(t);
  }
}

}  // namespace
}  // namespace udb
