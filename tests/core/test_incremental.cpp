// Incremental µDBSCAN differential suite: after ANY interleaved insert/erase
// sequence the engine's canonical result() must equal the batch algorithm
// fit from scratch on the surviving points (canonicalized the same way), at
// every oracle thread count — plus the structural invariants the maintenance
// relies on (counts, core flags, border caches, label partition).

#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/mudbscan.hpp"
#include "core/streaming.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"
#include "obs/metrics.hpp"

namespace udb {
namespace {

// The headline oracle: fit-from-scratch on the survivors, canonicalized, must
// equal result() as plain vectors (labels AND core flags).
void expect_matches_batch(const IncrementalMuDbscan& eng, unsigned threads,
                          const std::string& ctx) {
  const Dataset ds = eng.survivors();
  MuDbscanConfig cfg;
  cfg.num_threads = threads;
  const ClusteringResult want = canonicalize_clustering(
      ds, eng.params(), mu_dbscan(ds, eng.params(), nullptr, cfg));
  const ClusteringResult got = eng.result();
  ASSERT_EQ(got.label.size(), want.label.size()) << ctx;
  EXPECT_EQ(got.label, want.label) << ctx << " (threads=" << threads << ")";
  EXPECT_EQ(got.is_core, want.is_core) << ctx << " (threads=" << threads << ")";
  EXPECT_EQ(eng.num_core(), want.num_core()) << ctx;
}

// Clustered 2-D churn around a few attractors so inserts keep hitting dense
// regions (promotions, merges) and erasures keep hitting cluster interiors
// (demotions, splits).
double attractor_coord(Rng& rng) {
  static constexpr double kCenters[] = {-4.0, 0.0, 4.0};
  return kCenters[rng.uniform_index(3)] + rng.normal() * 0.9;
}

TEST(Incremental, MatchesBatchUnderRandomChurn) {
  const DbscanParams prm{1.2, 4};
  const unsigned kThreads[] = {1, 2, 4};
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    Rng rng(seed);
    IncrementalMuDbscan eng(2, prm);
    std::vector<PointId> ids;
    std::size_t tsel = 0;
    for (int op = 0; op < 420; ++op) {
      const bool do_erase = !ids.empty() && rng.next_double() < 0.35;
      if (do_erase) {
        const std::size_t k = rng.uniform_index(ids.size());
        ASSERT_TRUE(eng.erase(ids[k]));
        ids[k] = ids.back();
        ids.pop_back();
      } else {
        const double pt[2] = {attractor_coord(rng), attractor_coord(rng)};
        ids.push_back(eng.insert(pt));
      }
      if (op % 60 == 59) {
        expect_matches_batch(eng, kThreads[tsel++ % 3],
                             "seed " + std::to_string(seed) + " op " +
                                 std::to_string(op));
      }
    }
    ASSERT_NO_THROW(eng.check_invariants()) << "seed " << seed;
    expect_matches_batch(eng, kThreads[tsel % 3],
                         "seed " + std::to_string(seed) + " final");
    EXPECT_EQ(eng.stats().inserts + eng.stats().deletes, 420u);
  }
}

TEST(Incremental, MatchesBatchAcrossChunkBoundaryWithErasures) {
  // More ids than one 4096-point storage chunk, then a heavy erase wave:
  // pointers into earlier chunks and the id<->survivor-position mapping must
  // both survive.
  Dataset ds = gen_blobs(5000, 2, 3, 40.0, 2.0, 0.1, 29);
  const DbscanParams prm{1.5, 5};
  IncrementalMuDbscan eng(2, prm);
  std::vector<PointId> ids;
  ids.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i)
    ids.push_back(eng.insert(ds.point(static_cast<PointId>(i))));
  Rng rng(31);
  for (int k = 0; k < 1200; ++k) {
    const std::size_t j = rng.uniform_index(ids.size());
    ASSERT_TRUE(eng.erase(ids[j]));
    ids[j] = ids.back();
    ids.pop_back();
  }
  EXPECT_EQ(eng.size(), 3800u);
  EXPECT_EQ(eng.total(), 5000u);
  expect_matches_batch(eng, 2, "chunk-boundary churn");
}

TEST(Incremental, DeleteSplitsBridgedCluster) {
  // A 1-D chain 0,1,2,3,4 with eps=1.1, MinPts=2: one cluster bridged by the
  // middle point. Erasing it must split the cluster in two — the scoped BFS
  // has to detect the disconnection, not just demote.
  const DbscanParams prm{1.1, 2};
  IncrementalMuDbscan eng(1, prm);
  std::vector<PointId> ids;
  for (double x : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    const double pt[1] = {x};
    ids.push_back(eng.insert(pt));
  }
  EXPECT_EQ(eng.result().num_clusters(), 1u);
  const std::uint64_t repairs_before = eng.stats().graph_edges_repaired;
  ASSERT_TRUE(eng.erase(ids[2]));
  const ClusteringResult got = eng.result();
  EXPECT_EQ(got.num_clusters(), 2u);
  const std::vector<std::int64_t> want_labels = {0, 0, 1, 1};
  EXPECT_EQ(got.label, want_labels);
  // The split relabeled one surviving component.
  EXPECT_GT(eng.stats().graph_edges_repaired, repairs_before);
  expect_matches_batch(eng, 1, "post-split");
  ASSERT_NO_THROW(eng.check_invariants());
}

TEST(Incremental, DuplicatesAndSignedZeroEraseByEquality) {
  const DbscanParams prm{0.5, 3};
  IncrementalMuDbscan eng(1, prm);
  const double zero[1] = {0.0};
  const double neg_zero[1] = {-0.0};
  const double far[1] = {10.0};
  for (int i = 0; i < 3; ++i) eng.insert(zero);      // ids 0,1,2
  for (int i = 0; i < 2; ++i) eng.insert(neg_zero);  // ids 3,4
  eng.insert(far);                                   // id 5
  expect_matches_batch(eng, 1, "dup ingest");
  // erase_equal is bitwise: -0.0 must match only the -0.0 insertions, lowest
  // alive id first.
  EXPECT_EQ(eng.erase_equal(neg_zero), PointId{3});
  EXPECT_EQ(eng.erase_equal(neg_zero), PointId{4});
  EXPECT_EQ(eng.erase_equal(neg_zero), kInvalidPoint);
  EXPECT_EQ(eng.erase_equal(zero), PointId{0});
  const double absent[1] = {5.0};
  EXPECT_EQ(eng.erase_equal(absent), kInvalidPoint);
  EXPECT_EQ(eng.size(), 3u);
  expect_matches_batch(eng, 1, "after bitwise erasures");
  ASSERT_NO_THROW(eng.check_invariants());
}

TEST(Incremental, DegenerateAllCoincidentPoints) {
  // n identical points: all core while n >= MinPts; erasing below the
  // threshold demotes the whole cluster to noise at once (the failed set is
  // the entire cluster).
  const DbscanParams prm{1.0, 5};
  IncrementalMuDbscan eng(3, prm);
  const double pt[3] = {2.0, -1.0, 0.5};
  std::vector<PointId> ids;
  for (int i = 0; i < 7; ++i) ids.push_back(eng.insert(pt));
  EXPECT_EQ(eng.num_core(), 7u);
  EXPECT_EQ(eng.num_mcs(), 1u);
  ASSERT_TRUE(eng.erase(ids[0]));
  ASSERT_TRUE(eng.erase(ids[3]));
  EXPECT_EQ(eng.num_core(), 5u);
  expect_matches_batch(eng, 2, "coincident at MinPts");
  ASSERT_TRUE(eng.erase(ids[6]));  // 4 < MinPts: everything demotes
  EXPECT_EQ(eng.num_core(), 0u);
  EXPECT_EQ(eng.result().num_noise(), 4u);
  expect_matches_batch(eng, 1, "coincident below MinPts");
  ASSERT_NO_THROW(eng.check_invariants());
}

TEST(Incremental, EraseSemantics) {
  const DbscanParams prm{1.0, 2};
  IncrementalMuDbscan eng(1, prm);
  const double pt[1] = {0.0};
  const PointId id = eng.insert(pt);
  EXPECT_FALSE(eng.erase(999));  // never allocated
  EXPECT_TRUE(eng.erase(id));
  EXPECT_FALSE(eng.erase(id));  // already erased
  EXPECT_EQ(eng.size(), 0u);
  EXPECT_EQ(eng.total(), 1u);
  EXPECT_FALSE(eng.alive(id));
  EXPECT_TRUE(eng.result().label.empty());
  // The structure stays usable after draining to empty.
  const PointId id2 = eng.insert(pt);
  EXPECT_TRUE(eng.alive(id2));
  EXPECT_EQ(eng.size(), 1u);
}

TEST(Incremental, EmptyEngine) {
  IncrementalMuDbscan eng(2, {1.0, 5});
  EXPECT_EQ(eng.size(), 0u);
  EXPECT_EQ(eng.num_mcs(), 0u);
  EXPECT_TRUE(eng.result().label.empty());
  EXPECT_TRUE(eng.survivors().empty_points());
  ASSERT_NO_THROW(eng.check_invariants());
}

TEST(Incremental, RejectsBadParametersAndDimensions) {
  EXPECT_THROW(IncrementalMuDbscan(0, {1.0, 5}), std::invalid_argument);
  EXPECT_THROW(IncrementalMuDbscan(2, {0.0, 5}), std::invalid_argument);
  EXPECT_THROW(IncrementalMuDbscan(2, {1.0, 0}), std::invalid_argument);
  IncrementalMuDbscan eng(2, {1.0, 5});
  EXPECT_THROW(eng.insert(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(eng.erase_equal(std::vector<double>{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(Incremental, BlastRadiusCapFallsBackAndStaysExact) {
  // A cap of 1 candidate MC per update is below what any interesting update
  // needs, so the engine must fall back to the global relabel — and remain
  // exact while doing so.
  IncrementalMuDbscan::Config cfg;
  cfg.max_touched_mcs_per_update = 1;
  const DbscanParams prm{1.2, 4};
  IncrementalMuDbscan eng(2, prm, cfg);
  Rng rng(47);
  std::vector<PointId> ids;
  for (int op = 0; op < 160; ++op) {
    const bool do_erase = !ids.empty() && rng.next_double() < 0.3;
    if (do_erase) {
      const std::size_t k = rng.uniform_index(ids.size());
      ASSERT_TRUE(eng.erase(ids[k]));
      ids[k] = ids.back();
      ids.pop_back();
    } else {
      const double pt[2] = {attractor_coord(rng), attractor_coord(rng)};
      ids.push_back(eng.insert(pt));
    }
  }
  EXPECT_GT(eng.stats().full_fallbacks, 0u);
  expect_matches_batch(eng, 2, "capped churn");
  ASSERT_NO_THROW(eng.check_invariants());
}

TEST(Incremental, MetricsFlowToRegistry) {
  obs::MetricsRegistry reg;
  IncrementalMuDbscan::Config cfg;
  cfg.metrics = &reg;
  const DbscanParams prm{1.0, 3};
  IncrementalMuDbscan eng(2, prm, cfg);
  Rng rng(5);
  std::vector<PointId> ids;
  for (int i = 0; i < 40; ++i) {
    const double pt[2] = {rng.normal(), rng.normal()};
    ids.push_back(eng.insert(pt));
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(eng.erase(ids.back()));
    ids.pop_back();
  }
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kIncMcsTouched),
            eng.stats().mcs_touched);
  EXPECT_EQ(snap.counter(obs::Counter::kIncGraphEdgesRepaired),
            eng.stats().graph_edges_repaired);
  EXPECT_EQ(snap.counter(obs::Counter::kIncFullFallbacks),
            eng.stats().full_fallbacks);
  EXPECT_GT(snap.counter(obs::Counter::kIncMcsTouched), 0u);
  EXPECT_GT(snap.counter(obs::Counter::kIncGraphEdgesRepaired), 0u);
  // One blast-radius observation per update.
  EXPECT_EQ(snap.hist(obs::Hist::kIncBlastRadius).count, 50u);
}

// ---------------------------------------------------------------------------
// Streaming adapter: erase flows through, caches invalidate, dataset shrinks.
// ---------------------------------------------------------------------------

TEST(StreamingIncremental, EraseInvalidatesCaches) {
  StreamingMuDbscan stream(1, {1.0, 2});
  const double a[1] = {0.0};
  const double b[1] = {0.5};
  const PointId ia = stream.insert(a);
  (void)stream.insert(b);
  EXPECT_EQ(stream.result().num_core(), 2u);
  EXPECT_EQ(stream.dataset().size(), 2u);
  ASSERT_TRUE(stream.erase(ia));
  EXPECT_FALSE(stream.erase(ia));
  EXPECT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream.result().num_noise(), 1u);
  ASSERT_EQ(stream.dataset().size(), 1u);
  EXPECT_EQ(stream.dataset().coord(0, 0), 0.5);
  EXPECT_EQ(stream.erase_equal(b), PointId{1});
  EXPECT_EQ(stream.dataset().size(), 0u);
  EXPECT_TRUE(stream.result().label.empty());
}

TEST(StreamingIncremental, DatasetAppendsAfterEraseFreeGrowth) {
  // dataset() must stay correct through the grow -> erase -> grow pattern
  // (append fast path only when no erase intervened).
  StreamingMuDbscan stream(2, {1.0, 3});
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const double pt[2] = {rng.normal(), rng.normal()};
    (void)stream.insert(pt);
  }
  EXPECT_EQ(stream.dataset().size(), 10u);
  ASSERT_TRUE(stream.erase(0));
  ASSERT_TRUE(stream.erase(7));
  EXPECT_EQ(stream.dataset().size(), 8u);
  for (int i = 0; i < 5; ++i) {
    const double pt[2] = {rng.normal(), rng.normal()};
    (void)stream.insert(pt);
  }
  const Dataset& ds = stream.dataset();
  ASSERT_EQ(ds.size(), 13u);
  // Must equal the engine's own survivor view exactly.
  EXPECT_EQ(ds.raw(), stream.engine().survivors().raw());
  EXPECT_EQ(stream.update_stats().inserts, 15u);
  EXPECT_EQ(stream.update_stats().deletes, 2u);
}

}  // namespace
}  // namespace udb
