// Write-ahead log (core/wal.*): append/replay roundtrip, torn-tail trimming,
// record validation, the contiguity contract, and RunGuard budget accounting.
// The crash matrix itself lives in tools/crashharness; these tests pin the
// format and the writer's failure semantics deterministically.

#include "core/wal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/runguard.hpp"
#include "common/vfs.hpp"
#include "serve/crc32.hpp"
#include "serve/wire.hpp"

namespace udb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return ::testing::TempDir() + "udb_wal_" + name;
  }

  void TearDown() override {
    vfs::install_io_fault_plan(nullptr);
    vfs::reset_io_fault_state();
  }

  std::vector<double> points(std::size_t n, double base) {
    std::vector<double> v;
    for (std::size_t i = 0; i < n * 2; ++i)
      v.push_back(base + static_cast<double>(i));
    return v;
  }
};

TEST_F(WalTest, OpenCreatesHeaderOnlyLog) {
  const std::string p = path("fresh.wal");
  (void)vfs::remove_file(p);
  auto w = WalWriter::open(p, 2);
  ASSERT_TRUE(w.ok()) << w.status().to_string();
  EXPECT_EQ(w->records(), 0u);
  EXPECT_EQ(w->bytes(), kWalHeaderBytes);
  EXPECT_EQ(w->dim(), 2u);
  ASSERT_TRUE(w->close().ok());
  auto size = vfs::file_size(p);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, kWalHeaderBytes);
}

TEST_F(WalTest, AppendReplayRoundtrip) {
  const std::string p = path("roundtrip.wal");
  (void)vfs::remove_file(p);
  const auto a = points(3, 0.0), b = points(2, 100.0), c = points(4, 200.0);
  {
    auto w = WalWriter::open(p, 2);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append(0, a).ok());
    ASSERT_TRUE(w->append(3, b).ok());
    ASSERT_TRUE(w->append(5, c).ok());
    EXPECT_EQ(w->records(), 3u);
    EXPECT_EQ(w->next_start(), 9u);
    ASSERT_TRUE(w->close().ok());
  }
  auto rep = replay_wal(p, 2);
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  EXPECT_EQ(rep->records, 3u);
  EXPECT_EQ(rep->points(), 9u);
  EXPECT_EQ(rep->torn_bytes, 0u);
  EXPECT_EQ(rep->starts, (std::vector<std::uint64_t>{0, 3, 5}));
  EXPECT_EQ(rep->counts, (std::vector<std::uint64_t>{3, 2, 4}));
  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());
  EXPECT_EQ(rep->coords, all);
}

TEST_F(WalTest, ReplayMissingIsNotFound) {
  auto rep = replay_wal(path("missing.wal"));
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kNotFound);
}

TEST_F(WalTest, GarbageHeaderIsDataLoss) {
  const std::string p = path("garbage.wal");
  const char junk[] = "this is not a WAL at all, not even close";
  ASSERT_TRUE(vfs::write_file(p, junk, sizeof junk).ok());
  auto rep = replay_wal(p);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kDataLoss);
  auto w = WalWriter::open(p, 2);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalTest, DimMismatchIsDataLoss) {
  const std::string p = path("dim.wal");
  (void)vfs::remove_file(p);
  {
    auto w = WalWriter::open(p, 2);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->close().ok());
  }
  auto rep = replay_wal(p, 3);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(replay_wal(p, 0).ok());  // 0 accepts any dim
}

TEST_F(WalTest, TornTailIsDroppedAndTrimmedOnReopen) {
  const std::string p = path("torn.wal");
  (void)vfs::remove_file(p);
  const auto a = points(3, 0.0);
  std::uint64_t committed = 0;
  {
    auto w = WalWriter::open(p, 2);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append(0, a).ok());
    committed = w->bytes();
    ASSERT_TRUE(w->close().ok());
  }
  // A crash mid-append leaves a partial frame; simulate with raw junk.
  {
    auto f = vfs::File::open_append(p);
    ASSERT_TRUE(f.ok());
    const char junk[] = {0x10, 0x20, 0x30, 0x40, 0x55, 0x66};
    ASSERT_TRUE(f->write(junk, sizeof junk).ok());
    ASSERT_TRUE(f->close().ok());
  }
  auto rep = replay_wal(p, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->records, 1u);
  EXPECT_EQ(rep->coords, a);
  EXPECT_EQ(rep->torn_bytes, 6u);

  // Reopening trims the torn tail and appending resumes on valid records.
  auto w = WalWriter::open(p, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->bytes(), committed);
  EXPECT_EQ(w->next_start(), 3u);
  const auto b = points(2, 50.0);
  ASSERT_TRUE(w->append(3, b).ok());
  ASSERT_TRUE(w->close().ok());
  auto rep2 = replay_wal(p, 2);
  ASSERT_TRUE(rep2.ok());
  EXPECT_EQ(rep2->records, 2u);
  EXPECT_EQ(rep2->points(), 5u);
  EXPECT_EQ(rep2->torn_bytes, 0u);
}

TEST_F(WalTest, CorruptRecordEndsThePrefix) {
  const std::string p = path("rot.wal");
  (void)vfs::remove_file(p);
  const auto a = points(3, 0.0), b = points(3, 100.0);
  std::uint64_t first_record_end = 0;
  {
    auto w = WalWriter::open(p, 2);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append(0, a).ok());
    first_record_end = w->bytes();
    ASSERT_TRUE(w->append(3, b).ok());
    ASSERT_TRUE(w->close().ok());
  }
  auto bytes = vfs::read_file(p);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[first_record_end + 12] ^= 0x01;  // one bit inside record 2
  ASSERT_TRUE(vfs::write_file(p, bytes->data(), bytes->size()).ok());

  auto rep = replay_wal(p, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->records, 1u);  // the CRC catches the flip, prefix survives
  EXPECT_EQ(rep->coords, a);
  EXPECT_GT(rep->torn_bytes, 0u);
}

TEST_F(WalTest, AppendValidatesItsInput) {
  const std::string p = path("validate.wal");
  (void)vfs::remove_file(p);
  auto w = WalWriter::open(p, 2);
  ASSERT_TRUE(w.ok());

  const Status empty = w->append(0, std::vector<double>{});
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
  const Status odd = w->append(0, std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(odd.code(), StatusCode::kInvalidArgument);
  const double inf = std::numeric_limits<double>::infinity();
  const Status nonfinite = w->append(0, std::vector<double>{1.0, inf});
  EXPECT_EQ(nonfinite.code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(w->append(0, points(2, 0.0)).ok());
  // Contiguity: the log is a dense suffix of the stream, gaps are caller bugs.
  const Status gap = w->append(7, points(1, 0.0));
  EXPECT_EQ(gap.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(w->append(2, points(1, 0.0)).ok());
  ASSERT_TRUE(w->close().ok());
}

TEST_F(WalTest, ResetTruncatesToHeader) {
  const std::string p = path("reset.wal");
  (void)vfs::remove_file(p);
  auto w = WalWriter::open(p, 2);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->append(0, points(5, 0.0)).ok());
  ASSERT_TRUE(w->reset().ok());
  EXPECT_EQ(w->records(), 0u);
  EXPECT_EQ(w->bytes(), kWalHeaderBytes);
  // The stream restarts from the snapshot's floor; start over at any index.
  ASSERT_TRUE(w->append(5, points(2, 10.0)).ok());
  ASSERT_TRUE(w->close().ok());
  auto rep = replay_wal(p, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->records, 1u);
  EXPECT_EQ(rep->starts, (std::vector<std::uint64_t>{5}));
}

TEST_F(WalTest, BudgetIsChargedAndReleased) {
  const std::string p = path("budget.wal");
  (void)vfs::remove_file(p);
  RunGuard guard;
  RunLimits limits;
  limits.memory_budget_bytes = std::size_t{1} << 20;
  guard.arm(limits);

  WalConfig cfg;
  cfg.guard = &guard;
  {
    auto w = WalWriter::open(p, 2, cfg);
    ASSERT_TRUE(w.ok());
    const std::size_t after_open = guard.bytes_in_use();
    EXPECT_GE(after_open, kWalHeaderBytes);
    ASSERT_TRUE(w->append(0, points(10, 0.0)).ok());
    EXPECT_GT(guard.bytes_in_use(), after_open);
    ASSERT_TRUE(w->reset().ok());
    EXPECT_EQ(guard.bytes_in_use(), kWalHeaderBytes);
    ASSERT_TRUE(w->close().ok());
  }
  EXPECT_EQ(guard.bytes_in_use(), 0u);
}

TEST_F(WalTest, BudgetRefusalLeavesTheLogUntouched) {
  const std::string p = path("budget_refuse.wal");
  (void)vfs::remove_file(p);
  RunGuard guard;
  RunLimits limits;
  limits.memory_budget_bytes = kWalHeaderBytes + 64;  // room for ~no records
  guard.arm(limits);

  WalConfig cfg;
  cfg.guard = &guard;
  auto w = WalWriter::open(p, 2, cfg);
  ASSERT_TRUE(w.ok());
  const std::uint64_t before = w->bytes();
  const Status s = w->append(0, points(64, 0.0));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(w->bytes(), before);
  EXPECT_EQ(w->records(), 0u);
  auto size = vfs::file_size(p);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, before);  // nothing hit the disk
  ASSERT_TRUE(w->close().ok());
}

TEST_F(WalTest, InjectedFsyncFailureFailsTheWriterHard) {
  const std::string p = path("fsync.wal");
  (void)vfs::remove_file(p);
  auto w = WalWriter::open(p, 2);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->append(0, points(2, 0.0)).ok());

  vfs::IoFaultPlan plan;
  plan.fsync_fail_rate = 1.0;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan);
  const Status s = w->append(2, points(2, 10.0));
  vfs::install_io_fault_plan(nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  // The writer refuses further appends: the on-disk tail is suspect.
  EXPECT_EQ(w->append(4, points(1, 0.0)).code(), StatusCode::kInternal);

  // The record's bytes did land (only the fsync failed — durability was
  // unknown, not the data absent), so reopening finds both records valid.
  // The point of failing hard is that the *writer* never builds on a tail it
  // cannot vouch for; reopen re-scans and vouches from the file itself.
  auto w2 = WalWriter::open(p, 2);
  ASSERT_TRUE(w2.ok()) << w2.status().to_string();
  EXPECT_EQ(w2->records(), 2u);
  EXPECT_EQ(w2->next_start(), 4u);
  ASSERT_TRUE(w2->close().ok());
}

TEST_F(WalTest, TombstoneRoundtripAndContiguityExemption) {
  const std::string p = path("tomb.wal");
  (void)vfs::remove_file(p);
  const auto a = points(3, 0.0);
  const std::vector<double> dead = {0.0, 1.0, 4.0, 5.0};  // two dim-2 points
  {
    auto w = WalWriter::open(p, 2);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append(0, a).ok());
    ASSERT_TRUE(w->append_delete(dead).ok());
    // Tombstones sit outside the insert chain: next_start is unchanged and
    // the next insert must still be contiguous with the last insert.
    EXPECT_EQ(w->next_start(), 3u);
    EXPECT_EQ(w->append(9, points(1, 0.0)).code(),
              StatusCode::kInvalidArgument);
    ASSERT_TRUE(w->append(3, points(2, 50.0)).ok());
    EXPECT_EQ(w->records(), 3u);
    ASSERT_TRUE(w->close().ok());
  }
  auto rep = replay_wal(p, 2);
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  EXPECT_EQ(rep->records, 3u);
  EXPECT_TRUE(rep->has_tombstones());
  EXPECT_EQ(rep->types,
            (std::vector<std::uint8_t>{
                static_cast<std::uint8_t>(WalRecordType::kInsert),
                static_cast<std::uint8_t>(WalRecordType::kTombstone),
                static_cast<std::uint8_t>(WalRecordType::kInsert)}));
  EXPECT_EQ(rep->counts, (std::vector<std::uint64_t>{3, 2, 2}));
  EXPECT_EQ(rep->starts[0], 0u);
  EXPECT_EQ(rep->starts[2], 3u);
  // Replay keeps all rows in append order; records 0..2 partition them.
  ASSERT_EQ(rep->points(), 7u);
  EXPECT_EQ(std::vector<double>(rep->coords.begin() + 6,
                                rep->coords.begin() + 10),
            dead);
}

TEST_F(WalTest, TombstoneAcceptsNonFiniteCoordinates) {
  const std::string p = path("tomb_nan.wal");
  (void)vfs::remove_file(p);
  auto w = WalWriter::open(p, 2);
  ASSERT_TRUE(w.ok());
  const std::vector<double> dead = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity()};
  ASSERT_TRUE(w->append_delete(dead).ok());
  EXPECT_EQ(w->append_delete({}).code(), StatusCode::kInvalidArgument);
  // A tombstone-only log never started the insert chain, so the first insert
  // may begin at any stream index (recovery after a crash mid-stream).
  ASSERT_TRUE(w->append(42, points(1, 0.0)).ok());
  EXPECT_EQ(w->next_start(), 43u);
  ASSERT_TRUE(w->close().ok());
}

TEST_F(WalTest, ResetStampsEpochAndReopenRestoresIt) {
  const std::string p = path("epoch.wal");
  (void)vfs::remove_file(p);
  {
    auto w = WalWriter::open(p, 2);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w->epoch(), 0u);
    ASSERT_TRUE(w->append(0, points(2, 0.0)).ok());
    ASSERT_TRUE(w->reset(7).ok());
    EXPECT_EQ(w->epoch(), 7u);
    EXPECT_EQ(w->records(), 0u);
    ASSERT_TRUE(w->append(100, points(1, 5.0)).ok());
    ASSERT_TRUE(w->append_delete(points(1, 5.0)).ok());
    ASSERT_TRUE(w->close().ok());
  }
  auto w2 = WalWriter::open(p, 2);
  ASSERT_TRUE(w2.ok()) << w2.status().to_string();
  EXPECT_EQ(w2->epoch(), 7u);
  EXPECT_EQ(w2->records(), 2u);
  EXPECT_EQ(w2->next_start(), 101u);
  ASSERT_TRUE(w2->close().ok());
  auto rep = replay_wal(p, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->epoch, 7u);
  EXPECT_TRUE(rep->has_tombstones());
}

TEST_F(WalTest, Version1LogReplaysButRejectsNewAppends) {
  const std::string p = path("v1.wal");
  (void)vfs::remove_file(p);
  // Synthesize a version-1 log byte-for-byte: 16-byte header (no epoch) and
  // untyped records (u64 start | u64 count | coords).
  serve::ByteWriter file;
  file.raw(kWalMagic, sizeof kWalMagic);
  file.u32(1);
  file.u64(2);  // dim
  const auto pts = points(2, 7.0);
  serve::ByteWriter payload;
  payload.u64(5);  // start_index
  payload.u64(2);  // count
  payload.raw(pts.data(), pts.size() * sizeof(double));
  file.u32(static_cast<std::uint32_t>(payload.size()));
  file.u32(serve::crc32(payload.data().data(), payload.size()));
  file.raw(payload.data().data(), payload.size());
  ASSERT_TRUE(
      vfs::write_file_atomic(p, file.data().data(), file.size()).ok());

  auto rep = replay_wal(p, 2);
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  EXPECT_EQ(rep->records, 1u);
  EXPECT_EQ(rep->epoch, 0u);
  EXPECT_FALSE(rep->has_tombstones());
  EXPECT_EQ(rep->starts, (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(rep->counts, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(rep->coords, pts);

  // The writer refuses to extend a v1 log: typed records appended to an
  // untyped log would be mis-parsed by old readers.
  auto w = WalWriter::open(p, 2);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace udb
