#include "data/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace udb {
namespace {

TEST(Generators, UniformSizeDimAndBounds) {
  Dataset ds = gen_uniform(1000, 4, -2.0, 3.0, 1);
  EXPECT_EQ(ds.size(), 1000u);
  EXPECT_EQ(ds.dim(), 4u);
  for (double v : ds.raw()) {
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Generators, DeterministicForSameSeed) {
  Dataset a = gen_blobs(500, 3, 4, 100.0, 2.0, 0.1, 42);
  Dataset b = gen_blobs(500, 3, 4, 100.0, 2.0, 0.1, 42);
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(Generators, SeedChangesOutput) {
  Dataset a = gen_blobs(100, 2, 3, 10.0, 1.0, 0.0, 1);
  Dataset b = gen_blobs(100, 2, 3, 10.0, 1.0, 0.0, 2);
  EXPECT_NE(a.raw(), b.raw());
}

TEST(Generators, BlobsRejectZeroClusters) {
  EXPECT_THROW(gen_blobs(10, 2, 0, 1.0, 1.0, 0.0, 1), std::invalid_argument);
}

TEST(Generators, GalaxyShape) {
  GalaxyConfig cfg;
  Dataset ds = gen_galaxy(2000, cfg, 7);
  EXPECT_EQ(ds.size(), 2000u);
  EXPECT_EQ(ds.dim(), 3u);
}

TEST(Generators, GalaxyIsDeterministic) {
  GalaxyConfig cfg;
  EXPECT_EQ(gen_galaxy(300, cfg, 5).raw(), gen_galaxy(300, cfg, 5).raw());
}

TEST(Generators, GalaxyRejectsZeroHalos) {
  GalaxyConfig cfg;
  cfg.halos = 0;
  EXPECT_THROW(gen_galaxy(10, cfg, 1), std::invalid_argument);
}

TEST(Generators, RoadnetIsQuasiPlanar) {
  RoadnetConfig cfg;
  Dataset ds = gen_roadnet(3000, cfg, 11);
  EXPECT_EQ(ds.dim(), 3u);
  EXPECT_EQ(ds.size(), 3000u);
  // z (altitude) stays in a narrow band: quasi-2D manifold.
  double zmin = 1e9, zmax = -1e9;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    zmin = std::min(zmin, ds.coord(static_cast<PointId>(i), 2));
    zmax = std::max(zmax, ds.coord(static_cast<PointId>(i), 2));
  }
  EXPECT_LT(zmax - zmin, cfg.z_range + 10 * cfg.jitter);
}

TEST(Generators, RoadnetRejectsTooFewWaypoints) {
  RoadnetConfig cfg;
  cfg.waypoints = 1;
  EXPECT_THROW(gen_roadnet(10, cfg, 1), std::invalid_argument);
}

TEST(Generators, HighDimShapeAndDeterminism) {
  HighDimConfig cfg;
  cfg.dim = 24;
  Dataset ds = gen_highdim(500, cfg, 3);
  EXPECT_EQ(ds.dim(), 24u);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_EQ(ds.raw(), gen_highdim(500, cfg, 3).raw());
}

TEST(Generators, HighDimProjectionSweepSharesPrefix) {
  // The Fig. 6 sweep projects one dataset; prefix coordinates must agree.
  HighDimConfig cfg;
  cfg.dim = 74;
  Dataset full = gen_highdim(100, cfg, 9);
  Dataset d14 = full.project(14);
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t k = 0; k < 14; ++k)
      EXPECT_EQ(d14.coord(static_cast<PointId>(i), k),
                full.coord(static_cast<PointId>(i), k));
}

TEST(Generators, TwoMoonsIs2D) {
  Dataset ds = gen_two_moons(400, 0.05, 21);
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_EQ(ds.size(), 400u);
}

TEST(Generators, RingsRadialStructure) {
  Dataset ds = gen_rings(2000, 2, 0.02, 23);
  EXPECT_EQ(ds.dim(), 2u);
  // Most points sit near radius 1 or 2.
  std::size_t near = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const double r = std::hypot(ds.coord(static_cast<PointId>(i), 0),
                                ds.coord(static_cast<PointId>(i), 1));
    if (std::abs(r - 1.0) < 0.15 || std::abs(r - 2.0) < 0.15) ++near;
  }
  EXPECT_GT(near, ds.size() * 8 / 10);
}

TEST(Generators, RingsRejectZeroRings) {
  EXPECT_THROW(gen_rings(10, 0, 0.1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace udb
