#include "data/named.hpp"

#include <gtest/gtest.h>

namespace udb {
namespace {

TEST(NamedDataset, UnknownNameThrows) {
  EXPECT_THROW(make_named_dataset("NOPE"), std::invalid_argument);
}

TEST(NamedDataset, ScaleShrinksPointCount) {
  NamedDataset big = make_named_dataset("MPAGB", 0.1);
  NamedDataset small = make_named_dataset("MPAGB", 0.05);
  EXPECT_GT(big.data.size(), small.data.size());
  EXPECT_NEAR(static_cast<double>(big.data.size()),
              2.0 * static_cast<double>(small.data.size()),
              static_cast<double>(small.data.size()) * 0.1);
}

TEST(NamedDataset, ScaleFloorsAtMinimum) {
  NamedDataset tiny = make_named_dataset("FOF", 1e-9);
  EXPECT_GE(tiny.data.size(), 16u);
}

TEST(NamedDataset, DeterministicAcrossCalls) {
  NamedDataset a = make_named_dataset("3DSRN", 0.02);
  NamedDataset b = make_named_dataset("3DSRN", 0.02);
  EXPECT_EQ(a.data.raw(), b.data.raw());
}

TEST(NamedDataset, KddFamilyDimensions) {
  EXPECT_EQ(make_named_dataset("KDDB14", 0.05).data.dim(), 14u);
  EXPECT_EQ(make_named_dataset("KDDB24", 0.05).data.dim(), 24u);
  EXPECT_EQ(make_named_dataset("KDDB44", 0.05).data.dim(), 44u);
  EXPECT_EQ(make_named_dataset("KDDB74", 0.05).data.dim(), 74u);
}

class NamedDatasetAll : public ::testing::TestWithParam<std::string> {};

TEST_P(NamedDatasetAll, ConstructsWithSaneParameters) {
  NamedDataset nd = make_named_dataset(GetParam(), 0.02);
  EXPECT_EQ(nd.name, GetParam() + "-S");
  EXPECT_FALSE(nd.paper_name.empty());
  EXPECT_GT(nd.data.size(), 0u);
  EXPECT_GT(nd.data.dim(), 0u);
  EXPECT_GT(nd.params.eps, 0.0);
  EXPECT_GE(nd.params.min_pts, 1u);
}

INSTANTIATE_TEST_SUITE_P(Registry, NamedDatasetAll,
                         ::testing::ValuesIn(named_dataset_names()));

}  // namespace
}  // namespace udb
