#include "common/status.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace udb {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, NamedConstructorsCarryCodeAndMessage) {
  const Status s = DeadlineExceededError("took too long");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "took too long");
  EXPECT_EQ(s.to_string(), "DEADLINE_EXCEEDED: took too long");
}

TEST(Status, EqualityIsCodeWise) {
  EXPECT_EQ(CancelledError("a"), CancelledError("b"));
  EXPECT_FALSE(CancelledError("a") == InternalError("a"));
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    const char* name = status_code_name(static_cast<StatusCode>(c));
    EXPECT_NE(std::string(name), "UNKNOWN");
  }
}

TEST(StatusError, IsARuntimeErrorCarryingTheStatus) {
  try {
    throw StatusError(ResourceExhaustedError("budget blown"));
  } catch (const std::runtime_error& e) {  // legacy catch sites keep working
    EXPECT_NE(std::string(e.what()).find("budget blown"), std::string::npos);
  }
  try {
    throw StatusError(ResourceExhaustedError("budget blown"));
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(StatusError, CurrentExceptionMapsKnownTypes) {
  const auto map = [](auto thrower) {
    try {
      thrower();
    } catch (...) {
      return status_from_current_exception();
    }
    return Status::Ok();
  };
  EXPECT_EQ(map([] { throw StatusError(CancelledError("x")); }).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(map([] { throw std::bad_alloc(); }).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(map([] { throw std::invalid_argument("bad eps"); }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(map([] { throw std::logic_error("invariant"); }).code(),
            StatusCode::kInternal);
  EXPECT_EQ(map([] { throw 42; }).code(), StatusCode::kInternal);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 7;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
  EXPECT_EQ(v.value(), 7);
}

TEST(StatusOr, HoldsStatusAndThrowsOnAccess) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_THROW((void)v.value(), StatusError);
}

TEST(StatusOr, RejectsOkStatus) {
  StatusOr<int> v = Status::Ok();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOr, MovesValueOut) {
  StatusOr<std::string> v = std::string("payload");
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace udb
