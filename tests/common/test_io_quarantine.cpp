// Status-based loaders (load_csv / load_binary) and their quarantine mode:
// bad rows are skipped and counted rather than fatal, and the load fails via
// Status — never an exception — once too large a fraction of the file is bad.

#include "common/io.hpp"

#include <gtest/gtest.h>

#include "common/vfs.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

namespace udb {
namespace {

class IoQuarantineTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return ::testing::TempDir() + "udb_ioq_" + name;
  }
  void write_file(const std::string& p, const std::string& content) {
    std::ofstream out(p, std::ios::binary);
    out << content;
  }
};

TEST_F(IoQuarantineTest, MissingFileIsNotFound) {
  auto r = load_csv(path("nope.csv"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  auto rb = load_binary(path("nope.bin"));
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(rb.status().code(), StatusCode::kNotFound);
}

TEST_F(IoQuarantineTest, CleanCsvLoads) {
  const std::string p = path("clean.csv");
  write_file(p, "# header\n1,2\n3,4\n5,6\n");
  ReadReport rep;
  auto r = load_csv(p, {}, &rep);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ(r->dim(), 2u);
  EXPECT_EQ(rep.rows_read, 3u);
  EXPECT_EQ(rep.rows_skipped, 0u);
}

TEST_F(IoQuarantineTest, BadRowWithoutQuarantineIsDataLoss) {
  const std::string p = path("bad.csv");
  write_file(p, "1,2\nnan,4\n5,6\n");
  auto r = load_csv(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST_F(IoQuarantineTest, QuarantineSkipsAndReports) {
  const std::string p = path("mixed.csv");
  std::string content;
  for (int i = 0; i < 100; ++i)
    content += std::to_string(i) + "," + std::to_string(i) + "\n";
  content += "nan,1\n";     // non-finite
  content += "1\n";          // short row
  content += "1,2,3\n";      // long row
  write_file(p, content);
  ReadOptions opts;
  opts.quarantine = true;
  opts.max_skip_fraction = 0.05;
  ReadReport rep;
  auto r = load_csv(p, opts, &rep);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->size(), 100u);
  EXPECT_EQ(rep.rows_read, 100u);
  EXPECT_EQ(rep.rows_skipped, 3u);
}

TEST_F(IoQuarantineTest, QuarantineFailsAboveSkipFraction) {
  const std::string p = path("mostly_bad.csv");
  write_file(p, "1,2\nnan,1\nnan,2\nnan,3\n");
  ReadOptions opts;
  opts.quarantine = true;
  opts.max_skip_fraction = 0.5;
  auto r = load_csv(p, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("quarantined"), std::string::npos);
}

TEST_F(IoQuarantineTest, AllRowsBadIsDataLossEvenInQuarantine) {
  const std::string p = path("all_bad.csv");
  write_file(p, "nan,1\nx,y\n");
  ReadOptions opts;
  opts.quarantine = true;
  opts.max_skip_fraction = 1.0;
  auto r = load_csv(p, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(IoQuarantineTest, BinaryRoundTripsThroughLoader) {
  const std::string p = path("round.bin");
  Dataset ds(2, {1.0, 2.0, 3.0, 4.0});
  write_binary(ds, p);
  ReadReport rep;
  auto r = load_binary(p, {}, &rep);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->raw(), ds.raw());
  EXPECT_EQ(rep.rows_read, 2u);
}

TEST_F(IoQuarantineTest, BinaryBadMagicIsDataLoss) {
  const std::string p = path("magic.bin");
  write_file(p, "XXXXGARBAGE");
  auto r = load_binary(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(IoQuarantineTest, BinaryTruncatedTailQuarantines) {
  const std::string p = path("trunc.bin");
  Dataset ds(2, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  write_binary(ds, p);
  // Chop the last row in half: 3 rows promised, 2.5 present.
  std::string bytes;
  {
    std::ifstream in(p, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes.resize(bytes.size() - sizeof(double));
  write_file(p, bytes);

  auto strict = load_binary(p);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);

  ReadOptions opts;
  opts.quarantine = true;
  opts.max_skip_fraction = 0.5;
  ReadReport rep;
  auto r = load_binary(p, opts, &rep);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(rep.rows_skipped, 1u);
}

TEST_F(IoQuarantineTest, BinaryNonFiniteRowQuarantines) {
  const std::string p = path("nonfinite.bin");
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> coords;
  for (int i = 0; i < 50; ++i) {
    coords.push_back(static_cast<double>(i));
    coords.push_back(1.0);
  }
  coords[21] = inf;  // poison row 10
  write_binary(Dataset(2, std::move(coords)), p);

  auto strict = load_binary(p);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);

  ReadOptions opts;
  opts.quarantine = true;
  opts.max_skip_fraction = 0.05;
  ReadReport rep;
  auto r = load_binary(p, opts, &rep);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->size(), 49u);
  EXPECT_EQ(rep.rows_skipped, 1u);
}

TEST_F(IoQuarantineTest, InjectedShortReadIsInvisibleToTheLoaders) {
  // The loaders go through the VFS, which retries short reads — a flaky disk
  // that returns partial chunks must not change what gets loaded.
  const std::string pb = path("shortread.bin");
  const std::string pc = path("shortread.csv");
  Dataset ds(2, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  write_binary(ds, pb);
  write_file(pc, "1,2\n3,4\n5,6\n");

  vfs::IoFaultPlan plan;
  plan.short_read_rate = 1.0;
  plan.seed = 5;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan);
  auto rb = load_binary(pb);
  auto rc = load_csv(pc);
  vfs::install_io_fault_plan(nullptr);
  vfs::reset_io_fault_state();

  ASSERT_TRUE(rb.ok()) << rb.status().to_string();
  EXPECT_EQ(rb->raw(), ds.raw());
  ASSERT_TRUE(rc.ok()) << rc.status().to_string();
  EXPECT_EQ(rc->raw(), ds.raw());
}

TEST_F(IoQuarantineTest, InjectedHardTruncationIsCleanDataLoss) {
  // A hard truncation (the file "ends" mid-read) must come back as a clean
  // Status from both loaders — the short-file regression the quarantine
  // discipline exists for. Binary promises a row count up front, so a
  // shortened image is DATA_LOSS; it must never crash or return bogus rows.
  const std::string pb = path("hardtrunc.bin");
  Dataset ds(2, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  write_binary(ds, pb);

  vfs::IoFaultPlan plan;
  plan.read_truncate_rate = 1.0;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan);
  auto rb = load_binary(pb);
  vfs::install_io_fault_plan(nullptr);
  vfs::reset_io_fault_state();

  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(rb.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace udb
