#include "common/box.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace udb {
namespace {

TEST(Box, DefaultIsInvalid) {
  Box b;
  EXPECT_FALSE(b.valid());
}

TEST(Box, FreshBoxIsInvalidUntilExpanded) {
  Box b(3);
  EXPECT_FALSE(b.valid());
  const std::vector<double> p{1.0, 2.0, 3.0};
  b.expand(std::span<const double>(p));
  EXPECT_TRUE(b.valid());
}

TEST(Box, FromPointIsDegenerate) {
  const std::vector<double> p{1.0, -2.0};
  Box b = Box::from_point(p);
  EXPECT_EQ(b.lo(0), 1.0);
  EXPECT_EQ(b.hi(0), 1.0);
  EXPECT_EQ(b.lo(1), -2.0);
  EXPECT_EQ(b.hi(1), -2.0);
  EXPECT_TRUE(b.contains(std::span<const double>(p)));
}

TEST(Box, FromBallCoversRadius) {
  const std::vector<double> c{0.0, 0.0};
  Box b = Box::from_ball(c, 2.0);
  EXPECT_EQ(b.lo(0), -2.0);
  EXPECT_EQ(b.hi(1), 2.0);
}

TEST(Box, ExpandPointGrowsBothSides) {
  Box b = Box::from_point(std::vector<double>{0.0, 0.0});
  b.expand(std::span<const double>(std::vector<double>{3.0, -1.0}));
  EXPECT_EQ(b.lo(1), -1.0);
  EXPECT_EQ(b.hi(0), 3.0);
}

TEST(Box, ExpandBoxIsUnionBound) {
  Box a = Box::from_point(std::vector<double>{0.0, 0.0});
  Box b = Box::from_point(std::vector<double>{5.0, 5.0});
  a.expand(b);
  EXPECT_EQ(a.lo(0), 0.0);
  EXPECT_EQ(a.hi(0), 5.0);
}

TEST(Box, InflateGrowsEverySide) {
  Box b = Box::from_point(std::vector<double>{1.0, 1.0});
  b.inflate(0.5);
  EXPECT_EQ(b.lo(0), 0.5);
  EXPECT_EQ(b.hi(1), 1.5);
}

TEST(Box, ContainsIsInclusiveOnBoundary) {
  Box b = Box::from_point(std::vector<double>{0.0});
  b.expand(std::span<const double>(std::vector<double>{1.0}));
  EXPECT_TRUE(b.contains(std::vector<double>{0.0}));
  EXPECT_TRUE(b.contains(std::vector<double>{1.0}));
  EXPECT_FALSE(b.contains(std::vector<double>{1.0000001}));
}

TEST(Box, OverlapsDetectsSeparationPerAxis) {
  Box a = Box::from_point(std::vector<double>{0.0, 0.0});
  a.expand(std::span<const double>(std::vector<double>{1.0, 1.0}));
  Box b = Box::from_point(std::vector<double>{2.0, 0.0});
  b.expand(std::span<const double>(std::vector<double>{3.0, 1.0}));
  EXPECT_FALSE(a.overlaps(b));
  b.expand(std::span<const double>(std::vector<double>{0.5, 0.5}));
  EXPECT_TRUE(a.overlaps(b));
}

TEST(Box, TouchingBoxesOverlap) {
  Box a = Box::from_point(std::vector<double>{0.0});
  a.expand(std::span<const double>(std::vector<double>{1.0}));
  Box b = Box::from_point(std::vector<double>{1.0});
  b.expand(std::span<const double>(std::vector<double>{2.0}));
  EXPECT_TRUE(a.overlaps(b));  // shared face counts as overlap
}

TEST(Box, MinSqDistZeroInside) {
  Box b = Box::from_ball(std::vector<double>{0.0, 0.0}, 1.0);
  EXPECT_EQ(b.min_sq_dist(std::vector<double>{0.5, -0.5}), 0.0);
}

TEST(Box, MinSqDistAxisAndCorner) {
  Box b = Box::from_ball(std::vector<double>{0.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(b.min_sq_dist(std::vector<double>{3.0, 0.0}), 4.0);
  EXPECT_DOUBLE_EQ(b.min_sq_dist(std::vector<double>{2.0, 2.0}), 2.0);
}

TEST(Box, OverlapsBallBoundaryInclusive) {
  Box b = Box::from_point(std::vector<double>{0.0, 0.0});
  // Ball centre at (2,0), radius exactly 2: touches the box corner.
  EXPECT_TRUE(b.overlaps_ball(std::vector<double>{2.0, 0.0}, 2.0));
  EXPECT_FALSE(b.overlaps_ball(std::vector<double>{2.0, 0.0}, 1.999999));
}

TEST(Box, EnlargementMarginZeroWhenContained) {
  Box a = Box::from_ball(std::vector<double>{0.0, 0.0}, 2.0);
  Box inner = Box::from_ball(std::vector<double>{0.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(a.enlargement_margin(inner), 0.0);
}

TEST(Box, EnlargementMarginPositiveWhenGrowing) {
  Box a = Box::from_point(std::vector<double>{0.0, 0.0});
  Box far = Box::from_point(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.enlargement_margin(far), 7.0);
}

TEST(Box, MarginIsSumOfSides) {
  Box b = Box::from_point(std::vector<double>{0.0, 0.0});
  b.expand(std::span<const double>(std::vector<double>{2.0, 3.0}));
  EXPECT_DOUBLE_EQ(b.margin(), 5.0);
}

TEST(Box, HighDimensionalRoundTrip) {
  const std::size_t d = 74;
  std::vector<double> p(d, 1.5);
  Box b = Box::from_ball(p, 0.25);
  EXPECT_EQ(b.dim(), d);
  EXPECT_TRUE(b.contains(p));
  std::vector<double> q(d, 1.5);
  q[73] = 1.76;
  EXPECT_FALSE(b.contains(q));
  EXPECT_TRUE(b.overlaps_ball(q, 0.011));
}

}  // namespace
}  // namespace udb
