#include "common/dataset.hpp"

#include <gtest/gtest.h>

namespace udb {
namespace {

TEST(Dataset, BasicAccess) {
  Dataset ds(2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.coord(0, 1), 2.0);
  EXPECT_EQ(ds.coord(1, 0), 3.0);
  EXPECT_EQ(ds.point(1)[1], 4.0);
}

TEST(Dataset, RejectsZeroDim) {
  EXPECT_THROW(Dataset(0, {}), std::invalid_argument);
}

TEST(Dataset, RejectsRaggedBuffer) {
  EXPECT_THROW(Dataset(3, {1.0, 2.0}), std::invalid_argument);
}

TEST(Dataset, EmptyFactory) {
  Dataset ds = Dataset::empty(5);
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_EQ(ds.dim(), 5u);
}

TEST(Dataset, PushBackAppends) {
  Dataset ds = Dataset::empty(2);
  ds.push_back(std::vector<double>{1.0, 2.0});
  ds.push_back(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.coord(1, 1), 4.0);
}

TEST(Dataset, PushBackRejectsWrongDim) {
  Dataset ds = Dataset::empty(2);
  EXPECT_THROW(ds.push_back(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Dataset, SelectPreservesOrder) {
  Dataset ds(1, {10.0, 20.0, 30.0, 40.0});
  const std::vector<PointId> ids{3, 1};
  Dataset sub = ds.select(ids);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.coord(0, 0), 40.0);
  EXPECT_EQ(sub.coord(1, 0), 20.0);
}

TEST(Dataset, ProjectKeepsPrefixDims) {
  Dataset ds(3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  Dataset p = ds.project(2);
  EXPECT_EQ(p.dim(), 2u);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.coord(0, 1), 2.0);
  EXPECT_EQ(p.coord(1, 0), 4.0);
}

TEST(Dataset, ProjectFullDimIsIdentity) {
  Dataset ds(2, {1.0, 2.0, 3.0, 4.0});
  Dataset p = ds.project(2);
  EXPECT_EQ(p.raw(), ds.raw());
}

TEST(Dataset, ProjectRejectsBadDims) {
  Dataset ds(2, {1.0, 2.0});
  EXPECT_THROW(ds.project(0), std::invalid_argument);
  EXPECT_THROW(ds.project(3), std::invalid_argument);
}

TEST(Dataset, PointerAliasesRawBuffer) {
  Dataset ds(2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(ds.ptr(1), ds.raw().data() + 2);
}

}  // namespace
}  // namespace udb
