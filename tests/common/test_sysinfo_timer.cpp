#include <gtest/gtest.h>

#include <vector>

#include "common/sysinfo.hpp"
#include "common/timer.hpp"

namespace udb {
namespace {

TEST(SysInfo, PeakRssIsPositiveAndAtLeastCurrent) {
  const std::size_t current = current_rss_bytes();
  const std::size_t peak = peak_rss_bytes();
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current / 2);  // peak can't be wildly below current
}

TEST(SysInfo, PeakRssMonotoneUnderAllocation) {
  const std::size_t before = peak_rss_bytes();
  // Touch ~32 MB so the high-water mark must move.
  std::vector<char> hog(32 * 1024 * 1024);
  for (std::size_t i = 0; i < hog.size(); i += 4096) hog[i] = 1;
  const std::size_t after = peak_rss_bytes();
  EXPECT_GE(after, before);
  EXPECT_GE(after, before + 16 * 1024 * 1024);
}

TEST(WallTimer, AdvancesAndResets) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + 1.0;
  const double first = t.seconds();
  EXPECT_GT(first, 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), first + 1.0);
}

TEST(ThreadCpuTimer, ChargesBusyWorkNotSleep) {
  ThreadCpuTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 5000000; ++i) sink = sink + 1.0;
  const double busy = t.seconds();
  EXPECT_GT(busy, 0.0);
  // now() is monotone non-decreasing.
  const double a = ThreadCpuTimer::now();
  const double b = ThreadCpuTimer::now();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace udb
