// VFS (common/vfs.*): error mapping, crash-safe atomic writes, and the seeded
// I/O fault layer. The mapping table in the header is a contract other tests
// and the serving tier rely on — this file is where it is asserted:
//   open-for-read ENOENT -> NOT_FOUND; ENOSPC -> RESOURCE_EXHAUSTED;
//   fsync failure -> DATA_LOSS; everything else -> INTERNAL.

#include "common/vfs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace udb {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return ::testing::TempDir() + "udb_vfs_" + name;
  }

  // Every fault-plan test uninstalls on teardown, even on early ASSERT exits:
  // a leaked plan pointer into a dead stack frame would poison the rest of
  // the binary.
  void TearDown() override {
    vfs::install_io_fault_plan(nullptr);
    vfs::reset_io_fault_state();
  }

  std::vector<std::uint8_t> pattern(std::size_t n) {
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
      v[i] = static_cast<std::uint8_t>(i * 131 + 7);
    return v;
  }

  vfs::IoFaultPlan plan_;  // outlives any install in the test body
};

TEST_F(VfsTest, WriteReadRoundtrip) {
  const std::string p = path("roundtrip.bin");
  const auto data = pattern(100000);  // > kIoChunk: exercises chunking
  ASSERT_TRUE(vfs::write_file(p, data.data(), data.size()).ok());
  auto back = vfs::read_file(p);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(*back, data);
  auto size = vfs::file_size(p);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, data.size());
  EXPECT_TRUE(vfs::exists(p));
}

TEST_F(VfsTest, MissingFileIsNotFound) {
  auto r = vfs::read_file(path("nope.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  auto f = vfs::File::open_read(path("nope.bin"));
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kNotFound);
  auto d = vfs::list_dir(path("nodir"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST_F(VfsTest, UnwritablePathIsInternalNotNotFound) {
  // A missing parent directory is a caller bug / environment problem, not a
  // "file not found" the degradation paths should swallow.
  const std::string p = path("no_such_dir") + "/x.bin";
  const char b[1] = {0};
  const Status s = vfs::write_file(p, b, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST_F(VfsTest, MakeDirsAndListDir) {
  const std::string root = path("tree");
  ASSERT_TRUE(vfs::make_dirs(root + "/a/b").ok());
  ASSERT_TRUE(vfs::make_dirs(root + "/a/b").ok());  // idempotent
  const char b[1] = {7};
  ASSERT_TRUE(vfs::write_file(root + "/a/two.bin", b, 1).ok());
  ASSERT_TRUE(vfs::write_file(root + "/a/one.bin", b, 1).ok());
  auto names = vfs::list_dir(root + "/a");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"b", "one.bin", "two.bin"}));
}

TEST_F(VfsTest, BasenameDirname) {
  EXPECT_EQ(vfs::basename("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(vfs::basename("c.txt"), "c.txt");
  EXPECT_EQ(vfs::dirname("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(vfs::dirname("c.txt"), ".");
  EXPECT_EQ(vfs::dirname("/c.txt"), "/");
}

TEST_F(VfsTest, AtomicWritePublishesAndLeavesNoTmp) {
  const std::string p = path("atomic.bin");
  const auto data = pattern(5000);
  ASSERT_TRUE(vfs::write_file_atomic(p, data.data(), data.size()).ok());
  EXPECT_FALSE(vfs::exists(p + ".tmp"));
  auto back = vfs::read_file(p);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(VfsTest, InjectedEnospcIsResourceExhaustedAndPreservesTarget) {
  const std::string p = path("enospc.bin");
  const auto old_data = pattern(300);
  ASSERT_TRUE(vfs::write_file_atomic(p, old_data.data(), old_data.size()).ok());

  plan_.enospc_rate = 1.0;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan_);
  const auto new_data = pattern(4000);
  const Status s = vfs::write_file_atomic(p, new_data.data(), new_data.size());
  vfs::install_io_fault_plan(nullptr);

  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(vfs::io_fault_counts().enospc, 1u);
  // The failed replace left no droppings and the old bytes untouched.
  EXPECT_FALSE(vfs::exists(p + ".tmp"));
  auto back = vfs::read_file(p);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, old_data);
}

TEST_F(VfsTest, InjectedFsyncFailureIsDataLossAndPreservesTarget) {
  const std::string p = path("fsync.bin");
  const auto old_data = pattern(300);
  ASSERT_TRUE(vfs::write_file_atomic(p, old_data.data(), old_data.size()).ok());

  plan_.fsync_fail_rate = 1.0;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan_);
  const auto new_data = pattern(400);
  const Status s = vfs::write_file_atomic(p, new_data.data(), new_data.size());
  vfs::install_io_fault_plan(nullptr);

  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_GE(vfs::io_fault_counts().fsync_failures, 1u);
  EXPECT_FALSE(vfs::exists(p + ".tmp"));
  auto back = vfs::read_file(p);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, old_data);
}

TEST_F(VfsTest, RetriedFaultsAreInvisibleToTheCaller) {
  // EINTR and short reads/writes are transport noise the VFS retries away:
  // the roundtrip must stay byte-exact no matter how often they fire.
  const std::string p = path("flaky.bin");
  const auto data = pattern(200000);
  plan_.eintr_rate = 0.3;
  plan_.short_read_rate = 0.5;
  plan_.short_write_rate = 0.5;
  plan_.seed = 42;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan_);
  ASSERT_TRUE(vfs::write_file(p, data.data(), data.size()).ok());
  auto back = vfs::read_file(p);
  vfs::install_io_fault_plan(nullptr);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  const vfs::IoFaultCounts c = vfs::io_fault_counts();
  EXPECT_GE(c.short_writes + c.short_reads + c.eintr, 1u);
}

TEST_F(VfsTest, InjectedBitRotCorruptsTheBytesRead) {
  // The rot happens on the read side only — the file is fine, the caller's
  // checksum must catch the flip. This is the fault the CRC framing on every
  // persistence format exists for.
  const std::string p = path("bitrot.bin");
  const auto data = pattern(1000);
  ASSERT_TRUE(vfs::write_file(p, data.data(), data.size()).ok());

  plan_.bitrot_rate = 1.0;
  plan_.seed = 7;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan_);
  auto rotted = vfs::read_file(p);
  vfs::install_io_fault_plan(nullptr);
  ASSERT_TRUE(rotted.ok());
  ASSERT_EQ(rotted->size(), data.size());
  EXPECT_NE(*rotted, data);
  EXPECT_GE(vfs::io_fault_counts().bitrots, 1u);

  // With the plan gone the same file reads back clean.
  auto clean = vfs::read_file(p);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, data);
}

TEST_F(VfsTest, InjectedHardTruncationShortensTheRead) {
  const std::string p = path("trunc.bin");
  const auto data = pattern(1000);
  ASSERT_TRUE(vfs::write_file(p, data.data(), data.size()).ok());

  plan_.read_truncate_rate = 1.0;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan_);
  auto r = vfs::read_file(p);
  vfs::install_io_fault_plan(nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->size(), data.size());
  EXPECT_GE(vfs::io_fault_counts().truncated_reads, 1u);
}

TEST_F(VfsTest, NoPlanMeansNoAccounting) {
  // The zero-cost-when-unset contract: without a plan installed, operations
  // are not counted (and roll no dice).
  vfs::reset_io_fault_state();
  const std::string p = path("uncounted.bin");
  const auto data = pattern(100);
  ASSERT_TRUE(vfs::write_file(p, data.data(), data.size()).ok());
  EXPECT_EQ(vfs::io_fault_next_op(), 0u);
  EXPECT_EQ(vfs::io_fault_counts().ops, 0u);

  // A zero-rate plan counts ops without injecting — how the crash harness
  // measures a workload's sweep space.
  vfs::install_io_fault_plan(&plan_);
  auto r = vfs::read_file(p);
  vfs::install_io_fault_plan(nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
  EXPECT_GT(vfs::io_fault_next_op(), 0u);
}

TEST_F(VfsTest, DeterministicFaultDecisions) {
  // Same seed + same operation sequence -> same injected faults. This is
  // what makes a crash-harness failure reproducible from its seed alone.
  const std::string p = path("determinism.bin");
  const auto data = pattern(50000);
  ASSERT_TRUE(vfs::write_file(p, data.data(), data.size()).ok());

  plan_.bitrot_rate = 0.5;
  plan_.seed = 1234;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan_);
  auto first = vfs::read_file(p);
  vfs::reset_io_fault_state();
  auto second = vfs::read_file(p);
  vfs::install_io_fault_plan(nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // identical flips, not just identical counts
}

TEST_F(VfsTest, AppendHandleAppends) {
  const std::string p = path("append.bin");
  {
    auto f = vfs::File::create(p);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->write("abc", 3).ok());
    ASSERT_TRUE(f->close().ok());
  }
  {
    auto f = vfs::File::open_append(p);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->write("def", 3).ok());
    ASSERT_TRUE(f->close().ok());
  }
  auto back = vfs::read_file(p);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::string(back->begin(), back->end()), "abcdef");
}

TEST_F(VfsTest, RemoveFileToleratesMissing) {
  EXPECT_TRUE(vfs::remove_file(path("never_existed.bin")).ok());
}

}  // namespace
}  // namespace udb
