// The repo's JSON consumer (common/json.*). It parses artifacts the repo
// itself writes — BENCH_*.json, stats documents — but is hardened like the
// wire decoders: these tests pin the acceptance grammar (strict numbers,
// full escape handling, ordered objects with last-wins duplicates) and the
// rejection paths (depth bombs, trailing garbage, lone surrogates).

#include "common/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace udb {
namespace {

json::Value parse_ok(const std::string& text) {
  json::Value v;
  Status st = json::parse(text, v);
  EXPECT_TRUE(st.ok()) << st.to_string() << " for: " << text;
  return v;
}

void expect_rejected(const std::string& text) {
  json::Value v;
  Status st = json::parse(text, v);
  EXPECT_FALSE(st.ok()) << "accepted: " << text;
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << text;
}

TEST(JsonParseTest, ScalarsRoundtrip) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_EQ(parse_ok("0").number, 0.0);
  EXPECT_EQ(parse_ok("-17").number, -17.0);
  EXPECT_DOUBLE_EQ(parse_ok("3.5e2").number, 350.0);
  EXPECT_DOUBLE_EQ(parse_ok("1.25E-2").number, 0.0125);
  EXPECT_EQ(parse_ok("\"hi\"").string, "hi");
  EXPECT_EQ(parse_ok("  \t\n 42 \r ").number, 42.0);
}

TEST(JsonParseTest, NumbersArePreservedExactlyForWriterOutput) {
  // The writers emit via %.17g / integer formatting; the reader must give
  // back the identical double.
  EXPECT_EQ(parse_ok("9007199254740993").number, 9007199254740993.0);
  EXPECT_EQ(parse_ok("0.1").number, 0.1);
  EXPECT_EQ(parse_ok("2.2250738585072014e-308").number,
            2.2250738585072014e-308);
}

TEST(JsonParseTest, StrictNumberGrammar) {
  // One documented leniency: leading zeros are folded into the digit run
  // (our own writers never emit them, and "01" is unambiguous).
  EXPECT_EQ(parse_ok("01").number, 1.0);
  expect_rejected("1.");        // digits required after the point
  expect_rejected(".5");        // digits required before it too
  expect_rejected("1e");        // empty exponent
  expect_rejected("+1");        // no leading plus
  expect_rejected("NaN");       // non-finite literals are not JSON
  expect_rejected("Infinity");
  expect_rejected("1e400000");  // overflows to inf -> rejected as non-finite
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\b\f\n\r\t")").string,
            "a\"b\\c/d\b\f\n\r\t");
  // \u escapes re-encode as UTF-8: 2-byte (U+00E9), 3-byte (U+20AC), and a
  // surrogate pair for the astral plane (U+1F600 -> 4 bytes).
  EXPECT_EQ(parse_ok(R"("\u00e9\u20ac")").string, "\xC3\xA9\xE2\x82\xAC");
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").string, "\xF0\x9F\x98\x80");
  // Raw UTF-8 bytes in a string pass through untouched.
  EXPECT_EQ(parse_ok("\"\xC3\xA9\"").string, "\xC3\xA9");
  expect_rejected(R"("\ud83d")");        // lone high surrogate
  expect_rejected(R"("\ude00")");        // lone low surrogate
  expect_rejected(R"("\ud83dA")");  // high followed by a non-surrogate
  expect_rejected(R"("\uZZZZ")");        // bad hex
  expect_rejected(R"("\q")");            // unknown escape
  expect_rejected("\"raw\ncontrol\"");   // unescaped control character
  expect_rejected("\"unterminated");
}

TEST(JsonParseTest, ObjectsPreserveOrderAndLastDuplicateWins) {
  const json::Value v = parse_ok(R"({"b": 1, "a": 2, "b": 3})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object.size(), 3u);  // order preserved, nothing collapsed
  EXPECT_EQ(v.object[0].first, "b");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.find("b")->number, 3.0);  // ... but lookup takes the last
  EXPECT_EQ(v.find("a")->number, 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParseTest, FindPathWalksNestedObjects) {
  const json::Value v = parse_ok(
      R"({"serve_ledger": {"holds": true}, "metrics": {"counters": {"x": 7}}})");
  ASSERT_NE(v.find_path("serve_ledger.holds"), nullptr);
  EXPECT_TRUE(v.find_path("serve_ledger.holds")->boolean);
  EXPECT_EQ(v.find_path("metrics.counters.x")->number, 7.0);
  EXPECT_EQ(v.find_path("metrics.counters.y"), nullptr);
  EXPECT_EQ(v.find_path("metrics.counters.x.deeper"), nullptr);
  // find/find_path on a non-object is nullptr, not UB.
  EXPECT_EQ(parse_ok("[1,2]").find("x"), nullptr);
}

TEST(JsonParseTest, ArraysAndEmptyContainers) {
  const json::Value v = parse_ok(R"([1, "two", [3], {"four": 4}, null])");
  ASSERT_EQ(v.array.size(), 5u);
  EXPECT_EQ(v.array[0].number, 1.0);
  EXPECT_EQ(v.array[1].string, "two");
  EXPECT_EQ(v.array[2].array[0].number, 3.0);
  EXPECT_EQ(v.array[3].find("four")->number, 4.0);
  EXPECT_TRUE(v.array[4].is_null());
  EXPECT_TRUE(parse_ok("[]").array.empty());
  EXPECT_TRUE(parse_ok("{}").object.empty());
}

TEST(JsonParseTest, DepthBombIsRejectedNotOverflowed) {
  // One past the cap must be an error; exactly at the cap must parse.
  std::string at_cap, past_cap;
  for (std::size_t i = 0; i < json::kMaxDepth; ++i) at_cap += '[';
  at_cap += "1";
  for (std::size_t i = 0; i < json::kMaxDepth; ++i) at_cap += ']';
  past_cap = "[" + at_cap + "]";
  (void)parse_ok(at_cap);
  expect_rejected(past_cap);
  // Alternating object/array nesting hits the same cap.
  std::string mixed;
  for (std::size_t i = 0; i < json::kMaxDepth; ++i)
    mixed += (i % 2 == 0) ? std::string("{\"k\":") : std::string("[");
  mixed += "0";
  for (std::size_t i = json::kMaxDepth; i-- > 0;)
    mixed += (i % 2 == 0) ? '}' : ']';
  expect_rejected("[" + mixed + "]");
}

TEST(JsonParseTest, MalformedDocumentsFailCleanly) {
  expect_rejected("");
  expect_rejected("   ");
  expect_rejected("{\"a\": 1,}");      // trailing comma
  expect_rejected("[1, 2,]");
  expect_rejected("{\"a\" 1}");        // missing colon
  expect_rejected("{a: 1}");           // unquoted key
  expect_rejected("{\"a\": 1");        // unterminated object
  expect_rejected("[1, 2");            // unterminated array
  expect_rejected("tru");              // truncated literal
  expect_rejected("1 2");              // trailing garbage
  expect_rejected("{} {}");
  expect_rejected("\"ok\" extra");
}

TEST(JsonParseTest, ReusedOutputValueIsReset) {
  json::Value v = parse_ok(R"({"a": 1})");
  ASSERT_TRUE(json::parse("[7]", v).ok());
  EXPECT_TRUE(v.is_array());
  EXPECT_TRUE(v.object.empty());  // previous document fully cleared
  // A failed parse must not leave the old value dangling either.
  ASSERT_FALSE(json::parse("{bad", v).ok());
}

}  // namespace
}  // namespace udb
