#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace udb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, CoversFullDoubleRangeStatistically) {
  Rng rng(19);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    if (v < 0.1) ++low;
    if (v > 0.9) ++high;
  }
  EXPECT_GT(low, 700);
  EXPECT_GT(high, 700);
}

}  // namespace
}  // namespace udb
