#include "common/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/generators.hpp"

namespace udb {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("udb_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, CsvRoundTrip) {
  Dataset ds = gen_uniform(50, 3, -10.0, 10.0, 1);
  write_csv(ds, path("a.csv"));
  Dataset back = read_csv(path("a.csv"));
  ASSERT_EQ(back.size(), ds.size());
  ASSERT_EQ(back.dim(), ds.dim());
  for (std::size_t i = 0; i < ds.raw().size(); ++i)
    EXPECT_DOUBLE_EQ(back.raw()[i], ds.raw()[i]);
}

TEST_F(IoTest, CsvAcceptsWhitespaceAndComments) {
  std::ofstream out(path("b.csv"));
  out << "# header comment\n1.0 2.0\n\n3.0,4.0\n";
  out.close();
  Dataset ds = read_csv(path("b.csv"));
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_EQ(ds.coord(1, 1), 4.0);
}

TEST_F(IoTest, CsvRejectsInconsistentDim) {
  std::ofstream out(path("c.csv"));
  out << "1,2\n3,4,5\n";
  out.close();
  EXPECT_THROW(read_csv(path("c.csv")), std::runtime_error);
}

TEST_F(IoTest, CsvRejectsMissingFile) {
  EXPECT_THROW(read_csv(path("nope.csv")), std::runtime_error);
}

TEST_F(IoTest, CsvRejectsEmptyFile) {
  std::ofstream(path("empty.csv")).close();
  EXPECT_THROW(read_csv(path("empty.csv")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripBitExact) {
  Dataset ds = gen_blobs(200, 5, 3, 100.0, 2.0, 0.1, 7);
  write_binary(ds, path("a.bin"));
  Dataset back = read_binary(path("a.bin"));
  EXPECT_EQ(back.dim(), ds.dim());
  EXPECT_EQ(back.raw(), ds.raw());
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream out(path("bad.bin"), std::ios::binary);
  out << "XXXXGARBAGE";
  out.close();
  EXPECT_THROW(read_binary(path("bad.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  Dataset ds = gen_uniform(100, 2, 0.0, 1.0, 3);
  write_binary(ds, path("t.bin"));
  std::filesystem::resize_file(path("t.bin"), 64);
  EXPECT_THROW(read_binary(path("t.bin")), std::runtime_error);
}

TEST_F(IoTest, CsvRejectsNonFiniteValues) {
  std::ofstream out(path("nf.csv"));
  out << "1.0,2.0\nnan,4.0\n";
  out.close();
  EXPECT_THROW(read_csv(path("nf.csv")), std::runtime_error);
  std::ofstream out2(path("inf.csv"));
  out2 << "1.0,inf\n";
  out2.close();
  EXPECT_THROW(read_csv(path("inf.csv")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsOverflowingHeader) {
  // dim * count * sizeof(double) overflows size_t: must throw, not allocate.
  std::ofstream out(path("ovf.bin"), std::ios::binary);
  out.write("UDB1", 4);
  const std::uint64_t dim = std::uint64_t{1} << 62;
  const std::uint64_t count = 16;
  out.write(reinterpret_cast<const char*>(&dim), sizeof dim);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.close();
  EXPECT_THROW(read_binary(path("ovf.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsHeaderLargerThanFile) {
  // Plausible (non-overflowing) header advertising far more payload than the
  // file holds: rejected against the actual file size, before allocation.
  std::ofstream out(path("big.bin"), std::ios::binary);
  out.write("UDB1", 4);
  const std::uint64_t dim = 3;
  const std::uint64_t count = 1000000;
  out.write(reinterpret_cast<const char*>(&dim), sizeof dim);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  const double few[6] = {1, 2, 3, 4, 5, 6};
  out.write(reinterpret_cast<const char*>(few), sizeof few);
  out.close();
  EXPECT_THROW(read_binary(path("big.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryEmptyDatasetRoundTrip) {
  Dataset ds = Dataset::empty(4);
  write_binary(ds, path("e.bin"));
  Dataset back = read_binary(path("e.bin"));
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.dim(), 4u);
}

}  // namespace
}  // namespace udb
