#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace udb {
namespace {

TEST(ThreadPool, RunsEveryTidExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h.store(0);
  pool.run([&](unsigned tid) { hits[tid].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.run([&](unsigned tid) {
    EXPECT_EQ(tid, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  // The engine submits one job per phase; the pool must hand off cleanly
  // job after job without losing workers.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int job = 0; job < 200; ++job)
    pool.run([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 200 * 3);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterJoin) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run([&](unsigned tid) {
        if (tid == 1) throw std::runtime_error("boom");
        completed.fetch_add(1);
      }),
      std::runtime_error);
  // The non-throwing tids all ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 3);
  // And the pool is still usable afterwards.
  std::atomic<int> again{0};
  pool.run([&](unsigned) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 4);
}

TEST(ParallelFor, CoversRangeExactlyOnceAndInOrderPerTid) {
  ThreadPool pool(4);
  const std::size_t n = 1013;  // deliberately not a multiple of 4
  std::vector<std::atomic<int>> seen(n);
  for (auto& s : seen) s.store(0);
  parallel_for(&pool, n, [&](std::size_t begin, std::size_t end, unsigned tid) {
    EXPECT_LT(tid, 4u);
    EXPECT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) seen[i].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ParallelFor, NullPoolRunsInlineAsTidZero) {
  std::vector<int> seen(100, 0);
  parallel_for(nullptr, seen.size(),
               [&](std::size_t begin, std::size_t end, unsigned tid) {
                 EXPECT_EQ(tid, 0u);
                 for (std::size_t i = begin; i < end; ++i) ++seen[i];
               });
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(ParallelFor, StaticPartitionIsDeterministic) {
  // The static split maps each index to a fixed tid: two runs must agree.
  ThreadPool pool(3);
  const std::size_t n = 97;
  std::vector<unsigned> owner_a(n, 99), owner_b(n, 99);
  auto record = [n](std::vector<unsigned>& owner) {
    return [&owner](std::size_t begin, std::size_t end, unsigned tid) {
      for (std::size_t i = begin; i < end; ++i) owner[i] = tid;
    };
  };
  parallel_for(&pool, n, record(owner_a));
  parallel_for(&pool, n, record(owner_b));
  EXPECT_EQ(owner_a, owner_b);
}

TEST(ParallelForChunked, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 2003;
  std::vector<std::atomic<int>> seen(n);
  for (auto& s : seen) s.store(0);
  parallel_for_chunked(&pool, n, 16,
                       [&](std::size_t begin, std::size_t end, unsigned) {
                         EXPECT_LE(end - begin, 16u);
                         for (std::size_t i = begin; i < end; ++i)
                           seen[i].fetch_add(1);
                       });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ParallelForChunked, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for_chunked(&pool, 0, 8,
                       [&](std::size_t, std::size_t, unsigned) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForChunked, SumMatchesSequential) {
  ThreadPool pool(8);  // oversubscribed on small machines; still correct
  const std::size_t n = 50000;
  std::vector<std::uint64_t> partial(8, 0);
  parallel_for_chunked(&pool, n, 128,
                       [&](std::size_t begin, std::size_t end, unsigned tid) {
                         std::uint64_t local = 0;
                         for (std::size_t i = begin; i < end; ++i) local += i;
                         partial[tid] += local;
                       });
  const std::uint64_t total =
      std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace udb
