// Exactness property suite for the SIMD distance-kernel family
// (common/simd.hpp, docs/KERNELS.md). The contract under test: every
// dispatch target produces BIT-IDENTICAL squared distances to the portable
// scalar reference — including duplicates, signed zeros, denormals, and
// points exactly on the eps boundary — so forcing any UDB_SIMD target can
// never change a clustering.

#include "common/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace udb {
namespace {

// Restores the startup dispatch choice when a test forces targets.
struct TargetGuard {
  SimdTarget prev = active_simd_target();
  ~TargetGuard() { force_simd_target(prev); }
};

std::vector<double> scalar_ref(const double* q, const double* block,
                               std::size_t count, std::size_t stride,
                               std::size_t dim) {
  std::vector<double> out(count);
  sq_dist_block_soa_scalar(q, block, count, stride, dim, out.data());
  return out;
}

void expect_bitwise_equal(const std::vector<double>& ref,
                          const std::vector<double>& got, SimdTarget t,
                          std::size_t dim, std::size_t count) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // memcmp-level comparison: NaN-safe and catches -0.0 vs 0.0.
    EXPECT_EQ(std::memcmp(&ref[i], &got[i], sizeof(double)), 0)
        << simd_target_name(t) << " dim=" << dim << " count=" << count
        << " i=" << i << " ref=" << ref[i] << " got=" << got[i];
  }
}

TEST(SimdKernel, AllTargetsBitExactOnRandomBlocks) {
  Rng rng(20260808);
  const std::size_t counts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100};
  const std::size_t dims[] = {1, 2, 3, 4, 7, 8, 16, 33};
  for (std::size_t dim : dims) {
    for (std::size_t count : counts) {
      const std::size_t stride = count + (count % 3);  // spare slots too
      std::vector<double> block(std::max<std::size_t>(1, stride * dim));
      std::vector<double> q(dim);
      for (auto& v : block) v = rng.uniform(-1e3, 1e3);
      for (auto& v : q) v = rng.uniform(-1e3, 1e3);
      if (count >= 4) {
        // Duplicates of the query (distance exactly 0) and -0.0 twins.
        const std::size_t dup = count / 2;
        for (std::size_t k = 0; k < dim; ++k) {
          block[k * stride + dup] = q[k];
          block[k * stride + dup - 1] = -0.0;
        }
      }
      const auto ref = scalar_ref(q.data(), block.data(), count, stride, dim);
      for (SimdTarget t : runnable_simd_targets()) {
        std::vector<double> got(count);
        simd_kernel_for(t)(q.data(), block.data(), count, stride, dim,
                           got.data());
        expect_bitwise_equal(ref, got, t, dim, count);
      }
    }
  }
}

TEST(SimdKernel, DenormalsAndExtremesBitExact) {
  const std::size_t dim = 3, count = 9, stride = 9;
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double tiny = 1e-310;  // subnormal
  const double huge = 1e150;   // squares to ~1e300, still finite
  std::vector<double> block(stride * dim, 0.0);
  std::vector<double> q = {tiny, -tiny, denorm};
  const double vals[] = {0.0, -0.0, denorm, -denorm, tiny, -tiny, huge, -huge, 1.0};
  for (std::size_t i = 0; i < count; ++i)
    for (std::size_t k = 0; k < dim; ++k)
      block[k * stride + i] = vals[(i + k) % count];
  const auto ref = scalar_ref(q.data(), block.data(), count, stride, dim);
  for (SimdTarget t : runnable_simd_targets()) {
    std::vector<double> got(count);
    simd_kernel_for(t)(q.data(), block.data(), count, stride, dim, got.data());
    expect_bitwise_equal(ref, got, t, dim, count);
  }
}

TEST(SimdKernel, ExactEpsBoundaryIsExactForEveryTarget) {
  // q at the origin, candidates on a 3-4-5 triangle: squared distance is
  // exactly 25.0 in IEEE double, so the strict/non-strict eps comparison
  // flips on bit-equality. Every target must produce exactly 25.0.
  const std::size_t dim = 2, count = 8, stride = 8;
  std::vector<double> q = {0.0, 0.0};
  std::vector<double> block(stride * dim);
  for (std::size_t i = 0; i < count; ++i) {
    block[0 * stride + i] = (i % 2 == 0) ? 3.0 : -3.0;
    block[1 * stride + i] = (i % 4 < 2) ? 4.0 : -4.0;
  }
  for (SimdTarget t : runnable_simd_targets()) {
    std::vector<double> got(count);
    simd_kernel_for(t)(q.data(), block.data(), count, stride, dim, got.data());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(got[i], 25.0) << simd_target_name(t) << " i=" << i;
      EXPECT_FALSE(got[i] < 25.0);  // strict eps=5 excludes
      EXPECT_TRUE(got[i] <= 25.0);  // non-strict eps=5 includes
    }
  }
}

TEST(SimdDispatch, NamesParseRoundTrip) {
  for (SimdTarget t : {SimdTarget::kScalar, SimdTarget::kAvx2,
                       SimdTarget::kAvx512, SimdTarget::kNeon}) {
    SimdTarget parsed;
    ASSERT_TRUE(parse_simd_target(simd_target_name(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  SimdTarget ignored;
  EXPECT_FALSE(parse_simd_target("bogus", ignored));
  EXPECT_FALSE(parse_simd_target("", ignored));
}

TEST(SimdDispatch, ScalarAlwaysRunnableAndListedFirst) {
  const auto targets = runnable_simd_targets();
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets.front(), SimdTarget::kScalar);
  EXPECT_TRUE(simd_target_runnable(SimdTarget::kScalar));
  for (SimdTarget t : targets) {
    EXPECT_TRUE(simd_target_runnable(t));
    EXPECT_NE(simd_kernel_for(t), nullptr);
    EXPECT_GE(simd_lanes(t), 1u);
  }
}

TEST(SimdDispatch, ForceSwitchesActiveTargetAndLanes) {
  TargetGuard guard;
  for (SimdTarget t : runnable_simd_targets()) {
    force_simd_target(t);
    EXPECT_EQ(active_simd_target(), t);
    EXPECT_EQ(active_simd_lanes(), simd_lanes(t));
    // The hot entry point must route through the forced target and still be
    // bit-exact vs scalar.
    const double q[2] = {1.5, -2.5};
    const double block[6] = {0.25, 1.0, 2.0, -0.5, 3.0, 4.0};  // stride 3
    double ref[3], got[3];
    sq_dist_block_soa_scalar(q, block, 3, 3, 2, ref);
    sq_dist_block_soa(q, block, 3, 3, 2, got);
    EXPECT_EQ(std::memcmp(ref, got, sizeof ref), 0) << simd_target_name(t);
  }
}

TEST(SimdDispatch, ForcingUnrunnableTargetThrows) {
  TargetGuard guard;
  for (SimdTarget t : {SimdTarget::kAvx2, SimdTarget::kAvx512,
                       SimdTarget::kNeon}) {
    if (simd_target_runnable(t)) continue;
    EXPECT_THROW(force_simd_target(t), std::invalid_argument);
  }
  // Whatever happened above, scalar is always forceable.
  force_simd_target(SimdTarget::kScalar);
  EXPECT_EQ(active_simd_target(), SimdTarget::kScalar);
}

}  // namespace
}  // namespace udb
