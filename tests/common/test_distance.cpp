#include "common/distance.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace udb {
namespace {

TEST(Distance, SquaredEuclidean) {
  const std::vector<double> a{0.0, 0.0, 0.0};
  const std::vector<double> b{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(sq_dist(a.data(), b.data(), 3), 9.0);
  EXPECT_DOUBLE_EQ(dist(a.data(), b.data(), 3), 3.0);
}

TEST(Distance, ZeroForIdenticalPoints) {
  const std::vector<double> a{1.5, -2.5};
  EXPECT_EQ(sq_dist(a.data(), a.data(), 2), 0.0);
}

TEST(Distance, Symmetric) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{-3.0, 0.5};
  EXPECT_DOUBLE_EQ(sq_dist(a.data(), b.data(), 2),
                   sq_dist(b.data(), a.data(), 2));
}

TEST(Distance, HighDimensionalAccumulation) {
  std::vector<double> a(74, 0.0), b(74, 1.0);
  EXPECT_DOUBLE_EQ(sq_dist(a.data(), b.data(), 74), 74.0);
}

TEST(Distance, StrictComparisonSemantics) {
  // The DBSCAN neighborhood predicate is DIST < eps; squared comparison
  // against eps^2 must preserve the strict boundary.
  const std::vector<double> a{0.0};
  const std::vector<double> b{2.0};
  const double eps = 2.0;
  EXPECT_FALSE(sq_dist(a.data(), b.data(), 1) < eps * eps);
  EXPECT_TRUE(sq_dist(a.data(), b.data(), 1) <= eps * eps);
}

}  // namespace
}  // namespace udb
