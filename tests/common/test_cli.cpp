#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace udb {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli = make({"--eps", "0.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 1.0), 0.5);
}

TEST(Cli, EqualsSeparatedValue) {
  Cli cli = make({"--eps=2.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 1.0), 2.5);
}

TEST(Cli, FallbackWhenAbsent) {
  Cli cli = make({});
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_EQ(cli.get_string("name", "x"), "x");
}

TEST(Cli, BareFlagIsTrue) {
  Cli cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, BoolParsesVariants) {
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=no"}).get_bool("a", true));
}

TEST(Cli, IntList) {
  Cli cli = make({"--ranks", "1,2,4,8"});
  const auto v = cli.get_int_list("ranks", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], 8);
}

TEST(Cli, DoubleList) {
  Cli cli = make({"--eps=0.5,1.5"});
  const auto v = cli.get_double_list("eps", {});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[1], 1.5);
}

TEST(Cli, ListFallback) {
  Cli cli = make({});
  const auto v = cli.get_int_list("ranks", {7});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
}

TEST(Cli, RejectsNonFlagArgument) {
  std::vector<const char*> argv{"prog", "loose"};
  EXPECT_THROW(Cli(2, argv.data()), std::invalid_argument);
}

TEST(Cli, CheckUnusedThrowsOnTypo) {
  Cli cli = make({"--epz=1"});
  (void)cli.get_double("eps", 1.0);
  EXPECT_THROW(cli.check_unused(), std::invalid_argument);
}

TEST(Cli, CheckUnusedPassesWhenAllRead) {
  Cli cli = make({"--eps=1"});
  (void)cli.get_double("eps", 2.0);
  EXPECT_NO_THROW(cli.check_unused());
}

TEST(Cli, NegativeNumberAsValue) {
  Cli cli = make({"--lo", "-3"});
  EXPECT_EQ(cli.get_int("lo", 0), -3);
}

TEST(Cli, RejectsNonNumericDouble) {
  EXPECT_THROW((void)make({"--eps=abc"}).get_double("eps", 1.0),
               std::invalid_argument);
}

TEST(Cli, RejectsTrailingGarbageOnNumber) {
  EXPECT_THROW((void)make({"--eps=2.5x"}).get_double("eps", 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)make({"--n=12.5"}).get_int("n", 1),
               std::invalid_argument);
}

TEST(Cli, RejectsOutOfRangeNumber) {
  EXPECT_THROW((void)make({"--n=99999999999999999999999"}).get_int("n", 1),
               std::invalid_argument);
}

TEST(Cli, ParseErrorNamesTheFlag) {
  try {
    (void)make({"--minpts=five"}).get_int("minpts", 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--minpts"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("five"), std::string::npos);
  }
}

TEST(Cli, RejectsBadListElement) {
  EXPECT_THROW((void)make({"--ranks=1,x,4"}).get_int_list("ranks", {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace udb
