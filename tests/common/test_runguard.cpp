#include "common/runguard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace udb {
namespace {

TEST(RunGuard, UnlimitedGuardPassesChecks) {
  RunGuard g;
  EXPECT_TRUE(g.check("anywhere").ok());
  EXPECT_FALSE(g.has_deadline());
  EXPECT_GT(g.remaining_seconds(), 1e20);
  EXPECT_TRUE(g.try_charge(1 << 30, "big").ok());  // no budget: all charges ok
  g.release(1 << 30);
}

TEST(RunGuard, CountsCheckpoints) {
  RunGuard g;
  const auto before = g.checkpoints_passed();
  (void)g.check("a");
  (void)g.check("b");
  EXPECT_EQ(g.checkpoints_passed(), before + 2);
}

TEST(RunGuard, DeadlineTripsAndLatches) {
  RunGuard g(RunLimits{1e-9, 0});
  // Any measurable elapsed time exceeds a nanosecond deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(g.check("phase").code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(g.tripped());
  // Latched: later checks report the same code without re-measuring.
  EXPECT_EQ(g.check("elsewhere").code(), StatusCode::kDeadlineExceeded);
}

TEST(RunGuard, RearmRestartsClockAndClearsTrip) {
  RunGuard g(RunLimits{1e-9, 0});
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(g.check("x").ok());
  g.arm(RunLimits{3600.0, 0});
  EXPECT_TRUE(g.check("x").ok());
}

TEST(RunGuard, BudgetRejectsOverCharge) {
  RunGuard g(RunLimits{0.0, 1000});
  EXPECT_TRUE(g.try_charge(600, "a").ok());
  const Status s = g.try_charge(600, "b");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("b"), std::string::npos);  // names the site
  // The failed charge must not leak into the accounting.
  EXPECT_EQ(g.bytes_in_use(), 600u);
  EXPECT_TRUE(g.tripped());
}

TEST(RunGuard, ReleaseMakesRoomAndPeakPersists) {
  RunGuard g(RunLimits{0.0, 1000});
  EXPECT_TRUE(g.try_charge(900, "a").ok());
  g.release(900);
  g.arm(RunLimits{0.0, 1000});  // clear the non-tripped state explicitly
  EXPECT_TRUE(g.try_charge(900, "b").ok());
  EXPECT_EQ(g.bytes_peak(), 900u);
  g.release(900);
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

TEST(RunGuard, CancelWinsOverEverything) {
  RunGuard g;
  g.request_cancel();
  EXPECT_EQ(g.check("loop").code(), StatusCode::kCancelled);
  EXPECT_TRUE(g.tripped());
  EXPECT_THROW(g.check_throw("loop"), StatusError);
}

TEST(RunGuard, DegradedModeDropsLimitsKeepsCancelToken) {
  RunGuard g(RunLimits{1e-9, 100});
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(g.check("x").ok());
  g.enter_degraded_mode();
  EXPECT_TRUE(g.check("fallback").ok());
  EXPECT_TRUE(g.try_charge(1 << 20, "fallback alloc").ok());
  g.release(1 << 20);
  g.request_cancel();  // Ctrl-C still works in degraded mode
  EXPECT_EQ(g.check("fallback").code(), StatusCode::kCancelled);
}

TEST(ScopedCharge, ReleasesOnDestruction) {
  RunGuard g(RunLimits{0.0, 1000});
  {
    ScopedCharge c;
    ASSERT_TRUE(c.acquire(&g, 800, "block").ok());
    EXPECT_EQ(g.bytes_in_use(), 800u);
  }
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

TEST(ScopedCharge, ReacquireReleasesPrevious) {
  RunGuard g(RunLimits{0.0, 1000});
  ScopedCharge c;
  ASSERT_TRUE(c.acquire(&g, 800, "first").ok());
  ASSERT_TRUE(c.acquire(&g, 900, "grown").ok());  // 800 released before 900
  EXPECT_EQ(g.bytes_in_use(), 900u);
  c.reset();
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

TEST(ScopedCharge, FailedAcquireChargesNothing) {
  RunGuard g(RunLimits{0.0, 100});
  ScopedCharge c;
  EXPECT_FALSE(c.acquire(&g, 200, "too big").ok());
  EXPECT_EQ(g.bytes_in_use(), 0u);
  EXPECT_EQ(c.bytes(), 0u);
}

TEST(ScopedCharge, NullGuardIsFree) {
  ScopedCharge c;
  EXPECT_TRUE(c.acquire(nullptr, 1 << 30, "ungoverned").ok());
  EXPECT_EQ(c.bytes(), 0u);
}

TEST(ScopedCharge, MoveTransfersOwnership) {
  RunGuard g(RunLimits{0.0, 1000});
  ScopedCharge a;
  ASSERT_TRUE(a.acquire(&g, 500, "x").ok());
  ScopedCharge b = std::move(a);
  EXPECT_EQ(a.bytes(), 0u);
  EXPECT_EQ(b.bytes(), 500u);
  EXPECT_EQ(g.bytes_in_use(), 500u);
  b.reset();
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

// The latency contract: once one worker trips the guard, every worker of a
// guarded parallel_for_chunked stops at its next chunk boundary — the loop
// never drains the remaining range.
TEST(RunGuardParallel, CancellationStopsWithinOneChunkPerThread) {
  for (unsigned nt : {2u, 4u}) {
    ThreadPool pool(nt);
    RunGuard g;
    constexpr std::size_t kN = 100000;
    constexpr std::size_t kChunk = 64;
    std::atomic<std::size_t> done{0};
    bool threw = false;
    try {
      parallel_for_chunked(
          &pool, kN, kChunk,
          [&](std::size_t begin, std::size_t end, unsigned) {
            done.fetch_add(end - begin);
            if (begin == 0) g.request_cancel();  // first chunk cancels the run
          },
          &g);
    } catch (const StatusError& e) {
      threw = true;
      EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
    }
    EXPECT_TRUE(threw);
    // Each worker finishes at most the chunk it was inside plus one more it
    // had already claimed before observing the trip.
    EXPECT_LE(done.load(), static_cast<std::size_t>(2 * nt) * kChunk)
        << "threads=" << nt;
  }
}

TEST(RunGuardParallel, SingleThreadGuardedPathKeepsChunkBound) {
  RunGuard g;
  std::size_t done = 0;
  bool threw = false;
  try {
    parallel_for_chunked(
        nullptr, 10000, 32,
        [&](std::size_t begin, std::size_t end, unsigned) {
          done += end - begin;
          if (begin == 0) g.request_cancel();
        },
        &g);
  } catch (const StatusError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_LE(done, 64u);  // the cancelling chunk, plus at most one claimed
}

TEST(RunGuardParallel, GuardedParallelForChecksBeforeBodies) {
  ThreadPool pool(2);
  RunGuard g;
  g.request_cancel();
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(parallel_for(
                   &pool, 1000,
                   [&](std::size_t, std::size_t, unsigned) { ran.fetch_add(1); },
                   &g),
               StatusError);
  EXPECT_EQ(ran.load(), 0u);
}

}  // namespace
}  // namespace udb
