#include "metrics/exactness.hpp"

#include <gtest/gtest.h>

namespace udb {
namespace {

ClusteringResult make(std::vector<std::int64_t> label,
                      std::vector<std::uint8_t> core) {
  ClusteringResult r;
  r.label = std::move(label);
  r.is_core = std::move(core);
  return r;
}

TEST(Exactness, IdenticalClusteringsAreExact) {
  auto a = make({0, 0, 1, kNoise}, {1, 0, 1, 0});
  EXPECT_TRUE(compare_exact(a, a).exact());
}

TEST(Exactness, LabelRenamingIsExact) {
  auto a = make({0, 0, 1, kNoise}, {1, 0, 1, 0});
  auto b = make({7, 7, 3, kNoise}, {1, 0, 1, 0});
  EXPECT_TRUE(compare_exact(a, b).exact());
}

TEST(Exactness, CoreFlagMismatchDetected) {
  auto a = make({0, 0}, {1, 0});
  auto b = make({0, 0}, {1, 1});
  const auto rep = compare_exact(a, b);
  EXPECT_FALSE(rep.exact());
  EXPECT_FALSE(rep.core_sets_equal);
}

TEST(Exactness, CorePartitionSplitDetected) {
  // Two cores in one cluster vs two clusters.
  auto a = make({0, 0}, {1, 1});
  auto b = make({0, 1}, {1, 1});
  const auto rep = compare_exact(a, b);
  EXPECT_FALSE(rep.exact());
  EXPECT_FALSE(rep.core_partitions_equal);
}

TEST(Exactness, CorePartitionMergeDetected) {
  auto a = make({0, 1}, {1, 1});
  auto b = make({5, 5}, {1, 1});
  EXPECT_FALSE(compare_exact(a, b).exact());
}

TEST(Exactness, BorderMembershipMayDiffer) {
  // Point 2 is border: cluster 0 in `a`, cluster 1 in `b`. Still exact.
  auto a = make({0, 1, 0}, {1, 1, 0});
  auto b = make({0, 1, 1}, {1, 1, 0});
  EXPECT_TRUE(compare_exact(a, b).exact());
}

TEST(Exactness, NoiseVsBorderDetected) {
  auto a = make({0, 0}, {1, 0});
  auto b = make({0, kNoise}, {1, 0});
  const auto rep = compare_exact(a, b);
  EXPECT_FALSE(rep.exact());
  EXPECT_FALSE(rep.noise_sets_equal);
}

TEST(Exactness, CoreLabeledNoiseIsError) {
  auto a = make({0}, {1});
  auto b = make({kNoise}, {1});
  EXPECT_FALSE(compare_exact(a, b).exact());
}

TEST(Exactness, SizeMismatchIsNotExact) {
  auto a = make({0}, {1});
  auto b = make({0, 0}, {1, 1});
  EXPECT_FALSE(compare_exact(a, b).exact());
}

TEST(Exactness, EmptyClusteringsAreExact) {
  auto a = make({}, {});
  EXPECT_TRUE(compare_exact(a, a).exact());
}

TEST(ClusteringResult, DerivedCounts) {
  auto a = make({0, 0, 1, kNoise, 1}, {1, 0, 1, 0, 1});
  EXPECT_EQ(a.num_clusters(), 2u);
  EXPECT_EQ(a.num_core(), 3u);
  EXPECT_EQ(a.num_border(), 1u);
  EXPECT_EQ(a.num_noise(), 1u);
  EXPECT_EQ(a.kind(1), PointKind::Border);
  EXPECT_EQ(a.kind(3), PointKind::Noise);
  EXPECT_EQ(a.kind(4), PointKind::Core);
}

}  // namespace
}  // namespace udb
