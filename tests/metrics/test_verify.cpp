// The first-principles DBSCAN verifier must accept genuine DBSCAN output and
// pinpoint each corrupted condition.

#include "metrics/verify.hpp"

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "baselines/qi_dbscan.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"

namespace udb {
namespace {

TEST(Verify, AcceptsBruteForceOutput) {
  Dataset ds = gen_blobs(400, 3, 4, 60.0, 3.0, 0.15, 3);
  const DbscanParams prm{2.0, 5};
  const auto rep = verify_dbscan(ds, prm, brute_dbscan(ds, prm));
  EXPECT_TRUE(rep.valid()) << rep.detail;
}

TEST(Verify, AcceptsMuDbscanOutput) {
  Dataset ds = gen_galaxy(600, GalaxyConfig{}, 5);
  const DbscanParams prm{1.5, 5};
  const auto rep = verify_dbscan(ds, prm, mu_dbscan(ds, prm));
  EXPECT_TRUE(rep.valid()) << rep.detail;
}

TEST(Verify, RejectsSizeMismatch) {
  Dataset ds(1, {0.0, 1.0});
  ClusteringResult r;
  r.label = {0};
  r.is_core = {1};
  EXPECT_FALSE(verify_dbscan(ds, {1.0, 1}, r).valid());
}

TEST(Verify, DetectsWrongCoreFlag) {
  Dataset ds = gen_blobs(200, 2, 2, 30.0, 1.0, 0.1, 7);
  const DbscanParams prm{1.5, 5};
  auto r = brute_dbscan(ds, prm);
  // Flip one core flag.
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (r.is_core[i]) {
      r.is_core[i] = 0;
      break;
    }
  }
  const auto rep = verify_dbscan(ds, prm, r);
  EXPECT_FALSE(rep.valid());
  EXPECT_FALSE(rep.core_flags_ok);
}

TEST(Verify, DetectsSplitCluster_MaximalityViolation) {
  // One dense 1-D run of cores, artificially split into two labels.
  std::vector<double> coords;
  for (int i = 0; i < 20; ++i) coords.push_back(0.1 * i);
  Dataset ds(1, std::move(coords));
  const DbscanParams prm{0.5, 3};
  auto r = brute_dbscan(ds, prm);
  ASSERT_EQ(r.num_clusters(), 1u);
  for (std::size_t i = 10; i < r.size(); ++i) r.label[i] = 99;
  const auto rep = verify_dbscan(ds, prm, r);
  EXPECT_FALSE(rep.valid());
  EXPECT_FALSE(rep.maximality_ok);
}

TEST(Verify, DetectsMergedClusters_ConnectivityViolation) {
  // Two far-apart dense blobs forced into one label: their cores can never
  // be density-connected.
  std::vector<double> coords;
  for (int i = 0; i < 10; ++i) coords.push_back(0.05 * i);
  for (int i = 0; i < 10; ++i) coords.push_back(100.0 + 0.05 * i);
  Dataset ds(1, std::move(coords));
  const DbscanParams prm{0.5, 3};
  auto r = brute_dbscan(ds, prm);
  ASSERT_EQ(r.num_clusters(), 2u);
  const std::int64_t target = r.label[0];
  for (auto& l : r.label) l = target;
  const auto rep = verify_dbscan(ds, prm, r);
  EXPECT_FALSE(rep.valid());
  EXPECT_FALSE(rep.connectivity_ok);
}

TEST(Verify, DetectsBorderMislabeledAsNoise) {
  // Border point within eps of a core but labeled noise (the failure
  // Algorithm 8 exists to prevent).
  std::vector<double> coords{-0.8};
  for (int i = 0; i < 6; ++i) coords.push_back(0.05 * i);
  Dataset ds(1, std::move(coords));
  const DbscanParams prm{1.0, 5};
  auto r = brute_dbscan(ds, prm);
  ASSERT_NE(r.label[0], kNoise);
  r.label[0] = kNoise;
  const auto rep = verify_dbscan(ds, prm, r);
  EXPECT_FALSE(rep.valid());
  EXPECT_FALSE(rep.noise_ok);
}

TEST(Verify, DetectsNoiseInsideCluster) {
  // Genuine noise dragged into a cluster.
  std::vector<double> coords{50.0};
  for (int i = 0; i < 6; ++i) coords.push_back(0.05 * i);
  Dataset ds(1, std::move(coords));
  const DbscanParams prm{1.0, 5};
  auto r = brute_dbscan(ds, prm);
  ASSERT_EQ(r.label[0], kNoise);
  r.label[0] = r.label[1];
  const auto rep = verify_dbscan(ds, prm, r);
  EXPECT_FALSE(rep.valid());
}

TEST(Verify, FlagsQiDbscanWhereItDiverges) {
  // The verifier and the brute-force comparison must agree about QIDBSCAN:
  // wherever it diverges from exact DBSCAN, at least one condition breaks.
  bool flagged = false;
  for (std::uint64_t seed = 1; seed <= 10 && !flagged; ++seed) {
    Dataset ds = gen_galaxy(800, GalaxyConfig{}, seed);
    const DbscanParams prm{1.2, 5};
    const auto qi = qi_dbscan(ds, prm);
    const auto rep = verify_dbscan(ds, prm, qi);
    if (!rep.valid()) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

class VerifyPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyPropertySweep, EveryExactAlgorithmPasses) {
  Dataset ds = gen_blobs(300, 3, 3, 50.0, 2.5, 0.2, GetParam());
  const DbscanParams prm{2.0, 4};
  EXPECT_TRUE(verify_dbscan(ds, prm, brute_dbscan(ds, prm)).valid());
  EXPECT_TRUE(verify_dbscan(ds, prm, mu_dbscan(ds, prm)).valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyPropertySweep,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

}  // namespace
}  // namespace udb
