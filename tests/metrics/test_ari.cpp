#include "metrics/ari.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace udb {
namespace {

TEST(Ari, IdenticalLabelingsScoreOne) {
  const std::vector<std::int64_t> a{0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(Ari, RenamedLabelingsScoreOne) {
  const std::vector<std::int64_t> a{0, 0, 1, 1};
  const std::vector<std::int64_t> b{9, 9, 4, 4};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Ari, SizeMismatchThrows) {
  try {
    (void)adjusted_rand_index({0}, {0, 1});
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Ari, EmptyIsOne) {
  EXPECT_DOUBLE_EQ(adjusted_rand_index({}, {}), 1.0);
}

TEST(Ari, KnownSmallExample) {
  // Classic textbook value: ARI of this pair is 0.24242...
  const std::vector<std::int64_t> a{0, 0, 0, 1, 1, 1};
  const std::vector<std::int64_t> b{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.2424242424, 1e-9);
}

TEST(Ari, IndependentLabelingsNearZero) {
  Rng rng(5);
  std::vector<std::int64_t> a(5000), b(5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int64_t>(rng.uniform_index(5));
    b[i] = static_cast<std::int64_t>(rng.uniform_index(5));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.02);
}

TEST(Ari, PartialAgreementBetweenZeroAndOne) {
  const std::vector<std::int64_t> a{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<std::int64_t> b{0, 0, 0, 1, 1, 1, 1, 1};
  const double v = adjusted_rand_index(a, b);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(Ari, SymmetricInArguments) {
  const std::vector<std::int64_t> a{0, 1, 0, 2, 1, 2};
  const std::vector<std::int64_t> b{1, 1, 0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), adjusted_rand_index(b, a));
}

}  // namespace
}  // namespace udb
