#include "index/kdtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/distance.hpp"
#include "data/generators.hpp"

namespace udb {
namespace {

std::vector<PointId> linear_ball(const Dataset& ds,
                                 std::span<const double> center, double r,
                                 bool strict) {
  std::vector<PointId> out;
  const double r2 = r * r;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const double d2 =
        sq_dist(center.data(), ds.ptr(static_cast<PointId>(i)), ds.dim());
    if (strict ? d2 < r2 : d2 <= r2) out.push_back(static_cast<PointId>(i));
  }
  return out;
}

TEST(KdTree, RejectsZeroLeafSize) {
  Dataset ds(1, {0.0});
  KdTree::Config cfg;
  cfg.leaf_size = 0;
  EXPECT_THROW(KdTree(ds, cfg), std::invalid_argument);
}

TEST(KdTree, EmptyDataset) {
  Dataset ds = Dataset::empty(3);
  KdTree tree(ds);
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{0.0, 0.0, 0.0}, 5.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTree, SinglePoint) {
  Dataset ds(2, {1.0, 2.0});
  KdTree tree(ds);
  tree.check_invariants();
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{1.0, 2.0}, 0.1, out);
  EXPECT_EQ(out, (std::vector<PointId>{0}));
}

TEST(KdTree, StrictVsInclusiveBoundary) {
  Dataset ds(1, {0.0, 2.0});
  KdTree tree(ds);
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{0.0}, 2.0, out, /*strict=*/true);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  tree.query_ball(std::vector<double>{0.0}, 2.0, out, /*strict=*/false);
  EXPECT_EQ(out.size(), 2u);
}

TEST(KdTree, VisitEarlyStop) {
  Dataset ds = gen_uniform(200, 2, 0.0, 1.0, 3);
  KdTree tree(ds);
  int seen = 0;
  tree.visit_ball(std::vector<double>{0.5, 0.5}, 2.0,
                  [&seen](PointId, double) {
                    ++seen;
                    return seen < 7;
                  });
  EXPECT_EQ(seen, 7);
}

TEST(KdTree, DuplicatesAllFound) {
  std::vector<double> coords(60, 3.0);  // 30 identical 2-D points
  Dataset ds(2, std::move(coords));
  KdTree tree(ds);
  tree.check_invariants();
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{3.0, 3.0}, 0.01, out);
  EXPECT_EQ(out.size(), 30u);
}

struct KdCase {
  std::size_t n, dim;
  double radius;
  std::uint32_t leaf;
  std::uint64_t seed;
};

class KdTreeEquivalence : public ::testing::TestWithParam<KdCase> {};

TEST_P(KdTreeEquivalence, MatchesLinearScan) {
  const auto& c = GetParam();
  Dataset ds = gen_blobs(c.n, c.dim, 4, 100.0, 5.0, 0.1, c.seed);
  KdTree::Config cfg;
  cfg.leaf_size = c.leaf;
  KdTree tree(ds, cfg);
  tree.check_invariants();
  for (std::size_t qi = 0; qi < ds.size(); qi += 17) {
    const auto q = ds.point(static_cast<PointId>(qi));
    for (bool strict : {true, false}) {
      std::vector<PointId> got;
      tree.query_ball(q, c.radius, got, strict);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, linear_ball(ds, q, c.radius, strict))
          << "query " << qi << " strict " << strict;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeEquivalence,
    ::testing::Values(KdCase{300, 2, 3.0, 16, 1}, KdCase{400, 3, 5.0, 8, 2},
                      KdCase{400, 5, 10.0, 4, 3}, KdCase{200, 14, 40.0, 16, 4},
                      KdCase{500, 3, 0.5, 1, 5}, KdCase{500, 3, 200.0, 32, 6}));

TEST(KdTree, PrunesComparedToLinearScan) {
  Dataset ds = gen_blobs(20000, 3, 5, 100.0, 3.0, 0.1, 7);
  KdTree tree(ds);
  std::vector<PointId> out;
  tree.query_ball(ds.point(0), 2.0, out);
  // A small ball query must touch far fewer than all points.
  EXPECT_LT(tree.distance_evals(), ds.size() / 4);
}

}  // namespace
}  // namespace udb
