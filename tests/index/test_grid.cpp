#include "index/grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/generators.hpp"

namespace udb {
namespace {

TEST(Grid, RejectsNonPositiveSide) {
  Dataset ds(2, {0.0, 0.0});
  EXPECT_THROW(Grid(ds, 0.0), std::invalid_argument);
  EXPECT_THROW(Grid(ds, -1.0), std::invalid_argument);
}

TEST(Grid, CellCoordHandlesNegatives) {
  Dataset ds(1, {-0.5, 0.5, -1.0});
  Grid grid(ds, 1.0);
  EXPECT_EQ(grid.cell_coord(ds.ptr(0))[0], -1);
  EXPECT_EQ(grid.cell_coord(ds.ptr(1))[0], 0);
  EXPECT_EQ(grid.cell_coord(ds.ptr(2))[0], -1);
}

TEST(Grid, PointsBucketedByCell) {
  Dataset ds(2, {0.1, 0.1, 0.2, 0.2, 5.0, 5.0});
  Grid grid(ds, 1.0);
  EXPECT_EQ(grid.num_cells(), 2u);
  EXPECT_EQ(grid.cell_of_point(0), grid.cell_of_point(1));
  EXPECT_NE(grid.cell_of_point(0), grid.cell_of_point(2));
  EXPECT_EQ(grid.points_in(grid.cell_of_point(0)).size(), 2u);
}

TEST(Grid, EveryPointInExactlyOneCell) {
  Dataset ds = gen_uniform(500, 3, -20.0, 20.0, 9);
  Grid grid(ds, 2.5);
  std::size_t total = 0;
  for (Grid::CellId c = 0; c < grid.num_cells(); ++c)
    total += grid.points_in(c).size();
  EXPECT_EQ(total, ds.size());
  for (PointId p = 0; p < ds.size(); ++p) {
    const auto& pts = grid.points_in(grid.cell_of_point(p));
    EXPECT_NE(std::find(pts.begin(), pts.end(), p), pts.end());
  }
}

TEST(Grid, NeighborsIncludeSelf) {
  Dataset ds = gen_uniform(100, 2, 0.0, 10.0, 1);
  Grid grid(ds, 1.0);
  for (Grid::CellId c = 0; c < grid.num_cells(); ++c) {
    std::vector<Grid::CellId> nbrs;
    grid.neighbors_within(c, 1, nbrs);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), c), nbrs.end());
  }
}

std::vector<Grid::CellId> brute_neighbors(const Grid& grid, Grid::CellId c,
                                          std::int64_t k) {
  std::vector<Grid::CellId> out;
  const auto& base = grid.coord_of(c);
  for (Grid::CellId o = 0; o < grid.num_cells(); ++o) {
    const auto& oc = grid.coord_of(o);
    bool within = true;
    for (std::size_t i = 0; i < base.size(); ++i)
      if (std::llabs(oc[i] - base[i]) > k) within = false;
    if (within) out.push_back(o);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Grid, EnumerationMatchesBruteForce) {
  Dataset ds = gen_blobs(400, 3, 3, 30.0, 3.0, 0.2, 12);
  Grid grid(ds, 2.0);
  ASSERT_TRUE(grid.enumeration_feasible(2));
  for (Grid::CellId c = 0; c < grid.num_cells(); ++c) {
    std::vector<Grid::CellId> got;
    grid.neighbors_within(c, 2, got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_neighbors(grid, c, 2));
  }
}

TEST(Grid, HighDimFallsBackToScanAndMatches) {
  Dataset ds = gen_uniform(100, 12, 0.0, 10.0, 13);
  Grid grid(ds, 1.0);
  EXPECT_FALSE(grid.enumeration_feasible(2));
  for (Grid::CellId c = 0; c < std::min<Grid::CellId>(grid.num_cells(), 10);
       ++c) {
    std::vector<Grid::CellId> got;
    grid.neighbors_within(c, 2, got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_neighbors(grid, c, 2));
  }
}

TEST(Grid, FeasibilityThresholdBehaviour) {
  Dataset ds2(2, {0.0, 0.0});
  EXPECT_TRUE(Grid(ds2, 1.0).enumeration_feasible(1));
  Dataset ds20(20, std::vector<double>(20, 0.0));
  EXPECT_FALSE(Grid(ds20, 1.0).enumeration_feasible(1));
}

}  // namespace
}  // namespace udb
