// kNN queries and STR bulk loading for the R-tree.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/distance.hpp"
#include "data/generators.hpp"
#include "index/rtree.hpp"

namespace udb {
namespace {

std::vector<std::pair<PointId, double>> brute_knn(const Dataset& ds,
                                                  std::span<const double> q,
                                                  std::size_t k) {
  std::vector<std::pair<PointId, double>> all;
  for (std::size_t i = 0; i < ds.size(); ++i)
    all.emplace_back(static_cast<PointId>(i),
                     sq_dist(q.data(), ds.ptr(static_cast<PointId>(i)),
                             ds.dim()));
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  all.resize(std::min(k, all.size()));
  return all;
}

RTree incremental_tree(const Dataset& ds) {
  RTree tree(ds.dim());
  for (std::size_t i = 0; i < ds.size(); ++i)
    tree.insert(ds.ptr(static_cast<PointId>(i)), static_cast<PointId>(i));
  return tree;
}

RTree bulk_tree(const Dataset& ds) {
  std::vector<std::pair<const double*, PointId>> items;
  items.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i)
    items.emplace_back(ds.ptr(static_cast<PointId>(i)),
                       static_cast<PointId>(i));
  return RTree::bulk_load_str(ds.dim(), std::move(items));
}

TEST(RTreeKnn, EmptyTreeAndZeroK) {
  RTree tree(2);
  std::vector<std::pair<PointId, double>> out;
  tree.query_knn(std::vector<double>{0.0, 0.0}, 5, out);
  EXPECT_TRUE(out.empty());
  Dataset ds(2, {1.0, 1.0});
  RTree one = incremental_tree(ds);
  one.query_knn(std::vector<double>{0.0, 0.0}, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeKnn, KLargerThanNReturnsAll) {
  Dataset ds = gen_uniform(10, 2, 0.0, 1.0, 3);
  RTree tree = incremental_tree(ds);
  std::vector<std::pair<PointId, double>> out;
  tree.query_knn(ds.point(0), 50, out);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0].first, 0u);  // the query point itself is nearest
  EXPECT_EQ(out[0].second, 0.0);
}

TEST(RTreeKnn, ResultsAreSortedNearestFirst) {
  Dataset ds = gen_blobs(500, 3, 4, 50.0, 3.0, 0.1, 5);
  RTree tree = incremental_tree(ds);
  std::vector<std::pair<PointId, double>> out;
  tree.query_knn(ds.point(17), 20, out);
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LE(out[i - 1].second, out[i].second);
}

struct KnnCase {
  std::size_t n, dim, k;
  std::uint64_t seed;
};

class RTreeKnnEquivalence : public ::testing::TestWithParam<KnnCase> {};

TEST_P(RTreeKnnEquivalence, MatchesBruteForce) {
  const auto& c = GetParam();
  Dataset ds = gen_blobs(c.n, c.dim, 4, 100.0, 4.0, 0.1, c.seed);
  RTree tree = incremental_tree(ds);
  for (std::size_t qi = 0; qi < ds.size(); qi += 29) {
    const auto q = ds.point(static_cast<PointId>(qi));
    std::vector<std::pair<PointId, double>> got;
    tree.query_knn(q, c.k, got);
    const auto want = brute_knn(ds, q, c.k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Distances must match exactly; ids may differ only between
      // equidistant points.
      EXPECT_DOUBLE_EQ(got[i].second, want[i].second) << "rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RTreeKnnEquivalence,
                         ::testing::Values(KnnCase{200, 2, 1, 1},
                                           KnnCase{300, 3, 5, 2},
                                           KnnCase{400, 5, 10, 3},
                                           KnnCase{150, 14, 7, 4}));

TEST(RTreeBulkLoad, EmptyInput) {
  RTree tree = RTree::bulk_load_str(3, {});
  EXPECT_EQ(tree.size(), 0u);
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{0.0, 0.0, 0.0}, 1.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeBulkLoad, InvariantsAndCount) {
  Dataset ds = gen_blobs(5000, 3, 5, 100.0, 4.0, 0.2, 7);
  RTree tree = bulk_tree(ds);
  EXPECT_EQ(tree.size(), 5000u);
  tree.check_invariants();
  const auto s = tree.stats();
  EXPECT_EQ(s.entries, 5000u);
}

TEST(RTreeBulkLoad, QueriesMatchIncrementalTree) {
  Dataset ds = gen_galaxy(2000, GalaxyConfig{}, 9);
  RTree inc = incremental_tree(ds);
  RTree bulk = bulk_tree(ds);
  for (std::size_t qi = 0; qi < ds.size(); qi += 53) {
    const auto q = ds.point(static_cast<PointId>(qi));
    std::vector<PointId> a, b;
    inc.query_ball(q, 2.0, a);
    bulk.query_ball(q, 2.0, b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(RTreeBulkLoad, PacksFullerNodesAndStaysQueryCompetitive) {
  // STR's guarantee is structural: leaves are packed full, so the tree has
  // far fewer nodes than incremental Guttman insertion (whose splits leave
  // nodes ~60-70% full). Query cost is data-dependent — assert it stays in
  // the same ballpark rather than strictly better.
  Dataset ds = gen_uniform(20000, 3, 0.0, 100.0, 11);
  RTree inc = incremental_tree(ds);
  RTree bulk = bulk_tree(ds);
  EXPECT_LT(bulk.stats().leaf_nodes, inc.stats().leaf_nodes * 3 / 4);
  EXPECT_LE(bulk.stats().height, inc.stats().height);

  inc.reset_distance_evals();
  bulk.reset_distance_evals();
  std::vector<PointId> out;
  for (std::size_t qi = 0; qi < ds.size(); qi += 100) {
    out.clear();
    inc.query_ball(ds.point(static_cast<PointId>(qi)), 3.0, out);
    out.clear();
    bulk.query_ball(ds.point(static_cast<PointId>(qi)), 3.0, out);
  }
  EXPECT_LT(static_cast<double>(bulk.distance_evals()),
            static_cast<double>(inc.distance_evals()) * 1.3);
}

TEST(RTreeBulkLoad, SupportsInsertAfterLoad) {
  Dataset ds = gen_uniform(1000, 2, 0.0, 10.0, 13);
  RTree tree = bulk_tree(ds);
  const std::vector<double> extra{100.0, 100.0};
  tree.insert(extra.data(), 9999);
  EXPECT_EQ(tree.size(), 1001u);
  EXPECT_EQ(tree.first_within(extra, 0.1), 9999u);
}

TEST(RTreeBulkLoad, KnnOnBulkTree) {
  Dataset ds = gen_blobs(800, 3, 3, 50.0, 3.0, 0.1, 15);
  RTree tree = bulk_tree(ds);
  std::vector<std::pair<PointId, double>> got;
  tree.query_knn(ds.point(5), 8, got);
  const auto want = brute_knn(ds, ds.point(5), 8);
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(got[i].second, want[i].second);
}

}  // namespace
}  // namespace udb
