#include "index/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/distance.hpp"
#include "data/generators.hpp"

namespace udb {
namespace {

std::vector<PointId> linear_ball(const Dataset& ds,
                                 std::span<const double> center, double r,
                                 bool strict) {
  std::vector<PointId> out;
  const double r2 = r * r;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const double d2 =
        sq_dist(center.data(), ds.ptr(static_cast<PointId>(i)), ds.dim());
    if (strict ? d2 < r2 : d2 <= r2) out.push_back(static_cast<PointId>(i));
  }
  return out;
}

RTree build_tree(const Dataset& ds) {
  RTree tree(ds.dim());
  for (std::size_t i = 0; i < ds.size(); ++i)
    tree.insert(ds.ptr(static_cast<PointId>(i)), static_cast<PointId>(i));
  return tree;
}

TEST(RTree, EmptyTreeQueriesNothing) {
  RTree tree(3);
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{0.0, 0.0, 0.0}, 10.0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.first_within(std::vector<double>{0.0, 0.0, 0.0}, 10.0),
            kInvalidPoint);
}

TEST(RTree, RejectsBadConfig) {
  RTree::Config cfg;
  cfg.max_entries = 4;
  cfg.min_entries = 3;  // violates max >= 2*min
  EXPECT_THROW(RTree(2, cfg), std::invalid_argument);
  EXPECT_THROW(RTree(0), std::invalid_argument);
}

TEST(RTree, SingleInsertIsFindable) {
  Dataset ds(2, {1.0, 2.0});
  RTree tree = build_tree(ds);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.first_within(std::vector<double>{1.0, 2.0}, 0.1), 0u);
  EXPECT_EQ(tree.first_within(std::vector<double>{5.0, 5.0}, 0.1),
            kInvalidPoint);
}

TEST(RTree, StrictVsInclusiveBoundary) {
  Dataset ds(1, {0.0, 2.0});
  RTree tree = build_tree(ds);
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{0.0}, 2.0, out, /*strict=*/true);
  EXPECT_EQ(out.size(), 1u);  // only the point at distance 0
  out.clear();
  tree.query_ball(std::vector<double>{0.0}, 2.0, out, /*strict=*/false);
  EXPECT_EQ(out.size(), 2u);  // the boundary point at exactly 2.0 included
}

TEST(RTree, InvariantsHoldDuringIncrementalGrowth) {
  Dataset ds = gen_uniform(600, 3, -50.0, 50.0, 5);
  RTree tree(3);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    tree.insert(ds.ptr(static_cast<PointId>(i)), static_cast<PointId>(i));
    if (i % 97 == 0) tree.check_invariants();
  }
  tree.check_invariants();
  EXPECT_EQ(tree.size(), 600u);
  const auto s = tree.stats();
  EXPECT_GE(s.height, 2u);
  EXPECT_EQ(s.entries, 600u);
}

TEST(RTree, DuplicatePointsAllRetrievable) {
  std::vector<double> coords;
  for (int i = 0; i < 100; ++i) {
    coords.push_back(1.0);
    coords.push_back(1.0);
  }
  Dataset ds(2, std::move(coords));
  RTree tree = build_tree(ds);
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{1.0, 1.0}, 0.001, out);
  EXPECT_EQ(out.size(), 100u);
  tree.check_invariants();
}

TEST(RTree, VisitEarlyStop) {
  Dataset ds = gen_uniform(100, 2, 0.0, 1.0, 3);
  RTree tree = build_tree(ds);
  int seen = 0;
  tree.visit_ball(std::vector<double>{0.5, 0.5}, 1.0,
                  [&seen](PointId, double) {
                    ++seen;
                    return seen < 5;
                  });
  EXPECT_EQ(seen, 5);
}

TEST(RTree, DistanceEvalCounterAdvances) {
  Dataset ds = gen_uniform(200, 2, 0.0, 1.0, 4);
  RTree tree = build_tree(ds);
  tree.reset_distance_evals();
  std::vector<PointId> out;
  tree.query_ball(std::vector<double>{0.5, 0.5}, 0.2, out);
  EXPECT_GT(tree.distance_evals(), 0u);
  EXPECT_LE(tree.distance_evals(), 200u);
}

TEST(RTree, MoveTransfersOwnership) {
  Dataset ds = gen_uniform(50, 2, 0.0, 1.0, 6);
  RTree tree = build_tree(ds);
  RTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 50u);
  std::vector<PointId> out;
  moved.query_ball(std::vector<double>{0.5, 0.5}, 2.0, out);
  EXPECT_EQ(out.size(), 50u);
}

struct QueryCase {
  std::size_t n;
  std::size_t dim;
  double radius;
  std::uint64_t seed;
};

class RTreeQueryEquivalence : public ::testing::TestWithParam<QueryCase> {};

TEST_P(RTreeQueryEquivalence, MatchesLinearScan) {
  const auto& c = GetParam();
  Dataset ds = gen_blobs(c.n, c.dim, 4, 100.0, 5.0, 0.1, c.seed);
  RTree tree = build_tree(ds);
  tree.check_invariants();
  for (std::size_t qi = 0; qi < ds.size(); qi += 13) {
    const auto q = ds.point(static_cast<PointId>(qi));
    for (bool strict : {true, false}) {
      std::vector<PointId> got;
      tree.query_ball(q, c.radius, got, strict);
      std::vector<PointId> want = linear_ball(ds, q, c.radius, strict);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, want) << "query " << qi << " strict=" << strict;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeQueryEquivalence,
    ::testing::Values(QueryCase{300, 2, 3.0, 1}, QueryCase{300, 3, 5.0, 2},
                      QueryCase{500, 5, 10.0, 3}, QueryCase{200, 14, 40.0, 4},
                      QueryCase{400, 3, 0.5, 5}, QueryCase{400, 3, 100.0, 6},
                      QueryCase{64, 74, 120.0, 7}));

class RTreeConfigSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(RTreeConfigSweep, InvariantsAndQueriesForNodeSizes) {
  const auto [max_e, min_e] = GetParam();
  RTree::Config cfg;
  cfg.max_entries = max_e;
  cfg.min_entries = min_e;
  Dataset ds = gen_uniform(400, 3, 0.0, 100.0, 11);
  RTree tree(3, cfg);
  for (std::size_t i = 0; i < ds.size(); ++i)
    tree.insert(ds.ptr(static_cast<PointId>(i)), static_cast<PointId>(i));
  tree.check_invariants();
  const auto q = ds.point(0);
  std::vector<PointId> got;
  tree.query_ball(q, 20.0, got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, linear_ball(ds, q, 20.0, true));
}

INSTANTIATE_TEST_SUITE_P(NodeSizes, RTreeConfigSweep,
                         ::testing::Values(std::make_pair(4u, 2u),
                                           std::make_pair(8u, 3u),
                                           std::make_pair(16u, 6u),
                                           std::make_pair(64u, 26u)));

}  // namespace
}  // namespace udb
