// SlidingWindow correctness (src/obs/window.hpp): deterministic bucket
// rotation at second boundaries (time is an explicit parameter, so the tests
// drive it), merge across per-thread shards while writers are live (run under
// TSan in CI), percentile monotonicity and interpolation error bounds on
// adversarial latency streams, and the log-linear histogram cell geometry.

#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace udb {
namespace {

constexpr std::uint64_t kSec = 1'000'000;  // us

// ---------------------------------------------------------------------------
// Histogram cell geometry
// ---------------------------------------------------------------------------

TEST(WindowBucketTest, EveryValueLandsInsideItsCellBounds) {
  // Exhaustive over the first octaves, then sampled log-spaced above.
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const std::size_t cell = obs::window_bucket(v);
    ASSERT_LT(cell, obs::kWindowHistCells);
    EXPECT_GE(static_cast<double>(v), obs::window_cell_lo(cell)) << v;
    EXPECT_LT(static_cast<double>(v), obs::window_cell_hi(cell)) << v;
  }
  for (std::uint64_t v = 4096; v < (1ull << 26); v = v * 17 / 16 + 1) {
    const std::size_t cell = obs::window_bucket(v);
    EXPECT_GE(static_cast<double>(v), obs::window_cell_lo(cell)) << v;
    EXPECT_LT(static_cast<double>(v), obs::window_cell_hi(cell)) << v;
  }
}

TEST(WindowBucketTest, CellsAreMonotoneAndClampAtTheTop) {
  for (std::uint64_t v = 1; v < 100000; v += 7)
    EXPECT_LE(obs::window_bucket(v), obs::window_bucket(v + 1)) << v;
  EXPECT_EQ(obs::window_bucket(1ull << 26), obs::kWindowHistCells - 1);
  EXPECT_EQ(obs::window_bucket(UINT64_MAX), obs::kWindowHistCells - 1);
  EXPECT_EQ(obs::window_bucket(0), 0u);
}

TEST(WindowBucketTest, SubBucketWidthBoundsQuantizationError) {
  // Cell width / cell lower bound <= 1/8 for every non-clamp cell above 1:
  // the basis for the "percentile within 12.5%" resolution claim.
  for (std::size_t cell = obs::kWindowSubBuckets + 1;
       cell + 1 < obs::kWindowHistCells; ++cell) {
    const double lo = obs::window_cell_lo(cell);
    const double hi = obs::window_cell_hi(cell);
    EXPECT_LE((hi - lo) / lo, 1.0 / obs::kWindowSubBuckets + 1e-12) << cell;
  }
}

// ---------------------------------------------------------------------------
// Counters, windows, rotation
// ---------------------------------------------------------------------------

TEST(SlidingWindowTest, CountsEventsInsideTheWindowOnly) {
  obs::SlidingWindow w;
  w.add(obs::WinCounter::kRequests, 5 * kSec);
  w.add(obs::WinCounter::kRequests, 6 * kSec);
  w.add(obs::WinCounter::kErrors, 6 * kSec);
  w.add(obs::WinCounter::kRequests, 20 * kSec);

  // At t=20s, a 10s window covers seconds 11..20: only the last request.
  auto s10 = w.snapshot(20 * kSec, 10);
  EXPECT_EQ(s10.counter(obs::WinCounter::kRequests), 1u);
  EXPECT_EQ(s10.counter(obs::WinCounter::kErrors), 0u);

  // A 16s window covers 5..20: everything.
  auto s16 = w.snapshot(20 * kSec, 16);
  EXPECT_EQ(s16.counter(obs::WinCounter::kRequests), 3u);
  EXPECT_EQ(s16.counter(obs::WinCounter::kErrors), 1u);
  EXPECT_DOUBLE_EQ(s16.qps(), 3.0 / 16.0);
}

TEST(SlidingWindowTest, BoundaryBucketsAreIncludedExactly) {
  obs::SlidingWindow w;
  // One event per second at 10..19 (inclusive).
  for (std::uint64_t sec = 10; sec < 20; ++sec)
    w.add(obs::WinCounter::kRequests, sec * kSec + 500'000);
  // At now=19.9s a 10s window covers seconds 10..19: all ten events; a 9s
  // window covers 11..19: nine.
  EXPECT_EQ(w.snapshot(19 * kSec + 900'000, 10)
                .counter(obs::WinCounter::kRequests),
            10u);
  EXPECT_EQ(w.snapshot(19 * kSec + 900'000, 9)
                .counter(obs::WinCounter::kRequests),
            9u);
}

TEST(SlidingWindowTest, RingRecyclingDropsTheOldSecond) {
  obs::SlidingWindow w;
  // Second 3 and second 3+64 map to the same ring slot; writing the newer
  // one must evict the older, and a wide window must not resurrect it.
  w.add(obs::WinCounter::kRequests, 3 * kSec, 100);
  w.add(obs::WinCounter::kRequests, (3 + obs::kWindowRingSeconds) * kSec, 5);
  auto s = w.snapshot((3 + obs::kWindowRingSeconds) * kSec, 63);
  EXPECT_EQ(s.counter(obs::WinCounter::kRequests), 5u);
}

TEST(SlidingWindowTest, StaleBucketsAreSkippedWithoutRecycling) {
  obs::SlidingWindow w;
  w.record_latency(2 * kSec, 500);
  // Time moves far ahead with no writes: the stale bucket still holds its
  // stamp, but snapshot must not count it inside any window.
  auto s = w.snapshot(1000 * kSec, 60);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.percentile(0.99), 0.0);
}

TEST(SlidingWindowTest, WindowSecondsIsClampedToRingCapacity) {
  obs::SlidingWindow w;
  w.add(obs::WinCounter::kRequests, 10 * kSec);
  // 0 clamps to 1; absurd widths clamp to 63 (ring minus the slot being
  // recycled) instead of double counting.
  auto s0 = w.snapshot(10 * kSec, 0);
  EXPECT_DOUBLE_EQ(s0.window_seconds, 1.0);
  EXPECT_EQ(s0.counter(obs::WinCounter::kRequests), 1u);
  auto shuge = w.snapshot(10 * kSec, 100000);
  EXPECT_DOUBLE_EQ(shuge.window_seconds,
                   static_cast<double>(obs::kWindowRingSeconds - 1));
}

TEST(SlidingWindowTest, EarlyWindowUnderflowIsGuarded) {
  obs::SlidingWindow w;
  w.add(obs::WinCounter::kRequests, 0);  // second 0
  // now < window width: lo_sec would underflow; must cover second 0 fine.
  auto s = w.snapshot(2 * kSec, 60);
  EXPECT_EQ(s.counter(obs::WinCounter::kRequests), 1u);
}

// ---------------------------------------------------------------------------
// Latency percentiles
// ---------------------------------------------------------------------------

TEST(SlidingWindowTest, PercentilesInterpolateWithinResolutionBound) {
  obs::SlidingWindow w;
  // Uniform ramp 1..1000 us in one second.
  for (std::uint64_t v = 1; v <= 1000; ++v) w.record_latency(50 * kSec, v);
  auto s = w.snapshot(50 * kSec, 10);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.max_us, 1000u);
  EXPECT_NEAR(s.mean_us(), 500.5, 1e-9);
  // True pXX of the ramp is XX0; the log-linear cells bound the error at
  // 12.5% + interpolation slack.
  EXPECT_NEAR(s.percentile(0.50), 500.0, 0.13 * 500.0);
  EXPECT_NEAR(s.percentile(0.90), 900.0, 0.13 * 900.0);
  EXPECT_NEAR(s.percentile(0.99), 990.0, 0.13 * 990.0);
  // p0 and p100 pin to the ends of the distribution.
  EXPECT_LE(s.percentile(1.0), static_cast<double>(s.max_us));
  EXPECT_GE(s.percentile(0.0), 0.0);
}

TEST(SlidingWindowTest, PercentilesAreMonotoneOnAdversarialStreams) {
  // Streams built to stress interpolation: constant, bimodal far apart,
  // heavy-tailed, zeros mixed with huge clamped values.
  const std::vector<std::vector<std::uint64_t>> streams = {
      std::vector<std::uint64_t>(500, 77),
      [] {
        std::vector<std::uint64_t> v(400, 2);
        v.insert(v.end(), 7, 40'000'000);  // beyond the clamp octave
        return v;
      }(),
      [] {
        std::vector<std::uint64_t> v;
        std::mt19937_64 rng(11);
        for (int i = 0; i < 2000; ++i) {
          const int oct = static_cast<int>(rng() % 25);
          v.push_back((1ull << oct) + rng() % (1ull << oct));
        }
        return v;
      }(),
      {0, 0, 0, 1, UINT64_MAX},
  };
  for (std::size_t si = 0; si < streams.size(); ++si) {
    obs::SlidingWindow w;
    for (std::uint64_t v : streams[si]) w.record_latency(9 * kSec, v);
    auto s = w.snapshot(9 * kSec, 5);
    double prev = 0.0;
    for (double q : {0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
      const double p = s.percentile(q);
      EXPECT_GE(p, prev) << "stream " << si << " q " << q;
      EXPECT_LE(p, static_cast<double>(s.max_us)) << "stream " << si;
      prev = p;
    }
  }
}

TEST(SlidingWindowTest, LatencyWindowExpiresWithTime) {
  obs::SlidingWindow w;
  w.record_latency(5 * kSec, 100);
  w.record_latency(30 * kSec, 9000);
  auto s10 = w.snapshot(30 * kSec, 10);  // covers 21..30: only the 9000
  EXPECT_EQ(s10.count, 1u);
  EXPECT_NEAR(s10.percentile(0.5), 9000.0, 0.13 * 9000.0);
  auto s60 = w.snapshot(30 * kSec, 40);  // covers both
  EXPECT_EQ(s60.count, 2u);
}

// ---------------------------------------------------------------------------
// Cross-shard merge under concurrency (TSan-checked in CI)
// ---------------------------------------------------------------------------

TEST(SlidingWindowTest, MergesShardsAcrossThreads) {
  obs::SlidingWindow w;
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&w, t] {
      for (int i = 0; i < kPerThread; ++i) {
        w.add(obs::WinCounter::kRequests, 42 * kSec);
        w.record_latency(42 * kSec, static_cast<std::uint64_t>(t * 100 + 1));
      }
    });
  for (auto& th : threads) th.join();
  auto s = w.snapshot(42 * kSec, 10);
  EXPECT_EQ(s.counter(obs::WinCounter::kRequests),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(SlidingWindowTest, SnapshotIsSafeWhileWritersAreLive) {
  // Writers spin across second boundaries (forcing recycles) while a reader
  // snapshots concurrently; TSan must stay quiet and counts must never
  // exceed what was written.
  obs::SlidingWindow w;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> written{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t)
    writers.emplace_back([&] {
      std::uint64_t now = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        w.add(obs::WinCounter::kRequests, now);
        w.record_latency(now, now % 1000);
        written.fetch_add(1, std::memory_order_relaxed);
        now += 250'000;  // four writes per simulated second
      }
    });
  for (int i = 0; i < 200; ++i) {
    auto s = w.snapshot(i * 500'000ull, 30);
    EXPECT_LE(s.counter(obs::WinCounter::kRequests),
              written.load(std::memory_order_relaxed) + 3);
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

TEST(SlidingWindowTest, NAddsCountNTimes) {
  obs::SlidingWindow w;
  w.add(obs::WinCounter::kRetries, 7 * kSec, 5);
  w.add(obs::WinCounter::kFailovers, 7 * kSec, 2);
  auto s = w.snapshot(7 * kSec, 5);
  EXPECT_EQ(s.counter(obs::WinCounter::kRetries), 5u);
  EXPECT_EQ(s.counter(obs::WinCounter::kFailovers), 2u);
  EXPECT_DOUBLE_EQ(s.rate(obs::WinCounter::kRetries), 1.0);
}

}  // namespace
}  // namespace udb
