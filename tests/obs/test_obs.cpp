// Tests for the observability runtime (src/obs/): metrics registry sharding
// and merge determinism, concurrent increment/snapshot safety (run under TSan
// in CI), span nesting/ordering invariants, the disabled-mode zero-allocation
// guarantees promised by the obs headers, and the run-report JSON schema
// (golden key set — breaking changes must bump schema_version).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/runguard.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "mpi/minimpi.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter. This test binary replaces operator new/delete
// with counting forwarders so the disabled-mode zero-allocation contracts in
// obs/trace.hpp ("fully inert") and obs/log.hpp ("allocates nothing") are
// actually enforced, not just documented.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
}  // namespace

// The replacements below back ::operator new with malloc/posix_memalign, so
// operator delete correctly forwards to free; GCC's pairing heuristic cannot
// see that and warns at unrelated call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t sz) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz != 0 ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align =
      std::max(sizeof(void*), static_cast<std::size_t>(al));
  void* p = nullptr;
  if (posix_memalign(&p, align, sz != 0 ? sz : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace udb {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(Metrics, CountersAndHistogramsBasics) {
  obs::MetricsRegistry reg;
  reg.add(obs::Counter::kQueriesPerformed);
  reg.add(obs::Counter::kQueriesPerformed, 4);
  reg.add(obs::Counter::kUnionCalls, 7);
  reg.observe(obs::Hist::kNeighborCount, 5);
  reg.observe(obs::Hist::kNeighborCount, 3);
  reg.observe(obs::Hist::kNeighborCount, 9);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kQueriesPerformed), 5u);
  EXPECT_EQ(snap.counter(obs::Counter::kUnionCalls), 7u);
  EXPECT_EQ(snap.counter(obs::Counter::kMcDense), 0u);

  const obs::HistSnapshot& h = snap.hist(obs::Hist::kNeighborCount);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 17u);
  EXPECT_EQ(h.min, 3u);
  EXPECT_EQ(h.max, 9u);
  EXPECT_DOUBLE_EQ(h.mean(), 17.0 / 3.0);

  const obs::HistSnapshot& empty = snap.hist(obs::Hist::kMcSize);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min, UINT64_MAX);
  EXPECT_EQ(empty.max, 0u);
}

TEST(Metrics, HistBucketPlacement) {
  // Bucket 0 holds value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(obs::hist_bucket(0), 0u);
  EXPECT_EQ(obs::hist_bucket(1), 1u);
  EXPECT_EQ(obs::hist_bucket(2), 2u);
  EXPECT_EQ(obs::hist_bucket(3), 2u);
  EXPECT_EQ(obs::hist_bucket(4), 3u);
  EXPECT_EQ(obs::hist_bucket(8), 4u);
  EXPECT_EQ(obs::hist_bucket(UINT64_MAX), 64u);

  obs::MetricsRegistry reg;
  reg.observe(obs::Hist::kMcSize, 0);
  reg.observe(obs::Hist::kMcSize, 3);
  reg.observe(obs::Hist::kMcSize, 3);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::HistSnapshot& h = snap.hist(obs::Hist::kMcSize);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < obs::kHistBuckets; ++b)
    bucket_total += h.buckets[b];
  EXPECT_EQ(bucket_total, h.count);
}

TEST(Metrics, MergeFromAddsSnapshots) {
  obs::MetricsRegistry child;
  child.add(obs::Counter::kQueriesPerformed, 10);
  child.observe(obs::Hist::kNeighborCount, 2);

  obs::MetricsRegistry parent;
  parent.add(obs::Counter::kQueriesPerformed, 1);
  parent.merge_from(child.snapshot());
  parent.merge_from(child.snapshot());

  const obs::MetricsSnapshot snap = parent.snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kQueriesPerformed), 21u);
  EXPECT_EQ(snap.hist(obs::Hist::kNeighborCount).count, 2u);
  EXPECT_EQ(snap.hist(obs::Hist::kNeighborCount).sum, 4u);
}

// Writers on several threads while the main thread snapshots concurrently.
// Run under TSan in CI: the single-writer relaxed-store / acquire-load cells
// must be race-free. Totals are exact once the writers have joined, and the
// mid-flight snapshots are monotone (every cell only grows).
TEST(Metrics, ConcurrentIncrementSnapshotStress) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;

  obs::MetricsRegistry reg;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.add(obs::Counter::kQueriesPerformed);
        reg.observe(obs::Hist::kNeighborCount, i & 1023);
      }
    });
  }
  go.store(true, std::memory_order_release);

  std::uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const obs::MetricsSnapshot mid = reg.snapshot();
    const std::uint64_t now = mid.counter(obs::Counter::kQueriesPerformed);
    EXPECT_GE(now, prev);
    EXPECT_LE(now, kThreads * kPerThread);
    prev = now;
  }
  for (auto& w : workers) w.join();

  const obs::MetricsSnapshot fin = reg.snapshot();
  EXPECT_EQ(fin.counter(obs::Counter::kQueriesPerformed),
            kThreads * kPerThread);
  const obs::HistSnapshot& h = fin.hist(obs::Hist::kNeighborCount);
  EXPECT_EQ(h.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < obs::kHistBuckets; ++b)
    bucket_total += h.buckets[b];
  EXPECT_EQ(bucket_total, h.count);
}

// Concurrent merge_from into one run-level parent (the rank-engine pattern in
// core/guarded_run.cpp) must lose nothing.
TEST(Metrics, ConcurrentMergeFrom) {
  constexpr int kThreads = 8;
  obs::MetricsRegistry parent;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&parent, t] {
      obs::MetricsRegistry child;
      child.add(obs::Counter::kUnionCalls, static_cast<std::uint64_t>(t + 1));
      parent.merge_from(child.snapshot());
    });
  }
  for (auto& w : workers) w.join();
  // 1 + 2 + ... + kThreads
  EXPECT_EQ(parent.snapshot().counter(obs::Counter::kUnionCalls),
            static_cast<std::uint64_t>(kThreads * (kThreads + 1) / 2));
}

// ---------------------------------------------------------------------------
// Tracer / spans.
// ---------------------------------------------------------------------------

TEST(Trace, SpanNestingAndOrdering) {
  obs::Tracer tracer;
  {
    obs::Span parent(&tracer, "parent");
    { obs::Span child(&tracer, "child"); }
  }
  std::thread worker([&tracer] { obs::Span s(&tracer, "worker"); });
  worker.join();

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);

  auto find = [&events](const char* name) {
    return std::find_if(
        events.begin(), events.end(),
        [name](const obs::TraceEvent& e) { return std::string(e.name) == name; });
  };
  const auto child = find("child");
  const auto parent = find("parent");
  const auto worker_ev = find("worker");
  ASSERT_NE(child, events.end());
  ASSERT_NE(parent, events.end());
  ASSERT_NE(worker_ev, events.end());

  // RAII close order: the child completes (and is recorded) before its
  // enclosing parent, and its interval is contained in the parent's.
  EXPECT_LT(child - events.begin(), parent - events.begin());
  EXPECT_GE(child->start_ns, parent->start_ns);
  EXPECT_LE(child->start_ns + child->dur_ns, parent->start_ns + parent->dur_ns);

  // Same thread => same tid; a different thread gets a different tid.
  EXPECT_EQ(child->tid, parent->tid);
  EXPECT_NE(worker_ev->tid, parent->tid);
}

TEST(Trace, EndIsIdempotent) {
  obs::Tracer tracer;
  {
    obs::Span s(&tracer, "once");
    s.end();
    s.end();  // second end (and the destructor) must not re-record
  }
  EXPECT_EQ(tracer.events().size(), 1u);
}

TEST(Trace, TracePidScoping) {
  obs::Tracer tracer;
  const int prev = obs::set_trace_pid(7);
  { obs::Span s(&tracer, "ranked"); }
  obs::set_trace_pid(prev);
  { obs::Span s(&tracer, "unranked"); }

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].pid, 7);
  EXPECT_EQ(events[1].pid, prev);
}

TEST(Trace, WriteChromeTraceProducesJsonArray) {
  obs::Tracer tracer;
  { obs::Span s(&tracer, "phase.cluster"); }
  const std::string path = testing::TempDir() + "udb_test_trace.json";
  ASSERT_TRUE(tracer.write_chrome_trace(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) doc.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());

  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.front(), '[');  // Chrome trace_event JSON array format
  EXPECT_NE(doc.find("\"phase.cluster\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_cpu_ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disabled-mode zero-allocation contracts.
// ---------------------------------------------------------------------------

TEST(ObsOverhead, DisabledModeAllocatesNothing) {
  // Warm the TLS shard (registration allocates once per thread per registry)
  // and anything lazily initialized in the log path.
  obs::MetricsRegistry reg;
  reg.add(obs::Counter::kQueriesPerformed);
  reg.observe(obs::Hist::kNeighborCount, 1);
  RunGuard guard;
  (void)guard.check("warmup");
  const obs::LogLevel prev_level = obs::log_level();
  obs::set_log_level(obs::LogLevel::kWarn);

  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);

  // Warm metrics hot path: TLS cache hit, single-writer cell stores.
  for (int i = 0; i < 1000; ++i) {
    reg.add(obs::Counter::kQueriesPerformed);
    reg.observe(obs::Hist::kNeighborCount, static_cast<std::uint64_t>(i));
  }
  // Null-tracer spans are fully inert (obs/trace.hpp contract).
  for (int i = 0; i < 1000; ++i) {
    obs::Span s(nullptr, "inert");
    s.end();
  }
  // Suppressed log lines format nothing (obs/log.hpp contract).
  for (int i = 0; i < 1000; ++i)
    obs::LogLine(obs::LogLevel::kDebug, "test", "suppressed")
        .kv("i", i)
        .kv("x", 1.5);
  // Guard checkpoints without an attached registry: one relaxed pointer load
  // of obs cost, and the OK status never touches the heap.
  for (int i = 0; i < 1000; ++i) (void)guard.check("hot");

  const std::uint64_t after = g_alloc_calls.load(std::memory_order_relaxed);
  obs::set_log_level(prev_level);
  EXPECT_EQ(after - before, 0u);
}

// ---------------------------------------------------------------------------
// Logger.
// ---------------------------------------------------------------------------

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(obs::parse_log_level("debug").value(), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("info").value(), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warn").value(), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error").value(), obs::LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level("off").value(), obs::LogLevel::kOff);
  EXPECT_FALSE(obs::parse_log_level("WARN").ok());
  EXPECT_FALSE(obs::parse_log_level("verbose").ok());
  EXPECT_FALSE(obs::parse_log_level("").ok());
}

TEST(Log, LevelGate) {
  const obs::LogLevel prev = obs::log_level();
  obs::set_log_level(obs::LogLevel::kError);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  obs::set_log_level(obs::LogLevel::kOff);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kError));
  obs::set_log_level(prev);
}

// ---------------------------------------------------------------------------
// JSON writer + run report schema.
// ---------------------------------------------------------------------------

TEST(Report, JsonWriterCommasAndNesting) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("a", 1);
  w.key("b");
  w.begin_array();
  w.value(1);
  w.value("x");
  w.end_array();
  w.kv("c", true);
  w.kv("d", 1.5);
  w.key("e");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[1,"x"],"c":true,"d":1.5,"e":{}})");
}

TEST(Report, JsonWriterEscapesStrings) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("s", "q\"\n\\");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"q\\\"\\n\\\\\"}");
}

TEST(Report, MetricsSnapshotLedgerArithmetic) {
  obs::MetricsRegistry reg;
  reg.add(obs::Counter::kQueriesPerformed, 60);
  reg.add(obs::Counter::kQueriesAvoidedDmc, 30);
  reg.add(obs::Counter::kQueriesAvoidedCmc, 8);
  reg.add(obs::Counter::kQueriesAvoidedPromotion, 2);

  obs::JsonWriter w;
  w.begin_object();
  obs::write_metrics_snapshot(w, reg.snapshot(), 100);
  w.end_object();
  const std::string& doc = w.str();
  EXPECT_NE(doc.find("\"queries_performed\":60"), std::string::npos);
  EXPECT_NE(doc.find("\"avoided_total\":40"), std::string::npos);
  EXPECT_NE(doc.find("\"query_savings\":0.4"), std::string::npos);
}

// Golden key set of the run report. This pins schema_version 2 (v1 plus the
// "incremental" section): removing or renaming any of these keys is a
// breaking change and must bump the version (and docs/OBSERVABILITY.md).
TEST(Report, RunReportSchemaGoldenKeys) {
  obs::RunReportInputs in;
  in.algo = "mudbscan";
  in.n = 100;
  in.dim = 2;
  in.eps = 0.5;
  in.min_pts = 5;
  in.threads = 4;
  in.ranks = 2;
  in.seconds = 1.25;
  in.phases = {{"build_tree", 0.5}, {"cluster", 0.75}};
  in.metrics.counters[static_cast<std::size_t>(
      obs::Counter::kQueriesPerformed)] = 70;
  in.workers = {{0.4, 10}, {0.35, 9}};
  in.has_guard = true;
  in.mem_peak_bytes = 1 << 20;
  in.mem_budget_bytes = 1 << 22;
  in.deadline_seconds = 30.0;
  in.guard_checkpoints = 42;
  obs::RunReportInputs::Rank r0;
  r0.rank = 0;
  r0.n_local = 50;
  r0.msgs_sent = 3;
  in.rank_stats = {r0};

  const std::string doc = obs::run_report_json(in);
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.substr(doc.size() - 2), "}\n");

  const char* keys[] = {
      "\"schema_version\":2", "\"run\":",
      "\"tool\":",            "\"algo\":",
      "\"n\":",               "\"dim\":",
      "\"eps\":",             "\"min_pts\":",
      "\"threads\":",         "\"ranks\":",
      "\"seconds\":",         "\"approximate\":",
      "\"simd_target\":",     "\"kernel_blocks\":",
      "\"kernel_tail_points\":",
      "\"phases\":",          "\"build_tree\":0.5",
      "\"query_ledger\":",    "\"points\":",
      "\"queries_performed\":", "\"avoided\":",
      "\"dmc\":",             "\"cmc\":",
      "\"wndq_promotion\":",  "\"grid_dense_cell\":",
      "\"gdbscan_dense_group\":", "\"avoided_total\":",
      "\"query_savings\":",   "\"murtree\":",
      "\"num_mcs\":",         "\"smc\":",
      "\"deferred_points\":", "\"wndq_core_points\":",
      "\"aux_trees_searched\":", "\"rtree_node_visits\":",
      "\"rtree_distance_evals\":", "\"unionfind\":",
      "\"union_calls\":",     "\"post_core_distance_evals\":",
      "\"incremental\":",     "\"mcs_touched\":",
      "\"graph_edges_repaired\":", "\"full_fallbacks\":",
      "\"counters\":",        "\"histograms\":",
      "\"buckets\":",         "\"threadpool\":",
      "\"workers\":",         "\"busy_seconds\":",
      "\"jobs\":",            "\"runguard\":",
      "\"mem_peak_bytes\":",  "\"mem_budget_bytes\":",
      "\"deadline_seconds\":", "\"checkpoints\":",
      "\"ranks\":[",          "\"rank\":",
      "\"n_local\":",         "\"n_halo\":",
      "\"phase_seconds\":",   "\"partition\":",
      "\"halo\":",            "\"local\":",
      "\"merge\":",           "\"scatter\":",
      "\"comm\":",            "\"msgs_sent\":",
      "\"bytes_sent\":",      "\"msgs_recv\":",
      "\"bytes_recv\":",      "\"retries\":",
      "\"timeouts\":",
  };
  for (const char* key : keys)
    EXPECT_NE(doc.find(key), std::string::npos) << "missing key " << key;
}

TEST(Report, EmptySectionsOmitted) {
  obs::RunReportInputs in;
  in.algo = "brute";
  const std::string doc = obs::run_report_json(in);
  EXPECT_EQ(doc.find("\"runguard\""), std::string::npos);
  EXPECT_EQ(doc.find("\"ranks\":["), std::string::npos);
}

// ---------------------------------------------------------------------------
// Integration: RunGuard checkpoint gaps, CommStats, the engine ledger.
// ---------------------------------------------------------------------------

TEST(RunGuardObs, CheckpointGapHistogram) {
  RunGuard guard;
  obs::MetricsRegistry reg;
  guard.set_metrics(&reg);
  ASSERT_TRUE(guard.check("a").ok());
  ASSERT_TRUE(guard.check("b").ok());
  ASSERT_TRUE(guard.check("c").ok());
  // First check on this thread only primes the gap cache; the next two each
  // record one gap.
  EXPECT_EQ(reg.snapshot().hist(obs::Hist::kCheckpointGapUs).count, 2u);

  guard.set_metrics(nullptr);
  ASSERT_TRUE(guard.check("d").ok());
  EXPECT_EQ(reg.snapshot().hist(obs::Hist::kCheckpointGapUs).count, 2u);
  EXPECT_EQ(guard.checkpoints_passed(), 4u);  // a..d all counted
}

TEST(CommStatsObs, SnapshotSubtract) {
  mpi::CommStats before{10, 1000, 5, 500, 1, 0};
  mpi::CommStats after{14, 1600, 9, 900, 2, 1};
  const mpi::CommStats delta = after - before;
  EXPECT_EQ(delta.msgs_sent, 4u);
  EXPECT_EQ(delta.bytes_sent, 600u);
  EXPECT_EQ(delta.msgs_recv, 4u);
  EXPECT_EQ(delta.bytes_recv, 400u);
  EXPECT_EQ(delta.retries, 1u);
  EXPECT_EQ(delta.timeouts, 1u);

  mpi::CommStats total{};
  total += delta;
  total += delta;
  EXPECT_EQ(total.msgs_sent, 8u);
  EXPECT_EQ(total.bytes_sent, 1200u);
}

// The paper's cost-model identity as an end-to-end invariant: for the
// sequential engine every point either runs its neighborhood query or is
// skipped for exactly one ledger reason, so performed + avoided == n.
TEST(LedgerIntegration, SequentialLedgerSumsToN) {
  const std::size_t n = 2000;
  const Dataset ds = gen_blobs(n, 2, 5, 10.0, 0.4, 0.05, 42);

  obs::MetricsRegistry reg;
  MuDbscanConfig cfg;
  cfg.metrics = &reg;
  MuDbscanStats st;
  (void)mu_dbscan(ds, DbscanParams{0.5, 5}, &st, cfg);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const std::uint64_t performed =
      snap.counter(obs::Counter::kQueriesPerformed);
  const std::uint64_t avoided =
      snap.counter(obs::Counter::kQueriesAvoidedDmc) +
      snap.counter(obs::Counter::kQueriesAvoidedCmc) +
      snap.counter(obs::Counter::kQueriesAvoidedPromotion);
  EXPECT_EQ(performed + avoided, n);
  EXPECT_EQ(performed, st.queries_performed);

  // The classification counters line up with the engine's own stats, and
  // every performed query landed one neighbor-count observation.
  EXPECT_EQ(snap.counter(obs::Counter::kMcDense), st.dmc);
  EXPECT_EQ(snap.counter(obs::Counter::kMcCore), st.cmc);
  EXPECT_EQ(snap.counter(obs::Counter::kMcSparse), st.smc);
  EXPECT_EQ(snap.hist(obs::Hist::kNeighborCount).count, performed);
}

// The identity must also hold with the thread-parallel engine (promotion may
// shift counts between performed and avoided_promotion, never the sum).
TEST(LedgerIntegration, ParallelLedgerSumsToN) {
  const std::size_t n = 2000;
  const Dataset ds = gen_blobs(n, 2, 5, 10.0, 0.4, 0.05, 43);

  obs::MetricsRegistry reg;
  MuDbscanConfig cfg;
  cfg.metrics = &reg;
  cfg.num_threads = 4;
  (void)mu_dbscan(ds, DbscanParams{0.5, 5}, nullptr, cfg);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const std::uint64_t performed =
      snap.counter(obs::Counter::kQueriesPerformed);
  const std::uint64_t avoided =
      snap.counter(obs::Counter::kQueriesAvoidedDmc) +
      snap.counter(obs::Counter::kQueriesAvoidedCmc) +
      snap.counter(obs::Counter::kQueriesAvoidedPromotion);
  EXPECT_EQ(performed + avoided, n);
}

}  // namespace
}  // namespace udb
