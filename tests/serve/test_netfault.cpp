// Transport hardening (serve/crc32.hpp + netfault.* + protocol v2): CRC
// algebra, the seeded fault plan's determinism and zero-cost-off contract,
// v2 envelope roundtrip and tamper detection, legacy-v1 recognition, and
// injected wire faults end to end through real sockets — every fault must
// surface as a clean retryable Status, never a wrong answer.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "serve/client.hpp"
#include "serve/crc32.hpp"
#include "serve/netfault.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace udb {
namespace {

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // IEEE 802.3 reference values ("check" value of the CRC catalogue).
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(serve::crc32(check, sizeof check), 0xCBF43926u);
  EXPECT_EQ(serve::crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, UpdateComposesConcatenation) {
  const std::uint8_t a[] = {1, 2, 3, 4, 5};
  const std::uint8_t b[] = {6, 7, 8, 9, 10, 11};
  std::uint8_t both[sizeof a + sizeof b];
  std::memcpy(both, a, sizeof a);
  std::memcpy(both + sizeof a, b, sizeof b);
  EXPECT_EQ(serve::crc32_update(serve::crc32(a, sizeof a), b, sizeof b),
            serve::crc32(both, sizeof both));
  // Empty extension is the identity.
  EXPECT_EQ(serve::crc32_update(serve::crc32(a, sizeof a), nullptr, 0),
            serve::crc32(a, sizeof a));
}

TEST(Crc32Test, SingleBitFlipAlwaysDetected) {
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  const std::uint32_t clean = serve::crc32(data.data(), data.size());
  for (std::size_t byte = 0; byte < data.size(); ++byte)
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(serve::crc32(data.data(), data.size()), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
}

// ---------------------------------------------------------------------------
// Protocol v2 envelope
// ---------------------------------------------------------------------------

TEST(ProtocolV2Test, RoundtripPreservesIdAndPayload) {
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
  const auto framed = serve::frame_v2(0xABCDEF0123456789ull, payload);
  ASSERT_EQ(framed.size(), serve::kFrameV2HeaderBytes + payload.size());
  EXPECT_EQ(framed[0], serve::kProtocolV2Marker);

  serve::FrameV2 env;
  ASSERT_TRUE(serve::parse_frame_v2(framed, env).ok());
  EXPECT_EQ(env.request_id, 0xABCDEF0123456789ull);
  ASSERT_EQ(env.payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(env.payload.data(), payload.data(), payload.size()),
            0);
}

TEST(ProtocolV2Test, EmptyPayloadRoundtrips) {
  const auto framed = serve::frame_v2(7, {});
  serve::FrameV2 env;
  ASSERT_TRUE(serve::parse_frame_v2(framed, env).ok());
  EXPECT_EQ(env.request_id, 7u);
  EXPECT_TRUE(env.payload.empty());
}

TEST(ProtocolV2Test, EveryBitFlipInTheFrameIsRejected) {
  serve::Request req;
  req.type = serve::MsgType::kPointInfo;
  req.point_id = 42;
  auto framed = serve::frame_v2(5, serve::encode_request(req));
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    framed[byte] ^= 0x40;
    serve::FrameV2 env;
    auto st = serve::parse_frame_v2(framed, env);
    EXPECT_FALSE(st.ok()) << "byte " << byte;
    framed[byte] ^= 0x40;
  }
  // Untouched, it still parses: the loop restored every byte.
  serve::FrameV2 env;
  EXPECT_TRUE(serve::parse_frame_v2(framed, env).ok());
}

TEST(ProtocolV2Test, LegacyV1FramesAreRecognizedAsUnimplemented) {
  // Each v1 message type byte (1..6) must be classified as a legacy client,
  // not as corruption.
  for (std::uint8_t type = 1; type <= 6; ++type) {
    std::vector<std::uint8_t> v1 = {type, 0, 0, 0};
    serve::FrameV2 env;
    auto st = serve::parse_frame_v2(v1, env);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kUnimplemented) << int(type);
  }
  // Unknown marker bytes are corruption, not legacy traffic.
  const std::vector<std::uint8_t> junk = {0xEE, 1, 2, 3};
  serve::FrameV2 env;
  EXPECT_EQ(serve::parse_frame_v2(junk, env).code(), StatusCode::kDataLoss);
  EXPECT_EQ(serve::parse_frame_v2(std::span<const std::uint8_t>{}, env).code(),
            StatusCode::kDataLoss);
}

TEST(ProtocolV2Test, TruncatedEnvelopeIsDataLoss) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const auto framed = serve::frame_v2(9, payload);
  for (std::size_t len = 1; len < serve::kFrameV2HeaderBytes; ++len) {
    serve::FrameV2 env;
    auto st = serve::parse_frame_v2(
        std::span<const std::uint8_t>(framed.data(), len), env);
    ASSERT_FALSE(st.ok()) << len;
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << len;
  }
}

// ---------------------------------------------------------------------------
// Traced (0xB3) envelope extension
// ---------------------------------------------------------------------------

TEST(ProtocolV2TracedTest, RoundtripPreservesTraceContext) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const auto framed =
      serve::frame_v2(11, payload, 0xFEEDFACE12345678ull, 3);
  ASSERT_EQ(framed.size(), serve::kFrameV2TracedHeaderBytes + payload.size());
  EXPECT_EQ(framed[0], serve::kProtocolV2TracedMarker);

  serve::FrameV2 env;
  ASSERT_TRUE(serve::parse_frame_v2(framed, env).ok());
  EXPECT_EQ(env.request_id, 11u);
  EXPECT_EQ(env.trace_id, 0xFEEDFACE12345678ull);
  EXPECT_EQ(env.parent_span_id, 3u);
  ASSERT_EQ(env.payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(env.payload.data(), payload.data(), payload.size()),
            0);
}

TEST(ProtocolV2TracedTest, ZeroTraceContextIsByteIdenticalToUntraced) {
  // A traced-capable sender with tracing off must produce exactly the legacy
  // 0xB2 frame — old servers never see an unknown marker.
  const std::vector<std::uint8_t> payload = {5, 6, 7};
  EXPECT_EQ(serve::frame_v2(21, payload, 0, 0), serve::frame_v2(21, payload));
}

TEST(ProtocolV2TracedTest, UntracedFrameParsesWithZeroTraceContext) {
  const std::vector<std::uint8_t> payload = {9};
  const auto framed = serve::frame_v2(4, payload);
  serve::FrameV2 env;
  ASSERT_TRUE(serve::parse_frame_v2(framed, env).ok());
  EXPECT_EQ(env.trace_id, 0u);
  EXPECT_EQ(env.parent_span_id, 0u);
}

TEST(ProtocolV2TracedTest, EveryBitFlipInTracedFrameIsRejected) {
  // The CRC must cover the trace extension too: a flipped trace id may not
  // slip through and mis-correlate spans.
  serve::Request req;
  req.type = serve::MsgType::kPing;
  auto framed = serve::frame_v2(5, serve::encode_request(req),
                                0xA5A5A5A5A5A5A5A5ull, 2);
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    framed[byte] ^= 0x40;
    serve::FrameV2 env;
    EXPECT_FALSE(serve::parse_frame_v2(framed, env).ok()) << "byte " << byte;
    framed[byte] ^= 0x40;
  }
  serve::FrameV2 env;
  EXPECT_TRUE(serve::parse_frame_v2(framed, env).ok());
}

TEST(ProtocolV2TracedTest, TruncatedTracedEnvelopeIsDataLoss) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const auto framed = serve::frame_v2(9, payload, 77, 1);
  for (std::size_t len = 1; len < serve::kFrameV2TracedHeaderBytes; ++len) {
    serve::FrameV2 env;
    auto st = serve::parse_frame_v2(
        std::span<const std::uint8_t>(framed.data(), len), env);
    ASSERT_FALSE(st.ok()) << len;
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << len;
  }
}

// ---------------------------------------------------------------------------
// NetFaultPlan bookkeeping
// ---------------------------------------------------------------------------

TEST(NetFaultPlanTest, InstallUninstallAndCounters) {
  serve::install_net_fault_plan(nullptr);
  EXPECT_EQ(serve::net_fault_plan(), nullptr);

  serve::NetFaultPlan plan;
  plan.seed = 1234;
  serve::install_net_fault_plan(&plan);
  EXPECT_EQ(serve::net_fault_plan(), &plan);

  serve::reset_net_fault_state();
  serve::count_net_fault(serve::NetFaultKind::kOp);
  serve::count_net_fault(serve::NetFaultKind::kCorrupt);
  const auto counts = serve::net_fault_counts();
  EXPECT_EQ(counts.ops, 1u);
  EXPECT_EQ(counts.corrupted, 1u);
  EXPECT_EQ(counts.dropped, 0u);

  serve::reset_net_fault_state();
  EXPECT_EQ(serve::net_fault_counts().ops, 0u);
  serve::install_net_fault_plan(nullptr);
}

// ---------------------------------------------------------------------------
// Injected wire faults end to end
// ---------------------------------------------------------------------------

class NetFaultSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ModelSnapshot snap;
    snap.data = gen_blobs(400, 2, 4, 20.0, 1.0, 0.1, 7);
    snap.params = {1.2, 5};
    snap.result = mu_dbscan(snap.data, snap.params);
    auto m = serve::ClusterModel::build(std::move(snap));
    ASSERT_TRUE(m.ok());
    model_ = *m;
    server_ = std::make_unique<serve::QueryServer>(model_, serve::ServerConfig{});
    ASSERT_TRUE(server_->start().ok());
    serve::reset_net_fault_state();
  }

  void TearDown() override {
    serve::install_net_fault_plan(nullptr);
    server_->stop();
  }

  std::shared_ptr<const serve::ClusterModel> model_;
  std::unique_ptr<serve::QueryServer> server_;
  serve::NetFaultPlan plan_;
};

TEST_F(NetFaultSocketTest, CorruptionIsCaughtNeverAnsweredWrong) {
  plan_.seed = 99;
  plan_.write.corrupt_rate = 0.25;
  plan_.read.corrupt_rate = 0.25;
  serve::install_net_fault_plan(&plan_);

  std::size_t clean = 0, caught = 0;
  for (int i = 0; i < 60; ++i) {
    auto c = serve::Client::connect(server_->port(), 2.0);
    ASSERT_TRUE(c.ok());
    const auto p = model_->dataset().point(static_cast<PointId>(i % 400));
    auto r = c->classify(p, 2);
    if (r.ok()) {
      // Made it through the CRC intact: must be the exact in-process answer.
      ASSERT_EQ(r->size(), 1u);
      EXPECT_EQ((*r)[0].label,
                model_->result().label[static_cast<std::size_t>(i % 400)]);
      EXPECT_TRUE((*r)[0].exact_match);
      ++clean;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss)
          << r.status().to_string();
      ++caught;
    }
  }
  EXPECT_GT(clean, 0u);
  EXPECT_GT(caught, 0u);  // at 25% per op some corruption must have hit
  EXPECT_GT(serve::net_fault_counts().corrupted, 0u);
}

TEST_F(NetFaultSocketTest, DropsSurfaceAsUnavailable) {
  plan_.seed = 7;
  plan_.write.drop_rate = 0.30;
  plan_.read.drop_rate = 0.30;
  serve::install_net_fault_plan(&plan_);

  std::size_t failed = 0;
  for (int i = 0; i < 40; ++i) {
    auto c = serve::Client::connect(server_->port(), 2.0);
    ASSERT_TRUE(c.ok());
    if (!c->ping().ok()) ++failed;
  }
  EXPECT_GT(failed, 0u);
  EXPECT_GT(serve::net_fault_counts().dropped, 0u);
}

TEST(NetFaultDeterminismTest, SameSeedSameOrdinalsSameDecisions) {
  // Only the client side does frame I/O here (the listener never accepts,
  // writes land in the kernel backlog), so connection ordinals are assigned
  // in a deterministic order and the decision stream must replay exactly.
  std::uint16_t port = 0;
  auto listener = serve::listen_loopback(0, port);
  ASSERT_TRUE(listener.ok());

  serve::NetFaultPlan plan;
  plan.seed = 4242;
  plan.write.drop_rate = 0.5;
  const std::vector<std::uint8_t> body = {1, 2, 3, 4};

  auto run = [&] {
    serve::reset_net_fault_state();
    serve::install_net_fault_plan(&plan);
    std::vector<bool> outcomes;
    for (int i = 0; i < 24; ++i) {
      auto s = serve::connect_loopback(port, 2.0);
      EXPECT_TRUE(s.ok());
      outcomes.push_back(serve::write_frame(*s, body).ok());
    }
    serve::install_net_fault_plan(nullptr);
    return outcomes;
  };
  const auto first = run();
  EXPECT_EQ(first, run());
  // A different seed must produce a different pattern at 50% drop over 24
  // independent connections (collision probability 2^-24).
  plan.seed = 4243;
  EXPECT_NE(first, run());
}

TEST_F(NetFaultSocketTest, CrashPointSeversOneConnection) {
  plan_.seed = 1;
  plan_.crash_conn = 0;       // the first connection to do frame I/O ...
  plan_.crash_after_ops = 2;  // ... dies at its third frame operation
  serve::install_net_fault_plan(&plan_);

  auto c = serve::Client::connect(server_->port(), 2.0);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->ping().ok());      // ops 0 (write) and 1 (read)
  EXPECT_FALSE(c->ping().ok());     // op 2 crashes the connection
  EXPECT_GE(serve::net_fault_counts().crashed, 1u);

  serve::install_net_fault_plan(nullptr);
  auto fresh = serve::Client::connect(server_->port(), 2.0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->ping().ok());  // the server survived the severed conn
}

}  // namespace
}  // namespace udb
