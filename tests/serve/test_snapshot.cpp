// Snapshot persistence (serve/snapshot.*): roundtrip fidelity and the
// quarantine-loader contract — every malformed file (truncated, bit-flipped,
// wrong magic/version, padded, semantically invalid) must come back as a
// clean Status, never a crash or a partially constructed model.

#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "serve/wire.hpp"

namespace udb {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return ::testing::TempDir() + "udb_snap_" + name;
  }

  // A small fitted model shared by the corruption tests.
  serve::ModelSnapshot make_snapshot() {
    serve::ModelSnapshot snap;
    snap.data = gen_blobs(300, 2, 4, 20.0, 1.0, 0.1, 99);
    snap.params = {1.0, 5};
    snap.result = mu_dbscan(snap.data, snap.params);
    snap.report_json = "{\"tool\":\"test\"}";
    return snap;
  }

  std::vector<std::uint8_t> read_file(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void write_file(const std::string& p, const std::vector<std::uint8_t>& b) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(b.data()),
              static_cast<std::streamsize>(b.size()));
  }

  // Rewrites the footer checksum so content mutations exercise the semantic
  // validators rather than tripping the checksum first.
  void fix_checksum(std::vector<std::uint8_t>& bytes) {
    ASSERT_GE(bytes.size(), 24u);
    const std::size_t payload_end = bytes.size() - 8;
    const std::uint64_t sum =
        serve::fnv1a64(bytes.data() + 16, payload_end - 16);
    std::memcpy(bytes.data() + payload_end, &sum, 8);
  }
};

TEST_F(SnapshotTest, RoundtripIsIdentical) {
  const auto snap = make_snapshot();
  const std::string p = path("roundtrip.udbm");
  ASSERT_TRUE(serve::save_model(snap, p).ok());

  auto loaded = serve::load_model(p);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->data.raw(), snap.data.raw());
  EXPECT_EQ(loaded->data.dim(), snap.data.dim());
  EXPECT_EQ(loaded->result.label, snap.result.label);
  EXPECT_EQ(loaded->result.is_core, snap.result.is_core);
  EXPECT_EQ(loaded->result.num_clusters(), snap.result.num_clusters());
  EXPECT_EQ(loaded->params.eps, snap.params.eps);
  EXPECT_EQ(loaded->params.min_pts, snap.params.min_pts);
  EXPECT_EQ(loaded->two_eps_rule, snap.two_eps_rule);
  EXPECT_EQ(loaded->bulk_aux, snap.bulk_aux);
  EXPECT_EQ(loaded->report_json, snap.report_json);
}

TEST_F(SnapshotTest, SaveIsDeterministic) {
  const auto snap = make_snapshot();
  const std::string p1 = path("det1.udbm"), p2 = path("det2.udbm");
  ASSERT_TRUE(serve::save_model(snap, p1).ok());
  ASSERT_TRUE(serve::save_model(snap, p2).ok());
  EXPECT_EQ(read_file(p1), read_file(p2));
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  auto r = serve::load_model(path("nope.udbm"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, EveryTruncationIsRejectedCleanly) {
  const std::string p = path("trunc_src.udbm");
  ASSERT_TRUE(serve::save_model(make_snapshot(), p).ok());
  const auto full = read_file(p);
  ASSERT_GT(full.size(), 64u);

  // Cut inside the header, the fixed payload prefix, the coordinate block,
  // the trailing arrays, and the checksum footer.
  const std::size_t cuts[] = {0,  3,  15, 16,
                              40, full.size() / 2, full.size() - 9,
                              full.size() - 8, full.size() - 1};
  const std::string tp = path("trunc.udbm");
  for (std::size_t cut : cuts) {
    write_file(tp, {full.begin(), full.begin() + static_cast<long>(cut)});
    auto r = serve::load_model(tp);
    ASSERT_FALSE(r.ok()) << "truncation at " << cut << " was accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "cut " << cut;
  }
}

TEST_F(SnapshotTest, TrailingBytesAreRejected) {
  const std::string p = path("padded.udbm");
  ASSERT_TRUE(serve::save_model(make_snapshot(), p).ok());
  auto bytes = read_file(p);
  bytes.push_back(0x00);
  write_file(p, bytes);
  auto r = serve::load_model(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotTest, BitFlipInPayloadIsRejected) {
  const std::string p = path("flip.udbm");
  ASSERT_TRUE(serve::save_model(make_snapshot(), p).ok());
  const auto clean = read_file(p);
  // Flip one bit at several positions across the payload; the checksum must
  // catch every one of them.
  for (std::size_t pos : {std::size_t{16}, std::size_t{24},
                          clean.size() / 3, clean.size() / 2,
                          clean.size() - 9}) {
    auto bytes = clean;
    bytes[pos] ^= 0x10;
    write_file(p, bytes);
    auto r = serve::load_model(p);
    ASSERT_FALSE(r.ok()) << "bit flip at " << pos << " was accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "pos " << pos;
  }
}

TEST_F(SnapshotTest, WrongMagicIsRejected) {
  const std::string p = path("magic.udbm");
  ASSERT_TRUE(serve::save_model(make_snapshot(), p).ok());
  auto bytes = read_file(p);
  bytes[0] = 'X';
  write_file(p, bytes);
  auto r = serve::load_model(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST_F(SnapshotTest, UnsupportedVersionIsRejected) {
  const std::string p = path("version.udbm");
  ASSERT_TRUE(serve::save_model(make_snapshot(), p).ok());
  auto bytes = read_file(p);
  const std::uint32_t future = serve::kSnapshotVersion + 1;
  std::memcpy(bytes.data() + 4, &future, 4);
  write_file(p, bytes);
  auto r = serve::load_model(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, OutOfRangeLabelIsRejectedEvenWithValidChecksum) {
  const auto snap = make_snapshot();
  const std::string p = path("badlabel.udbm");
  ASSERT_TRUE(serve::save_model(snap, p).ok());
  auto bytes = read_file(p);

  // Payload layout: u64 dim | u64 n | f64 eps | u32 min_pts | u32 flags |
  // u64 num_clusters | f64 coords[n*dim] | i64 labels[n] | ...
  const std::size_t n = snap.data.size(), d = snap.data.dim();
  const std::size_t labels_off = 16 + 8 + 8 + 8 + 4 + 4 + 8 + n * d * 8;
  ASSERT_LT(labels_off + 8, bytes.size());
  const std::int64_t bogus = 1'000'000;
  std::memcpy(bytes.data() + labels_off, &bogus, 8);
  fix_checksum(bytes);
  write_file(p, bytes);

  auto r = serve::load_model(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotTest, BadCoreFlagIsRejectedEvenWithValidChecksum) {
  const auto snap = make_snapshot();
  const std::string p = path("badcore.udbm");
  ASSERT_TRUE(serve::save_model(snap, p).ok());
  auto bytes = read_file(p);

  const std::size_t n = snap.data.size(), d = snap.data.dim();
  const std::size_t core_off =
      16 + 8 + 8 + 8 + 4 + 4 + 8 + n * d * 8 + n * 8;
  ASSERT_LT(core_off, bytes.size());
  bytes[core_off] = 7;  // core flags must be exactly 0 or 1
  fix_checksum(bytes);
  write_file(p, bytes);

  auto r = serve::load_model(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(SnapshotTest, InconsistentSnapshotRefusesToSave) {
  auto snap = make_snapshot();
  snap.result.label.pop_back();  // label array no longer sized to the data
  auto st = serve::save_model(snap, path("inconsistent.udbm"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, FailedSaveLeavesExistingFileIntact) {
  const auto snap = make_snapshot();
  const std::string p = path("keep.udbm");
  ASSERT_TRUE(serve::save_model(snap, p).ok());
  const auto before = read_file(p);

  auto bad = snap;
  bad.result.is_core.pop_back();
  ASSERT_FALSE(serve::save_model(bad, p).ok());
  EXPECT_EQ(read_file(p), before);  // atomic tmp+rename: no partial overwrite
}

TEST_F(SnapshotTest, UnwritablePathFailsCleanly) {
  auto st = serve::save_model(make_snapshot(),
                              "/nonexistent_dir_udb/model.udbm");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST_F(SnapshotTest, StaleTmpFromACrashedSaveIsOverwritten) {
  // A process that died between write and rename leaves `<path>.tmp` behind.
  // The next save must clobber it, succeed, and leave no tmp residue.
  const auto snap = make_snapshot();
  const std::string p = path("staletmp.udbm");
  write_file(p + ".tmp", {0xDE, 0xAD, 0xBE, 0xEF});

  ASSERT_TRUE(serve::save_model(snap, p).ok());
  auto loaded = serve::load_model(p);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  std::ifstream residue(p + ".tmp", std::ios::binary);
  EXPECT_FALSE(residue.good());  // consumed by the rename
}

TEST_F(SnapshotTest, BlockedTmpWriteLeavesPreviousModelServing) {
  // Force the tmp-file write itself to fail (its path is a directory): the
  // save reports INTERNAL and the previously saved model under the final
  // name is untouched and still loads.
  const auto snap = make_snapshot();
  const std::string p = path("blockedtmp.udbm");
  ASSERT_TRUE(serve::save_model(snap, p).ok());
  const auto before = read_file(p);

  ASSERT_TRUE(std::filesystem::create_directory(p + ".tmp"));
  auto st = serve::save_model(snap, p);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(read_file(p), before);
  EXPECT_TRUE(serve::load_model(p).ok());
  std::filesystem::remove(p + ".tmp");
}

TEST_F(SnapshotTest, ShortWriteNeverSurfacesUnderTheFinalName) {
  // Simulated crash mid-write: only a prefix of the snapshot made it to the
  // tmp file before the process died. The final name still serves the old
  // model; the short tmp is itself rejected cleanly if someone loads it.
  const auto snap = make_snapshot();
  const std::string p = path("shortwrite.udbm");
  ASSERT_TRUE(serve::save_model(snap, p).ok());
  const auto good = read_file(p);

  std::vector<std::uint8_t> prefix(good.begin(),
                                   good.begin() +
                                       static_cast<std::ptrdiff_t>(
                                           good.size() / 3));
  write_file(p + ".tmp", prefix);

  EXPECT_EQ(read_file(p), good);
  ASSERT_TRUE(serve::load_model(p).ok());
  auto short_load = serve::load_model(p + ".tmp");
  ASSERT_FALSE(short_load.ok());
  EXPECT_EQ(short_load.status().code(), StatusCode::kDataLoss);
  std::remove((p + ".tmp").c_str());
}

}  // namespace
}  // namespace udb
