// QueryServer end to end (serve/server.* + net.* + client.*): real loopback
// sockets, typed client calls checked against the in-process model, garbage
// frames answered with clean errors, refresh mid-serve, per-request
// deadlines, and concurrent clients. The in-process handle() seam is tested
// too, so protocol handling is covered even where sockets are flaky.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "serve/client.hpp"
#include "serve/snapshot.hpp"
#include "serve/wire.hpp"

namespace udb {
namespace {

constexpr double kEps = 1.2;
constexpr std::uint32_t kMinPts = 5;

std::shared_ptr<const serve::ClusterModel> fitted_model(std::size_t n,
                                                        std::uint64_t seed) {
  serve::ModelSnapshot snap;
  snap.data = gen_blobs(n, 2, 5, 25.0, 1.0, 0.1, seed);
  snap.params = {kEps, kMinPts};
  snap.result = mu_dbscan(snap.data, snap.params);
  auto m = serve::ClusterModel::build(std::move(snap));
  EXPECT_TRUE(m.ok()) << m.status().to_string();
  return *m;
}

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = fitted_model(600, 5);
    serve::ServerConfig cfg;
    cfg.pool_threads = 2;
    server_ = std::make_unique<serve::QueryServer>(model_, cfg);
    ASSERT_TRUE(server_->start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  serve::Client client() {
    auto c = serve::Client::connect(server_->port());
    EXPECT_TRUE(c.ok()) << c.status().to_string();
    return std::move(*c);
  }

  std::shared_ptr<const serve::ClusterModel> model_;
  std::unique_ptr<serve::QueryServer> server_;
};

TEST_F(QueryServerTest, PingAndModelInfo) {
  auto c = client();
  EXPECT_TRUE(c.ping().ok());
  auto info = c.model_info();
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info->n, model_->size());
  EXPECT_EQ(info->dim, model_->dim());
  EXPECT_EQ(info->eps, kEps);
  EXPECT_EQ(info->min_pts, kMinPts);
  EXPECT_EQ(info->num_clusters, model_->num_clusters());
}

TEST_F(QueryServerTest, ClassifyOverSocketMatchesInProcessModel) {
  // Mixed batch: verbatim dataset points interleaved with jittered ones.
  std::mt19937_64 rng(9);
  std::normal_distribution<double> jitter(0.0, 0.7 * kEps);
  std::vector<double> coords;
  const std::size_t count = 300;
  for (std::size_t i = 0; i < count; ++i) {
    const auto p = model_->dataset().point(static_cast<PointId>(i));
    coords.push_back(p[0] + (i % 2 ? jitter(rng) : 0.0));
    coords.push_back(p[1] + (i % 2 ? jitter(rng) : 0.0));
  }

  auto c = client();
  auto served = c.classify(coords, 2);
  ASSERT_TRUE(served.ok()) << served.status().to_string();
  auto direct = model_->classify_batch(coords, count);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(served->size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ((*served)[i].label, (*direct)[i].label) << i;
    EXPECT_EQ((*served)[i].kind, (*direct)[i].kind) << i;
    EXPECT_EQ((*served)[i].exact_match, (*direct)[i].exact_match) << i;
    EXPECT_EQ((*served)[i].would_be_core, (*direct)[i].would_be_core) << i;
    EXPECT_EQ((*served)[i].neighbors, (*direct)[i].neighbors) << i;
  }

  // The server's classify ledger must balance after real traffic.
  const auto snap = server_->metrics().snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kServeClassifyPerformed) +
                snap.counter(obs::Counter::kServeClassifyAvoidedExact),
            snap.counter(obs::Counter::kServeClassifyPoints));
  EXPECT_EQ(snap.counter(obs::Counter::kServeClassifyPoints), count);
}

TEST_F(QueryServerTest, NeighborsOverSocketMatchesInProcessModel) {
  const std::vector<double> q = {12.0, 12.0};
  auto c = client();
  auto served = c.neighbors(q, 3.0);
  ASSERT_TRUE(served.ok()) << served.status().to_string();
  auto direct = model_->neighbors(q, 3.0);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(served->size(), direct->size());
  for (std::size_t i = 0; i < served->size(); ++i) {
    EXPECT_EQ((*served)[i].first, (*direct)[i].first) << i;
    EXPECT_EQ((*served)[i].second, (*direct)[i].second) << i;
  }
}

TEST_F(QueryServerTest, PointInfoOverSocketAndOutOfRange) {
  auto c = client();
  auto info = c.point_info(0);
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info->label, model_->result().label[0]);
  EXPECT_EQ(info->is_core, model_->result().is_core[0] != 0);

  auto bad = c.point_info(model_->size() + 10);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryServerTest, WrongDimensionIsAnsweredWithInvalidArgument) {
  const std::vector<double> q = {1.0, 2.0, 3.0};
  auto c = client();
  auto r = c.classify(q, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The connection survives an application-level error.
  EXPECT_TRUE(c.ping().ok());
}

TEST_F(QueryServerTest, StatsJsonReportsTheLedger) {
  auto c = client();
  const std::vector<double> q = {1.0, 2.0};
  ASSERT_TRUE(c.classify(q, 2).ok());
  auto json = c.stats_json();
  ASSERT_TRUE(json.ok()) << json.status().to_string();
  EXPECT_NE(json->find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json->find("\"serve_ledger\""), std::string::npos);
  EXPECT_NE(json->find("\"classify_points\""), std::string::npos);
  EXPECT_NE(json->find("\"udbscan_serve\""), std::string::npos);
}

TEST_F(QueryServerTest, GarbageFramesGetErrorsAndTheServerSurvives) {
  // One garbage body per fresh connection, like the CLI probe: unknown type,
  // absurd batch claim, byte soup, truncated body, valid type + trailing junk.
  std::vector<std::vector<std::uint8_t>> frames;
  {
    serve::ByteWriter w;
    w.u8(0xEE);
    frames.push_back(w.take());
  }
  {
    serve::ByteWriter w;
    w.u8(2);
    w.u32(0xFFFFFFFFu);
    w.u32(3);
    frames.push_back(w.take());
  }
  {
    serve::ByteWriter w;
    std::uint32_t x = 0xC0FFEE;
    for (int k = 0; k < 48; ++k) {
      x = x * 1664525u + 1013904223u;
      w.u8(static_cast<std::uint8_t>(x >> 24));
    }
    frames.push_back(w.take());
  }
  {
    serve::ByteWriter w;
    w.u8(4);
    frames.push_back(w.take());
  }
  {
    serve::ByteWriter w;
    w.u8(1);
    w.u64(0xDEADBEEFull);
    frames.push_back(w.take());
  }

  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto c = client();
    auto resp = c.raw_roundtrip(frames[i]);
    if (resp.ok()) {
      EXPECT_NE(resp->code, StatusCode::kOk) << "garbage frame " << i;
    }
    // A dropped connection is acceptable; a dead server is not — checked
    // by the fresh connection on the next iteration and the ping below.
  }
  auto after = client();
  EXPECT_TRUE(after.ping().ok());
}

TEST_F(QueryServerTest, RefreshSwapsTheServedModelMidServe) {
  auto c = client();
  auto before = c.model_info();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->n, 600u);

  server_->refresh(fitted_model(250, 77));
  auto after = c.model_info();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->n, 250u);
  // Queries go against the new model immediately.
  auto info = c.point_info(249);
  EXPECT_TRUE(info.ok());
  EXPECT_EQ(c.point_info(400).status().code(), StatusCode::kNotFound);
}

TEST_F(QueryServerTest, ConcurrentClientsAllGetExactAnswers) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto c = serve::Client::connect(server_->port());
      if (!c.ok()) {
        ++failures;
        return;
      }
      std::mt19937_64 rng(100 + t);
      for (int iter = 0; iter < 50; ++iter) {
        const auto id =
            static_cast<PointId>(rng() % model_->size());
        const auto p = model_->dataset().point(id);
        auto r = c->classify(p, 2);
        if (!r.ok() || r->size() != 1 || !(*r)[0].exact_match ||
            (*r)[0].label != model_->result().label[id])
          ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(QueryServerTest, StopIsIdempotentAndRefusesNewConnections) {
  server_->stop();
  server_->stop();
  EXPECT_FALSE(server_->running());
}

TEST(QueryServerDeadlineTest, TinyDeadlineAnswersDeadlineExceeded) {
  auto model = fitted_model(500, 13);
  serve::ServerConfig cfg;
  cfg.request_deadline_seconds = 1e-9;
  serve::QueryServer server(model, cfg);
  ASSERT_TRUE(server.start().ok());

  auto c = serve::Client::connect(server.port());
  ASSERT_TRUE(c.ok());
  std::vector<double> coords(2 * 1000, 3.0);
  auto r = c->classify(coords, 2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(server.metrics().snapshot().counter(
                obs::Counter::kServeDeadlineExceeded),
            1u);
  // The connection is still usable afterwards.
  EXPECT_TRUE(c->ping().ok());
}

TEST(QueryServerHandleTest, InProcessHandleAnswersWithoutSockets) {
  // handle() is the connection worker's brain; it must work on a server
  // that was never start()ed (pure in-process serving).
  auto model = fitted_model(300, 3);
  serve::QueryServer server(model, {});

  serve::Request req;
  req.type = serve::MsgType::kPing;
  EXPECT_EQ(server.handle(req).code, StatusCode::kOk);

  req = {};
  req.type = serve::MsgType::kModelInfo;
  auto info = server.handle(req);
  ASSERT_EQ(info.code, StatusCode::kOk);
  EXPECT_EQ(info.model.n, 300u);

  req = {};
  req.type = serve::MsgType::kClassify;
  req.dim = 2;
  const auto p = model->dataset().point(7);
  req.coords = {p[0], p[1]};
  auto cls = server.handle(req);
  ASSERT_EQ(cls.code, StatusCode::kOk);
  ASSERT_EQ(cls.classify.size(), 1u);
  EXPECT_TRUE(cls.classify[0].exact_match);
  EXPECT_EQ(cls.classify[0].label, model->result().label[7]);

  req = {};
  req.type = serve::MsgType::kStats;
  auto stats = server.handle(req);
  ASSERT_EQ(stats.code, StatusCode::kOk);
  EXPECT_NE(stats.json.find("\"serve_ledger\""), std::string::npos);
}

}  // namespace
}  // namespace udb
