// Live telemetry end to end (serve/telemetry.* + the kTelemetry RPC): the
// unified stats document schema (golden key set — breaking changes must bump
// kStatsSchemaVersion), the JSON and Prometheus expositions rendered from a
// known report, and the admin RPC served over real sockets with the rolling
// windows fed by real traffic. The documents are validated by parsing them
// with the repo's own JSON parser, not by substring poking.

#include "serve/telemetry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "serve/client.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"

namespace udb {
namespace {

std::shared_ptr<const serve::ClusterModel> fitted_model(std::size_t n,
                                                        std::uint64_t seed) {
  serve::ModelSnapshot snap;
  snap.data = gen_blobs(n, 2, 5, 25.0, 1.0, 0.1, seed);
  snap.params = {1.2, 5};
  snap.result = mu_dbscan(snap.data, snap.params);
  auto m = serve::ClusterModel::build(std::move(snap));
  EXPECT_TRUE(m.ok()) << m.status().to_string();
  return *m;
}

serve::TelemetryReport sample_report() {
  serve::TelemetryReport t;
  t.uptime_us = 2'500'000;
  t.inflight = 1;
  t.requests_total = 50;
  t.errors_total = 2;
  t.shed_load_total = 3;
  t.shed_connections_total = 1;
  t.corrupt_frames_total = 4;
  t.idle_disconnects_total = 0;
  t.classify_points = 40;
  t.classify_performed = 15;
  t.classify_avoided_exact = 25;
  const double spans[] = {1.0, 10.0, 60.0};
  for (std::size_t i = 0; i < serve::kTelemetryWindows; ++i) {
    t.windows[i].window_seconds = spans[i];
    t.windows[i].requests = 10 * (i + 1);
    t.windows[i].qps = 10.0 * static_cast<double>(i + 1) / spans[i];
    t.windows[i].p50_us = 100.0;
    t.windows[i].p90_us = 200.0;
    t.windows[i].p99_us = 400.0;
    t.windows[i].p999_us = 800.0;
    t.windows[i].max_us = 1000.0;
  }
  return t;
}

json::Value parse_ok(const std::string& text) {
  json::Value doc;
  Status st = json::parse(text, doc);
  EXPECT_TRUE(st.ok()) << st.to_string() << "\n" << text;
  return doc;
}

// ---------------------------------------------------------------------------
// Document builders
// ---------------------------------------------------------------------------

TEST(TelemetryJsonTest, GoldenKeysAndLedgerInvariant) {
  const json::Value doc = parse_ok(serve::telemetry_json(sample_report()));
  EXPECT_EQ(doc.find("schema_version")->number, serve::kStatsSchemaVersion);
  EXPECT_EQ(doc.find("tool")->string, "udbscan_serve");
  EXPECT_EQ(doc.find("kind")->string, "telemetry");
  EXPECT_NEAR(doc.find("uptime_seconds")->number, 2.5, 1e-9);
  EXPECT_EQ(doc.find_path("totals.requests")->number, 50.0);
  EXPECT_EQ(doc.find_path("totals.corrupt_frames")->number, 4.0);
  // 15 performed + 25 avoided == 40 points -> the invariant holds.
  EXPECT_TRUE(doc.find_path("serve_ledger.holds")->boolean);
  const json::Value* windows = doc.find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->array.size(), serve::kTelemetryWindows);
  EXPECT_EQ(windows->array[0].find("window_seconds")->number, 1.0);
  EXPECT_EQ(windows->array[2].find("window_seconds")->number, 60.0);
  EXPECT_EQ(windows->array[1].find("p99_us")->number, 400.0);
}

TEST(TelemetryJsonTest, BrokenLedgerIsReportedNotHidden) {
  serve::TelemetryReport t = sample_report();
  t.classify_performed += 1;  // invariant now violated
  const json::Value doc = parse_ok(serve::telemetry_json(t));
  EXPECT_FALSE(doc.find_path("serve_ledger.holds")->boolean);
}

TEST(TelemetryPrometheusTest, ExpositionCarriesCountersWindowsAndHistogram) {
  obs::MetricsRegistry reg;
  reg.add(obs::Counter::kServeRequests, 7);
  reg.observe(obs::Hist::kServeRequestUs, 0);
  reg.observe(obs::Hist::kServeRequestUs, 3);
  reg.observe(obs::Hist::kServeRequestUs, 100);
  const std::string text =
      serve::telemetry_prometheus(sample_report(), reg.snapshot());

  // Counter family with HELP/TYPE and the mechanical name mapping.
  EXPECT_NE(text.find("# TYPE udbscan_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("udbscan_serve_requests_total 7"), std::string::npos);
  // Gauges.
  EXPECT_NE(text.find("udbscan_uptime_seconds 2.5"), std::string::npos);
  EXPECT_NE(text.find("udbscan_inflight_requests 1"), std::string::npos);
  // Labeled windows: all three spans present for qps and percentiles.
  for (const char* label : {"{window=\"1s\"}", "{window=\"10s\"}",
                            "{window=\"60s\"}"}) {
    EXPECT_NE(text.find(std::string("udbscan_window_qps") + label),
              std::string::npos)
        << label;
    EXPECT_NE(text.find(std::string("udbscan_window_latency_p99_us") + label),
              std::string::npos)
        << label;
  }
  // Histogram: cumulative buckets ending in +Inf == count, plus sum/count.
  EXPECT_NE(text.find("# TYPE udbscan_serve_request_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("udbscan_serve_request_us_bucket{le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("udbscan_serve_request_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("udbscan_serve_request_us_count 3"), std::string::npos);
  EXPECT_NE(text.find("udbscan_serve_request_us_sum 103"), std::string::npos);
}

TEST(StatsDocumentTest, ServerShapeGoldenKeys) {
  serve::StatsDocInputs in;
  in.tool = "udbscan_serve";
  in.has_model = true;
  in.model.n = 600;
  in.model.dim = 2;
  in.model.eps = 1.2;
  in.model.min_pts = 5;
  in.model.num_clusters = 4;
  in.has_serve_ledger = true;
  in.has_telemetry = true;
  in.telemetry = sample_report();
  const json::Value doc = parse_ok(serve::stats_document_json(in));
  // Golden key set for schema_version 2. Removing or renaming any of these
  // is a breaking change: bump kStatsSchemaVersion and update this list.
  for (const char* key : {"schema_version", "tool", "protocol_version",
                          "model", "serve_ledger", "telemetry", "metrics"})
    EXPECT_NE(doc.find(key), nullptr) << key;
  EXPECT_EQ(doc.find("schema_version")->number, 2.0);
  EXPECT_EQ(doc.find_path("model.n")->number, 600.0);
  EXPECT_NE(doc.find_path("telemetry.windows"), nullptr);
  EXPECT_NE(doc.find_path("metrics.counters"), nullptr);
}

TEST(StatsDocumentTest, ClientShapeOmitsModelAndLedger) {
  serve::StatsDocInputs in;
  in.tool = "udbscan_client";
  in.has_telemetry = true;
  in.telemetry = sample_report();
  const json::Value doc = parse_ok(serve::stats_document_json(in));
  EXPECT_EQ(doc.find("tool")->string, "udbscan_client");
  EXPECT_EQ(doc.find("model"), nullptr);
  EXPECT_EQ(doc.find("serve_ledger"), nullptr);
  EXPECT_NE(doc.find("telemetry"), nullptr);
}

// ---------------------------------------------------------------------------
// The kTelemetry RPC over real sockets
// ---------------------------------------------------------------------------

class TelemetryRpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = fitted_model(600, 5);
    server_ = std::make_unique<serve::QueryServer>(model_, serve::ServerConfig{});
    ASSERT_TRUE(server_->start().ok());
  }

  serve::Client client() {
    auto c = serve::Client::connect(server_->port());
    EXPECT_TRUE(c.ok()) << c.status().to_string();
    return std::move(*c);
  }

  std::shared_ptr<const serve::ClusterModel> model_;
  std::unique_ptr<serve::QueryServer> server_;
};

TEST_F(TelemetryRpcTest, BinaryReportReflectsTraffic) {
  auto c = client();
  const std::vector<double> q = {1.0, 2.0};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(c.classify(q, 2).ok());

  auto tel = c.telemetry();
  ASSERT_TRUE(tel.ok()) << tel.status().to_string();
  // Totals come from the same registry the server reports everywhere else.
  const auto snap = server_->metrics().snapshot();
  EXPECT_EQ(tel->requests_total,
            snap.counter(obs::Counter::kServeRequests));
  EXPECT_GE(tel->requests_total, 5u);
  EXPECT_EQ(tel->classify_points, 5u);
  EXPECT_EQ(tel->classify_performed + tel->classify_avoided_exact,
            tel->classify_points);
  // Window spans are fixed {1, 10, 60} and the traffic just happened, so
  // every window saw it (wire-path only: the telemetry request itself may
  // add one more by the time the report is built).
  EXPECT_EQ(tel->windows[0].window_seconds, 1.0);
  EXPECT_EQ(tel->windows[1].window_seconds, 10.0);
  EXPECT_EQ(tel->windows[2].window_seconds, 60.0);
  EXPECT_GE(tel->windows[1].requests, 5u);
  EXPECT_GT(tel->windows[1].qps, 0.0);
  // Percentile ordering on the live distribution.
  EXPECT_LE(tel->windows[1].p50_us, tel->windows[1].p99_us);
  EXPECT_LE(tel->windows[1].p99_us, tel->windows[1].p999_us);
  EXPECT_LE(tel->windows[1].p999_us, tel->windows[1].max_us + 1e-9);
}

TEST_F(TelemetryRpcTest, JsonAndPrometheusTextFormats) {
  auto c = client();
  const std::vector<double> q = {1.0, 2.0};
  ASSERT_TRUE(c.classify(q, 2).ok());

  auto jtext = c.telemetry_text(serve::TelemetryFormat::kJson);
  ASSERT_TRUE(jtext.ok()) << jtext.status().to_string();
  const json::Value doc = parse_ok(*jtext);
  EXPECT_EQ(doc.find("kind")->string, "telemetry");
  EXPECT_TRUE(doc.find_path("serve_ledger.holds")->boolean);
  EXPECT_GE(doc.find_path("totals.requests")->number, 1.0);

  auto ptext = c.telemetry_text(serve::TelemetryFormat::kPrometheus);
  ASSERT_TRUE(ptext.ok()) << ptext.status().to_string();
  EXPECT_NE(ptext->find("udbscan_serve_requests_total"), std::string::npos);
  EXPECT_NE(ptext->find("udbscan_window_qps{window=\"1s\"}"),
            std::string::npos);
}

TEST_F(TelemetryRpcTest, UnknownFormatByteIsInvalidArgumentNotCorruption) {
  auto c = client();
  // A well-framed telemetry request with format byte 9: the frame and type
  // are fine, the argument is not — the caller gets INVALID_ARGUMENT and the
  // connection survives.
  const std::vector<std::uint8_t> body = {7, 9};
  auto resp = c.raw_roundtrip(serve::frame_v2(1, body));
  ASSERT_TRUE(resp.ok()) << resp.status().to_string();
  EXPECT_EQ(resp->code, StatusCode::kInvalidArgument);
  EXPECT_TRUE(c.ping().ok());
}

TEST_F(TelemetryRpcTest, ServerStatsDocumentIsSchema2WithTelemetry) {
  auto c = client();
  auto stats = c.stats_json();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  const json::Value doc = parse_ok(*stats);
  EXPECT_EQ(doc.find("schema_version")->number, 2.0);
  EXPECT_EQ(doc.find("tool")->string, "udbscan_serve");
  EXPECT_NE(doc.find_path("telemetry.windows"), nullptr);
  EXPECT_NE(doc.find_path("serve_ledger.holds"), nullptr);
}

TEST_F(TelemetryRpcTest, RetryingClientTelemetryAndClientDocument) {
  serve::RetryPolicy policy;
  policy.jitter_seed = 3;
  obs::MetricsRegistry metrics;
  serve::RetryingClient rc({server_->port()}, policy, &metrics);
  const std::vector<double> q = {1.0, 2.0};
  ASSERT_TRUE(rc.classify(q, 2).ok());
  ASSERT_TRUE(rc.ping().ok());

  auto tel = rc.telemetry();
  ASSERT_TRUE(tel.ok()) << tel.status().to_string();
  EXPECT_GE(tel->requests_total, 2u);

  const json::Value doc = parse_ok(rc.client_stats_json());
  EXPECT_EQ(doc.find("schema_version")->number, 2.0);
  EXPECT_EQ(doc.find("tool")->string, "udbscan_client");
  // 3 logical requests issued (classify, ping, telemetry), no failures.
  EXPECT_EQ(doc.find_path("telemetry.totals.requests")->number, 3.0);
  EXPECT_EQ(doc.find_path("telemetry.totals.errors")->number, 0.0);
  const json::Value* windows = doc.find_path("telemetry.windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->array.size(), serve::kTelemetryWindows);
  // The client's own rolling window saw the three requests.
  EXPECT_GE(windows->array[2].find("requests")->number, 3.0);
}

}  // namespace
}  // namespace udb
