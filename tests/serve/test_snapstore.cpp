// SnapshotStore + recover_stream (serve/snapstore.*): generation numbering,
// manifest fallback, retention, and — the reason the store exists — the
// guarantee that a *failed* save (injected ENOSPC, fsync failure) surfaces
// the right Status and never damages the previously published generation,
// so a server keeps serving the old model. The recovery half is pinned
// against its alignment cases: WAL records the snapshot already covers are
// skipped, a gap ends the replay, and the result always matches
// fit-from-scratch exactly.

#include "serve/snapstore.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/vfs.hpp"
#include "core/streaming.hpp"
#include "core/wal.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"
#include "serve/model.hpp"

namespace udb {
namespace {

using serve::ModelSnapshot;
using serve::SnapshotStore;
using serve::SnapshotStoreConfig;

class SnapstoreTest : public ::testing::Test {
 protected:
  // Wiped on first use: stores and WALs persist across ctest runs, and a
  // leftover log would break the append-contiguity assertions.
  std::string dir(const char* name) {
    const std::string d = ::testing::TempDir() + "udb_store_" + name;
    if (wiped_.insert(d).second) std::filesystem::remove_all(d);
    return d;
  }

  std::set<std::string> wiped_;

  void TearDown() override {
    vfs::install_io_fault_plan(nullptr);
    vfs::reset_io_fault_state();
  }

  // A small fitted model; `n` varies content across generations.
  ModelSnapshot make_snapshot(std::size_t n) {
    ModelSnapshot snap;
    snap.data = gen_blobs(n, 2, 3, 15.0, 1.0, 0.1, 77);
    snap.params = {1.0, 5};
    snap.result = mu_dbscan(snap.data, snap.params);
    return snap;
  }

  vfs::IoFaultPlan plan_;
};

TEST_F(SnapstoreTest, SaveLoadRoundtrip) {
  auto store = SnapshotStore::open(dir("roundtrip"));
  ASSERT_TRUE(store.ok()) << store.status().to_string();
  const auto snap = make_snapshot(200);
  auto gen = store->save(snap);
  ASSERT_TRUE(gen.ok()) << gen.status().to_string();
  EXPECT_EQ(*gen, 1u);

  std::uint64_t served = 0;
  auto loaded = store->load_latest(&served);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(served, 1u);
  EXPECT_EQ(loaded->data.raw(), snap.data.raw());
  EXPECT_EQ(loaded->result.label, snap.result.label);
  EXPECT_EQ(loaded->result.is_core, snap.result.is_core);
}

TEST_F(SnapstoreTest, EmptyStoreIsNotFound) {
  auto store = SnapshotStore::open(dir("empty"));
  ASSERT_TRUE(store.ok());
  auto loaded = store->load_latest();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapstoreTest, RetentionKeepsTheNewestGenerations) {
  SnapshotStoreConfig cfg;
  cfg.keep = 2;
  auto store = SnapshotStore::open(dir("retention"), cfg);
  ASSERT_TRUE(store.ok());
  for (std::size_t n : {100u, 150u, 200u, 250u})
    ASSERT_TRUE(store->save(make_snapshot(n)).ok());
  auto gens = store->generations();
  ASSERT_TRUE(gens.ok());
  EXPECT_EQ(*gens, (std::vector<std::uint64_t>{3, 4}));
  std::uint64_t served = 0;
  auto loaded = store->load_latest(&served);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(served, 4u);
  EXPECT_EQ(loaded->data.size(), 250u);
}

TEST_F(SnapstoreTest, FailedSaveEnospcKeepsPreviousGeneration) {
  auto store = SnapshotStore::open(dir("enospc"));
  ASSERT_TRUE(store.ok());
  const auto old_snap = make_snapshot(120);
  ASSERT_TRUE(store->save(old_snap).ok());

  plan_.enospc_rate = 1.0;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan_);
  auto gen = store->save(make_snapshot(400));
  vfs::install_io_fault_plan(nullptr);
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kResourceExhausted);

  // A server that hits this keeps serving what it was serving: the published
  // generation is intact and still the one the manifest names.
  std::uint64_t served = 0;
  auto loaded = store->load_latest(&served);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(served, 1u);
  EXPECT_EQ(loaded->data.raw(), old_snap.data.raw());
  EXPECT_EQ(loaded->result.label, old_snap.result.label);
  // And the serving index still builds off the old model.
  auto model = serve::ClusterModel::build(*loaded);
  ASSERT_TRUE(model.ok()) << model.status().to_string();
  EXPECT_EQ((*model)->size(), old_snap.data.size());
}

TEST_F(SnapstoreTest, FailedSaveFsyncFailureKeepsPreviousGeneration) {
  auto store = SnapshotStore::open(dir("fsyncfail"));
  ASSERT_TRUE(store.ok());
  const auto old_snap = make_snapshot(120);
  ASSERT_TRUE(store->save(old_snap).ok());

  plan_.fsync_fail_rate = 1.0;
  vfs::reset_io_fault_state();
  vfs::install_io_fault_plan(&plan_);
  auto gen = store->save(make_snapshot(400));
  vfs::install_io_fault_plan(nullptr);
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kDataLoss);

  std::uint64_t served = 0;
  auto loaded = store->load_latest(&served);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(served, 1u);
  EXPECT_EQ(loaded->data.raw(), old_snap.data.raw());
}

TEST_F(SnapstoreTest, CorruptManifestFallsBackToNewestIntactGeneration) {
  auto store = SnapshotStore::open(dir("manifest"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->save(make_snapshot(100)).ok());
  ASSERT_TRUE(store->save(make_snapshot(160)).ok());

  const std::string manifest = store->dir() + "/MANIFEST";
  auto bytes = vfs::read_file(manifest);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[10] ^= 0xFF;
  ASSERT_TRUE(vfs::write_file(manifest, bytes->data(), bytes->size()).ok());

  std::uint64_t served = 0;
  auto loaded = store->load_latest(&served);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(served, 2u);
  EXPECT_EQ(loaded->data.size(), 160u);
}

TEST_F(SnapstoreTest, CorruptNewestGenerationFallsBackToOlder) {
  auto store = SnapshotStore::open(dir("genrot"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->save(make_snapshot(100)).ok());
  ASSERT_TRUE(store->save(make_snapshot(160)).ok());

  const std::string victim = store->generation_path(2);
  auto bytes = vfs::read_file(victim);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0x01;
  ASSERT_TRUE(vfs::write_file(victim, bytes->data(), bytes->size()).ok());

  std::uint64_t served = 0;
  auto loaded = store->load_latest(&served);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(served, 1u);
  EXPECT_EQ(loaded->data.size(), 100u);
}

TEST_F(SnapstoreTest, OrphanGenerationIsNeverOverwritten) {
  // A gen file that landed whose manifest publish failed must not be reused:
  // numbering always moves past everything on disk.
  auto store = SnapshotStore::open(dir("orphan"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->save(make_snapshot(100)).ok());
  auto bytes = vfs::read_file(store->generation_path(1));
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(vfs::write_file_atomic(store->generation_path(5), bytes->data(),
                                     bytes->size())
                  .ok());
  auto gen = store->save(make_snapshot(140));
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(*gen, 6u);
}

// ---- recover_stream -------------------------------------------------------

class RecoverTest : public SnapstoreTest {
 protected:
  static constexpr std::size_t kDim = 2;
  const DbscanParams params_{1.0, 5};

  Dataset script_ = gen_blobs(240, kDim, 3, 15.0, 1.0, 0.1, 31);

  Dataset slice(std::size_t lo, std::size_t hi) {
    std::vector<double> c(script_.raw().begin() + lo * kDim,
                          script_.raw().begin() + hi * kDim);
    return Dataset(kDim, std::move(c));
  }

  std::span<const double> coords(std::size_t lo, std::size_t hi) {
    return std::span<const double>(script_.raw().data() + lo * kDim,
                                   (hi - lo) * kDim);
  }

  void publish(SnapshotStore& store, std::size_t upto) {
    StreamingMuDbscan stream(kDim, params_);
    stream.insert_batch(slice(0, upto));
    ModelSnapshot snap;
    snap.result = stream.result();
    snap.data = stream.dataset();
    snap.params = params_;
    ASSERT_TRUE(store.save(snap).ok());
  }

  void expect_exact_prefix(const serve::RecoveredStream& rec,
                           std::size_t expect_points) {
    ASSERT_EQ(rec.stream->size(), expect_points);
    if (expect_points == 0) return;
    EXPECT_EQ(rec.stream->dataset().raw(),
              slice(0, expect_points).raw());
    const ClusteringResult fresh =
        mu_dbscan(slice(0, expect_points), params_);
    EXPECT_EQ(rec.stream->result().label, fresh.label);
    EXPECT_EQ(rec.stream->result().is_core, fresh.is_core);
  }
};

TEST_F(RecoverTest, NothingOnDiskRecoversAnEmptyStream) {
  auto store = SnapshotStore::open(dir("rec_empty"));
  ASSERT_TRUE(store.ok());
  auto rec = serve::recover_stream(*store, dir("rec_empty") + "/wal", kDim,
                                   params_);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec->stream->size(), 0u);
  EXPECT_EQ(rec->generation, 0u);
}

TEST_F(RecoverTest, SnapshotPlusWalRebuildsTheExactModel) {
  const std::string d = dir("rec_both");
  auto store = SnapshotStore::open(d + "/store");
  ASSERT_TRUE(store.ok());
  publish(*store, 150);
  {
    auto wal = WalWriter::open(d + "/wal", kDim);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->append(150, coords(150, 200)).ok());
    ASSERT_TRUE(wal->append(200, coords(200, 240)).ok());
    ASSERT_TRUE(wal->close().ok());
  }
  auto rec = serve::recover_stream(*store, d + "/wal", kDim, params_);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec->snapshot_points, 150u);
  EXPECT_EQ(rec->wal_records, 2u);
  EXPECT_EQ(rec->wal_points, 90u);
  expect_exact_prefix(*rec, 240);
}

TEST_F(RecoverTest, RecordsCoveredByTheSnapshotAreNotReplayedTwice) {
  // The publish/reset crash window: the generation landed, the WAL reset did
  // not. Every WAL record is already inside the snapshot — replay must skip
  // them all, including the half of a straddling record.
  const std::string d = dir("rec_covered");
  auto store = SnapshotStore::open(d + "/store");
  ASSERT_TRUE(store.ok());
  {
    auto wal = WalWriter::open(d + "/wal", kDim);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->append(100, coords(100, 150)).ok());
    ASSERT_TRUE(wal->append(150, coords(150, 180)).ok());
    ASSERT_TRUE(wal->close().ok());
  }
  publish(*store, 160);  // covers record 1 fully, record 2 partially

  auto rec = serve::recover_stream(*store, d + "/wal", kDim, params_);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec->snapshot_points, 160u);
  EXPECT_EQ(rec->wal_points, 20u);  // only the uncovered half of record 2
  expect_exact_prefix(*rec, 180);
}

TEST_F(RecoverTest, GapAfterGenerationFallbackEndsTheReplay) {
  // Newest generation corrupt -> fallback serves an older one; the WAL then
  // starts *after* the fallback's coverage. Ingesting across the hole would
  // break exactness, so the replay must stop at the gap.
  const std::string d = dir("rec_gap");
  auto store = SnapshotStore::open(d + "/store");
  ASSERT_TRUE(store.ok());
  publish(*store, 100);
  {
    auto wal = WalWriter::open(d + "/wal", kDim);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->append(180, coords(180, 220)).ok());
    ASSERT_TRUE(wal->close().ok());
  }
  auto rec = serve::recover_stream(*store, d + "/wal", kDim, params_);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_EQ(rec->wal_points, 0u);
  expect_exact_prefix(*rec, 100);
}

TEST_F(RecoverTest, TornWalTailIsDroppedNotIngested) {
  const std::string d = dir("rec_torn");
  auto store = SnapshotStore::open(d + "/store");
  ASSERT_TRUE(store.ok());
  {
    auto wal = WalWriter::open(d + "/wal", kDim);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->append(0, coords(0, 60)).ok());
    ASSERT_TRUE(wal->close().ok());
  }
  {
    auto f = vfs::File::open_append(d + "/wal");
    ASSERT_TRUE(f.ok());
    const char junk[] = {0x7F, 0x00, 0x11, 0x22, 0x33};
    ASSERT_TRUE(f->write(junk, sizeof junk).ok());
    ASSERT_TRUE(f->close().ok());
  }
  auto rec = serve::recover_stream(*store, d + "/wal", kDim, params_);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_GT(rec->wal_torn_bytes, 0u);
  expect_exact_prefix(*rec, 60);
}

TEST_F(RecoverTest, EpochMatchedLogReplaysInsertsAndTombstonesInOrder) {
  // The online-delete restart path: publish a generation, stamp the WAL with
  // it, log more ingest plus tombstones, crash. Recovery must replay the log
  // in record order and land on the exact pre-crash survivor set.
  const std::string d = dir("rec_tomb");
  auto store = SnapshotStore::open(d + "/store");
  ASSERT_TRUE(store.ok());
  publish(*store, 150);  // generation 1
  {
    auto wal = WalWriter::open(d + "/wal", kDim);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->reset(1).ok());
    ASSERT_TRUE(wal->append(150, coords(150, 200)).ok());
    ASSERT_TRUE(wal->append_delete(coords(10, 11)).ok());   // snapshot point
    ASSERT_TRUE(wal->append_delete(coords(170, 171)).ok()); // WAL point
    ASSERT_TRUE(wal->close().ok());
  }
  auto rec = serve::recover_stream(*store, d + "/wal", kDim, params_);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_FALSE(rec->wal_epoch_mismatch);
  EXPECT_EQ(rec->wal_records, 3u);
  EXPECT_EQ(rec->wal_points, 50u);
  EXPECT_EQ(rec->wal_deletes, 2u);
  ASSERT_EQ(rec->stream->size(), 198u);

  std::vector<double> surv;
  for (std::size_t i = 0; i < 200; ++i) {
    if (i == 10 || i == 170) continue;
    surv.insert(surv.end(), script_.raw().begin() + i * kDim,
                script_.raw().begin() + (i + 1) * kDim);
  }
  Dataset survivors(kDim, std::move(surv));
  EXPECT_EQ(rec->stream->dataset().raw(), survivors.raw());
  const ClusteringResult fresh = canonicalize_clustering(
      survivors, params_, mu_dbscan(survivors, params_));
  EXPECT_EQ(rec->stream->result().label, fresh.label);
  EXPECT_EQ(rec->stream->result().is_core, fresh.is_core);
}

TEST_F(RecoverTest, EpochMismatchSkipsTombstoneLogWholesale) {
  // The log extends generation 1; a second publish landed but its reset never
  // ran (or the manifest fell back). Tombstones cannot be realigned against a
  // different state, so the whole log is dropped and the snapshot serves
  // as-is.
  const std::string d = dir("rec_epoch_skip");
  auto store = SnapshotStore::open(d + "/store");
  ASSERT_TRUE(store.ok());
  publish(*store, 100);  // generation 1
  {
    auto wal = WalWriter::open(d + "/wal", kDim);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->reset(1).ok());
    ASSERT_TRUE(wal->append(100, coords(100, 140)).ok());
    ASSERT_TRUE(wal->append_delete(coords(5, 6)).ok());
    ASSERT_TRUE(wal->close().ok());
  }
  publish(*store, 160);  // generation 2: covers the log's ingest, crash
                         // before reset(2)
  auto rec = serve::recover_stream(*store, d + "/wal", kDim, params_);
  ASSERT_TRUE(rec.ok()) << rec.status().to_string();
  EXPECT_TRUE(rec->wal_epoch_mismatch);
  EXPECT_EQ(rec->wal_records, 0u);
  EXPECT_EQ(rec->wal_deletes, 0u);
  // Served state is exactly generation 2 — no double-ingest, no misapplied
  // tombstone. (The delete logged against gen 1 is lost; the recovery
  // contract is an exact op-boundary prefix, and gen 2 is one.)
  expect_exact_prefix(*rec, 160);
}

TEST_F(RecoverTest, ParameterMismatchIsRejected) {
  const std::string d = dir("rec_params");
  auto store = SnapshotStore::open(d + "/store");
  ASSERT_TRUE(store.ok());
  publish(*store, 100);
  const DbscanParams other{2.5, 9};
  auto rec = serve::recover_stream(*store, d + "/wal", kDim, other);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace udb
