// ClusterModel exactness (serve/model.*): every serving answer is checked
// against brute force over the raw dataset — self-classification must
// reproduce the batch clustering verbatim, novel points must follow the
// documented border-candidate rule, and neighbors() must return the exact
// strict-radius set (this also exercises the µR-tree coordinate-query
// overloads against a reference scan). Plus the refresh seam, the streaming
// producer, and the classify ledger invariant.

#include "serve/model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "core/mudbscan.hpp"
#include "core/streaming.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"
#include "obs/metrics.hpp"
#include "serve/classify_csv.hpp"
#include "serve/snapshot.hpp"

namespace udb {
namespace {

constexpr double kEps = 1.2;
constexpr std::uint32_t kMinPts = 5;

serve::ModelSnapshot fitted_snapshot(std::size_t n, std::uint64_t seed) {
  serve::ModelSnapshot snap;
  snap.data = gen_blobs(n, 2, 6, 30.0, 1.0, 0.1, seed);
  snap.params = {kEps, kMinPts};
  snap.result = mu_dbscan(snap.data, snap.params);
  return snap;
}

double dist2(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    s += d * d;
  }
  return s;
}

// Reference implementation of the documented classify semantics, by linear
// scan: distance-0 twin -> stored answer; else nearest core strictly within
// eps -> Border in its cluster; else Noise.
serve::Classify brute_classify(const Dataset& ds, const ClusteringResult& res,
                               const DbscanParams& p,
                               std::span<const double> q) {
  const double eps2 = p.eps * p.eps;
  std::uint32_t count = 0;
  PointId zero = kInvalidPoint, best_core = kInvalidPoint;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto id = static_cast<PointId>(i);
    const double d2 = dist2(ds.point(id), q);
    if (d2 >= eps2) continue;
    ++count;
    if (d2 == 0.0 && id < zero) zero = id;
    if (res.is_core[id] != 0 &&
        (d2 < best_d2 || (d2 == best_d2 && id < best_core))) {
      best_d2 = d2;
      best_core = id;
    }
  }
  if (zero != kInvalidPoint)
    return {res.label[zero], res.kind(zero), true, res.is_core[zero] != 0,
            count};
  serve::Classify out;
  out.neighbors = count;
  out.would_be_core = count + 1 >= p.min_pts;
  if (best_core != kInvalidPoint) {
    out.label = res.label[best_core];
    out.kind = PointKind::Border;
  }
  return out;
}

class ClusterModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    snap_ = fitted_snapshot(800, 7);
    auto m = serve::ClusterModel::build(snap_);
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    model_ = *m;
  }

  serve::ModelSnapshot snap_;  // kept as the brute-force reference
  std::shared_ptr<const serve::ClusterModel> model_;
};

TEST_F(ClusterModelTest, SelfClassificationReproducesBatchClustering) {
  obs::MetricsRegistry ms;
  for (std::size_t i = 0; i < snap_.data.size(); ++i) {
    const auto id = static_cast<PointId>(i);
    auto c = model_->classify(snap_.data.point(id), &ms);
    ASSERT_TRUE(c.ok()) << c.status().to_string();
    EXPECT_TRUE(c->exact_match) << "point " << i;
    EXPECT_EQ(c->label, snap_.result.label[id]) << "point " << i;
    EXPECT_EQ(c->kind, snap_.result.kind(id)) << "point " << i;
    EXPECT_EQ(c->would_be_core, snap_.result.is_core[id] != 0) << "point " << i;
  }
  // All dataset points ride the exact-match fast path: zero searches.
  const auto snap = ms.snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kServeClassifyPoints),
            snap_.data.size());
  EXPECT_EQ(snap.counter(obs::Counter::kServeClassifyAvoidedExact),
            snap_.data.size());
  EXPECT_EQ(snap.counter(obs::Counter::kServeClassifyPerformed), 0u);
}

TEST_F(ClusterModelTest, NovelPointsMatchBruteForce) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> box(-2.0, 32.0);
  std::normal_distribution<double> jitter(0.0, kEps);
  std::vector<std::vector<double>> queries;
  for (int i = 0; i < 200; ++i) queries.push_back({box(rng), box(rng)});
  for (int i = 0; i < 200; ++i) {
    const auto id = static_cast<PointId>(rng() % snap_.data.size());
    const auto p = snap_.data.point(id);
    queries.push_back({p[0] + jitter(rng), p[1] + jitter(rng)});
  }

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    const auto want = brute_classify(snap_.data, snap_.result, snap_.params, q);
    auto got = model_->classify(q);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    EXPECT_EQ(got->label, want.label) << "query " << qi;
    EXPECT_EQ(got->kind, want.kind) << "query " << qi;
    EXPECT_EQ(got->exact_match, want.exact_match) << "query " << qi;
    EXPECT_EQ(got->would_be_core, want.would_be_core) << "query " << qi;
    EXPECT_EQ(got->neighbors, want.neighbors) << "query " << qi;
  }
}

TEST_F(ClusterModelTest, NegativeZeroCoordinateIsStillAnExactMatch) {
  // -0.0 and +0.0 differ bitwise, so the hash fast path misses — the
  // distance-0 rule in the search path must still answer "exact".
  serve::ModelSnapshot snap;
  std::vector<double> coords;
  for (int i = 0; i < 8; ++i) {
    coords.push_back(0.0);
    coords.push_back(0.1 * i);
  }
  snap.data = Dataset(2, std::move(coords));
  snap.params = {1.0, 3};
  snap.result = mu_dbscan(snap.data, snap.params);
  auto m = serve::ClusterModel::build(std::move(snap));
  ASSERT_TRUE(m.ok());

  const double q[2] = {-0.0, 0.1};
  auto c = (*m)->classify(q);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->exact_match);
  EXPECT_EQ(c->label, (*m)->result().label[1]);
}

TEST_F(ClusterModelTest, BatchMatchesSinglePointAndLedgerHolds) {
  // Half verbatim dataset points (avoided), half jittered (performed).
  std::mt19937_64 rng(3);
  std::normal_distribution<double> jitter(0.0, 0.5 * kEps);
  std::vector<double> coords;
  const std::size_t count = 400;
  for (std::size_t i = 0; i < count; ++i) {
    const auto p = snap_.data.point(static_cast<PointId>(i));
    if (i % 2 == 0) {
      coords.insert(coords.end(), p.begin(), p.end());
    } else {
      coords.push_back(p[0] + jitter(rng));
      coords.push_back(p[1] + jitter(rng));
    }
  }

  obs::MetricsRegistry ms;
  ThreadPool pool(4);
  auto batch = model_->classify_batch(coords, count, &ms, &pool);
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();
  ASSERT_EQ(batch->size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    auto single =
        model_->classify({coords.data() + i * 2, 2});
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i].label, single->label) << i;
    EXPECT_EQ((*batch)[i].kind, single->kind) << i;
    EXPECT_EQ((*batch)[i].exact_match, single->exact_match) << i;
    EXPECT_EQ((*batch)[i].neighbors, single->neighbors) << i;
  }

  const auto snap = ms.snapshot();
  const auto points = snap.counter(obs::Counter::kServeClassifyPoints);
  EXPECT_EQ(points, count);
  EXPECT_EQ(snap.counter(obs::Counter::kServeClassifyPerformed) +
                snap.counter(obs::Counter::kServeClassifyAvoidedExact),
            points);
  // Bitwise-identical halves must ride the fast path.
  EXPECT_GE(snap.counter(obs::Counter::kServeClassifyAvoidedExact), count / 2);
}

TEST_F(ClusterModelTest, BatchDeadlineTripsCleanly) {
  std::vector<double> coords(2 * 2000, 1.0);
  RunGuard guard(RunLimits{1e-9, 0});
  auto r = model_->classify_batch(coords, 2000, nullptr, nullptr, &guard);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ClusterModelTest, NeighborsMatchesBruteForceAtArbitraryRadii) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> box(-2.0, 32.0);
  for (double radius : {0.4, kEps, 2.7}) {
    const double r2 = radius * radius;
    for (int t = 0; t < 60; ++t) {
      const std::vector<double> q = {box(rng), box(rng)};
      std::vector<std::pair<PointId, double>> want;
      for (std::size_t i = 0; i < snap_.data.size(); ++i) {
        const auto id = static_cast<PointId>(i);
        const double d2 = dist2(snap_.data.point(id), q);
        if (d2 < r2) want.emplace_back(id, d2);
      }
      std::sort(want.begin(), want.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second < b.second : a.first < b.first;
      });
      auto got = model_->neighbors(q, radius);
      ASSERT_TRUE(got.ok()) << got.status().to_string();
      EXPECT_EQ(*got, want) << "radius " << radius << " query " << t;
    }
  }
}

TEST_F(ClusterModelTest, InvalidQueriesAreRejectedCleanly) {
  const double q3[3] = {1.0, 2.0, 3.0};
  EXPECT_EQ(model_->classify(q3).status().code(),
            StatusCode::kInvalidArgument);
  const double q2[2] = {1.0, 2.0};
  EXPECT_EQ(model_->neighbors(q2, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model_->neighbors(q2, std::numeric_limits<double>::infinity())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model_->neighbors(q3, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      model_->classify_batch(std::span<const double>(q3, 3), 2).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(ClusterModelTest, PointInfoMirrorsResultAndRejectsOutOfRange) {
  obs::MetricsRegistry ms;
  for (std::size_t i = 0; i < snap_.data.size(); i += 97) {
    auto info = model_->point_info(i, &ms);
    ASSERT_TRUE(info.ok());
    const auto id = static_cast<PointId>(i);
    EXPECT_EQ(info->label, snap_.result.label[id]);
    EXPECT_EQ(info->kind, snap_.result.kind(id));
    EXPECT_EQ(info->is_core, snap_.result.is_core[id] != 0);
  }
  auto bad = model_->point_info(snap_.data.size());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST_F(ClusterModelTest, SaveModelRoundtripsThroughDisk) {
  const std::string p = ::testing::TempDir() + "udb_model_roundtrip.udbm";
  ASSERT_TRUE(serve::save_model(*model_, p).ok());
  auto loaded = serve::load_model(p);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->result.label, snap_.result.label);
  EXPECT_EQ(loaded->result.is_core, snap_.result.is_core);
  EXPECT_EQ(loaded->data.raw(), snap_.data.raw());
}

TEST(ServedModelTest, RefreshSwapsAtomicallyUnderConcurrentReaders) {
  auto m1 = serve::ClusterModel::build(fitted_snapshot(400, 1));
  auto m2 = serve::ClusterModel::build(fitted_snapshot(500, 2));
  ASSERT_TRUE(m1.ok() && m2.ok());

  serve::ServedModel served(*m1);
  EXPECT_EQ(served.get()->size(), 400u);

  // Readers hammer get()+classify while the writer flips between the two
  // models; every observed model must be internally consistent (a classify
  // on the loaded snapshot always succeeds on that snapshot's own points).
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto m = served.get();
        auto c = m->classify(m->dataset().point(0));
        if (!c.ok() || !c->exact_match) failed.store(true);
      }
    });
  }
  obs::MetricsRegistry ms;
  for (int i = 0; i < 200; ++i) served.refresh(i % 2 == 0 ? *m2 : *m1, &ms);
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ms.snapshot().counter(obs::Counter::kServeModelRefreshes), 200u);
}

TEST(ModelFromStreamTest, ClassifyAgreesWithOfflineModelAfterDeletes) {
  // The end-to-end online-update story: ingest, interleave erases and fresh
  // inserts through the incremental engine, serve — and every classify
  // answer (rendered through the shared CSV formatter, so label, kind,
  // would_be_core, and neighbor count all participate) must be
  // byte-identical to a model fit offline on the surviving points.
  const Dataset all = gen_blobs(700, 2, 4, 20.0, 1.0, 0.1, 33);
  StreamingMuDbscan stream(2, DbscanParams{kEps, kMinPts});
  stream.insert_batch(all);
  for (PointId id = 0; id < 700; id += 7) ASSERT_TRUE(stream.erase(id));
  const Dataset extra = gen_blobs(60, 2, 2, 20.0, 1.0, 0.1, 34);
  for (std::size_t i = 0; i < extra.size(); ++i)
    stream.insert(extra.point(static_cast<PointId>(i)));

  auto online = serve::model_from_stream(stream);
  ASSERT_TRUE(online.ok()) << online.status().to_string();

  serve::ModelSnapshot snap;
  snap.data = stream.dataset();
  snap.params = stream.params();
  snap.result = canonicalize_clustering(snap.data, snap.params,
                                        mu_dbscan(snap.data, snap.params));
  auto offline = serve::ClusterModel::build(std::move(snap));
  ASSERT_TRUE(offline.ok()) << offline.status().to_string();
  ASSERT_EQ((*online)->size(), (*offline)->size());

  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> jitter(-0.3, 0.3);
  for (std::size_t i = 0; i < (*online)->size(); ++i) {
    const auto q = (*online)->dataset().point(static_cast<PointId>(i));
    auto a = (*online)->classify(q);
    auto b = (*offline)->classify(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(a->exact_match);
    ASSERT_EQ(serve::classify_csv_row(*a), serve::classify_csv_row(*b))
        << "survivor " << i;
    // A jittered novel query must agree too (border-candidate rule over the
    // same dataset), not just the stored labels.
    if (i % 17 == 0) {
      const std::vector<double> nq = {q[0] + jitter(rng), q[1] + jitter(rng)};
      auto an = (*online)->classify(nq);
      auto bn = (*offline)->classify(nq);
      ASSERT_TRUE(an.ok() && bn.ok());
      ASSERT_EQ(serve::classify_csv_row(*an), serve::classify_csv_row(*bn))
          << "novel query near survivor " << i;
    }
  }
}

TEST(ModelFromStreamTest, EmptyStreamRefusesToServe) {
  StreamingMuDbscan stream(2, DbscanParams{1.0, 5});
  auto m = serve::model_from_stream(stream);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelFromStreamTest, SnapshotsMatchBatchAfterEveryIngestRound) {
  // Three ingest rounds with a model snapshot after each: the streaming
  // producer must hand out exactly the batch clustering of everything
  // ingested so far, and the incrementally materialized dataset must be the
  // points in insertion order.
  const Dataset all = gen_blobs(900, 2, 5, 25.0, 1.0, 0.1, 21);
  StreamingMuDbscan stream(2, DbscanParams{kEps, kMinPts});

  std::size_t ingested = 0;
  for (std::size_t round = 0; round < 3; ++round) {
    const std::size_t until = all.size() * (round + 1) / 3;
    for (; ingested < until; ++ingested)
      stream.insert(all.point(static_cast<PointId>(ingested)));

    auto m = serve::model_from_stream(stream);
    ASSERT_TRUE(m.ok()) << m.status().to_string();
    EXPECT_EQ((*m)->size(), until);

    // Prefix dataset + batch reference over the same points.
    std::vector<double> prefix(all.raw().begin(),
                               all.raw().begin() + static_cast<long>(2 * until));
    const Dataset ref_ds(2, std::move(prefix));
    EXPECT_EQ((*m)->dataset().raw(), ref_ds.raw()) << "round " << round;
    const ClusteringResult ref = mu_dbscan(ref_ds, DbscanParams{kEps, kMinPts});
    EXPECT_EQ((*m)->result().label, ref.label) << "round " << round;
    EXPECT_EQ((*m)->result().is_core, ref.is_core) << "round " << round;
  }
}

}  // namespace
}  // namespace udb
