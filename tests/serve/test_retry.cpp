// RetryingClient + overload protection end to end (serve/retry.* +
// server.*): retries under injected wire faults always land the exact
// answer, replica failover loses nothing when a server dies mid-batch,
// deterministic sheds (connection budget, memory budget) come back
// RESOURCE_EXHAUSTED, idle connections are reclaimed, and a legacy v1
// client is answered UNIMPLEMENTED in framing it can decode.

#include "serve/retry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "serve/netfault.hpp"
#include "serve/server.hpp"

namespace udb {
namespace {

std::shared_ptr<const serve::ClusterModel> fitted_model(std::size_t n,
                                                        std::uint64_t seed) {
  serve::ModelSnapshot snap;
  snap.data = gen_blobs(n, 2, 4, 20.0, 1.0, 0.1, seed);
  snap.params = {1.2, 5};
  snap.result = mu_dbscan(snap.data, snap.params);
  auto m = serve::ClusterModel::build(std::move(snap));
  EXPECT_TRUE(m.ok()) << m.status().to_string();
  return *m;
}

serve::RetryPolicy fast_policy() {
  serve::RetryPolicy p;
  p.max_attempts = 8;
  p.initial_backoff_seconds = 0.001;
  p.max_backoff_seconds = 0.02;
  p.timeout_seconds = 2.0;
  p.jitter_seed = 7;
  return p;
}

TEST(RetryStatusTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(serve::retryable_status(StatusCode::kUnavailable));
  EXPECT_TRUE(serve::retryable_status(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(serve::retryable_status(StatusCode::kDataLoss));
  EXPECT_TRUE(serve::retryable_status(StatusCode::kResourceExhausted));
  EXPECT_FALSE(serve::retryable_status(StatusCode::kInvalidArgument));
  EXPECT_FALSE(serve::retryable_status(StatusCode::kNotFound));
  EXPECT_FALSE(serve::retryable_status(StatusCode::kUnimplemented));
  EXPECT_FALSE(serve::retryable_status(StatusCode::kInternal));
  EXPECT_FALSE(serve::retryable_status(StatusCode::kOk));
}

TEST(RetryingClientTest, NoEndpointsFailsCleanly) {
  serve::RetryingClient client({}, fast_policy());
  auto st = client.ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(RetryingClientTest, UnreachableServerGivesUpWithUnavailable) {
  obs::MetricsRegistry metrics;
  serve::RetryPolicy p = fast_policy();
  p.max_attempts = 3;
  p.timeout_seconds = 0.2;
  // Port 1 on loopback: nothing listens there in any sane environment.
  serve::RetryingClient client({1}, p, &metrics);
  auto st = client.ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(metrics.snapshot().counter(obs::Counter::kServeClientGiveUps), 1u);
  EXPECT_EQ(metrics.snapshot().counter(obs::Counter::kServeClientRetries), 2u);
}

TEST(RetryingClientTest, RetriesInjectedDropsToTheExactAnswer) {
  auto model = fitted_model(400, 11);
  serve::QueryServer server(model, {});
  ASSERT_TRUE(server.start().ok());

  serve::NetFaultPlan plan;
  plan.seed = 2024;
  plan.write.drop_rate = 0.15;
  plan.read.drop_rate = 0.15;
  serve::reset_net_fault_state();
  serve::install_net_fault_plan(&plan);

  obs::MetricsRegistry metrics;
  serve::RetryingClient client({server.port()}, fast_policy(), &metrics);
  for (int i = 0; i < 30; ++i) {
    const auto id = static_cast<PointId>((i * 13) % 400);
    const auto p = model->dataset().point(id);
    auto r = client.classify(p, 2);
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().to_string();
    ASSERT_EQ(r->size(), 1u);
    EXPECT_TRUE((*r)[0].exact_match);
    EXPECT_EQ((*r)[0].label, model->result().label[id]);
  }
  serve::install_net_fault_plan(nullptr);
  // At 15% drop per op some attempt must have been severed and retried.
  EXPECT_GT(metrics.snapshot().counter(obs::Counter::kServeClientRetries), 0u);
  EXPECT_EQ(metrics.snapshot().counter(obs::Counter::kServeClientGiveUps), 0u);
  server.stop();
}

TEST(RetryingClientTest, FailoverOnKilledReplicaLosesNothing) {
  auto model = fitted_model(400, 5);
  serve::QueryServer a(model, {});
  serve::QueryServer b(model, {});
  ASSERT_TRUE(a.start().ok());
  ASSERT_TRUE(b.start().ok());

  obs::MetricsRegistry metrics;
  serve::RetryingClient client({a.port(), b.port()}, fast_policy(), &metrics);
  auto batch = [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const auto id = static_cast<PointId>(i % 400);
      const auto p = model->dataset().point(id);
      auto r = client.classify(p, 2);
      ASSERT_TRUE(r.ok()) << i << ": " << r.status().to_string();
      ASSERT_EQ(r->size(), 1u);
      EXPECT_EQ((*r)[0].label, model->result().label[id]) << i;
    }
  };
  batch(0, 10);                 // served by replica a
  a.stop();                     // dies mid-batch
  batch(10, 40);                // must fail over to b, losing nothing
  EXPECT_GE(metrics.snapshot().counter(obs::Counter::kServeClientFailovers),
            1u);
  EXPECT_EQ(metrics.snapshot().counter(obs::Counter::kServeClientGiveUps), 0u);
  EXPECT_EQ(client.endpoint_index(), 1u);
  b.stop();
}

TEST(QueryServerOverloadTest, ConnectionBudgetShedsWithResourceExhausted) {
  auto model = fitted_model(300, 3);
  serve::ServerConfig cfg;
  cfg.max_connections = 1;
  serve::QueryServer server(model, cfg);
  ASSERT_TRUE(server.start().ok());

  auto holder = serve::Client::connect(server.port(), 2.0);
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(holder->ping().ok());  // budget now provably full

  // The shed frame arrives unprompted right after accept; read it raw so the
  // close that follows can never race one of our writes.
  auto shed_conn = serve::connect_loopback(server.port(), 2.0);
  ASSERT_TRUE(shed_conn.ok());
  auto frame = serve::read_frame(*shed_conn);
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  serve::FrameV2 env;
  ASSERT_TRUE(
      serve::parse_frame_v2(std::span<const std::uint8_t>(*frame), env).ok());
  EXPECT_EQ(env.request_id, 0u);
  serve::Response resp;
  ASSERT_TRUE(serve::decode_response(env.payload, resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(server.metrics().snapshot().counter(
                obs::Counter::kServeShedConnections),
            1u);

  // The held connection still serves; a slot frees when it closes.
  EXPECT_TRUE(holder->ping().ok());
  server.stop();
}

TEST(QueryServerOverloadTest, MemoryBudgetShedsEveryFrameDeterministically) {
  auto model = fitted_model(300, 3);
  serve::ServerConfig cfg;
  cfg.memory_budget_bytes = 8;  // smaller than any framed request
  serve::QueryServer server(model, cfg);
  ASSERT_TRUE(server.start().ok());

  // Plain client: the shed must surface as a server-side RESOURCE_EXHAUSTED.
  auto c = serve::Client::connect(server.port(), 2.0);
  ASSERT_TRUE(c.ok());
  auto st = c->ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);

  // Retrying client: sheds are retried, then given up on cleanly.
  obs::MetricsRegistry metrics;
  serve::RetryPolicy p = fast_policy();
  p.max_attempts = 3;
  serve::RetryingClient rc({server.port()}, p, &metrics);
  auto st2 = rc.ping();
  ASSERT_FALSE(st2.ok());
  EXPECT_EQ(st2.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(metrics.snapshot().counter(obs::Counter::kServeClientRetries), 2u);
  EXPECT_EQ(metrics.snapshot().counter(obs::Counter::kServeClientGiveUps), 1u);
  EXPECT_GE(server.metrics().snapshot().counter(obs::Counter::kServeShedLoad),
            4u);
  server.stop();
}

TEST(QueryServerOverloadTest, IdleConnectionsAreDisconnectedAndCounted) {
  auto model = fitted_model(300, 3);
  serve::ServerConfig cfg;
  cfg.idle_timeout_seconds = 0.05;
  serve::QueryServer server(model, cfg);
  ASSERT_TRUE(server.start().ok());

  auto c = serve::Client::connect(server.port(), 2.0);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(c->ping().ok());  // the server hung up while we idled
  EXPECT_GE(server.metrics().snapshot().counter(
                obs::Counter::kServeIdleDisconnects),
            1u);
  // A fresh, active connection is unaffected.
  auto fresh = serve::Client::connect(server.port(), 2.0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->ping().ok());
  server.stop();
}

TEST(ProtocolUpgradeTest, LegacyV1ClientIsAnsweredUnimplementedInV1Framing) {
  auto model = fitted_model(300, 3);
  serve::QueryServer server(model, {});
  ASSERT_TRUE(server.start().ok());

  auto sock = serve::connect_loopback(server.port(), 2.0);
  ASSERT_TRUE(sock.ok());

  // A bare v1 request body (no v2 envelope) — what a pre-v2 Client sends.
  serve::Request ping;
  ping.type = serve::MsgType::kPing;
  ASSERT_TRUE(serve::write_frame(*sock, serve::encode_request(ping)).ok());
  auto frame = serve::read_frame(*sock);
  ASSERT_TRUE(frame.ok());
  // The answer must be decodable WITHOUT the v2 envelope.
  serve::Response resp;
  ASSERT_TRUE(
      serve::decode_response(std::span<const std::uint8_t>(*frame), resp)
          .ok());
  EXPECT_EQ(resp.code, StatusCode::kUnimplemented);
  EXPECT_EQ(
      server.metrics().snapshot().counter(obs::Counter::kServeLegacyClients),
      1u);

  // Same connection, upgraded framing: the server serves it normally.
  ASSERT_TRUE(
      serve::write_frame(*sock, serve::frame_v2(1, serve::encode_request(ping)))
          .ok());
  auto frame2 = serve::read_frame(*sock);
  ASSERT_TRUE(frame2.ok());
  serve::FrameV2 env;
  ASSERT_TRUE(
      serve::parse_frame_v2(std::span<const std::uint8_t>(*frame2), env).ok());
  EXPECT_EQ(env.request_id, 1u);
  serve::Response resp2;
  ASSERT_TRUE(serve::decode_response(env.payload, resp2).ok());
  EXPECT_EQ(resp2.code, StatusCode::kOk);
  server.stop();
}

}  // namespace
}  // namespace udb
