// Wire codec (serve/protocol.*): every message type must roundtrip
// encode -> decode bit-exactly, and every malformed body — unknown type,
// truncation, trailing bytes, absurd counts, non-finite floats — must come
// back as a clean Status (the quarantine contract the server's
// survive-garbage guarantee is built on).

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "serve/wire.hpp"

namespace udb {
namespace {

serve::Request decode_req_ok(const std::vector<std::uint8_t>& body) {
  serve::Request out;
  Status st = serve::decode_request(body, out);
  EXPECT_TRUE(st.ok()) << st.to_string();
  return out;
}

serve::Response decode_resp_ok(const std::vector<std::uint8_t>& body) {
  serve::Response out;
  Status st = serve::decode_response(body, out);
  EXPECT_TRUE(st.ok()) << st.to_string();
  return out;
}

TEST(ProtocolRequestTest, PingRoundtrips) {
  serve::Request req;
  req.type = serve::MsgType::kPing;
  const auto back = decode_req_ok(serve::encode_request(req));
  EXPECT_EQ(back.type, serve::MsgType::kPing);
}

TEST(ProtocolRequestTest, ClassifyRoundtrips) {
  serve::Request req;
  req.type = serve::MsgType::kClassify;
  req.dim = 3;
  req.coords = {1.0, 2.0, 3.0, -4.5, 0.0, 6.25};
  const auto back = decode_req_ok(serve::encode_request(req));
  EXPECT_EQ(back.type, serve::MsgType::kClassify);
  EXPECT_EQ(back.dim, 3u);
  EXPECT_EQ(back.coords, req.coords);
}

TEST(ProtocolRequestTest, NeighborsRoundtrips) {
  serve::Request req;
  req.type = serve::MsgType::kNeighbors;
  req.dim = 2;
  req.coords = {7.5, -1.25};
  req.radius = 2.5;
  const auto back = decode_req_ok(serve::encode_request(req));
  EXPECT_EQ(back.type, serve::MsgType::kNeighbors);
  EXPECT_EQ(back.coords, req.coords);
  EXPECT_EQ(back.radius, 2.5);
}

TEST(ProtocolRequestTest, PointInfoStatsModelInfoRoundtrip) {
  serve::Request req;
  req.type = serve::MsgType::kPointInfo;
  req.point_id = 0xDEADBEEFCAFEull;
  EXPECT_EQ(decode_req_ok(serve::encode_request(req)).point_id,
            req.point_id);

  req = {};
  req.type = serve::MsgType::kStats;
  EXPECT_EQ(decode_req_ok(serve::encode_request(req)).type,
            serve::MsgType::kStats);

  req = {};
  req.type = serve::MsgType::kModelInfo;
  EXPECT_EQ(decode_req_ok(serve::encode_request(req)).type,
            serve::MsgType::kModelInfo);
}

TEST(ProtocolRequestTest, GarbageBodiesAreRejectedCleanly) {
  serve::Request out;

  // Empty body.
  EXPECT_FALSE(serve::decode_request({}, out).ok());

  // Unknown message type.
  {
    serve::ByteWriter w;
    w.u8(0xEE);
    EXPECT_FALSE(serve::decode_request(w.data(), out).ok());
  }

  // Classify claiming 2^32-1 points with no coordinate bytes behind it:
  // must be rejected before any allocation proportional to the claim.
  {
    serve::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(serve::MsgType::kClassify));
    w.u32(0xFFFFFFFFu);
    w.u32(3);
    EXPECT_FALSE(serve::decode_request(w.data(), out).ok());
  }

  // Batch above the hard cap, with plausible-looking sizes.
  {
    serve::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(serve::MsgType::kClassify));
    w.u32(serve::kMaxBatchPoints + 1);
    w.u32(1);
    EXPECT_FALSE(serve::decode_request(w.data(), out).ok());
  }

  // Truncated classify coordinates.
  {
    serve::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(serve::MsgType::kClassify));
    w.u32(2);
    w.u32(2);
    w.f64(1.0);  // 1 of 4 doubles present
    EXPECT_FALSE(serve::decode_request(w.data(), out).ok());
  }

  // Non-finite classify coordinate.
  {
    serve::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(serve::MsgType::kClassify));
    w.u32(1);
    w.u32(1);
    w.f64(std::numeric_limits<double>::quiet_NaN());
    EXPECT_FALSE(serve::decode_request(w.data(), out).ok());
  }

  // Non-finite neighbors radius.
  {
    serve::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(serve::MsgType::kNeighbors));
    w.f64(std::numeric_limits<double>::infinity());
    w.u32(1);
    w.f64(0.0);
    EXPECT_FALSE(serve::decode_request(w.data(), out).ok());
  }

  // Ping with trailing junk.
  {
    serve::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(serve::MsgType::kPing));
    w.u64(0x0123456789ABCDEFull);
    EXPECT_FALSE(serve::decode_request(w.data(), out).ok());
  }

  // Truncated point_info (type byte only).
  {
    serve::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(serve::MsgType::kPointInfo));
    EXPECT_FALSE(serve::decode_request(w.data(), out).ok());
  }

  // Pseudo-random byte soup at several lengths.
  std::uint32_t x = 0x9E3779B9u;
  for (int len : {1, 2, 7, 33, 256}) {
    serve::ByteWriter w;
    for (int k = 0; k < len; ++k) {
      x = x * 1664525u + 1013904223u;
      w.u8(static_cast<std::uint8_t>(x >> 24));
    }
    serve::Request r;
    // Must not crash; OK only if the soup happens to spell a valid frame
    // (with these fixed bytes it does not).
    EXPECT_FALSE(serve::decode_request(w.data(), r).ok()) << "len " << len;
  }
}

TEST(ProtocolResponseTest, ClassifyResponseRoundtrips) {
  serve::Response resp;
  resp.type = serve::MsgType::kClassify;
  resp.classify.push_back({3, PointKind::Core, true, true, 0});
  resp.classify.push_back({kNoise, PointKind::Noise, false, false, 2});
  resp.classify.push_back({1, PointKind::Border, false, true, 9});
  const auto back = decode_resp_ok(serve::encode_response(resp));
  EXPECT_EQ(back.code, StatusCode::kOk);
  ASSERT_EQ(back.classify.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.classify[i].label, resp.classify[i].label) << i;
    EXPECT_EQ(back.classify[i].kind, resp.classify[i].kind) << i;
    EXPECT_EQ(back.classify[i].exact_match, resp.classify[i].exact_match) << i;
    EXPECT_EQ(back.classify[i].would_be_core, resp.classify[i].would_be_core)
        << i;
    EXPECT_EQ(back.classify[i].neighbors, resp.classify[i].neighbors) << i;
  }
}

TEST(ProtocolResponseTest, NeighborsAndPointInfoAndModelInfoRoundtrip) {
  serve::Response resp;
  resp.type = serve::MsgType::kNeighbors;
  resp.neighbors = {{5, 0.25}, {17, 1.5}};
  auto back = decode_resp_ok(serve::encode_response(resp));
  EXPECT_EQ(back.neighbors, resp.neighbors);

  resp = {};
  resp.type = serve::MsgType::kPointInfo;
  resp.point = {4, PointKind::Border, false};
  back = decode_resp_ok(serve::encode_response(resp));
  EXPECT_EQ(back.point.label, 4);
  EXPECT_EQ(back.point.kind, PointKind::Border);
  EXPECT_FALSE(back.point.is_core);

  resp = {};
  resp.type = serve::MsgType::kModelInfo;
  resp.model = {1000, 3, 1.5, 7, 42};
  back = decode_resp_ok(serve::encode_response(resp));
  EXPECT_EQ(back.model.n, 1000u);
  EXPECT_EQ(back.model.dim, 3u);
  EXPECT_EQ(back.model.eps, 1.5);
  EXPECT_EQ(back.model.min_pts, 7u);
  EXPECT_EQ(back.model.num_clusters, 42u);

  resp = {};
  resp.type = serve::MsgType::kStats;
  resp.json = "{\"schema_version\":1}";
  back = decode_resp_ok(serve::encode_response(resp));
  EXPECT_EQ(back.json, resp.json);
}

TEST(ProtocolResponseTest, ErrorResponseCarriesStatusAcrossTheWire) {
  const Status boom = InvalidArgumentError("dimension mismatch: 3 vs 2");
  const serve::Response err =
      serve::error_response(serve::MsgType::kClassify, boom);
  const auto back = decode_resp_ok(serve::encode_response(err));
  EXPECT_EQ(back.type, serve::MsgType::kClassify);
  EXPECT_EQ(back.code, StatusCode::kInvalidArgument);
  Status st = back.to_status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("dimension mismatch"), std::string::npos);
}

TEST(ProtocolResponseTest, GarbageResponseBodiesAreRejectedCleanly) {
  serve::Response out;
  EXPECT_FALSE(serve::decode_response({}, out).ok());

  // Trailing junk after a valid ping response.
  serve::Response ping;
  ping.type = serve::MsgType::kPing;
  auto bytes = serve::encode_response(ping);
  bytes.push_back(0x55);
  EXPECT_FALSE(serve::decode_response(bytes, out).ok());

  // Truncation at every prefix of a classify response must fail cleanly.
  serve::Response resp;
  resp.type = serve::MsgType::kClassify;
  resp.classify.push_back({1, PointKind::Core, true, true, 4});
  const auto full = serve::encode_response(resp);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> part(full.begin(),
                                   full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(serve::decode_response(part, out).ok()) << "cut " << cut;
  }
}

// ---------------------------------------------------------------------------
// TELEMETRY admin message
// ---------------------------------------------------------------------------

serve::TelemetryReport sample_report() {
  serve::TelemetryReport t;
  t.uptime_us = 12'345'678;
  t.inflight = 3;
  t.requests_total = 1000;
  t.errors_total = 7;
  t.shed_load_total = 5;
  t.shed_connections_total = 2;
  t.corrupt_frames_total = 1;
  t.idle_disconnects_total = 4;
  t.classify_points = 900;
  t.classify_performed = 400;
  t.classify_avoided_exact = 500;
  const double spans[] = {1.0, 10.0, 60.0};
  for (std::size_t i = 0; i < serve::kTelemetryWindows; ++i) {
    serve::TelemetryWindow& w = t.windows[i];
    w.window_seconds = spans[i];
    w.requests = 100 * (i + 1);
    w.errors = i;
    w.shed = 2 * i;
    w.qps = 100.5 * static_cast<double>(i + 1);
    w.p50_us = 80.0 + static_cast<double>(i);
    w.p90_us = 150.0;
    w.p99_us = 240.0;
    w.p999_us = 900.0;
    w.max_us = 40900.0;
  }
  return t;
}

TEST(ProtocolTelemetryTest, RequestRoundtripsEveryFormat) {
  for (auto fmt : {serve::TelemetryFormat::kBinary,
                   serve::TelemetryFormat::kJson,
                   serve::TelemetryFormat::kPrometheus}) {
    serve::Request req;
    req.type = serve::MsgType::kTelemetry;
    req.telemetry_format = fmt;
    const auto back = decode_req_ok(serve::encode_request(req));
    EXPECT_EQ(back.type, serve::MsgType::kTelemetry);
    EXPECT_EQ(back.telemetry_format, fmt);
  }
  // Unknown format byte is the caller's mistake, not corruption.
  serve::Request out;
  const std::vector<std::uint8_t> bad = {7, 9};
  EXPECT_EQ(serve::decode_request(bad, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTelemetryTest, BinaryResponseRoundtripsExactly) {
  serve::Response resp;
  resp.type = serve::MsgType::kTelemetry;
  resp.telemetry_format = serve::TelemetryFormat::kBinary;
  resp.telemetry = sample_report();
  const auto back = decode_resp_ok(serve::encode_response(resp));
  EXPECT_EQ(back.telemetry_format, serve::TelemetryFormat::kBinary);
  const serve::TelemetryReport& a = resp.telemetry;
  const serve::TelemetryReport& b = back.telemetry;
  EXPECT_EQ(a.uptime_us, b.uptime_us);
  EXPECT_EQ(a.inflight, b.inflight);
  EXPECT_EQ(a.requests_total, b.requests_total);
  EXPECT_EQ(a.errors_total, b.errors_total);
  EXPECT_EQ(a.shed_load_total, b.shed_load_total);
  EXPECT_EQ(a.shed_connections_total, b.shed_connections_total);
  EXPECT_EQ(a.corrupt_frames_total, b.corrupt_frames_total);
  EXPECT_EQ(a.idle_disconnects_total, b.idle_disconnects_total);
  EXPECT_EQ(a.classify_points, b.classify_points);
  EXPECT_EQ(a.classify_performed, b.classify_performed);
  EXPECT_EQ(a.classify_avoided_exact, b.classify_avoided_exact);
  for (std::size_t i = 0; i < serve::kTelemetryWindows; ++i) {
    EXPECT_EQ(a.windows[i].window_seconds, b.windows[i].window_seconds) << i;
    EXPECT_EQ(a.windows[i].requests, b.windows[i].requests) << i;
    EXPECT_EQ(a.windows[i].errors, b.windows[i].errors) << i;
    EXPECT_EQ(a.windows[i].shed, b.windows[i].shed) << i;
    EXPECT_EQ(a.windows[i].qps, b.windows[i].qps) << i;
    EXPECT_EQ(a.windows[i].p50_us, b.windows[i].p50_us) << i;
    EXPECT_EQ(a.windows[i].p90_us, b.windows[i].p90_us) << i;
    EXPECT_EQ(a.windows[i].p99_us, b.windows[i].p99_us) << i;
    EXPECT_EQ(a.windows[i].p999_us, b.windows[i].p999_us) << i;
    EXPECT_EQ(a.windows[i].max_us, b.windows[i].max_us) << i;
  }
}

TEST(ProtocolTelemetryTest, TextResponseRoundtrips) {
  serve::Response resp;
  resp.type = serve::MsgType::kTelemetry;
  resp.telemetry_format = serve::TelemetryFormat::kPrometheus;
  resp.json = "udbscan_serve_requests_total 9\n";
  const auto back = decode_resp_ok(serve::encode_response(resp));
  EXPECT_EQ(back.telemetry_format, serve::TelemetryFormat::kPrometheus);
  EXPECT_EQ(back.json, resp.json);
}

TEST(ProtocolTelemetryTest, NonFinitePercentileIsRejected) {
  serve::Response resp;
  resp.type = serve::MsgType::kTelemetry;
  resp.telemetry_format = serve::TelemetryFormat::kBinary;
  resp.telemetry = sample_report();
  resp.telemetry.windows[1].p99_us =
      std::numeric_limits<double>::infinity();
  serve::Response out;
  EXPECT_EQ(serve::decode_response(serve::encode_response(resp), out).code(),
            StatusCode::kDataLoss);
}

TEST(ProtocolTelemetryTest, TruncatedBinaryResponseFailsCleanly) {
  serve::Response resp;
  resp.type = serve::MsgType::kTelemetry;
  resp.telemetry_format = serve::TelemetryFormat::kBinary;
  resp.telemetry = sample_report();
  const auto full = serve::encode_response(resp);
  serve::Response out;
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> part(full.begin(),
                                   full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(serve::decode_response(part, out).ok()) << "cut " << cut;
  }
}

}  // namespace
}  // namespace udb
