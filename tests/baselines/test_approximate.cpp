// The approximate baselines (QIDBSCAN, sampled DBSCAN) exist to reproduce
// the paper's quality argument (Section III): their output is *close* to
// DBSCAN but not exact. These tests pin down both halves: the
// approximations are well-formed and reasonable, and the degenerate
// configurations that should be exact are exact.

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "baselines/qi_dbscan.hpp"
#include "baselines/sampled_dbscan.hpp"
#include "data/generators.hpp"
#include "metrics/ari.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

// ---- sampled DBSCAN --------------------------------------------------------

TEST(SampledDbscan, RejectsBadRho) {
  Dataset ds(1, {0.0});
  EXPECT_THROW(sampled_dbscan(ds, {1.0, 2}, 0.0), std::invalid_argument);
  EXPECT_THROW(sampled_dbscan(ds, {1.0, 2}, 1.5), std::invalid_argument);
}

TEST(SampledDbscan, RhoOneIsExact) {
  Dataset ds = gen_blobs(800, 3, 4, 80.0, 3.0, 0.15, 3);
  const DbscanParams prm{2.0, 5};
  const auto truth = brute_dbscan(ds, prm);
  SampledDbscanStats st;
  const auto got = sampled_dbscan(ds, prm, 1.0, 1, &st);
  EXPECT_EQ(st.sample_size, ds.size());
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST(SampledDbscan, QualityDegradesGracefullyWithRho) {
  Dataset ds = gen_blobs(3000, 3, 5, 100.0, 3.0, 0.1, 7);
  const DbscanParams prm{2.5, 5};
  const auto truth = brute_dbscan(ds, prm);
  double prev_ari = 1.1;
  for (double rho : {0.8, 0.4, 0.1}) {
    const auto got = sampled_dbscan(ds, prm, rho, 1);
    const double ari = adjusted_rand_index(truth.label, got.label);
    EXPECT_GT(ari, 0.3) << "rho " << rho;  // still recognizably DBSCAN-like
    EXPECT_LE(ari, prev_ari + 0.15) << "rho " << rho;  // roughly monotone
    prev_ari = ari;
  }
}

TEST(SampledDbscan, SampleSizeTracksRho) {
  Dataset ds = gen_uniform(10000, 2, 0.0, 100.0, 9);
  SampledDbscanStats st;
  (void)sampled_dbscan(ds, {1.0, 5}, 0.25, 3, &st);
  EXPECT_NEAR(static_cast<double>(st.sample_size), 2500.0, 200.0);
}

TEST(SampledDbscan, DeterministicGivenSeed) {
  Dataset ds = gen_blobs(1000, 2, 3, 50.0, 2.0, 0.1, 11);
  const auto a = sampled_dbscan(ds, {1.5, 5}, 0.5, 42);
  const auto b = sampled_dbscan(ds, {1.5, 5}, 0.5, 42);
  EXPECT_EQ(a.label, b.label);
}

// ---- QIDBSCAN --------------------------------------------------------------

TEST(QiDbscan, WellFormedOutput) {
  Dataset ds = gen_blobs(1000, 3, 4, 80.0, 3.0, 0.15, 13);
  QiDbscanStats st;
  const auto got = qi_dbscan(ds, {2.0, 5}, &st);
  EXPECT_EQ(got.size(), ds.size());
  EXPECT_GT(st.queries, 0u);
  EXPECT_LE(st.queries, ds.size());
  // Every core point must carry a cluster label.
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got.is_core[i]) {
      EXPECT_NE(got.label[i], kNoise);
    }
  }
}

TEST(QiDbscan, HighQualityOnWellSeparatedBlobs) {
  Dataset ds = gen_blobs(2000, 2, 4, 200.0, 2.0, 0.0, 15);
  const DbscanParams prm{1.5, 5};
  const auto truth = brute_dbscan(ds, prm);
  const auto got = qi_dbscan(ds, prm);
  EXPECT_GT(adjusted_rand_index(truth.label, got.label), 0.9);
}

TEST(QiDbscan, SavesExpansionQueries) {
  Dataset ds = gen_blobs(3000, 3, 3, 60.0, 2.0, 0.05, 17);
  QiDbscanStats st;
  (void)qi_dbscan(ds, {2.0, 5}, &st);
  // The whole point of QIDBSCAN: most neighbors are never expanded.
  EXPECT_LT(st.queries, ds.size());
  EXPECT_GT(st.expansion_skipped, 0u);
}

TEST(QiDbscan, ReproducesThePapersNonExactnessClaim) {
  // Section III: QIDBSCAN-style representative-point expansion "does not
  // satisfy the condition of maximality ... and thus does not produce exact
  // clustering". Sweep a family of datasets and require that at least one
  // diverges from exact DBSCAN — if QIDBSCAN were exact everywhere here,
  // this reproduction of the claim would be wrong.
  bool diverged = false;
  for (std::uint64_t seed = 1; seed <= 10 && !diverged; ++seed) {
    Dataset ds = gen_galaxy(1500, GalaxyConfig{}, seed);
    const DbscanParams prm{1.2, 5};
    const auto truth = brute_dbscan(ds, prm);
    const auto got = qi_dbscan(ds, prm);
    if (!compare_exact(truth, got).exact()) diverged = true;
  }
  EXPECT_TRUE(diverged)
      << "QIDBSCAN matched exact DBSCAN on every probe; the paper's "
         "non-exactness claim is not being exercised";
}

}  // namespace
}  // namespace udb
