// Baseline algorithms: hand-constructed DBSCAN semantics cases against
// brute_dbscan, then property sweeps asserting that R-DBSCAN, G-DBSCAN and
// GridDBSCAN all produce exact DBSCAN clustering.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baselines/brute_dbscan.hpp"
#include "baselines/g_dbscan.hpp"
#include "baselines/grid_dbscan.hpp"
#include "baselines/r_dbscan.hpp"
#include "common/rng.hpp"
#include "data/generators.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

// ---- hand-constructed semantics cases (ground truth by inspection) --------

TEST(BruteDbscan, EmptyDataset) {
  Dataset ds = Dataset::empty(2);
  const auto r = brute_dbscan(ds, {1.0, 3});
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.num_clusters(), 0u);
}

TEST(BruteDbscan, AllNoiseWhenMinPtsExceedsN) {
  Dataset ds(1, {0.0, 0.1, 0.2});
  const auto r = brute_dbscan(ds, {1.0, 10});
  EXPECT_EQ(r.num_noise(), 3u);
  EXPECT_EQ(r.num_clusters(), 0u);
}

TEST(BruteDbscan, MinPtsOneMakesEveryPointCore) {
  Dataset ds(1, {0.0, 100.0, 200.0});
  const auto r = brute_dbscan(ds, {1.0, 1});
  EXPECT_EQ(r.num_core(), 3u);
  EXPECT_EQ(r.num_clusters(), 3u);
  EXPECT_EQ(r.num_noise(), 0u);
}

TEST(BruteDbscan, NeighborhoodIsStrictlyLessThanEps) {
  // Two points at exactly eps apart are NOT neighbors.
  Dataset ds(1, {0.0, 1.0});
  const auto r = brute_dbscan(ds, {1.0, 2});
  EXPECT_EQ(r.num_noise(), 2u);
  // Just under eps: neighbors, both core (count includes self).
  Dataset ds2(1, {0.0, 0.999});
  const auto r2 = brute_dbscan(ds2, {1.0, 2});
  EXPECT_EQ(r2.num_core(), 2u);
  EXPECT_EQ(r2.num_clusters(), 1u);
}

TEST(BruteDbscan, ChainForm_OneClusterThroughCores) {
  // 0 -- 0.9 -- 1.8 -- 2.7: every adjacent pair < eps=1; MinPts=2 makes all
  // core, so density-reachability chains them into one cluster.
  Dataset ds(1, {0.0, 0.9, 1.8, 2.7});
  const auto r = brute_dbscan(ds, {1.0, 2});
  EXPECT_EQ(r.num_core(), 4u);
  EXPECT_EQ(r.num_clusters(), 1u);
}

TEST(BruteDbscan, BorderPointDoesNotBridgeClusters) {
  // Two dense pairs separated by a single border point reachable from both:
  // cores: {0, 0.1} and {2.0, 2.1}; point 1.05 is within eps=1 of 0.1 and
  // 2.0. With MinPts=3, 1.05 has neighbors {0.1, 1.05, 2.0} => core! Use
  // MinPts=4 so it is a border: clusters must stay separate.
  Dataset ds(1, {0.0, 0.1, 0.2, 1.05, 2.0, 2.1, 2.2});
  const auto r = brute_dbscan(ds, {0.5, 3});
  EXPECT_EQ(r.num_clusters(), 2u);
  EXPECT_FALSE(r.is_core[3]);
  EXPECT_EQ(r.label[3], kNoise);  // 1.05 is 0.85 from 0.2 and 0.95 from 2.0
}

TEST(BruteDbscan, BorderAttachesToSomeAdjacentCluster) {
  Dataset ds(1, {0.0, 0.1, 0.2, 0.55, 0.9, 1.0, 1.1});
  // eps=0.4, MinPts=3: {0,0.1,0.2} and {0.9,1.0,1.1} are core clusters;
  // 0.55 is within 0.4 of 0.2 and 0.9 but has only 3 neighbors
  // {0.2,0.55,0.9} of which itself — count = 3 >= 3 => actually core and
  // bridges! Use MinPts=4: 0.55 is border of one of the two clusters.
  const auto r = brute_dbscan(ds, {0.4, 4});
  EXPECT_EQ(r.num_clusters(), 2u);
  EXPECT_FALSE(r.is_core[3]);
  EXPECT_NE(r.label[3], kNoise);  // border, attached to one side
}

TEST(BruteDbscan, DuplicatePointsClusterTogether) {
  std::vector<double> coords(50, 7.5);  // 50 copies of the same 1-D point
  Dataset ds(1, std::move(coords));
  const auto r = brute_dbscan(ds, {0.1, 5});
  EXPECT_EQ(r.num_clusters(), 1u);
  EXPECT_EQ(r.num_core(), 50u);
}

TEST(BruteDbscan, PermutationInvariance) {
  // Shuffling the input must not change cluster count, core set or noise
  // set (the paper's definition of exact clustering is order-free).
  Dataset ds = gen_blobs(300, 2, 3, 50.0, 2.0, 0.2, 31);
  const auto base = brute_dbscan(ds, {2.0, 5});

  std::vector<PointId> perm(ds.size());
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(77);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
  Dataset shuffled = ds.select(perm);
  const auto shuf = brute_dbscan(shuffled, {2.0, 5});

  EXPECT_EQ(base.num_clusters(), shuf.num_clusters());
  EXPECT_EQ(base.num_core(), shuf.num_core());
  EXPECT_EQ(base.num_noise(), shuf.num_noise());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(base.is_core[perm[i]], shuf.is_core[i]);
    EXPECT_EQ(base.label[perm[i]] == kNoise, shuf.label[i] == kNoise);
  }
}

// ---- property sweeps: every baseline is exact ------------------------------

struct SweepCase {
  const char* tag;
  std::size_t n;
  std::size_t dim;
  double eps;
  std::uint32_t min_pts;
  std::uint64_t seed;
};

void PrintTo(const SweepCase& c, std::ostream* os) { *os << c.tag << "/s" << c.seed; }

Dataset make_sweep_dataset(const SweepCase& c) {
  const std::string tag = c.tag;
  if (tag == "blobs") return gen_blobs(c.n, c.dim, 5, 100.0, 3.0, 0.15, c.seed);
  if (tag == "galaxy") {
    GalaxyConfig cfg;
    cfg.halos = 6;
    cfg.subhalos_per_halo = 4;
    cfg.box = 120.0;
    return gen_galaxy(c.n, cfg, c.seed);
  }
  if (tag == "roadnet") {
    RoadnetConfig cfg;
    cfg.waypoints = 40;
    return gen_roadnet(c.n, cfg, c.seed);
  }
  if (tag == "uniform") return gen_uniform(c.n, c.dim, 0.0, 30.0, c.seed);
  if (tag == "moons") return gen_two_moons(c.n, 0.06, c.seed);
  throw std::logic_error("unknown sweep tag");
}

class BaselineExactness : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BaselineExactness, RDbscanMatchesBrute) {
  const auto& c = GetParam();
  Dataset ds = make_sweep_dataset(c);
  const auto truth = brute_dbscan(ds, {c.eps, c.min_pts});
  const auto got = r_dbscan(ds, {c.eps, c.min_pts});
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST_P(BaselineExactness, GDbscanMatchesBrute) {
  const auto& c = GetParam();
  Dataset ds = make_sweep_dataset(c);
  const auto truth = brute_dbscan(ds, {c.eps, c.min_pts});
  GDbscanStats st;
  const auto got = g_dbscan(ds, {c.eps, c.min_pts}, &st);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  EXPECT_GT(st.groups, 0u);
  EXPECT_LE(st.groups, ds.size());
}

TEST_P(BaselineExactness, GridDbscanMatchesBrute) {
  const auto& c = GetParam();
  Dataset ds = make_sweep_dataset(c);
  const auto truth = brute_dbscan(ds, {c.eps, c.min_pts});
  GridDbscanStats st;
  const auto got = grid_dbscan(ds, {c.eps, c.min_pts}, &st);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  EXPECT_EQ(st.queries + st.queries_saved, ds.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineExactness,
    ::testing::Values(
        SweepCase{"blobs", 500, 2, 2.0, 5, 1}, SweepCase{"blobs", 500, 3, 2.5, 5, 2},
        SweepCase{"blobs", 400, 5, 4.0, 4, 3}, SweepCase{"blobs", 300, 2, 0.5, 3, 4},
        SweepCase{"blobs", 300, 2, 20.0, 8, 5}, SweepCase{"galaxy", 600, 3, 1.5, 5, 6},
        SweepCase{"galaxy", 600, 3, 4.0, 6, 7}, SweepCase{"roadnet", 500, 3, 1.0, 4, 8},
        SweepCase{"uniform", 400, 2, 1.5, 4, 9}, SweepCase{"uniform", 300, 3, 3.0, 5, 10},
        SweepCase{"moons", 500, 2, 0.12, 5, 11}, SweepCase{"blobs", 64, 2, 2.0, 1, 12},
        SweepCase{"blobs", 64, 2, 2.0, 2, 13}, SweepCase{"blobs", 500, 3, 2.5, 20, 14}));

TEST(GDbscan, ReportsDenseGroups) {
  Dataset ds = gen_blobs(500, 2, 2, 20.0, 0.5, 0.0, 3);
  GDbscanStats st;
  (void)g_dbscan(ds, {2.0, 5}, &st);
  EXPECT_GT(st.dense_groups, 0u);
}

TEST(GridDbscan, SavesQueriesOnDenseData) {
  Dataset ds = gen_blobs(2000, 2, 3, 20.0, 0.8, 0.0, 5);
  GridDbscanStats st;
  (void)grid_dbscan(ds, {1.5, 4}, &st);
  EXPECT_GT(st.queries_saved, 0u);
  EXPECT_GT(st.dense_cells, 0u);
}

TEST(RDbscan, ReportsOneQueryPerPoint) {
  Dataset ds = gen_blobs(300, 3, 3, 50.0, 3.0, 0.1, 9);
  RDbscanStats st;
  (void)r_dbscan(ds, {2.0, 5}, &st);
  EXPECT_EQ(st.queries, ds.size());
  EXPECT_GT(st.distance_evals, 0u);
}

}  // namespace
}  // namespace udb
