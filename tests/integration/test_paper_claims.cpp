// Integration tests pinning the paper's *qualitative claims* on our scaled
// analogs — the testable statements behind Tables II-VIII that do not depend
// on the authors' hardware:
//   * µDBSCAN saves a substantial fraction of neighborhood queries, with the
//     per-dataset ordering the paper reports (dense/high-save vs DGB-low);
//   * the number of micro-clusters is far below n;
//   * µDBSCAN performs fewer distance computations than single-R-tree
//     DBSCAN on dense data (the mechanism behind Table II's runtimes);
//   * distributed phase accounting: merging stays a minor slice relative to
//     the local phases at moderate rank counts (Table VII's claim);
//   * eps growth increases the query-save fraction (Fig. 5's mechanism).

#include <gtest/gtest.h>

#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/verify.hpp"

namespace udb {
namespace {

constexpr double kScale = 0.25;  // keep the suite fast; shapes hold

MuDbscanStats run_stats(const std::string& name) {
  NamedDataset nd = make_named_dataset(name, kScale);
  MuDbscanStats st;
  (void)mu_dbscan(nd.data, nd.params, &st);
  return st;
}

TEST(PaperClaims, QuerySavesAreSubstantialOnDenseAnalogs) {
  for (const char* name : {"3DSRN", "FOF", "KDDB14", "HHP"}) {
    NamedDataset nd = make_named_dataset(name, kScale);
    MuDbscanStats st;
    (void)mu_dbscan(nd.data, nd.params, &st);
    EXPECT_GT(st.query_save_fraction(nd.data.size()), 0.30)
        << name << " should be in the high-save regime";
  }
}

TEST(PaperClaims, DgbIsTheLowSaveOutlier) {
  // Table II: DGB has by far the lowest query-save fraction (43.6% vs
  // 69-96% elsewhere). Our analogs preserve the ordering.
  const double dgb = run_stats("DGB").query_save_fraction(
      make_named_dataset("DGB", kScale).data.size());
  for (const char* name : {"3DSRN", "FOF", "MPAGD"}) {
    NamedDataset nd = make_named_dataset(name, kScale);
    MuDbscanStats st;
    (void)mu_dbscan(nd.data, nd.params, &st);
    EXPECT_GT(st.query_save_fraction(nd.data.size()), dgb) << name;
  }
}

TEST(PaperClaims, MicroClusterCountIsFarBelowN) {
  for (const char* name : {"3DSRN", "FOF", "KDDB14", "HHP", "MPAGD"}) {
    NamedDataset nd = make_named_dataset(name, kScale);
    MuDbscanStats st;
    (void)mu_dbscan(nd.data, nd.params, &st);
    EXPECT_LT(st.num_mcs, nd.data.size() / 2) << name;
  }
}

TEST(PaperClaims, EpsGrowthIncreasesQuerySaves) {
  // Fig. 5's mechanism: larger eps -> denser MCs -> more wndq cores.
  NamedDataset nd = make_named_dataset("MPAGD", kScale);
  double prev = -1.0;
  for (double f : {0.75, 1.0, 1.5, 2.0}) {
    DbscanParams prm = nd.params;
    prm.eps *= f;
    MuDbscanStats st;
    (void)mu_dbscan(nd.data, prm, &st);
    const double save = st.query_save_fraction(nd.data.size());
    EXPECT_GT(save, prev - 0.05) << "eps factor " << f;  // roughly monotone
    prev = save;
  }
}

TEST(PaperClaims, MergePhaseStaysMinorAtModerateRanks) {
  // Table VII: merging is a small share of the distributed runtime.
  NamedDataset nd = make_named_dataset("MPAGD", kScale);
  MuDbscanDStats st;
  (void)mudbscan_d(nd.data, nd.params, 4, &st);
  EXPECT_LT(st.t_merge, st.total() * 0.5);
}

TEST(PaperClaims, DistributedOutputVerifiesFromFirstPrinciples) {
  // Not just equal to a reference — the distributed output itself satisfies
  // the DBSCAN conditions of Section II.
  NamedDataset nd = make_named_dataset("FOF", 0.05);
  const auto res = mudbscan_d(nd.data, nd.params, 4);
  const auto rep = verify_dbscan(nd.data, nd.params, res);
  EXPECT_TRUE(rep.valid()) << rep.detail;
}

TEST(PaperClaims, PerRankWorkShrinksWithRanks) {
  // Fig. 7's substance under the virtual-time model: local compute makespan
  // falls as ranks grow.
  NamedDataset nd = make_named_dataset("MPAGD", kScale);
  MuDbscanDStats s2, s8;
  (void)mudbscan_d(nd.data, nd.params, 2, &s2);
  (void)mudbscan_d(nd.data, nd.params, 8, &s8);
  const double local2 = s2.t_tree + s2.t_reach + s2.t_cluster + s2.t_post;
  const double local8 = s8.t_tree + s8.t_reach + s8.t_cluster + s8.t_post;
  EXPECT_LT(local8, local2);
}

}  // namespace
}  // namespace udb
