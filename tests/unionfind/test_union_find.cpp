#include "unionfind/union_find.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace udb {
namespace {

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(5);
  for (PointId i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
  EXPECT_EQ(uf.count_components(), 5u);
}

TEST(UnionFind, UnionMergesTwoSets) {
  UnionFind uf(4);
  uf.union_sets(0, 1);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.count_components(), 3u);
}

TEST(UnionFind, UnionIsIdempotent) {
  UnionFind uf(3);
  const PointId r1 = uf.union_sets(0, 1);
  const PointId r2 = uf.union_sets(1, 0);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(uf.count_components(), 2u);
}

TEST(UnionFind, TransitivityViaChains) {
  UnionFind uf(10);
  for (PointId i = 0; i + 1 < 10; ++i) uf.union_sets(i, i + 1);
  EXPECT_TRUE(uf.same(0, 9));
  EXPECT_EQ(uf.count_components(), 1u);
}

TEST(UnionFind, ComponentIdsAreCompactAndConsistent) {
  UnionFind uf(6);
  uf.union_sets(0, 2);
  uf.union_sets(3, 4);
  std::vector<std::uint32_t> ids;
  const std::size_t k = uf.component_ids(ids);
  EXPECT_EQ(k, 4u);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(ids[3], ids[4]);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_NE(ids[0], ids[3]);
  for (std::uint32_t id : ids) EXPECT_LT(id, k);
}

TEST(UnionFind, FindNeverChangesMembership) {
  // Path halving must not alter which set an element belongs to.
  UnionFind uf(64);
  for (PointId i = 0; i < 32; ++i) uf.union_sets(i, i + 32);
  std::vector<PointId> before(64);
  for (PointId i = 0; i < 64; ++i) before[i] = uf.find(i);
  for (int rep = 0; rep < 3; ++rep)
    for (PointId i = 0; i < 64; ++i) EXPECT_EQ(uf.find(i), before[i]);
}

TEST(UnionFind, RandomizedAgainstNaiveReference) {
  // Property check: compare against a quadratic reference implementation on
  // random union sequences.
  const std::size_t n = 200;
  Rng rng(99);
  UnionFind uf(n);
  std::vector<std::uint32_t> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = static_cast<std::uint32_t>(i);

  for (int step = 0; step < 500; ++step) {
    const PointId a = static_cast<PointId>(rng.uniform_index(n));
    const PointId b = static_cast<PointId>(rng.uniform_index(n));
    uf.union_sets(a, b);
    const std::uint32_t keep = ref[a], kill = ref[b];
    if (keep != kill)
      for (auto& r : ref)
        if (r == kill) r = keep;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(uf.same(static_cast<PointId>(i), static_cast<PointId>(j)),
                ref[i] == ref[j])
          << i << "," << j;
    }
  }
}

TEST(UnionFind, LargeChainStaysShallowEnough) {
  // Union-by-rank keeps finds cheap even for adversarial chains; this is a
  // smoke guard, not a precise bound.
  const std::size_t n = 100000;
  UnionFind uf(n);
  for (PointId i = 0; i + 1 < n; ++i) uf.union_sets(i, i + 1);
  EXPECT_EQ(uf.count_components(), 1u);
  EXPECT_EQ(uf.find(0), uf.find(static_cast<PointId>(n - 1)));
}

TEST(UnionFind, ConstFindAgreesWithMutatingFind) {
  UnionFind uf(128);
  Rng rng(5);
  for (int step = 0; step < 200; ++step)
    uf.union_sets(static_cast<PointId>(rng.uniform_index(128)),
                  static_cast<PointId>(rng.uniform_index(128)));
  const UnionFind& cuf = uf;
  for (PointId i = 0; i < 128; ++i) {
    const PointId via_const = cuf.find(i);  // no compression
    EXPECT_EQ(via_const, uf.find(i)) << i;
    EXPECT_EQ(cuf.find(i), via_const) << i;  // compression didn't move roots
  }
}

TEST(UnionFind, RootIsComponentMinimum) {
  // The CAS-link rule (larger root points at smaller) makes the final
  // representative of every component its minimum element — the property the
  // parallel engine relies on to compare partitions across thread counts.
  const std::size_t n = 500;
  Rng rng(11);
  UnionFind uf(n);
  std::vector<std::uint32_t> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = static_cast<std::uint32_t>(i);
  for (int step = 0; step < 800; ++step) {
    const PointId a = static_cast<PointId>(rng.uniform_index(n));
    const PointId b = static_cast<PointId>(rng.uniform_index(n));
    uf.union_sets(a, b);
    const std::uint32_t keep = ref[a], kill = ref[b];
    if (keep != kill)
      for (auto& r : ref)
        if (r == kill) r = keep;
  }
  std::vector<PointId> min_of(n);
  for (std::size_t i = 0; i < n; ++i) min_of[i] = static_cast<PointId>(n);
  for (std::size_t i = 0; i < n; ++i)
    min_of[ref[i]] = std::min(min_of[ref[i]], static_cast<PointId>(i));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(uf.find(static_cast<PointId>(i)), min_of[ref[i]]) << i;
}

TEST(UnionFind, ConcurrentStressMatchesSequentialReplay) {
  // Randomized lock-free stress: apply the same edge list sequentially and
  // concurrently (threads striding over the list, so unions interleave
  // heavily) and require identical find() values everywhere — valid because
  // representatives are component minima under any interleaving. Run under
  // TSan in CI to also certify the absence of data races.
  const std::size_t n = 20000;
  const std::size_t m = 60000;
  Rng rng(2024);
  std::vector<std::pair<PointId, PointId>> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    edges.emplace_back(static_cast<PointId>(rng.uniform_index(n)),
                       static_cast<PointId>(rng.uniform_index(n)));

  UnionFind seq(n);
  for (const auto& [a, b] : edges) seq.union_sets(a, b);

  for (const unsigned nt : {2u, 4u, 8u}) {
    UnionFind par(n);
    ThreadPool pool(nt);
    pool.run([&](unsigned tid) {
      for (std::size_t i = tid; i < edges.size(); i += nt)
        par.union_sets(edges[i].first, edges[i].second);
    });
    const UnionFind& cpar = par;
    EXPECT_EQ(cpar.count_components(), seq.count_components()) << nt;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(cpar.find(static_cast<PointId>(i)),
                seq.find(static_cast<PointId>(i)))
          << "threads=" << nt << " i=" << i;
    }
  }
}

TEST(UnionFind, ConcurrentFindsDuringUnionsStayConsistent) {
  // Readers racing writers: concurrent find() must always return an element
  // of the caller's component (an ancestor), never corrupt the structure.
  const std::size_t n = 4096;
  UnionFind uf(n);
  ThreadPool pool(4);
  pool.run([&](unsigned tid) {
    if (tid == 0) {
      for (PointId i = 0; i + 1 < n; ++i) uf.union_sets(i, i + 1);
    } else {
      Rng rng(100 + tid);
      for (int step = 0; step < 20000; ++step) {
        const PointId x = static_cast<PointId>(rng.uniform_index(n));
        const PointId r = uf.find(x);
        ASSERT_LE(r, x);  // links always point to smaller indices
      }
    }
  });
  EXPECT_EQ(uf.count_components(), 1u);
  for (PointId i = 0; i < n; ++i) ASSERT_EQ(uf.find(i), 0u);
}

TEST(UnionFind, EmptyStructure) {
  UnionFind uf(0);
  EXPECT_EQ(uf.size(), 0u);
  EXPECT_EQ(uf.count_components(), 0u);
  std::vector<std::uint32_t> ids;
  EXPECT_EQ(uf.component_ids(ids), 0u);
}

}  // namespace
}  // namespace udb
