// Future-work extensions (paper Section VII): intra-node multicore
// µDBSCAN-SM. The decomposition is µDBSCAN-D's; only the cost model changes,
// so exactness must be untouched and the modeled communication cheaper.

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "data/generators.hpp"
#include "dist/mudbscan_sm.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

class MuDbscanSmExactness : public ::testing::TestWithParam<int> {};

TEST_P(MuDbscanSmExactness, MatchesBrute) {
  const int threads = GetParam();
  Dataset ds = gen_galaxy(900, GalaxyConfig{}, 31);
  const DbscanParams prm{1.5, 5};
  const auto truth = brute_dbscan(ds, prm);
  const auto got = mudbscan_sm(ds, prm, threads);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

INSTANTIATE_TEST_SUITE_P(Threads, MuDbscanSmExactness,
                         ::testing::Values(1, 2, 4, 6));

TEST(MuDbscanSm, ReportsStats) {
  Dataset ds = gen_blobs(1000, 3, 4, 60.0, 3.0, 0.1, 37);
  MuDbscanDStats st;
  (void)mudbscan_sm(ds, {2.0, 5}, 4, &st);
  EXPECT_GT(st.total(), 0.0);
  EXPECT_GT(st.queries_performed, 0u);
}

TEST(MuDbscanSm, IntraNodeCostIsCheaperThanInterconnect) {
  // Same data, same ranks, different transport: the shared-memory model must
  // not make the total time larger than the interconnect model by more than
  // noise (its alpha/beta are strictly smaller).
  EXPECT_LT(kIntraNodeCost.alpha, mpi::CostModel{}.alpha);
  EXPECT_LT(kIntraNodeCost.beta, mpi::CostModel{}.beta);
}

}  // namespace
}  // namespace udb
