#include "dist/kd_partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "common/status.hpp"
#include "data/generators.hpp"

namespace udb {
namespace {

struct PartitionOutcome {
  std::vector<std::vector<std::uint64_t>> gids_per_rank;
  std::vector<std::vector<double>> coords_per_rank;
};

PartitionOutcome run_partition(const Dataset& ds, int p) {
  mpi::Runtime rt(p);
  PartitionOutcome out;
  out.gids_per_rank.resize(static_cast<std::size_t>(p));
  out.coords_per_rank.resize(static_cast<std::size_t>(p));
  std::mutex mu;
  rt.run([&](mpi::Comm& c) {
    const std::size_t n = ds.size();
    const std::size_t lo = n * static_cast<std::size_t>(c.rank()) /
                           static_cast<std::size_t>(p);
    const std::size_t hi = n * (static_cast<std::size_t>(c.rank()) + 1) /
                           static_cast<std::size_t>(p);
    std::vector<double> coords(
        ds.raw().begin() + static_cast<std::ptrdiff_t>(lo * ds.dim()),
        ds.raw().begin() + static_cast<std::ptrdiff_t>(hi * ds.dim()));
    std::vector<std::uint64_t> gids(hi - lo);
    for (std::size_t i = 0; i < gids.size(); ++i) gids[i] = lo + i;
    PartitionResult r =
        kd_partition(c, ds.dim(), std::move(coords), std::move(gids));
    std::lock_guard<std::mutex> lock(mu);
    out.gids_per_rank[static_cast<std::size_t>(c.rank())] = std::move(r.gids);
    out.coords_per_rank[static_cast<std::size_t>(c.rank())] =
        std::move(r.coords);
  });
  return out;
}

class KdPartitionRanks : public ::testing::TestWithParam<int> {};

TEST_P(KdPartitionRanks, PointsArePreservedExactlyOnce) {
  const int p = GetParam();
  Dataset ds = gen_blobs(1200, 3, 4, 100.0, 5.0, 0.2, 7);
  const auto out = run_partition(ds, p);

  std::vector<std::uint64_t> all;
  for (const auto& g : out.gids_per_rank)
    all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), ds.size());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST_P(KdPartitionRanks, CoordinatesTravelWithGids) {
  const int p = GetParam();
  Dataset ds = gen_uniform(600, 2, -10.0, 10.0, 9);
  const auto out = run_partition(ds, p);
  for (int r = 0; r < p; ++r) {
    const auto& gids = out.gids_per_rank[static_cast<std::size_t>(r)];
    const auto& coords = out.coords_per_rank[static_cast<std::size_t>(r)];
    ASSERT_EQ(coords.size(), gids.size() * ds.dim());
    for (std::size_t i = 0; i < gids.size(); ++i)
      for (std::size_t k = 0; k < ds.dim(); ++k)
        EXPECT_EQ(coords[i * ds.dim() + k],
                  ds.coord(static_cast<PointId>(gids[i]), k));
  }
}

TEST_P(KdPartitionRanks, LoadIsRoughlyBalanced) {
  const int p = GetParam();
  Dataset ds = gen_blobs(2000, 3, 5, 100.0, 4.0, 0.1, 11);
  const auto out = run_partition(ds, p);
  const double ideal = static_cast<double>(ds.size()) / p;
  for (int r = 0; r < p; ++r) {
    const double sz =
        static_cast<double>(out.gids_per_rank[static_cast<std::size_t>(r)].size());
    EXPECT_GT(sz, ideal * 0.3) << "rank " << r;
    EXPECT_LT(sz, ideal * 3.0) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, KdPartitionRanks,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(KdPartition, SpatiallySeparatesAlongFirstSplit) {
  // With p = 2 and a dominant-spread x axis, rank 0 must end with the lower
  // x half and rank 1 with the upper half (up to sampling error).
  Dataset wide = gen_uniform(2000, 2, 0.0, 1.0, 13);
  std::vector<double> coords = wide.raw();
  for (std::size_t i = 0; i < coords.size(); i += 2) coords[i] *= 100.0;
  Dataset ds(2, std::move(coords));
  const auto out = run_partition(ds, 2);
  double max0 = -1e18, min1 = 1e18;
  for (std::size_t i = 0; i < out.gids_per_rank[0].size(); ++i)
    max0 = std::max(max0, out.coords_per_rank[0][i * 2]);
  for (std::size_t i = 0; i < out.gids_per_rank[1].size(); ++i)
    min1 = std::min(min1, out.coords_per_rank[1][i * 2]);
  EXPECT_LE(max0, min1 + 1e-9);  // disjoint halves along x
}

TEST(KdPartition, HandlesEmptyInitialBlocks) {
  // More ranks than points: some blocks start empty; partitioning must not
  // hang or lose the points.
  Dataset ds(2, {0.0, 0.0, 10.0, 10.0, 20.0, 20.0});
  const auto out = run_partition(ds, 8);
  std::size_t total = 0;
  for (const auto& g : out.gids_per_rank) total += g.size();
  EXPECT_EQ(total, 3u);
}

TEST(KdPartition, RejectsMismatchedBuffers) {
  mpi::Runtime rt(1);
  try {
    rt.run([](mpi::Comm& c) {
      (void)kd_partition(c, 2, {1.0, 2.0, 3.0}, {0});
    });
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(KdPartition, DuplicateCoordinatesSurvive) {
  std::vector<double> coords;
  for (int i = 0; i < 100; ++i) {
    coords.push_back(5.0);
    coords.push_back(5.0);
  }
  Dataset ds(2, std::move(coords));
  const auto out = run_partition(ds, 4);
  std::size_t total = 0;
  for (const auto& g : out.gids_per_rank) total += g.size();
  EXPECT_EQ(total, 100u);
}

}  // namespace
}  // namespace udb
