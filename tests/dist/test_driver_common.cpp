// prepare_local: the shared distributed scaffolding (initial block slice ->
// kd partition -> halo exchange -> combined dataset) must deliver a
// combined local+halo view whose local neighborhoods are complete.

#include "dist/driver_common.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "common/distance.hpp"
#include "data/generators.hpp"

namespace udb {
namespace {

struct Setup {
  std::vector<LocalSetup> per_rank;
};

Setup run_prepare(const Dataset& ds, int p, double eps) {
  mpi::Runtime rt(p);
  Setup out;
  out.per_rank.resize(static_cast<std::size_t>(p));
  std::mutex mu;
  rt.run([&](mpi::Comm& comm) {
    LocalSetup setup = prepare_local(comm, ds, eps);
    std::lock_guard<std::mutex> lock(mu);
    out.per_rank[static_cast<std::size_t>(comm.rank())] = std::move(setup);
  });
  return out;
}

class PrepareLocal : public ::testing::TestWithParam<int> {};

TEST_P(PrepareLocal, LocalPointsPartitionTheInput) {
  const int p = GetParam();
  Dataset ds = gen_blobs(900, 3, 4, 80.0, 4.0, 0.2, 3);
  const auto out = run_prepare(ds, p, 2.0);
  std::vector<std::uint64_t> all;
  for (const auto& s : out.per_rank)
    all.insert(all.end(), s.gids.begin(), s.gids.begin() + static_cast<std::ptrdiff_t>(s.n_local));
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), ds.size());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST_P(PrepareLocal, CombinedViewHasCompleteNeighborhoods) {
  // For every local point, every global eps-neighbor must be present in the
  // combined (local + halo) dataset — the property local clustering
  // correctness rests on.
  const int p = GetParam();
  const double eps = 2.5;
  Dataset ds = gen_blobs(600, 3, 3, 60.0, 4.0, 0.2, 5);
  const auto out = run_prepare(ds, p, eps);
  const double eps2 = eps * eps;

  for (const auto& s : out.per_rank) {
    std::vector<std::uint64_t> present(s.gids.begin(), s.gids.end());
    std::sort(present.begin(), present.end());
    for (std::size_t i = 0; i < s.n_local; ++i) {
      const double* x = s.combined.ptr(static_cast<PointId>(i));
      for (std::size_t g = 0; g < ds.size(); ++g) {
        if (sq_dist(x, ds.ptr(static_cast<PointId>(g)), ds.dim()) < eps2) {
          EXPECT_TRUE(std::binary_search(present.begin(), present.end(),
                                         static_cast<std::uint64_t>(g)))
              << "missing neighbor " << g << " of local gid " << s.gids[i];
        }
      }
    }
  }
}

TEST_P(PrepareLocal, CombinedCoordinatesMatchGids) {
  const int p = GetParam();
  Dataset ds = gen_uniform(400, 2, -5.0, 5.0, 7);
  const auto out = run_prepare(ds, p, 1.0);
  for (const auto& s : out.per_rank) {
    ASSERT_EQ(s.combined.size(), s.gids.size());
    for (std::size_t i = 0; i < s.gids.size(); ++i) {
      for (std::size_t k = 0; k < ds.dim(); ++k) {
        EXPECT_EQ(s.combined.coord(static_cast<PointId>(i), k),
                  ds.coord(static_cast<PointId>(s.gids[i]), k));
      }
    }
  }
}

TEST_P(PrepareLocal, HaloOwnersPointBackToLocalHolders) {
  const int p = GetParam();
  Dataset ds = gen_blobs(500, 3, 3, 50.0, 4.0, 0.2, 9);
  const auto out = run_prepare(ds, p, 2.0);
  // owner_of from the authoritative local partitions.
  std::vector<int> owner_of(ds.size(), -1);
  for (int r = 0; r < p; ++r) {
    const auto& s = out.per_rank[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < s.n_local; ++i)
      owner_of[s.gids[i]] = r;
  }
  for (int r = 0; r < p; ++r) {
    const auto& s = out.per_rank[static_cast<std::size_t>(r)];
    for (std::size_t h = 0; h < s.halo_owner.size(); ++h) {
      const std::uint64_t gid = s.gids[s.n_local + h];
      EXPECT_EQ(s.halo_owner[h], owner_of[gid]);
    }
  }
}

TEST_P(PrepareLocal, PhaseTimesAreNonNegative) {
  const int p = GetParam();
  Dataset ds = gen_uniform(300, 2, 0.0, 10.0, 11);
  const auto out = run_prepare(ds, p, 1.0);
  for (const auto& s : out.per_rank) {
    EXPECT_GE(s.t_partition, 0.0);
    EXPECT_GE(s.t_halo, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PrepareLocal, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace udb
