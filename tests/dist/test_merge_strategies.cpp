// The two global-resolution strategies of the merge (all-gathered pairs vs
// the paper's distributed union-find, dist/merge.hpp) must produce
// *identical* labels — the canonical root of a component is its minimum
// representative gid under both.

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "data/generators.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

struct StratCase {
  const char* tag;
  std::size_t n;
  double eps;
  std::uint32_t min_pts;
  int ranks;
  std::uint64_t seed;
};

void PrintTo(const StratCase& c, std::ostream* os) {
  *os << c.tag << "_p" << c.ranks << "_s" << c.seed;
}

Dataset make_dataset(const StratCase& c) {
  const std::string tag = c.tag;
  if (tag == "blobs") return gen_blobs(c.n, 3, 5, 100.0, 3.0, 0.15, c.seed);
  if (tag == "galaxy") {
    GalaxyConfig cfg;
    cfg.halos = 8;
    cfg.box = 150.0;
    return gen_galaxy(c.n, cfg, c.seed);
  }
  if (tag == "spanning") {
    std::vector<double> coords;
    for (std::size_t i = 0; i < c.n; ++i) {
      coords.push_back(static_cast<double>(i) * 0.05);
      coords.push_back(0.0);
      coords.push_back(0.0);
    }
    return Dataset(3, std::move(coords));
  }
  throw std::logic_error("unknown tag");
}

class MergeStrategies : public ::testing::TestWithParam<StratCase> {};

TEST_P(MergeStrategies, DistributedUfIsExact) {
  const auto& c = GetParam();
  Dataset ds = make_dataset(c);
  const DbscanParams prm{c.eps, c.min_pts};
  const auto truth = brute_dbscan(ds, prm);
  const auto got = mudbscan_d(ds, prm, c.ranks, nullptr, {}, {},
                              MergeStrategy::DistributedUnionFind);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST_P(MergeStrategies, StrategiesProduceIdenticalLabels) {
  const auto& c = GetParam();
  Dataset ds = make_dataset(c);
  const DbscanParams prm{c.eps, c.min_pts};
  const auto ag = mudbscan_d(ds, prm, c.ranks, nullptr, {}, {},
                             MergeStrategy::AllGatherPairs);
  const auto duf = mudbscan_d(ds, prm, c.ranks, nullptr, {}, {},
                              MergeStrategy::DistributedUnionFind);
  // Strict equality of raw labels, not merely the same partition: both
  // strategies canonicalize the root to the minimum representative gid.
  EXPECT_EQ(ag.label, duf.label);
  EXPECT_EQ(ag.is_core, duf.is_core);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeStrategies,
    ::testing::Values(StratCase{"blobs", 600, 2.0, 5, 2, 1},
                      StratCase{"blobs", 600, 2.0, 5, 4, 2},
                      StratCase{"blobs", 600, 2.0, 5, 7, 3},
                      StratCase{"galaxy", 800, 1.5, 5, 4, 4},
                      StratCase{"galaxy", 800, 4.0, 6, 8, 5},
                      StratCase{"spanning", 400, 0.11, 3, 4, 6},
                      StratCase{"spanning", 400, 0.11, 3, 8, 7}));

TEST(MergeStrategies, DistributedUfReportsRounds) {
  Dataset ds = gen_galaxy(800, GalaxyConfig{}, 9);
  MuDbscanDStats st;
  (void)mudbscan_d(ds, {1.5, 5}, 4, &st, {}, {},
                   MergeStrategy::DistributedUnionFind);
  EXPECT_GT(st.union_pairs + st.cross_edges, 0u);
}

TEST(MergeStrategies, SingleRankTrivial) {
  Dataset ds = gen_blobs(300, 2, 3, 40.0, 2.0, 0.1, 11);
  const auto a = mudbscan_d(ds, {1.5, 5}, 1, nullptr, {}, {},
                            MergeStrategy::DistributedUnionFind);
  const auto b = mudbscan_d(ds, {1.5, 5}, 1);
  EXPECT_EQ(a.label, b.label);
}

}  // namespace
}  // namespace udb
