#include "dist/halo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "common/distance.hpp"
#include "data/generators.hpp"
#include "dist/kd_partition.hpp"

namespace udb {
namespace {

struct HaloOutcome {
  std::vector<std::vector<std::uint64_t>> local_gids;
  std::vector<std::vector<std::uint64_t>> halo_gids;
  std::vector<std::vector<int>> halo_owner;
};

HaloOutcome run_halo(const Dataset& ds, int p, double eps) {
  mpi::Runtime rt(p);
  HaloOutcome out;
  out.local_gids.resize(static_cast<std::size_t>(p));
  out.halo_gids.resize(static_cast<std::size_t>(p));
  out.halo_owner.resize(static_cast<std::size_t>(p));
  std::mutex mu;
  rt.run([&](mpi::Comm& c) {
    const std::size_t n = ds.size();
    const std::size_t lo = n * static_cast<std::size_t>(c.rank()) /
                           static_cast<std::size_t>(p);
    const std::size_t hi = n * (static_cast<std::size_t>(c.rank()) + 1) /
                           static_cast<std::size_t>(p);
    std::vector<double> coords(
        ds.raw().begin() + static_cast<std::ptrdiff_t>(lo * ds.dim()),
        ds.raw().begin() + static_cast<std::ptrdiff_t>(hi * ds.dim()));
    std::vector<std::uint64_t> gids(hi - lo);
    for (std::size_t i = 0; i < gids.size(); ++i) gids[i] = lo + i;
    PartitionResult part =
        kd_partition(c, ds.dim(), std::move(coords), std::move(gids));
    HaloResult halo = exchange_halo(c, ds.dim(), part.coords, part.gids, eps);
    std::lock_guard<std::mutex> lock(mu);
    out.local_gids[static_cast<std::size_t>(c.rank())] = std::move(part.gids);
    out.halo_gids[static_cast<std::size_t>(c.rank())] = std::move(halo.gids);
    out.halo_owner[static_cast<std::size_t>(c.rank())] = std::move(halo.owner);
  });
  return out;
}

class HaloRanks : public ::testing::TestWithParam<int> {};

TEST_P(HaloRanks, HaloIsComplete) {
  // Completeness: for every pair (x local to rank r, y local to rank s != r)
  // with dist(x, y) < eps, y must appear in r's halo.
  const int p = GetParam();
  const double eps = 2.0;
  Dataset ds = gen_blobs(800, 3, 4, 60.0, 4.0, 0.2, 17);
  const auto out = run_halo(ds, p, eps);

  std::vector<int> owner_of(ds.size(), -1);
  for (int r = 0; r < p; ++r)
    for (std::uint64_t g : out.local_gids[static_cast<std::size_t>(r)])
      owner_of[g] = r;

  const double eps2 = eps * eps;
  for (int r = 0; r < p; ++r) {
    std::vector<std::uint64_t> halo =
        out.halo_gids[static_cast<std::size_t>(r)];
    std::sort(halo.begin(), halo.end());
    for (std::uint64_t gx : out.local_gids[static_cast<std::size_t>(r)]) {
      for (std::size_t gy = 0; gy < ds.size(); ++gy) {
        if (owner_of[gy] == r) continue;
        if (sq_dist(ds.ptr(static_cast<PointId>(gx)),
                    ds.ptr(static_cast<PointId>(gy)), ds.dim()) < eps2) {
          EXPECT_TRUE(std::binary_search(halo.begin(), halo.end(), gy))
              << "rank " << r << " missing halo point " << gy;
        }
      }
    }
  }
}

TEST_P(HaloRanks, OwnersAreCorrect) {
  const int p = GetParam();
  Dataset ds = gen_blobs(600, 2, 3, 40.0, 3.0, 0.2, 19);
  const auto out = run_halo(ds, p, 1.5);

  std::vector<int> owner_of(ds.size(), -1);
  for (int r = 0; r < p; ++r)
    for (std::uint64_t g : out.local_gids[static_cast<std::size_t>(r)])
      owner_of[g] = r;

  for (int r = 0; r < p; ++r) {
    const auto& gids = out.halo_gids[static_cast<std::size_t>(r)];
    const auto& owners = out.halo_owner[static_cast<std::size_t>(r)];
    ASSERT_EQ(gids.size(), owners.size());
    for (std::size_t i = 0; i < gids.size(); ++i) {
      EXPECT_EQ(owners[i], owner_of[gids[i]]);
      EXPECT_NE(owners[i], r) << "own point in own halo";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, HaloRanks, ::testing::Values(2, 3, 4, 8));

TEST(Halo, SingleRankHasEmptyHalo) {
  Dataset ds = gen_uniform(100, 2, 0.0, 10.0, 21);
  const auto out = run_halo(ds, 1, 1.0);
  EXPECT_TRUE(out.halo_gids[0].empty());
}

TEST(Halo, EmptyRanksAreHarmless) {
  Dataset ds(2, {0.0, 0.0, 0.1, 0.1});  // 2 points, 4 ranks
  const auto out = run_halo(ds, 4, 1.0);
  std::size_t total_local = 0;
  for (const auto& g : out.local_gids) total_local += g.size();
  EXPECT_EQ(total_local, 2u);
}

}  // namespace
}  // namespace udb
