// End-to-end distributed exactness: µDBSCAN-D, PDSDBSCAN-D and the
// HPDBSCAN-like baseline must all reproduce the brute-force DBSCAN clustering
// for any rank count — the distributed analog of Theorem 1 (Section V).

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "core/mudbscan.hpp"
#include "data/generators.hpp"
#include "dist/hpdbscan_d.hpp"
#include "dist/mudbscan_d.hpp"
#include "dist/pdsdbscan_d.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

struct DistCase {
  const char* tag;
  std::size_t n;
  double eps;
  std::uint32_t min_pts;
  int ranks;
  std::uint64_t seed;
};

void PrintTo(const DistCase& c, std::ostream* os) {
  *os << c.tag << "_p" << c.ranks << "_s" << c.seed;
}

Dataset make_dataset(const DistCase& c) {
  const std::string tag = c.tag;
  if (tag == "blobs") return gen_blobs(c.n, 3, 5, 100.0, 3.0, 0.15, c.seed);
  if (tag == "galaxy") {
    GalaxyConfig cfg;
    cfg.halos = 8;
    cfg.box = 150.0;
    return gen_galaxy(c.n, cfg, c.seed);
  }
  if (tag == "roadnet") {
    RoadnetConfig cfg;
    cfg.waypoints = 50;
    return gen_roadnet(c.n, cfg, c.seed);
  }
  if (tag == "moons") return gen_two_moons(c.n, 0.05, c.seed);
  if (tag == "spanning") {
    // One long thin cluster guaranteed to span every partition: the
    // stress case for cross-rank merging.
    std::vector<double> coords;
    for (std::size_t i = 0; i < c.n; ++i) {
      coords.push_back(static_cast<double>(i) * 0.05);
      coords.push_back(0.0);
      coords.push_back(0.0);
    }
    return Dataset(3, std::move(coords));
  }
  throw std::logic_error("unknown tag");
}

class DistributedExactness : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedExactness, MuDbscanDMatchesBrute) {
  const auto& c = GetParam();
  Dataset ds = make_dataset(c);
  const DbscanParams prm{c.eps, c.min_pts};
  const auto truth = brute_dbscan(ds, prm);
  MuDbscanDStats st;
  const auto got = mudbscan_d(ds, prm, c.ranks, &st);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  if (c.ranks > 1) {
    EXPECT_GT(st.halo_points_total, 0u);
  }
}

TEST_P(DistributedExactness, PdsDbscanDMatchesBrute) {
  const auto& c = GetParam();
  Dataset ds = make_dataset(c);
  const DbscanParams prm{c.eps, c.min_pts};
  const auto truth = brute_dbscan(ds, prm);
  const auto got = pdsdbscan_d(ds, prm, c.ranks);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST_P(DistributedExactness, HpdbscanDMatchesBrute) {
  const auto& c = GetParam();
  Dataset ds = make_dataset(c);
  const DbscanParams prm{c.eps, c.min_pts};
  const auto truth = brute_dbscan(ds, prm);
  const auto got = hpdbscan_d(ds, prm, c.ranks);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedExactness,
    ::testing::Values(DistCase{"blobs", 700, 2.0, 5, 1, 1},
                      DistCase{"blobs", 700, 2.0, 5, 2, 2},
                      DistCase{"blobs", 700, 2.0, 5, 3, 3},
                      DistCase{"blobs", 700, 2.0, 5, 4, 4},
                      DistCase{"blobs", 700, 2.0, 5, 8, 5},
                      DistCase{"galaxy", 800, 1.5, 5, 4, 6},
                      DistCase{"galaxy", 800, 4.0, 6, 7, 7},
                      DistCase{"roadnet", 600, 1.0, 4, 4, 8},
                      DistCase{"moons", 600, 0.12, 5, 4, 9},
                      DistCase{"spanning", 400, 0.11, 3, 4, 10},
                      DistCase{"spanning", 400, 0.11, 3, 7, 11},
                      DistCase{"blobs", 300, 0.3, 3, 4, 12},
                      DistCase{"blobs", 300, 30.0, 10, 4, 13}));

TEST(Distributed, MuDbscanDDeterministicAcrossRuns) {
  Dataset ds = gen_blobs(500, 3, 4, 80.0, 3.0, 0.2, 41);
  const DbscanParams prm{2.5, 5};
  const auto a = mudbscan_d(ds, prm, 4);
  const auto b = mudbscan_d(ds, prm, 4);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.is_core, b.is_core);
}

TEST(Distributed, MuDbscanDMatchesSequentialMuDbscan) {
  Dataset ds = gen_galaxy(900, GalaxyConfig{}, 43);
  const DbscanParams prm{1.5, 5};
  const auto seq = mu_dbscan(ds, prm);
  const auto par = mudbscan_d(ds, prm, 6);
  const auto rep = compare_exact(seq, par);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST(Distributed, MoreRanksThanPoints) {
  Dataset ds(2, {0.0, 0.0, 0.1, 0.1, 0.2, 0.2});
  const auto truth = brute_dbscan(ds, {0.5, 2});
  const auto got = mudbscan_d(ds, {0.5, 2}, 8);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST(Distributed, AllNoiseDataset) {
  Dataset ds = gen_uniform(200, 3, 0.0, 1000.0, 47);
  const auto got = mudbscan_d(ds, {0.5, 5}, 4);
  EXPECT_EQ(got.num_noise(), 200u);
  EXPECT_EQ(got.num_clusters(), 0u);
}

TEST(Distributed, StatsArePopulated) {
  Dataset ds = gen_blobs(800, 3, 4, 60.0, 3.0, 0.1, 53);
  MuDbscanDStats st;
  (void)mudbscan_d(ds, {2.0, 5}, 4, &st);
  EXPECT_GT(st.t_tree, 0.0);
  EXPECT_GT(st.t_cluster, 0.0);
  EXPECT_GE(st.t_merge, 0.0);
  EXPECT_GT(st.total(), 0.0);
  EXPECT_GT(st.wall_seconds, 0.0);
  EXPECT_GT(st.queries_performed, 0u);
}

TEST(Distributed, VirtualMakespanShrinksWithRanks) {
  // The virtual-time model must show parallel benefit for the local compute
  // phases: per-rank clustering time at p=8 should be well below p=1.
  Dataset ds = gen_galaxy(4000, GalaxyConfig{}, 59);
  const DbscanParams prm{1.2, 5};
  MuDbscanDStats s1, s8;
  (void)mudbscan_d(ds, prm, 1, &s1);
  (void)mudbscan_d(ds, prm, 8, &s8);
  EXPECT_LT(s8.t_cluster + s8.t_tree, (s1.t_cluster + s1.t_tree) * 0.8);
}

}  // namespace
}  // namespace udb
