// Fault-tolerant µDBSCAN-D recovery tests: a rank crash injected at each
// pipeline phase must still produce the exact DBSCAN clustering (same core
// set, core partition, and noise set as brute force), on several datasets,
// with the recovery path the fault model promises (checkpointed recovery for
// post-partition crashes, full restart for pre-partition crashes).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/brute_dbscan.hpp"
#include "data/generators.hpp"
#include "dist/ft_mudbscan_d.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

struct Scenario {
  std::string name;
  Dataset data;
  DbscanParams params;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"blobs", gen_blobs(700, 2, 5, 100.0, 1.5, 0.05, 1), {2.5, 5}});
  out.push_back({"moons", gen_two_moons(600, 0.04, 2), {0.08, 5}});
  out.push_back({"galaxy", gen_galaxy(800, {}, 3), {4.0, 6}});
  return out;
}

FtConfig crash_cfg(int rank, const char* phase) {
  FtConfig cfg;
  cfg.plan.seed = 42;
  mpi::CrashSpec crash;
  crash.rank = rank;
  crash.at_point = phase;
  cfg.plan.crashes.push_back(crash);
  return cfg;
}

TEST(FtRecovery, FaultFreeRunIsExactInOneAttempt) {
  for (const Scenario& s : scenarios()) {
    const ClusteringResult want = brute_dbscan(s.data, s.params);
    FtStats stats;
    const ClusteringResult got =
        mudbscan_d_ft(s.data, s.params, 4, {}, &stats);
    const ExactnessReport rep = compare_exact(want, got);
    EXPECT_TRUE(rep.exact()) << s.name << ": " << rep.detail;
    EXPECT_EQ(stats.attempts, 1);
    EXPECT_EQ(stats.survivor_count, 4);
    EXPECT_TRUE(stats.crashed_ranks.empty());
    EXPECT_GT(stats.vtime_final_attempt, 0.0);
  }
}

TEST(FtRecovery, SingleRankCrashInEachPhaseStaysExact) {
  const std::vector<const char*> phases{kFtPointPartition, kFtPointHalo,
                                        kFtPointLocal, kFtPointMerge};
  for (const Scenario& s : scenarios()) {
    const ClusteringResult want = brute_dbscan(s.data, s.params);
    for (const char* phase : phases) {
      FtStats stats;
      const ClusteringResult got =
          mudbscan_d_ft(s.data, s.params, 4, crash_cfg(1, phase), &stats);
      const ExactnessReport rep = compare_exact(want, got);
      EXPECT_TRUE(rep.exact())
          << s.name << " crash@" << phase << ": " << rep.detail;
      EXPECT_EQ(stats.attempts, 2) << s.name << " crash@" << phase;
      ASSERT_EQ(stats.crashed_ranks.size(), 1u);
      EXPECT_EQ(stats.crashed_ranks[0], 1);
      EXPECT_EQ(stats.crash_phases[0], phase);
      EXPECT_EQ(stats.survivor_count, 3);
      // Pre-partition death loses the block assignment: full restart. Any
      // later death recovers from checkpoints.
      EXPECT_EQ(stats.full_restarts, phase == std::string(kFtPointPartition))
          << s.name << " crash@" << phase;
      EXPECT_EQ(stats.faults.crashes, 1u);
      // Recovery overhead is reported in virtual time: the total across
      // attempts strictly exceeds the successful attempt.
      EXPECT_GT(stats.vtime_total, stats.vtime_final_attempt);
      EXPECT_GT(stats.checkpoint_bytes, 0u);
    }
  }
}

TEST(FtRecovery, TwoRankCrashesRecover) {
  const Dataset data = gen_blobs(900, 2, 5, 100.0, 1.5, 0.05, 7);
  const DbscanParams params{2.5, 5};
  const ClusteringResult want = brute_dbscan(data, params);

  FtConfig cfg;
  cfg.plan.seed = 5;
  mpi::CrashSpec a;
  a.rank = 1;
  a.at_point = kFtPointHalo;
  mpi::CrashSpec b;
  b.rank = 3;
  b.at_point = kFtPointLocal;
  cfg.plan.crashes = {a, b};

  FtStats stats;
  const ClusteringResult got = mudbscan_d_ft(data, params, 4, cfg, &stats);
  const ExactnessReport rep = compare_exact(want, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  EXPECT_EQ(stats.crashed_ranks.size(), 2u);
  EXPECT_EQ(stats.survivor_count, 2);
  EXPECT_GE(stats.attempts, 2);
}

TEST(FtRecovery, CrashOnTwoRanksOnlyStillProducesResult) {
  const Dataset data = gen_blobs(400, 2, 3, 80.0, 1.5, 0.05, 9);
  const DbscanParams params{2.5, 5};
  const ClusteringResult want = brute_dbscan(data, params);
  FtStats stats;
  const ClusteringResult got = mudbscan_d_ft(
      data, params, 2, crash_cfg(0, kFtPointLocal), &stats);
  const ExactnessReport rep = compare_exact(want, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  EXPECT_EQ(stats.survivor_count, 1);
}

TEST(FtRecovery, ReliableLossyTransportStaysExactWithoutRestart) {
  const Dataset data = gen_blobs(700, 2, 5, 100.0, 1.5, 0.05, 1);
  const DbscanParams params{2.5, 5};
  const ClusteringResult want = brute_dbscan(data, params);

  FtConfig cfg;
  cfg.plan.seed = 13;
  cfg.plan.reliable = true;
  cfg.plan.msg.drop_rate = 0.1;
  cfg.plan.msg.corrupt_rate = 0.05;
  cfg.plan.msg.dup_rate = 0.05;

  FtStats stats;
  const ClusteringResult got = mudbscan_d_ft(data, params, 4, cfg, &stats);
  const ExactnessReport rep = compare_exact(want, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_GT(stats.faults.retries, 0u);
}

TEST(FtRecovery, CrashedRanksNeverWriteStaleResults) {
  // The adopter absorbs the dead rank's whole block, so every global id must
  // be labeled by the final attempt (no leftovers from the aborted one).
  const Dataset data = gen_two_moons(500, 0.04, 11);
  const DbscanParams params{0.08, 5};
  const ClusteringResult want = brute_dbscan(data, params);
  FtStats stats;
  const ClusteringResult got = mudbscan_d_ft(
      data, params, 3, crash_cfg(2, kFtPointMerge), &stats);
  ASSERT_EQ(got.label.size(), data.size());
  const ExactnessReport rep = compare_exact(want, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST(FtRecovery, AllRanksCrashingThrows) {
  const Dataset data = gen_blobs(200, 2, 2, 50.0, 1.5, 0.05, 4);
  const DbscanParams params{2.5, 5};
  FtConfig cfg;
  for (int r = 0; r < 2; ++r) {
    mpi::CrashSpec crash;
    crash.rank = r;
    crash.at_point = kFtPointHalo;
    cfg.plan.crashes.push_back(crash);
  }
  EXPECT_THROW((void)mudbscan_d_ft(data, params, 2, cfg), std::runtime_error);
}

TEST(FtRecovery, RejectsBadRankCount) {
  const Dataset data = gen_blobs(100, 2, 2, 50.0, 1.5, 0.05, 4);
  EXPECT_THROW((void)mudbscan_d_ft(data, {2.5, 5}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace udb
