// Cross-cutting sweep: every named dataset analog, at test scale, must
// produce identical clusterings from sequential µDBSCAN and µDBSCAN-D —
// i.e. the paper's exactness holds on exactly the data profiles the benches
// measure (galaxy, road network, high-dimensional, dense and sparse).

#include <gtest/gtest.h>

#include "baselines/brute_dbscan.hpp"
#include "core/mudbscan.hpp"
#include "data/named.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/exactness.hpp"

namespace udb {
namespace {

class NamedDatasetExactness : public ::testing::TestWithParam<std::string> {};

TEST_P(NamedDatasetExactness, MuDbscanMatchesBrute) {
  // Scale chosen so brute force (O(n^2)) stays test-friendly.
  NamedDataset nd = make_named_dataset(GetParam(), 0.03);
  const auto truth = brute_dbscan(nd.data, nd.params);
  const auto got = mu_dbscan(nd.data, nd.params);
  const auto rep = compare_exact(truth, got);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

TEST_P(NamedDatasetExactness, DistributedMatchesSequential) {
  NamedDataset nd = make_named_dataset(GetParam(), 0.05);
  const auto seq = mu_dbscan(nd.data, nd.params);
  const auto par = mudbscan_d(nd.data, nd.params, 5);
  const auto rep = compare_exact(seq, par);
  EXPECT_TRUE(rep.exact()) << rep.detail;
}

INSTANTIATE_TEST_SUITE_P(Registry, NamedDatasetExactness,
                         ::testing::Values("3DSRN", "DGB", "HHP", "MPAGB",
                                           "FOF", "MPAGD", "KDDB14",
                                           "KDDB24", "FOF28M14D",
                                           "MPAGD100M"));

}  // namespace
}  // namespace udb
