// Direct tests of the merge protocol (dist/merge.cpp), driving
// merge_local_clusterings with hand-built local states so that every
// protocol path is exercised deliberately:
//   * core-core union pairs across ranks,
//   * border adoption at the owner (incoming core edge),
//   * border adoption via reply (outgoing non-core edge),
//   * unanchored local components adopting a remote cluster identity,
//   * noise that stays noise.

#include "dist/merge.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "mpi/minimpi.hpp"

namespace udb {
namespace {

// Harness: a 1-D world split between two ranks at x = 0. Each rank gets its
// own local points plus the other's points within eps as halo, and full
// control over core/assigned/union state.
struct RankState {
  std::vector<double> local;             // local coordinates (1-D)
  std::vector<std::uint64_t> local_gids;
  std::vector<double> halo;              // halo coordinates
  std::vector<std::uint64_t> halo_gids;
  std::vector<std::uint8_t> core;        // over local+halo
  std::vector<std::uint8_t> assigned;    // over local+halo
  std::vector<std::pair<PointId, PointId>> unions;  // applied before merge
};

struct MergeOutcome {
  std::vector<std::int64_t> label[2];
  std::vector<std::uint8_t> core[2];
};

MergeOutcome run_merge(const RankState states[2], double eps) {
  mpi::Runtime rt(2);
  MergeOutcome outcome;
  std::mutex mu;
  rt.run([&](mpi::Comm& comm) {
    const RankState& st = states[comm.rank()];
    const std::size_t n_local = st.local.size();
    const std::size_t n_total = n_local + st.halo.size();

    std::vector<double> coords = st.local;
    coords.insert(coords.end(), st.halo.begin(), st.halo.end());
    std::vector<std::uint64_t> gids = st.local_gids;
    gids.insert(gids.end(), st.halo_gids.begin(), st.halo_gids.end());
    std::vector<int> halo_owner(st.halo.size(), 1 - comm.rank());

    // Rank bounding boxes from the local points.
    std::vector<Box> boxes;
    for (int r = 0; r < 2; ++r) {
      Box b(1);
      for (double x : states[r].local)
        b.expand(std::span<const double>(&x, 1));
      boxes.push_back(std::move(b));
    }

    UnionFind uf(n_total);
    for (const auto& [a, b] : st.unions) uf.union_sets(a, b);
    std::vector<std::uint8_t> core = st.core;
    std::vector<std::uint8_t> assigned = st.assigned;

    DistClustering local = merge_local_clusterings(
        comm, 1, eps, coords, n_local, gids, halo_owner, boxes, uf, core,
        assigned);

    std::lock_guard<std::mutex> lock(mu);
    outcome.label[comm.rank()] = std::move(local.label);
    outcome.core[comm.rank()] = std::move(local.is_core);
  });
  return outcome;
}

TEST(MergeProtocol, CoreCorePairUnifiesAcrossRanks) {
  // Rank 0: core at -0.2 (gid 0); rank 1: core at +0.2 (gid 10); eps = 1.
  // Both see the other as halo; the pair must end with one global label.
  RankState st[2];
  st[0].local = {-0.2};
  st[0].local_gids = {0};
  st[0].halo = {0.2};
  st[0].halo_gids = {10};
  st[0].core = {1, 0};      // own point core; halo unknown locally
  st[0].assigned = {1, 0};
  st[1].local = {0.2};
  st[1].local_gids = {10};
  st[1].halo = {-0.2};
  st[1].halo_gids = {0};
  st[1].core = {1, 0};
  st[1].assigned = {1, 0};

  const auto out = run_merge(st, 1.0);
  ASSERT_EQ(out.label[0].size(), 1u);
  ASSERT_EQ(out.label[1].size(), 1u);
  EXPECT_EQ(out.label[0][0], out.label[1][0]);
  EXPECT_NE(out.label[0][0], kNoise);
}

TEST(MergeProtocol, SeparatedCoresStaySeparate) {
  // Cores farther apart than eps: labels must differ.
  RankState st[2];
  st[0].local = {-2.0};
  st[0].local_gids = {0};
  st[0].core = {1};
  st[0].assigned = {1};
  st[1].local = {2.0};
  st[1].local_gids = {10};
  st[1].core = {1};
  st[1].assigned = {1};

  const auto out = run_merge(st, 1.0);
  EXPECT_NE(out.label[0][0], out.label[1][0]);
}

TEST(MergeProtocol, LocalNoiseBecomesBorderOfRemoteCore) {
  // Rank 0 owns a point it decided is noise (non-core, unassigned); rank 1
  // owns a core within eps. The reply path must upgrade it to border with
  // the remote cluster's label.
  RankState st[2];
  st[0].local = {-0.1};
  st[0].local_gids = {0};
  st[0].halo = {0.3};
  st[0].halo_gids = {10};
  st[0].core = {0, 0};      // local noise; halo core status unknown locally
  st[0].assigned = {0, 0};
  st[1].local = {0.3};
  st[1].local_gids = {10};
  st[1].halo = {-0.1};
  st[1].halo_gids = {0};
  st[1].core = {1, 0};
  st[1].assigned = {1, 0};

  const auto out = run_merge(st, 1.0);
  EXPECT_NE(out.label[0][0], kNoise) << "noise not upgraded to border";
  EXPECT_EQ(out.label[0][0], out.label[1][0]);
  EXPECT_EQ(out.core[0][0], 0);  // still not core
}

TEST(MergeProtocol, TrueNoiseStaysNoise) {
  // Non-core point with a non-core remote neighbor: nothing to adopt.
  RankState st[2];
  st[0].local = {-0.1};
  st[0].local_gids = {0};
  st[0].halo = {0.3};
  st[0].halo_gids = {10};
  st[0].core = {0, 0};
  st[0].assigned = {0, 0};
  st[1].local = {0.3};
  st[1].local_gids = {10};
  st[1].halo = {-0.1};
  st[1].halo_gids = {0};
  st[1].core = {0, 0};
  st[1].assigned = {0, 0};

  const auto out = run_merge(st, 1.0);
  EXPECT_EQ(out.label[0][0], kNoise);
  EXPECT_EQ(out.label[1][0], kNoise);
}

TEST(MergeProtocol, UnanchoredComponentAdoptsRemoteIdentity) {
  // Rank 0 holds two border points united with a halo core (a local
  // component with no local core). Both must adopt the remote cluster's
  // global label.
  RankState st[2];
  st[0].local = {-0.1, -0.2};
  st[0].local_gids = {0, 1};
  st[0].halo = {0.3};
  st[0].halo_gids = {10};
  st[0].core = {0, 0, 1};       // halo point known core locally (e.g. DMC)
  st[0].assigned = {1, 1, 1};
  st[0].unions = {{0, 2}, {1, 2}};  // both borders united with the halo core
  st[1].local = {0.3};
  st[1].local_gids = {10};
  st[1].halo = {-0.1, -0.2};
  st[1].halo_gids = {0, 1};
  st[1].core = {1, 0, 0};
  st[1].assigned = {1, 0, 0};

  const auto out = run_merge(st, 1.0);
  EXPECT_EQ(out.label[0][0], out.label[1][0]);
  EXPECT_EQ(out.label[0][1], out.label[1][0]);
  EXPECT_EQ(out.core[0][0], 0);
  EXPECT_EQ(out.core[1][0], 1);
}

TEST(MergeProtocol, RemoteBorderAdoptedAtOwner) {
  // Rank 1 owns a lone non-core point; rank 0's core sees it within eps.
  // The owner-side adoption path (incoming core edge, non-core y) must
  // attach it to rank 0's cluster.
  RankState st[2];
  st[0].local = {-0.1};
  st[0].local_gids = {0};
  st[0].halo = {0.5};
  st[0].halo_gids = {10};
  st[0].core = {1, 0};
  st[0].assigned = {1, 0};
  st[1].local = {0.5};
  st[1].local_gids = {10};
  st[1].halo = {-0.1};
  st[1].halo_gids = {0};
  st[1].core = {0, 0};  // y undercounted locally: not core at its owner
  st[1].assigned = {0, 0};

  const auto out = run_merge(st, 1.0);
  EXPECT_EQ(out.label[1][0], out.label[0][0]);
  EXPECT_NE(out.label[1][0], kNoise);
}

TEST(MergeProtocol, TransitiveChainAcrossManyPairs) {
  // Chain of cores alternating ownership: gid 0 (r0) - gid 10 (r1) - gid 1
  // (r0) - gid 11 (r1); adjacent distances < eps. All four must share one
  // label through transitive pair resolution.
  RankState st[2];
  st[0].local = {-0.3, 0.5};
  st[0].local_gids = {0, 1};
  st[0].halo = {0.1, 0.9};
  st[0].halo_gids = {10, 11};
  st[0].core = {1, 1, 0, 0};
  st[0].assigned = {1, 1, 0, 0};
  st[1].local = {0.1, 0.9};
  st[1].local_gids = {10, 11};
  st[1].halo = {-0.3, 0.5};
  st[1].halo_gids = {0, 1};
  st[1].core = {1, 1, 0, 0};
  st[1].assigned = {1, 1, 0, 0};

  const auto out = run_merge(st, 0.45);
  EXPECT_EQ(out.label[0][0], out.label[1][0]);
  EXPECT_EQ(out.label[0][1], out.label[1][1]);
  EXPECT_EQ(out.label[0][0], out.label[0][1]);
}

}  // namespace
}  // namespace udb
