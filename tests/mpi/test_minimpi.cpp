#include "mpi/minimpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace udb::mpi {
namespace {

TEST(MiniMpi, RejectsZeroRanks) {
  EXPECT_THROW(Runtime(0), std::invalid_argument);
}

TEST(MiniMpi, SingleRankRuns) {
  Runtime rt(1);
  int ran = 0;
  rt.run([&ran](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ran = 1;
  });
  EXPECT_EQ(ran, 1);
}

TEST(MiniMpi, PointToPointRoundTrip) {
  Runtime rt(2);
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 5, std::vector<int>{1, 2, 3});
      const auto back = c.recv<int>(1, 6);
      EXPECT_EQ(back, (std::vector<int>{6}));
    } else {
      const auto got = c.recv<int>(0, 5);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
      c.send(0, 6, std::vector<int>{6});
    }
  });
}

TEST(MiniMpi, FifoOrderPerSenderAndTag) {
  Runtime rt(2);
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 20; ++i) c.send(1, 3, std::vector<int>{i});
    } else {
      for (int i = 0; i < 20; ++i) {
        const auto m = c.recv<int>(0, 3);
        ASSERT_EQ(m.size(), 1u);
        EXPECT_EQ(m[0], i);
      }
    }
  });
}

TEST(MiniMpi, TagsAreIndependentChannels) {
  Runtime rt(2);
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 10, std::vector<int>{10});
      c.send(1, 20, std::vector<int>{20});
    } else {
      // Receive in the opposite order of sending: tags are independent.
      EXPECT_EQ(c.recv<int>(0, 20)[0], 20);
      EXPECT_EQ(c.recv<int>(0, 10)[0], 10);
    }
  });
}

TEST(MiniMpi, EmptyMessage) {
  Runtime rt(2);
  rt.run([](Comm& c) {
    if (c.rank() == 0)
      c.send(1, 1, std::vector<double>{});
    else
      EXPECT_TRUE(c.recv<double>(0, 1).empty());
  });
}

TEST(MiniMpi, StructMessages) {
  struct Rec {
    std::uint64_t a;
    double b;
  };
  Runtime rt(2);
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 2, std::vector<Rec>{{7, 1.5}, {9, -2.5}});
    } else {
      const auto got = c.recv<Rec>(0, 2);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[1].a, 9u);
      EXPECT_EQ(got[1].b, -2.5);
    }
  });
}

TEST(MiniMpi, BarrierSynchronizes) {
  Runtime rt(4);
  std::atomic<int> before{0}, after{0};
  rt.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    // Every rank passed `before` increment before anyone proceeds.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(MiniMpi, BroadcastFromRoot) {
  Runtime rt(4);
  rt.run([](Comm& c) {
    std::vector<int> data;
    if (c.rank() == 2) data = {42, 43};
    data = c.bcast(2, data);
    EXPECT_EQ(data, (std::vector<int>{42, 43}));
  });
}

TEST(MiniMpi, AllgathervConcatenatesInRankOrder) {
  Runtime rt(3);
  rt.run([](Comm& c) {
    std::vector<int> mine(static_cast<std::size_t>(c.rank()) + 1, c.rank());
    std::vector<std::size_t> counts;
    const auto all = c.allgatherv(mine, &counts);
    EXPECT_EQ(all, (std::vector<int>{0, 1, 1, 2, 2, 2}));
    EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2, 3}));
  });
}

TEST(MiniMpi, AllreduceVariants) {
  Runtime rt(4);
  rt.run([](Comm& c) {
    const double r = static_cast<double>(c.rank());
    EXPECT_DOUBLE_EQ(c.allreduce_min(r), 0.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(r), 3.0);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(r), 6.0);
    EXPECT_EQ(c.allreduce_sum(static_cast<std::int64_t>(c.rank() + 1)), 10);
  });
}

TEST(MiniMpi, AlltoallvPersonalizedExchange) {
  Runtime rt(3);
  rt.run([](Comm& c) {
    std::vector<std::vector<int>> out(3);
    for (int dst = 0; dst < 3; ++dst)
      out[static_cast<std::size_t>(dst)] = {c.rank() * 10 + dst};
    const auto in = c.alltoallv(out);
    for (int src = 0; src < 3; ++src) {
      ASSERT_EQ(in[static_cast<std::size_t>(src)].size(), 1u);
      EXPECT_EQ(in[static_cast<std::size_t>(src)][0], src * 10 + c.rank());
    }
  });
}

TEST(MiniMpi, GroupCollectivesAreScoped) {
  Runtime rt(4);
  rt.run([](Comm& c) {
    const int base = c.rank() < 2 ? 0 : 2;
    const auto all = c.allgatherv(std::vector<int>{c.rank()}, nullptr, base, 2);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0], base);
    EXPECT_EQ(all[1], base + 1);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0, base, 2), 2.0);
  });
}

TEST(MiniMpi, UnevenGroupHistoriesDoNotDesyncLaterCollectives) {
  // Rank 0 leaves the "loop" after one round while ranks 1-2 do an extra
  // group collective; a later full-communicator collective must still match.
  Runtime rt(3);
  rt.run([](Comm& c) {
    if (c.rank() != 0)
      (void)c.allgatherv(std::vector<int>{c.rank()}, nullptr, 1, 2);
    const auto all = c.allgatherv(std::vector<int>{c.rank()});
    EXPECT_EQ(all, (std::vector<int>{0, 1, 2}));
  });
}

TEST(MiniMpi, VirtualTimeAdvancesWithWork) {
  Runtime rt(2);
  rt.run([](Comm& c) {
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
    c.barrier();
    EXPECT_GT(c.vtime(), 0.0);
  });
  EXPECT_GT(rt.makespan(), 0.0);
}

TEST(MiniMpi, ChargeAddsModeledTime) {
  Runtime rt(1);
  rt.run([](Comm& c) {
    const double t0 = c.vtime();
    c.charge(0.5);
    EXPECT_GE(c.vtime() - t0, 0.5);
  });
  EXPECT_GE(rt.makespan(), 0.5);
}

TEST(MiniMpi, MessageCostModelChargesReceiver) {
  CostModel cost;
  cost.alpha = 0.125;  // huge latency so the effect dominates CPU noise
  cost.beta = 0.0;
  Runtime rt(2, cost);
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<int>{1});
    } else {
      (void)c.recv<int>(0, 1);
      EXPECT_GE(c.vtime(), 0.125);
    }
  });
}

TEST(MiniMpi, RankExceptionPropagatesAndUnblocksPeers) {
  Runtime rt(3);
  EXPECT_THROW(rt.run([](Comm& c) {
                 if (c.rank() == 1) throw std::runtime_error("rank died");
                 // Other ranks block on a message that will never come; the
                 // poison must wake them instead of deadlocking the test.
                 (void)c.recv<int>(1, 99);
               }),
               std::runtime_error);
}

TEST(MiniMpi, RuntimeIsReusableAcrossRuns) {
  Runtime rt(2);
  for (int round = 0; round < 3; ++round) {
    rt.run([round](Comm& c) {
      const auto all = c.allgatherv(std::vector<int>{c.rank() + round});
      EXPECT_EQ(all[1], 1 + round);
    });
  }
}

TEST(MiniMpi, ManyRanksStress) {
  Runtime rt(16);
  rt.run([](Comm& c) {
    const auto all = c.allgatherv(std::vector<int>{c.rank()});
    int sum = std::accumulate(all.begin(), all.end(), 0);
    EXPECT_EQ(sum, 120);
    c.barrier();
    std::vector<std::vector<int>> out(16);
    for (int d = 0; d < 16; ++d) out[static_cast<std::size_t>(d)] = {c.rank()};
    const auto in = c.alltoallv(out);
    for (int s = 0; s < 16; ++s)
      EXPECT_EQ(in[static_cast<std::size_t>(s)][0], s);
  });
}

}  // namespace
}  // namespace udb::mpi
