// Fault-injection runtime tests (mpi/fault.hpp + minimpi): determinism of
// the seeded fault stream, the unreliable fault effects (drop / delay /
// duplicate / corrupt), the reliable ack/retry transport, crash injection at
// fault points and vtime thresholds, and — crucially — that no recv can
// block forever once a plan is installed.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "mpi/minimpi.hpp"

namespace udb::mpi {
namespace {

// Sends K one-int messages 0..K-1 on distinct tags over lossy unreliable
// transport; returns the delivery bitmask the receiver observed.
std::vector<bool> run_lossy(Runtime& rt, int k) {
  std::vector<bool> got(static_cast<std::size_t>(k), false);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < k; ++i)
        c.send(1, static_cast<Tag>(i), std::vector<int>{i});
    } else {
      for (int i = 0; i < k; ++i) {
        try {
          const auto m = c.recv<int>(0, static_cast<Tag>(i));
          ASSERT_EQ(m.size(), 1u);
          EXPECT_EQ(m[0], i);
          got[static_cast<std::size_t>(i)] = true;
        } catch (const TimeoutError&) {
          // dropped
        }
      }
    }
  });
  return got;
}

TEST(FaultInjection, DropPatternIsDeterministicUnderSeed) {
  const int k = 40;
  FaultPlan plan;
  plan.seed = 7;
  plan.msg.drop_rate = 0.4;
  plan.recv_timeout_real = 1.0;

  Runtime rt(2);
  rt.set_fault_plan(plan);
  const std::vector<bool> first = run_lossy(rt, k);
  const FaultCounts counts_first = rt.fault_counts();
  const std::vector<bool> second = run_lossy(rt, k);
  const FaultCounts counts_second = rt.fault_counts();

  EXPECT_EQ(first, second);
  EXPECT_EQ(counts_first.dropped, counts_second.dropped);
  EXPECT_EQ(counts_first.timeouts, counts_second.timeouts);
  // With drop_rate 0.4 over 40 messages, both outcomes must occur.
  EXPECT_GT(counts_first.dropped, 0u);
  EXPECT_LT(counts_first.dropped, static_cast<std::uint64_t>(k));

  plan.seed = 8;
  rt.set_fault_plan(plan);
  EXPECT_NE(run_lossy(rt, k), first);
}

TEST(FaultInjection, DelayChargesVirtualLatency) {
  FaultPlan plan;
  plan.msg.delay_rate = 1.0;
  plan.msg.delay_seconds = 0.01;
  Runtime rt(2);
  rt.set_fault_plan(plan);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<int>{42});
    } else {
      (void)c.recv<int>(0, 1);
      EXPECT_GE(c.vtime(), 0.01);
    }
  });
  EXPECT_EQ(rt.fault_counts().delayed, 1u);
}

TEST(FaultInjection, UnreliableDuplicateDeliversTwice) {
  FaultPlan plan;
  plan.msg.dup_rate = 1.0;
  Runtime rt(2);
  rt.set_fault_plan(plan);
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<int>{9});
    } else {
      EXPECT_EQ(c.recv<int>(0, 1), (std::vector<int>{9}));
      EXPECT_EQ(c.recv<int>(0, 1), (std::vector<int>{9}));
    }
  });
  EXPECT_EQ(rt.fault_counts().duplicated, 1u);
}

TEST(FaultInjection, UnreliableCorruptionFlipsExactlyOneByte) {
  FaultPlan plan;
  plan.msg.corrupt_rate = 1.0;
  Runtime rt(2);
  rt.set_fault_plan(plan);
  const std::vector<int> sent{10, 20, 30, 40};
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, sent);
    } else {
      const auto got = c.recv<int>(0, 1);
      ASSERT_EQ(got.size(), sent.size());
      int diff_bytes = 0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        std::uint32_t a = 0, b = 0;
        std::memcpy(&a, &got[i], 4);
        std::memcpy(&b, &sent[i], 4);
        for (std::uint32_t x = a ^ b; x; x >>= 8)
          if (x & 0xFF) ++diff_bytes;
      }
      EXPECT_EQ(diff_bytes, 1);
    }
  });
  EXPECT_EQ(rt.fault_counts().corrupted, 1u);
}

TEST(FaultInjection, ReliableTransportDeliversExactlyOnceIntact) {
  const int k = 50;
  FaultPlan plan;
  plan.seed = 3;
  plan.reliable = true;
  plan.msg.drop_rate = 0.3;
  plan.msg.corrupt_rate = 0.2;
  plan.msg.dup_rate = 0.2;
  Runtime rt(2);
  rt.set_fault_plan(plan);
  double sender_vtime = 0.0;
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < k; ++i) c.send(1, 1, std::vector<int>{i});
      sender_vtime = c.vtime();
    } else {
      for (int i = 0; i < k; ++i)
        EXPECT_EQ(c.recv<int>(0, 1), (std::vector<int>{i}));
    }
  });
  const FaultCounts counts = rt.fault_counts();
  EXPECT_GT(counts.retries, 0u);
  EXPECT_EQ(counts.retries, counts.dropped + counts.corrupted);
  // Every retry waited out at least one initial RTO of sender virtual time.
  EXPECT_GE(sender_vtime,
            static_cast<double>(counts.retries) * plan.rto_initial);
}

TEST(FaultInjection, ReliableTransportExhaustionThrows) {
  FaultPlan plan;
  plan.reliable = true;
  plan.msg.drop_rate = 1.0;  // every transmission lost
  plan.max_retries = 3;
  Runtime rt(2);
  rt.set_fault_plan(plan);
  EXPECT_THROW(rt.run([](Comm& c) {
                 if (c.rank() == 0) c.send(1, 1, std::vector<int>{1});
               }),
               SendFailedError);
}

TEST(FaultInjection, CrashAtFaultPointOccurrence) {
  FaultPlan plan;
  CrashSpec crash;
  crash.rank = 1;
  crash.at_point = "phase";
  crash.occurrence = 2;
  plan.crashes.push_back(crash);
  Runtime rt(3);
  rt.set_fault_plan(plan);
  std::atomic<int> completions{0};
  rt.run([&](Comm& c) {
    c.fault_point("phase");  // occurrence 1: survives
    c.fault_point("phase");  // occurrence 2: rank 1 dies here
    ++completions;
  });
  EXPECT_EQ(rt.crashed_ranks(), (std::vector<int>{1}));
  EXPECT_EQ(rt.fault_counts().crashes, 1u);
  EXPECT_EQ(completions.load(), 2);
}

TEST(FaultInjection, CrashAtVtimeThreshold) {
  FaultPlan plan;
  CrashSpec crash;
  crash.rank = 0;
  crash.at_vtime = 0.5;
  plan.crashes.push_back(crash);
  Runtime rt(1);
  rt.set_fault_plan(plan);
  bool passed_crash = false;
  rt.run([&](Comm& c) {
    c.charge(1.0);  // pushes vtime past the threshold
    passed_crash = true;
  });
  EXPECT_FALSE(passed_crash);
  EXPECT_EQ(rt.crashed_ranks(), (std::vector<int>{0}));
}

TEST(FaultInjection, RecvFromCrashedRankTimesOutInsteadOfHanging) {
  FaultPlan plan;
  plan.recv_timeout_vtime = 0.25;
  CrashSpec crash;
  crash.rank = 1;
  crash.at_point = "start";
  plan.crashes.push_back(crash);
  Runtime rt(2);
  rt.set_fault_plan(plan);
  rt.run([&](Comm& c) {
    c.fault_point("start");  // rank 1 dies before ever sending
    try {
      (void)c.recv<int>(1, 7);
      FAIL() << "recv from crashed rank returned";
    } catch (const TimeoutError& e) {
      EXPECT_EQ(e.src(), 1);
      EXPECT_EQ(e.tag(), 7u);
    }
    // The modeled failure-detection latency was charged to virtual time.
    EXPECT_GE(c.vtime(), 0.25);
  });
  EXPECT_GE(rt.fault_counts().timeouts, 1u);
}

TEST(FaultInjection, RecvRealDeadlineBreaksMutualWait) {
  // Both ranks block receiving from each other and neither ever sends: with
  // a plan installed, the real-time deadline fires instead of deadlocking.
  FaultPlan plan;
  plan.recv_timeout_real = 0.05;
  Runtime rt(2);
  rt.set_fault_plan(plan);
  std::atomic<int> timeouts{0};
  rt.run([&](Comm& c) {
    try {
      (void)c.recv<int>(1 - c.rank(), 3);
    } catch (const TimeoutError&) {
      ++timeouts;
    }
  });
  EXPECT_EQ(timeouts.load(), 2);
}

TEST(FaultInjection, AbortAttemptWakesBlockedRecv) {
  FaultPlan plan;
  plan.recv_timeout_real = 30.0;  // the abort, not the deadline, must wake it
  Runtime rt(2);
  rt.set_fault_plan(plan);
  bool aborted = false;
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      try {
        (void)c.recv<int>(1, 3);  // blocks: rank 1 never sends
      } catch (const AttemptAbortedError&) {
        aborted = true;
      }
    } else {
      c.abort_attempt();
    }
  });
  EXPECT_TRUE(aborted);
}

TEST(FaultInjection, SlowdownInflatesCpuCharges) {
  FaultPlan plan;
  SlowSpec slow;
  slow.rank = 0;
  slow.factor = 1000.0;
  plan.slowdowns.push_back(slow);
  Runtime rt(2);
  rt.set_fault_plan(plan);
  rt.run([](Comm& c) {
    volatile double acc = 0.0;
    for (int i = 0; i < 2000000; ++i) acc = acc + 1e-9;
    (void)c.vtime();
  });
  // Identical work, 1000x multiplier on rank 0: its clock must dominate.
  EXPECT_GT(rt.virtual_times()[0], rt.virtual_times()[1] * 10.0);
}

TEST(FaultInjection, NoPlanKeepsLegacyBehaviour) {
  Runtime rt(2);
  EXPECT_FALSE(rt.fault_mode());
  rt.run([](Comm& c) {
    if (c.rank() == 0)
      c.send(1, 1, std::vector<int>{5});
    else
      EXPECT_EQ(c.recv<int>(0, 1), (std::vector<int>{5}));
  });
  EXPECT_TRUE(rt.crashed_ranks().empty());
  const FaultCounts counts = rt.fault_counts();
  EXPECT_EQ(counts.dropped + counts.crashes + counts.timeouts, 0u);
}

TEST(FaultInjection, CollectivesSurviveReliableLossyTransport) {
  FaultPlan plan;
  plan.seed = 11;
  plan.reliable = true;
  plan.msg.drop_rate = 0.2;
  plan.msg.corrupt_rate = 0.1;
  Runtime rt(4);
  rt.set_fault_plan(plan);
  rt.run([](Comm& c) {
    const auto all = c.allgatherv(std::vector<int>{c.rank()});
    EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(c.allreduce_sum(std::int64_t{1}), 4);
    c.barrier();
  });
  EXPECT_GT(rt.fault_counts().retries, 0u);
}

}  // namespace
}  // namespace udb::mpi
