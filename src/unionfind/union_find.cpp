#include "unionfind/union_find.hpp"

#include <unordered_map>

namespace udb {

std::size_t UnionFind::count_components() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < parent_.size(); ++i)
    if (parent_[i].load(std::memory_order_relaxed) == static_cast<PointId>(i))
      ++count;
  return count;
}

std::size_t UnionFind::component_ids(std::vector<std::uint32_t>& out) {
  out.assign(parent_.size(), 0);
  std::unordered_map<PointId, std::uint32_t> root_to_id;
  root_to_id.reserve(64);
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    const PointId root = find(static_cast<PointId>(i));
    auto [it, inserted] =
        root_to_id.try_emplace(root, static_cast<std::uint32_t>(root_to_id.size()));
    out[i] = it->second;
  }
  return root_to_id.size();
}

}  // namespace udb
