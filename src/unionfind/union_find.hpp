// Disjoint-set (union-find) structure — the clustering backbone of every
// algorithm in this library, following the PDSDBSCAN line of work (Patwary et
// al.): clusters are built by UNION operations instead of the classical
// sequential breadth-first expansion, which is what makes both µDBSCAN's
// post-processing passes and the distributed merge phase possible.
//
// Implementation: union by rank + path halving (Patwary, Blair & Manne's
// experimental study found rank/halving among the fastest combinations).

#pragma once

#include <cstdint>
#include <vector>

#include "common/dataset.hpp"

namespace udb {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<PointId>(i);
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  // Path-halving find: every other node on the path is re-pointed at its
  // grandparent, giving the same amortized bound as full compression with a
  // single pass.
  [[nodiscard]] PointId find(PointId x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Unites the sets of a and b; returns the new root. No-op (returns the
  // common root) if already united.
  PointId union_sets(PointId a, PointId b) noexcept {
    PointId ra = find(a);
    PointId rb = find(b);
    if (ra == rb) return ra;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    return ra;
  }

  [[nodiscard]] bool same(PointId a, PointId b) noexcept {
    return find(a) == find(b);
  }

  // Number of distinct sets among the given members (or all elements).
  [[nodiscard]] std::size_t count_components();

  // Compacts roots into consecutive ids 0..k-1; out[i] is the component id of
  // element i. Returns k.
  std::size_t component_ids(std::vector<std::uint32_t>& out);

 private:
  std::vector<PointId> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace udb
