// Disjoint-set (union-find) structure — the clustering backbone of every
// algorithm in this library, following the PDSDBSCAN line of work (Patwary et
// al.): clusters are built by UNION operations instead of the classical
// sequential breadth-first expansion, which is what makes µDBSCAN's
// post-processing passes, the distributed merge phase, and the thread-parallel
// engine possible.
//
// Implementation: lock-free concurrent union-find over an atomic parent
// array (the CAS-link scheme of Jayanti & Tarjan, also used by Wang et al.'s
// "Theoretically-Efficient and Practical Parallel DBSCAN"):
//   * links always point from the larger root index to the smaller, so every
//     parent chain is strictly decreasing and the final root of a component
//     is its minimum element — the resulting partition AND representatives
//     are deterministic regardless of thread interleaving;
//   * union_sets retries a single CAS on the losing root (lock-free);
//   * find performs path halving with benign CAS shortcuts (thread-safe);
//     the const overload is a pure read walk (wait-free, no compression),
//     usable from const contexts such as result extraction.
// Used single-threaded, the relaxed atomics compile to plain loads/stores,
// so the sequential algorithms keep their previous cost profile.

#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/dataset.hpp"

namespace udb {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i)
      parent_[i].store(static_cast<PointId>(i), std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  // Path-halving find: every other node on the path is re-pointed at its
  // grandparent via CAS. Safe to call concurrently with unions and other
  // finds; a failed CAS just skips one shortcut.
  [[nodiscard]] PointId find(PointId x) noexcept {
    while (true) {
      PointId p = parent_[x].load(std::memory_order_acquire);
      if (p == x) return x;
      const PointId gp = parent_[p].load(std::memory_order_acquire);
      if (gp != p) {
        // Halve: x -> grandparent. gp is an ancestor of x, so the shortcut
        // never changes membership even if parent_[x] moved concurrently.
        parent_[x].compare_exchange_weak(p, gp, std::memory_order_release,
                                         std::memory_order_relaxed);
      }
      x = gp;
    }
  }

  // Read-only find: walks to the root without compressing. Wait-free in the
  // absence of concurrent unions; exact at quiescence (how the engines use
  // it: extraction happens after all union phases joined).
  [[nodiscard]] PointId find(PointId x) const noexcept {
    PointId p = parent_[x].load(std::memory_order_acquire);
    while (p != x) {
      x = p;
      p = parent_[x].load(std::memory_order_acquire);
    }
    return x;
  }

  // Unites the sets of a and b; returns the surviving root (the smaller
  // index). No-op (returns the common root) if already united. Lock-free:
  // concurrent calls linearize on the CAS of the losing root.
  PointId union_sets(PointId a, PointId b) noexcept {
    while (true) {
      a = find(a);
      b = find(b);
      if (a == b) return a;
      if (a > b) std::swap(a, b);  // smaller index stays root
      PointId expected = b;
      if (parent_[b].compare_exchange_strong(expected, a,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire))
        return a;
      // b gained a parent concurrently; retry from the fresh roots.
    }
  }

  [[nodiscard]] bool same(PointId a, PointId b) noexcept {
    return find(a) == find(b);
  }
  [[nodiscard]] bool same(PointId a, PointId b) const noexcept {
    return find(a) == find(b);
  }

  // Number of distinct sets among all elements.
  [[nodiscard]] std::size_t count_components() const;

  // Compacts roots into consecutive ids 0..k-1; out[i] is the component id of
  // element i. Returns k.
  std::size_t component_ids(std::vector<std::uint32_t>& out);

 private:
  std::vector<std::atomic<PointId>> parent_;
};

}  // namespace udb
