// The one canonical text rendering of a classify answer, shared by
// `udbscan --snapshot-in --classify` (offline) and `udbscan_query --classify`
// (served) — CI diffs the two outputs byte-for-byte, so the format lives in
// exactly one place.

#pragma once

#include <string>

#include "serve/model.hpp"

namespace udb::serve {

[[nodiscard]] inline const char* kind_name(PointKind k) {
  switch (k) {
    case PointKind::Core: return "core";
    case PointKind::Border: return "border";
    case PointKind::Noise: return "noise";
  }
  return "unknown";
}

inline constexpr const char* kClassifyCsvHeader =
    "# label,kind,exact_match,would_be_core,neighbors";

[[nodiscard]] inline std::string classify_csv_row(const Classify& c) {
  std::string row = std::to_string(c.label);
  row += ',';
  row += kind_name(c.kind);
  row += c.exact_match ? ",1," : ",0,";
  row += c.would_be_core ? '1' : '0';
  row += ',';
  row += std::to_string(c.neighbors);
  return row;
}

}  // namespace udb::serve
