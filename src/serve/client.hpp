// Client — the typed counterpart of QueryServer: one blocking TCP connection
// to 127.0.0.1:<port>, one request/response frame pair per call. Safe to use
// from one thread at a time (the bench opens one Client per worker thread).
// send_raw() bypasses the codec so tests and the CI smoke job can feed the
// server deliberately garbage frames.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace udb::serve {

class Client {
 public:
  // `timeout_seconds` bounds connect and every subsequent send/recv.
  [[nodiscard]] static StatusOr<Client> connect(std::uint16_t port,
                                                double timeout_seconds = 5.0);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // One v2 frame out, one back. A transport failure comes back as the
  // Status; a server-side error comes back as an OK StatusOr whose Response
  // carries code != kOk (call resp.to_status()). The response envelope must
  // echo the request id — except id 0, the server's "could not attribute"
  // channel (connection shed, corrupt request envelope), which only ever
  // carries an error.
  [[nodiscard]] StatusOr<Response> roundtrip(const Request& req);
  // Same, but with a caller-chosen request id — the retrying client reuses
  // one id across attempts so a retry is recognizably the *same* request.
  // Nonzero trace_id / parent_span_id ride the traced (0xB3) envelope so the
  // server's per-request spans land in the same trace (docs/OBSERVABILITY.md,
  // "Live telemetry"); both 0 sends the byte-identical untraced frame.
  [[nodiscard]] StatusOr<Response> roundtrip_with_id(
      std::uint64_t request_id, const Request& req, std::uint64_t trace_id = 0,
      std::uint64_t parent_span_id = 0);
  [[nodiscard]] std::uint64_t allocate_request_id() noexcept {
    return next_request_id_++;
  }

  // Typed conveniences. These fold the server-side error into the Status, so
  // callers see exactly one failure channel.
  [[nodiscard]] Status ping();
  [[nodiscard]] StatusOr<std::vector<Classify>> classify(
      std::span<const double> coords, std::uint32_t dim);
  [[nodiscard]] StatusOr<std::vector<std::pair<std::uint64_t, double>>>
  neighbors(std::span<const double> q, double radius);
  [[nodiscard]] StatusOr<PointInfo> point_info(std::uint64_t id);
  [[nodiscard]] StatusOr<std::string> stats_json();
  [[nodiscard]] StatusOr<ModelInfo> model_info();
  // Live telemetry: the structured binary report, or one of the rendered
  // text expositions (kJson / kPrometheus) as a string.
  [[nodiscard]] StatusOr<TelemetryReport> telemetry();
  [[nodiscard]] StatusOr<std::string> telemetry_text(TelemetryFormat format);

  // Test hook: ships an arbitrary frame body and returns the server's raw
  // answer (decoded if possible).
  [[nodiscard]] StatusOr<Response> raw_roundtrip(
      std::span<const std::uint8_t> body);

 private:
  explicit Client(Socket s) : sock_(std::move(s)) {}

  Socket sock_;
  std::uint64_t next_request_id_ = 1;  // 0 is reserved for the server
};

}  // namespace udb::serve
