// RetryingClient — the production-facing client wrapper: per-request
// deadlines, exponential backoff with deterministic jitter, automatic
// reconnect, and replica failover (docs/SERVING.md, failure-mode matrix).
//
// Retry safety: every protocol request is read-only against an immutable
// ClusterModel snapshot, so at-least-once delivery is harmless — a retried
// classify returns the same answer. Retries reuse the original request id,
// so a retry is recognizably the *same* request end to end (and shows up
// that way in traces and packet captures).
//
// Retryable failures, and only these:
//   UNAVAILABLE        transport drop / refused connect   -> reconnect+retry
//   DEADLINE_EXCEEDED  socket recv timeout                -> reconnect+retry
//   DATA_LOSS          frame corrupted in either direction-> retry (the CRC
//                      caught it before any wrong answer could surface)
//   RESOURCE_EXHAUSTED server shed the request/connection -> back off, prefer
//                      another replica
// Everything else (INVALID_ARGUMENT, NOT_FOUND, UNIMPLEMENTED, ...) is the
// caller's answer and is returned on the first attempt.

#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace udb::serve {

struct RetryPolicy {
  int max_attempts = 4;                   // total tries, not re-tries
  double initial_backoff_seconds = 0.05;  // doubles per retry ...
  double max_backoff_seconds = 2.0;       // ... capped here
  // Deterministic jitter stream: each sleep is scaled by a factor in
  // [0.5, 1.0) drawn from an LCG seeded here, so tests replay exactly.
  std::uint64_t jitter_seed = 1;
  double timeout_seconds = 5.0;  // per-attempt connect/send/recv bound
};

// True for the status codes the policy above may retry.
[[nodiscard]] bool retryable_status(StatusCode code) noexcept;

class RetryingClient {
 public:
  // `ports` are replicas serving the same model snapshot, tried in order
  // starting from the first; on failure the client rotates to the next.
  // With a tracer, every logical request derives a deterministic trace id
  // (from the jitter seed and the request id), records client.attempt /
  // client.backoff spans under it, and ships it on the traced envelope so
  // the server's spans for the same request carry the same id.
  explicit RetryingClient(std::vector<std::uint16_t> ports,
                          RetryPolicy policy = {},
                          obs::MetricsRegistry* metrics = nullptr,
                          obs::Tracer* tracer = nullptr);

  // Core retry loop. A non-retryable server-side error comes back as an OK
  // StatusOr whose Response carries code != kOk, exactly like Client.
  [[nodiscard]] StatusOr<Response> roundtrip(const Request& req);

  // Typed conveniences mirroring Client; one failure channel.
  [[nodiscard]] Status ping();
  [[nodiscard]] StatusOr<std::vector<Classify>> classify(
      std::span<const double> coords, std::uint32_t dim);
  [[nodiscard]] StatusOr<std::vector<std::pair<std::uint64_t, double>>>
  neighbors(std::span<const double> q, double radius);
  [[nodiscard]] StatusOr<PointInfo> point_info(std::uint64_t id);
  [[nodiscard]] StatusOr<std::string> stats_json();
  [[nodiscard]] StatusOr<ModelInfo> model_info();
  [[nodiscard]] StatusOr<TelemetryReport> telemetry();
  [[nodiscard]] StatusOr<std::string> telemetry_text(TelemetryFormat format);

  // The client-side stats document (schema_version 2, tool
  // "udbscan_client"): the shared report schema over this client's metrics
  // registry plus its own rolling windows (requests / errors / retries /
  // failovers and end-to-end request latency, attempts included).
  [[nodiscard]] std::string client_stats_json() const;

  // Observability for tests and the fault harness.
  [[nodiscard]] std::size_t endpoint_index() const noexcept {
    return endpoint_;
  }
  [[nodiscard]] bool connected() const noexcept { return client_.has_value(); }

 private:
  Status ensure_connected();
  void advance_endpoint();
  void backoff_sleep(int retry_number, std::uint64_t trace_id);
  [[nodiscard]] std::uint64_t now_us() const;

  std::vector<std::uint16_t> ports_;
  RetryPolicy policy_;
  obs::MetricsRegistry* metrics_;  // optional, not owned
  obs::Tracer* tracer_;            // optional, not owned
  std::optional<Client> client_;
  std::size_t endpoint_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t jitter_state_;
  obs::SlidingWindow window_;  // per-logical-request rolling stats
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace udb::serve
