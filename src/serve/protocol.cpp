#include "serve/protocol.hpp"

#include <cmath>
#include <cstring>

#include "serve/crc32.hpp"
#include "serve/wire.hpp"

namespace udb::serve {

namespace {

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::kPing) &&
         t <= static_cast<std::uint8_t>(MsgType::kTelemetry);
}

// The v1 generation only ever spoke types 1..6; kTelemetry (7) is v2-only.
// Legacy-frame detection in parse_frame_v2 must use this narrower set so a
// garbage body starting with 7 is refused as an unknown marker (DATA_LOSS),
// not misdiagnosed as a legacy client (UNIMPLEMENTED).
bool known_type_v1(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::kPing) &&
         t <= static_cast<std::uint8_t>(MsgType::kModelInfo);
}

Status malformed(const char* what) {
  return DataLossError(std::string("protocol: malformed frame: ") + what);
}

void encode_telemetry_window(ByteWriter& w, const TelemetryWindow& win) {
  w.f64(win.window_seconds);
  w.u64(win.requests);
  w.u64(win.errors);
  w.u64(win.shed);
  w.f64(win.qps);
  w.f64(win.p50_us);
  w.f64(win.p90_us);
  w.f64(win.p99_us);
  w.f64(win.p999_us);
  w.f64(win.max_us);
}

bool decode_telemetry_window(ByteReader& r, TelemetryWindow& win) {
  if (!r.f64(win.window_seconds) || !r.u64(win.requests) ||
      !r.u64(win.errors) || !r.u64(win.shed) || !r.f64(win.qps) ||
      !r.f64(win.p50_us) || !r.f64(win.p90_us) || !r.f64(win.p99_us) ||
      !r.f64(win.p999_us) || !r.f64(win.max_us))
    return false;
  // Non-finite rates/percentiles cannot be produced by a correct server;
  // treat them as corruption, same policy as coordinates.
  const double doubles[] = {win.window_seconds, win.qps,    win.p50_us,
                            win.p90_us,         win.p99_us, win.p999_us,
                            win.max_us};
  for (double v : doubles)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& req) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(req.type));
  switch (req.type) {
    case MsgType::kClassify:
      w.u32(req.dim == 0
                ? 0
                : static_cast<std::uint32_t>(req.coords.size() / req.dim));
      w.u32(req.dim);
      w.raw(req.coords.data(), req.coords.size() * sizeof(double));
      break;
    case MsgType::kNeighbors:
      w.f64(req.radius);
      w.u32(req.dim);
      w.raw(req.coords.data(), req.coords.size() * sizeof(double));
      break;
    case MsgType::kPointInfo:
      w.u64(req.point_id);
      break;
    case MsgType::kTelemetry:
      w.u8(static_cast<std::uint8_t>(req.telemetry_format));
      break;
    case MsgType::kPing:
    case MsgType::kStats:
    case MsgType::kModelInfo:
      break;
  }
  return w.take();
}

Status decode_request(std::span<const std::uint8_t> body, Request& out) {
  ByteReader r(body);
  std::uint8_t type = 0;
  if (!r.u8(type)) return malformed("empty body");
  if (!known_type(type))
    return malformed("unknown request type");
  out = Request{};
  out.type = static_cast<MsgType>(type);
  switch (out.type) {
    case MsgType::kClassify: {
      std::uint32_t count = 0;
      if (!r.u32(count) || !r.u32(out.dim))
        return malformed("truncated classify header");
      if (count > kMaxBatchPoints)
        return InvalidArgumentError(
            "protocol: classify batch of " + std::to_string(count) +
            " points exceeds the per-request limit of " +
            std::to_string(kMaxBatchPoints));
      if (out.dim == 0) return malformed("classify dim 0");
      if (!r.array(out.coords,
                   static_cast<std::size_t>(count) * out.dim))
        return malformed("truncated classify coordinates");
      break;
    }
    case MsgType::kNeighbors:
      if (!r.f64(out.radius) || !r.u32(out.dim))
        return malformed("truncated neighbors header");
      if (out.dim == 0) return malformed("neighbors dim 0");
      if (!std::isfinite(out.radius))
        return InvalidArgumentError("protocol: non-finite neighbors radius");
      if (!r.array(out.coords, out.dim))
        return malformed("truncated neighbors coordinates");
      break;
    case MsgType::kPointInfo:
      if (!r.u64(out.point_id)) return malformed("truncated point_info id");
      break;
    case MsgType::kTelemetry: {
      std::uint8_t fmt = 0;
      if (!r.u8(fmt)) return malformed("truncated telemetry format");
      if (fmt > static_cast<std::uint8_t>(TelemetryFormat::kPrometheus))
        return InvalidArgumentError("protocol: unknown telemetry format " +
                                    std::to_string(fmt));
      out.telemetry_format = static_cast<TelemetryFormat>(fmt);
      break;
    }
    case MsgType::kPing:
    case MsgType::kStats:
    case MsgType::kModelInfo:
      break;
  }
  if (!r.done()) return malformed("trailing bytes after request");
  for (double v : out.coords)
    if (!std::isfinite(v))
      return InvalidArgumentError("protocol: non-finite query coordinate");
  return Status::Ok();
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(resp.type));
  w.u8(static_cast<std::uint8_t>(resp.code));
  if (resp.code != StatusCode::kOk) {
    w.u32(static_cast<std::uint32_t>(resp.error.size()));
    w.raw(resp.error.data(), resp.error.size());
    return w.take();
  }
  switch (resp.type) {
    case MsgType::kClassify:
      w.u32(static_cast<std::uint32_t>(resp.classify.size()));
      for (const Classify& c : resp.classify) {
        w.i64(c.label);
        w.u8(static_cast<std::uint8_t>(c.kind));
        w.u8(c.exact_match ? 1 : 0);
        w.u8(c.would_be_core ? 1 : 0);
        w.u32(c.neighbors);
      }
      break;
    case MsgType::kNeighbors:
      w.u32(static_cast<std::uint32_t>(resp.neighbors.size()));
      for (const auto& [id, d2] : resp.neighbors) {
        w.u64(id);
        w.f64(d2);
      }
      break;
    case MsgType::kPointInfo:
      w.i64(resp.point.label);
      w.u8(static_cast<std::uint8_t>(resp.point.kind));
      w.u8(resp.point.is_core ? 1 : 0);
      break;
    case MsgType::kStats:
      w.u32(static_cast<std::uint32_t>(resp.json.size()));
      w.raw(resp.json.data(), resp.json.size());
      break;
    case MsgType::kModelInfo:
      w.u64(resp.model.n);
      w.u32(resp.model.dim);
      w.f64(resp.model.eps);
      w.u32(resp.model.min_pts);
      w.u64(resp.model.num_clusters);
      break;
    case MsgType::kTelemetry:
      w.u8(static_cast<std::uint8_t>(resp.telemetry_format));
      if (resp.telemetry_format == TelemetryFormat::kBinary) {
        const TelemetryReport& t = resp.telemetry;
        w.u64(t.uptime_us);
        w.u64(t.inflight);
        w.u64(t.requests_total);
        w.u64(t.errors_total);
        w.u64(t.shed_load_total);
        w.u64(t.shed_connections_total);
        w.u64(t.corrupt_frames_total);
        w.u64(t.idle_disconnects_total);
        w.u64(t.classify_points);
        w.u64(t.classify_performed);
        w.u64(t.classify_avoided_exact);
        for (const TelemetryWindow& win : t.windows)
          encode_telemetry_window(w, win);
      } else {
        w.u32(static_cast<std::uint32_t>(resp.json.size()));
        w.raw(resp.json.data(), resp.json.size());
      }
      break;
    case MsgType::kPing:
      break;
  }
  return w.take();
}

Status decode_response(std::span<const std::uint8_t> body, Response& out) {
  ByteReader r(body);
  std::uint8_t type = 0, code = 0;
  if (!r.u8(type) || !r.u8(code)) return malformed("truncated response head");
  if (!known_type(type)) return malformed("unknown response type");
  if (code > static_cast<std::uint8_t>(StatusCode::kUnimplemented))
    return malformed("unknown response status code");
  out = Response{};
  out.type = static_cast<MsgType>(type);
  out.code = static_cast<StatusCode>(code);
  if (out.code != StatusCode::kOk) {
    std::uint32_t len = 0;
    if (!r.u32(len) || !r.str(out.error, len))
      return malformed("truncated error message");
    if (!r.done()) return malformed("trailing bytes after error");
    return Status::Ok();
  }
  switch (out.type) {
    case MsgType::kClassify: {
      std::uint32_t count = 0;
      if (!r.u32(count)) return malformed("truncated classify count");
      if (count > kMaxBatchPoints) return malformed("absurd classify count");
      out.classify.resize(count);
      for (Classify& c : out.classify) {
        std::uint8_t kind = 0, exact = 0, core = 0;
        if (!r.i64(c.label) || !r.u8(kind) || !r.u8(exact) || !r.u8(core) ||
            !r.u32(c.neighbors))
          return malformed("truncated classify answer");
        if (kind > static_cast<std::uint8_t>(PointKind::Noise) || exact > 1 ||
            core > 1)
          return malformed("classify answer out of range");
        c.kind = static_cast<PointKind>(kind);
        c.exact_match = exact != 0;
        c.would_be_core = core != 0;
      }
      break;
    }
    case MsgType::kNeighbors: {
      std::uint32_t count = 0;
      if (!r.u32(count)) return malformed("truncated neighbor count");
      if (static_cast<std::uint64_t>(count) * 16 > kMaxFrameBytes)
        return malformed("absurd neighbor count");
      out.neighbors.resize(count);
      for (auto& [id, d2] : out.neighbors)
        if (!r.u64(id) || !r.f64(d2))
          return malformed("truncated neighbor entry");
      break;
    }
    case MsgType::kPointInfo: {
      std::uint8_t kind = 0, core = 0;
      if (!r.i64(out.point.label) || !r.u8(kind) || !r.u8(core))
        return malformed("truncated point_info answer");
      if (kind > static_cast<std::uint8_t>(PointKind::Noise) || core > 1)
        return malformed("point_info answer out of range");
      out.point.kind = static_cast<PointKind>(kind);
      out.point.is_core = core != 0;
      break;
    }
    case MsgType::kStats: {
      std::uint32_t len = 0;
      if (!r.u32(len) || !r.str(out.json, len))
        return malformed("truncated stats json");
      break;
    }
    case MsgType::kModelInfo:
      if (!r.u64(out.model.n) || !r.u32(out.model.dim) ||
          !r.f64(out.model.eps) || !r.u32(out.model.min_pts) ||
          !r.u64(out.model.num_clusters))
        return malformed("truncated model info");
      break;
    case MsgType::kTelemetry: {
      std::uint8_t fmt = 0;
      if (!r.u8(fmt)) return malformed("truncated telemetry format");
      if (fmt > static_cast<std::uint8_t>(TelemetryFormat::kPrometheus))
        return malformed("unknown telemetry format");
      out.telemetry_format = static_cast<TelemetryFormat>(fmt);
      if (out.telemetry_format == TelemetryFormat::kBinary) {
        TelemetryReport& t = out.telemetry;
        if (!r.u64(t.uptime_us) || !r.u64(t.inflight) ||
            !r.u64(t.requests_total) || !r.u64(t.errors_total) ||
            !r.u64(t.shed_load_total) || !r.u64(t.shed_connections_total) ||
            !r.u64(t.corrupt_frames_total) ||
            !r.u64(t.idle_disconnects_total) || !r.u64(t.classify_points) ||
            !r.u64(t.classify_performed) ||
            !r.u64(t.classify_avoided_exact))
          return malformed("truncated telemetry totals");
        for (TelemetryWindow& win : t.windows)
          if (!decode_telemetry_window(r, win))
            return malformed("truncated or non-finite telemetry window");
      } else {
        std::uint32_t len = 0;
        if (!r.u32(len) || !r.str(out.json, len))
          return malformed("truncated telemetry text");
      }
      break;
    }
    case MsgType::kPing:
      break;
  }
  if (!r.done()) return malformed("trailing bytes after response");
  return Status::Ok();
}

std::vector<std::uint8_t> frame_v2(std::uint64_t request_id,
                                   std::span<const std::uint8_t> payload,
                                   std::uint64_t trace_id,
                                   std::uint64_t parent_span_id) {
  if (trace_id == 0 && parent_span_id == 0) {
    // Untraced: the original 0xB2 layout, byte for byte.
    std::uint8_t id_bytes[8];
    std::memcpy(id_bytes, &request_id, sizeof id_bytes);
    std::uint32_t crc = crc32(id_bytes, sizeof id_bytes);
    crc = crc32_update(crc, payload.data(), payload.size());

    ByteWriter w;
    w.u8(kProtocolV2Marker);
    w.u64(request_id);
    w.u32(crc);
    w.raw(payload.data(), payload.size());
    return w.take();
  }

  // Traced: CRC covers request_id ++ trace_id ++ parent_span_id ++ payload,
  // so a flipped bit anywhere in the trace context is detected like any
  // other envelope corruption.
  std::uint8_t head[24];
  std::memcpy(head, &request_id, 8);
  std::memcpy(head + 8, &trace_id, 8);
  std::memcpy(head + 16, &parent_span_id, 8);
  std::uint32_t crc = crc32(head, sizeof head);
  crc = crc32_update(crc, payload.data(), payload.size());

  ByteWriter w;
  w.u8(kProtocolV2TracedMarker);
  w.u64(request_id);
  w.u64(trace_id);
  w.u64(parent_span_id);
  w.u32(crc);
  w.raw(payload.data(), payload.size());
  return w.take();
}

Status parse_frame_v2(std::span<const std::uint8_t> body, FrameV2& out) {
  if (body.empty()) return DataLossError("protocol: empty frame");
  if (body[0] != kProtocolV2Marker &&
      body[0] != kProtocolV2TracedMarker) {
    if (known_type_v1(body[0]))
      return UnimplementedError(
          "protocol: v1 frame from a legacy client — this server speaks "
          "protocol v2 (versioned, CRC-framed); upgrade the client");
    return DataLossError("protocol: unknown protocol marker byte " +
                         std::to_string(body[0]));
  }
  const bool traced = body[0] == kProtocolV2TracedMarker;
  const std::size_t header_bytes =
      traced ? kFrameV2TracedHeaderBytes : kFrameV2HeaderBytes;
  if (body.size() < header_bytes)
    return DataLossError("protocol: truncated v2 envelope (" +
                         std::to_string(body.size()) + " bytes)");

  ByteReader r(body);
  std::uint8_t marker = 0;
  std::uint64_t request_id = 0, trace_id = 0, parent_span_id = 0;
  std::uint32_t stored_crc = 0;
  if (!r.u8(marker) || !r.u64(request_id) ||
      (traced && (!r.u64(trace_id) || !r.u64(parent_span_id))) ||
      !r.u32(stored_crc))
    return DataLossError("protocol: truncated v2 envelope header");

  const std::span<const std::uint8_t> payload = body.subspan(header_bytes);
  std::uint32_t crc = 0;
  if (traced) {
    std::uint8_t head[24];
    std::memcpy(head, &request_id, 8);
    std::memcpy(head + 8, &trace_id, 8);
    std::memcpy(head + 16, &parent_span_id, 8);
    crc = crc32(head, sizeof head);
  } else {
    std::uint8_t id_bytes[8];
    std::memcpy(id_bytes, &request_id, sizeof id_bytes);
    crc = crc32(id_bytes, sizeof id_bytes);
  }
  crc = crc32_update(crc, payload.data(), payload.size());
  if (crc != stored_crc)
    return DataLossError(
        "protocol: frame CRC mismatch (corrupted in transit) — request id " +
        std::to_string(request_id));

  out.request_id = request_id;
  out.trace_id = trace_id;
  out.parent_span_id = parent_span_id;
  out.payload = payload;
  return Status::Ok();
}

Response error_response(MsgType type, const Status& s) {
  Response resp;
  resp.type = type;
  resp.code = s.code();
  resp.error = s.message();
  return resp;
}

}  // namespace udb::serve
