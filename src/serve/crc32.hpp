// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for per-frame integrity checks
// in wire protocol v2 (serve/protocol.hpp). Chosen over the snapshot codec's
// FNV-1a because CRC detects *every* burst error up to 32 bits — exactly the
// corruption model of a flaky transport — where FNV only makes collisions
// unlikely. Table is built at compile time; the byte loop is fast enough for
// 64 MiB frames (one table lookup per byte) and needs no special hardware.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace udb::serve {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(const std::uint8_t* p,
                                         std::size_t n) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// Extends a finished CRC with more bytes: crc32_update(crc32(a, n), b, m)
// equals the CRC of the concatenation a ++ b. Lets the v2 framer checksum
// (request_id ++ payload) without materializing the concatenation.
[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc,
                                                const std::uint8_t* p,
                                                std::size_t n) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace udb::serve
