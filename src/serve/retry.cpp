#include "serve/retry.hpp"

#include <chrono>
#include <thread>

namespace udb::serve {

namespace {

// Folds transport and server-side failure into one Status; on success checks
// the response type matches what was asked (same contract as Client's).
Status unwrap(const StatusOr<Response>& r, MsgType want, Response& out) {
  if (!r.ok()) return r.status();
  if (r->code != StatusCode::kOk) return r->to_status();
  if (r->type != want)
    return DataLossError("client: response type does not match request");
  out = *r;
  return Status::Ok();
}

}  // namespace

bool retryable_status(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kDataLoss:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

RetryingClient::RetryingClient(std::vector<std::uint16_t> ports,
                               RetryPolicy policy,
                               obs::MetricsRegistry* metrics)
    : ports_(std::move(ports)),
      policy_(policy),
      metrics_(metrics),
      jitter_state_(policy.jitter_seed | 1u) {}

void RetryingClient::advance_endpoint() {
  if (ports_.size() < 2) return;
  endpoint_ = (endpoint_ + 1) % ports_.size();
  if (metrics_ != nullptr)
    metrics_->add(obs::Counter::kServeClientFailovers);
}

void RetryingClient::backoff_sleep(int retry_number) {
  double backoff = policy_.initial_backoff_seconds;
  for (int i = 1; i < retry_number; ++i) backoff *= 2.0;
  if (backoff > policy_.max_backoff_seconds)
    backoff = policy_.max_backoff_seconds;
  // LCG jitter in [0.5, 1.0): desynchronizes clients hammering a shedding
  // server, deterministically given the seed.
  jitter_state_ = jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const double unit =
      static_cast<double>(jitter_state_ >> 11) / 9007199254740992.0;  // 2^53
  const double sleep_s = backoff * (0.5 + 0.5 * unit);
  if (sleep_s > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
}

Status RetryingClient::ensure_connected() {
  if (client_.has_value()) return Status::Ok();
  if (ports_.empty())
    return InvalidArgumentError("RetryingClient: no endpoints configured");
  Status last = UnavailableError("RetryingClient: no endpoint reachable");
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    StatusOr<Client> c =
        Client::connect(ports_[endpoint_], policy_.timeout_seconds);
    if (c.ok()) {
      client_.emplace(std::move(*c));
      return Status::Ok();
    }
    last = c.status();
    advance_endpoint();
  }
  return last;
}

StatusOr<Response> RetryingClient::roundtrip(const Request& req) {
  const std::uint64_t id = next_id_++;
  Status last = UnavailableError("RetryingClient: no attempt made");
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      if (metrics_ != nullptr)
        metrics_->add(obs::Counter::kServeClientRetries);
      backoff_sleep(attempt - 1);
    }
    if (Status st = ensure_connected(); !st.ok()) {
      last = st;
      continue;
    }
    StatusOr<Response> r = client_->roundtrip_with_id(id, req);
    if (!r.ok()) {
      last = r.status();
      // Transport fault: the stream can no longer be trusted (a timed-out
      // response may still be in flight; a dropped connection is gone).
      // Reconnect — preferring the next replica — and retry the same id.
      client_.reset();
      advance_endpoint();
      if (!retryable_status(last.code())) break;
      continue;
    }
    if (r->code != StatusCode::kOk && retryable_status(r->code)) {
      // The server answered, but with a transient failure: it shed us
      // (RESOURCE_EXHAUSTED — load, connection budget, or memory), our
      // request arrived corrupted (DATA_LOSS from the frame CRC), or the
      // per-request deadline tripped. The connection may already be closed
      // (connection shed), so drop it either way and prefer another replica
      // after backing off.
      last = r->to_status();
      client_.reset();
      advance_endpoint();
      continue;
    }
    return r;  // OK, or a non-retryable server-side answer for the caller
  }
  if (metrics_ != nullptr) metrics_->add(obs::Counter::kServeClientGiveUps);
  return last;
}

Status RetryingClient::ping() {
  Request req;
  req.type = MsgType::kPing;
  Response resp;
  return unwrap(roundtrip(req), MsgType::kPing, resp);
}

StatusOr<std::vector<Classify>> RetryingClient::classify(
    std::span<const double> coords, std::uint32_t dim) {
  Request req;
  req.type = MsgType::kClassify;
  req.dim = dim;
  req.coords.assign(coords.begin(), coords.end());
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kClassify, resp); !st.ok())
    return st;
  return std::move(resp.classify);
}

StatusOr<std::vector<std::pair<std::uint64_t, double>>>
RetryingClient::neighbors(std::span<const double> q, double radius) {
  Request req;
  req.type = MsgType::kNeighbors;
  req.dim = static_cast<std::uint32_t>(q.size());
  req.coords.assign(q.begin(), q.end());
  req.radius = radius;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kNeighbors, resp); !st.ok())
    return st;
  return std::move(resp.neighbors);
}

StatusOr<PointInfo> RetryingClient::point_info(std::uint64_t id) {
  Request req;
  req.type = MsgType::kPointInfo;
  req.point_id = id;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kPointInfo, resp); !st.ok())
    return st;
  return resp.point;
}

StatusOr<std::string> RetryingClient::stats_json() {
  Request req;
  req.type = MsgType::kStats;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kStats, resp); !st.ok())
    return st;
  return std::move(resp.json);
}

StatusOr<ModelInfo> RetryingClient::model_info() {
  Request req;
  req.type = MsgType::kModelInfo;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kModelInfo, resp); !st.ok())
    return st;
  return resp.model;
}

}  // namespace udb::serve
