#include "serve/retry.hpp"

#include <chrono>
#include <thread>

#include "serve/telemetry.hpp"

namespace udb::serve {

namespace {

// splitmix64: derives a well-mixed, deterministic trace id from (seed, id).
// Deterministic so the fault harness can correlate traces across runs;
// forced nonzero because 0 means "untraced" on the wire.
std::uint64_t derive_trace_id(std::uint64_t seed, std::uint64_t request_id) {
  std::uint64_t z = seed ^ (request_id * 0x9E3779B97F4A7C15ull);
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z = z ^ (z >> 31);
  return z == 0 ? 1 : z;
}

// Folds transport and server-side failure into one Status; on success checks
// the response type matches what was asked (same contract as Client's).
Status unwrap(const StatusOr<Response>& r, MsgType want, Response& out) {
  if (!r.ok()) return r.status();
  if (r->code != StatusCode::kOk) return r->to_status();
  if (r->type != want)
    return DataLossError("client: response type does not match request");
  out = *r;
  return Status::Ok();
}

}  // namespace

bool retryable_status(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kDataLoss:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

RetryingClient::RetryingClient(std::vector<std::uint16_t> ports,
                               RetryPolicy policy,
                               obs::MetricsRegistry* metrics,
                               obs::Tracer* tracer)
    : ports_(std::move(ports)),
      policy_(policy),
      metrics_(metrics),
      tracer_(tracer),
      jitter_state_(policy.jitter_seed | 1u),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t RetryingClient::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void RetryingClient::advance_endpoint() {
  if (ports_.size() < 2) return;
  endpoint_ = (endpoint_ + 1) % ports_.size();
  if (metrics_ != nullptr)
    metrics_->add(obs::Counter::kServeClientFailovers);
}

void RetryingClient::backoff_sleep(int retry_number, std::uint64_t trace_id) {
  double backoff = policy_.initial_backoff_seconds;
  for (int i = 1; i < retry_number; ++i) backoff *= 2.0;
  if (backoff > policy_.max_backoff_seconds)
    backoff = policy_.max_backoff_seconds;
  // LCG jitter in [0.5, 1.0): desynchronizes clients hammering a shedding
  // server, deterministically given the seed.
  jitter_state_ = jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
  const double unit =
      static_cast<double>(jitter_state_ >> 11) / 9007199254740992.0;  // 2^53
  const double sleep_s = backoff * (0.5 + 0.5 * unit);
  if (sleep_s > 0.0) {
    obs::Span span(tracer_, "client.backoff", trace_id);
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
  }
}

Status RetryingClient::ensure_connected() {
  if (client_.has_value()) return Status::Ok();
  if (ports_.empty())
    return InvalidArgumentError("RetryingClient: no endpoints configured");
  Status last = UnavailableError("RetryingClient: no endpoint reachable");
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    StatusOr<Client> c =
        Client::connect(ports_[endpoint_], policy_.timeout_seconds);
    if (c.ok()) {
      client_.emplace(std::move(*c));
      return Status::Ok();
    }
    last = c.status();
    advance_endpoint();
  }
  return last;
}

StatusOr<Response> RetryingClient::roundtrip(const Request& req) {
  const std::uint64_t id = next_id_++;
  // One trace id per *logical* request: every attempt (and the server-side
  // spans it triggers, on whichever replica) shares it, so the merged trace
  // shows the retry/failover story end to end. 0 (untraced) without a
  // tracer, keeping the wire frames byte-identical to the untraced path.
  const std::uint64_t trace_id =
      tracer_ != nullptr ? derive_trace_id(policy_.jitter_seed, id) : 0;
  const std::uint64_t t0_us = now_us();
  const std::size_t endpoint0 = endpoint_;
  // Window accounting happens at every return path via this helper.
  const auto note = [this, t0_us, endpoint0](bool error, int attempts) {
    const std::uint64_t now = this->now_us();
    window_.add(obs::WinCounter::kRequests, now);
    if (error) window_.add(obs::WinCounter::kErrors, now);
    if (attempts > 1)
      window_.add(obs::WinCounter::kRetries, now,
                  static_cast<std::uint64_t>(attempts - 1));
    if (endpoint_ != endpoint0) window_.add(obs::WinCounter::kFailovers, now);
    window_.record_latency(now, now - t0_us);
  };
  Status last = UnavailableError("RetryingClient: no attempt made");
  int attempts_made = 0;
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    attempts_made = attempt;
    if (attempt > 1) {
      if (metrics_ != nullptr)
        metrics_->add(obs::Counter::kServeClientRetries);
      backoff_sleep(attempt - 1, trace_id);
    }
    obs::Span attempt_span(tracer_, "client.attempt", trace_id);
    if (Status st = ensure_connected(); !st.ok()) {
      last = st;
      continue;
    }
    // The wire parent_span_id slot carries the attempt ordinal — enough to
    // tell attempts apart server-side without a span-id allocator (the
    // merged-trace assertion matches on trace_id only).
    StatusOr<Response> r = client_->roundtrip_with_id(
        id, req, trace_id, static_cast<std::uint64_t>(attempt));
    if (!r.ok()) {
      last = r.status();
      // Transport fault: the stream can no longer be trusted (a timed-out
      // response may still be in flight; a dropped connection is gone).
      // Reconnect — preferring the next replica — and retry the same id.
      client_.reset();
      advance_endpoint();
      if (!retryable_status(last.code())) break;
      continue;
    }
    if (r->code != StatusCode::kOk && retryable_status(r->code)) {
      // The server answered, but with a transient failure: it shed us
      // (RESOURCE_EXHAUSTED — load, connection budget, or memory), our
      // request arrived corrupted (DATA_LOSS from the frame CRC), or the
      // per-request deadline tripped. The connection may already be closed
      // (connection shed), so drop it either way and prefer another replica
      // after backing off.
      last = r->to_status();
      client_.reset();
      advance_endpoint();
      continue;
    }
    note(r->code != StatusCode::kOk, attempt);
    return r;  // OK, or a non-retryable server-side answer for the caller
  }
  if (metrics_ != nullptr) metrics_->add(obs::Counter::kServeClientGiveUps);
  note(/*error=*/true, attempts_made);
  return last;
}

Status RetryingClient::ping() {
  Request req;
  req.type = MsgType::kPing;
  Response resp;
  return unwrap(roundtrip(req), MsgType::kPing, resp);
}

StatusOr<std::vector<Classify>> RetryingClient::classify(
    std::span<const double> coords, std::uint32_t dim) {
  Request req;
  req.type = MsgType::kClassify;
  req.dim = dim;
  req.coords.assign(coords.begin(), coords.end());
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kClassify, resp); !st.ok())
    return st;
  return std::move(resp.classify);
}

StatusOr<std::vector<std::pair<std::uint64_t, double>>>
RetryingClient::neighbors(std::span<const double> q, double radius) {
  Request req;
  req.type = MsgType::kNeighbors;
  req.dim = static_cast<std::uint32_t>(q.size());
  req.coords.assign(q.begin(), q.end());
  req.radius = radius;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kNeighbors, resp); !st.ok())
    return st;
  return std::move(resp.neighbors);
}

StatusOr<PointInfo> RetryingClient::point_info(std::uint64_t id) {
  Request req;
  req.type = MsgType::kPointInfo;
  req.point_id = id;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kPointInfo, resp); !st.ok())
    return st;
  return resp.point;
}

StatusOr<std::string> RetryingClient::stats_json() {
  Request req;
  req.type = MsgType::kStats;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kStats, resp); !st.ok())
    return st;
  return std::move(resp.json);
}

StatusOr<ModelInfo> RetryingClient::model_info() {
  Request req;
  req.type = MsgType::kModelInfo;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kModelInfo, resp); !st.ok())
    return st;
  return resp.model;
}

StatusOr<TelemetryReport> RetryingClient::telemetry() {
  Request req;
  req.type = MsgType::kTelemetry;
  req.telemetry_format = TelemetryFormat::kBinary;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kTelemetry, resp); !st.ok())
    return st;
  if (resp.telemetry_format != TelemetryFormat::kBinary)
    return DataLossError("client: telemetry format does not match request");
  return resp.telemetry;
}

StatusOr<std::string> RetryingClient::telemetry_text(TelemetryFormat format) {
  Request req;
  req.type = MsgType::kTelemetry;
  req.telemetry_format = format;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kTelemetry, resp); !st.ok())
    return st;
  if (resp.telemetry_format != format)
    return DataLossError("client: telemetry format does not match request");
  return std::move(resp.json);
}

std::string RetryingClient::client_stats_json() const {
  StatsDocInputs in;
  in.tool = "udbscan_client";
  in.has_telemetry = true;
  const std::uint64_t now = now_us();
  TelemetryReport& t = in.telemetry;
  t.uptime_us = now;
  if (metrics_ != nullptr) in.snap = metrics_->snapshot();
  t.requests_total = next_id_ - 1;  // logical requests issued
  t.errors_total = in.snap.counter(obs::Counter::kServeClientGiveUps);
  const std::uint64_t spans[kTelemetryWindows] = {1, 10, 60};
  for (std::size_t i = 0; i < kTelemetryWindows; ++i)
    t.windows[i] = telemetry_window_from(window_.snapshot(now, spans[i]));
  return stats_document_json(in);
}

}  // namespace udb::serve
