#include "serve/snapshot.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/vfs.hpp"
#include "serve/wire.hpp"

namespace udb::serve {

namespace {

// Layout (little-endian; see docs/SERVING.md):
//   magic[4] "UDBM" | u32 version | u64 payload_bytes
//   payload:
//     u64 dim | u64 n | f64 eps | u32 min_pts | u32 flags | u64 num_clusters
//     f64 coords[n*dim] | i64 labels[n] | u8 is_core[n]
//     u32 report_len | report_json bytes
//   u64 fnv1a64(payload)
// The file size must equal 16 + payload_bytes + 8 exactly: a truncated tail
// or trailing garbage is rejected before any parsing happens.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kFooterBytes = 8;

constexpr std::uint32_t kFlagTwoEpsRule = 1u << 0;
constexpr std::uint32_t kFlagBulkAux = 1u << 1;

}  // namespace

StatusOr<std::vector<std::uint8_t>> serialize_model(const ModelSnapshot& snap) {
  const std::size_t n = snap.data.size();
  if (snap.result.label.size() != n || snap.result.is_core.size() != n)
    return InvalidArgumentError(
        "save_model: result arrays not sized to the dataset (labels " +
        std::to_string(snap.result.label.size()) + ", core flags " +
        std::to_string(snap.result.is_core.size()) + ", points " +
        std::to_string(n) + ")");
  if (snap.data.dim() == 0)
    return InvalidArgumentError("save_model: empty model (dim 0)");
  if (!(snap.params.eps > 0.0) || !std::isfinite(snap.params.eps) ||
      snap.params.min_pts == 0)
    return InvalidArgumentError("save_model: invalid params (eps " +
                                std::to_string(snap.params.eps) + ", minpts " +
                                std::to_string(snap.params.min_pts) + ")");
  if (snap.report_json.size() > std::numeric_limits<std::uint32_t>::max())
    return InvalidArgumentError("save_model: report_json too large");

  ByteWriter payload;
  payload.u64(snap.data.dim());
  payload.u64(n);
  payload.f64(snap.params.eps);
  payload.u32(snap.params.min_pts);
  std::uint32_t flags = 0;
  if (snap.two_eps_rule) flags |= kFlagTwoEpsRule;
  if (snap.bulk_aux) flags |= kFlagBulkAux;
  payload.u32(flags);
  payload.u64(snap.result.num_clusters());
  payload.raw(snap.data.raw().data(), snap.data.raw().size() * sizeof(double));
  payload.raw(snap.result.label.data(),
              snap.result.label.size() * sizeof(std::int64_t));
  payload.raw(snap.result.is_core.data(), snap.result.is_core.size());
  payload.u32(static_cast<std::uint32_t>(snap.report_json.size()));
  payload.raw(snap.report_json.data(), snap.report_json.size());

  ByteWriter out;
  out.raw(kSnapshotMagic, sizeof kSnapshotMagic);
  out.u32(kSnapshotVersion);
  out.u64(payload.size());
  out.raw(payload.data().data(), payload.size());
  out.u64(fnv1a64(payload.data().data(), payload.size()));
  return out.take();
}

Status save_model(const ModelSnapshot& snap, const std::string& path) {
  auto bytes = serialize_model(snap);
  if (!bytes.ok()) return bytes.status();
  // Full crash-safe discipline (write tmp, fsync, rename, fsync dir): a
  // crash or full disk mid-save can never leave a truncated file under the
  // final name, and a previously good snapshot at `path` survives a failed
  // re-save — vfs::write_file_atomic removes the tmp on every failure path.
  return vfs::write_file_atomic(path, bytes->data(), bytes->size());
}

StatusOr<ModelSnapshot> load_model(const std::string& path) {
  auto bytes = vfs::read_file(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound)
      return NotFoundError("load_model: cannot open " + path);
    return bytes.status();
  }
  return parse_model(std::span<const std::uint8_t>(*bytes), path);
}

StatusOr<ModelSnapshot> parse_model(std::span<const std::uint8_t> bytes,
                                    const std::string& path) {
  const std::uint64_t file_size = bytes.size();
  if (file_size < kHeaderBytes + kFooterBytes)
    return DataLossError("load_model: file too small to be a snapshot: " +
                         path);

  ByteReader header(std::span(bytes.data(), kHeaderBytes));
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  if (!header.raw(magic, sizeof magic) || !header.u32(version) ||
      !header.u64(payload_bytes))
    return DataLossError("load_model: unreadable header in " + path);
  if (std::memcmp(magic, kSnapshotMagic, sizeof magic) != 0)
    return DataLossError("load_model: bad magic in " + path +
                         " (not a model snapshot)");
  if (version != kSnapshotVersion)
    return DataLossError("load_model: unsupported snapshot version " +
                         std::to_string(version) + " in " + path +
                         " (this build reads version " +
                         std::to_string(kSnapshotVersion) + ")");
  if (payload_bytes != file_size - kHeaderBytes - kFooterBytes)
    return DataLossError(
        "load_model: size mismatch in " + path + " (header claims " +
        std::to_string(payload_bytes) + " payload bytes, file holds " +
        std::to_string(file_size - kHeaderBytes - kFooterBytes) +
        ") — truncated or corrupted");

  const std::uint8_t* payload = bytes.data() + kHeaderBytes;
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, payload + payload_bytes, sizeof stored_sum);
  const std::uint64_t computed =
      fnv1a64(payload, static_cast<std::size_t>(payload_bytes));
  if (stored_sum != computed)
    return DataLossError("load_model: checksum mismatch in " + path +
                         " — corrupted snapshot");

  ByteReader r(std::span(payload, static_cast<std::size_t>(payload_bytes)));
  std::uint64_t dim = 0, n = 0, num_clusters = 0;
  double eps = 0.0;
  std::uint32_t min_pts = 0, flags = 0;
  if (!r.u64(dim) || !r.u64(n) || !r.f64(eps) || !r.u32(min_pts) ||
      !r.u32(flags) || !r.u64(num_clusters))
    return DataLossError("load_model: truncated fixed header in " + path);

  if (dim == 0)
    return DataLossError("load_model: dim 0 in " + path);
  if (!(eps > 0.0) || !std::isfinite(eps) || min_pts == 0)
    return DataLossError("load_model: invalid params in " + path + " (eps " +
                         std::to_string(eps) + ", minpts " +
                         std::to_string(min_pts) + ")");
  constexpr std::uint64_t kMaxElems =
      std::numeric_limits<std::size_t>::max() / sizeof(double);
  if (n != 0 && dim > kMaxElems / n)
    return DataLossError("load_model: header overflows size_t in " + path);
  if (n > std::numeric_limits<PointId>::max())
    return DataLossError("load_model: point count exceeds PointId range in " +
                         path);

  std::vector<double> coords;
  std::vector<std::int64_t> labels;
  std::vector<std::uint8_t> is_core;
  if (!r.array(coords, static_cast<std::size_t>(dim * n)) ||
      !r.array(labels, static_cast<std::size_t>(n)) ||
      !r.array(is_core, static_cast<std::size_t>(n)))
    return DataLossError("load_model: truncated arrays in " + path);

  std::uint32_t report_len = 0;
  std::string report;
  if (!r.u32(report_len) || !r.str(report, report_len))
    return DataLossError("load_model: truncated report section in " + path);
  if (!r.done())
    return DataLossError("load_model: trailing bytes inside payload of " +
                         path);

  for (double v : coords)
    if (!std::isfinite(v))
      return DataLossError("load_model: non-finite coordinate in " + path);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::int64_t lab = labels[i];
    if (lab < kNoise || (num_clusters != 0 &&
                         lab >= static_cast<std::int64_t>(num_clusters)) ||
        (num_clusters == 0 && lab != kNoise))
      return DataLossError("load_model: label out of range at point " +
                           std::to_string(i) + " in " + path);
    if (is_core[i] > 1)
      return DataLossError("load_model: core flag not 0/1 at point " +
                           std::to_string(i) + " in " + path);
    if (is_core[i] == 1 && lab == kNoise)
      return DataLossError("load_model: core point labeled noise at point " +
                           std::to_string(i) + " in " + path);
  }

  ModelSnapshot snap;
  snap.data = Dataset(static_cast<std::size_t>(dim), std::move(coords));
  snap.params = DbscanParams{eps, min_pts};
  snap.result.label = std::move(labels);
  snap.result.is_core = std::move(is_core);
  snap.two_eps_rule = (flags & kFlagTwoEpsRule) != 0;
  snap.bulk_aux = (flags & kFlagBulkAux) != 0;
  snap.report_json = std::move(report);
  return snap;
}

}  // namespace udb::serve
