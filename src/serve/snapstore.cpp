#include "serve/snapstore.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>
#include <utility>

#include "common/runguard.hpp"
#include "common/vfs.hpp"
#include "core/streaming.hpp"
#include "core/wal.hpp"
#include "serve/crc32.hpp"
#include "serve/wire.hpp"

namespace udb::serve {

namespace {

// MANIFEST: magic "UDBG" | u32 version | u64 generation | u32 crc32(first 16
// bytes). Tiny on purpose — it fits one sector, so its tmp+rename replace is
// atomic on anything resembling a real filesystem.
constexpr char kManifestMagic[4] = {'U', 'D', 'B', 'G'};
constexpr std::uint32_t kManifestVersion = 1;
constexpr const char* kManifestName = "MANIFEST";
constexpr std::size_t kManifestBytes = 4 + 4 + 8 + 4;

std::string gen_name(std::uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "gen-%06llu.udbm",
                static_cast<unsigned long long>(gen));
  return buf;
}

bool parse_gen_name(const std::string& name, std::uint64_t* gen) {
  constexpr const char* kPrefix = "gen-";
  constexpr const char* kSuffix = ".udbm";
  if (name.size() <= 4 + 5 || name.compare(0, 4, kPrefix) != 0 ||
      name.compare(name.size() - 5, 5, kSuffix) != 0)
    return false;
  std::uint64_t g = 0;
  for (std::size_t i = 4; i < name.size() - 5; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    if (g > (std::uint64_t{0} - 1) / 10) return false;
    g = g * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *gen = g;
  return g != 0;
}

std::vector<std::uint8_t> encode_manifest(std::uint64_t gen) {
  ByteWriter w;
  w.raw(kManifestMagic, sizeof kManifestMagic);
  w.u32(kManifestVersion);
  w.u64(gen);
  w.u32(crc32(w.data().data(), w.size()));
  return w.take();
}

StatusOr<std::uint64_t> read_manifest(const std::string& path) {
  auto bytes = vfs::read_file(path);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() != kManifestBytes)
    return DataLossError("snapstore: manifest " + path + " has " +
                         std::to_string(bytes->size()) + " bytes, expected " +
                         std::to_string(kManifestBytes));
  ByteReader r{std::span<const std::uint8_t>(*bytes)};
  char magic[4];
  std::uint32_t version = 0, stored_crc = 0;
  std::uint64_t gen = 0;
  if (!r.raw(magic, sizeof magic) || !r.u32(version) || !r.u64(gen) ||
      !r.u32(stored_crc) ||
      std::memcmp(magic, kManifestMagic, sizeof magic) != 0)
    return DataLossError("snapstore: manifest " + path + " is not a manifest");
  if (version != kManifestVersion)
    return DataLossError("snapstore: manifest " + path + " is version " +
                         std::to_string(version) + ", this build reads " +
                         std::to_string(kManifestVersion));
  if (crc32(bytes->data(), kManifestBytes - 4) != stored_crc)
    return DataLossError("snapstore: manifest " + path +
                         " fails its checksum — corrupted");
  if (gen == 0)
    return DataLossError("snapstore: manifest " + path +
                         " names generation 0");
  return gen;
}

}  // namespace

StatusOr<SnapshotStore> SnapshotStore::open(const std::string& dir,
                                            SnapshotStoreConfig cfg) {
  if (dir.empty())
    return InvalidArgumentError("snapstore: empty directory path");
  if (cfg.keep == 0)
    return InvalidArgumentError("snapstore: keep must be >= 1");
  Status s = vfs::make_dirs(dir);
  if (!s.ok()) return s;
  return SnapshotStore(dir, cfg);
}

std::string SnapshotStore::generation_path(std::uint64_t gen) const {
  return dir_ + "/" + gen_name(gen);
}

StatusOr<std::vector<std::uint64_t>> SnapshotStore::generations() const {
  auto entries = vfs::list_dir(dir_);
  if (!entries.ok()) return entries.status();
  std::vector<std::uint64_t> gens;
  for (const std::string& name : *entries) {
    std::uint64_t g = 0;
    if (parse_gen_name(name, &g)) gens.push_back(g);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

StatusOr<std::uint64_t> SnapshotStore::save(const ModelSnapshot& snap) {
  auto bytes = serialize_model(snap);
  if (!bytes.ok()) return bytes.status();

  auto gens = generations();
  if (!gens.ok()) return gens.status();
  std::uint64_t next = gens->empty() ? 0 : gens->back();
  // An orphaned newer file (gen landed, manifest publish failed) must not be
  // overwritten either — numbering always moves past everything on disk.
  auto published = read_manifest(dir_ + "/" + kManifestName);
  if (published.ok()) next = std::max(next, *published);
  next += 1;

  Status s = vfs::write_file_atomic(generation_path(next), bytes->data(),
                                    bytes->size(), cfg_.durable);
  if (!s.ok()) return s;

  const std::vector<std::uint8_t> manifest = encode_manifest(next);
  s = vfs::write_file_atomic(dir_ + "/" + kManifestName, manifest.data(),
                             manifest.size(), cfg_.durable);
  if (!s.ok()) return s;  // unpublished: the old manifest still governs

  // Retention, best effort: a failed unlink costs disk, never correctness.
  gens->push_back(next);
  if (gens->size() > cfg_.keep)
    for (std::size_t i = 0; i + cfg_.keep < gens->size(); ++i)
      (void)vfs::remove_file(generation_path((*gens)[i]));
  return next;
}

StatusOr<ModelSnapshot> SnapshotStore::load_latest(
    std::uint64_t* gen_out) const {
  // The manifest names the published generation; trust it while it (and its
  // file) verify. Any failure from here on falls through to the scan — the
  // whole point of keeping more than one generation.
  auto published = read_manifest(dir_ + "/" + kManifestName);
  if (published.ok()) {
    auto bytes = vfs::read_file(generation_path(*published));
    if (bytes.ok()) {
      auto snap = parse_model(std::span<const std::uint8_t>(*bytes),
                              generation_path(*published));
      if (snap.ok()) {
        if (gen_out != nullptr) *gen_out = *published;
        return snap;
      }
    }
  }

  auto gens = generations();
  if (!gens.ok()) return gens.status();
  for (auto it = gens->rbegin(); it != gens->rend(); ++it) {
    auto bytes = vfs::read_file(generation_path(*it));
    if (!bytes.ok()) continue;
    auto snap = parse_model(std::span<const std::uint8_t>(*bytes),
                            generation_path(*it));
    if (!snap.ok()) continue;
    if (gen_out != nullptr) *gen_out = *it;
    return snap;
  }
  return NotFoundError("snapstore: no intact generation in " + dir_);
}

StatusOr<RecoveredStream> recover_stream(const SnapshotStore& store,
                                         const std::string& wal_path,
                                         std::size_t dim,
                                         const DbscanParams& params,
                                         MuDbscanConfig cfg, RunGuard* guard) {
  if (dim == 0) return InvalidArgumentError("recover_stream: dim must be > 0");

  RecoveredStream out;
  out.stream = std::make_unique<StreamingMuDbscan>(dim, params, cfg);

  std::uint64_t gen = 0;
  auto snap = store.load_latest(&gen);
  if (snap.ok()) {
    if (snap->data.dim() != dim)
      return InvalidArgumentError(
          "recover_stream: snapshot generation " + std::to_string(gen) +
          " holds dim-" + std::to_string(snap->data.dim()) +
          " points, expected dim " + std::to_string(dim));
    if (snap->params.eps != params.eps ||
        snap->params.min_pts != params.min_pts)
      return InvalidArgumentError(
          "recover_stream: snapshot generation " + std::to_string(gen) +
          " was fit with (eps " + std::to_string(snap->params.eps) +
          ", minpts " + std::to_string(snap->params.min_pts) +
          "), recovery asked for (eps " + std::to_string(params.eps) +
          ", minpts " + std::to_string(params.min_pts) +
          ") — the store and WAL describe one model");
    ScopedCharge charge;
    Status s = charge.acquire(
        guard, snap->data.raw().size() * sizeof(double), "recover_snapshot");
    if (!s.ok()) return s;
    out.stream->insert_batch(snap->data);
    out.generation = gen;
    out.snapshot_points = snap->data.size();
  } else if (snap.status().code() != StatusCode::kNotFound) {
    return snap.status();
  }

  auto rep = replay_wal(wal_path, dim);
  if (rep.ok()) {
    out.wal_torn_bytes = rep->torn_bytes;
    ScopedCharge charge;
    Status s = charge.acquire(guard, rep->coords.size() * sizeof(double),
                              "recover_wal");
    if (!s.ok()) return s;
    if (rep->epoch != 0 || rep->has_tombstones()) {
      // Epoch-gated replay (docs/ROBUSTNESS.md §Deletes). A tombstone erases
      // by bitwise coordinates, which is only meaningful against the exact
      // state it was logged on top of — start-index realignment cannot
      // reconcile it with a different generation. reset(generation) stamps
      // the log with the generation it extends; replay everything in record
      // order when that generation is the one that loaded, drop the log
      // wholesale otherwise (a mismatch means the manifest's generation was
      // lost and an older one answered — replaying would corrupt it).
      if (rep->epoch != out.generation) {
        out.wal_epoch_mismatch = true;
        return out;
      }
      std::size_t coff = 0;
      for (std::size_t i = 0; i < rep->starts.size(); ++i) {
        const std::size_t record_doubles =
            static_cast<std::size_t>(rep->counts[i]) * dim;
        const std::span<const double> rows{rep->coords.data() + coff,
                                           record_doubles};
        if (rep->types[i] ==
            static_cast<std::uint8_t>(WalRecordType::kTombstone)) {
          for (std::size_t r = 0; r < record_doubles; r += dim)
            if (out.stream->erase_equal(rows.subspan(r, dim)) != kInvalidPoint)
              ++out.wal_deletes;
        } else {
          out.stream->insert_batch(Dataset(
              dim, std::vector<double>(rows.begin(), rows.end())));
          out.wal_points += rep->counts[i];
        }
        coff += record_doubles;
        ++out.wal_records;
      }
      return out;
    }
    // Align the committed records against the snapshot via their stream
    // start indices: skip what the snapshot already covers (the
    // publish-before-reset crash window), stop at a gap (older-generation
    // fallback after corruption) — either way the result is an exact prefix
    // of the original ingestion sequence.
    std::vector<double> replay;
    std::uint64_t base = out.snapshot_points;
    std::size_t coff = 0;
    for (std::size_t i = 0; i < rep->starts.size(); ++i) {
      const std::uint64_t start = rep->starts[i];
      const std::uint64_t count = rep->counts[i];
      const std::size_t record_doubles = static_cast<std::size_t>(count) * dim;
      if (start + count <= base) {  // fully covered by the snapshot
        coff += record_doubles;
        continue;
      }
      if (start > base) break;  // gap: nothing after it can be ingested
      const std::size_t skip = static_cast<std::size_t>(base - start) * dim;
      replay.insert(replay.end(), rep->coords.begin() + coff + skip,
                    rep->coords.begin() + coff + record_doubles);
      base += count - (base - start);
      coff += record_doubles;
      ++out.wal_records;
    }
    out.wal_points = replay.size() / dim;
    if (!replay.empty())
      out.stream->insert_batch(Dataset(dim, std::move(replay)));
  } else if (rep.status().code() != StatusCode::kNotFound) {
    return rep.status();
  }
  return out;
}

}  // namespace udb::serve
