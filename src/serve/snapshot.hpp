// Model snapshot persistence (docs/SERVING.md): a versioned, checksummed
// binary format that captures everything needed to serve a fitted µDBSCAN
// model — the dataset, the density parameters, the exact clustering (labels +
// core flags), the engine knobs that make the µR-tree rebuild deterministic,
// and optionally the run's obs report JSON for provenance.
//
// The µR-tree itself is NOT serialized: its construction (Algorithm 3) is a
// deterministic function of (dataset order, eps, two_eps_rule, bulk_aux), so
// load_model + ClusterModel reproduce the exact same index the fitting run
// used, at a fraction of the format complexity and with no cross-version
// pointer-layout hazards.
//
// Loading follows the quarantine-loader discipline (common/io.*): every
// failure — missing file, wrong magic, unsupported version, truncation, bit
// flips (payload checksum), or semantically invalid content — comes back as a
// clean Status (NOT_FOUND / DATA_LOSS), never a crash and never a partially
// constructed model.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/dataset.hpp"
#include "common/status.hpp"
#include "metrics/clustering.hpp"

namespace udb::serve {

// Format constants (layout table in docs/SERVING.md).
inline constexpr char kSnapshotMagic[4] = {'U', 'D', 'B', 'M'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

struct ModelSnapshot {
  Dataset data;
  DbscanParams params;
  ClusteringResult result;

  // Engine knobs that shape the µR-tree; persisted so the serving index is
  // bit-identical to the fitting run's (exactness does not depend on them,
  // query cost does).
  bool two_eps_rule = true;
  bool bulk_aux = true;

  // Optional provenance: the obs run report of the fitting run, embedded
  // verbatim (empty = none).
  std::string report_json;
};

// In-memory codec halves, shared by save/load and by the generation store
// (serve/snapstore.*) which owns its own file naming and fsync discipline.
// serialize_model fails with INVALID_ARGUMENT on an inconsistent snapshot
// (label/core arrays not sized to the dataset); parse_model fails with
// DATA_LOSS for anything malformed (`origin` names the source in messages).
[[nodiscard]] StatusOr<std::vector<std::uint8_t>> serialize_model(
    const ModelSnapshot& snap);
[[nodiscard]] StatusOr<ModelSnapshot> parse_model(
    std::span<const std::uint8_t> bytes, const std::string& origin);

// Serializes and writes the snapshot through the VFS with the full crash-safe
// discipline: write `path`.tmp, fsync, rename over `path`, fsync the parent
// directory (common/vfs.*). Fails with INVALID_ARGUMENT on an inconsistent
// snapshot, RESOURCE_EXHAUSTED on ENOSPC, DATA_LOSS on fsync failure and
// INTERNAL on other I/O errors; a failed save never leaves a half-written
// file at `path` and never damages a previous snapshot there.
[[nodiscard]] Status save_model(const ModelSnapshot& snap,
                                const std::string& path);

// Reads and validates a snapshot. NOT_FOUND if the file cannot be opened;
// DATA_LOSS for anything malformed: bad magic, unsupported version, size
// mismatch (truncated or padded), checksum mismatch, or content that fails
// validation (non-finite coordinates, out-of-range labels, core flags other
// than 0/1, core points labeled noise).
[[nodiscard]] StatusOr<ModelSnapshot> load_model(const std::string& path);

}  // namespace udb::serve
