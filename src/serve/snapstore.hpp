// SnapshotStore — a crash-safe, generation-based home for served models
// (docs/ROBUSTNESS.md §Durability, docs/SERVING.md).
//
// A single snapshot file with tmp+rename is atomic but has one generation of
// history: a save that succeeds durably and is then bit-rotted (or a torn
// rename on a non-atomic filesystem) leaves nothing to serve. The store keeps
// a bounded window of *generations*:
//
//   <dir>/gen-000001.udbm      numbered UDBM snapshots (serve/snapshot.*)
//   <dir>/gen-000002.udbm
//   <dir>/MANIFEST             current generation, CRC-framed, replaced last
//
// Save discipline (every step through common/vfs.*, so injected faults and
// crash points exercise it):
//   1. serialize; write gen-N.udbm.tmp, fsync, rename, fsync dir
//   2. write MANIFEST.tmp naming N, fsync, rename, fsync dir
//   3. prune generations older than the newest `keep` (best effort)
// A failure at any step leaves every previous generation intact — the store
// never opens an existing generation file for writing, ever.
//
// Load discipline: the MANIFEST names the generation to serve; if the
// manifest or its generation is missing/corrupt (CRC or codec rejection),
// load_latest falls back to the newest *intact* numbered generation on disk.
// Every outcome is a clean Status: serving only fails when no intact
// generation exists at all.
//
// recover_stream composes the store with the write-ahead log (core/wal.*):
// newest intact generation seeds a StreamingMuDbscan, the WAL's committed
// records replay on top — the restart path that makes streaming ingest
// durable (tools/crashharness asserts the result is bit-identical to
// fit-from-scratch over the recovered prefix).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/mudbscan.hpp"
#include "serve/snapshot.hpp"

namespace udb {
class StreamingMuDbscan;
class RunGuard;
}  // namespace udb

namespace udb::serve {

struct SnapshotStoreConfig {
  std::size_t keep = 3;  // newest generations retained (>= 1)
  bool durable = true;   // fsync discipline; false only for throwaway tests
};

class SnapshotStore {
 public:
  // Creates `dir` (mkdir -p) if needed and validates the config.
  [[nodiscard]] static StatusOr<SnapshotStore> open(
      const std::string& dir, SnapshotStoreConfig cfg = {});

  // Persists `snap` as the next generation and points the manifest at it.
  // Returns the new generation number. On failure (ENOSPC ->
  // RESOURCE_EXHAUSTED, fsync -> DATA_LOSS, else INTERNAL/INVALID_ARGUMENT)
  // no previous generation is damaged and the manifest still names the last
  // successfully published one.
  [[nodiscard]] StatusOr<std::uint64_t> save(const ModelSnapshot& snap);

  // Loads the manifest's generation, falling back to the newest intact
  // numbered generation when the manifest or its file is missing or corrupt.
  // NOT_FOUND only when no intact generation exists. `gen_out` (optional)
  // receives the generation that was served.
  [[nodiscard]] StatusOr<ModelSnapshot> load_latest(
      std::uint64_t* gen_out = nullptr) const;

  // Numbered generations present on disk, ascending (intact or not).
  [[nodiscard]] StatusOr<std::vector<std::uint64_t>> generations() const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string generation_path(std::uint64_t gen) const;

 private:
  SnapshotStore(std::string dir, SnapshotStoreConfig cfg)
      : dir_(std::move(dir)), cfg_(cfg) {}

  std::string dir_;
  SnapshotStoreConfig cfg_;
};

// ---- WAL-backed streaming recovery ----------------------------------------

struct RecoveredStream {
  std::unique_ptr<StreamingMuDbscan> stream;
  std::uint64_t generation = 0;    // 0: no snapshot generation found
  std::size_t snapshot_points = 0; // points seeded from the snapshot
  std::uint64_t wal_records = 0;   // committed WAL records replayed
  std::size_t wal_points = 0;      // points inserted from the WAL
  std::size_t wal_deletes = 0;     // points erased by WAL tombstones
  std::uint64_t wal_torn_bytes = 0;  // uncommitted tail dropped by replay
  // The log's header epoch named a different snapshot generation than the one
  // that loaded, so its records (which include deletes or an epoch stamp)
  // could not be aligned and were skipped wholesale.
  bool wal_epoch_mismatch = false;
};

// Rebuilds the pre-crash streaming state: newest intact snapshot generation
// (if any) re-ingested in insertion order, then the WAL's committed records
// replayed on top. A missing store/WAL is not an error — recovery from
// nothing is an empty stream. Snapshot params/dim must match `params`/`dim`
// (INVALID_ARGUMENT otherwise: the WAL and store describe one model).
//
// Insert-only epoch-0 logs self-align against the snapshot by stream start
// index (skip covered records, stop at a gap). Logs carrying tombstones or a
// non-zero epoch stamp cannot be realigned that way — a delete only makes
// sense against the exact state it was logged on — so they replay in full,
// in record order, iff the log's epoch equals the loaded generation, and are
// skipped wholesale otherwise (wal_epoch_mismatch; see
// docs/ROBUSTNESS.md §Deletes).
[[nodiscard]] StatusOr<RecoveredStream> recover_stream(
    const SnapshotStore& store, const std::string& wal_path, std::size_t dim,
    const DbscanParams& params, MuDbscanConfig cfg = {},
    RunGuard* guard = nullptr);

}  // namespace udb::serve
