// Bounds-checked byte-buffer primitives shared by the snapshot codec and the
// wire protocol (src/serve/). Fixed-width little-endian scalars, memcpy'd
// native (every supported target is little-endian, matching the UDB1 dataset
// format in common/io.*).
//
// ByteWriter appends into a growing buffer; ByteReader consumes a read-only
// span and *never* reads past the end — every getter reports failure instead,
// so a truncated or hostile buffer surfaces as a clean decode error, never as
// an out-of-bounds read (the same quarantine discipline as load_binary).

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace udb::serve {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool u8(std::uint8_t& v) { return raw(&v, sizeof v); }
  [[nodiscard]] bool u16(std::uint16_t& v) { return raw(&v, sizeof v); }
  [[nodiscard]] bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  [[nodiscard]] bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  [[nodiscard]] bool i64(std::int64_t& v) { return raw(&v, sizeof v); }
  [[nodiscard]] bool f64(double& v) { return raw(&v, sizeof v); }
  [[nodiscard]] bool raw(void* p, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(p, data_.data() + off_, n);
    off_ += n;
    return true;
  }
  // Reads `count` elements of trivially-copyable type T into `out` (resized).
  template <typename T>
  [[nodiscard]] bool array(std::vector<T>& out, std::size_t count) {
    if (remaining() / sizeof(T) < count) return false;  // overflow-safe
    out.resize(count);
    return count == 0 || raw(out.data(), count * sizeof(T));
  }
  [[nodiscard]] bool str(std::string& out, std::size_t count) {
    if (remaining() < count) return false;
    out.assign(reinterpret_cast<const char*>(data_.data() + off_), count);
    off_ += count;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - off_;
  }
  [[nodiscard]] bool done() const noexcept { return off_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t off_ = 0;
};

// FNV-1a 64-bit — the snapshot payload checksum. Not cryptographic; it exists
// to catch truncation, bit rot, and foreign files, not adversaries.
[[nodiscard]] inline std::uint64_t fnv1a64(const std::uint8_t* p,
                                           std::size_t n) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace udb::serve
