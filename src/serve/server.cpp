#include "serve/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/log.hpp"
#include "obs/report.hpp"
#include "serve/telemetry.hpp"

namespace udb::serve {

namespace {

const char* span_name(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "serve.ping";
    case MsgType::kClassify: return "serve.classify";
    case MsgType::kNeighbors: return "serve.neighbors";
    case MsgType::kPointInfo: return "serve.point_info";
    case MsgType::kStats: return "serve.stats";
    case MsgType::kModelInfo: return "serve.model_info";
    case MsgType::kTelemetry: return "serve.telemetry";
  }
  return "serve.request";
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const ClusterModel> model,
                         ServerConfig cfg)
    : served_(std::move(model)),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.pool_threads > 1)
    pool_ = std::make_unique<ThreadPool>(cfg_.pool_threads);
  // Request-buffer accounting only: no deadline, and check() is never called
  // on this guard, so its exhaustion latch is irrelevant — try_charge keeps
  // enforcing the budget for the life of the server.
  buffer_guard_.arm(RunLimits{0.0, cfg_.memory_budget_bytes});
}

QueryServer::~QueryServer() { stop(); }

Status QueryServer::start() {
  if (running_) return InvalidArgumentError("QueryServer::start: already running");
  StatusOr<Socket> listener = listen_loopback(cfg_.port, port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  stopping_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  obs::LogLine(obs::LogLevel::kInfo, "serve", "listening")
      .kv("port", static_cast<std::uint64_t>(port_))
      .kv("points", model()->size());
  return Status::Ok();
}

void QueryServer::stop() {
  if (!running_) return;
  stopping_ = true;
  // Unblock accept(), then every connection worker sitting in recv().
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Workers unregister their fd and exit at the next frame boundary; the
  // thread list only grows under conn_mu_, and the accept loop is already
  // dead, so this join sweep sees every worker.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  listener_.close();
  running_ = false;
}

void QueryServer::refresh(std::shared_ptr<const ClusterModel> m) {
  served_.refresh(std::move(m), &metrics_);
}

std::uint64_t QueryServer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void QueryServer::accept_loop() {
  obs::set_trace_pid(cfg_.trace_pid);
  double backoff_s = 0.010;
  while (!stopping_) {
    obs::Span accept_span(cfg_.tracer, "serve.accept");
    StatusOr<Socket> conn = accept_connection(listener_);
    accept_span.end();
    if (!conn.ok()) {
      if (stopping_) break;
      if (conn.status().code() == StatusCode::kResourceExhausted) {
        // fd / buffer exhaustion (EMFILE, ENFILE, ENOBUFS) is transient — it
        // clears when a connection closes. Back off exponentially instead of
        // spinning on accept() or killing the server. The sleep *duration*
        // is recorded too (serve_accept_backoff_us), so a snapshot shows not
        // just how often accept degraded but for how long.
        metrics_.add(obs::Counter::kServeAcceptRetries);
        metrics_.observe(obs::Hist::kServeAcceptBackoffUs,
                         static_cast<std::uint64_t>(backoff_s * 1e6));
        obs::LogLine(obs::LogLevel::kWarn, "serve", "accept_backoff")
            .kv("status", conn.status().to_string())
            .kv("sleep_ms", backoff_s * 1e3);
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
        backoff_s = std::min(backoff_s * 2.0, 1.0);
        continue;
      }
      obs::LogLine(obs::LogLevel::kWarn, "serve", "accept_failed")
          .kv("status", conn.status().to_string());
      break;
    }
    backoff_s = 0.010;

    bool shed = false;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      if (stopping_) break;  // raced with stop(): drop the connection
      shed = cfg_.max_connections > 0 &&
             conn_fds_.size() >= cfg_.max_connections;
      if (!shed) {
        conn_fds_.insert(conn->fd());
        conn_threads_.emplace_back([this, c = std::move(*conn)]() mutable {
          serve_connection(std::move(c));
        });
      }
    }
    if (shed) {
      // Connection budget full: one RESOURCE_EXHAUSTED shed frame (request
      // id 0 — the peer has not sent anything yet), then close. The retrying
      // client backs off or fails over on it.
      metrics_.add(obs::Counter::kServeShedConnections);
      (void)write_frame(
          *conn, frame_v2(0, encode_response(error_response(
                                 MsgType::kPing,
                                 ResourceExhaustedError(
                                     "server connection budget full — back "
                                     "off or try another replica")))));
    }
  }
}

void QueryServer::serve_connection(Socket conn) {
  obs::set_trace_pid(cfg_.trace_pid);
  const int fd = conn.fd();
  if (cfg_.idle_timeout_seconds > 0.0)
    set_socket_timeouts(conn, cfg_.idle_timeout_seconds);
  // Wire-path sliding-window accounting: one call per terminal outcome, so
  // the rolling qps/error/shed rates count each request exactly once (the
  // cumulative counters are bumped at the individual sites as before).
  const auto note = [this](bool error, bool shed, std::uint64_t latency_us) {
    const std::uint64_t now = now_us();
    window_.add(obs::WinCounter::kRequests, now);
    if (error) window_.add(obs::WinCounter::kErrors, now);
    if (shed) window_.add(obs::WinCounter::kShed, now);
    window_.record_latency(now, latency_us);
  };
  std::uint64_t last_frame_us = now_us();
  for (;;) {
    StatusOr<std::vector<std::uint8_t>> frame = read_frame(conn);
    if (!frame.ok()) {
      // Clean close (or stop()) ends the loop silently.
      if (stopping_) break;
      const StatusCode code = frame.status().code();
      if (code == StatusCode::kDeadlineExceeded) {
        // Idle peer: reclaim the worker thread; a live client reconnects.
        // The recorded wait is the gap since the last completed frame (or
        // since accept), i.e. how long this worker sat pinned by a silent
        // peer before the timeout fired.
        metrics_.add(obs::Counter::kServeIdleDisconnects);
        metrics_.observe(obs::Hist::kServeIdleWaitUs,
                         now_us() - last_frame_us);
        obs::LogLine(obs::LogLevel::kInfo, "serve", "idle_disconnect")
            .kv("idle_timeout_s", cfg_.idle_timeout_seconds);
      } else if (code == StatusCode::kDataLoss) {
        // A malformed frame (oversized prefix, truncation mid-frame) gets
        // one error answer, then the connection is dropped — the stream
        // offset is unrecoverable.
        metrics_.add(obs::Counter::kServeRequests);
        metrics_.add(obs::Counter::kServeErrors);
        metrics_.add(obs::Counter::kServeCorruptFrames);
        note(/*error=*/true, /*shed=*/false, 0);
        (void)write_frame(conn, frame_v2(0, encode_response(error_response(
                                               MsgType::kPing,
                                               frame.status()))));
      }
      break;
    }

    FrameV2 env;
    if (Status st = parse_frame_v2(std::span<const std::uint8_t>(*frame), env);
        !st.ok()) {
      metrics_.add(obs::Counter::kServeRequests);
      metrics_.add(obs::Counter::kServeErrors);
      note(/*error=*/true, /*shed=*/false, 0);
      if (st.code() == StatusCode::kUnimplemented) {
        // v1 frame from a legacy client: answer in v1 framing — the only
        // framing it can decode — and keep the connection.
        metrics_.add(obs::Counter::kServeLegacyClients);
        if (!write_frame(conn,
                         encode_response(error_response(MsgType::kPing, st)))
                 .ok())
          break;
        last_frame_us = now_us();
        continue;
      }
      // CRC mismatch or unknown marker: the length prefix was intact, so the
      // stream stays in sync — answer (request id 0: the envelope's id is
      // exactly what the CRC failed to vouch for) and keep the connection.
      metrics_.add(obs::Counter::kServeCorruptFrames);
      if (!write_frame(conn, frame_v2(0, encode_response(error_response(
                                             MsgType::kPing, st))))
               .ok())
        break;
      last_frame_us = now_us();
      continue;
    }

    // Admission: global in-flight budget and request-buffer byte budget,
    // checked before any model work. A shed request costs the server one
    // error frame; the client treats RESOURCE_EXHAUSTED as retryable after
    // backoff (or fails over to another replica).
    obs::Span admission_span(cfg_.tracer, "serve.req.admission",
                             env.trace_id);
    const std::size_t inflight =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    ScopedCharge charge;
    Status admit = Status::Ok();
    if (cfg_.max_inflight > 0 && inflight > cfg_.max_inflight)
      admit = ResourceExhaustedError(
          "server overloaded: in-flight budget of " +
          std::to_string(cfg_.max_inflight) +
          " requests exhausted — back off and retry");
    if (admit.ok() && cfg_.memory_budget_bytes > 0)
      admit = charge.acquire(&buffer_guard_, frame->size(),
                             "serve request buffer");
    admission_span.end();

    Request req;
    Response resp;
    bool shed = false, error = false;
    const auto t0 = std::chrono::steady_clock::now();
    if (!admit.ok()) {
      metrics_.add(obs::Counter::kServeRequests);
      metrics_.add(obs::Counter::kServeErrors);
      metrics_.add(obs::Counter::kServeShedLoad);
      shed = error = true;
      resp = error_response(MsgType::kPing, admit);
    } else {
      obs::Span decode_span(cfg_.tracer, "serve.req.decode", env.trace_id);
      Status st = decode_request(env.payload, req);
      decode_span.end();
      if (!st.ok()) {
        metrics_.add(obs::Counter::kServeRequests);
        metrics_.add(obs::Counter::kServeErrors);
        // Garbage in the body is answerable (the frame boundary is intact):
        // report and keep the connection.
        error = true;
        resp = error_response(MsgType::kPing, st);
      } else {
        resp = handle(req, env.trace_id);
        error = resp.code != StatusCode::kOk;
      }
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    metrics_.observe(obs::Hist::kServeRequestUs,
                     static_cast<std::uint64_t>(us));
    note(error, shed, static_cast<std::uint64_t>(us));
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    charge.reset();

    obs::Span encode_span(cfg_.tracer, "serve.req.encode", env.trace_id);
    const std::vector<std::uint8_t> out =
        frame_v2(env.request_id, encode_response(resp));
    encode_span.end();
    obs::Span flush_span(cfg_.tracer, "serve.req.flush", env.trace_id);
    const bool wrote = write_frame(conn, out).ok();
    flush_span.end();
    if (!wrote) break;
    last_frame_us = now_us();
  }
  std::lock_guard<std::mutex> lk(conn_mu_);
  conn_fds_.erase(fd);
}

Response QueryServer::handle(const Request& req, std::uint64_t trace_id) {
  obs::Span span(cfg_.tracer, span_name(req.type), trace_id);
  metrics_.add(obs::Counter::kServeRequests);
  const std::shared_ptr<const ClusterModel> model = served_.get();

  Response resp;
  resp.type = req.type;
  Status st = Status::Ok();
  switch (req.type) {
    case MsgType::kPing:
      break;
    case MsgType::kClassify:
      return handle_classify(req, model);
    case MsgType::kNeighbors: {
      if (req.dim != model->dim()) {
        st = InvalidArgumentError(
            "neighbors: query dim " + std::to_string(req.dim) +
            " does not match model dim " + std::to_string(model->dim()));
        break;
      }
      auto r = model->neighbors(req.coords, req.radius, &metrics_);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      resp.neighbors.reserve(r->size());
      for (const auto& [id, d2] : *r) resp.neighbors.emplace_back(id, d2);
      break;
    }
    case MsgType::kPointInfo: {
      auto r = model->point_info(req.point_id, &metrics_);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      resp.point = *r;
      break;
    }
    case MsgType::kStats:
      resp.json = stats_json();
      break;
    case MsgType::kModelInfo:
      resp.model.n = model->size();
      resp.model.dim = static_cast<std::uint32_t>(model->dim());
      resp.model.eps = model->params().eps;
      resp.model.min_pts = model->params().min_pts;
      resp.model.num_clusters = model->num_clusters();
      break;
    case MsgType::kTelemetry: {
      resp.telemetry_format = req.telemetry_format;
      const TelemetryReport report = telemetry_report();
      switch (req.telemetry_format) {
        case TelemetryFormat::kBinary:
          resp.telemetry = report;
          break;
        case TelemetryFormat::kJson:
          resp.json = telemetry_json(report);
          break;
        case TelemetryFormat::kPrometheus:
          resp.json = telemetry_prometheus(report, metrics_.snapshot());
          break;
      }
      break;
    }
  }
  if (!st.ok()) {
    metrics_.add(obs::Counter::kServeErrors);
    return error_response(req.type, st);
  }
  return resp;
}

Response QueryServer::handle_classify(
    const Request& req, const std::shared_ptr<const ClusterModel>& model) {
  if (req.dim != model->dim()) {
    metrics_.add(obs::Counter::kServeErrors);
    return error_response(
        req.type,
        InvalidArgumentError("classify: query dim " + std::to_string(req.dim) +
                             " does not match model dim " +
                             std::to_string(model->dim())));
  }
  const std::size_t count = req.coords.size() / model->dim();
  metrics_.observe(obs::Hist::kServeBatchSize, count);

  RunGuard guard(RunLimits{cfg_.request_deadline_seconds, 0});
  RunGuard* guard_ptr =
      cfg_.request_deadline_seconds > 0.0 ? &guard : nullptr;

  StatusOr<std::vector<Classify>> r = InternalError("unreached");
  if (pool_ != nullptr && count >= cfg_.parallel_batch_threshold) {
    // The pool runs one job at a time; concurrent connections take turns.
    std::lock_guard<std::mutex> lk(pool_mu_);
    r = model->classify_batch(req.coords, count, &metrics_, pool_.get(),
                              guard_ptr);
  } else {
    r = model->classify_batch(req.coords, count, &metrics_, nullptr,
                              guard_ptr);
  }
  if (!r.ok()) {
    metrics_.add(obs::Counter::kServeErrors);
    if (r.status().code() == StatusCode::kDeadlineExceeded)
      metrics_.add(obs::Counter::kServeDeadlineExceeded);
    return error_response(req.type, r.status());
  }
  Response resp;
  resp.type = req.type;
  resp.classify = std::move(*r);
  return resp;
}

TelemetryReport QueryServer::telemetry_report() const {
  const obs::MetricsSnapshot snap = metrics_.snapshot();
  TelemetryReport t;
  const std::uint64_t now = now_us();
  t.uptime_us = now;
  t.inflight = inflight_.load(std::memory_order_relaxed);
  t.requests_total = snap.counter(obs::Counter::kServeRequests);
  t.errors_total = snap.counter(obs::Counter::kServeErrors);
  t.shed_load_total = snap.counter(obs::Counter::kServeShedLoad);
  t.shed_connections_total =
      snap.counter(obs::Counter::kServeShedConnections);
  t.corrupt_frames_total = snap.counter(obs::Counter::kServeCorruptFrames);
  t.idle_disconnects_total =
      snap.counter(obs::Counter::kServeIdleDisconnects);
  t.classify_points = snap.counter(obs::Counter::kServeClassifyPoints);
  t.classify_performed =
      snap.counter(obs::Counter::kServeClassifyPerformed);
  t.classify_avoided_exact =
      snap.counter(obs::Counter::kServeClassifyAvoidedExact);
  const std::uint64_t spans[kTelemetryWindows] = {1, 10, 60};
  for (std::size_t i = 0; i < kTelemetryWindows; ++i)
    t.windows[i] = telemetry_window_from(window_.snapshot(now, spans[i]));
  return t;
}

std::string QueryServer::stats_json() const {
  const std::shared_ptr<const ClusterModel> model = served_.get();
  StatsDocInputs in;
  in.tool = "udbscan_serve";
  in.has_model = true;
  in.model.n = model->size();
  in.model.dim = static_cast<std::uint32_t>(model->dim());
  in.model.eps = model->params().eps;
  in.model.min_pts = model->params().min_pts;
  in.model.num_clusters = model->num_clusters();
  in.has_serve_ledger = true;
  in.has_telemetry = true;
  in.telemetry = telemetry_report();
  in.snap = metrics_.snapshot();
  return stats_document_json(in);
}

}  // namespace udb::serve
