#include "serve/server.hpp"

#include <sys/socket.h>

#include <chrono>

#include "obs/log.hpp"
#include "obs/report.hpp"

namespace udb::serve {

namespace {

const char* span_name(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "serve.ping";
    case MsgType::kClassify: return "serve.classify";
    case MsgType::kNeighbors: return "serve.neighbors";
    case MsgType::kPointInfo: return "serve.point_info";
    case MsgType::kStats: return "serve.stats";
    case MsgType::kModelInfo: return "serve.model_info";
  }
  return "serve.request";
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const ClusterModel> model,
                         ServerConfig cfg)
    : served_(std::move(model)), cfg_(cfg) {
  if (cfg_.pool_threads > 1)
    pool_ = std::make_unique<ThreadPool>(cfg_.pool_threads);
}

QueryServer::~QueryServer() { stop(); }

Status QueryServer::start() {
  if (running_) return InvalidArgumentError("QueryServer::start: already running");
  StatusOr<Socket> listener = listen_loopback(cfg_.port, port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  stopping_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  obs::LogLine(obs::LogLevel::kInfo, "serve", "listening")
      .kv("port", static_cast<std::uint64_t>(port_))
      .kv("points", model()->size());
  return Status::Ok();
}

void QueryServer::stop() {
  if (!running_) return;
  stopping_ = true;
  // Unblock accept(), then every connection worker sitting in recv().
  listener_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Workers unregister their fd and exit at the next frame boundary; the
  // thread list only grows under conn_mu_, and the accept loop is already
  // dead, so this join sweep sees every worker.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  listener_.close();
  running_ = false;
}

void QueryServer::refresh(std::shared_ptr<const ClusterModel> m) {
  served_.refresh(std::move(m), &metrics_);
}

void QueryServer::accept_loop() {
  while (!stopping_) {
    StatusOr<Socket> conn = accept_connection(listener_);
    if (!conn.ok()) {
      if (!stopping_)
        obs::LogLine(obs::LogLevel::kWarn, "serve", "accept_failed")
            .kv("status", conn.status().to_string());
      break;
    }
    std::lock_guard<std::mutex> lk(conn_mu_);
    if (stopping_) break;  // raced with stop(): drop the connection
    conn_fds_.insert(conn->fd());
    conn_threads_.emplace_back(
        [this, c = std::move(*conn)]() mutable {
          serve_connection(std::move(c));
        });
  }
}

void QueryServer::serve_connection(Socket conn) {
  const int fd = conn.fd();
  for (;;) {
    StatusOr<std::vector<std::uint8_t>> frame = read_frame(conn);
    if (!frame.ok()) {
      // Clean close (or stop()) ends the loop silently; a malformed frame
      // (oversized prefix, truncation mid-frame) gets one error answer, then
      // the connection is dropped — the stream offset is unrecoverable.
      if (frame.status().code() == StatusCode::kDataLoss && !stopping_) {
        metrics_.add(obs::Counter::kServeRequests);
        metrics_.add(obs::Counter::kServeErrors);
        (void)write_frame(conn, encode_response(error_response(
                                    MsgType::kPing, frame.status())));
      }
      break;
    }

    Request req;
    Response resp;
    const auto t0 = std::chrono::steady_clock::now();
    if (Status st = decode_request(std::span<const std::uint8_t>(*frame), req);
        !st.ok()) {
      metrics_.add(obs::Counter::kServeRequests);
      metrics_.add(obs::Counter::kServeErrors);
      resp = error_response(MsgType::kPing, st);
      // Garbage in the body is answerable (the frame boundary is intact):
      // report and keep the connection — unless the type byte itself was
      // unreadable garbage, where the safest move is to answer and drop.
    } else {
      resp = handle(req);
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    metrics_.observe(obs::Hist::kServeRequestUs,
                     static_cast<std::uint64_t>(us));
    if (!write_frame(conn, encode_response(resp)).ok()) break;
  }
  std::lock_guard<std::mutex> lk(conn_mu_);
  conn_fds_.erase(fd);
}

Response QueryServer::handle(const Request& req) {
  obs::Span span(cfg_.tracer, span_name(req.type));
  metrics_.add(obs::Counter::kServeRequests);
  const std::shared_ptr<const ClusterModel> model = served_.get();

  Response resp;
  resp.type = req.type;
  Status st = Status::Ok();
  switch (req.type) {
    case MsgType::kPing:
      break;
    case MsgType::kClassify:
      return handle_classify(req, model);
    case MsgType::kNeighbors: {
      if (req.dim != model->dim()) {
        st = InvalidArgumentError(
            "neighbors: query dim " + std::to_string(req.dim) +
            " does not match model dim " + std::to_string(model->dim()));
        break;
      }
      auto r = model->neighbors(req.coords, req.radius, &metrics_);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      resp.neighbors.reserve(r->size());
      for (const auto& [id, d2] : *r) resp.neighbors.emplace_back(id, d2);
      break;
    }
    case MsgType::kPointInfo: {
      auto r = model->point_info(req.point_id, &metrics_);
      if (!r.ok()) {
        st = r.status();
        break;
      }
      resp.point = *r;
      break;
    }
    case MsgType::kStats:
      resp.json = stats_json();
      break;
    case MsgType::kModelInfo:
      resp.model.n = model->size();
      resp.model.dim = static_cast<std::uint32_t>(model->dim());
      resp.model.eps = model->params().eps;
      resp.model.min_pts = model->params().min_pts;
      resp.model.num_clusters = model->num_clusters();
      break;
  }
  if (!st.ok()) {
    metrics_.add(obs::Counter::kServeErrors);
    return error_response(req.type, st);
  }
  return resp;
}

Response QueryServer::handle_classify(
    const Request& req, const std::shared_ptr<const ClusterModel>& model) {
  if (req.dim != model->dim()) {
    metrics_.add(obs::Counter::kServeErrors);
    return error_response(
        req.type,
        InvalidArgumentError("classify: query dim " + std::to_string(req.dim) +
                             " does not match model dim " +
                             std::to_string(model->dim())));
  }
  const std::size_t count = req.coords.size() / model->dim();
  metrics_.observe(obs::Hist::kServeBatchSize, count);

  RunGuard guard(RunLimits{cfg_.request_deadline_seconds, 0});
  RunGuard* guard_ptr =
      cfg_.request_deadline_seconds > 0.0 ? &guard : nullptr;

  StatusOr<std::vector<Classify>> r = InternalError("unreached");
  if (pool_ != nullptr && count >= cfg_.parallel_batch_threshold) {
    // The pool runs one job at a time; concurrent connections take turns.
    std::lock_guard<std::mutex> lk(pool_mu_);
    r = model->classify_batch(req.coords, count, &metrics_, pool_.get(),
                              guard_ptr);
  } else {
    r = model->classify_batch(req.coords, count, &metrics_, nullptr,
                              guard_ptr);
  }
  if (!r.ok()) {
    metrics_.add(obs::Counter::kServeErrors);
    if (r.status().code() == StatusCode::kDeadlineExceeded)
      metrics_.add(obs::Counter::kServeDeadlineExceeded);
    return error_response(req.type, r.status());
  }
  Response resp;
  resp.type = req.type;
  resp.classify = std::move(*r);
  return resp;
}

std::string QueryServer::stats_json() const {
  const std::shared_ptr<const ClusterModel> model = served_.get();
  const obs::MetricsSnapshot snap = metrics_.snapshot();
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("tool", "udbscan_serve");
  w.key("model");
  w.begin_object();
  w.kv("n", model->size());
  w.kv("dim", model->dim());
  w.kv("eps", model->params().eps);
  w.kv("min_pts", model->params().min_pts);
  w.kv("num_clusters", model->num_clusters());
  w.end_object();
  // The serve classify ledger, spelled out the way the engine's query ledger
  // is: every classify answer is either a performed muR-tree search or an
  // exact-match skip, so performed + avoided_exact == points at any
  // quiesced snapshot (asserted by bench/serve_throughput and CI smoke).
  w.key("serve_ledger");
  w.begin_object();
  w.kv("classify_points",
       snap.counter(obs::Counter::kServeClassifyPoints));
  w.kv("performed", snap.counter(obs::Counter::kServeClassifyPerformed));
  w.kv("avoided_exact",
       snap.counter(obs::Counter::kServeClassifyAvoidedExact));
  w.end_object();
  write_metrics_snapshot(w, snap, 0);
  w.end_object();
  return w.str();
}

}  // namespace udb::serve
