#include "serve/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <new>

#include "core/streaming.hpp"
#include "obs/metrics.hpp"
#include "serve/wire.hpp"

namespace udb::serve {

namespace {

std::uint64_t point_hash(const double* p, std::size_t dim) {
  return fnv1a64(reinterpret_cast<const std::uint8_t*>(p),
                 dim * sizeof(double));
}

}  // namespace

StatusOr<std::shared_ptr<const ClusterModel>> ClusterModel::build(
    ModelSnapshot snap, ThreadPool* pool, RunGuard* guard) {
  std::shared_ptr<ClusterModel> m(new ClusterModel(std::move(snap)));
  try {
    m->num_clusters_ = m->snap_.result.num_clusters();
    const Dataset& ds = m->snap_.data;
    m->exact_.reserve(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const auto id = static_cast<PointId>(i);
      m->exact_.emplace(point_hash(ds.ptr(id), ds.dim()), id);
    }
    MuRTree::Config cfg;
    cfg.two_eps_rule = m->snap_.two_eps_rule;
    cfg.bulk_aux = m->snap_.bulk_aux;
    cfg.guard = guard;
    m->tree_ = std::make_unique<MuRTree>(ds, m->snap_.params.eps, cfg, pool);
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return ResourceExhaustedError(
        "ClusterModel::build: allocation failed rebuilding the index");
  }
  return std::shared_ptr<const ClusterModel>(std::move(m));
}

Classify ClusterModel::classify_impl(std::span<const double> q,
                                     bool& performed) const {
  const Dataset& ds = snap_.data;
  const ClusteringResult& res = snap_.result;

  // Fast path: bitwise-identical dataset point — answer from the stored
  // clustering without touching the index. Lowest id wins for determinism
  // (bitwise-duplicate points share a neighborhood, so any of them is a
  // faithful answer; ties in the multimap are iteration-order dependent).
  PointId hit = kInvalidPoint;
  const auto [lo, hi] = exact_.equal_range(point_hash(q.data(), ds.dim()));
  for (auto it = lo; it != hi; ++it)
    if (std::memcmp(ds.ptr(it->second), q.data(),
                    ds.dim() * sizeof(double)) == 0 &&
        it->second < hit)
      hit = it->second;
  if (hit != kInvalidPoint) {
    performed = false;
    return Classify{res.label[hit], res.kind(hit), /*exact_match=*/true,
                    res.is_core[hit] != 0, /*neighbors=*/0};
  }

  // One exact strict-eps search answers everything else: the neighbor count,
  // the nearest core point, and any distance-0 twin the hash missed (e.g.
  // -0.0 vs +0.0 coordinate bytes).
  performed = true;
  std::uint32_t count = 0;
  PointId zero = kInvalidPoint;
  PointId best_core = kInvalidPoint;
  double best_d2 = std::numeric_limits<double>::infinity();
  tree_->query_neighborhood(q, snap_.params.eps, [&](PointId id, double d2) {
    ++count;
    if (d2 == 0.0 && id < zero) zero = id;
    if (res.is_core[id] != 0 &&
        (d2 < best_d2 || (d2 == best_d2 && id < best_core))) {
      best_d2 = d2;
      best_core = id;
    }
  });

  if (zero != kInvalidPoint)
    return Classify{res.label[zero], res.kind(zero), /*exact_match=*/true,
                    res.is_core[zero] != 0, count};

  Classify out;
  out.neighbors = count;
  out.would_be_core = count + 1 >= snap_.params.min_pts;
  if (best_core != kInvalidPoint) {
    out.label = res.label[best_core];
    out.kind = PointKind::Border;
  }
  return out;
}

StatusOr<Classify> ClusterModel::classify(std::span<const double> q,
                                          obs::MetricsRegistry* metrics) const {
  if (q.size() != dim())
    return InvalidArgumentError("classify: query has " +
                                std::to_string(q.size()) +
                                " coordinates, model dim is " +
                                std::to_string(dim()));
  bool performed = false;
  Classify out = classify_impl(q, performed);
  if (metrics != nullptr) {
    metrics->add(obs::Counter::kServeClassifyPoints);
    metrics->add(performed ? obs::Counter::kServeClassifyPerformed
                           : obs::Counter::kServeClassifyAvoidedExact);
  }
  return out;
}

StatusOr<std::vector<Classify>> ClusterModel::classify_batch(
    std::span<const double> coords, std::size_t count,
    obs::MetricsRegistry* metrics, ThreadPool* pool, RunGuard* guard) const {
  if (coords.size() != count * dim())
    return InvalidArgumentError(
        "classify_batch: " + std::to_string(coords.size()) +
        " coordinates is not " + std::to_string(count) + " points of dim " +
        std::to_string(dim()));
  std::vector<Classify> out(count);
  try {
    // Chunked even when sequential: with a guard armed, the per-chunk
    // checkpoint bounds how far past a deadline a big batch can run.
    constexpr std::size_t kChunk = 64;
    parallel_for_chunked(
        pool, count, kChunk,
        [&](std::size_t begin, std::size_t end, unsigned) {
          for (std::size_t i = begin; i < end; ++i) {
            bool performed = false;
            out[i] =
                classify_impl({coords.data() + i * dim(), dim()}, performed);
            if (metrics != nullptr) {
              metrics->add(obs::Counter::kServeClassifyPoints);
              metrics->add(performed ? obs::Counter::kServeClassifyPerformed
                                     : obs::Counter::kServeClassifyAvoidedExact);
            }
          }
        },
        guard);
  } catch (const StatusError& e) {
    return e.status();
  }
  return out;
}

StatusOr<std::vector<std::pair<PointId, double>>> ClusterModel::neighbors(
    std::span<const double> q, double radius,
    obs::MetricsRegistry* metrics) const {
  if (q.size() != dim())
    return InvalidArgumentError("neighbors: query has " +
                                std::to_string(q.size()) +
                                " coordinates, model dim is " +
                                std::to_string(dim()));
  if (!(radius > 0.0) || !std::isfinite(radius))
    return InvalidArgumentError("neighbors: radius must be finite and > 0");
  std::vector<std::pair<PointId, double>> out;
  tree_->query_neighborhood(q, radius, out);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  if (metrics != nullptr) metrics->add(obs::Counter::kServeNeighborQueries);
  return out;
}

StatusOr<PointInfo> ClusterModel::point_info(
    std::uint64_t id, obs::MetricsRegistry* metrics) const {
  if (id >= size())
    return NotFoundError("point_info: id " + std::to_string(id) +
                         " out of range (model holds " +
                         std::to_string(size()) + " points)");
  const auto p = static_cast<PointId>(id);
  if (metrics != nullptr) metrics->add(obs::Counter::kServePointInfoLookups);
  return PointInfo{snap_.result.label[p], snap_.result.kind(p),
                   snap_.result.is_core[p] != 0};
}

void ServedModel::refresh(std::shared_ptr<const ClusterModel> m,
                          obs::MetricsRegistry* metrics) {
  model_.store(std::move(m), std::memory_order_release);
  if (metrics != nullptr) metrics->add(obs::Counter::kServeModelRefreshes);
}

StatusOr<std::shared_ptr<const ClusterModel>> model_from_stream(
    StreamingMuDbscan& stream, ThreadPool* pool, RunGuard* guard) {
  if (stream.size() == 0)
    return InvalidArgumentError(
        "model_from_stream: nothing ingested yet — an empty model cannot "
        "serve");
  ModelSnapshot snap;
  try {
    snap.result = stream.result();  // exact incremental labels (canonical)
    snap.data = stream.dataset();
  } catch (const StatusError& e) {
    return e.status();
  }
  snap.params = stream.params();
  snap.two_eps_rule = stream.config().two_eps_rule;
  snap.bulk_aux = stream.config().bulk_aux;
  return ClusterModel::build(std::move(snap), pool, guard);
}

Status save_model(const ClusterModel& model, const std::string& path) {
  return save_model(model.snap_, path);
}

}  // namespace udb::serve
