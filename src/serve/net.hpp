// Minimal POSIX TCP plumbing for the loopback query server: bind/accept/
// connect plus length-prefixed frame I/O. Loopback only by design — the
// server binds 127.0.0.1 and nothing else; exposing it beyond the host is an
// explicit non-goal (docs/SERVING.md, operational limits).
//
// All calls handle EINTR and partial reads/writes; read_frame enforces
// kMaxFrameBytes *before* allocating, so a hostile 4 GiB length prefix costs
// nothing. Errors surface as Status (UNAVAILABLE for transport failures,
// DATA_LOSS for oversized/short frames), never exceptions or errno leaks.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace udb::serve {

// RAII socket fd (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept
      : fd_(o.fd_), fault_id_(o.fault_id_), fault_seq_(o.fault_seq_) {
    o.fd_ = -1;
  }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  // shutdown(SHUT_RDWR): unblocks any thread sitting in recv on this fd
  // (stop path) without racing the close. const: the fd itself is untouched,
  // so frame I/O (which takes const Socket&) can sever a faulted connection.
  void shutdown_both() const noexcept;

 private:
  friend struct SocketFaultAccess;  // net.cpp: fault-injection bookkeeping

  int fd_ = -1;
  // Fault-injection identity (serve/netfault.hpp): connection ordinal,
  // assigned lazily on the first frame operation while a plan is installed,
  // and the per-connection operation sequence the decision stream hashes.
  // Mutable because frame I/O takes const Socket&; untouched (and unread)
  // when no plan is installed.
  mutable std::int64_t fault_id_ = -1;
  mutable std::uint64_t fault_seq_ = 0;
};

// Binds and listens on 127.0.0.1:port (port 0 = kernel-assigned ephemeral).
// On success fills `bound_port` with the actual port.
[[nodiscard]] StatusOr<Socket> listen_loopback(std::uint16_t port,
                                               std::uint16_t& bound_port);

// Blocking accept. RESOURCE_EXHAUSTED when the process is out of descriptors
// or kernel buffers (EMFILE/ENFILE/ENOBUFS/ENOMEM — retryable after a
// backoff, the accept loop's contract); UNAVAILABLE when the listener was
// shut down or otherwise failed.
[[nodiscard]] StatusOr<Socket> accept_connection(const Socket& listener);

// (Re)arms SO_RCVTIMEO/SO_SNDTIMEO on the socket: the per-connection idle
// timeout (server side) and the per-attempt request timeout (client side).
// 0 or non-finite disables the timeouts.
void set_socket_timeouts(const Socket& s, double timeout_seconds) noexcept;

// Connects to 127.0.0.1:port; `timeout_seconds` also becomes the socket's
// send/receive timeout (0 = no timeout).
[[nodiscard]] StatusOr<Socket> connect_loopback(std::uint16_t port,
                                                double timeout_seconds);

// One frame = u32 length prefix + body. With a NetFaultPlan installed
// (serve/netfault.hpp) the write may be deterministically delayed, the body
// corrupted or truncated in flight, or the connection shut down first.
[[nodiscard]] Status write_frame(const Socket& s,
                                 std::span<const std::uint8_t> body);
// Reads one frame body. UNAVAILABLE with message "connection closed" on a
// clean EOF at a frame boundary; DATA_LOSS on truncation mid-frame or a
// length prefix above kMaxFrameBytes (see protocol.hpp);
// DEADLINE_EXCEEDED when a socket timeout (set_socket_timeouts) elapsed
// before a frame arrived — the idle-timeout signal.
[[nodiscard]] StatusOr<std::vector<std::uint8_t>> read_frame(const Socket& s);

}  // namespace udb::serve
