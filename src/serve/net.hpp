// Minimal POSIX TCP plumbing for the loopback query server: bind/accept/
// connect plus length-prefixed frame I/O. Loopback only by design — the
// server binds 127.0.0.1 and nothing else; exposing it beyond the host is an
// explicit non-goal (docs/SERVING.md, operational limits).
//
// All calls handle EINTR and partial reads/writes; read_frame enforces
// kMaxFrameBytes *before* allocating, so a hostile 4 GiB length prefix costs
// nothing. Errors surface as Status (UNAVAILABLE for transport failures,
// DATA_LOSS for oversized/short frames), never exceptions or errno leaks.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace udb::serve {

// RAII socket fd (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  // shutdown(SHUT_RDWR): unblocks any thread sitting in recv on this fd
  // (stop path) without racing the close.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

// Binds and listens on 127.0.0.1:port (port 0 = kernel-assigned ephemeral).
// On success fills `bound_port` with the actual port.
[[nodiscard]] StatusOr<Socket> listen_loopback(std::uint16_t port,
                                               std::uint16_t& bound_port);

// Blocking accept; UNAVAILABLE when the listener was shut down.
[[nodiscard]] StatusOr<Socket> accept_connection(const Socket& listener);

// Connects to 127.0.0.1:port; `timeout_seconds` also becomes the socket's
// send/receive timeout (0 = no timeout).
[[nodiscard]] StatusOr<Socket> connect_loopback(std::uint16_t port,
                                                double timeout_seconds);

// One frame = u32 length prefix + body.
[[nodiscard]] Status write_frame(const Socket& s,
                                 std::span<const std::uint8_t> body);
// Reads one frame body. UNAVAILABLE with message "connection closed" on a
// clean EOF at a frame boundary; DATA_LOSS on truncation mid-frame or a
// length prefix above kMaxFrameBytes (see protocol.hpp).
[[nodiscard]] StatusOr<std::vector<std::uint8_t>> read_frame(const Socket& s);

}  // namespace udb::serve
