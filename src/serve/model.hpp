// ClusterModel — the in-process serving view of a fitted µDBSCAN model
// (docs/SERVING.md): an immutable (dataset, params, exact clustering) triple
// plus the µR-tree rebuilt from them, answering point queries without ever
// re-running the clustering.
//
// Query semantics (all exact; see docs/SERVING.md for the argument):
//
//   * classify(q): if q is bitwise-equal to a dataset point (hash fast path)
//     or at squared distance 0 from one (found during the search), the stored
//     label/kind are returned verbatim — so classifying the training set
//     reproduces the batch result exactly, border-point tie-breaks included.
//     Otherwise q is treated as a *border candidate*: it joins the cluster of
//     its nearest core point strictly within eps (Border), or is Noise if no
//     core point is that close. `would_be_core` additionally reports whether
//     inserting q would make q itself core (|N_eps(q)| + 1 >= MinPts —
//     advisory only: actually inserting q could promote neighbors or merge
//     clusters, which a read-only model cannot represent).
//
//   * neighbors(q, radius): the exact set of dataset points strictly within
//     `radius` of q, sorted by (squared distance, id).
//
// Every method is const and safe to call from any number of threads
// concurrently: the µR-tree and the exact-match index are immutable after
// build, and the only mutation anywhere is relaxed atomic instrumentation.
// ServedModel adds the refresh story on top: readers load a shared_ptr with
// one atomic operation and keep the model alive for the whole request even if
// a refresh swaps in a successor mid-flight.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/runguard.hpp"
#include "common/status.hpp"
#include "core/murtree.hpp"
#include "serve/snapshot.hpp"

namespace udb {
class StreamingMuDbscan;
}

namespace udb::obs {
class MetricsRegistry;
}

namespace udb::serve {

// One classify answer. For an exact match, `label`/`kind`/`would_be_core`
// mirror the stored clustering; otherwise they follow the border-candidate
// rule above and `neighbors` is |N_eps(q)| over the dataset.
struct Classify {
  std::int64_t label = kNoise;
  PointKind kind = PointKind::Noise;
  bool exact_match = false;
  bool would_be_core = false;
  std::uint32_t neighbors = 0;
};

struct PointInfo {
  std::int64_t label = kNoise;
  PointKind kind = PointKind::Noise;
  bool is_core = false;
};

class ClusterModel {
 public:
  // Builds the serving index from a snapshot: rebuilds the µR-tree with the
  // snapshot's engine knobs (deterministic, so it is the same index the
  // fitting run used) and the exact-match hash over coordinate bytes.
  // Returns a clean Status on guard trips or allocation failure during the
  // rebuild. `pool` (optional) parallelizes the AuxR-tree builds.
  static StatusOr<std::shared_ptr<const ClusterModel>> build(
      ModelSnapshot snap, ThreadPool* pool = nullptr,
      RunGuard* guard = nullptr);

  ClusterModel(const ClusterModel&) = delete;
  ClusterModel& operator=(const ClusterModel&) = delete;

  // ---- queries (thread-safe, lock-free) ---------------------------------
  // `metrics` (optional, not owned) receives the serve counters: the
  // classify ledger (points == performed + avoided_exact) and the
  // neighbor/point-info tallies.
  [[nodiscard]] StatusOr<Classify> classify(
      std::span<const double> q, obs::MetricsRegistry* metrics = nullptr) const;

  // Classifies `count` points stored row-major in `coords` (size must be
  // count * dim()). Fans out over `pool` when one is supplied and the batch
  // is large enough; `guard` bounds the batch (per-request deadline) via
  // per-chunk cooperative checkpoints.
  [[nodiscard]] StatusOr<std::vector<Classify>> classify_batch(
      std::span<const double> coords, std::size_t count,
      obs::MetricsRegistry* metrics = nullptr, ThreadPool* pool = nullptr,
      RunGuard* guard = nullptr) const;

  // Exact strict-radius neighborhood of an arbitrary position, sorted by
  // (squared distance, id). Pairs are (point id, squared distance).
  [[nodiscard]] StatusOr<std::vector<std::pair<PointId, double>>> neighbors(
      std::span<const double> q, double radius,
      obs::MetricsRegistry* metrics = nullptr) const;

  [[nodiscard]] StatusOr<PointInfo> point_info(
      std::uint64_t id, obs::MetricsRegistry* metrics = nullptr) const;

  // ---- model facts -------------------------------------------------------
  [[nodiscard]] std::size_t size() const noexcept { return snap_.data.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return snap_.data.dim(); }
  [[nodiscard]] const DbscanParams& params() const noexcept {
    return snap_.params;
  }
  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return num_clusters_;
  }
  [[nodiscard]] const ClusteringResult& result() const noexcept {
    return snap_.result;
  }
  [[nodiscard]] const Dataset& dataset() const noexcept { return snap_.data; }
  [[nodiscard]] const std::string& report_json() const noexcept {
    return snap_.report_json;
  }
  [[nodiscard]] const MuRTree& tree() const noexcept { return *tree_; }

 private:
  friend Status save_model(const ClusterModel& model, const std::string& path);

  explicit ClusterModel(ModelSnapshot snap) : snap_(std::move(snap)) {}

  // The un-counted core of classify: `performed` reports whether a µR-tree
  // search ran (vs the hash fast path).
  [[nodiscard]] Classify classify_impl(std::span<const double> q,
                                       bool& performed) const;

  ModelSnapshot snap_;
  std::size_t num_clusters_ = 0;
  // Rebuilt index over snap_.data. unique_ptr: the tree holds a pointer to
  // the dataset member, so the model is pinned behind a shared_ptr and never
  // copied or moved after build().
  std::unique_ptr<MuRTree> tree_;
  // Exact-match fast path: FNV-1a over the point's coordinate bytes ->
  // candidate ids (multimap: hash collisions resolved by memcmp).
  std::unordered_multimap<std::uint64_t, PointId> exact_;
};

// The refresh seam: readers take a consistent shared_ptr snapshot with one
// atomic load; refresh() publishes a successor with one atomic exchange.
// In-flight requests keep the old model alive until their shared_ptr drops.
class ServedModel {
 public:
  explicit ServedModel(std::shared_ptr<const ClusterModel> m)
      : model_(std::move(m)) {}

  [[nodiscard]] std::shared_ptr<const ClusterModel> get() const {
    return model_.load(std::memory_order_acquire);
  }
  void refresh(std::shared_ptr<const ClusterModel> m,
               obs::MetricsRegistry* metrics = nullptr);

 private:
  std::atomic<std::shared_ptr<const ClusterModel>> model_;
};

// Snapshots a streaming clusterer (its exact offline result over everything
// ingested so far) and builds a servable model from it — the refresh-loop
// producer (examples/stream_clustering.cpp). Copies the materialized dataset;
// the stream keeps ingesting independently afterwards.
[[nodiscard]] StatusOr<std::shared_ptr<const ClusterModel>> model_from_stream(
    StreamingMuDbscan& stream, ThreadPool* pool = nullptr,
    RunGuard* guard = nullptr);

// Convenience: snapshot a servable model back to disk (the inverse of
// ClusterModel::build on load_model's output).
[[nodiscard]] Status save_model(const ClusterModel& model,
                                const std::string& path);

}  // namespace udb::serve
