// Wire protocol for udbscan_serve (docs/SERVING.md): length-prefixed binary
// frames over a loopback TCP stream. Every frame is
//
//   u32 frame_bytes | frame body
//
// and since protocol v2 every body is an integrity-checked envelope:
//
//   u8 0xB2 (v2 marker) | u64 request_id | u32 crc32 | payload
//
// The CRC (IEEE CRC-32 over request_id bytes ++ payload) is verified before
// any payload parsing, so a frame corrupted in flight is *detected at the
// transport* and answered with a clean DATA_LOSS — never parsed, never
// answered with garbage. The request id is chosen by the client and echoed
// verbatim by the server: it keys idempotent retries (classify is read-only,
// so at-least-once delivery is safe) and catches a desynced stream (an echo
// mismatch is DATA_LOSS). A v1 body (one that starts with a bare message
// type byte) is recognized and refused with a clean UNIMPLEMENTED error in
// v1 framing, so legacy clients fail loudly, not mysteriously.
//
// Inside the envelope the payload starts with a u8 message type. Responses
// echo the request type and carry a u8 status code (StatusCode numeric
// value); a non-OK response replaces the payload with a u32-length error
// message. Decoding is quarantine-style: any malformed payload — unknown
// type, truncation, trailing bytes, non-finite floats, absurd counts —
// comes back as a clean INVALID_ARGUMENT / DATA_LOSS Status, never UB (the
// server answers with an error frame; it does not die).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "serve/model.hpp"

namespace udb::serve {

// Frames larger than this are rejected on read (both sides) before any
// allocation proportional to the claimed length happens.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

// Points per classify request are additionally capped so a single frame
// cannot ask for unbounded work (docs/SERVING.md, operational limits).
inline constexpr std::uint32_t kMaxBatchPoints = 1u << 20;

// Protocol v2 envelope. The marker byte deliberately collides with no v1
// message type (v1 bodies start with 1..6), so the two generations are
// distinguishable from the first byte of the body.
inline constexpr std::uint8_t kProtocolV2Marker = 0xB2;
inline constexpr std::size_t kFrameV2HeaderBytes =
    1 /*marker*/ + 8 /*request_id*/ + 4 /*crc32*/;

// Trace-context extension (docs/OBSERVABILITY.md, "Live telemetry"): a
// traced frame replaces the 0xB2 marker with 0xB3 and inserts a trace id and
// parent span id between the request id and the CRC, all CRC-covered:
//
//   u8 0xB3 | u64 request_id | u64 trace_id | u64 parent_span_id | u32 crc32
//          | payload
//
// Untraced frames keep the byte-identical 0xB2 layout, so a v2-only peer and
// a trace-aware peer interoperate: parse_frame_v2 accepts both markers and
// reports trace_id = 0 for untraced frames. Responses are always untraced
// (the client already knows the trace id it sent).
inline constexpr std::uint8_t kProtocolV2TracedMarker = 0xB3;
inline constexpr std::size_t kFrameV2TracedHeaderBytes =
    1 /*marker*/ + 8 /*request_id*/ + 8 /*trace_id*/ + 8 /*parent_span_id*/ +
    4 /*crc32*/;

enum class MsgType : std::uint8_t {
  kPing = 1,       // liveness probe, empty payload both ways
  kClassify = 2,   // req: u32 count | u32 dim | f64 coords[count*dim]
  kNeighbors = 3,  // req: f64 radius | u32 dim | f64 coords[dim]
  kPointInfo = 4,  // req: u64 id
  kStats = 5,      // req: empty; resp: u32 len | metrics JSON
  kModelInfo = 6,  // req: empty; resp: n, dim, eps, min_pts, num_clusters
  kTelemetry = 7,  // req: u8 format; resp: live telemetry (v2-only message)
};

// Requested exposition for kTelemetry. Binary is the machine form
// (TelemetryReport fields on the wire); json and prometheus return rendered
// text in Response::json.
enum class TelemetryFormat : std::uint8_t {
  kBinary = 0,
  kJson = 1,
  kPrometheus = 2,
};

// One rolling window of the server's SlidingWindow aggregation.
struct TelemetryWindow {
  double window_seconds = 0.0;
  std::uint64_t requests = 0;  // requests completed inside the window
  std::uint64_t errors = 0;    // ... answered non-OK
  std::uint64_t shed = 0;      // ... shed at admission
  double qps = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

// Live telemetry snapshot served by kTelemetry. Totals are cumulative since
// server start (from the MetricsRegistry); windows are rolling 1 s / 10 s /
// 60 s views (from the SlidingWindow).
struct TelemetryReport {
  std::uint64_t uptime_us = 0;
  std::uint64_t inflight = 0;  // requests currently admitted
  std::uint64_t requests_total = 0;
  std::uint64_t errors_total = 0;
  std::uint64_t shed_load_total = 0;
  std::uint64_t shed_connections_total = 0;
  std::uint64_t corrupt_frames_total = 0;
  std::uint64_t idle_disconnects_total = 0;
  std::uint64_t classify_points = 0;
  std::uint64_t classify_performed = 0;
  std::uint64_t classify_avoided_exact = 0;
  TelemetryWindow windows[3];  // 1 s, 10 s, 60 s
};
inline constexpr std::size_t kTelemetryWindows = 3;

struct Request {
  MsgType type = MsgType::kPing;
  std::uint32_t dim = 0;            // classify / neighbors
  std::vector<double> coords;       // classify: count*dim; neighbors: dim
  double radius = 0.0;              // neighbors
  std::uint64_t point_id = 0;       // point_info
  TelemetryFormat telemetry_format = TelemetryFormat::kBinary;  // telemetry
};

struct ModelInfo {
  std::uint64_t n = 0;
  std::uint32_t dim = 0;
  double eps = 0.0;
  std::uint32_t min_pts = 0;
  std::uint64_t num_clusters = 0;
};

struct Response {
  MsgType type = MsgType::kPing;
  StatusCode code = StatusCode::kOk;
  std::string error;  // set iff code != kOk

  std::vector<Classify> classify;                         // kClassify
  std::vector<std::pair<std::uint64_t, double>> neighbors;  // (id, sq dist)
  PointInfo point;                                        // kPointInfo
  std::string json;       // kStats; kTelemetry text formats
  ModelInfo model;                                        // kModelInfo
  TelemetryFormat telemetry_format = TelemetryFormat::kBinary;  // kTelemetry
  TelemetryReport telemetry;                              // kTelemetry binary

  [[nodiscard]] Status to_status() const {
    return Status(code, error);
  }
};

// Body codecs (the u32 frame length itself lives in net.*).
[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& req);
[[nodiscard]] Status decode_request(std::span<const std::uint8_t> body,
                                    Request& out);
[[nodiscard]] std::vector<std::uint8_t> encode_response(const Response& resp);
[[nodiscard]] Status decode_response(std::span<const std::uint8_t> body,
                                     Response& out);

// ---- protocol v2 envelope ------------------------------------------------

// A parsed v2 frame. `payload` aliases the buffer handed to parse_frame_v2.
// trace_id / parent_span_id are 0 for untraced (0xB2) frames.
struct FrameV2 {
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::span<const std::uint8_t> payload;
};

// Wraps a payload in the v2 envelope. With trace_id == 0 and
// parent_span_id == 0 this emits the byte-identical untraced 0xB2 frame
// (CRC32 over request_id bytes ++ payload); otherwise the 0xB3 traced frame
// (CRC32 over request_id ++ trace_id ++ parent_span_id ++ payload).
[[nodiscard]] std::vector<std::uint8_t> frame_v2(
    std::uint64_t request_id, std::span<const std::uint8_t> payload,
    std::uint64_t trace_id = 0, std::uint64_t parent_span_id = 0);

// Verifies and unwraps a v2 frame body. DATA_LOSS on a truncated envelope or
// a CRC mismatch (corruption detected at the transport — the payload is
// never parsed); UNIMPLEMENTED when the body is a legacy v1 frame (first
// byte is a known v1 message type), so the caller can refuse it cleanly in
// v1 framing; DATA_LOSS on any other first byte.
[[nodiscard]] Status parse_frame_v2(std::span<const std::uint8_t> body,
                                    FrameV2& out);

// Builds the error frame the server answers a failed request with.
[[nodiscard]] Response error_response(MsgType type, const Status& s);

}  // namespace udb::serve
