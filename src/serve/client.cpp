#include "serve/client.hpp"

namespace udb::serve {

StatusOr<Client> Client::connect(std::uint16_t port, double timeout_seconds) {
  StatusOr<Socket> s = connect_loopback(port, timeout_seconds);
  if (!s.ok()) return s.status();
  return Client(std::move(*s));
}

StatusOr<Response> Client::roundtrip(const Request& req) {
  return roundtrip_with_id(allocate_request_id(), req);
}

StatusOr<Response> Client::roundtrip_with_id(std::uint64_t request_id,
                                             const Request& req,
                                             std::uint64_t trace_id,
                                             std::uint64_t parent_span_id) {
  if (Status st = write_frame(sock_, frame_v2(request_id, encode_request(req),
                                              trace_id, parent_span_id));
      !st.ok())
    return st;
  StatusOr<std::vector<std::uint8_t>> frame = read_frame(sock_);
  if (!frame.ok()) return frame.status();
  FrameV2 env;
  if (Status st = parse_frame_v2(std::span<const std::uint8_t>(*frame), env);
      !st.ok())
    return st;
  Response resp;
  if (Status st = decode_response(env.payload, resp); !st.ok()) return st;
  // Echo check: the answer must be for the request we sent. Request id 0 is
  // the server's unattributed-error channel (connection shed before our
  // request, or our envelope arrived corrupted) and is only valid as an
  // error.
  if (env.request_id != request_id &&
      !(env.request_id == 0 && resp.code != StatusCode::kOk))
    return DataLossError(
        "client: response echoes request id " +
        std::to_string(env.request_id) + ", expected " +
        std::to_string(request_id));
  return resp;
}

namespace {

// Folds transport and server-side failure into one Status; on success checks
// the response type matches what was asked.
Status unwrap(const StatusOr<Response>& r, MsgType want, Response& out) {
  if (!r.ok()) return r.status();
  if (r->code != StatusCode::kOk) return r->to_status();
  if (r->type != want)
    return DataLossError("client: response type does not match request");
  out = *r;
  return Status::Ok();
}

}  // namespace

Status Client::ping() {
  Request req;
  req.type = MsgType::kPing;
  Response resp;
  return unwrap(roundtrip(req), MsgType::kPing, resp);
}

StatusOr<std::vector<Classify>> Client::classify(std::span<const double> coords,
                                                 std::uint32_t dim) {
  Request req;
  req.type = MsgType::kClassify;
  req.dim = dim;
  req.coords.assign(coords.begin(), coords.end());
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kClassify, resp); !st.ok())
    return st;
  return std::move(resp.classify);
}

StatusOr<std::vector<std::pair<std::uint64_t, double>>> Client::neighbors(
    std::span<const double> q, double radius) {
  Request req;
  req.type = MsgType::kNeighbors;
  req.dim = static_cast<std::uint32_t>(q.size());
  req.coords.assign(q.begin(), q.end());
  req.radius = radius;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kNeighbors, resp); !st.ok())
    return st;
  return std::move(resp.neighbors);
}

StatusOr<PointInfo> Client::point_info(std::uint64_t id) {
  Request req;
  req.type = MsgType::kPointInfo;
  req.point_id = id;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kPointInfo, resp); !st.ok())
    return st;
  return resp.point;
}

StatusOr<std::string> Client::stats_json() {
  Request req;
  req.type = MsgType::kStats;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kStats, resp); !st.ok())
    return st;
  return std::move(resp.json);
}

StatusOr<ModelInfo> Client::model_info() {
  Request req;
  req.type = MsgType::kModelInfo;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kModelInfo, resp); !st.ok())
    return st;
  return resp.model;
}

StatusOr<TelemetryReport> Client::telemetry() {
  Request req;
  req.type = MsgType::kTelemetry;
  req.telemetry_format = TelemetryFormat::kBinary;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kTelemetry, resp); !st.ok())
    return st;
  if (resp.telemetry_format != TelemetryFormat::kBinary)
    return DataLossError("client: telemetry format does not match request");
  return resp.telemetry;
}

StatusOr<std::string> Client::telemetry_text(TelemetryFormat format) {
  Request req;
  req.type = MsgType::kTelemetry;
  req.telemetry_format = format;
  Response resp;
  if (Status st = unwrap(roundtrip(req), MsgType::kTelemetry, resp); !st.ok())
    return st;
  if (resp.telemetry_format != format)
    return DataLossError("client: telemetry format does not match request");
  return std::move(resp.json);
}

StatusOr<Response> Client::raw_roundtrip(std::span<const std::uint8_t> body) {
  if (Status st = write_frame(sock_, body); !st.ok()) return st;
  StatusOr<std::vector<std::uint8_t>> frame = read_frame(sock_);
  if (!frame.ok()) return frame.status();
  // The server answers v2-framed, except to a frame it classified as v1 —
  // that answer comes back bare so a legacy client can decode it.
  std::span<const std::uint8_t> payload(*frame);
  FrameV2 env;
  if (parse_frame_v2(payload, env).ok()) payload = env.payload;
  Response resp;
  if (Status st = decode_response(payload, resp); !st.ok()) return st;
  return resp;
}

}  // namespace udb::serve
