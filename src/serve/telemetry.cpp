#include "serve/telemetry.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/report.hpp"

namespace udb::serve {

namespace {

void write_window_object(obs::JsonWriter& w, const TelemetryWindow& win) {
  w.begin_object();
  w.kv("window_seconds", win.window_seconds);
  w.kv("requests", win.requests);
  w.kv("errors", win.errors);
  w.kv("shed", win.shed);
  w.kv("qps", win.qps);
  w.kv("p50_us", win.p50_us);
  w.kv("p90_us", win.p90_us);
  w.kv("p99_us", win.p99_us);
  w.kv("p999_us", win.p999_us);
  w.kv("max_us", win.max_us);
  w.end_object();
}

void write_serve_ledger(obs::JsonWriter& w, const TelemetryReport& t) {
  // The serving counterpart of the engine's query-avoidance ledger: every
  // classify answer is a performed muR-tree search or an exact-match skip.
  w.key("serve_ledger");
  w.begin_object();
  w.kv("classify_points", t.classify_points);
  w.kv("performed", t.classify_performed);
  w.kv("avoided_exact", t.classify_avoided_exact);
  w.kv("holds",
       t.classify_performed + t.classify_avoided_exact == t.classify_points);
  w.end_object();
}

void write_telemetry_body(obs::JsonWriter& w, const TelemetryReport& t) {
  w.kv("uptime_seconds", static_cast<double>(t.uptime_us) / 1e6);
  w.kv("inflight", t.inflight);
  w.key("totals");
  w.begin_object();
  w.kv("requests", t.requests_total);
  w.kv("errors", t.errors_total);
  w.kv("shed_load", t.shed_load_total);
  w.kv("shed_connections", t.shed_connections_total);
  w.kv("corrupt_frames", t.corrupt_frames_total);
  w.kv("idle_disconnects", t.idle_disconnects_total);
  w.end_object();
  write_serve_ledger(w, t);
  w.key("windows");
  w.begin_array();
  for (const TelemetryWindow& win : t.windows) write_window_object(w, win);
  w.end_array();
}

void append_metric_header(std::string& out, const char* name,
                          const char* type, const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_sample(std::string& out, const char* name, const char* labels,
                   double value) {
  char line[256];
  std::snprintf(line, sizeof line, "%s%s %.17g\n", name, labels, value);
  out += line;
}

const char* window_label(double seconds) {
  if (seconds <= 1.0) return "{window=\"1s\"}";
  if (seconds <= 10.0) return "{window=\"10s\"}";
  return "{window=\"60s\"}";
}

}  // namespace

TelemetryWindow telemetry_window_from(const obs::WindowStats& w) {
  TelemetryWindow out;
  out.window_seconds = w.window_seconds;
  out.requests = w.counter(obs::WinCounter::kRequests);
  out.errors = w.counter(obs::WinCounter::kErrors);
  out.shed = w.counter(obs::WinCounter::kShed);
  out.qps = w.qps();
  out.p50_us = w.percentile(0.50);
  out.p90_us = w.percentile(0.90);
  out.p99_us = w.percentile(0.99);
  out.p999_us = w.percentile(0.999);
  out.max_us = static_cast<double>(w.max_us);
  return out;
}

std::string telemetry_json(const TelemetryReport& t) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kStatsSchemaVersion);
  w.kv("tool", "udbscan_serve");
  w.kv("kind", "telemetry");
  write_telemetry_body(w, t);
  w.end_object();
  return w.str();
}

std::string telemetry_prometheus(const TelemetryReport& t,
                                 const obs::MetricsSnapshot& snap) {
  std::string out;
  out.reserve(8192);

  // Cumulative counters, one family per catalog entry. The name mapping is
  // mechanical — udbscan_<catalog name>_total — so the catalog table in
  // docs/OBSERVABILITY.md doubles as the Prometheus dictionary.
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    const std::string name =
        std::string("udbscan_") + obs::counter_name(c) + "_total";
    append_metric_header(out, name.c_str(), "counter", obs::counter_unit(c));
    append_sample(out, name.c_str(), "",
                  static_cast<double>(snap.counter(c)));
  }

  append_metric_header(out, "udbscan_uptime_seconds", "gauge",
                       "seconds since server start");
  append_sample(out, "udbscan_uptime_seconds", "",
                static_cast<double>(t.uptime_us) / 1e6);
  append_metric_header(out, "udbscan_inflight_requests", "gauge",
                       "requests currently admitted");
  append_sample(out, "udbscan_inflight_requests", "",
                static_cast<double>(t.inflight));

  // Rolling windows as labeled gauges.
  append_metric_header(out, "udbscan_window_qps", "gauge",
                       "rolling requests per second");
  for (const TelemetryWindow& win : t.windows)
    append_sample(out, "udbscan_window_qps", window_label(win.window_seconds),
                  win.qps);
  struct Quantile {
    const char* suffix;
    double TelemetryWindow::*field;
  };
  const Quantile quantiles[] = {
      {"udbscan_window_latency_p50_us", &TelemetryWindow::p50_us},
      {"udbscan_window_latency_p90_us", &TelemetryWindow::p90_us},
      {"udbscan_window_latency_p99_us", &TelemetryWindow::p99_us},
      {"udbscan_window_latency_p999_us", &TelemetryWindow::p999_us},
  };
  for (const Quantile& q : quantiles) {
    append_metric_header(out, q.suffix, "gauge",
                         "rolling request latency percentile (microseconds)");
    for (const TelemetryWindow& win : t.windows)
      append_sample(out, q.suffix, window_label(win.window_seconds),
                    win.*(q.field));
  }

  // Cumulative request-latency histogram from the log2 registry histogram.
  // Registry bucket b >= 1 holds values in [2^(b-1), 2^b), i.e. every value
  // in it is <= 2^b - 1; bucket 0 holds the exact value 0.
  const obs::HistSnapshot& h = snap.hist(obs::Hist::kServeRequestUs);
  append_metric_header(out, "udbscan_serve_request_us", "histogram",
                       "request wall time (microseconds)");
  std::size_t top = 0;
  for (std::size_t b = 0; b < obs::kHistBuckets; ++b)
    if (h.buckets[b] != 0) top = b;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b <= top && b < obs::kHistBuckets - 1; ++b) {
    cum += h.buckets[b];
    const double le =
        b == 0 ? 0.0 : static_cast<double>((std::uint64_t{1} << b) - 1);
    char labels[64];
    std::snprintf(labels, sizeof labels, "{le=\"%.17g\"}", le);
    append_sample(out, "udbscan_serve_request_us_bucket", labels,
                  static_cast<double>(cum));
  }
  append_sample(out, "udbscan_serve_request_us_bucket", "{le=\"+Inf\"}",
                static_cast<double>(h.count));
  append_sample(out, "udbscan_serve_request_us_sum", "",
                static_cast<double>(h.sum));
  append_sample(out, "udbscan_serve_request_us_count", "",
                static_cast<double>(h.count));
  return out;
}

std::string stats_document_json(const StatsDocInputs& in) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kStatsSchemaVersion);
  w.kv("tool", in.tool);
  w.kv("protocol_version", 2);
  if (in.has_model) {
    w.key("model");
    w.begin_object();
    w.kv("n", in.model.n);
    w.kv("dim", in.model.dim);
    w.kv("eps", in.model.eps);
    w.kv("min_pts", in.model.min_pts);
    w.kv("num_clusters", in.model.num_clusters);
    w.end_object();
  }
  if (in.has_serve_ledger) write_serve_ledger(w, in.telemetry);
  if (in.has_telemetry) {
    w.key("telemetry");
    w.begin_object();
    write_telemetry_body(w, in.telemetry);
    w.end_object();
  }
  // The full registry catalog, wrapped the same way the bench artifacts wrap
  // theirs, so consumers address it as metrics.counters.* uniformly.
  w.key("metrics");
  w.begin_object();
  obs::write_metrics_snapshot(w, in.snap, 0);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace udb::serve
