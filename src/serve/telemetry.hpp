// Live-telemetry rendering (docs/OBSERVABILITY.md, "Live telemetry"): the
// shared document builders behind the kTelemetry RPC and the serving-tier
// stats documents. Everything here is pure serialization — the server builds
// a TelemetryReport from its registry + sliding window and hands it over;
// these functions turn it into the structured JSON report schema or the
// Prometheus text exposition.
//
// The stats document (schema_version 2) unifies what used to be per-tool
// hand-rolled JSON: QueryServer::stats_json() and
// RetryingClient::client_stats_json() both render through
// stats_document_json(), so the key set is pinned in one place (golden-key
// test in tests/serve/test_telemetry.cpp) and every document carries the
// same metrics embed.

#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/window.hpp"
#include "serve/protocol.hpp"

namespace udb::serve {

// The serving stats document schema. Version history:
//   1  (PR 5) hand-rolled server stats: model + serve_ledger + metrics embed
//   2  (this PR) unified builder: adds "telemetry" (uptime/inflight/windows)
//      and is shared by the server and the retrying client documents.
inline constexpr int kStatsSchemaVersion = 2;

// Converts one merged sliding-window view into the wire/report form.
[[nodiscard]] TelemetryWindow telemetry_window_from(const obs::WindowStats& w);

// Standalone telemetry document (what `udbscan_query --telemetry` prints):
// totals, the classify ledger with its invariant evaluated, and the rolling
// windows.
[[nodiscard]] std::string telemetry_json(const TelemetryReport& t);

// Prometheus text exposition (version 0.0.4): cumulative counters as
// udbscan_<name>_total, uptime/inflight gauges, per-window gauges labeled
// {window="1s"|"10s"|"60s"}, and the serve_request_us histogram re-based to
// Prometheus cumulative le-buckets. Name mapping documented in
// docs/OBSERVABILITY.md.
[[nodiscard]] std::string telemetry_prometheus(
    const TelemetryReport& t, const obs::MetricsSnapshot& snap);

// Inputs for the unified stats document. `tool` names the producer; the
// model and telemetry sections are emitted only when their flags are set.
struct StatsDocInputs {
  const char* tool = "udbscan_serve";
  bool has_model = false;
  ModelInfo model;
  bool has_serve_ledger = false;  // server documents only
  bool has_telemetry = false;
  TelemetryReport telemetry;
  obs::MetricsSnapshot snap;
};

[[nodiscard]] std::string stats_document_json(const StatsDocInputs& in);

}  // namespace udb::serve
