// Deterministic fault injection for the serving transport (serve/net.*) —
// the TCP counterpart of the minimpi fault runtime (mpi/fault.hpp,
// docs/FAULT_MODEL.md). An installed NetFaultPlan turns every frame
// operation into a seeded dice roll:
//
//   * write faults — a frame leaving through write_frame can be delayed,
//     corrupted (one payload byte flipped — what the protocol-v2 CRC must
//     catch), truncated (a prefix crosses the wire, then the connection
//     closes), or dropped (the connection is shut down before sending);
//   * read faults — a frame arriving through read_frame can be delayed,
//     corrupted after reception, truncated (surfaces as DATA_LOSS, exactly
//     like a peer dying mid-frame), or dropped (connection shut down);
//   * connection crash points — the plan can name one connection by its
//     creation ordinal and kill it after a fixed number of frame operations,
//     which is how the harness scripts "server dies mid-batch"
//     deterministically.
//
// Decisions depend only on (seed, connection ordinal, per-connection
// operation sequence, direction), never on wall time, so a fixed seed
// replays the same fault pattern whenever connections are created in a
// deterministic order (single-threaded harness traffic guarantees this;
// concurrent clients get per-connection determinism).
//
// Without a plan installed the fast path is one relaxed atomic load per
// frame operation — the same zero-cost-when-unset contract as the minimpi
// runtime's plan pointer.

#pragma once

#include <cstdint>

#include "mpi/fault.hpp"  // fault_hash / fault_unit: the shared decision stream

namespace udb::serve {

// Per-direction fault rates, rolled once per frame operation.
struct NetOpFaults {
  double drop_rate = 0.0;      // connection shut down instead of the op
  double corrupt_rate = 0.0;   // one frame-body byte flipped
  double truncate_rate = 0.0;  // partial frame, then connection close
  double delay_rate = 0.0;     // op delayed by delay_seconds (real time)
  double delay_seconds = 2e-3;
};

struct NetFaultPlan {
  std::uint64_t seed = 0;
  NetOpFaults read;
  NetOpFaults write;

  // Crash point: the `crash_conn`-th faultable connection (0-based, in
  // creation order) is shut down just before its `crash_after_ops`-th frame
  // operation (reads and writes both count). -1 disables.
  std::int64_t crash_conn = -1;
  std::uint64_t crash_after_ops = 0;
};

// Injected-fault tallies (process-wide, relaxed atomics underneath).
struct NetFaultCounts {
  std::uint64_t ops = 0;  // frame operations that rolled the dice
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t crashed = 0;
};

// Installs (nullptr uninstalls) the process-wide plan. The plan is not owned
// and must outlive the installation; install before traffic starts and
// uninstall after it drains (tests/harness do exactly that).
void install_net_fault_plan(const NetFaultPlan* plan) noexcept;
[[nodiscard]] const NetFaultPlan* net_fault_plan() noexcept;

[[nodiscard]] NetFaultCounts net_fault_counts() noexcept;
// Zeroes the counters and restarts connection-ordinal assignment, so each
// scenario in a harness run starts from a reproducible state.
void reset_net_fault_state() noexcept;

// Internal to net.cpp: claims the next connection ordinal.
[[nodiscard]] std::int64_t next_net_fault_conn_id() noexcept;
// Internal to net.cpp: bumps one tally.
enum class NetFaultKind { kOp, kDrop, kCorrupt, kTruncate, kDelay, kCrash };
void count_net_fault(NetFaultKind kind) noexcept;

}  // namespace udb::serve
