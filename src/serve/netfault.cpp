#include "serve/netfault.hpp"

#include <atomic>

namespace udb::serve {

namespace {

std::atomic<const NetFaultPlan*> g_plan{nullptr};
std::atomic<std::int64_t> g_next_conn{0};

struct Tallies {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> truncated{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> crashed{0};
};
Tallies g_tallies;

}  // namespace

void install_net_fault_plan(const NetFaultPlan* plan) noexcept {
  g_plan.store(plan, std::memory_order_release);
}

const NetFaultPlan* net_fault_plan() noexcept {
  return g_plan.load(std::memory_order_acquire);
}

NetFaultCounts net_fault_counts() noexcept {
  NetFaultCounts c;
  c.ops = g_tallies.ops.load(std::memory_order_relaxed);
  c.dropped = g_tallies.dropped.load(std::memory_order_relaxed);
  c.corrupted = g_tallies.corrupted.load(std::memory_order_relaxed);
  c.truncated = g_tallies.truncated.load(std::memory_order_relaxed);
  c.delayed = g_tallies.delayed.load(std::memory_order_relaxed);
  c.crashed = g_tallies.crashed.load(std::memory_order_relaxed);
  return c;
}

void reset_net_fault_state() noexcept {
  g_next_conn.store(0, std::memory_order_relaxed);
  g_tallies.ops.store(0, std::memory_order_relaxed);
  g_tallies.dropped.store(0, std::memory_order_relaxed);
  g_tallies.corrupted.store(0, std::memory_order_relaxed);
  g_tallies.truncated.store(0, std::memory_order_relaxed);
  g_tallies.delayed.store(0, std::memory_order_relaxed);
  g_tallies.crashed.store(0, std::memory_order_relaxed);
}

std::int64_t next_net_fault_conn_id() noexcept {
  return g_next_conn.fetch_add(1, std::memory_order_relaxed);
}

void count_net_fault(NetFaultKind kind) noexcept {
  switch (kind) {
    case NetFaultKind::kOp: g_tallies.ops.fetch_add(1); break;
    case NetFaultKind::kDrop: g_tallies.dropped.fetch_add(1); break;
    case NetFaultKind::kCorrupt: g_tallies.corrupted.fetch_add(1); break;
    case NetFaultKind::kTruncate: g_tallies.truncated.fetch_add(1); break;
    case NetFaultKind::kDelay: g_tallies.delayed.fetch_add(1); break;
    case NetFaultKind::kCrash: g_tallies.crashed.fetch_add(1); break;
  }
}

}  // namespace udb::serve
