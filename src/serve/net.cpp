#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "serve/protocol.hpp"

namespace udb::serve {

namespace {

Status errno_status(const char* what) {
  return UnavailableError(std::string(what) + ": " + std::strerror(errno));
}

// Full-buffer send, EINTR-safe. MSG_NOSIGNAL: a peer that hung up yields
// EPIPE (a Status) instead of killing the process with SIGPIPE.
Status write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return errno_status("send failed");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

// Full-buffer recv. `eof_ok` distinguishes a clean close at a frame boundary
// (UNAVAILABLE "connection closed") from truncation mid-frame (DATA_LOSS).
Status read_all(int fd, std::uint8_t* p, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return errno_status("recv failed");
    }
    if (r == 0) {
      if (eof_ok && got == 0)
        return UnavailableError("connection closed");
      return DataLossError("connection closed mid-frame (" +
                           std::to_string(got) + " of " + std::to_string(n) +
                           " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<Socket> listen_loopback(std::uint16_t port,
                                 std::uint16_t& bound_port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return errno_status("socket failed");
  const int one = 1;
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0)
    return errno_status("bind failed");
  if (::listen(s.fd(), SOMAXCONN) != 0) return errno_status("listen failed");

  socklen_t len = sizeof addr;
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return errno_status("getsockname failed");
  bound_port = ntohs(addr.sin_port);
  return s;
}

StatusOr<Socket> accept_connection(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      const int one = 1;
      (void)::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return s;
    }
    if (errno == EINTR) continue;
    return errno_status("accept failed");
  }
}

StatusOr<Socket> connect_loopback(std::uint16_t port, double timeout_seconds) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return errno_status("socket failed");

  if (timeout_seconds > 0.0 && std::isfinite(timeout_seconds)) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    (void)::setsockopt(s.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    (void)::setsockopt(s.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0)
    return UnavailableError("connect to 127.0.0.1:" + std::to_string(port) +
                            " failed: " + std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

Status write_frame(const Socket& s, std::span<const std::uint8_t> body) {
  if (body.size() > kMaxFrameBytes)
    return InvalidArgumentError("write_frame: body of " +
                                std::to_string(body.size()) +
                                " bytes exceeds the frame limit");
  const auto len = static_cast<std::uint32_t>(body.size());
  std::uint8_t prefix[4];
  std::memcpy(prefix, &len, sizeof prefix);
  if (Status st = write_all(s.fd(), prefix, sizeof prefix); !st.ok())
    return st;
  return write_all(s.fd(), body.data(), body.size());
}

StatusOr<std::vector<std::uint8_t>> read_frame(const Socket& s) {
  std::uint8_t prefix[4];
  if (Status st = read_all(s.fd(), prefix, sizeof prefix, /*eof_ok=*/true);
      !st.ok())
    return st;
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof len);
  if (len > kMaxFrameBytes)
    return DataLossError("read_frame: length prefix of " +
                         std::to_string(len) +
                         " bytes exceeds the frame limit of " +
                         std::to_string(kMaxFrameBytes));
  std::vector<std::uint8_t> body(len);
  if (len > 0)
    if (Status st = read_all(s.fd(), body.data(), len, /*eof_ok=*/false);
        !st.ok())
      return st;
  return body;
}

}  // namespace udb::serve
