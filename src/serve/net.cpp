#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "serve/netfault.hpp"
#include "serve/protocol.hpp"

namespace udb::serve {

// net.cpp-private bridge to Socket's fault-injection bookkeeping.
struct SocketFaultAccess {
  static std::int64_t id(const Socket& s) {
    if (s.fault_id_ < 0) s.fault_id_ = next_net_fault_conn_id();
    return s.fault_id_;
  }
  static std::uint64_t next_seq(const Socket& s) { return s.fault_seq_++; }
};

namespace {

Status errno_status(const char* what) {
  return UnavailableError(std::string(what) + ": " + std::strerror(errno));
}

// ---- fault injection (serve/netfault.hpp) --------------------------------
// One dice roll per frame operation; decisions keyed on (seed, connection
// ordinal, op sequence, direction) via the minimpi decision stream. Returns
// the action to apply. Zero cost when no plan is installed: callers branch
// on net_fault_plan() before reaching here.

enum class FaultAction { kNone, kDrop, kCorrupt, kTruncate, kCrash };

FaultAction roll_fault(const NetFaultPlan& plan, const Socket& s,
                       bool is_write, std::uint64_t& corrupt_salt) {
  const std::int64_t conn = SocketFaultAccess::id(s);
  const std::uint64_t seq = SocketFaultAccess::next_seq(s);
  count_net_fault(NetFaultKind::kOp);

  if (plan.crash_conn >= 0 && conn == plan.crash_conn &&
      seq >= plan.crash_after_ops) {
    count_net_fault(NetFaultKind::kCrash);
    return FaultAction::kCrash;
  }

  const NetOpFaults& ops = is_write ? plan.write : plan.read;
  const std::uint32_t dir = is_write ? 1u : 2u;
  const std::uint64_t h = mpi::fault_hash(plan.seed, static_cast<int>(conn),
                                          static_cast<int>(conn), dir, seq,
                                          /*salt=*/0);
  corrupt_salt = mpi::fault_mix(h);

  // Delay composes with the other faults (a slow link can also corrupt).
  if (ops.delay_rate > 0.0 &&
      mpi::fault_unit(mpi::fault_mix(h ^ 0xD31Au)) < ops.delay_rate) {
    count_net_fault(NetFaultKind::kDelay);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(ops.delay_seconds));
  }

  double u = mpi::fault_unit(h);
  if (u < ops.drop_rate) {
    count_net_fault(NetFaultKind::kDrop);
    return FaultAction::kDrop;
  }
  u -= ops.drop_rate;
  if (u < ops.corrupt_rate) {
    count_net_fault(NetFaultKind::kCorrupt);
    return FaultAction::kCorrupt;
  }
  u -= ops.corrupt_rate;
  if (u < ops.truncate_rate) {
    count_net_fault(NetFaultKind::kTruncate);
    return FaultAction::kTruncate;
  }
  return FaultAction::kNone;
}

// Full-buffer send, EINTR-safe. MSG_NOSIGNAL: a peer that hung up yields
// EPIPE (a Status) instead of killing the process with SIGPIPE.
Status write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return errno_status("send failed");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

// Full-buffer recv. `eof_ok` distinguishes a clean close at a frame boundary
// (UNAVAILABLE "connection closed") from truncation mid-frame (DATA_LOSS).
Status read_all(int fd, std::uint8_t* p, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      // SO_RCVTIMEO elapsed: the idle-timeout / per-attempt-timeout signal,
      // distinct from a dead peer (UNAVAILABLE) and from stream damage
      // (DATA_LOSS).
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return DeadlineExceededError("recv timed out");
      return errno_status("recv failed");
    }
    if (r == 0) {
      if (eof_ok && got == 0)
        return UnavailableError("connection closed");
      return DataLossError("connection closed mid-frame (" +
                           std::to_string(got) + " of " + std::to_string(n) +
                           " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    fault_id_ = o.fault_id_;
    fault_seq_ = o.fault_seq_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() const noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<Socket> listen_loopback(std::uint16_t port,
                                 std::uint16_t& bound_port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return errno_status("socket failed");
  const int one = 1;
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0)
    return errno_status("bind failed");
  if (::listen(s.fd(), SOMAXCONN) != 0) return errno_status("listen failed");

  socklen_t len = sizeof addr;
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return errno_status("getsockname failed");
  bound_port = ntohs(addr.sin_port);
  return s;
}

StatusOr<Socket> accept_connection(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      const int one = 1;
      (void)::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return s;
    }
    if (errno == EINTR) continue;
    // A transient connection-level failure (the peer vanished between the
    // kernel queue and our accept) should not count against the listener.
    if (errno == ECONNABORTED) continue;
    // Descriptor/buffer exhaustion is retryable after a backoff; the accept
    // loop must not spin on it (and must not treat it as a dead listener).
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM)
      return ResourceExhaustedError(std::string("accept failed: ") +
                                    std::strerror(errno));
    return errno_status("accept failed");
  }
}

void set_socket_timeouts(const Socket& s, double timeout_seconds) noexcept {
  timeval tv{};
  if (timeout_seconds > 0.0 && std::isfinite(timeout_seconds)) {
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    // Sub-microsecond deadlines still need a nonzero timeout to take effect.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

StatusOr<Socket> connect_loopback(std::uint16_t port, double timeout_seconds) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return errno_status("socket failed");

  if (timeout_seconds > 0.0 && std::isfinite(timeout_seconds))
    set_socket_timeouts(s, timeout_seconds);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0)
    return UnavailableError("connect to 127.0.0.1:" + std::to_string(port) +
                            " failed: " + std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

Status write_frame(const Socket& s, std::span<const std::uint8_t> body) {
  if (body.size() > kMaxFrameBytes)
    return InvalidArgumentError("write_frame: body of " +
                                std::to_string(body.size()) +
                                " bytes exceeds the frame limit");
  const auto len = static_cast<std::uint32_t>(body.size());
  std::uint8_t prefix[4];
  std::memcpy(prefix, &len, sizeof prefix);

  if (const NetFaultPlan* plan = net_fault_plan()) {
    std::uint64_t salt = 0;
    switch (roll_fault(*plan, s, /*is_write=*/true, salt)) {
      case FaultAction::kNone:
        break;
      case FaultAction::kCrash:
      case FaultAction::kDrop:
        // The connection dies instead of carrying the frame; the peer sees
        // EOF at its next read, this side sees a transport failure now.
        s.shutdown_both();
        return UnavailableError("netfault: injected connection drop on write");
      case FaultAction::kTruncate: {
        // A prefix crosses the wire, then the connection closes — the peer
        // must surface DATA_LOSS mid-frame, never a partial decode. The
        // sender's send() succeeded, so it reports OK (matching real TCP,
        // where buffered bytes are acknowledged before the RST arrives).
        const std::size_t keep = body.empty() ? 0 : (salt % body.size());
        (void)write_all(s.fd(), prefix, sizeof prefix);
        if (keep > 0) (void)write_all(s.fd(), body.data(), keep);
        s.shutdown_both();
        return Status::Ok();
      }
      case FaultAction::kCorrupt: {
        // One byte flipped in flight: the frame arrives with a valid length
        // prefix but damaged contents — exactly what the protocol-v2 CRC
        // exists to catch.
        std::vector<std::uint8_t> damaged(body.begin(), body.end());
        if (!damaged.empty())
          damaged[salt % damaged.size()] ^=
              static_cast<std::uint8_t>(0x01u << (salt % 8));
        if (Status st = write_all(s.fd(), prefix, sizeof prefix); !st.ok())
          return st;
        return write_all(s.fd(), damaged.data(), damaged.size());
      }
    }
  }

  if (Status st = write_all(s.fd(), prefix, sizeof prefix); !st.ok())
    return st;
  return write_all(s.fd(), body.data(), body.size());
}

StatusOr<std::vector<std::uint8_t>> read_frame(const Socket& s) {
  std::uint64_t fault_salt = 0;
  FaultAction fault = FaultAction::kNone;
  if (const NetFaultPlan* plan = net_fault_plan()) {
    fault = roll_fault(*plan, s, /*is_write=*/false, fault_salt);
    if (fault == FaultAction::kCrash || fault == FaultAction::kDrop) {
      s.shutdown_both();
      return UnavailableError("netfault: injected connection drop on read");
    }
  }

  std::uint8_t prefix[4];
  if (Status st = read_all(s.fd(), prefix, sizeof prefix, /*eof_ok=*/true);
      !st.ok())
    return st;
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof len);
  if (len > kMaxFrameBytes)
    return DataLossError("read_frame: length prefix of " +
                         std::to_string(len) +
                         " bytes exceeds the frame limit of " +
                         std::to_string(kMaxFrameBytes));
  std::vector<std::uint8_t> body(len);
  if (len > 0)
    if (Status st = read_all(s.fd(), body.data(), len, /*eof_ok=*/false);
        !st.ok())
      return st;

  if (fault == FaultAction::kTruncate) {
    // Receiver-side truncation: the frame was consumed off the wire (the
    // stream stays in sync) but the payload is reported lost mid-frame.
    return DataLossError("netfault: injected truncation on read (" +
                         std::to_string(fault_salt % (body.size() + 1)) +
                         " of " + std::to_string(body.size()) + " bytes)");
  }
  if (fault == FaultAction::kCorrupt && !body.empty())
    body[fault_salt % body.size()] ^=
        static_cast<std::uint8_t>(0x01u << (fault_salt % 8));
  return body;
}

}  // namespace udb::serve
