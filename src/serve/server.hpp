// QueryServer — the loopback TCP front end over a ServedModel
// (docs/SERVING.md): one accept thread, one worker thread per connection,
// length-prefixed binary frames (protocol.hpp). Designed for the repo's
// operational envelope — a handful of trusted local clients — not the open
// internet: loopback-only bind, hard frame/batch caps, per-request deadline.
//
// Concurrency model:
//   * Readers never lock: a request handler loads the current model with one
//     atomic shared_ptr load and keeps it alive for the whole request, so
//     refresh() can swap in a successor at any time without quiescing.
//   * The optional ThreadPool accelerates large classify batches. The pool
//     runs one job at a time (common/parallel.hpp), so concurrent connections
//     take pool_mu_ before fanning out; small batches classify inline and
//     skip the lock entirely.
//   * Every request is metered (serve_requests / serve_errors counters,
//     serve_request_us histogram) into the server's MetricsRegistry, which
//     the kStats request serializes — that JSON is what the bench and the CI
//     smoke job assert the classify ledger invariant on.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "serve/model.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace udb::serve {

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned ephemeral port
  // Per-request wall-clock deadline enforced via a RunGuard on the classify
  // path (cooperative per-chunk checkpoints); 0 = none. A tripped deadline
  // answers DEADLINE_EXCEEDED and bumps serve_deadline_exceeded.
  double request_deadline_seconds = 0.0;
  // Worker pool for large classify batches; <= 1 = classify inline.
  unsigned pool_threads = 0;
  // Batches with at least this many points fan out over the pool.
  std::size_t parallel_batch_threshold = 512;
  obs::Tracer* tracer = nullptr;  // optional, not owned
  // Trace "process" id stamped on this server's spans (obs::set_trace_pid),
  // so a merged client + replicas Chrome trace renders each replica as its
  // own process track. 0 = the default (client) track.
  int trace_pid = 0;

  // ---- overload protection (docs/SERVING.md failure-mode matrix) ---------
  // Connection budget: a connection accepted while this many are already
  // open is answered with one RESOURCE_EXHAUSTED shed frame and closed
  // (serve_shed_connections). 0 = unlimited.
  std::size_t max_connections = 0;
  // In-flight request budget across all connections: a request that would
  // exceed it is answered RESOURCE_EXHAUSTED without any model work
  // (serve_shed_load) — the client's cue to back off. 0 = unlimited.
  std::size_t max_inflight = 0;
  // Per-connection idle timeout: a peer that sends no frame for this long
  // is disconnected (serve_idle_disconnects), so half-open or stalled
  // clients cannot pin worker threads forever. 0 = none.
  double idle_timeout_seconds = 0.0;
  // Request-buffer memory budget, charged to the server's RunGuard per
  // in-flight frame; a frame whose bytes would exceed it is shed
  // RESOURCE_EXHAUSTED (serve_shed_load). 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
};

class QueryServer {
 public:
  explicit QueryServer(std::shared_ptr<const ClusterModel> model,
                       ServerConfig cfg = {});
  ~QueryServer();  // stop()s if still running
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens, and spawns the accept thread. Fails cleanly if the port
  // is taken.
  [[nodiscard]] Status start();
  // Idempotent: unblocks the accept thread and every in-flight connection,
  // then joins them all.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

  // Swaps the served model; in-flight requests finish on the old one.
  void refresh(std::shared_ptr<const ClusterModel> m);
  [[nodiscard]] std::shared_ptr<const ClusterModel> model() const {
    return served_.get();
  }

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  // The kStats response document: model facts + serve ledger + live
  // telemetry + full metrics snapshot, rendered through the unified
  // stats_document_json builder (schema_version 2; validated by
  // ci/serving_smoke.sh with json.tool).
  [[nodiscard]] std::string stats_json() const;

  // The kTelemetry snapshot: cumulative totals from the registry plus the
  // rolling 1 s / 10 s / 60 s windows from the sliding-window aggregator.
  [[nodiscard]] TelemetryReport telemetry_report() const;

  // Exposed for in-process tests: handles one decoded request exactly as a
  // connection worker would. `trace_id` tags the handler span for merged
  // request traces (0 = untraced).
  [[nodiscard]] Response handle(const Request& req, std::uint64_t trace_id);
  [[nodiscard]] Response handle(const Request& req) { return handle(req, 0); }

 private:
  void accept_loop();
  void serve_connection(Socket conn);
  Response handle_classify(const Request& req,
                           const std::shared_ptr<const ClusterModel>& model);

  // Microseconds since server construction on the steady clock — the time
  // base every sliding-window bucket is stamped with.
  [[nodiscard]] std::uint64_t now_us() const;

  ServedModel served_;
  ServerConfig cfg_;
  obs::MetricsRegistry metrics_;
  obs::SlidingWindow window_;  // wire-path rolling stats (1 s buckets)
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex pool_mu_;  // ThreadPool::run is single-job; serialize callers

  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::unordered_set<int> conn_fds_;  // open connection fds, for stop()

  // Overload accounting: in-flight requests across all connections, and the
  // request-buffer byte budget (RunGuard used purely for its thread-safe
  // try_charge/release arithmetic — no deadline, never check()ed).
  std::atomic<std::size_t> inflight_{0};
  RunGuard buffer_guard_;
};

}  // namespace udb::serve
