#include "mpi/minimpi.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/timer.hpp"
#include "obs/log.hpp"

namespace udb::mpi {

// One mailbox per destination rank: tag-matched FIFO queues keyed by
// (source, tag), a mutex + condvar, and a poison flag so that a crashed rank
// unblocks every receiver instead of hanging the run.
struct Runtime::Mailbox {
  struct Message {
    std::vector<std::byte> bytes;
    double arrival_vtime = 0.0;
  };

  enum class PopStatus { Ok, Poisoned, PeerGone, Timeout, Aborted };

  std::mutex mu;
  std::condition_variable cv;
  std::map<std::pair<int, Tag>, std::deque<Message>> queues;
  bool poisoned = false;

  void push(int src, Tag tag, Message msg) {
    {
      std::lock_guard<std::mutex> lock(mu);
      queues[{src, tag}].push_back(std::move(msg));
    }
    cv.notify_all();
  }

  Message pop(int src, Tag tag) {
    std::unique_lock<std::mutex> lock(mu);
    auto& q = queues[{src, tag}];
    cv.wait(lock, [&] { return poisoned || !q.empty(); });
    if (q.empty() && poisoned)
      throw std::runtime_error("minimpi: peer rank failed");
    Message msg = std::move(q.front());
    q.pop_front();
    return msg;
  }

  // Fault-mode pop: also fails when the peer is no longer running (no
  // message can ever arrive — its pushes happen-before its state change),
  // when the run is aborted, or when the real-time deadline elapses.
  // The queue is always checked first so a message that did arrive is never
  // lost to a racing state change.
  PopStatus pop_wait(int src, Tag tag, Message& out,
                     const std::atomic<int>& peer_state,
                     const std::atomic<bool>& aborted, double timeout_real) {
    std::unique_lock<std::mutex> lock(mu);
    auto& q = queues[{src, tag}];
    const auto deadline =
        timeout_real >= 0.0
            ? std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(timeout_real))
            : std::chrono::steady_clock::time_point::max();
    for (;;) {
      if (!q.empty()) {
        out = std::move(q.front());
        q.pop_front();
        return PopStatus::Ok;
      }
      if (poisoned) return PopStatus::Poisoned;
      if (aborted.load()) return PopStatus::Aborted;
      if (peer_state.load() != static_cast<int>(RankState::Running))
        return PopStatus::PeerGone;
      if (timeout_real >= 0.0) {
        if (cv.wait_until(lock, deadline) == std::cv_status::timeout &&
            q.empty())
          return PopStatus::Timeout;
      } else {
        cv.wait(lock);
      }
    }
  }

  void poison() {
    {
      std::lock_guard<std::mutex> lock(mu);
      poisoned = true;
    }
    cv.notify_all();
  }

  // Wakes every waiter so it re-checks abort/peer-state predicates.
  void kick() {
    {
      std::lock_guard<std::mutex> lock(mu);
    }
    cv.notify_all();
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu);
    queues.clear();
    poisoned = false;
  }
};

void Runtime::Counters::reset() noexcept {
  dropped = 0;
  delayed = 0;
  duplicated = 0;
  corrupted = 0;
  retries = 0;
  crashes = 0;
  timeouts = 0;
}

Runtime::Runtime(int nranks, CostModel cost) : nranks_(nranks), cost_(cost) {
  if (nranks < 1) throw std::invalid_argument("Runtime: nranks must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  vtimes_.assign(static_cast<std::size_t>(nranks), 0.0);
  states_ = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    states_[static_cast<std::size_t>(r)] =
        static_cast<int>(RankState::Finished);
}

Runtime::~Runtime() = default;

void Runtime::mark_rank(int rank, RankState st) {
  states_[static_cast<std::size_t>(rank)].store(static_cast<int>(st));
  for (auto& mb : mailboxes_) mb->kick();
}

FaultCounts Runtime::fault_counts() const noexcept {
  FaultCounts c;
  c.dropped = counters_.dropped.load();
  c.delayed = counters_.delayed.load();
  c.duplicated = counters_.duplicated.load();
  c.corrupted = counters_.corrupted.load();
  c.retries = counters_.retries.load();
  c.crashes = counters_.crashes.load();
  c.timeouts = counters_.timeouts.load();
  return c;
}

void Runtime::run(const std::function<void(Comm&)>& fn) {
  for (auto& mb : mailboxes_) mb->reset();
  std::fill(vtimes_.begin(), vtimes_.end(), 0.0);
  for (int r = 0; r < nranks_; ++r)
    states_[static_cast<std::size_t>(r)] =
        static_cast<int>(RankState::Running);
  aborted_ = false;
  crashed_.clear();
  counters_.reset();

  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));

  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &fn, &first_error, &error_mu] {
      Comm comm(this, r);
      comm.cpu_mark_ = ThreadCpuTimer::now();
      try {
        fn(comm);
        comm.settle_cpu();
        vtimes_[static_cast<std::size_t>(r)] = comm.vtime_;
        mark_rank(r, RankState::Finished);
      } catch (const RankCrashedError&) {
        // Injected crash: the rank dies, the run survives. Peers detect the
        // death through recv timeouts instead of being poisoned.
        vtimes_[static_cast<std::size_t>(r)] = comm.vtime_;
        ++counters_.crashes;
        {
          std::lock_guard<std::mutex> lock(crashed_mu_);
          crashed_.push_back(r);
        }
        mark_rank(r, RankState::Crashed);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        mark_rank(r, RankState::Crashed);
        for (auto& mb : mailboxes_) mb->poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  std::sort(crashed_.begin(), crashed_.end());
  if (first_error) std::rethrow_exception(first_error);
}

double Runtime::makespan() const {
  return *std::max_element(vtimes_.begin(), vtimes_.end());
}

// ---- Comm ----------------------------------------------------------------

Comm::Comm(Runtime* rt, int rank) : rt_(rt), rank_(rank) {
  if (rt_->plan_) {
    for (const SlowSpec& s : rt_->plan_->slowdowns)
      if (s.rank == rank_) slow_factor_ = s.factor;
    for (const CrashSpec& c : rt_->plan_->crashes)
      if (c.rank == rank_ && c.at_vtime >= 0.0)
        crash_at_vtime_ = crash_at_vtime_ < 0.0
                              ? c.at_vtime
                              : std::min(crash_at_vtime_, c.at_vtime);
  }
}

void Comm::settle_cpu() {
  const double now = ThreadCpuTimer::now();
  vtime_ += (now - cpu_mark_) * slow_factor_;
  cpu_mark_ = now;
}

void Comm::maybe_crash() {
  if (crash_at_vtime_ >= 0.0 && vtime_ >= crash_at_vtime_) {
    crash_at_vtime_ = -1.0;
    throw RankCrashedError("rank " + std::to_string(rank_) +
                           " at vtime threshold");
  }
}

void Comm::fault_point(const std::string& name) {
  if (!rt_->plan_) return;
  settle_cpu();
  maybe_crash();
  const int count = ++fault_point_counts_[name];
  for (const CrashSpec& c : rt_->plan_->crashes) {
    if (c.rank == rank_ && c.at_point == name && c.occurrence == count)
      throw RankCrashedError("rank " + std::to_string(rank_) + " at " + name);
  }
}

void Comm::abort_attempt() {
  rt_->aborted_.store(true);
  for (auto& mb : rt_->mailboxes_) mb->kick();
}

void Comm::send_bytes(int dst, Tag tag, std::vector<std::byte> bytes) {
  settle_cpu();
  ++stats_.msgs_sent;
  stats_.bytes_sent += bytes.size();
  const FaultPlan* plan = rt_->plan_ ? &*rt_->plan_ : nullptr;
  Runtime::Mailbox& box = *rt_->mailboxes_[static_cast<std::size_t>(dst)];
  auto& ctr = rt_->counters_;

  if (!plan) {
    Runtime::Mailbox::Message msg;
    msg.arrival_vtime = vtime_ + rt_->cost_.alpha +
                        static_cast<double>(bytes.size()) * rt_->cost_.beta;
    msg.bytes = std::move(bytes);
    box.push(rank_, tag, std::move(msg));
    return;
  }

  maybe_crash();
  const std::uint64_t seq = send_seq_++;
  const auto roll = [&](std::uint64_t salt) {
    return fault_unit(fault_hash(plan->seed, rank_, dst, tag, seq, salt));
  };
  const MessageFaultConfig& mf = plan->msg;

  double extra_latency = 0.0;
  if (mf.delay_rate > 0.0 && roll(1) < mf.delay_rate) {
    extra_latency += mf.delay_seconds;
    ++ctr.delayed;
  }

  if (plan->reliable) {
    // Sender-side ARQ simulation: each transmission attempt is independently
    // lost or corrupted; a failed attempt waits out the current RTO (charged
    // to virtual time) and retransmits with exponential backoff. Corruption
    // is caught by the checksum, duplicates by sequence numbers, so the
    // message is ultimately delivered exactly once, intact.
    double rto = plan->rto_initial;
    int attempt = 0;
    for (;; ++attempt) {
      if (attempt > plan->max_retries) {
        obs::LogLine(obs::LogLevel::kWarn, "minimpi", "send_failed")
            .kv("rank", rank_)
            .kv("dst", dst)
            .kv("attempts", attempt);
        throw SendFailedError(dst, attempt);
      }
      const bool lost =
          mf.drop_rate > 0.0 && roll(100 + 2 * static_cast<std::uint64_t>(attempt)) < mf.drop_rate;
      const bool garbled =
          mf.corrupt_rate > 0.0 &&
          roll(101 + 2 * static_cast<std::uint64_t>(attempt)) < mf.corrupt_rate;
      if (!lost && !garbled) break;
      if (lost)
        ++ctr.dropped;
      else
        ++ctr.corrupted;
      ++ctr.retries;
      ++stats_.retries;
      obs::LogLine(obs::LogLevel::kDebug, "minimpi", "retransmit")
          .kv("rank", rank_)
          .kv("dst", dst)
          .kv("attempt", attempt + 1)
          .kv("cause", lost ? "drop" : "corrupt")
          .kv("rto_s", rto);
      vtime_ += rto;
      rto = std::min(rto * 2.0, plan->rto_max);
    }
    if (mf.dup_rate > 0.0 && roll(4) < mf.dup_rate)
      ++ctr.duplicated;  // suppressed by receiver-side sequence numbers
    Runtime::Mailbox::Message msg;
    msg.arrival_vtime = vtime_ + rt_->cost_.alpha +
                        static_cast<double>(bytes.size()) * rt_->cost_.beta +
                        extra_latency;
    msg.bytes = std::move(bytes);
    box.push(rank_, tag, std::move(msg));
    return;
  }

  // Raw (unreliable) transport: faults hit the application directly.
  if (mf.drop_rate > 0.0 && roll(2) < mf.drop_rate) {
    ++ctr.dropped;
    return;
  }
  if (mf.corrupt_rate > 0.0 && roll(3) < mf.corrupt_rate && !bytes.empty()) {
    const std::uint64_t h = fault_hash(plan->seed, rank_, dst, tag, seq, 9);
    bytes[static_cast<std::size_t>(h % bytes.size())] ^= std::byte{0xA5};
    ++ctr.corrupted;
  }
  const bool dup = mf.dup_rate > 0.0 && roll(4) < mf.dup_rate;
  Runtime::Mailbox::Message msg;
  msg.arrival_vtime = vtime_ + rt_->cost_.alpha +
                      static_cast<double>(bytes.size()) * rt_->cost_.beta +
                      extra_latency;
  msg.bytes = std::move(bytes);
  if (dup) {
    Runtime::Mailbox::Message copy;
    copy.arrival_vtime = msg.arrival_vtime;
    copy.bytes = msg.bytes;
    box.push(rank_, tag, std::move(msg));
    box.push(rank_, tag, std::move(copy));
    ++ctr.duplicated;
  } else {
    box.push(rank_, tag, std::move(msg));
  }
}

std::vector<std::byte> Comm::recv_bytes(int src, Tag tag) {
  settle_cpu();
  Runtime::Mailbox& box = *rt_->mailboxes_[static_cast<std::size_t>(rank_)];
  const FaultPlan* plan = rt_->plan_ ? &*rt_->plan_ : nullptr;

  if (!plan) {
    auto msg = box.pop(src, tag);
    // Waiting for a slower sender advances the receiver's clock; an
    // already-arrived message costs nothing extra (time spent blocked on the
    // condvar is not CPU time, so it is never charged).
    vtime_ = std::max(vtime_, msg.arrival_vtime);
    cpu_mark_ = ThreadCpuTimer::now();
    ++stats_.msgs_recv;
    stats_.bytes_recv += msg.bytes.size();
    return msg.bytes;
  }

  maybe_crash();
  Runtime::Mailbox::Message msg;
  const auto status =
      box.pop_wait(src, tag, msg, rt_->states_[static_cast<std::size_t>(src)],
                   rt_->aborted_, plan->recv_timeout_real);
  cpu_mark_ = ThreadCpuTimer::now();
  switch (status) {
    case Runtime::Mailbox::PopStatus::Ok:
      vtime_ = std::max(vtime_, msg.arrival_vtime);
      ++stats_.msgs_recv;
      stats_.bytes_recv += msg.bytes.size();
      return std::move(msg.bytes);
    case Runtime::Mailbox::PopStatus::Poisoned:
      throw std::runtime_error("minimpi: peer rank failed");
    case Runtime::Mailbox::PopStatus::Aborted:
      throw AttemptAbortedError();
    case Runtime::Mailbox::PopStatus::PeerGone:
    case Runtime::Mailbox::PopStatus::Timeout:
      vtime_ += plan->recv_timeout_vtime;
      ++rt_->counters_.timeouts;
      ++stats_.timeouts;
      obs::LogLine(obs::LogLevel::kDebug, "minimpi", "recv_timeout")
          .kv("rank", rank_)
          .kv("src", src)
          .kv("tag", tag)
          .kv("peer_gone",
              status == Runtime::Mailbox::PopStatus::PeerGone ? 1 : 0);
      throw TimeoutError(src, tag);
  }
  throw std::logic_error("minimpi: unreachable recv status");
}

double Comm::vtime() {
  settle_cpu();
  return vtime_;
}

void Comm::charge(double seconds) {
  settle_cpu();
  vtime_ += seconds;
  if (rt_->plan_) maybe_crash();
}

void Comm::barrier(int base, int gsize) {
  const int g = group_size(gsize);
  const Tag tag = kInternalTag;
  const std::vector<std::uint8_t> token{1};
  if (rank_ == base) {
    for (int r = base + 1; r < base + g; ++r)
      (void)recv<std::uint8_t>(r, tag);
    for (int r = base + 1; r < base + g; ++r) send(r, tag, token);
  } else {
    send(base, tag, token);
    (void)recv<std::uint8_t>(base, tag);
  }
}

namespace {

template <typename T, typename Op>
T reduce_impl(Comm& comm, T v, int base, int gsize, Op op) {
  std::vector<T> all = comm.allgatherv(std::vector<T>{v}, nullptr, base, gsize);
  T acc = all.front();
  for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
  return acc;
}

}  // namespace

double Comm::allreduce_min(double v, int base, int gsize) {
  return reduce_impl(*this, v, base, gsize,
                     [](double a, double b) { return std::min(a, b); });
}

double Comm::allreduce_max(double v, int base, int gsize) {
  return reduce_impl(*this, v, base, gsize,
                     [](double a, double b) { return std::max(a, b); });
}

double Comm::allreduce_sum(double v, int base, int gsize) {
  return reduce_impl(*this, v, base, gsize,
                     [](double a, double b) { return a + b; });
}

std::int64_t Comm::allreduce_sum(std::int64_t v, int base, int gsize) {
  return reduce_impl(*this, v, base, gsize,
                     [](std::int64_t a, std::int64_t b) { return a + b; });
}

}  // namespace udb::mpi
