#include "mpi/minimpi.hpp"

#include <algorithm>
#include <thread>

#include "common/timer.hpp"

namespace udb::mpi {

// One mailbox per destination rank: tag-matched FIFO queues keyed by
// (source, tag), a mutex + condvar, and a poison flag so that a crashed rank
// unblocks every receiver instead of hanging the run.
struct Runtime::Mailbox {
  struct Message {
    std::vector<std::byte> bytes;
    double arrival_vtime = 0.0;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::map<std::pair<int, Tag>, std::deque<Message>> queues;
  bool poisoned = false;

  void push(int src, Tag tag, Message msg) {
    {
      std::lock_guard<std::mutex> lock(mu);
      queues[{src, tag}].push_back(std::move(msg));
    }
    cv.notify_all();
  }

  Message pop(int src, Tag tag) {
    std::unique_lock<std::mutex> lock(mu);
    auto& q = queues[{src, tag}];
    cv.wait(lock, [&] { return poisoned || !q.empty(); });
    if (q.empty() && poisoned)
      throw std::runtime_error("minimpi: peer rank failed");
    Message msg = std::move(q.front());
    q.pop_front();
    return msg;
  }

  void poison() {
    {
      std::lock_guard<std::mutex> lock(mu);
      poisoned = true;
    }
    cv.notify_all();
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu);
    queues.clear();
    poisoned = false;
  }
};

Runtime::Runtime(int nranks, CostModel cost) : nranks_(nranks), cost_(cost) {
  if (nranks < 1) throw std::invalid_argument("Runtime: nranks must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  vtimes_.assign(static_cast<std::size_t>(nranks), 0.0);
}

Runtime::~Runtime() = default;

void Runtime::run(const std::function<void(Comm&)>& fn) {
  for (auto& mb : mailboxes_) mb->reset();
  std::fill(vtimes_.begin(), vtimes_.end(), 0.0);

  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));

  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &fn, &first_error, &error_mu] {
      Comm comm(this, r);
      comm.cpu_mark_ = ThreadCpuTimer::now();
      try {
        fn(comm);
        comm.settle_cpu();
        vtimes_[static_cast<std::size_t>(r)] = comm.vtime_;
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        for (auto& mb : mailboxes_) mb->poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

double Runtime::makespan() const {
  return *std::max_element(vtimes_.begin(), vtimes_.end());
}

// ---- Comm ----------------------------------------------------------------

void Comm::settle_cpu() {
  const double now = ThreadCpuTimer::now();
  vtime_ += now - cpu_mark_;
  cpu_mark_ = now;
}

void Comm::send_bytes(int dst, Tag tag, std::vector<std::byte> bytes) {
  settle_cpu();
  Runtime::Mailbox::Message msg;
  msg.arrival_vtime = vtime_ + rt_->cost_.alpha +
                      static_cast<double>(bytes.size()) * rt_->cost_.beta;
  msg.bytes = std::move(bytes);
  rt_->mailboxes_[static_cast<std::size_t>(dst)]->push(rank_, tag,
                                                       std::move(msg));
}

std::vector<std::byte> Comm::recv_bytes(int src, Tag tag) {
  settle_cpu();
  auto msg = rt_->mailboxes_[static_cast<std::size_t>(rank_)]->pop(src, tag);
  // Waiting for a slower sender advances the receiver's clock; an
  // already-arrived message costs nothing extra (time spent blocked on the
  // condvar is not CPU time, so it is never charged).
  vtime_ = std::max(vtime_, msg.arrival_vtime);
  cpu_mark_ = ThreadCpuTimer::now();
  return msg.bytes;
}

double Comm::vtime() {
  settle_cpu();
  return vtime_;
}

void Comm::charge(double seconds) {
  settle_cpu();
  vtime_ += seconds;
}

void Comm::barrier(int base, int gsize) {
  const int g = group_size(gsize);
  const Tag tag = kInternalTag;
  const std::vector<std::uint8_t> token{1};
  if (rank_ == base) {
    for (int r = base + 1; r < base + g; ++r)
      (void)recv<std::uint8_t>(r, tag);
    for (int r = base + 1; r < base + g; ++r) send(r, tag, token);
  } else {
    send(base, tag, token);
    (void)recv<std::uint8_t>(base, tag);
  }
}

namespace {

template <typename T, typename Op>
T reduce_impl(Comm& comm, T v, int base, int gsize, Op op) {
  std::vector<T> all = comm.allgatherv(std::vector<T>{v}, nullptr, base, gsize);
  T acc = all.front();
  for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
  return acc;
}

}  // namespace

double Comm::allreduce_min(double v, int base, int gsize) {
  return reduce_impl(*this, v, base, gsize,
                     [](double a, double b) { return std::min(a, b); });
}

double Comm::allreduce_max(double v, int base, int gsize) {
  return reduce_impl(*this, v, base, gsize,
                     [](double a, double b) { return std::max(a, b); });
}

double Comm::allreduce_sum(double v, int base, int gsize) {
  return reduce_impl(*this, v, base, gsize,
                     [](double a, double b) { return a + b; });
}

std::int64_t Comm::allreduce_sum(std::int64_t v, int base, int gsize) {
  return reduce_impl(*this, v, base, gsize,
                     [](std::int64_t a, std::int64_t b) { return a + b; });
}

}  // namespace udb::mpi
