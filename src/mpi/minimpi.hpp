// minimpi: an in-process message-passing runtime standing in for MPI (no MPI
// installation exists on this host — see DESIGN.md §2). Each rank runs in its
// own OS thread; point-to-point messages are tag-matched FIFO mailboxes;
// collectives are built on point-to-point exactly as small MPI
// implementations build them, and support contiguous sub-groups (what the
// sampling-based kd-partitioner needs for its recursive halving).
//
// Virtual time. The host has a single core, so wall-clock speedup of p
// threads is meaningless. Instead every rank carries a virtual clock:
//   * compute between communication calls is charged at the thread's real
//     CPU time (CLOCK_THREAD_CPUTIME_ID), i.e. the work it would do alone on
//     a dedicated node;
//   * a message arriving at a rank advances the receiver's clock to at least
//     the sender's send-time plus an alpha + bytes*beta transfer cost.
// The parallel runtime reported by the distributed benches is the makespan
// (maximum final virtual clock over ranks) — the standard simulation model
// for reproducing scalability *shape* without the paper's 32-node cluster.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "mpi/fault.hpp"

namespace udb::mpi {

struct CostModel {
  double alpha = 5e-6;  // per-message latency, seconds
  double beta = 1e-9;   // per-byte transfer time, seconds (~1 GB/s)
};

using Tag = std::uint32_t;
constexpr Tag kMaxUserTag = 1u << 20;  // tags above are reserved internally

// Per-rank communication totals, accumulated by the rank's own Comm (each
// Comm is confined to its rank thread, so these are plain counters). Drivers
// snapshot before/after a phase and subtract to attribute traffic per phase
// (obs run report, Table 7 per-rank splits). Collectives count as their
// constituent point-to-point messages — what the simulated transport moves.
struct CommStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t retries = 0;   // ARQ retransmissions (reliable fault mode)
  std::uint64_t timeouts = 0;  // recv timeouts observed by this rank
};

inline CommStats operator-(const CommStats& a, const CommStats& b) {
  return {a.msgs_sent - b.msgs_sent,   a.bytes_sent - b.bytes_sent,
          a.msgs_recv - b.msgs_recv,   a.bytes_recv - b.bytes_recv,
          a.retries - b.retries,       a.timeouts - b.timeouts};
}

inline CommStats& operator+=(CommStats& a, const CommStats& b) {
  a.msgs_sent += b.msgs_sent;
  a.bytes_sent += b.bytes_sent;
  a.msgs_recv += b.msgs_recv;
  a.bytes_recv += b.bytes_recv;
  a.retries += b.retries;
  a.timeouts += b.timeouts;
  return a;
}

class Comm;

class Runtime {
 public:
  explicit Runtime(int nranks, CostModel cost = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Runs fn(comm) on every rank, one thread per rank; blocks until all ranks
  // return. Rethrows the first rank exception (other ranks are unblocked via
  // mailbox poisoning). May be called repeatedly; virtual clocks reset per
  // call.
  void run(const std::function<void(Comm&)>& fn);

  [[nodiscard]] int size() const noexcept { return nranks_; }

  // Final virtual clock of each rank after the last run().
  [[nodiscard]] const std::vector<double>& virtual_times() const noexcept {
    return vtimes_;
  }
  // Makespan: max over ranks of the final virtual clock.
  [[nodiscard]] double makespan() const;

  // ---- fault injection (see mpi/fault.hpp, docs/FAULT_MODEL.md) ----------
  // Installs a fault plan for subsequent run() calls. With a plan installed,
  // a rank throwing RankCrashedError does not abort the run: its thread
  // exits, peers observe TimeoutError on recv, and the run completes with
  // the rank listed in crashed_ranks().
  void set_fault_plan(FaultPlan plan) { plan_ = std::move(plan); }
  void clear_fault_plan() { plan_.reset(); }
  [[nodiscard]] bool fault_mode() const noexcept { return plan_.has_value(); }

  // Ranks that died to an injected crash during the last run(), in crash
  // order, and the fault counters accumulated over that run.
  [[nodiscard]] const std::vector<int>& crashed_ranks() const noexcept {
    return crashed_;
  }
  [[nodiscard]] FaultCounts fault_counts() const noexcept;

 private:
  friend class Comm;
  struct Mailbox;

  enum class RankState : int { Running, Finished, Crashed };

  void mark_rank(int rank, RankState st);  // updates state, wakes all recvs

  int nranks_;
  CostModel cost_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<double> vtimes_;

  std::optional<FaultPlan> plan_;
  std::unique_ptr<std::atomic<int>[]> states_;  // RankState per rank
  std::atomic<bool> aborted_{false};
  std::mutex crashed_mu_;
  std::vector<int> crashed_;
  struct Counters {
    std::atomic<std::uint64_t> dropped{0}, delayed{0}, duplicated{0},
        corrupted{0}, retries{0}, crashes{0}, timeouts{0};
    void reset() noexcept;
  };
  Counters counters_;
};

class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return rt_->nranks_; }

  // ---- point to point --------------------------------------------------
  // Non-blocking enqueue (buffered send — no deadlock possible).
  template <typename T>
  void send(int dst, Tag tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(data.size() * sizeof(T));
    if (!data.empty())
      std::memcpy(bytes.data(), data.data(), bytes.size());
    send_bytes(dst, tag, std::move(bytes));
  }

  // Blocking receive, FIFO per (src, tag).
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int src, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes = recv_bytes(src, tag);
    if (bytes.size() % sizeof(T) != 0)
      throw std::runtime_error("minimpi: message size not a multiple of T");
    std::vector<T> data(bytes.size() / sizeof(T));
    if (!data.empty())
      std::memcpy(data.data(), bytes.data(), bytes.size());
    return data;
  }

  // ---- collectives (contiguous group [base, base+gsize)) ---------------
  // All ranks of the group must call with identical base/gsize. gsize = 0
  // (the default) means the full communicator.
  void barrier(int base = 0, int gsize = 0);

  template <typename T>
  std::vector<T> bcast(int root, std::vector<T> data, int base = 0,
                       int gsize = 0);

  // Concatenation of every group member's vector, in rank order. Also
  // returns per-rank counts if `counts` is non-null.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& mine,
                            std::vector<std::size_t>* counts = nullptr,
                            int base = 0, int gsize = 0);

  double allreduce_min(double v, int base = 0, int gsize = 0);
  double allreduce_max(double v, int base = 0, int gsize = 0);
  double allreduce_sum(double v, int base = 0, int gsize = 0);
  std::int64_t allreduce_sum(std::int64_t v, int base = 0, int gsize = 0);

  // Full-communicator personalized exchange: out[i] goes to rank i; returns
  // in[j] received from rank j.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& out);

  // ---- communication accounting ----------------------------------------
  // Running totals since the Comm was created. Snapshot-and-subtract with
  // CommStats::operator- for per-phase attribution.
  [[nodiscard]] const CommStats& comm_stats() const noexcept { return stats_; }

  // ---- virtual time ----------------------------------------------------
  // Current virtual time of this rank (charges accumulated CPU first).
  [[nodiscard]] double vtime();
  // Adds `seconds` of modeled (non-CPU) work — e.g. I/O the paper excludes.
  void charge(double seconds);

  // ---- fault injection -------------------------------------------------
  // Named fault point: drivers annotate phase boundaries so a FaultPlan can
  // crash a rank at a precise, deterministic place. No-op without a plan.
  void fault_point(const std::string& name);
  // Wakes every blocked recv in the runtime with AttemptAbortedError. Used
  // by fault-tolerant drivers to unwind a failed attempt without deadlock.
  void abort_attempt();

 private:
  friend class Runtime;
  Comm(Runtime* rt, int rank);

  void send_bytes(int dst, Tag tag, std::vector<std::byte> bytes);
  std::vector<std::byte> recv_bytes(int src, Tag tag);
  void settle_cpu();   // fold thread CPU since last mark into vtime_
  void maybe_crash();  // at_vtime crash specs; call after settle_cpu

  [[nodiscard]] int group_size(int gsize) const noexcept {
    return gsize == 0 ? rt_->nranks_ : gsize;
  }

  Runtime* rt_;
  int rank_;
  double vtime_ = 0.0;
  double cpu_mark_ = 0.0;
  CommStats stats_;  // rank-thread-confined, see CommStats
  // Fault state (all unused without a plan).
  double slow_factor_ = 1.0;
  double crash_at_vtime_ = -1.0;
  std::uint64_t send_seq_ = 0;
  std::map<std::string, int> fault_point_counts_;
  // All collectives share one reserved tag: matching is FIFO per ordered
  // (sender, receiver) pair, and every pair's send/recv sequences align in
  // program order — this stays correct even when sub-groups execute
  // different numbers of collectives (e.g. uneven kd-partition recursion).
  static constexpr Tag kInternalTag = kMaxUserTag;
};

// ---- template bodies that need Comm complete ----------------------------

template <typename T>
std::vector<T> Comm::bcast(int root, std::vector<T> data, int base,
                           int gsize) {
  const int g = group_size(gsize);
  const Tag tag = kInternalTag;
  if (rank_ == root) {
    for (int r = base; r < base + g; ++r)
      if (r != root) send(r, tag, data);
    return data;
  }
  return recv<T>(root, tag);
}

template <typename T>
std::vector<T> Comm::allgatherv(const std::vector<T>& mine,
                                std::vector<std::size_t>* counts, int base,
                                int gsize) {
  const int g = group_size(gsize);
  const Tag tag = kInternalTag;
  const Tag tag2 = kInternalTag;
  std::vector<T> all;
  std::vector<std::uint64_t> sizes;
  if (rank_ == base) {
    std::vector<std::vector<T>> parts(static_cast<std::size_t>(g));
    parts[0] = mine;
    for (int r = base + 1; r < base + g; ++r)
      parts[static_cast<std::size_t>(r - base)] = recv<T>(r, tag);
    for (const auto& part : parts) {
      sizes.push_back(part.size());
      all.insert(all.end(), part.begin(), part.end());
    }
    for (int r = base + 1; r < base + g; ++r) {
      send(r, tag2, sizes);
      send(r, static_cast<Tag>(tag2), all);
    }
  } else {
    send(base, tag, mine);
    sizes = recv<std::uint64_t>(base, tag2);
    all = recv<T>(base, tag2);
  }
  if (counts) counts->assign(sizes.begin(), sizes.end());
  return all;
}

template <typename T>
std::vector<std::vector<T>> Comm::alltoallv(
    const std::vector<std::vector<T>>& out) {
  const int p = rt_->nranks_;
  if (static_cast<int>(out.size()) != p)
    throw std::invalid_argument("alltoallv: need one vector per rank");
  const Tag tag = kInternalTag;
  for (int r = 0; r < p; ++r) send(r, tag, out[static_cast<std::size_t>(r)]);
  std::vector<std::vector<T>> in(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) in[static_cast<std::size_t>(r)] = recv<T>(r, tag);
  return in;
}

}  // namespace udb::mpi
