// Deterministic fault injection for the minimpi runtime (see
// docs/FAULT_MODEL.md). A FaultPlan installed on a Runtime turns on:
//
//   * message faults — every send rolls seeded, per-message decisions to
//     drop, delay, duplicate, or corrupt the payload. Decisions depend only
//     on (seed, src, dst, tag, per-sender sequence number), never on wall
//     time or thread scheduling, so a fixed seed reproduces the same fault
//     pattern on every run;
//   * rank faults — a chosen rank crashes at a named fault point (the
//     drivers annotate their phase boundaries with Comm::fault_point) or
//     once its virtual clock passes a threshold, and a rank can be slowed
//     by a CPU-charge multiplier;
//   * failure detection — recv gains a deadline: if the peer has crashed or
//     finished without sending (detected immediately), or the real-time
//     timeout elapses, recv throws a typed TimeoutError instead of hanging;
//   * reliable transport — an optional ack/retry protocol: lost or
//     checksum-corrupted transmissions are retransmitted with bounded
//     exponential backoff, every retry charged to the sender's virtual
//     clock, and duplicates are suppressed, so the cost model stays honest.
//
// Without a plan installed the runtime behaves exactly as before — every
// fault path is behind a single branch on the plan pointer.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace udb::mpi {

// ---- typed failures ------------------------------------------------------

// recv gave up: the peer crashed/finished without sending, or the real-time
// deadline elapsed. The detection latency is charged to virtual time.
class TimeoutError : public std::runtime_error {
 public:
  TimeoutError(int src, std::uint32_t tag)
      : std::runtime_error("minimpi: recv timeout waiting for rank " +
                           std::to_string(src) + " tag " +
                           std::to_string(tag)),
        src_(src),
        tag_(tag) {}
  [[nodiscard]] int src() const noexcept { return src_; }
  [[nodiscard]] std::uint32_t tag() const noexcept { return tag_; }

 private:
  int src_;
  std::uint32_t tag_;
};

// Thrown *inside* the crashed rank by an injected crash fault. The runtime
// treats it as a rank death: the thread exits, peers see timeouts, the run
// completes and reports the rank in Runtime::crashed_ranks().
class RankCrashedError : public std::runtime_error {
 public:
  explicit RankCrashedError(const std::string& what)
      : std::runtime_error("minimpi: injected crash: " + what) {}
};

// A peer called Comm::abort_attempt(): every blocked recv wakes with this so
// a failed collective attempt unwinds cleanly instead of deadlocking.
class AttemptAbortedError : public std::runtime_error {
 public:
  AttemptAbortedError() : std::runtime_error("minimpi: attempt aborted") {}
};

// Reliable transport exhausted its retransmissions.
class SendFailedError : public std::runtime_error {
 public:
  SendFailedError(int dst, int attempts)
      : std::runtime_error("minimpi: send to rank " + std::to_string(dst) +
                           " failed after " + std::to_string(attempts) +
                           " attempts") {}
};

// ---- fault plan ----------------------------------------------------------

struct MessageFaultConfig {
  double drop_rate = 0.0;     // transmission lost
  double delay_rate = 0.0;    // transmission arrives late
  double dup_rate = 0.0;      // transmission delivered twice
  double corrupt_rate = 0.0;  // payload bytes flipped in flight
  double delay_seconds = 1e-3;  // extra virtual latency of a delayed message
};

struct CrashSpec {
  int rank = -1;
  // Crash when this rank passes the named fault point for the
  // `occurrence`-th time (phase-precise, deterministic)...
  std::string at_point;
  int occurrence = 1;
  // ...or once its virtual clock reaches at_vtime (>= 0 enables; approximate
  // because virtual time includes measured CPU time).
  double at_vtime = -1.0;
};

struct SlowSpec {
  int rank = -1;
  double factor = 1.0;  // multiplier on the rank's CPU virtual-time charges
};

struct FaultPlan {
  std::uint64_t seed = 0;
  MessageFaultConfig msg;
  std::vector<CrashSpec> crashes;
  std::vector<SlowSpec> slowdowns;

  // Ack/retry transport: each transmission attempt is independently lost or
  // corrupted; a failed attempt costs the current retransmission timeout
  // (exponential backoff, capped) in sender virtual time. Corruption is
  // caught by checksum and duplicates are suppressed by sequence numbers, so
  // with reliable transport the application always sees each message exactly
  // once, intact — it only pays for the repair in virtual time.
  bool reliable = false;
  int max_retries = 10;
  double rto_initial = 1e-4;  // seconds of virtual time, doubles per retry
  double rto_max = 1e-1;

  // recv deadline. Real seconds the receiver will block before giving up
  // (< 0: block forever, peer-death detection still applies) and the virtual
  // time a detected timeout costs (the modeled failure-detection latency).
  double recv_timeout_real = 5.0;
  double recv_timeout_vtime = 1e-2;
};

// Per-run fault counters (snapshot; the live counters sit in the Runtime).
struct FaultCounts {
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t retries = 0;
  std::uint64_t crashes = 0;
  std::uint64_t timeouts = 0;

  FaultCounts& operator+=(const FaultCounts& o) noexcept {
    dropped += o.dropped;
    delayed += o.delayed;
    duplicated += o.duplicated;
    corrupted += o.corrupted;
    retries += o.retries;
    crashes += o.crashes;
    timeouts += o.timeouts;
    return *this;
  }
};

// ---- deterministic decision stream ---------------------------------------

// SplitMix64 finalizer: the per-message fault hash. Chained so every field
// perturbs the whole state.
[[nodiscard]] constexpr std::uint64_t fault_mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

[[nodiscard]] constexpr std::uint64_t fault_hash(std::uint64_t seed, int src,
                                                 int dst, std::uint32_t tag,
                                                 std::uint64_t seq,
                                                 std::uint64_t salt) noexcept {
  std::uint64_t h = fault_mix(seed + 0x9e3779b97f4a7c15ULL);
  h = fault_mix(h ^ (static_cast<std::uint64_t>(src) + 1));
  h = fault_mix(h ^ ((static_cast<std::uint64_t>(dst) + 1) << 20));
  h = fault_mix(h ^ tag);
  h = fault_mix(h ^ seq);
  h = fault_mix(h ^ salt);
  return h;
}

// Uniform double in [0, 1) from a hash.
[[nodiscard]] constexpr double fault_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace udb::mpi
