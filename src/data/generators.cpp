#include "data/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/rng.hpp"

namespace udb {

Dataset gen_uniform(std::size_t n, std::size_t dim, double lo, double hi,
                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> coords;
  coords.reserve(n * dim);
  for (std::size_t i = 0; i < n * dim; ++i)
    coords.push_back(rng.uniform(lo, hi));
  return Dataset(dim, std::move(coords));
}

Dataset gen_blobs(std::size_t n, std::size_t dim, std::size_t k, double box,
                  double stddev, double noise_frac, std::uint64_t seed) {
  if (k == 0) throw std::invalid_argument("gen_blobs: k must be > 0");
  Rng rng(seed);
  std::vector<double> centers(k * dim);
  for (auto& c : centers) c = rng.uniform(0.0, box);

  std::vector<double> coords;
  coords.reserve(n * dim);
  const std::size_t n_noise = static_cast<std::size_t>(noise_frac * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_noise) {
      for (std::size_t d = 0; d < dim; ++d)
        coords.push_back(rng.uniform(0.0, box));
    } else {
      const std::size_t b = rng.uniform_index(k);
      for (std::size_t d = 0; d < dim; ++d)
        coords.push_back(rng.normal(centers[b * dim + d], stddev));
    }
  }
  return Dataset(dim, std::move(coords));
}

Dataset gen_galaxy(std::size_t n, const GalaxyConfig& cfg,
                   std::uint64_t seed) {
  if (cfg.halos == 0 || cfg.subhalos_per_halo == 0)
    throw std::invalid_argument("gen_galaxy: halos and subhalos must be > 0");
  Rng rng(seed);
  const std::size_t dim = cfg.dim;

  // Level 1: halo centres, uniform in the box.
  std::vector<double> halo_centers(cfg.halos * dim);
  for (auto& c : halo_centers) c = rng.uniform(0.0, cfg.box);

  // Level 2: sub-halo centres, Gaussian around their parent halo.
  const std::size_t nsub = cfg.halos * cfg.subhalos_per_halo;
  std::vector<double> sub_centers(nsub * dim);
  for (std::size_t h = 0; h < cfg.halos; ++h) {
    for (std::size_t s = 0; s < cfg.subhalos_per_halo; ++s) {
      const std::size_t idx = h * cfg.subhalos_per_halo + s;
      for (std::size_t d = 0; d < dim; ++d) {
        sub_centers[idx * dim + d] =
            rng.normal(halo_centers[h * dim + d], cfg.halo_sigma);
      }
    }
  }

  // Level 3: points. Sub-halos get power-law-ish unequal masses by sampling
  // the sub-halo index non-uniformly (squared uniform pick biases small
  // indices, giving a few heavy sub-halos and many light ones, as in N-body
  // halo mass functions).
  std::vector<double> coords;
  coords.reserve(n * dim);
  const std::size_t n_noise = static_cast<std::size_t>(cfg.noise_frac * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_noise) {
      for (std::size_t d = 0; d < dim; ++d)
        coords.push_back(rng.uniform(0.0, cfg.box));
    } else {
      const double u = rng.next_double();
      const std::size_t s =
          static_cast<std::size_t>(u * u * static_cast<double>(nsub)) % nsub;
      for (std::size_t d = 0; d < dim; ++d)
        coords.push_back(rng.normal(sub_centers[s * dim + d], cfg.point_sigma));
    }
  }
  return Dataset(dim, std::move(coords));
}

Dataset gen_roadnet(std::size_t n, const RoadnetConfig& cfg,
                    std::uint64_t seed) {
  if (cfg.waypoints < 2)
    throw std::invalid_argument("gen_roadnet: need at least 2 waypoints");
  Rng rng(seed);
  constexpr std::size_t dim = 3;

  // Waypoints: x,y uniform, z a smooth function of x,y plus noise (terrain).
  std::vector<double> wp(cfg.waypoints * dim);
  for (std::size_t i = 0; i < cfg.waypoints; ++i) {
    const double x = rng.uniform(0.0, cfg.box);
    const double y = rng.uniform(0.0, cfg.box);
    const double z = cfg.z_range *
                     (0.5 + 0.5 * std::sin(x * 0.13) * std::cos(y * 0.09));
    wp[i * dim + 0] = x;
    wp[i * dim + 1] = y;
    wp[i * dim + 2] = z;
  }

  // Edges: each waypoint connects to its nearest `edges_per_waypoint`
  // successors in a random order — a cheap connected-ish road graph.
  struct Edge {
    std::size_t a, b;
    double len;
  };
  std::vector<Edge> edges;
  edges.reserve(cfg.waypoints * cfg.edges_per_waypoint);
  double total_len = 0.0;
  for (std::size_t i = 0; i < cfg.waypoints; ++i) {
    // Find the nearest few other waypoints (O(W^2) — W is small).
    std::vector<std::pair<double, std::size_t>> cand;
    cand.reserve(cfg.waypoints - 1);
    for (std::size_t j = 0; j < cfg.waypoints; ++j) {
      if (j == i) continue;
      double d2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = wp[i * dim + d] - wp[j * dim + d];
        d2 += diff * diff;
      }
      cand.emplace_back(d2, j);
    }
    const std::size_t take = std::min<std::size_t>(cfg.edges_per_waypoint, cand.size());
    std::partial_sort(cand.begin(), cand.begin() + static_cast<std::ptrdiff_t>(take),
                      cand.end());
    for (std::size_t e = 0; e < take; ++e) {
      const std::size_t j = cand[e].second;
      if (j < i) continue;  // dedupe (i,j)/(j,i)
      const double len = std::sqrt(cand[e].first);
      edges.push_back({i, j, len});
      total_len += len;
    }
  }
  if (edges.empty()) throw std::logic_error("gen_roadnet: no edges built");

  // Sample points along edges proportionally to edge length, with jitter.
  std::vector<double> cum(edges.size());
  double acc = 0.0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    acc += edges[e].len;
    cum[e] = acc;
  }

  std::vector<double> coords;
  coords.reserve(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const double pick = rng.uniform(0.0, total_len);
    const auto it = std::lower_bound(cum.begin(), cum.end(), pick);
    const std::size_t e = static_cast<std::size_t>(it - cum.begin());
    const Edge& edge = edges[std::min(e, edges.size() - 1)];
    const double t = rng.next_double();
    for (std::size_t d = 0; d < dim; ++d) {
      const double v = wp[edge.a * dim + d] +
                       t * (wp[edge.b * dim + d] - wp[edge.a * dim + d]);
      coords.push_back(v + rng.normal(0.0, cfg.jitter));
    }
  }
  return Dataset(dim, std::move(coords));
}

Dataset gen_highdim(std::size_t n, const HighDimConfig& cfg,
                    std::uint64_t seed) {
  if (cfg.k == 0) throw std::invalid_argument("gen_highdim: k must be > 0");
  Rng rng(seed);
  const std::size_t dim = cfg.dim;

  std::vector<double> centers(cfg.k * dim);
  for (auto& c : centers) c = rng.uniform(0.0, cfg.box);
  std::vector<double> sigmas(cfg.k * dim);
  for (auto& s : sigmas) s = rng.uniform(cfg.sigma_lo, cfg.sigma_hi);

  std::vector<double> coords;
  coords.reserve(n * dim);
  const std::size_t n_noise = static_cast<std::size_t>(cfg.noise_frac * static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_noise) {
      for (std::size_t d = 0; d < dim; ++d)
        coords.push_back(rng.uniform(0.0, cfg.box));
    } else {
      const std::size_t b = rng.uniform_index(cfg.k);
      for (std::size_t d = 0; d < dim; ++d)
        coords.push_back(
            rng.normal(centers[b * dim + d], sigmas[b * dim + d]));
    }
  }
  return Dataset(dim, std::move(coords));
}

Dataset gen_two_moons(std::size_t n, double jitter, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> coords;
  coords.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.next_double() * std::numbers::pi;
    double x, y;
    if (i % 2 == 0) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0 - std::cos(t);
      y = 0.5 - std::sin(t);
    }
    coords.push_back(x + rng.normal(0.0, jitter));
    coords.push_back(y + rng.normal(0.0, jitter));
  }
  return Dataset(2, std::move(coords));
}

Dataset gen_rings(std::size_t n, std::size_t rings, double jitter,
                  std::uint64_t seed) {
  if (rings == 0) throw std::invalid_argument("gen_rings: rings must be > 0");
  Rng rng(seed);
  std::vector<double> coords;
  coords.reserve(n * 2);
  const std::size_t n_noise = n / 20;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_noise) {
      coords.push_back(rng.uniform(-2.0 * static_cast<double>(rings),
                                   2.0 * static_cast<double>(rings)));
      coords.push_back(rng.uniform(-2.0 * static_cast<double>(rings),
                                   2.0 * static_cast<double>(rings)));
    } else {
      const double radius = static_cast<double>(1 + rng.uniform_index(rings));
      const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
      coords.push_back(radius * std::cos(theta) + rng.normal(0.0, jitter));
      coords.push_back(radius * std::sin(theta) + rng.normal(0.0, jitter));
    }
  }
  return Dataset(2, std::move(coords));
}

}  // namespace udb
