// Synthetic dataset generators standing in for the paper's real datasets
// (Millennium-run galaxy catalogues, the 3D Road Network GPS trace, the
// KDD-Cup-2004 bio table). Each generator reproduces the *density structure*
// that drives DBSCAN's cost on the corresponding real dataset — see DESIGN.md
// §2 for the substitution rationale. All generators are deterministic given
// the seed.

#pragma once

#include <cstdint>

#include "common/dataset.hpp"

namespace udb {

// Uniform noise in [lo, hi]^dim.
[[nodiscard]] Dataset gen_uniform(std::size_t n, std::size_t dim, double lo,
                                  double hi, std::uint64_t seed);

// Isotropic Gaussian mixture: k blob centres uniform in [0, box]^dim, points
// N(centre, stddev^2 I), plus a uniform-noise fraction.
[[nodiscard]] Dataset gen_blobs(std::size_t n, std::size_t dim, std::size_t k,
                                double box, double stddev, double noise_frac,
                                std::uint64_t seed);

// Hierarchical halo model (galaxy catalogue analog): top-level halos whose
// centres are uniform in the box; each halo spawns sub-halos Gaussian around
// it; points are Gaussian around sub-halo centres; plus uniform background.
// Reproduces the many-small-dense-regions + sparse-background profile of the
// Millennium-run data.
struct GalaxyConfig {
  std::size_t dim = 3;
  double box = 1000.0;
  std::size_t halos = 40;
  std::size_t subhalos_per_halo = 12;
  double halo_sigma = 18.0;   // spread of sub-halo centres inside a halo
  double point_sigma = 1.2;   // spread of points inside a sub-halo
  double noise_frac = 0.08;   // uniform background fraction
};
[[nodiscard]] Dataset gen_galaxy(std::size_t n, const GalaxyConfig& cfg,
                                 std::uint64_t seed);

// 3-D road-network GPS analog: a random waypoint graph; points are sampled
// along edges with small jitter, giving the quasi-1-D manifold density of the
// 3DSRN dataset. Coordinates: x,y in [0, box]; z (altitude) small.
struct RoadnetConfig {
  double box = 100.0;
  double z_range = 2.0;
  std::size_t waypoints = 250;
  std::size_t edges_per_waypoint = 2;
  double jitter = 0.05;
};
[[nodiscard]] Dataset gen_roadnet(std::size_t n, const RoadnetConfig& cfg,
                                  std::uint64_t seed);

// High-dimensional anisotropic blobs (KDD-bio analog): k blobs with
// per-axis sigma drawn uniformly in [sigma_lo, sigma_hi], centres uniform in
// [0, box]^dim, plus uniform noise. Use Dataset::project() for dimensionality
// sweeps over the same point set (as the paper sampled dimensions).
struct HighDimConfig {
  std::size_t dim = 14;
  std::size_t k = 8;
  double box = 500.0;
  double sigma_lo = 8.0;
  double sigma_hi = 30.0;
  double noise_frac = 0.05;
};
[[nodiscard]] Dataset gen_highdim(std::size_t n, const HighDimConfig& cfg,
                                  std::uint64_t seed);

// Classic 2-D two-moons shape (for examples and shape-recovery tests): two
// interleaving half circles with Gaussian jitter.
[[nodiscard]] Dataset gen_two_moons(std::size_t n, double jitter,
                                    std::uint64_t seed);

// Concentric rings with jitter plus sparse noise (arbitrary-shape demo).
[[nodiscard]] Dataset gen_rings(std::size_t n, std::size_t rings,
                                double jitter, std::uint64_t seed);

}  // namespace udb
