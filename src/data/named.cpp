#include "data/named.hpp"

#include <cmath>
#include <stdexcept>

#include "data/generators.hpp"

namespace udb {

namespace {

std::size_t scaled(std::size_t base, double scale) {
  const double v = static_cast<double>(base) * scale;
  return v < 16.0 ? 16 : static_cast<std::size_t>(v);
}

}  // namespace

NamedDataset make_named_dataset(const std::string& name, double scale,
                                std::uint64_t seed) {
  NamedDataset out;
  out.name = name + "-S";

  // Road network: quasi-1-D manifold, high query-save regime.
  if (name == "3DSRN") {
    out.paper_name = "3DSRN (0.43M, d=3, eps=0.01, MinPts=5)";
    RoadnetConfig cfg;
    out.data = gen_roadnet(scaled(40000, scale), cfg, seed);
    out.params = {0.8, 5};
    return out;
  }

  // DGB: sparse galaxy sample — many micro-clusters, low query-save regime
  // (43.6% in the paper). Larger point spread relative to eps.
  if (name == "DGB") {
    out.paper_name = "DGB0.5M3D (0.5M, d=3, eps=1, MinPts=5)";
    GalaxyConfig cfg;
    cfg.point_sigma = 0.9;
    cfg.halo_sigma = 30.0;
    cfg.noise_frac = 0.15;
    out.data = gen_galaxy(scaled(50000, scale), cfg, seed);
    out.params = {1.0, 5};
    return out;
  }

  // Household power: 5-dim, very dense (93.5% saves in the paper).
  if (name == "HHP") {
    out.paper_name = "HHP0.5M5D (0.5M, d=5, eps=0.6, MinPts=6)";
    HighDimConfig cfg;
    cfg.dim = 5;
    cfg.k = 10;
    cfg.box = 300.0;
    cfg.sigma_lo = 4.0;
    cfg.sigma_hi = 12.0;
    out.data = gen_highdim(scaled(30000, scale), cfg, seed);
    out.params = {26.0, 6};
    return out;
  }

  // MPAGB: dense galaxy catalogue (69.5% saves).
  if (name == "MPAGB") {
    out.paper_name = "MPAGB6M3D (6M, d=3, eps=1, MinPts=5)";
    GalaxyConfig cfg;
    cfg.point_sigma = 0.6;
    out.data = gen_galaxy(scaled(60000, scale), cfg, seed);
    out.params = {1.0, 5};
    return out;
  }

  // FOF: friends-of-friends halos with a generous eps (95.7% saves).
  if (name == "FOF" || name == "FOF56M") {
    out.paper_name = "FOF56M3D (56M, d=3, eps=3, MinPts=6)";
    GalaxyConfig cfg;
    cfg.point_sigma = 1.0;
    out.data = gen_galaxy(scaled(60000, scale), cfg, seed + 1);
    out.params = {3.0, 6};
    return out;
  }

  // MPAGD: the largest galaxy family in the paper (8M..1B points).
  if (name == "MPAGD" || name == "MPAGD8M") {
    out.paper_name = "MPAGD8M3D (8M, d=3, eps=1, MinPts=5)";
    GalaxyConfig cfg;
    cfg.halos = 60;
    cfg.point_sigma = 0.5;
    out.data = gen_galaxy(scaled(80000, scale), cfg, seed + 2);
    out.params = {1.0, 5};
    return out;
  }
  if (name == "MPAGD100M") {
    out.paper_name = "MPAGD100M3D (100M, d=3, eps=1, MinPts=5)";
    GalaxyConfig cfg;
    cfg.halos = 80;
    cfg.point_sigma = 0.5;
    out.data = gen_galaxy(scaled(120000, scale), cfg, seed + 3);
    out.params = {1.0, 5};
    return out;
  }
  if (name == "MPAGD800M") {
    out.paper_name = "MPAGD800M3D (800M, d=3, eps=0.5, MinPts=5)";
    GalaxyConfig cfg;
    cfg.halos = 100;
    cfg.point_sigma = 0.7;
    out.data = gen_galaxy(scaled(160000, scale), cfg, seed + 4);
    out.params = {0.8, 5};
    return out;
  }
  if (name == "MPAGD1B") {
    out.paper_name = "MPAGD1B3D (1B, d=3, eps=0.4, MinPts=5)";
    GalaxyConfig cfg;
    cfg.halos = 120;
    cfg.point_sigma = 0.6;
    out.data = gen_galaxy(scaled(200000, scale), cfg, seed + 5);
    out.params = {0.7, 5};
    return out;
  }
  if (name == "FOF500M") {
    out.paper_name = "FOF500M3D (500M, d=3, eps=3.5, MinPts=5)";
    GalaxyConfig cfg;
    cfg.point_sigma = 1.5;
    cfg.halos = 80;
    out.data = gen_galaxy(scaled(160000, scale), cfg, seed + 6);
    out.params = {2.5, 5};
    return out;
  }
  if (name == "FOF28M14D") {
    out.paper_name = "FOF28M14D (28M, d=14, eps=7, MinPts=5)";
    HighDimConfig cfg;
    cfg.dim = 14;
    cfg.k = 12;
    out.data = gen_highdim(scaled(30000, scale), cfg, seed + 7);
    out.params = {120.0, 5};
    return out;
  }

  // KDD-bio family: very dense high-dimensional blobs; the paper's eps grows
  // with d (200 @14d, 600 @24d, 1500 @74d); ours scales ~ sigma*sqrt(2d).
  if (name == "KDDB14" || name == "KDDB24" || name == "KDDB44" ||
      name == "KDDB74") {
    const std::size_t d = name == "KDDB14"   ? 14
                          : name == "KDDB24" ? 24
                          : name == "KDDB44" ? 44
                                             : 74;
    out.paper_name = "KDDBIO145K" + std::to_string(d) + "D (145K, d=" +
                     std::to_string(d) + ")";
    HighDimConfig cfg;
    cfg.dim = d;
    cfg.k = 6;
    cfg.sigma_lo = 10.0;
    cfg.sigma_hi = 25.0;
    out.data = gen_highdim(scaled(10000, scale), cfg, seed + 8);
    // eps covers a typical intra-blob distance; like the paper's parameters
    // (200 @14d, 600 @24d, 1500 @74d) it grows superlinearly with d.
    const double eps = d == 14 ? 140.0 : d == 24 ? 230.0 : d == 44 ? 420.0 : 650.0;
    out.params = {eps, 5};
    return out;
  }

  throw std::invalid_argument("make_named_dataset: unknown dataset " + name);
}

std::vector<std::string> named_dataset_names() {
  return {"3DSRN",     "DGB",      "HHP",       "MPAGB",     "FOF",
          "MPAGD",     "MPAGD8M",  "MPAGD100M", "MPAGD800M", "MPAGD1B",
          "FOF500M",   "FOF28M14D", "KDDB14",   "KDDB24",    "KDDB44",
          "KDDB74"};
}

}  // namespace udb
