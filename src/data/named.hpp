// Named dataset registry: maps the paper's dataset names to scaled synthetic
// analogs (generator + size + DBSCAN parameters). Bench binaries request
// datasets by the paper's name with an "-S" (scaled) suffix convention; the
// `scale` multiplier grows/shrinks point counts without changing density
// structure (generator parameters co-scale where needed).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"

namespace udb {

struct NamedDataset {
  std::string name;        // e.g. "3DSRN-S"
  std::string paper_name;  // e.g. "3DSRN (0.43M, d=3, eps=0.01, MinPts=5)"
  Dataset data;
  DbscanParams params;
};

// Throws std::invalid_argument for unknown names. Known names:
//   3DSRN, DGB, HHP, MPAGB, FOF, MPAGD, KDDB14, KDDB24, KDDB44, KDDB74,
//   MPAGD8M, MPAGD100M, FOF56M, FOF28M14D, MPAGD1B, FOF500M, MPAGD800M
// (the last few are *analog names* — all map to laptop-scale sizes).
[[nodiscard]] NamedDataset make_named_dataset(const std::string& name,
                                              double scale = 1.0,
                                              std::uint64_t seed = 42);

[[nodiscard]] std::vector<std::string> named_dataset_names();

}  // namespace udb
