#include "index/grid.hpp"

#include <cmath>
#include <stdexcept>

namespace udb {

Grid::Grid(const Dataset& ds, double cell_side) : ds_(&ds), side_(cell_side) {
  if (!(cell_side > 0.0))
    throw std::invalid_argument("Grid: cell_side must be positive");
  point_cell_.resize(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const PointId pid = static_cast<PointId>(i);
    CellCoord coord = cell_coord(ds.ptr(pid));
    auto [it, inserted] =
        lookup_.try_emplace(std::move(coord), static_cast<CellId>(cells_.size()));
    if (inserted) {
      cells_.push_back(Cell{it->first, {}});
    }
    cells_[it->second].pts.push_back(pid);
    point_cell_[pid] = it->second;
  }
}

Grid::CellCoord Grid::cell_coord(const double* pt) const {
  CellCoord coord(ds_->dim());
  for (std::size_t k = 0; k < ds_->dim(); ++k)
    coord[k] = static_cast<std::int64_t>(std::floor(pt[k] / side_));
  return coord;
}

bool Grid::enumeration_feasible(std::int64_t k) const noexcept {
  // (2k+1)^d candidate offsets; cap at 64k so low-d stays fast and high-d
  // falls back to scanning actual cells.
  double candidates = 1.0;
  for (std::size_t i = 0; i < ds_->dim(); ++i) {
    candidates *= static_cast<double>(2 * k + 1);
    if (candidates > 65536.0) return false;
  }
  return true;
}

void Grid::neighbors_within(CellId c, std::int64_t k,
                            std::vector<CellId>& out) const {
  const CellCoord& base = cells_[c].coord;
  if (enumeration_feasible(k)) {
    // Odometer over offsets in [-k, k]^d.
    const std::size_t d = base.size();
    std::vector<std::int64_t> off(d, -k);
    CellCoord probe(d);
    while (true) {
      for (std::size_t i = 0; i < d; ++i) probe[i] = base[i] + off[i];
      if (auto it = lookup_.find(probe); it != lookup_.end())
        out.push_back(it->second);
      std::size_t axis = 0;
      while (axis < d && off[axis] == k) {
        off[axis] = -k;
        ++axis;
      }
      if (axis == d) break;
      ++off[axis];
    }
  } else {
    // High-dimensional fallback: test every non-empty cell. This is the
    // quadratic-in-cells behaviour that sinks grid methods at high d.
    for (CellId other = 0; other < cells_.size(); ++other) {
      const CellCoord& oc = cells_[other].coord;
      bool within = true;
      for (std::size_t i = 0; i < base.size(); ++i) {
        const std::int64_t diff =
            oc[i] > base[i] ? oc[i] - base[i] : base[i] - oc[i];
        if (diff > k) {
          within = false;
          break;
        }
      }
      if (within) out.push_back(other);
    }
  }
}

}  // namespace udb
