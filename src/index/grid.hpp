// Hash-grid spatial index: the substrate for the GridDBSCAN baseline and the
// HPDBSCAN-like distributed baseline. Space is cut into axis-aligned cells of
// a fixed side length; points are bucketed by cell; neighborhood queries scan
// the cells within a Chebyshev radius.
//
// Neighbor-cell enumeration has two strategies, mirroring why grid methods
// degrade in high dimensions (the µDBSCAN paper's critique):
//   * offset enumeration when (2k+1)^d is small — O(1) per neighbor;
//   * a scan over all non-empty cells otherwise — the combinatorial explosion
//     of candidate offsets makes enumeration infeasible for d ≳ 8.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/dataset.hpp"

namespace udb {

class Grid {
 public:
  using CellId = std::uint32_t;
  using CellCoord = std::vector<std::int64_t>;

  Grid(const Dataset& ds, double cell_side);

  [[nodiscard]] std::size_t num_cells() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] double cell_side() const noexcept { return side_; }
  [[nodiscard]] const Dataset& dataset() const noexcept { return *ds_; }

  [[nodiscard]] CellId cell_of_point(PointId p) const noexcept {
    return point_cell_[p];
  }
  [[nodiscard]] const std::vector<PointId>& points_in(CellId c) const noexcept {
    return cells_[c].pts;
  }
  [[nodiscard]] const CellCoord& coord_of(CellId c) const noexcept {
    return cells_[c].coord;
  }

  // Non-empty cells whose coordinates differ from `c` by at most `k` on every
  // axis (Chebyshev ball), including `c` itself. Appends to `out`.
  void neighbors_within(CellId c, std::int64_t k,
                        std::vector<CellId>& out) const;

  // Whether neighbor queries for radius k will use offset enumeration (cheap
  // per cell) or a full scan over cells (the high-dimensional fallback).
  [[nodiscard]] bool enumeration_feasible(std::int64_t k) const noexcept;

  [[nodiscard]] CellCoord cell_coord(const double* pt) const;

 private:
  struct Cell {
    CellCoord coord;
    std::vector<PointId> pts;
  };

  struct CoordHash {
    std::size_t operator()(const CellCoord& c) const noexcept {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (std::int64_t v : c) {
        h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return static_cast<std::size_t>(h);
    }
  };

  const Dataset* ds_;
  double side_;
  std::vector<Cell> cells_;
  std::vector<CellId> point_cell_;
  std::unordered_map<CellCoord, CellId, CoordHash> lookup_;
};

}  // namespace udb
