// A d-dimensional R-tree (Guttman 1984) with quadratic split.
//
// This single index class serves three roles in the reproduction:
//   * the classical DBSCAN baseline (R-DBSCAN) indexes all n points in one
//     tree;
//   * the first level of the µR-tree indexes micro-cluster centres;
//   * each micro-cluster's auxiliary R-tree (AuxR-tree) indexes its members.
//
// Leaves store their entries as structure-of-arrays coordinate blocks:
// a leaf-local packed `double` buffer laid out dim-major (coordinate k of
// entry i lives at block[k * stride + i]) with a parallel PointId array.
// Queries hand a whole leaf to the runtime-dispatched SIMD distance kernel
// (common/simd.hpp, docs/KERNELS.md) — each vector lane is one point and
// every per-dimension load is unit-stride, so the hot eps-scan needs no
// gathers in any dimensionality. Coordinates are copied into the leaf at
// insert/bulk-load time; the `pt` pointers handed to insert() only need to
// stay valid for the duration of the call.
//
// Enlargement heuristics use margin (perimeter) rather than volume: with
// d up to 74, products of side lengths over/underflow doubles, while sums
// stay well behaved and preserve the heuristic's intent.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/box.hpp"
#include "common/dataset.hpp"

namespace udb {

class RTree {
 public:
  struct Config {
    std::uint32_t max_entries = 16;  // Guttman's M
    std::uint32_t min_entries = 6;   // Guttman's m (~40% of M)
  };

  explicit RTree(std::size_t dim) : RTree(dim, Config()) {}
  RTree(std::size_t dim, Config cfg);
  ~RTree();
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts a point with the given id. The coordinates are copied into the
  // target leaf's SoA block, so `pt` only needs to stay valid for this call.
  void insert(const double* pt, PointId id);

  // Sort-Tile-Recursive (STR, Leutenegger et al.) bulk load: packs the items
  // into fully-filled leaves tiled along successive axes, then packs parent
  // levels the same way. Produces better-clustered MBRs than incremental
  // insertion and builds in O(n log n); used by the bulk-build ablation and
  // by callers that have all points up front.
  static RTree bulk_load_str(
      std::size_t dim, std::vector<std::pair<const double*, PointId>> items) {
    return bulk_load_str(dim, std::move(items), Config());
  }
  static RTree bulk_load_str(std::size_t dim,
                             std::vector<std::pair<const double*, PointId>> items,
                             Config cfg);

  // k nearest neighbors of `center` by Euclidean distance (best-first branch
  // and bound). Returns up to k (id, squared distance) pairs ordered nearest
  // first. A point at the centre (distance 0) is included.
  void query_knn(std::span<const double> center, std::size_t k,
                 std::vector<std::pair<PointId, double>>& out) const;

  // Collects ids of all points within `radius` of `center`. strict=true uses
  // DIST < radius (the DBSCAN eps-neighborhood); strict=false uses <=
  // (the paper's 3*eps reachability test). Appends to `out`.
  void query_ball(std::span<const double> center, double radius,
                  std::vector<PointId>& out, bool strict = true) const;

  // Returns the id of some point within `radius` of `center`, or
  // kInvalidPoint if none exists. Early-exits on first hit.
  [[nodiscard]] PointId first_within(std::span<const double> center,
                                     double radius, bool strict = true) const;

  // Visits every point within radius; used where the caller wants to filter
  // by id or stop early with custom logic. Visitor returns false to stop.
  void visit_ball(std::span<const double> center, double radius,
                  const std::function<bool(PointId, double /*sq_dist*/)>& fn,
                  bool strict = true) const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const Box& root_mbr() const;

  // Instrumentation: number of point-point distance evaluations and tree
  // nodes visited (popped from the search stack/frontier) by queries since
  // construction (used by the ablation benches and the obs run report). The
  // counters are atomic so concurrent read-only queries (the thread-parallel
  // µDBSCAN phases) stay race-free; each query accumulates locally and
  // publishes one relaxed add on exit, keeping the scans themselves
  // atomic-free.
  [[nodiscard]] std::uint64_t distance_evals() const noexcept {
    return dist_evals_.load(std::memory_order_relaxed);
  }
  void reset_distance_evals() noexcept {
    dist_evals_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t node_visits() const noexcept {
    return node_visits_.load(std::memory_order_relaxed);
  }

  // SIMD kernel instrumentation: number of leaf blocks handed to the
  // dispatched distance kernel, and how many of the scanned points fell in a
  // block's scalar tail (count % active lanes) — together they show how much
  // of the scan work was actually vectorized.
  [[nodiscard]] std::uint64_t kernel_blocks() const noexcept {
    return kernel_blocks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t kernel_tail_points() const noexcept {
    return kernel_tail_points_.load(std::memory_order_relaxed);
  }

  struct Stats {
    std::size_t height = 0;
    std::size_t internal_nodes = 0;
    std::size_t leaf_nodes = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  // Heap bytes held by the tree structure (nodes, MBRs, id arrays, and the
  // leaf SoA coordinate blocks). Used by the run-guard memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const;

  // Test hook: verifies the structural invariants (MBR containment, entry
  // count bounds, consistent leaf depth). Throws std::logic_error on
  // violation.
  void check_invariants() const;

 private:
  struct Node;

  // Allocates a leaf with a fixed-capacity SoA block of max_entries+1 points
  // (one slot of overflow headroom before the split triggers), so the block's
  // stride stays constant while entries accumulate.
  [[nodiscard]] std::unique_ptr<Node> make_leaf() const;

  void insert_recursive(Node& node, const double* pt, PointId id,
                        std::unique_ptr<Node>& split_out);
  void split_leaf(Node& node, std::unique_ptr<Node>& out);
  void split_internal(Node& node, std::unique_ptr<Node>& out);

  std::size_t dim_;
  Config cfg_;
  std::unique_ptr<Node> root_;
  std::size_t count_ = 0;
  bool enforce_min_fill_ = true;  // false for STR bulk-loaded trees
  mutable std::atomic<std::uint64_t> dist_evals_{0};
  mutable std::atomic<std::uint64_t> node_visits_{0};
  mutable std::atomic<std::uint64_t> kernel_blocks_{0};
  mutable std::atomic<std::uint64_t> kernel_tail_points_{0};
};

}  // namespace udb
