#include "index/rtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "common/simd.hpp"

namespace udb {

namespace {

// Leaf scans compute the whole block of squared distances into a stack
// buffer before filtering; leaves larger than this (possible only with
// unusually large Config::max_entries) fall back to a heap buffer.
constexpr std::size_t kLeafScanBuf = 512;

}  // namespace

struct RTree::Node {
  explicit Node(std::size_t dim, bool leaf) : mbr(dim), is_leaf(leaf) {}

  Box mbr;
  bool is_leaf;
  // Leaf payload: a dim-major SoA coordinate block (coordinate k of entry i
  // at block[k * stride + i], stride = block.size() / dim) plus a parallel
  // id array. ids.size() is the live entry count; the block may have spare
  // capacity (fixed-stride incremental leaves).
  std::vector<double> block;
  std::vector<PointId> ids;
  // Internal payload.
  std::vector<std::unique_ptr<Node>> children;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return is_leaf ? ids.size() : children.size();
  }
  [[nodiscard]] std::size_t stride(std::size_t dim) const noexcept {
    return block.size() / dim;
  }
  void set_coords(std::size_t i, const double* pt, std::size_t dim) noexcept {
    const std::size_t s = stride(dim);
    for (std::size_t k = 0; k < dim; ++k) block[k * s + i] = pt[k];
  }
  void get_coords(std::size_t i, std::size_t dim, double* out) const noexcept {
    const std::size_t s = stride(dim);
    for (std::size_t k = 0; k < dim; ++k) out[k] = block[k * s + i];
  }
};

std::unique_ptr<RTree::Node> RTree::make_leaf() const {
  auto leaf = std::make_unique<Node>(dim_, /*leaf=*/true);
  const std::size_t cap = static_cast<std::size_t>(cfg_.max_entries) + 1;
  leaf->block.resize(cap * dim_);
  leaf->ids.reserve(cap);
  return leaf;
}

RTree::RTree(std::size_t dim, Config cfg) : dim_(dim), cfg_(cfg) {
  if (dim_ == 0) throw std::invalid_argument("RTree: dim must be > 0");
  if (cfg_.min_entries < 2 || cfg_.max_entries < 2 * cfg_.min_entries)
    throw std::invalid_argument("RTree: need max_entries >= 2*min_entries");
  root_ = make_leaf();
}

RTree::~RTree() = default;

// Hand-written moves: the atomic instrumentation counters are not movable.
// Moving a tree while queries run on it is a caller bug, so relaxed
// load/store of the counters is sufficient.
RTree::RTree(RTree&& other) noexcept
    : dim_(other.dim_),
      cfg_(other.cfg_),
      root_(std::move(other.root_)),
      count_(other.count_),
      enforce_min_fill_(other.enforce_min_fill_),
      dist_evals_(other.dist_evals_.load(std::memory_order_relaxed)),
      node_visits_(other.node_visits_.load(std::memory_order_relaxed)),
      kernel_blocks_(other.kernel_blocks_.load(std::memory_order_relaxed)),
      kernel_tail_points_(
          other.kernel_tail_points_.load(std::memory_order_relaxed)) {
  other.count_ = 0;
}

RTree& RTree::operator=(RTree&& other) noexcept {
  if (this != &other) {
    dim_ = other.dim_;
    cfg_ = other.cfg_;
    root_ = std::move(other.root_);
    count_ = other.count_;
    enforce_min_fill_ = other.enforce_min_fill_;
    dist_evals_.store(other.dist_evals_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    node_visits_.store(other.node_visits_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    kernel_blocks_.store(other.kernel_blocks_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    kernel_tail_points_.store(
        other.kernel_tail_points_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.count_ = 0;
  }
  return *this;
}

const Box& RTree::root_mbr() const { return root_->mbr; }

void RTree::insert(const double* pt, PointId id) {
  std::unique_ptr<Node> split;
  insert_recursive(*root_, pt, id, split);
  if (split) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>(dim_, /*leaf=*/false);
    new_root->mbr = root_->mbr;
    new_root->mbr.expand(split->mbr);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    root_ = std::move(new_root);
  }
  ++count_;
}

void RTree::insert_recursive(Node& node, const double* pt, PointId id,
                             std::unique_ptr<Node>& split_out) {
  const std::span<const double> p{pt, dim_};
  node.mbr.expand(p);
  if (node.is_leaf) {
    node.set_coords(node.ids.size(), pt, dim_);
    node.ids.push_back(id);
    if (node.entry_count() > cfg_.max_entries) split_leaf(node, split_out);
    return;
  }

  // Guttman ChooseSubtree: least enlargement, ties by smaller margin.
  const Box pbox = Box::from_point(p);
  std::size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_margin = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const Box& b = node.children[i]->mbr;
    const double enl = b.enlargement_margin(pbox);
    const double mar = b.margin();
    if (enl < best_enl || (enl == best_enl && mar < best_margin)) {
      best = i;
      best_enl = enl;
      best_margin = mar;
    }
  }

  std::unique_ptr<Node> child_split;
  insert_recursive(*node.children[best], pt, id, child_split);
  if (child_split) {
    node.children.push_back(std::move(child_split));
    if (node.entry_count() > cfg_.max_entries) split_internal(node, split_out);
  }
}

namespace {

// Quadratic PickSeeds over a set of boxes: the pair whose combined box wastes
// the most margin.
std::pair<std::size_t, std::size_t> pick_seeds(const std::vector<Box>& boxes) {
  std::size_t s1 = 0, s2 = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      Box combined = boxes[i];
      combined.expand(boxes[j]);
      const double waste =
          combined.margin() - boxes[i].margin() - boxes[j].margin();
      if (waste > worst) {
        worst = waste;
        s1 = i;
        s2 = j;
      }
    }
  }
  return {s1, s2};
}

}  // namespace

void RTree::split_leaf(Node& node, std::unique_ptr<Node>& out) {
  const std::size_t n = node.ids.size();
  const std::size_t take_stride = node.stride(dim_);
  auto take_block = std::move(node.block);
  auto take_ids = std::move(node.ids);

  std::vector<double> tmp(dim_);
  std::vector<Box> boxes;
  boxes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < dim_; ++k)
      tmp[k] = take_block[k * take_stride + i];
    boxes.push_back(Box::from_point(tmp));
  }

  auto [s1, s2] = pick_seeds(boxes);

  const std::size_t cap = static_cast<std::size_t>(cfg_.max_entries) + 1;
  node.block.assign(cap * dim_, 0.0);
  node.ids.clear();
  node.ids.reserve(cap);
  node.mbr = Box(dim_);
  out = make_leaf();

  Box b1(dim_), b2(dim_);
  auto add_to = [&](Node& dst, Box& dbox, std::size_t i) {
    const std::size_t idx = dst.ids.size();
    const std::size_t dst_stride = dst.stride(dim_);
    for (std::size_t k = 0; k < dim_; ++k)
      dst.block[k * dst_stride + idx] = take_block[k * take_stride + i];
    dst.ids.push_back(take_ids[i]);
    dbox.expand(boxes[i]);
    dst.mbr = dbox;
  };
  add_to(node, b1, s1);
  add_to(*out, b2, s2);

  std::vector<bool> assigned(n, false);
  assigned[s1] = assigned[s2] = true;
  std::size_t remaining = n - 2;

  while (remaining > 0) {
    // If one group must take all remaining entries to reach min_entries, do
    // it wholesale.
    if (node.entry_count() + remaining == cfg_.min_entries) {
      for (std::size_t i = 0; i < n; ++i)
        if (!assigned[i]) add_to(node, b1, i);
      break;
    }
    if (out->entry_count() + remaining == cfg_.min_entries) {
      for (std::size_t i = 0; i < n; ++i)
        if (!assigned[i]) add_to(*out, b2, i);
      break;
    }
    // PickNext: entry with max preference difference between the groups.
    std::size_t pick = 0;
    double best_diff = -1.0;
    double d1_pick = 0.0, d2_pick = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double d1 = b1.enlargement_margin(boxes[i]);
      const double d2 = b2.enlargement_margin(boxes[i]);
      const double diff = std::abs(d1 - d2);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d1_pick = d1;
        d2_pick = d2;
      }
    }
    assigned[pick] = true;
    --remaining;
    if (d1_pick < d2_pick ||
        (d1_pick == d2_pick && node.entry_count() <= out->entry_count()))
      add_to(node, b1, pick);
    else
      add_to(*out, b2, pick);
  }
}

void RTree::split_internal(Node& node, std::unique_ptr<Node>& out) {
  const std::size_t n = node.children.size();
  std::vector<Box> boxes;
  boxes.reserve(n);
  for (const auto& c : node.children) boxes.push_back(c->mbr);

  auto [s1, s2] = pick_seeds(boxes);

  auto take = std::move(node.children);
  node.children.clear();
  node.mbr = Box(dim_);
  out = std::make_unique<Node>(dim_, /*leaf=*/false);

  Box b1(dim_), b2(dim_);
  auto add_to = [&](Node& dst, Box& dbox, std::size_t i) {
    dst.children.push_back(std::move(take[i]));
    dbox.expand(boxes[i]);
    dst.mbr = dbox;
  };
  add_to(node, b1, s1);
  add_to(*out, b2, s2);

  std::vector<bool> assigned(n, false);
  assigned[s1] = assigned[s2] = true;
  std::size_t remaining = n - 2;

  while (remaining > 0) {
    if (node.entry_count() + remaining == cfg_.min_entries) {
      for (std::size_t i = 0; i < n; ++i)
        if (!assigned[i]) add_to(node, b1, i);
      break;
    }
    if (out->entry_count() + remaining == cfg_.min_entries) {
      for (std::size_t i = 0; i < n; ++i)
        if (!assigned[i]) add_to(*out, b2, i);
      break;
    }
    std::size_t pick = 0;
    double best_diff = -1.0;
    double d1_pick = 0.0, d2_pick = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double d1 = b1.enlargement_margin(boxes[i]);
      const double d2 = b2.enlargement_margin(boxes[i]);
      const double diff = std::abs(d1 - d2);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d1_pick = d1;
        d2_pick = d2;
      }
    }
    assigned[pick] = true;
    --remaining;
    if (d1_pick < d2_pick ||
        (d1_pick == d2_pick && node.entry_count() <= out->entry_count()))
      add_to(node, b1, pick);
    else
      add_to(*out, b2, pick);
  }
}

void RTree::query_ball(std::span<const double> center, double radius,
                       std::vector<PointId>& out, bool strict) const {
  visit_ball(
      center, radius,
      [&out](PointId id, double) {
        out.push_back(id);
        return true;
      },
      strict);
}

PointId RTree::first_within(std::span<const double> center, double radius,
                            bool strict) const {
  PointId found = kInvalidPoint;
  visit_ball(
      center, radius,
      [&found](PointId id, double) {
        found = id;
        return false;  // stop at first hit
      },
      strict);
  return found;
}

namespace {

// Accumulates a query's distance evaluations, node visits, and kernel block
// stats locally and publishes them with one relaxed add each on scope exit
// (every early return included) — keeps the scan free of atomics while
// staying exact and race-free under concurrent queries.
struct EvalCounter {
  std::atomic<std::uint64_t>& sink;
  std::atomic<std::uint64_t>& node_sink;
  std::atomic<std::uint64_t>& block_sink;
  std::atomic<std::uint64_t>& tail_sink;
  std::uint64_t local = 0;
  std::uint64_t nodes = 0;
  std::uint64_t blocks = 0;
  std::uint64_t tail = 0;
  ~EvalCounter() {
    if (local != 0) sink.fetch_add(local, std::memory_order_relaxed);
    if (nodes != 0) node_sink.fetch_add(nodes, std::memory_order_relaxed);
    if (blocks != 0) block_sink.fetch_add(blocks, std::memory_order_relaxed);
    if (tail != 0) tail_sink.fetch_add(tail, std::memory_order_relaxed);
  }
};

}  // namespace

void RTree::visit_ball(std::span<const double> center, double radius,
                       const std::function<bool(PointId, double)>& fn,
                       bool strict) const {
  if (count_ == 0) return;
  const double r2 = radius * radius;
  const std::size_t lanes = active_simd_lanes();
  EvalCounter evals{dist_evals_, node_visits_, kernel_blocks_,
                    kernel_tail_points_};

  // Per-leaf squared distances land here; the filter pass then applies the
  // eps comparison and the visitor. Comparison results are identical to the
  // old point-at-a-time scan because the kernels are bit-exact vs scalar.
  double stackbuf[kLeafScanBuf];
  std::vector<double> heapbuf;

  // Explicit stack to avoid recursion overhead on deep trees.
  std::vector<const Node*> stack;
  stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++evals.nodes;
    if (node->mbr.min_sq_dist(center) > r2) continue;
    if (node->is_leaf) {
      const std::size_t cnt = node->ids.size();
      if (cnt == 0) continue;
      double* buf = stackbuf;
      if (cnt > kLeafScanBuf) {
        heapbuf.resize(cnt);
        buf = heapbuf.data();
      }
      sq_dist_block_soa(center.data(), node->block.data(), cnt,
                        node->stride(dim_), dim_, buf);
      evals.local += cnt;
      ++evals.blocks;
      evals.tail += cnt % lanes;
      for (std::size_t i = 0; i < cnt; ++i) {
        const bool in = strict ? (buf[i] < r2) : (buf[i] <= r2);
        if (in && !fn(node->ids[i], buf[i])) return;
      }
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
}

namespace {

// STR tiling: recursively sorts `items` by successive axes and cuts them
// into runs whose final size is `leaf_cap`, yielding spatially clustered
// consecutive leaves.
void str_tile(std::vector<std::pair<const double*, PointId>>& items,
              std::size_t begin, std::size_t end, std::size_t axis,
              std::size_t dim, std::size_t leaf_cap) {
  const std::size_t count = end - begin;
  if (count <= leaf_cap || axis >= dim) return;
  std::sort(items.begin() + static_cast<std::ptrdiff_t>(begin),
            items.begin() + static_cast<std::ptrdiff_t>(end),
            [axis](const auto& a, const auto& b) {
              return a.first[axis] < b.first[axis];
            });
  // Number of slabs along this axis: the remaining dims share the split
  // factor evenly (classic STR: S = ceil((n/cap)^(1/remaining_dims))).
  const double leaves = std::ceil(static_cast<double>(count) /
                                  static_cast<double>(leaf_cap));
  const double remaining = static_cast<double>(dim - axis);
  const auto slabs = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::pow(leaves, 1.0 / remaining))));
  const std::size_t slab_size = (count + slabs - 1) / slabs;
  for (std::size_t s = begin; s < end; s += slab_size) {
    str_tile(items, s, std::min(end, s + slab_size), axis + 1, dim, leaf_cap);
  }
}

}  // namespace

RTree RTree::bulk_load_str(
    std::size_t dim, std::vector<std::pair<const double*, PointId>> items,
    Config cfg) {
  RTree tree(dim, cfg);
  if (items.empty()) return tree;
  const std::size_t cap = cfg.max_entries;
  str_tile(items, 0, items.size(), 0, dim, cap);

  // Pack leaves in tiled order. Bulk leaves are immutable, so their SoA
  // blocks are allocated tight: stride == leaf entry count.
  std::vector<std::unique_ptr<Node>> level;
  for (std::size_t i = 0; i < items.size(); i += cap) {
    auto leaf = std::make_unique<Node>(dim, /*leaf=*/true);
    const std::size_t end = std::min(items.size(), i + cap);
    const std::size_t cnt = end - i;
    leaf->block.resize(cnt * dim);
    leaf->ids.reserve(cnt);
    for (std::size_t j = i; j < end; ++j) {
      for (std::size_t k = 0; k < dim; ++k)
        leaf->block[k * cnt + (j - i)] = items[j].first[k];
      leaf->ids.push_back(items[j].second);
      leaf->mbr.expand(std::span<const double>{items[j].first, dim});
    }
    level.push_back(std::move(leaf));
  }

  // Pack parent levels until one root remains. Parents inherit the spatial
  // order of their children (already tiled), so MBRs stay tight.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (std::size_t i = 0; i < level.size(); i += cap) {
      auto parent = std::make_unique<Node>(dim, /*leaf=*/false);
      const std::size_t end = std::min(level.size(), i + cap);
      for (std::size_t j = i; j < end; ++j) {
        parent->mbr.expand(level[j]->mbr);
        parent->children.push_back(std::move(level[j]));
      }
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  tree.root_ = std::move(level.front());
  tree.count_ = items.size();
  tree.enforce_min_fill_ = false;
  return tree;
}

void RTree::query_knn(std::span<const double> center, std::size_t k,
                      std::vector<std::pair<PointId, double>>& out) const {
  out.clear();
  if (k == 0 || count_ == 0) return;
  const std::size_t lanes = active_simd_lanes();
  EvalCounter evals{dist_evals_, node_visits_, kernel_blocks_,
                    kernel_tail_points_};

  double stackbuf[kLeafScanBuf];
  std::vector<double> heapbuf;

  // Best-first search: a min-heap of (distance lower bound, node) frontier
  // entries plus a max-heap of the current k best points.
  struct Frontier {
    double bound;
    const Node* node;
    bool operator>(const Frontier& o) const { return bound > o.bound; }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
  frontier.push({root_->mbr.min_sq_dist(center), root_.get()});

  auto worst = [&out]() {
    return out.empty() ? std::numeric_limits<double>::infinity()
                       : out.front().second;
  };
  auto cmp = [](const std::pair<PointId, double>& a,
                const std::pair<PointId, double>& b) {
    return a.second < b.second;  // max-heap on distance
  };

  while (!frontier.empty()) {
    const auto [bound, node] = frontier.top();
    frontier.pop();
    ++evals.nodes;
    if (out.size() == k && bound >= worst()) break;  // cannot improve
    if (node->is_leaf) {
      const std::size_t cnt = node->ids.size();
      if (cnt == 0) continue;
      double* buf = stackbuf;
      if (cnt > kLeafScanBuf) {
        heapbuf.resize(cnt);
        buf = heapbuf.data();
      }
      sq_dist_block_soa(center.data(), node->block.data(), cnt,
                        node->stride(dim_), dim_, buf);
      evals.local += cnt;
      ++evals.blocks;
      evals.tail += cnt % lanes;
      for (std::size_t i = 0; i < cnt; ++i) {
        const double d2 = buf[i];
        if (out.size() < k) {
          out.emplace_back(node->ids[i], d2);
          std::push_heap(out.begin(), out.end(), cmp);
        } else if (d2 < worst()) {
          std::pop_heap(out.begin(), out.end(), cmp);
          out.back() = {node->ids[i], d2};
          std::push_heap(out.begin(), out.end(), cmp);
        }
      }
    } else {
      for (const auto& c : node->children) {
        const double b = c->mbr.min_sq_dist(center);
        if (out.size() < k || b < worst()) frontier.push({b, c.get()});
      }
    }
  }
  std::sort_heap(out.begin(), out.end(), cmp);
}

RTree::Stats RTree::stats() const {
  Stats s;
  std::vector<std::pair<const Node*, std::size_t>> stack{{root_.get(), 1}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    s.height = std::max(s.height, depth);
    if (node->is_leaf) {
      ++s.leaf_nodes;
      s.entries += node->ids.size();
    } else {
      ++s.internal_nodes;
      for (const auto& c : node->children) stack.push_back({c.get(), depth + 1});
    }
  }
  return s;
}

std::size_t RTree::memory_bytes() const {
  std::size_t bytes = sizeof(RTree);
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    bytes += sizeof(Node) + 2 * node->mbr.dim() * sizeof(double) +
             node->block.capacity() * sizeof(double) +
             node->ids.capacity() * sizeof(PointId) +
             node->children.capacity() * sizeof(std::unique_ptr<Node>);
    for (const auto& c : node->children) stack.push_back(c.get());
  }
  return bytes;
}

void RTree::check_invariants() const {
  struct Frame {
    const Node* node;
    bool is_root;
    std::size_t depth;
  };
  std::size_t leaf_depth = 0;
  bool leaf_depth_set = false;
  std::size_t seen = 0;
  std::vector<double> tmp(dim_);

  std::vector<Frame> stack{{root_.get(), true, 1}};
  while (!stack.empty()) {
    auto [node, is_root, depth] = stack.back();
    stack.pop_back();

    const std::size_t cnt = node->entry_count();
    // STR packing fills nodes to max_entries but may leave one short tail
    // node per level, so the min-fill bound only applies to incrementally
    // built trees.
    if (!is_root && enforce_min_fill_ && cnt < cfg_.min_entries)
      throw std::logic_error("RTree: node underfull");
    if (!is_root && cnt > cfg_.max_entries)
      throw std::logic_error("RTree: entry count out of bounds");
    if (is_root && cnt > cfg_.max_entries)
      throw std::logic_error("RTree: root overfull");

    if (node->is_leaf) {
      if (!leaf_depth_set) {
        leaf_depth = depth;
        leaf_depth_set = true;
      } else if (leaf_depth != depth) {
        throw std::logic_error("RTree: leaves at different depths");
      }
      if (node->block.size() % dim_ != 0 ||
          node->stride(dim_) < node->ids.size())
        throw std::logic_error("RTree: leaf SoA block smaller than id array");
      for (std::size_t i = 0; i < node->ids.size(); ++i) {
        node->get_coords(i, dim_, tmp.data());
        if (!node->mbr.contains(tmp))
          throw std::logic_error("RTree: leaf MBR does not contain point");
        ++seen;
      }
    } else {
      if (node->children.empty())
        throw std::logic_error("RTree: empty internal node");
      for (const auto& c : node->children) {
        for (std::size_t k = 0; k < dim_; ++k) {
          if (c->mbr.lo(k) < node->mbr.lo(k) || c->mbr.hi(k) > node->mbr.hi(k))
            throw std::logic_error("RTree: child MBR escapes parent MBR");
        }
        stack.push_back({c.get(), false, depth + 1});
      }
    }
  }
  if (count_ > 0 && seen != count_)
    throw std::logic_error("RTree: entry count mismatch");
}

}  // namespace udb
