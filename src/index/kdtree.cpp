#include "index/kdtree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/simd.hpp"

namespace udb {

namespace {

// Stack buffer for per-leaf squared distances; leaves larger than this
// (unusually large Config::leaf_size) use a heap buffer.
constexpr std::size_t kLeafScanBuf = 512;

}  // namespace

KdTree::KdTree(const Dataset& ds, Config cfg) : ds_(&ds), cfg_(cfg) {
  if (cfg_.leaf_size == 0)
    throw std::invalid_argument("KdTree: leaf_size must be >= 1");
  ids_.resize(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i)
    ids_[i] = static_cast<PointId>(i);
  if (!ids_.empty()) {
    root_ = build(0, static_cast<std::uint32_t>(ids_.size()));
    pack_leaf_blocks();
  }
}

void KdTree::pack_leaf_blocks() {
  const std::size_t dim = ds_->dim();
  blocks_.resize(ids_.size() * dim);
  for (const Node& node : nodes_) {
    if (node.axis >= 0) continue;
    const std::size_t cnt = node.end - node.begin;
    double* seg = blocks_.data() + static_cast<std::size_t>(node.begin) * dim;
    for (std::size_t i = 0; i < cnt; ++i) {
      const double* pt = ds_->ptr(ids_[node.begin + i]);
      for (std::size_t k = 0; k < dim; ++k) seg[k * cnt + i] = pt[k];
    }
  }
}

std::uint32_t KdTree::build(std::uint32_t begin, std::uint32_t end) {
  const std::uint32_t idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= cfg_.leaf_size) {
    nodes_[idx].axis = -1;
    nodes_[idx].begin = begin;
    nodes_[idx].end = end;
    return idx;
  }

  // Widest axis over this range.
  const std::size_t dim = ds_->dim();
  std::size_t axis = 0;
  double best_spread = -1.0;
  for (std::size_t k = 0; k < dim; ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::uint32_t i = begin; i < end; ++i) {
      const double v = ds_->coord(ids_[i], k);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      axis = k;
    }
  }

  // Median split (nth_element keeps it O(n log n) overall).
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [this, axis](PointId a, PointId b) {
                     return ds_->coord(a, axis) < ds_->coord(b, axis);
                   });
  const double split = ds_->coord(ids_[mid], axis);

  const std::uint32_t left = build(begin, mid);
  const std::uint32_t right = build(mid, end);
  nodes_[idx].axis = static_cast<std::int32_t>(axis);
  nodes_[idx].split = split;
  nodes_[idx].left = left;
  nodes_[idx].right = right;
  return idx;
}

void KdTree::query_ball(std::span<const double> center, double radius,
                        std::vector<PointId>& out, bool strict) const {
  visit_ball(
      center, radius,
      [&out](PointId id, double) {
        out.push_back(id);
        return true;
      },
      strict);
}

void KdTree::visit_ball(std::span<const double> center, double radius,
                        const std::function<bool(PointId, double)>& fn,
                        bool strict) const {
  if (ids_.empty()) return;
  const double r2 = radius * radius;
  const std::size_t dim = ds_->dim();
  const std::size_t lanes = active_simd_lanes();
  double stackbuf[kLeafScanBuf];
  std::vector<double> heapbuf;

  // Iterative traversal with per-axis plane pruning: descend a child only if
  // the ball crosses (or lies on the child's side of) the split plane.
  std::vector<std::uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.axis < 0) {
      const std::size_t cnt = node.end - node.begin;
      if (cnt == 0) continue;
      double* buf = stackbuf;
      if (cnt > kLeafScanBuf) {
        heapbuf.resize(cnt);
        buf = heapbuf.data();
      }
      // Whole-leaf block scan through the dispatched SIMD kernel; the filter
      // below applies the same eps comparison as the old per-point loop (the
      // kernels are bit-exact vs scalar).
      sq_dist_block_soa(center.data(),
                        blocks_.data() + static_cast<std::size_t>(node.begin) *
                                             dim,
                        cnt, cnt, dim, buf);
      dist_evals_ += cnt;
      ++kernel_blocks_;
      kernel_tail_points_ += cnt % lanes;
      for (std::size_t i = 0; i < cnt; ++i) {
        const bool in = strict ? (buf[i] < r2) : (buf[i] <= r2);
        if (in && !fn(ids_[node.begin + i], buf[i])) return;
      }
      continue;
    }
    const double delta = center[static_cast<std::size_t>(node.axis)] - node.split;
    // Left subtree holds coords <= split, right holds >= split (median
    // duplicates may land on either side of mid, so prune with <=/>=).
    if (delta <= radius) stack.push_back(node.left);
    if (-delta <= radius) stack.push_back(node.right);
  }
}

void KdTree::check_node(std::uint32_t idx,
                        std::vector<std::uint8_t>& seen) const {
  const Node& node = nodes_[idx];
  if (node.axis < 0) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      if (seen[ids_[i]])
        throw std::logic_error("KdTree: point referenced twice");
      seen[ids_[i]] = 1;
    }
    return;
  }
  // Left coords <= split <= right coords along the split axis.
  const auto axis = static_cast<std::size_t>(node.axis);
  const std::function<void(std::uint32_t, bool)> check_side =
      [&](std::uint32_t child, bool is_left) {
        std::vector<std::uint32_t> stack{child};
        while (!stack.empty()) {
          const Node& c = nodes_[stack.back()];
          stack.pop_back();
          if (c.axis < 0) {
            for (std::uint32_t i = c.begin; i < c.end; ++i) {
              const double v = ds_->coord(ids_[i], axis);
              if (is_left ? v > node.split : v < node.split)
                throw std::logic_error("KdTree: split invariant violated");
            }
          } else {
            stack.push_back(c.left);
            stack.push_back(c.right);
          }
        }
      };
  check_side(node.left, true);
  check_side(node.right, false);
  check_node(node.left, seen);
  check_node(node.right, seen);
}

void KdTree::check_invariants() const {
  if (ids_.empty()) return;
  std::vector<std::uint8_t> seen(ds_->size(), 0);
  check_node(root_, seen);
  for (std::size_t i = 0; i < seen.size(); ++i)
    if (!seen[i]) throw std::logic_error("KdTree: point missing");
}

}  // namespace udb
