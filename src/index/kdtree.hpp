// Static balanced kd-tree — an alternative exact point index alongside the
// R-tree. The paper's distributed layer already splits space kd-style
// (dist/kd_partition); this is the same recursion materialized as an index:
// median split on the widest axis, leaves of a few points, ball queries with
// per-axis pruning. Used by the index micro-benches as a comparison backend
// and available to library users who prefer kd-trees for low-dimensional
// data.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/dataset.hpp"

namespace udb {

class KdTree {
 public:
  struct Config {
    std::uint32_t leaf_size = 16;
  };

  // Builds over all points of `ds`; the dataset must outlive the tree.
  explicit KdTree(const Dataset& ds) : KdTree(ds, Config()) {}
  KdTree(const Dataset& ds, Config cfg);

  // Ids of points within `radius` of `center` (strict <, or <= with
  // strict=false), appended to `out`.
  void query_ball(std::span<const double> center, double radius,
                  std::vector<PointId>& out, bool strict = true) const;

  // Visitor form; visitor returns false to stop early.
  void visit_ball(std::span<const double> center, double radius,
                  const std::function<bool(PointId, double)>& fn,
                  bool strict = true) const;

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] std::uint64_t distance_evals() const noexcept {
    return dist_evals_;
  }

  // SIMD kernel instrumentation (see docs/KERNELS.md): leaf blocks handed to
  // the dispatched distance kernel and points that fell in a block's scalar
  // tail. Non-atomic like dist_evals_ — the kd-tree is queried
  // single-threaded.
  [[nodiscard]] std::uint64_t kernel_blocks() const noexcept {
    return kernel_blocks_;
  }
  [[nodiscard]] std::uint64_t kernel_tail_points() const noexcept {
    return kernel_tail_points_;
  }

  // Test hook: checks the split invariants (left subtree coordinates <=
  // split value <= right subtree coordinates on the split axis).
  void check_invariants() const;

 private:
  struct Node {
    // Internal: axis >= 0, split value, children indices. Leaf: axis == -1,
    // [begin, end) range into ids_.
    std::int32_t axis = -1;
    double split = 0.0;
    std::uint32_t left = 0, right = 0;   // node indices
    std::uint32_t begin = 0, end = 0;    // leaf payload range
  };

  std::uint32_t build(std::uint32_t begin, std::uint32_t end);
  void pack_leaf_blocks();
  void check_node(std::uint32_t idx, std::vector<std::uint8_t>& seen) const;

  const Dataset* ds_;
  Config cfg_;
  std::vector<PointId> ids_;   // permuted point ids; leaves own ranges
  std::vector<Node> nodes_;
  // SoA leaf coordinate storage: leaf [begin, end) owns the segment at
  // offset begin*dim, laid out dim-major with stride end-begin (coordinate k
  // of the i-th leaf entry at segment[k*(end-begin) + i]), entries in ids_
  // order. Packed once after build; fed to the dispatched SIMD kernel.
  std::vector<double> blocks_;
  std::uint32_t root_ = 0;
  mutable std::uint64_t dist_evals_ = 0;
  mutable std::uint64_t kernel_blocks_ = 0;
  mutable std::uint64_t kernel_tail_points_ = 0;
};

}  // namespace udb
