// Dataset serialization: a simple whitespace/comma CSV reader-writer for
// interoperability, and a compact binary format (magic, dim, count, raw
// doubles) for large benchmark inputs.

#pragma once

#include <string>

#include "common/dataset.hpp"

namespace udb {

// CSV: one point per line, coordinates separated by ',' or whitespace.
// Lines starting with '#' are skipped. Throws std::runtime_error on parse
// errors or inconsistent dimensionality.
[[nodiscard]] Dataset read_csv(const std::string& path);
void write_csv(const Dataset& ds, const std::string& path);

// Binary: little-endian, header "UDB1" + u64 dim + u64 count + doubles.
[[nodiscard]] Dataset read_binary(const std::string& path);
void write_binary(const Dataset& ds, const std::string& path);

}  // namespace udb
