// Dataset serialization: a simple whitespace/comma CSV reader-writer for
// interoperability, and a compact binary format (magic, dim, count, raw
// doubles) for large benchmark inputs.

#pragma once

#include <string>

#include "common/dataset.hpp"
#include "common/status.hpp"

namespace udb {

// CSV: one point per line, coordinates separated by ',' or whitespace.
// Lines starting with '#' are skipped. Throws std::runtime_error on parse
// errors or inconsistent dimensionality.
[[nodiscard]] Dataset read_csv(const std::string& path);
void write_csv(const Dataset& ds, const std::string& path);

// Binary: little-endian, header "UDB1" + u64 dim + u64 count + doubles.
[[nodiscard]] Dataset read_binary(const std::string& path);
void write_binary(const Dataset& ds, const std::string& path);

// ---- Status-based loaders with quarantine (docs/ROBUSTNESS.md) -----------
//
// load_csv/load_binary are the recoverable front door used by the CLI: every
// failure comes back as a Status (NOT_FOUND for a missing file, DATA_LOSS for
// malformed content) instead of an exception. With `quarantine` set, a bad
// row — non-finite coordinate, unparseable token, wrong arity, or a truncated
// binary tail — is skipped and counted rather than fatal; the load still
// fails (DATA_LOSS) when more than `max_skip_fraction` of the rows had to be
// dropped, because at that point the file is garbage, not a file with a few
// bad rows.

struct ReadOptions {
  bool quarantine = false;
  double max_skip_fraction = 0.01;  // of total rows seen; only in quarantine
};

struct ReadReport {
  std::size_t rows_read = 0;     // rows accepted into the dataset
  std::size_t rows_skipped = 0;  // rows quarantined (0 unless quarantine)
};

[[nodiscard]] StatusOr<Dataset> load_csv(const std::string& path,
                                         const ReadOptions& opts = {},
                                         ReadReport* report = nullptr);
[[nodiscard]] StatusOr<Dataset> load_binary(const std::string& path,
                                            const ReadOptions& opts = {},
                                            ReadReport* report = nullptr);

}  // namespace udb
