// Axis-aligned bounding box (the R-tree literature's MBR) in d dimensions.
//
// Boxes are the only geometric primitive the spatial indexes need: point
// containment, box-box overlap, box-ball overlap (for eps-region queries) and
// enlargement metrics for the Guttman insertion heuristics.

#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace udb {

class Box {
 public:
  Box() = default;

  explicit Box(std::size_t dim)
      : lo_(dim, std::numeric_limits<double>::infinity()),
        hi_(dim, -std::numeric_limits<double>::infinity()) {}

  // A degenerate box covering exactly one point.
  static Box from_point(std::span<const double> p) {
    Box b(p.size());
    for (std::size_t k = 0; k < p.size(); ++k) b.lo_[k] = b.hi_[k] = p[k];
    return b;
  }

  // The ball's bounding box: [c - r, c + r] per axis.
  static Box from_ball(std::span<const double> center, double radius) {
    Box b(center.size());
    for (std::size_t k = 0; k < center.size(); ++k) {
      b.lo_[k] = center[k] - radius;
      b.hi_[k] = center[k] + radius;
    }
    return b;
  }

  [[nodiscard]] std::size_t dim() const noexcept { return lo_.size(); }
  [[nodiscard]] double lo(std::size_t k) const noexcept { return lo_[k]; }
  [[nodiscard]] double hi(std::size_t k) const noexcept { return hi_[k]; }
  [[nodiscard]] bool valid() const noexcept {
    for (std::size_t k = 0; k < dim(); ++k)
      if (lo_[k] > hi_[k]) return false;
    return !lo_.empty();
  }

  void expand(std::span<const double> p) noexcept {
    for (std::size_t k = 0; k < dim(); ++k) {
      lo_[k] = std::min(lo_[k], p[k]);
      hi_[k] = std::max(hi_[k], p[k]);
    }
  }

  void expand(const Box& o) noexcept {
    for (std::size_t k = 0; k < dim(); ++k) {
      lo_[k] = std::min(lo_[k], o.lo_[k]);
      hi_[k] = std::max(hi_[k], o.hi_[k]);
    }
  }

  // Grows the box by `margin` on every side (the paper's eps-extended MBR).
  void inflate(double margin) noexcept {
    for (std::size_t k = 0; k < dim(); ++k) {
      lo_[k] -= margin;
      hi_[k] += margin;
    }
  }

  [[nodiscard]] bool contains(std::span<const double> p) const noexcept {
    for (std::size_t k = 0; k < dim(); ++k)
      if (p[k] < lo_[k] || p[k] > hi_[k]) return false;
    return true;
  }

  [[nodiscard]] bool overlaps(const Box& o) const noexcept {
    for (std::size_t k = 0; k < dim(); ++k)
      if (lo_[k] > o.hi_[k] || o.lo_[k] > hi_[k]) return false;
    return true;
  }

  // Squared distance from a point to the nearest point of the box (0 if the
  // point is inside). Used for exact box-ball overlap tests: the eps-ball of
  // `p` intersects the box iff min_sq_dist(p) <= eps^2.
  [[nodiscard]] double min_sq_dist(std::span<const double> p) const noexcept {
    double acc = 0.0;
    for (std::size_t k = 0; k < dim(); ++k) {
      double d = 0.0;
      if (p[k] < lo_[k])
        d = lo_[k] - p[k];
      else if (p[k] > hi_[k])
        d = p[k] - hi_[k];
      acc += d * d;
    }
    return acc;
  }

  [[nodiscard]] bool overlaps_ball(std::span<const double> center,
                                   double radius) const noexcept {
    return min_sq_dist(center) <= radius * radius;
  }

  // Sum of side lengths of the enlargement needed to include `o` — Guttman's
  // "area enlargement" generalized with margin (perimeter) to stay finite in
  // high dimensions, where products of many side lengths under/overflow.
  [[nodiscard]] double enlargement_margin(const Box& o) const noexcept {
    double before = 0.0, after = 0.0;
    for (std::size_t k = 0; k < dim(); ++k) {
      before += hi_[k] - lo_[k];
      after += std::max(hi_[k], o.hi_[k]) - std::min(lo_[k], o.lo_[k]);
    }
    return after - before;
  }

  [[nodiscard]] double margin() const noexcept {
    double m = 0.0;
    for (std::size_t k = 0; k < dim(); ++k) m += hi_[k] - lo_[k];
    return m;
  }

  [[nodiscard]] std::span<const double> lo_span() const noexcept {
    return lo_;
  }
  [[nodiscard]] std::span<const double> hi_span() const noexcept {
    return hi_;
  }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace udb
