#include "common/vfs.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "mpi/fault.hpp"  // fault_hash / fault_unit: the shared decision stream

namespace udb::vfs {

namespace {

// ---- fault state ----------------------------------------------------------

std::atomic<const IoFaultPlan*> g_plan{nullptr};
std::atomic<std::uint64_t> g_op_seq{0};

struct Counts {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> eintr{0};
  std::atomic<std::uint64_t> short_reads{0};
  std::atomic<std::uint64_t> short_writes{0};
  std::atomic<std::uint64_t> truncated_reads{0};
  std::atomic<std::uint64_t> bitrots{0};
  std::atomic<std::uint64_t> enospc{0};
  std::atomic<std::uint64_t> fsync_failures{0};
};
Counts g_counts;

// Operation kinds feed the decision hash so the same ordinal rolls different
// dice for a read than for an fsync.
enum class IoOp : int {
  kOpen = 1,
  kRead,
  kWrite,
  kFsync,
  kDirFsync,
  kRename,
  kRemove,
  kMkdir,
  kList,
};

// One dice roll per VFS operation. h == 0 means "no plan installed" (the
// hash itself can never be 0 for practical purposes; we carry the plan
// pointer alongside to be precise).
struct OpRoll {
  const IoFaultPlan* plan = nullptr;
  std::uint64_t h = 0;

  [[nodiscard]] bool decide(double IoFaultPlan::*rate,
                            std::uint64_t salt) const noexcept {
    if (plan == nullptr || plan->*rate <= 0.0) return false;
    return mpi::fault_unit(mpi::fault_mix(h + salt)) < plan->*rate;
  }
};

// Counts the op, fires the crash point, and derives the decision hash.
// Decisions depend only on (seed, op kind, basename hash, ordinal) — stable
// across runs that perform the same operation sequence.
OpRoll roll(IoOp op, std::uint32_t name_hash) noexcept {
  const IoFaultPlan* plan = g_plan.load(std::memory_order_relaxed);
  if (plan == nullptr) return {};
  const std::uint64_t seq = g_op_seq.fetch_add(1, std::memory_order_relaxed);
  g_counts.ops.fetch_add(1, std::memory_order_relaxed);
  if (plan->crash_at_op >= 0 &&
      seq == static_cast<std::uint64_t>(plan->crash_at_op)) {
    // Simulated power loss: no destructors, no buffers flushed, the op never
    // executes. Everything already written by *completed* chunk ops is on
    // disk (or in the page cache — the discipline under test must not care).
    std::_Exit(kIoCrashExit);
  }
  OpRoll r;
  r.plan = plan;
  r.h = mpi::fault_hash(plan->seed, static_cast<int>(op), 0, name_hash, seq,
                        /*salt=*/0x10F5);
  return r;
}

std::uint32_t hash_basename(const std::string& path) noexcept {
  const std::size_t slash = path.find_last_of('/');
  const char* p = path.c_str() + (slash == std::string::npos ? 0 : slash + 1);
  std::uint32_t h = 2166136261u;  // FNV-1a 32
  for (; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 16777619u;
  }
  return h;
}

// ---- errno mapping --------------------------------------------------------

Status errno_write_error(const std::string& what, const std::string& path,
                         int err) {
  const std::string msg =
      "vfs: " + what + " failed for " + path + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) return ResourceExhaustedError(msg);
  return InternalError(msg);
}

Status errno_read_error(const std::string& what, const std::string& path,
                        int err) {
  const std::string msg =
      "vfs: " + what + " failed for " + path + ": " + std::strerror(err);
  if (err == ENOENT) return NotFoundError(msg);
  return InternalError(msg);
}

}  // namespace

StatusOr<File> File::open_with(const std::string& path, int flags,
                               bool read_side) {
  (void)roll(IoOp::kOpen, hash_basename(path));
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0)
    return read_side ? errno_read_error("open", path, errno)
                     : errno_write_error("open", path, errno);
  return File(fd, path);
}

void install_io_fault_plan(const IoFaultPlan* plan) noexcept {
  g_plan.store(plan, std::memory_order_release);
}

const IoFaultPlan* io_fault_plan() noexcept {
  return g_plan.load(std::memory_order_acquire);
}

IoFaultCounts io_fault_counts() noexcept {
  IoFaultCounts c;
  c.ops = g_counts.ops.load(std::memory_order_relaxed);
  c.eintr = g_counts.eintr.load(std::memory_order_relaxed);
  c.short_reads = g_counts.short_reads.load(std::memory_order_relaxed);
  c.short_writes = g_counts.short_writes.load(std::memory_order_relaxed);
  c.truncated_reads = g_counts.truncated_reads.load(std::memory_order_relaxed);
  c.bitrots = g_counts.bitrots.load(std::memory_order_relaxed);
  c.enospc = g_counts.enospc.load(std::memory_order_relaxed);
  c.fsync_failures = g_counts.fsync_failures.load(std::memory_order_relaxed);
  return c;
}

void reset_io_fault_state() noexcept {
  g_op_seq.store(0, std::memory_order_relaxed);
  g_counts.ops.store(0, std::memory_order_relaxed);
  g_counts.eintr.store(0, std::memory_order_relaxed);
  g_counts.short_reads.store(0, std::memory_order_relaxed);
  g_counts.short_writes.store(0, std::memory_order_relaxed);
  g_counts.truncated_reads.store(0, std::memory_order_relaxed);
  g_counts.bitrots.store(0, std::memory_order_relaxed);
  g_counts.enospc.store(0, std::memory_order_relaxed);
  g_counts.fsync_failures.store(0, std::memory_order_relaxed);
}

std::uint64_t io_fault_next_op() noexcept {
  return g_op_seq.load(std::memory_order_relaxed);
}

// ---- File -----------------------------------------------------------------

File::File(int fd, std::string path)
    : fd_(fd), path_(std::move(path)), name_hash_(hash_basename(path_)) {}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File::File(File&& o) noexcept
    : fd_(o.fd_), path_(std::move(o.path_)), name_hash_(o.name_hash_) {
  o.fd_ = -1;
}

File& File::operator=(File&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    path_ = std::move(o.path_);
    name_hash_ = o.name_hash_;
    o.fd_ = -1;
  }
  return *this;
}

StatusOr<File> File::create(const std::string& path) {
  return open_with(path, O_WRONLY | O_CREAT | O_TRUNC, /*read_side=*/false);
}

StatusOr<File> File::open_append(const std::string& path) {
  return open_with(path, O_WRONLY | O_CREAT | O_APPEND, /*read_side=*/false);
}

StatusOr<File> File::open_read(const std::string& path) {
  return open_with(path, O_RDONLY, /*read_side=*/true);
}

Status File::write(const void* p, std::size_t n) {
  if (fd_ < 0) return InternalError("vfs: write on closed file " + path_);
  const auto* cur = static_cast<const std::uint8_t*>(p);
  std::size_t remaining = n;
  while (remaining > 0) {
    const OpRoll r = roll(IoOp::kWrite, name_hash_);
    if (r.decide(&IoFaultPlan::eintr_rate, 1)) {
      // Simulated EINTR before any bytes moved; the loop simply retries with
      // a fresh roll, which is exactly what the syscall loop below does for
      // a real EINTR.
      g_counts.eintr.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::size_t want = std::min(kIoChunk, remaining);
    if (r.decide(&IoFaultPlan::enospc_rate, 2)) {
      // Half the chunk lands, then the device is full — the torn-prefix
      // shape a real ENOSPC produces.
      const std::size_t landed = want / 2;
      ssize_t w = 0;
      do {
        w = ::write(fd_, cur, landed);
      } while (w < 0 && errno == EINTR);
      (void)w;  // the prefix is best-effort: the op fails either way
      g_counts.enospc.fetch_add(1, std::memory_order_relaxed);
      return ResourceExhaustedError("vfs: write failed for " + path_ +
                                    ": No space left on device (injected)");
    }
    if (r.decide(&IoFaultPlan::short_write_rate, 3)) {
      want = (want + 1) / 2;
      g_counts.short_writes.fetch_add(1, std::memory_order_relaxed);
    }
    const ssize_t w = ::write(fd_, cur, want);
    if (w < 0) {
      if (errno == EINTR) continue;
      return errno_write_error("write", path_, errno);
    }
    cur += w;
    remaining -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

StatusOr<std::size_t> File::read(void* p, std::size_t n) {
  if (fd_ < 0) return InternalError("vfs: read on closed file " + path_);
  auto* cur = static_cast<std::uint8_t*>(p);
  std::size_t got = 0;
  while (got < n) {
    const OpRoll r = roll(IoOp::kRead, name_hash_);
    if (r.decide(&IoFaultPlan::eintr_rate, 1)) {
      g_counts.eintr.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (r.decide(&IoFaultPlan::read_truncate_rate, 2)) {
      // Hard truncation: the rest of the file "is not there" — the caller
      // sees a clean short file, the same observable as a torn write that
      // was never fsynced.
      g_counts.truncated_reads.fetch_add(1, std::memory_order_relaxed);
      return got;
    }
    std::size_t want = std::min(kIoChunk, n - got);
    if (r.decide(&IoFaultPlan::short_read_rate, 3)) {
      want = (want + 1) / 2;
      g_counts.short_reads.fetch_add(1, std::memory_order_relaxed);
    }
    const ssize_t rd = ::read(fd_, cur + got, want);
    if (rd < 0) {
      if (errno == EINTR) continue;
      return errno_read_error("read", path_, errno);
    }
    if (rd == 0) break;  // real EOF
    if (r.decide(&IoFaultPlan::bitrot_rate, 4)) {
      // One flipped bit inside the chunk just read — what CRC/checksum
      // verification on every load path must catch.
      const std::uint64_t bit =
          mpi::fault_mix(r.h + 5) % (static_cast<std::uint64_t>(rd) * 8);
      cur[got + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      g_counts.bitrots.fetch_add(1, std::memory_order_relaxed);
    }
    got += static_cast<std::size_t>(rd);
  }
  return got;
}

Status File::sync() {
  if (fd_ < 0) return InternalError("vfs: sync on closed file " + path_);
  const OpRoll r = roll(IoOp::kFsync, name_hash_);
  const int rc = ::fsync(fd_);
  if (r.decide(&IoFaultPlan::fsync_fail_rate, 1)) {
    g_counts.fsync_failures.fetch_add(1, std::memory_order_relaxed);
    return DataLossError("vfs: fsync failed for " + path_ +
                         ": I/O error (injected) — durability unknown");
  }
  if (rc != 0)
    return DataLossError("vfs: fsync failed for " + path_ + ": " +
                         std::strerror(errno) + " — durability unknown");
  return Status::Ok();
}

Status File::close() {
  if (fd_ < 0) return Status::Ok();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0)
    return errno_write_error("close", path_, errno);
  return Status::Ok();
}

// ---- whole-file helpers ---------------------------------------------------

StatusOr<std::vector<std::uint8_t>> read_file(const std::string& path) {
  auto f = File::open_read(path);
  if (!f.ok()) return f.status();
  auto size = file_size(path);
  if (!size.ok()) return size.status();
  std::vector<std::uint8_t> out(static_cast<std::size_t>(*size));
  auto got = f->read(out.data(), out.size());
  if (!got.ok()) return got.status();
  out.resize(*got);  // injected truncation (or a racing truncate) shortens it
  Status cs = f->close();
  if (!cs.ok()) return cs;
  return out;
}

Status write_file(const std::string& path, const void* data, std::size_t n) {
  auto f = File::create(path);
  if (!f.ok()) return f.status();
  if (Status s = f->write(data, n); !s.ok()) {
    (void)f->close();
    return s;
  }
  return f->close();
}

Status write_text_file(const std::string& path, const std::string& text) {
  return write_file(path, text.data(), text.size());
}

Status write_file_atomic(const std::string& path, const void* data,
                         std::size_t n, bool durable) {
  const std::string tmp = path + ".tmp";
  auto cleanup = [&tmp](Status s) {
    (void)remove_file(tmp);
    return s;
  };
  auto f = File::create(tmp);
  if (!f.ok()) return f.status();
  if (Status s = f->write(data, n); !s.ok()) {
    (void)f->close();
    return cleanup(std::move(s));
  }
  if (durable) {
    if (Status s = f->sync(); !s.ok()) {
      (void)f->close();
      return cleanup(std::move(s));
    }
  }
  if (Status s = f->close(); !s.ok()) return cleanup(std::move(s));
  if (Status s = rename_file(tmp, path); !s.ok()) return cleanup(std::move(s));
  // The rename has landed; a dir-fsync failure no longer rolls it back, but
  // the caller must know the publish may not survive power loss.
  if (durable) return fsync_parent_dir(path);
  return Status::Ok();
}

// ---- directory / metadata ops --------------------------------------------

Status rename_file(const std::string& from, const std::string& to) {
  (void)roll(IoOp::kRename, hash_basename(to));
  if (::rename(from.c_str(), to.c_str()) != 0)
    return errno_write_error("rename to " + to + " from", from, errno);
  return Status::Ok();
}

Status remove_file(const std::string& path) {
  (void)roll(IoOp::kRemove, hash_basename(path));
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    return errno_write_error("unlink", path, errno);
  return Status::Ok();
}

Status fsync_parent_dir(const std::string& path) {
  const std::string dir = dirname(path);
  const OpRoll r = roll(IoOp::kDirFsync, hash_basename(dir));
  int fd = -1;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return errno_write_error("open(dir)", dir, errno);
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (r.decide(&IoFaultPlan::fsync_fail_rate, 1)) {
    g_counts.fsync_failures.fetch_add(1, std::memory_order_relaxed);
    return DataLossError("vfs: fsync failed for directory " + dir +
                         ": I/O error (injected) — durability unknown");
  }
  if (rc != 0)
    return DataLossError("vfs: fsync failed for directory " + dir + ": " +
                         std::strerror(err) + " — durability unknown");
  return Status::Ok();
}

Status make_dir(const std::string& path) {
  (void)roll(IoOp::kMkdir, hash_basename(path));
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST)
    return errno_write_error("mkdir", path, errno);
  return Status::Ok();
}

Status make_dirs(const std::string& path) {
  if (path.empty()) return InvalidArgumentError("make_dirs: empty path");
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? path : path.substr(0, pos);
    if (prefix.empty() || prefix == "/" || prefix == ".") continue;
    if (Status s = make_dir(prefix); !s.ok()) return s;
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> list_dir(const std::string& dir) {
  (void)roll(IoOp::kList, hash_basename(dir));
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return errno_read_error("opendir", dir, errno);
  std::vector<std::string> out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<std::uint64_t> file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0)
    return errno_read_error("stat", path, errno);
  return static_cast<std::uint64_t>(st.st_size);
}

bool exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::string basename(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string dirname(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace udb::vfs
