#include "common/io.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace udb {

namespace {
constexpr std::array<char, 4> kMagic = {'U', 'D', 'B', '1'};
}

Dataset read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::vector<double> coords;
  std::size_t dim = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    for (char& c : line)
      if (c == ',') c = ' ';
    std::istringstream ss(line);
    std::size_t count = 0;
    double v = 0.0;
    while (ss >> v) {
      if (!std::isfinite(v))
        throw std::runtime_error("read_csv: non-finite value at line " +
                                 std::to_string(lineno) + " in " + path);
      coords.push_back(v);
      ++count;
    }
    // The extraction loop above stops either at end-of-line (fine) or on an
    // unparseable token ("nan", "abc", ...) — which must be an error, not a
    // silently shortened or skipped row.
    if (!ss.eof())
      throw std::runtime_error("read_csv: unparseable value at line " +
                               std::to_string(lineno) + " in " + path);
    if (count == 0) continue;
    if (dim == 0) {
      dim = count;
    } else if (count != dim) {
      throw std::runtime_error("read_csv: inconsistent dimension at line " +
                               std::to_string(lineno) + " in " + path);
    }
  }
  if (dim == 0) throw std::runtime_error("read_csv: no data in " + path);
  return Dataset(dim, std::move(coords));
}

void write_csv(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  out.precision(17);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const double* p = ds.ptr(static_cast<PointId>(i));
    for (std::size_t k = 0; k < ds.dim(); ++k) {
      if (k) out << ',';
      out << p[k];
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write_csv: write failed for " + path);
}

Dataset read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_binary: cannot open " + path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic)
    throw std::runtime_error("read_binary: bad magic in " + path);
  std::uint64_t dim = 0, count = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof dim);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || dim == 0)
    throw std::runtime_error("read_binary: bad header in " + path);
  // A hostile or truncated header must not drive a huge (or overflowing)
  // allocation: dim*count must fit in size_t with room for sizeof(double),
  // and the payload it implies must fit in the bytes actually present.
  constexpr std::uint64_t kMaxElems =
      std::numeric_limits<std::size_t>::max() / sizeof(double);
  if (count != 0 && dim > kMaxElems / count)
    throw std::runtime_error("read_binary: header overflows size_t in " +
                             path);
  const std::uint64_t payload = dim * count * sizeof(double);
  const auto data_pos = in.tellg();
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  in.seekg(data_pos);
  if (data_pos < 0 || end_pos < data_pos ||
      static_cast<std::uint64_t>(end_pos - data_pos) < payload)
    throw std::runtime_error(
        "read_binary: header implies more data than file holds in " + path);
  std::vector<double> coords(static_cast<std::size_t>(dim * count));
  in.read(reinterpret_cast<char*>(coords.data()),
          static_cast<std::streamsize>(coords.size() * sizeof(double)));
  if (!in) throw std::runtime_error("read_binary: truncated file " + path);
  return Dataset(dim, std::move(coords));
}

void write_binary(const Dataset& ds, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_binary: cannot open " + path);
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t dim = ds.dim();
  const std::uint64_t count = ds.size();
  out.write(reinterpret_cast<const char*>(&dim), sizeof dim);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.write(reinterpret_cast<const char*>(ds.raw().data()),
            static_cast<std::streamsize>(ds.raw().size() * sizeof(double)));
  if (!out) throw std::runtime_error("write_binary: write failed for " + path);
}

}  // namespace udb
