#include "common/io.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/vfs.hpp"

namespace udb {

namespace {
constexpr std::array<char, 4> kMagic = {'U', 'D', 'B', '1'};
}

Dataset read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::vector<double> coords;
  std::size_t dim = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    for (char& c : line)
      if (c == ',') c = ' ';
    std::istringstream ss(line);
    std::size_t count = 0;
    double v = 0.0;
    while (ss >> v) {
      if (!std::isfinite(v))
        throw std::runtime_error("read_csv: non-finite value at line " +
                                 std::to_string(lineno) + " in " + path);
      coords.push_back(v);
      ++count;
    }
    // The extraction loop above stops either at end-of-line (fine) or on an
    // unparseable token ("nan", "abc", ...) — which must be an error, not a
    // silently shortened or skipped row.
    if (!ss.eof())
      throw std::runtime_error("read_csv: unparseable value at line " +
                               std::to_string(lineno) + " in " + path);
    if (count == 0) continue;
    if (dim == 0) {
      dim = count;
    } else if (count != dim) {
      throw std::runtime_error("read_csv: inconsistent dimension at line " +
                               std::to_string(lineno) + " in " + path);
    }
  }
  if (dim == 0) throw std::runtime_error("read_csv: no data in " + path);
  return Dataset(dim, std::move(coords));
}

void write_csv(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  out.precision(17);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const double* p = ds.ptr(static_cast<PointId>(i));
    for (std::size_t k = 0; k < ds.dim(); ++k) {
      if (k) out << ',';
      out << p[k];
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write_csv: write failed for " + path);
}

Dataset read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_binary: cannot open " + path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic)
    throw std::runtime_error("read_binary: bad magic in " + path);
  std::uint64_t dim = 0, count = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof dim);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || dim == 0)
    throw std::runtime_error("read_binary: bad header in " + path);
  // A hostile or truncated header must not drive a huge (or overflowing)
  // allocation: dim*count must fit in size_t with room for sizeof(double),
  // and the payload it implies must fit in the bytes actually present.
  constexpr std::uint64_t kMaxElems =
      std::numeric_limits<std::size_t>::max() / sizeof(double);
  if (count != 0 && dim > kMaxElems / count)
    throw std::runtime_error("read_binary: header overflows size_t in " +
                             path);
  const std::uint64_t payload = dim * count * sizeof(double);
  const auto data_pos = in.tellg();
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  in.seekg(data_pos);
  if (data_pos < 0 || end_pos < data_pos ||
      static_cast<std::uint64_t>(end_pos - data_pos) < payload)
    throw std::runtime_error(
        "read_binary: header implies more data than file holds in " + path);
  std::vector<double> coords(static_cast<std::size_t>(dim * count));
  in.read(reinterpret_cast<char*>(coords.data()),
          static_cast<std::streamsize>(coords.size() * sizeof(double)));
  if (!in) throw std::runtime_error("read_binary: truncated file " + path);
  return Dataset(dim, std::move(coords));
}

StatusOr<Dataset> load_csv(const std::string& path, const ReadOptions& opts,
                           ReadReport* report) {
  // Through the VFS: the read is chunked and fault-injectable, and an
  // injected hard truncation shows up here as a short buffer — which the
  // row-wise validation below then quarantines or rejects, never mis-parses.
  auto bytes = vfs::read_file(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound)
      return NotFoundError("load_csv: cannot open " + path);
    return bytes.status();
  }
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(bytes->data()),
                  bytes->size()));
  std::vector<double> coords;
  std::vector<double> row;
  std::size_t dim = 0;
  ReadReport rep;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    for (char& c : line)
      if (c == ',') c = ' ';
    std::istringstream ss(line);
    row.clear();
    bool bad = false;
    double v = 0.0;
    while (ss >> v) {
      if (!std::isfinite(v)) bad = true;
      row.push_back(v);
    }
    if (!ss.eof()) bad = true;          // unparseable token somewhere
    if (row.empty() && !bad) continue;  // whitespace-only line, not a row
    if (dim == 0 && !bad) dim = row.size();
    if (!bad && row.size() != dim) bad = true;  // short/long row
    if (bad) {
      if (!opts.quarantine)
        return DataLossError("load_csv: bad row at line " +
                             std::to_string(lineno) + " in " + path);
      ++rep.rows_skipped;
      continue;
    }
    coords.insert(coords.end(), row.begin(), row.end());
    ++rep.rows_read;
  }
  if (dim == 0)
    return DataLossError("load_csv: no valid data rows in " + path);
  const std::size_t total = rep.rows_read + rep.rows_skipped;
  if (rep.rows_skipped > 0 &&
      static_cast<double>(rep.rows_skipped) >
          opts.max_skip_fraction * static_cast<double>(total))
    return DataLossError(
        "load_csv: quarantined " + std::to_string(rep.rows_skipped) + " of " +
        std::to_string(total) + " rows in " + path +
        " (over max_skip_fraction)");
  if (report) *report = rep;
  return Dataset(dim, std::move(coords));
}

StatusOr<Dataset> load_binary(const std::string& path, const ReadOptions& opts,
                              ReadReport* report) {
  // Through the VFS: an injected hard truncation (or real torn write) hands
  // this codec a short buffer, and the row accounting below turns the missing
  // tail into quarantined rows instead of a mis-parse.
  auto file = vfs::read_file(path);
  if (!file.ok()) {
    if (file.status().code() == StatusCode::kNotFound)
      return NotFoundError("load_binary: cannot open " + path);
    return file.status();
  }
  const std::uint8_t* p = file->data();
  const std::size_t file_bytes = file->size();
  constexpr std::size_t kHeaderBytes = 4 + 8 + 8;
  if (file_bytes < 4 || std::memcmp(p, kMagic.data(), kMagic.size()) != 0)
    return DataLossError("load_binary: bad magic in " + path);
  if (file_bytes < kHeaderBytes)
    return DataLossError("load_binary: bad header in " + path);
  std::uint64_t dim = 0, count = 0;
  std::memcpy(&dim, p + 4, sizeof dim);
  std::memcpy(&count, p + 12, sizeof count);
  if (dim == 0) return DataLossError("load_binary: bad header in " + path);
  constexpr std::uint64_t kMaxElems =
      std::numeric_limits<std::size_t>::max() / sizeof(double);
  if (count != 0 && dim > kMaxElems / count)
    return DataLossError("load_binary: header overflows size_t in " + path);

  const std::uint64_t avail = file_bytes - kHeaderBytes;
  const std::uint64_t row_bytes = dim * sizeof(double);
  std::uint64_t readable = count;
  ReadReport rep;
  if (avail < count * row_bytes) {
    if (!opts.quarantine)
      return DataLossError(
          "load_binary: header implies more data than file holds in " + path);
    // Truncated tail: read the full rows that are present, quarantine the
    // rest (including a final partial row).
    readable = avail / row_bytes;
    rep.rows_skipped += static_cast<std::size_t>(count - readable);
  }

  std::vector<double> coords;
  coords.reserve(static_cast<std::size_t>(readable * dim));
  std::vector<double> row(static_cast<std::size_t>(dim));
  for (std::uint64_t i = 0; i < readable; ++i) {
    std::memcpy(row.data(), p + kHeaderBytes + i * row_bytes,
                static_cast<std::size_t>(row_bytes));
    bool bad = false;
    for (double v : row)
      if (!std::isfinite(v)) bad = true;
    if (bad) {
      if (!opts.quarantine)
        return DataLossError("load_binary: non-finite value in row " +
                             std::to_string(i) + " of " + path);
      ++rep.rows_skipped;
      continue;
    }
    coords.insert(coords.end(), row.begin(), row.end());
    ++rep.rows_read;
  }
  const std::size_t total = rep.rows_read + rep.rows_skipped;
  if (rep.rows_skipped > 0 &&
      static_cast<double>(rep.rows_skipped) >
          opts.max_skip_fraction * static_cast<double>(total))
    return DataLossError(
        "load_binary: quarantined " + std::to_string(rep.rows_skipped) +
        " of " + std::to_string(total) + " rows in " + path +
        " (over max_skip_fraction)");
  if (report) *report = rep;
  return Dataset(static_cast<std::size_t>(dim), std::move(coords));
}

void write_binary(const Dataset& ds, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_binary: cannot open " + path);
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t dim = ds.dim();
  const std::uint64_t count = ds.size();
  out.write(reinterpret_cast<const char*>(&dim), sizeof dim);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.write(reinterpret_cast<const char*>(ds.raw().data()),
            static_cast<std::streamsize>(ds.raw().size() * sizeof(double)));
  if (!out) throw std::runtime_error("write_binary: write failed for " + path);
}

}  // namespace udb
