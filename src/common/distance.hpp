// Distance kernels. Everything is squared-Euclidean internally: DBSCAN only
// ever compares distances against eps, so comparing squared values against
// eps^2 avoids the sqrt on the hot path while preserving the exact same
// strict/non-strict comparison semantics.

#pragma once

#include <cmath>
#include <cstddef>

namespace udb {

[[nodiscard]] inline double sq_dist(const double* a, const double* b,
                                    std::size_t dim) noexcept {
  double acc = 0.0;
  for (std::size_t k = 0; k < dim; ++k) {
    const double diff = a[k] - b[k];
    acc += diff * diff;
  }
  return acc;
}

[[nodiscard]] inline double dist(const double* a, const double* b,
                                 std::size_t dim) noexcept {
  return std::sqrt(sq_dist(a, b, dim));
}

}  // namespace udb
