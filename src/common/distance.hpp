// Distance kernels. Everything is squared-Euclidean internally: DBSCAN only
// ever compares distances against eps, so comparing squared values against
// eps^2 avoids the sqrt on the hot path while preserving the exact same
// strict/non-strict comparison semantics.

#pragma once

#include <cmath>
#include <cstddef>

namespace udb {

[[nodiscard]] inline double sq_dist(const double* a, const double* b,
                                    std::size_t dim) noexcept {
  double acc = 0.0;
  for (std::size_t k = 0; k < dim; ++k) {
    const double diff = a[k] - b[k];
    acc += diff * diff;
  }
  return acc;
}

[[nodiscard]] inline double dist(const double* a, const double* b,
                                 std::size_t dim) noexcept {
  return std::sqrt(sq_dist(a, b, dim));
}

// Batch kernel: squared distances from one query point to `count` consecutive
// row-major points (stride = dim) starting at `base`. The restrict-qualified,
// unit-stride form lets the compiler unroll and vectorize across points —
// this is the inner loop of every O(n·m) scan over packed coordinates (brute
// oracle, blocked leaf scans). Semantics identical to calling sq_dist per row.
inline void sq_dist_block(const double* __restrict__ q,
                          const double* __restrict__ base, std::size_t count,
                          std::size_t dim, double* __restrict__ out) noexcept {
  switch (dim) {
    case 2:
      for (std::size_t i = 0; i < count; ++i) {
        const double d0 = q[0] - base[2 * i];
        const double d1 = q[1] - base[2 * i + 1];
        out[i] = d0 * d0 + d1 * d1;
      }
      return;
    case 3:
      for (std::size_t i = 0; i < count; ++i) {
        const double d0 = q[0] - base[3 * i];
        const double d1 = q[1] - base[3 * i + 1];
        const double d2 = q[2] - base[3 * i + 2];
        out[i] = d0 * d0 + d1 * d1 + d2 * d2;
      }
      return;
    default:
      for (std::size_t i = 0; i < count; ++i) {
        const double* p = base + i * dim;
        double acc = 0.0;
        for (std::size_t k = 0; k < dim; ++k) {
          const double diff = q[k] - p[k];
          acc += diff * diff;
        }
        out[i] = acc;
      }
  }
}

}  // namespace udb
