// Minimal JSON parser for machine-readable artifacts the repo itself emits
// (BENCH_*.json, run reports, serve stats documents). This is a consumer for
// trusted-ish local files — tools/benchdiff, udbscan_top, tests — not a
// general-purpose library: numbers are doubles (exactly how the writers emit
// them), objects preserve member order, duplicate keys keep the last value,
// and inputs are rejected with a Status instead of exceptions.
//
// Hardened the same way the wire decoders are: depth-capped recursion (a
// "[[[[..." bomb is an error, not a stack overflow), strict UTF-16 escape
// handling, and a trailing-garbage check, so feeding it a corrupted or
// adversarial file cannot UB.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace udb::json {

// Nesting beyond this depth is rejected (matches the spirit of the wire
// decoders' absurd-count guards; real udbscan documents nest < 10 deep).
inline constexpr std::size_t kMaxDepth = 64;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  // Member order preserved; lookups are linear (documents are small).
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  // Dotted-path convenience: find_path("serve_ledger.holds").
  const Value* find_path(std::string_view path) const;

  double number_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  bool bool_or(bool fallback) const { return is_bool() ? boolean : fallback; }
  std::string string_or(std::string fallback) const {
    return is_string() ? string : std::move(fallback);
  }
};

// Parses exactly one JSON document; trailing non-whitespace is an error.
[[nodiscard]] Status parse(std::string_view text, Value& out);

}  // namespace udb::json
