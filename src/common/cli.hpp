// Minimal command-line flag parsing for the bench and example binaries.
// Flags take the form --name value or --name=value; unrecognized flags throw
// so typos in experiment scripts fail loudly instead of silently running the
// default configuration.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace udb {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  // Range-validated getters: same parsing as get_double/get_int, then a
  // range check with a one-line error naming the flag and the legal range.
  // get_positive_double additionally rejects inf/nan (an eps of "inf" parses
  // as a number but is never a sane parameter).
  [[nodiscard]] double get_positive_double(const std::string& name,
                                           double fallback) const;
  [[nodiscard]] std::int64_t get_int_at_least(const std::string& name,
                                              std::int64_t fallback,
                                              std::int64_t lo) const;
  [[nodiscard]] std::int64_t get_int_in_range(const std::string& name,
                                              std::int64_t fallback,
                                              std::int64_t lo,
                                              std::int64_t hi) const;

  // Comma-separated list of integers, e.g. --ranks 1,2,4,8.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name, std::vector<double> fallback) const;

  // Call after all get_* calls: throws if any provided flag was never read.
  void check_unused() const;

 private:
  [[nodiscard]] std::optional<std::string> lookup(
      const std::string& name) const;

  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace udb
