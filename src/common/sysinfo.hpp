// Process-level measurements used by the memory benches (paper Table IV).

#pragma once

#include <cstddef>

namespace udb {

// Peak resident set size of the calling process, in bytes (Linux VmHWM).
// Returns 0 if the value cannot be read.
[[nodiscard]] std::size_t peak_rss_bytes();

// Current resident set size in bytes (Linux VmRSS). Returns 0 on failure.
[[nodiscard]] std::size_t current_rss_bytes();

}  // namespace udb
