// Reusable intra-process thread pool and parallel-for helpers — the
// shared-memory execution substrate for the thread-parallel µDBSCAN phases
// (paper Section VII: "leverage multiple cores available in each computing
// node"). Unlike minimpi (threads-as-ranks with private partitions and
// message passing), the pool runs data-parallel loops over shared read-only
// structures; writers coordinate through atomics (see unionfind/ and
// core/mudbscan.cpp).
//
// Design: N-1 persistent workers plus the calling thread (tid 0), one job at
// a time, generation-counted condvar handoff. A null/size-1 pool degrades to
// an inline sequential loop, so call sites need no threading special case.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/runguard.hpp"

namespace udb {

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers; the thread calling run() acts as tid 0.
  // num_threads == 0 is clamped to 1.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned num_threads() const noexcept { return nthreads_; }

  // Runs fn(tid) once per tid in [0, num_threads()), the caller executing
  // tid 0; blocks until every tid finished. The first exception thrown by
  // any tid is rethrown here after all tids complete.
  void run(const std::function<void(unsigned)>& fn);

  // Per-worker busy time and job count accumulated over the pool's lifetime
  // (obs run report: busy/idle split per tid). Each slot is written only by
  // its owning tid during run(); call this only while the pool is idle (no
  // run() in flight) — every engine call site reads after the phase joins,
  // which the run() exit mutex orders.
  struct WorkerStats {
    double busy_seconds = 0.0;
    std::uint64_t jobs = 0;
  };
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

 private:
  void worker_loop(unsigned tid);

  struct alignas(64) WorkerAccum {
    double busy_seconds = 0.0;
    std::uint64_t jobs = 0;
  };

  unsigned nthreads_;
  std::vector<WorkerAccum> accum_;  // one slot per tid, cache-line padded
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

// Statically blocked parallel loop: splits [0, n) into one contiguous range
// per thread and calls body(begin, end, tid). Deterministic assignment of
// indices to tids. pool == nullptr or a 1-thread pool runs inline.
//
// `guard` (optional) makes the loop cooperative: each thread runs
// guard->check_throw before its range, so a tripped guard (cancel, deadline,
// budget) aborts the loop via the pool's exception channel.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t,
                                           unsigned)>& body,
                  RunGuard* guard = nullptr);

// Dynamically scheduled parallel loop: threads grab chunks of `chunk`
// consecutive indices from an atomic cursor until [0, n) is exhausted. Use
// for skewed per-index costs (e.g. neighborhood queries). Which tid runs
// which chunk is nondeterministic; every index runs exactly once.
//
// `guard` (optional): guard->check_throw runs before every chunk — on every
// thread, and also on the inline sequential path (a 1-thread "pool" still
// iterates chunk by chunk when guarded) — so cancellation latency is bounded
// by one chunk of body work regardless of thread count.
void parallel_for_chunked(ThreadPool* pool, std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t, std::size_t,
                                                   unsigned)>& body,
                          RunGuard* guard = nullptr);

}  // namespace udb
