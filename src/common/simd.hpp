// Runtime-dispatched vectorized distance kernels over SoA coordinate blocks
// (docs/KERNELS.md).
//
// The spatial-index hot path computes squared distances from ONE query point
// to a BLOCK of points stored dimension-major ("SoA"): coordinate k of block
// point i lives at block[k * stride + i]. That layout makes every SIMD lane a
// point — each vector iteration loads `lanes` consecutive same-dimension
// coordinates with a unit-stride load, so the kernel vectorizes for any
// dimensionality without gathers or shuffles.
//
// Targets: a portable scalar loop (always available, the reference), AVX2,
// AVX-512 and NEON. The target is resolved ONCE per process — CPUID/feature
// probe, overridable by the UDB_SIMD environment variable — into a function
// pointer published through a std::atomic; every later call is one relaxed
// load plus an indirect call.
//
// Exactness contract: every target computes, per point, the same IEEE-754
// operation sequence as the scalar sq_dist loop —
//     acc_0 = 0;  acc_{k+1} = acc_k + (q[k] - p[k]) * (q[k] - p[k])
// with no FMA contraction and no reassociation (lanes are independent
// points; the per-point chain is sequential in k in every target). Results
// are therefore bit-identical across targets, so every comparison against
// eps^2 — strict or not, including points exactly at distance eps, -0.0
// twins, duplicates and denormals — lands on the same side everywhere. The
// build enforces -ffp-contract=off so no compiler re-fuses the arithmetic.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace udb {

enum class SimdTarget : std::uint8_t {
  kScalar = 0,  // portable loop; the semantics-defining reference
  kAvx2 = 1,    // 4 doubles / vector
  kAvx512 = 2,  // 8 doubles / vector
  kNeon = 3,    // 2 doubles / vector
};

// Stable lowercase names ("scalar", "avx2", "avx512", "neon") — the UDB_SIMD
// vocabulary, also used in run reports and bench JSON.
[[nodiscard]] const char* simd_target_name(SimdTarget t) noexcept;

// Parses a UDB_SIMD value. Returns true and sets `out` on success; "auto" is
// rejected here (the resolver treats it as "no override").
[[nodiscard]] bool parse_simd_target(const char* s, SimdTarget& out) noexcept;

// One-query-vs-block kernel signature. Writes out[i] = squared distance from
// q to block point i for i in [0, count). `stride` is the block's allocation
// stride in points (>= count); coordinate k of point i is block[k*stride+i].
using SqDistBlockSoaFn = void (*)(const double* q, const double* block,
                                  std::size_t count, std::size_t stride,
                                  std::size_t dim, double* out);

// Portable reference kernel (always compiled, ISA-independent).
void sq_dist_block_soa_scalar(const double* q, const double* block,
                              std::size_t count, std::size_t stride,
                              std::size_t dim, double* out) noexcept;

// True if `t` was compiled into this binary (its TU got the ISA flags).
[[nodiscard]] bool simd_target_compiled(SimdTarget t) noexcept;

// True if `t` is compiled AND the host CPU can execute it (CPUID probe).
[[nodiscard]] bool simd_target_runnable(SimdTarget t) noexcept;

// All runnable targets, scalar first — what the exactness suites iterate.
[[nodiscard]] std::vector<SimdTarget> runnable_simd_targets();

// Raw kernel for a target, or nullptr if not runnable. Lets the micro bench
// time every target side by side without flipping the global dispatch.
[[nodiscard]] SqDistBlockSoaFn simd_kernel_for(SimdTarget t) noexcept;

// Doubles per vector register for a target (scalar = 1). The block-scan
// coverage counters derive their tail counts from the ACTIVE target's lanes.
[[nodiscard]] std::size_t simd_lanes(SimdTarget t) noexcept;

// The resolved dispatch target. First call resolves: UDB_SIMD override if
// set (an unrunnable or unparsable value warns once on stderr and falls back
// to the portable kernel), otherwise the widest runnable target. Later calls
// are one relaxed atomic load. Thread-safe.
[[nodiscard]] SimdTarget active_simd_target() noexcept;

// Lanes of the active target; pair of one atomic load.
[[nodiscard]] std::size_t active_simd_lanes() noexcept;

// Test/bench hook: forces the dispatch to `t` for the whole process until
// the next call. Throws std::invalid_argument if `t` is not runnable on this
// host. Not meant for concurrent use with in-flight queries (callers flip it
// between runs; every target is exact, so a mid-query flip is still correct,
// just unaccounted in the tail counters).
void force_simd_target(SimdTarget t);

// Hot entry point: dispatches to the active target's kernel.
void sq_dist_block_soa(const double* q, const double* block, std::size_t count,
                       std::size_t stride, std::size_t dim,
                       double* out) noexcept;

}  // namespace udb
