// Wall-clock and per-thread CPU timers.
//
// Wall time drives the sequential benches. Thread CPU time drives the
// distributed benches: on a 1-core host, p rank threads time-share the core,
// so a rank's *own* CPU time is the faithful measure of the work it would do
// on a dedicated node. minimpi's virtual clock is built on ThreadCpuTimer.

#pragma once

#include <chrono>
#include <ctime>

namespace udb {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}
  void reset() { start_ = now(); }
  [[nodiscard]] double seconds() const { return now() - start_; }

  // Absolute thread CPU time in seconds since an unspecified epoch.
  [[nodiscard]] static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

 private:
  double start_;
};

}  // namespace udb
