// Internal: per-target kernel declarations shared between the dispatch
// resolver (simd.cpp) and the ISA-specific translation units. Each kernel is
// only DEFINED when its TU is compiled with the matching ISA flags (CMake
// sets UDB_SIMD_COMPILED_* for both the kernel TU and simd.cpp, so the
// resolver never references an undefined symbol).

#pragma once

#include <cstddef>

namespace udb::detail {

#if defined(UDB_SIMD_COMPILED_AVX2)
void sq_dist_block_soa_avx2(const double* q, const double* block,
                            std::size_t count, std::size_t stride,
                            std::size_t dim, double* out) noexcept;
#endif

#if defined(UDB_SIMD_COMPILED_AVX512)
void sq_dist_block_soa_avx512(const double* q, const double* block,
                              std::size_t count, std::size_t stride,
                              std::size_t dim, double* out) noexcept;
#endif

#if defined(UDB_SIMD_COMPILED_NEON)
void sq_dist_block_soa_neon(const double* q, const double* block,
                            std::size_t count, std::size_t stride,
                            std::size_t dim, double* out) noexcept;
#endif

}  // namespace udb::detail
