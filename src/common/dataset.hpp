// Core data container for udbscan: a d-dimensional point set stored row-major.
//
// Every algorithm in this library operates on an immutable Dataset and refers
// to points by index (PointId). Coordinates are doubles: the exactness
// guarantee of µDBSCAN rests on strict distance comparisons, and double
// precision keeps the < eps / <= eps boundaries well defined for the
// synthetic workloads used in the benches.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace udb {

using PointId = std::uint32_t;
constexpr PointId kInvalidPoint = static_cast<PointId>(-1);

class Dataset {
 public:
  Dataset() = default;

  // Takes ownership of a row-major coordinate buffer. coords.size() must be a
  // multiple of dim.
  Dataset(std::size_t dim, std::vector<double> coords)
      : dim_(dim), coords_(std::move(coords)) {
    if (dim_ == 0) throw std::invalid_argument("Dataset: dim must be > 0");
    if (coords_.size() % dim_ != 0)
      throw std::invalid_argument("Dataset: coords not a multiple of dim");
  }

  static Dataset empty(std::size_t dim) { return Dataset(dim, {}); }

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return dim_ == 0 ? 0 : coords_.size() / dim_;
  }
  [[nodiscard]] bool empty_points() const noexcept { return coords_.empty(); }

  [[nodiscard]] const double* ptr(PointId i) const noexcept {
    return coords_.data() + static_cast<std::size_t>(i) * dim_;
  }
  [[nodiscard]] std::span<const double> point(PointId i) const noexcept {
    return {ptr(i), dim_};
  }
  [[nodiscard]] double coord(PointId i, std::size_t axis) const noexcept {
    return coords_[static_cast<std::size_t>(i) * dim_ + axis];
  }

  [[nodiscard]] const std::vector<double>& raw() const noexcept {
    return coords_;
  }

  void push_back(std::span<const double> p) {
    if (p.size() != dim_)
      throw std::invalid_argument("Dataset::push_back: wrong dimension");
    coords_.insert(coords_.end(), p.begin(), p.end());
  }

  // Appends several points at once from a row-major coordinate run (must be
  // a whole number of points). One insert instead of a per-point loop — the
  // streaming module materializes chunk-sized runs through this.
  void append_raw(std::span<const double> coords) {
    if (dim_ == 0 || coords.size() % dim_ != 0)
      throw std::invalid_argument("Dataset::append_raw: not a multiple of dim");
    coords_.insert(coords_.end(), coords.begin(), coords.end());
  }

  void reserve(std::size_t npoints) { coords_.reserve(npoints * dim_); }

  // Returns a dataset containing the points at `ids`, in order.
  [[nodiscard]] Dataset select(std::span<const PointId> ids) const {
    Dataset out = Dataset::empty(dim_);
    out.reserve(ids.size());
    for (PointId id : ids) out.push_back(point(id));
    return out;
  }

  // Returns a dataset keeping only the first `keep_dims` coordinates of every
  // point (used by the Fig. 6 dimensionality sweep, which projects the same
  // point set onto dimension prefixes).
  [[nodiscard]] Dataset project(std::size_t keep_dims) const {
    if (keep_dims == 0 || keep_dims > dim_)
      throw std::invalid_argument("Dataset::project: bad keep_dims");
    std::vector<double> out;
    out.reserve(size() * keep_dims);
    for (std::size_t i = 0; i < size(); ++i) {
      const double* p = ptr(static_cast<PointId>(i));
      out.insert(out.end(), p, p + keep_dims);
    }
    return Dataset(keep_dims, std::move(out));
  }

 private:
  std::size_t dim_ = 0;
  std::vector<double> coords_;  // row-major: point i at [i*dim_, (i+1)*dim_)
};

}  // namespace udb
