#include "common/runguard.hpp"

#include <csignal>

namespace udb {

namespace {

// Process-global cancellation target for the SIGINT handler. A plain atomic
// pointer: the handler does one lock-free load and one lock-free store
// (request_cancel), both async-signal-safe.
std::atomic<RunGuard*> g_signal_guard{nullptr};

void sigint_handler(int /*signum*/) {
  RunGuard* guard = g_signal_guard.load(std::memory_order_relaxed);
  if (guard != nullptr) guard->request_cancel();
  // First Ctrl-C is cooperative; restore default disposition so a second
  // Ctrl-C force-kills a run that is stuck outside checkpointed code.
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

void install_sigint_cancel(RunGuard* guard) {
  g_signal_guard.store(guard, std::memory_order_relaxed);
  if (guard != nullptr)
    std::signal(SIGINT, sigint_handler);
  else
    std::signal(SIGINT, SIG_DFL);
}

}  // namespace udb
