// AVX2 one-query-vs-SoA-block kernel: 4 doubles per vector, each lane one
// point. Per lane the accumulation chain is exactly the scalar reference's
//   acc += (q[k] - p[k]) * (q[k] - p[k])
// in ascending k — explicit sub/mul/add intrinsics, no FMA (this TU is also
// built with -ffp-contract=off), so results are bit-identical to
// sq_dist_block_soa_scalar. Only compiled when CMake detects -mavx2 support;
// only dispatched when CPUID reports AVX2.

#if defined(UDB_SIMD_COMPILED_AVX2)

#include <immintrin.h>

#include "common/simd_kernels.hpp"

namespace udb::detail {

void sq_dist_block_soa_avx2(const double* q, const double* block,
                            std::size_t count, std::size_t stride,
                            std::size_t dim, double* out) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < dim; ++k) {
      const __m256d p = _mm256_loadu_pd(block + k * stride + i);
      const __m256d d = _mm256_sub_pd(_mm256_set1_pd(q[k]), p);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  // Tail points: the scalar reference chain, same operations and order.
  for (; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      const double diff = q[k] - block[k * stride + i];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

}  // namespace udb::detail

#endif  // UDB_SIMD_COMPILED_AVX2
