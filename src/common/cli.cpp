#include "common/cli.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace udb {

namespace {

// stod/stoll wrappers that name the offending flag and reject trailing
// garbage ("--eps 2.5x" must not silently parse as 2.5).
double parse_double(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size())
      throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: --" + name + " expects a number, got '" +
                                value + "'");
  }
}

std::int64_t parse_int(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(value, &pos);
    if (pos != value.size())
      throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: --" + name +
                                " expects an integer, got '" + value + "'");
  }
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("Cli: expected --flag, got " + arg);
    arg = arg.substr(2);
    std::string value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare flag => boolean
    }
    values_[arg] = value;
    used_[arg] = false;
  }
}

std::optional<std::string> Cli::lookup(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  used_[name] = true;
  return it->second;
}

std::string Cli::get_string(const std::string& name,
                            std::string fallback) const {
  if (auto v = lookup(name)) return *v;
  return fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  if (auto v = lookup(name)) return parse_double(name, *v);
  return fallback;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  if (auto v = lookup(name)) return parse_int(name, *v);
  return fallback;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  if (auto v = lookup(name)) return *v == "true" || *v == "1" || *v == "yes";
  return fallback;
}

double Cli::get_positive_double(const std::string& name,
                                double fallback) const {
  const double v = get_double(name, fallback);
  if (!std::isfinite(v) || !(v > 0.0))
    throw std::invalid_argument("Cli: --" + name +
                                " must be a finite number > 0, got " +
                                std::to_string(v));
  return v;
}

std::int64_t Cli::get_int_at_least(const std::string& name,
                                   std::int64_t fallback,
                                   std::int64_t lo) const {
  const std::int64_t v = get_int(name, fallback);
  if (v < lo)
    throw std::invalid_argument("Cli: --" + name + " must be >= " +
                                std::to_string(lo) + ", got " +
                                std::to_string(v));
  return v;
}

std::int64_t Cli::get_int_in_range(const std::string& name,
                                   std::int64_t fallback, std::int64_t lo,
                                   std::int64_t hi) const {
  const std::int64_t v = get_int(name, fallback);
  if (v < lo || v > hi)
    throw std::invalid_argument("Cli: --" + name + " must be in [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "], got " +
                                std::to_string(v));
  return v;
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  auto v = lookup(name);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(parse_int(name, item));
  return out;
}

std::vector<double> Cli::get_double_list(const std::string& name,
                                         std::vector<double> fallback) const {
  auto v = lookup(name);
  if (!v) return fallback;
  std::vector<double> out;
  std::stringstream ss(*v);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(parse_double(name, item));
  return out;
}

void Cli::check_unused() const {
  for (const auto& [name, used] : used_) {
    if (!used) throw std::invalid_argument("Cli: unknown flag --" + name);
  }
}

}  // namespace udb
