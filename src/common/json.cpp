#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace udb::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status run(Value& out) {
    skip_ws();
    Status s = parse_value(out, 0);
    if (!s.ok()) return s;
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing characters after the document");
    return Status::Ok();
  }

 private:
  Status fail(const std::string& what) const {
    return InvalidArgumentError("json: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status parse_value(Value& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than the cap");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out.kind = Value::Kind::kString;
        return parse_string(out.string);
      }
      case 't':
        if (!literal("true")) return fail("bad literal");
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return Status::Ok();
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return Status::Ok();
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out.kind = Value::Kind::kNull;
        return Status::Ok();
      default:
        return parse_number(out);
    }
  }

  Status parse_object(Value& out, std::size_t depth) {
    ++pos_;  // '{'
    out.kind = Value::Kind::kObject;
    skip_ws();
    if (eat('}')) return Status::Ok();
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected a string key");
      std::string key;
      Status s = parse_string(key);
      if (!s.ok()) return s;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after a key");
      skip_ws();
      Value child;
      s = parse_value(child, depth + 1);
      if (!s.ok()) return s;
      out.object.emplace_back(std::move(key), std::move(child));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return Status::Ok();
      return fail("expected ',' or '}' in an object");
    }
  }

  Status parse_array(Value& out, std::size_t depth) {
    ++pos_;  // '['
    out.kind = Value::Kind::kArray;
    skip_ws();
    if (eat(']')) return Status::Ok();
    while (true) {
      skip_ws();
      Value child;
      Status s = parse_value(child, depth + 1);
      if (!s.ok()) return s;
      out.array.push_back(std::move(child));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return Status::Ok();
      return fail("expected ',' or ']' in an array");
    }
  }

  // Appends `cp` as UTF-8.
  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return false;
    }
    pos_ += 4;
    return true;
  }

  Status parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in a string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return fail("bad \\u escape");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            std::uint32_t lo = 0;
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("lone high surrogate");
            pos_ += 2;
            if (!hex4(lo) || lo < 0xDC00 || lo > 0xDFFF)
              return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("unknown escape character");
      }
    }
  }

  Status parse_number(Value& out) {
    const std::size_t start = pos_;
    if (eat('-')) {}
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_])))
      return fail("expected a value");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (eat('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_])))
        return fail("digits required after the decimal point");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_])))
        return fail("digits required in the exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    // The token is digits/sign/dot/exp only, so strtod cannot read past it;
    // copy to guarantee NUL termination for strtod.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v))
      return fail("unparseable number");
    out.kind = Value::Kind::kNumber;
    out.number = v;
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  // Last wins on duplicate keys, matching common parser behaviour.
  const Value* found = nullptr;
  for (const auto& [k, v] : object)
    if (k == key) found = &v;
  return found;
}

const Value* Value::find_path(std::string_view path) const {
  const Value* cur = this;
  while (cur != nullptr && !path.empty()) {
    const std::size_t dot = path.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? path : path.substr(0, dot);
    path = dot == std::string_view::npos ? std::string_view{}
                                         : path.substr(dot + 1);
    cur = cur->find(head);
  }
  return cur;
}

Status parse(std::string_view text, Value& out) {
  out = Value{};
  return Parser(text).run(out);
}

}  // namespace udb::json
