#include "common/dataset.hpp"

// Dataset is header-only today; this translation unit anchors the type in the
// library so future out-of-line growth (e.g. memory-mapped storage) has a
// home without touching the build.

namespace udb {}  // namespace udb
