// AVX-512F one-query-vs-SoA-block kernel: 8 doubles per vector, each lane one
// point. Same per-lane operation chain as the scalar reference (sub, mul,
// add in ascending k; no FMA, -ffp-contract=off), so results are
// bit-identical to sq_dist_block_soa_scalar. Uses only AVX-512 Foundation
// instructions; compiled when CMake detects -mavx512f, dispatched when CPUID
// reports avx512f.

#if defined(UDB_SIMD_COMPILED_AVX512)

#include <immintrin.h>

#include "common/simd_kernels.hpp"

namespace udb::detail {

void sq_dist_block_soa_avx512(const double* q, const double* block,
                              std::size_t count, std::size_t stride,
                              std::size_t dim, double* out) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t k = 0; k < dim; ++k) {
      const __m512d p = _mm512_loadu_pd(block + k * stride + i);
      const __m512d d = _mm512_sub_pd(_mm512_set1_pd(q[k]), p);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
    }
    _mm512_storeu_pd(out + i, acc);
  }
  for (; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      const double diff = q[k] - block[k * stride + i];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

}  // namespace udb::detail

#endif  // UDB_SIMD_COMPILED_AVX512
