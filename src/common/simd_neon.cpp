// NEON (AArch64 AdvSIMD) one-query-vs-SoA-block kernel: 2 doubles per vector,
// each lane one point. Same per-lane operation chain as the scalar reference
// (vsubq/vmulq/vaddq in ascending k; deliberately NOT vfmaq — fusing would
// change results), so output is bit-identical to sq_dist_block_soa_scalar.
// AdvSIMD is baseline on AArch64, so compiled implies runnable.

#if defined(UDB_SIMD_COMPILED_NEON)

#include <arm_neon.h>

#include "common/simd_kernels.hpp"

namespace udb::detail {

void sq_dist_block_soa_neon(const double* q, const double* block,
                            std::size_t count, std::size_t stride,
                            std::size_t dim, double* out) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t k = 0; k < dim; ++k) {
      const float64x2_t p = vld1q_f64(block + k * stride + i);
      const float64x2_t d = vsubq_f64(vdupq_n_f64(q[k]), p);
      acc = vaddq_f64(acc, vmulq_f64(d, d));
    }
    vst1q_f64(out + i, acc);
  }
  for (; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      const double diff = q[k] - block[k * stride + i];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

}  // namespace udb::detail

#endif  // UDB_SIMD_COMPILED_NEON
