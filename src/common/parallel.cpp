#include "common/parallel.hpp"

#include <algorithm>

#include "common/timer.hpp"

namespace udb {

ThreadPool::ThreadPool(unsigned num_threads)
    : nthreads_(std::max(1u, num_threads)), accum_(nthreads_) {
  workers_.reserve(nthreads_ - 1);
  try {
    for (unsigned tid = 1; tid < nthreads_; ++tid)
      workers_.emplace_back([this, tid] { worker_loop(tid); });
  } catch (...) {
    // Partially-spawned pool: joinable threads in workers_ would terminate
    // the process on vector destruction; shut them down, then propagate.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned tid) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    std::exception_ptr err;
    WallTimer busy;
    try {
      (*job)(tid);
    } catch (...) {
      err = std::current_exception();
    }
    accum_[tid].busy_seconds += busy.seconds();
    ++accum_[tid].jobs;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run(const std::function<void(unsigned)>& fn) {
  if (nthreads_ == 1) {
    WallTimer busy;
    try {
      fn(0);
    } catch (...) {
      accum_[0].busy_seconds += busy.seconds();
      ++accum_[0].jobs;
      throw;
    }
    accum_[0].busy_seconds += busy.seconds();
    ++accum_[0].jobs;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    pending_ = nthreads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  job_cv_.notify_all();

  std::exception_ptr caller_err;
  WallTimer busy;
  try {
    fn(0);
  } catch (...) {
    caller_err = std::current_exception();
  }
  accum_[0].busy_seconds += busy.seconds();
  ++accum_[0].jobs;

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  std::exception_ptr err = caller_err ? caller_err : first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(nthreads_);
  for (unsigned tid = 0; tid < nthreads_; ++tid)
    out[tid] = {accum_[tid].busy_seconds, accum_[tid].jobs};
  return out;
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t,
                                           unsigned)>& body,
                  RunGuard* guard) {
  if (n == 0) return;
  const unsigned nt = pool ? pool->num_threads() : 1;
  if (nt == 1) {
    if (guard) guard->check_throw("parallel_for");
    body(0, n, 0);
    return;
  }
  // Ceil-divided blocks; trailing tids may get an empty range.
  const std::size_t block = (n + nt - 1) / nt;
  pool->run([&](unsigned tid) {
    const std::size_t begin = std::min(n, tid * block);
    const std::size_t end = std::min(n, begin + block);
    if (begin < end) {
      if (guard) guard->check_throw("parallel_for");
      body(begin, end, tid);
    }
  });
}

void parallel_for_chunked(ThreadPool* pool, std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t, std::size_t,
                                                   unsigned)>& body,
                          RunGuard* guard) {
  if (n == 0) return;
  const unsigned nt = pool ? pool->num_threads() : 1;
  chunk = std::max<std::size_t>(1, chunk);
  if (nt == 1) {
    if (!guard) {
      body(0, n, 0);
      return;
    }
    // Guarded inline path keeps the chunk loop so the one-chunk cancellation
    // latency bound holds in the sequential engine too.
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      guard->check_throw("parallel_for_chunked");
      body(begin, std::min(n, begin + chunk), 0);
    }
    return;
  }
  std::atomic<std::size_t> cursor{0};
  pool->run([&](unsigned tid) {
    while (true) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      if (guard) guard->check_throw("parallel_for_chunked");
      body(begin, std::min(n, begin + chunk), tid);
    }
  });
}

}  // namespace udb
