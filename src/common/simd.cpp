#include "common/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/simd_kernels.hpp"

namespace udb {

void sq_dist_block_soa_scalar(const double* q, const double* block,
                              std::size_t count, std::size_t stride,
                              std::size_t dim, double* out) noexcept {
  // The semantics-defining loop: per point, accumulate (q[k]-p[k])^2 in
  // ascending k. Every vectorized target replicates this chain per lane.
  for (std::size_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      const double diff = q[k] - block[k * stride + i];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}

const char* simd_target_name(SimdTarget t) noexcept {
  switch (t) {
    case SimdTarget::kScalar: return "scalar";
    case SimdTarget::kAvx2: return "avx2";
    case SimdTarget::kAvx512: return "avx512";
    case SimdTarget::kNeon: return "neon";
  }
  return "scalar";
}

bool parse_simd_target(const char* s, SimdTarget& out) noexcept {
  if (s == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) { out = SimdTarget::kScalar; return true; }
  if (std::strcmp(s, "avx2") == 0) { out = SimdTarget::kAvx2; return true; }
  if (std::strcmp(s, "avx512") == 0) { out = SimdTarget::kAvx512; return true; }
  if (std::strcmp(s, "neon") == 0) { out = SimdTarget::kNeon; return true; }
  return false;
}

bool simd_target_compiled(SimdTarget t) noexcept {
  switch (t) {
    case SimdTarget::kScalar:
      return true;
    case SimdTarget::kAvx2:
#if defined(UDB_SIMD_COMPILED_AVX2)
      return true;
#else
      return false;
#endif
    case SimdTarget::kAvx512:
#if defined(UDB_SIMD_COMPILED_AVX512)
      return true;
#else
      return false;
#endif
    case SimdTarget::kNeon:
#if defined(UDB_SIMD_COMPILED_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

namespace {

// Host CPU capability for a target (independent of what was compiled).
bool cpu_supports(SimdTarget t) noexcept {
  switch (t) {
    case SimdTarget::kScalar:
      return true;
    case SimdTarget::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdTarget::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
    case SimdTarget::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is baseline on AArch64
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

bool simd_target_runnable(SimdTarget t) noexcept {
  return simd_target_compiled(t) && cpu_supports(t);
}

std::vector<SimdTarget> runnable_simd_targets() {
  std::vector<SimdTarget> out{SimdTarget::kScalar};
  for (SimdTarget t :
       {SimdTarget::kNeon, SimdTarget::kAvx2, SimdTarget::kAvx512})
    if (simd_target_runnable(t)) out.push_back(t);
  return out;
}

SqDistBlockSoaFn simd_kernel_for(SimdTarget t) noexcept {
  if (!simd_target_runnable(t)) return nullptr;
  switch (t) {
    case SimdTarget::kScalar:
      return &sq_dist_block_soa_scalar;
#if defined(UDB_SIMD_COMPILED_AVX2)
    case SimdTarget::kAvx2:
      return &detail::sq_dist_block_soa_avx2;
#endif
#if defined(UDB_SIMD_COMPILED_AVX512)
    case SimdTarget::kAvx512:
      return &detail::sq_dist_block_soa_avx512;
#endif
#if defined(UDB_SIMD_COMPILED_NEON)
    case SimdTarget::kNeon:
      return &detail::sq_dist_block_soa_neon;
#endif
    default:
      return nullptr;
  }
}

std::size_t simd_lanes(SimdTarget t) noexcept {
  switch (t) {
    case SimdTarget::kScalar: return 1;
    case SimdTarget::kAvx2: return 4;
    case SimdTarget::kAvx512: return 8;
    case SimdTarget::kNeon: return 2;
  }
  return 1;
}

namespace {

// Dispatch state. `g_fn` doubles as the "resolved" flag: nullptr until the
// first resolution publishes a kernel with release ordering; the hot path
// pays one relaxed/acquire load. `g_target` is only written alongside g_fn.
std::atomic<SqDistBlockSoaFn> g_fn{nullptr};
std::atomic<std::uint8_t> g_target{0};
std::atomic<std::size_t> g_lanes{1};

void publish(SimdTarget t) noexcept {
  g_target.store(static_cast<std::uint8_t>(t), std::memory_order_relaxed);
  g_lanes.store(simd_lanes(t), std::memory_order_relaxed);
  g_fn.store(simd_kernel_for(t), std::memory_order_release);
}

SimdTarget resolve() noexcept {
  // UDB_SIMD override: force any runnable target. A value naming a target
  // this binary/host cannot execute (or garbage) warns once and falls back
  // to the guaranteed-identical portable kernel — never an illegal
  // instruction, never silently "auto".
  if (const char* env = std::getenv("UDB_SIMD");
      env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    SimdTarget t;
    if (parse_simd_target(env, t) && simd_target_runnable(t)) return t;
    std::fprintf(stderr,
                 "udbscan: UDB_SIMD=%s is not a runnable target on this host; "
                 "using the portable scalar kernel\n",
                 env);
    return SimdTarget::kScalar;
  }
  // Widest runnable target wins.
  for (SimdTarget t :
       {SimdTarget::kAvx512, SimdTarget::kAvx2, SimdTarget::kNeon})
    if (simd_target_runnable(t)) return t;
  return SimdTarget::kScalar;
}

SqDistBlockSoaFn resolve_and_publish() noexcept {
  // Racing first calls may both resolve; they resolve to the same answer
  // (env + CPUID are stable), so the double publish is benign.
  publish(resolve());
  return g_fn.load(std::memory_order_relaxed);
}

}  // namespace

SimdTarget active_simd_target() noexcept {
  if (g_fn.load(std::memory_order_acquire) == nullptr) resolve_and_publish();
  return static_cast<SimdTarget>(g_target.load(std::memory_order_relaxed));
}

std::size_t active_simd_lanes() noexcept {
  if (g_fn.load(std::memory_order_acquire) == nullptr) resolve_and_publish();
  return g_lanes.load(std::memory_order_relaxed);
}

void force_simd_target(SimdTarget t) {
  if (!simd_target_runnable(t))
    throw std::invalid_argument(
        std::string("force_simd_target: target not runnable on this host: ") +
        simd_target_name(t));
  publish(t);
}

void sq_dist_block_soa(const double* q, const double* block, std::size_t count,
                       std::size_t stride, std::size_t dim,
                       double* out) noexcept {
  SqDistBlockSoaFn fn = g_fn.load(std::memory_order_acquire);
  if (fn == nullptr) fn = resolve_and_publish();
  fn(q, block, count, stride, dim, out);
}

}  // namespace udb
