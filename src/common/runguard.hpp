// RunGuard — the per-run governor that turns "a clustering run" into a
// bounded, killable unit of work (the precondition for any serving layer on
// top of this library):
//
//   * wall-clock deadline — armed once, checked at every cooperative
//     checkpoint against std::chrono::steady_clock;
//   * memory budget — byte accounting charged at the big allocation sites
//     (dataset load, µR-tree / AuxR-tree build, per-thread scratch, merge
//     buffers; see docs/ROBUSTNESS.md for the exact charge points). A charge
//     that would exceed the budget fails *before* the allocation happens;
//   * cancellation token — a single atomic flag, async-signal-safe to trip
//     (the CLI's SIGINT handler calls request_cancel()).
//
// Engines call check() at cooperative checkpoints: every chunk of the
// parallel loops (common/parallel.*) and every few-thousand iterations of the
// sequential phase loops. A non-OK check latches the guard (tripped()), so
// once any thread observes a violation every other worker stops at its next
// checkpoint — cancellation latency is bounded by one chunk of work.
//
// All methods are thread-safe. The guard performs no allocation after
// construction, and accounting is advisory: it never frees anything itself —
// reclamation is RAII at the call sites (ScopedCharge + ordinary vectors), so
// a tripped run unwinds to a clean heap (ASan/LSan-verified in CI).

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace udb {

// Policy on deadline/budget exhaustion (wired through MuDbscanConfig and the
// CLI's --on-budget flag; applied by core/guarded_run.*).
enum class OnBudget {
  kFail,     // return a clean Status, all memory reclaimed
  kDegrade,  // fall back to sampled_dbscan, result flagged approximate
};

struct RunLimits {
  double deadline_seconds = 0.0;        // <= 0: no deadline
  std::size_t memory_budget_bytes = 0;  // 0: no budget
};

class RunGuard {
 public:
  RunGuard() { arm({}); }
  explicit RunGuard(RunLimits limits) { arm(limits); }

  RunGuard(const RunGuard&) = delete;
  RunGuard& operator=(const RunGuard&) = delete;

  // (Re)arms the guard: installs limits and restarts the deadline clock.
  // Leaves the cancellation token and memory accounting untouched.
  void arm(RunLimits limits) noexcept {
    limits_ = limits;
    start_ = std::chrono::steady_clock::now();
    tripped_.store(static_cast<int>(StatusCode::kOk),
                   std::memory_order_relaxed);
  }

  // Degraded mode: after an exhaustion trip, the approximate fallback still
  // has to run to completion — it keeps honoring the cancellation token but
  // is exempt from the (already blown) deadline and budget.
  void enter_degraded_mode() noexcept {
    limits_ = {};
    tripped_.store(static_cast<int>(StatusCode::kOk),
                   std::memory_order_relaxed);
  }

  // ---- cancellation ------------------------------------------------------
  // Async-signal-safe: a single lock-free atomic store.
  void request_cancel() noexcept {
    cancel_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }

  // ---- deadline ----------------------------------------------------------
  [[nodiscard]] bool has_deadline() const noexcept {
    return limits_.deadline_seconds > 0.0;
  }
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  // Seconds until the deadline; a large positive value when none is set.
  [[nodiscard]] double remaining_seconds() const noexcept {
    if (!has_deadline()) return kNoDeadlineRemaining;
    return limits_.deadline_seconds - elapsed_seconds();
  }

  // ---- memory budget -----------------------------------------------------
  // Charges `bytes` against the budget. On exhaustion returns
  // RESOURCE_EXHAUSTED naming the site, charges nothing, and latches the
  // guard so every other worker stops at its next checkpoint.
  Status try_charge(std::size_t bytes, const char* what) {
    const std::size_t used =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limits_.memory_budget_bytes != 0 &&
        used > limits_.memory_budget_bytes) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      if (trip(StatusCode::kResourceExhausted))
        obs::LogLine(obs::LogLevel::kWarn, "runguard", "budget_exceeded")
            .kv("site", what)
            .kv("requested_bytes", bytes)
            .kv("budget_bytes", limits_.memory_budget_bytes);
      return ResourceExhaustedError(
          std::string("memory budget exceeded at ") + what + ": " +
          std::to_string(used) + " > " +
          std::to_string(limits_.memory_budget_bytes) + " bytes");
    }
    // Racy max update is fine: peak is observability, not enforcement.
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (used > peak &&
           !peak_.compare_exchange_weak(peak, used, std::memory_order_relaxed))
      ;
    return Status::Ok();
  }
  void release(std::size_t bytes) noexcept {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bytes_in_use() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bytes_peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t budget_bytes() const noexcept {
    return limits_.memory_budget_bytes;
  }

  // ---- observability -----------------------------------------------------
  // Attaches a metrics registry (not owned): every checkpoint then records
  // the gap since the calling thread's previous checkpoint into the
  // checkpoint_gap_us histogram — the run report's evidence that the
  // cancellation-latency bound holds. Detach with nullptr BEFORE the
  // registry dies. With no registry attached the entire obs cost of a
  // checkpoint is this one relaxed pointer load.
  void set_metrics(obs::MetricsRegistry* m) noexcept {
    metrics_.store(m, std::memory_order_relaxed);
  }

  // ---- cooperative checkpoint -------------------------------------------
  // Cheap enough for per-chunk use: one atomic load, one atomic increment,
  // and (with a deadline armed) one steady_clock read.
  Status check(const char* where) {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_relaxed))
      observe_gap(m);
    if (cancel_.load(std::memory_order_relaxed))
      return CancelledError(std::string("run cancelled at ") + where);
    const auto latched =
        static_cast<StatusCode>(tripped_.load(std::memory_order_relaxed));
    if (latched != StatusCode::kOk)
      return Status(latched,
                    std::string("guard tripped, observed at ") + where);
    if (has_deadline() && elapsed_seconds() > limits_.deadline_seconds) {
      if (trip(StatusCode::kDeadlineExceeded))
        obs::LogLine(obs::LogLevel::kWarn, "runguard", "deadline_exceeded")
            .kv("site", where)
            .kv("elapsed_s", elapsed_seconds())
            .kv("deadline_s", limits_.deadline_seconds);
      return DeadlineExceededError(
          std::string("deadline of ") +
          std::to_string(limits_.deadline_seconds) + " s exceeded at " +
          where);
    }
    return Status::Ok();
  }

  // Checkpoint for exception-unwound contexts (the engines' loop bodies):
  // throws StatusError so stack unwinding releases every allocation.
  void check_throw(const char* where) {
    Status s = check(where);
    if (!s.ok()) throw StatusError(std::move(s));
  }

  [[nodiscard]] bool tripped() const noexcept {
    return static_cast<StatusCode>(tripped_.load(std::memory_order_relaxed)) !=
               StatusCode::kOk ||
           cancel_requested();
  }
  [[nodiscard]] std::uint64_t checkpoints_passed() const noexcept {
    return checkpoints_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr double kNoDeadlineRemaining = 1e30;

  // Latches the guard. Returns true for the one caller that performed the
  // latch (so trip-site logging fires exactly once per trip, not once per
  // worker that subsequently observes it).
  bool trip(StatusCode code) noexcept {
    int expected = static_cast<int>(StatusCode::kOk);
    return tripped_.compare_exchange_strong(expected, static_cast<int>(code),
                                            std::memory_order_relaxed);
  }

  // Records the time since this thread's previous checkpoint on this guard.
  // Out of line of check(): the common no-registry case should not pay for
  // the thread_local machinery.
  void observe_gap(obs::MetricsRegistry* m) {
    struct GapCache {
      const RunGuard* guard = nullptr;
      std::uint64_t last_ns = 0;
    };
    thread_local GapCache cache;
    const std::uint64_t now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    if (cache.guard == this)
      m->observe(obs::Hist::kCheckpointGapUs, (now_ns - cache.last_ns) / 1000);
    cache.guard = this;
    cache.last_ns = now_ns;
  }

  RunLimits limits_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> cancel_{false};
  std::atomic<int> tripped_{static_cast<int>(StatusCode::kOk)};
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};  // not owned
};

// RAII budget charge: releases what it charged on destruction, so unwinding
// out of a tripped run leaves the accounting (and the heap) clean.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ~ScopedCharge() { reset(); }

  ScopedCharge(ScopedCharge&& o) noexcept
      : guard_(o.guard_), bytes_(o.bytes_) {
    o.guard_ = nullptr;
    o.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& o) noexcept {
    if (this != &o) {
      reset();
      guard_ = o.guard_;
      bytes_ = o.bytes_;
      o.guard_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  // Charges `bytes` (releasing any previous charge first). Null guard: no-op
  // success, so ungoverned runs pay nothing.
  Status acquire(RunGuard* guard, std::size_t bytes, const char* what) {
    reset();
    if (guard == nullptr || bytes == 0) return Status::Ok();
    Status s = guard->try_charge(bytes, what);
    if (s.ok()) {
      guard_ = guard;
      bytes_ = bytes;
    }
    return s;
  }
  // Throwing variant for exception-unwound contexts.
  void acquire_throw(RunGuard* guard, std::size_t bytes, const char* what) {
    Status s = acquire(guard, bytes, what);
    if (!s.ok()) throw StatusError(std::move(s));
  }

  void reset() noexcept {
    if (guard_ != nullptr) guard_->release(bytes_);
    guard_ = nullptr;
    bytes_ = 0;
  }

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  RunGuard* guard_ = nullptr;
  std::size_t bytes_ = 0;
};

// Heap bytes held by a vector (capacity, not size — what the allocator sees).
template <typename T>
[[nodiscard]] std::size_t vector_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

// Routes SIGINT to guard->request_cancel() for graceful Ctrl-C: the first
// interrupt trips the token (the run unwinds at its next checkpoint and
// reports CANCELLED), a second one falls back to the default fatal handler.
// Pass nullptr to uninstall. Not reentrant; call from main() only.
void install_sigint_cancel(RunGuard* guard);

}  // namespace udb
