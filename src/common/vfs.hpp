// VFS — the one door to the filesystem (docs/ROBUSTNESS.md §Durability).
//
// Every persistence path in the library (dataset loaders, model snapshots,
// the write-ahead log, checkpoint spills, trace/metrics/bench writers) routes
// its I/O through this Status-returning abstraction instead of raw
// iostream/stdio, for two reasons:
//
//   1. Discipline in one place. Durable writes need the full
//      write → fsync(file) → rename → fsync(parent dir) sequence, short
//      reads/writes and EINTR need retry loops, and close() errors must be
//      propagated, not swallowed by a destructor. Getting that right once
//      beats auditing a dozen ad-hoc ofstream sites.
//
//   2. Fault injection. An installed IoFaultPlan turns every VFS operation
//      into a seeded dice roll — short read/write, EINTR, ENOSPC mid-write,
//      fsync failure, read-side bit rot, and process crash at an exact
//      operation ordinal — the filesystem counterpart of the minimpi fault
//      runtime (mpi/fault.hpp) and the serving NetFaultPlan
//      (serve/netfault.hpp). Decisions depend only on
//      (seed, op kind, file basename, op ordinal), never on wall time, so a
//      fixed seed replays the same fault pattern and tools/crashharness can
//      sweep crash points deterministically.
//
// Without a plan installed the fast path is one relaxed atomic load per
// operation — the same zero-cost-when-unset contract as the other fault
// runtimes.
//
// Error mapping (asserted by tests/common/test_vfs.cpp):
//   open-for-read ENOENT            -> NOT_FOUND
//   write/rename ENOSPC or EDQUOT   -> RESOURCE_EXHAUSTED (incl. injected)
//   fsync failure (real or injected)-> DATA_LOSS (durability unknowable)
//   read-side hard truncation       -> caller sees a short file (quarantine
//                                      loaders / CRC codecs must reject it)
//   anything else                   -> INTERNAL

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace udb::vfs {

// Exit code used when an installed plan's crash point fires: the process is
// killed with std::_Exit mid-I/O, simulating power loss / OOM-kill between
// syscalls. tools/crashharness forks children and recognizes this code.
inline constexpr int kIoCrashExit = 86;

// Writes and reads are split into chunks of this size, and every chunk is one
// faultable operation — so a crash point or injected ENOSPC inside a large
// write leaves a torn prefix on disk, exactly like real power loss.
inline constexpr std::size_t kIoChunk = std::size_t{64} * 1024;

// ---- seeded fault plan ----------------------------------------------------

struct IoFaultPlan {
  std::uint64_t seed = 0;

  double eintr_rate = 0.0;        // read/write chunk: simulated EINTR, retried
  double short_read_rate = 0.0;   // read chunk returns a prefix; loop continues
  double short_write_rate = 0.0;  // write chunk lands a prefix; loop continues
  double read_truncate_rate = 0.0;  // read reports EOF early (hard short file)
  double bitrot_rate = 0.0;         // one bit of the chunk just read flipped
  double enospc_rate = 0.0;       // write chunk lands a prefix, fails ENOSPC
  double fsync_fail_rate = 0.0;   // fsync/dir-fsync reports failure

  // Crash point: the process _Exit(kIoCrashExit)s immediately before the VFS
  // operation with this ordinal (0-based, counted across the process since
  // the last reset_io_fault_state()). -1 disables.
  std::int64_t crash_at_op = -1;
};

// Injected-fault tallies (process-wide, relaxed atomics underneath).
struct IoFaultCounts {
  std::uint64_t ops = 0;  // operations that rolled the dice
  std::uint64_t eintr = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t truncated_reads = 0;
  std::uint64_t bitrots = 0;
  std::uint64_t enospc = 0;
  std::uint64_t fsync_failures = 0;
};

// Installs (nullptr uninstalls) the process-wide plan. The plan is not owned
// and must outlive the installation; install before I/O starts and uninstall
// after it drains (tests/harness do exactly that).
void install_io_fault_plan(const IoFaultPlan* plan) noexcept;
[[nodiscard]] const IoFaultPlan* io_fault_plan() noexcept;

[[nodiscard]] IoFaultCounts io_fault_counts() noexcept;
// Zeroes the counters and the operation ordinal, so each harness scenario
// starts from a reproducible state.
void reset_io_fault_state() noexcept;
// The next operation ordinal — with an all-zero-rates plan installed this
// measures how many faultable ops a workload performs, which is how the
// crash harness sizes its crash-point sweep.
[[nodiscard]] std::uint64_t io_fault_next_op() noexcept;

// ---- file handle ----------------------------------------------------------

// Move-only RAII fd wrapper. The destructor closes silently (best effort);
// call close() explicitly wherever its error matters — a durable write path
// must treat a failed close like a failed write.
class File {
 public:
  File() = default;
  ~File();
  File(File&& o) noexcept;
  File& operator=(File&& o) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  // O_WRONLY|O_CREAT|O_TRUNC — a fresh file (parent dir must exist).
  [[nodiscard]] static StatusOr<File> create(const std::string& path);
  // O_WRONLY|O_CREAT|O_APPEND — the WAL's append handle.
  [[nodiscard]] static StatusOr<File> open_append(const std::string& path);
  // O_RDONLY. ENOENT -> NOT_FOUND.
  [[nodiscard]] static StatusOr<File> open_read(const std::string& path);

  // Writes all n bytes (chunked; retries EINTR and short writes). On failure
  // a prefix may have landed — callers follow the tmp+rename discipline.
  [[nodiscard]] Status write(const void* p, std::size_t n);
  // Reads up to n bytes, returning the count actually read (< n only at end
  // of file or under an injected hard truncation).
  [[nodiscard]] StatusOr<std::size_t> read(void* p, std::size_t n);
  // fsync. Failure means durability is unknowable -> DATA_LOSS.
  [[nodiscard]] Status sync();
  [[nodiscard]] Status close();

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  File(int fd, std::string path);
  static StatusOr<File> open_with(const std::string& path, int flags,
                                  bool read_side);

  int fd_ = -1;
  std::string path_;
  std::uint32_t name_hash_ = 0;  // over the basename: stable across tmp dirs
};

// ---- whole-file helpers ---------------------------------------------------

// Reads the entire file. ENOENT -> NOT_FOUND; an injected hard truncation
// returns a prefix (the caller's codec must reject it, which is the point).
[[nodiscard]] StatusOr<std::vector<std::uint8_t>> read_file(
    const std::string& path);

// Plain create+write+close with every error propagated — for artifacts where
// atomicity is not needed (trace/metrics/bench JSON) but silent loss is
// unacceptable.
[[nodiscard]] Status write_file(const std::string& path, const void* data,
                                std::size_t n);
[[nodiscard]] Status write_text_file(const std::string& path,
                                     const std::string& text);

// The full crash-safe discipline: write `path`.tmp, fsync it, close it,
// rename over `path`, fsync the parent directory. Any failure removes the
// tmp file and leaves whatever was at `path` untouched. `durable` = false
// skips the two fsyncs (for tests and non-critical artifacts that still want
// atomic replace).
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       const void* data, std::size_t n,
                                       bool durable = true);

// ---- directory / metadata ops --------------------------------------------

[[nodiscard]] Status rename_file(const std::string& from,
                                 const std::string& to);
[[nodiscard]] Status remove_file(const std::string& path);  // ENOENT is ok
[[nodiscard]] Status fsync_parent_dir(const std::string& path);
[[nodiscard]] Status make_dir(const std::string& path);   // EEXIST is ok
[[nodiscard]] Status make_dirs(const std::string& path);  // mkdir -p
// Entry names (not paths), sorted, "." and ".." excluded.
[[nodiscard]] StatusOr<std::vector<std::string>> list_dir(
    const std::string& dir);
[[nodiscard]] StatusOr<std::uint64_t> file_size(const std::string& path);
[[nodiscard]] bool exists(const std::string& path) noexcept;

// Last path component ("/a/b/c.txt" -> "c.txt") and its complement
// ("/a/b/c.txt" -> "/a/b"; "c.txt" -> ".").
[[nodiscard]] std::string basename(const std::string& path);
[[nodiscard]] std::string dirname(const std::string& path);

}  // namespace udb::vfs
