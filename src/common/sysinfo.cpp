#include "common/sysinfo.hpp"

#include <fstream>
#include <string>

namespace udb {

namespace {

std::size_t read_status_kb(const char* key) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::string word;
  while (in >> word) {
    if (word == key) {
      std::size_t kb = 0;
      in >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

}  // namespace

std::size_t peak_rss_bytes() { return read_status_kb("VmHWM:"); }
std::size_t current_rss_bytes() { return read_status_kb("VmRSS:"); }

}  // namespace udb
