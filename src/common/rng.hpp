// Deterministic, seedable random number generation for the data generators
// and tests. We use xoshiro256** (public domain, Blackman & Vigna) seeded via
// SplitMix64 — fast, high quality, and fully reproducible across platforms,
// which std::mt19937 + std::normal_distribution are not (libstdc++/libc++
// produce different normal variates). Box-Muller is implemented here so the
// generated datasets are bit-identical everywhere.

#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace udb {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 to spread the seed across the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    return next_u64() % n;  // modulo bias is irrelevant for data generation
  }

  // Standard normal via Box-Muller (deterministic across platforms).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace udb
