// Recoverable, message-carrying error handling for library code.
//
// A production run must be a governable unit of work: a pathological input, a
// blown deadline, or an exhausted memory budget has to surface as a *value*
// the caller can branch on and log — not a process abort. Status carries a
// machine-readable code plus a human-readable message; StatusOr<T> is the
// return type of fallible producers (dataset loads, guarded runs).
//
// Interop with the existing exception-based call sites: StatusError is a
// std::runtime_error that carries a Status, so code deep inside an engine can
// throw it (unwinding releases every allocation RAII-style) and the guarded
// entry points (core/guarded_run.*) catch it at the boundary and hand the
// caller the Status. status_from_current_exception() converts foreign
// exceptions (std::bad_alloc, std::invalid_argument, ...) at the same
// boundary, so *no* failure mode escapes as a crash from a guarded run.

#pragma once

#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace udb {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,    // caller passed nonsense (bad eps, minpts, flags)
  kNotFound,           // missing file / unknown name
  kDataLoss,           // malformed or quarantine-rejected input data
  kResourceExhausted,  // memory budget exceeded
  kDeadlineExceeded,   // wall-clock deadline exceeded
  kCancelled,          // cancellation token tripped (e.g. SIGINT)
  kUnavailable,        // transient distributed failure (rank death, timeout)
  kInternal,           // invariant violation / unexpected exception
  kUnimplemented,      // peer asked for a protocol/feature this build lacks
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode c) noexcept {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;  // code-wise comparison; messages are free-form
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Convenience constructors, named after the code they produce.
[[nodiscard]] inline Status InvalidArgumentError(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
[[nodiscard]] inline Status NotFoundError(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
[[nodiscard]] inline Status DataLossError(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
[[nodiscard]] inline Status ResourceExhaustedError(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
[[nodiscard]] inline Status DeadlineExceededError(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}
[[nodiscard]] inline Status CancelledError(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
[[nodiscard]] inline Status UnavailableError(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
[[nodiscard]] inline Status InternalError(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
[[nodiscard]] inline Status UnimplementedError(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}

// Exception bridge: thrown by library code at failure sites, caught at the
// guarded-run boundary and converted back to its Status. Deriving from
// std::runtime_error keeps every legacy caller (which catches std::exception
// or std::runtime_error) working unchanged.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

// Maps the in-flight exception to a Status. Call only from a catch block.
[[nodiscard]] inline Status status_from_current_exception() {
  try {
    throw;
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return ResourceExhaustedError("allocation failed (std::bad_alloc)");
  } catch (const std::invalid_argument& e) {
    return InvalidArgumentError(e.what());
  } catch (const std::exception& e) {
    return InternalError(e.what());
  } catch (...) {
    return InternalError("unknown exception");
  }
}

// StatusOr<T>: either a value or a non-OK Status. Minimal by design — enough
// for the fallible producers in this library, no allocator gymnastics.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    if (status_.ok())
      status_ = InternalError("StatusOr constructed from OK status");
  }
  StatusOr(T value)  // NOLINT(implicit)
      : value_(std::move(value)) {}

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & { return require(), *value_; }
  [[nodiscard]] const T& value() const& { return require(), *value_; }
  [[nodiscard]] T&& value() && { return require(), std::move(*value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void require() const {
    if (!value_.has_value()) throw StatusError(status_);
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace udb
