#include "baselines/brute_dbscan.hpp"

#include <algorithm>

#include "baselines/uf_labels.hpp"
#include "common/distance.hpp"

namespace udb {

ClusteringResult brute_dbscan(const Dataset& ds, const DbscanParams& params,
                              obs::MetricsRegistry* metrics) {
  const std::size_t n = ds.size();
  const std::size_t dim = ds.dim();
  const double eps2 = params.eps * params.eps;
  UnionFind uf(n);
  std::vector<std::uint8_t> is_core(n, 0);
  std::vector<std::uint8_t> assigned(n, 0);
  std::vector<PointId> nbhd;
  std::uint64_t unions = 0;

  // The dataset rows are contiguous, so the O(n^2) scan runs through the
  // blocked sq_dist kernel rather than per-point calls.
  constexpr std::size_t kBlock = 256;
  std::vector<double> d2(kBlock);

  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    nbhd.clear();
    const double* pp = ds.ptr(p);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
      const std::size_t cnt = std::min(kBlock, n - j0);
      sq_dist_block(pp, ds.ptr(static_cast<PointId>(j0)), cnt, dim, d2.data());
      for (std::size_t j = 0; j < cnt; ++j)
        if (d2[j] < eps2) nbhd.push_back(static_cast<PointId>(j0 + j));
    }
    if (metrics) metrics->observe(obs::Hist::kNeighborCount, nbhd.size());
    if (nbhd.size() < params.min_pts) continue;
    is_core[p] = 1;
    assigned[p] = 1;
    for (PointId q : nbhd) {
      if (is_core[q]) {
        uf.union_sets(p, q);
        ++unions;
      } else if (!assigned[q]) {
        uf.union_sets(p, q);
        assigned[q] = 1;
        ++unions;
      }
    }
  }
  if (metrics) {
    metrics->add(obs::Counter::kQueriesPerformed, n);
    metrics->add(obs::Counter::kUnionCalls, unions);
  }
  return extract_labels(uf, std::move(is_core), assigned);
}

}  // namespace udb
