#include "baselines/brute_dbscan.hpp"

#include "baselines/uf_labels.hpp"
#include "common/distance.hpp"

namespace udb {

ClusteringResult brute_dbscan(const Dataset& ds, const DbscanParams& params) {
  const std::size_t n = ds.size();
  const double eps2 = params.eps * params.eps;
  UnionFind uf(n);
  std::vector<std::uint8_t> is_core(n, 0);
  std::vector<std::uint8_t> assigned(n, 0);
  std::vector<PointId> nbhd;

  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    nbhd.clear();
    const double* pp = ds.ptr(p);
    for (std::size_t j = 0; j < n; ++j) {
      if (sq_dist(pp, ds.ptr(static_cast<PointId>(j)), ds.dim()) < eps2)
        nbhd.push_back(static_cast<PointId>(j));
    }
    if (nbhd.size() < params.min_pts) continue;
    is_core[p] = 1;
    assigned[p] = 1;
    for (PointId q : nbhd) {
      if (is_core[q]) {
        uf.union_sets(p, q);
      } else if (!assigned[q]) {
        uf.union_sets(p, q);
        assigned[q] = 1;
      }
    }
  }
  return extract_labels(uf, std::move(is_core), assigned);
}

}  // namespace udb
