#include "baselines/qi_dbscan.hpp"

#include <cmath>
#include <deque>
#include <limits>

#include "common/simd.hpp"
#include "index/rtree.hpp"

namespace udb {

namespace {

// QIDBSCAN's expansion shortcut: from a core point's neighborhood, pick the
// neighbors closest to the 2d axis-direction points on the eps-extended
// boundary (p +- eps * e_k). Only these are queried during expansion.
void pick_representatives(const Dataset& ds, PointId p,
                          const std::vector<PointId>& nbhd, double eps,
                          std::vector<PointId>& out) {
  const std::size_t dim = ds.dim();
  const double* pp = ds.ptr(p);

  // Gather the neighborhood (minus p itself, preserving order) into a SoA
  // block once; each of the 2d axis targets then scans it with a single
  // dispatched SIMD kernel call. The first strictly-smaller distance wins,
  // exactly like the old per-candidate loop.
  std::vector<PointId> cand;
  cand.reserve(nbhd.size());
  for (PointId q : nbhd)
    if (q != p) cand.push_back(q);
  const std::size_t cnt = cand.size();
  if (cnt == 0) return;
  std::vector<double> block(cnt * dim);
  for (std::size_t i = 0; i < cnt; ++i) {
    const double* pt = ds.ptr(cand[i]);
    for (std::size_t k = 0; k < dim; ++k) block[k * cnt + i] = pt[k];
  }

  std::vector<double> target(dim), d2(cnt);
  for (std::size_t axis = 0; axis < dim; ++axis) {
    for (double sign : {1.0, -1.0}) {
      for (std::size_t k = 0; k < dim; ++k) target[k] = pp[k];
      target[axis] += sign * eps;
      sq_dist_block_soa(target.data(), block.data(), cnt, cnt, dim, d2.data());
      std::size_t best = 0;
      for (std::size_t i = 1; i < cnt; ++i)
        if (d2[i] < d2[best]) best = i;
      out.push_back(cand[best]);
    }
  }
}

}  // namespace

ClusteringResult qi_dbscan(const Dataset& ds, const DbscanParams& params,
                           QiDbscanStats* stats) {
  const std::size_t n = ds.size();
  QiDbscanStats local_stats;

  RTree tree(ds.dim());
  for (std::size_t i = 0; i < n; ++i)
    tree.insert(ds.ptr(static_cast<PointId>(i)), static_cast<PointId>(i));

  ClusteringResult res;
  res.label.assign(n, kNoise);
  res.is_core.assign(n, 0);
  std::vector<std::uint8_t> visited(n, 0);  // had its own query
  std::int64_t next_cluster = 0;
  std::vector<PointId> nbhd, reps;

  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    // Points already absorbed into a cluster are never re-queried — this is
    // QIDBSCAN's query saving and simultaneously the reason it is not exact:
    // an absorbed member that is itself core may have reachable neighbors no
    // representative covers.
    if (visited[p] || res.label[p] != kNoise) continue;
    visited[p] = 1;
    nbhd.clear();
    tree.query_ball(ds.point(p), params.eps, nbhd);
    ++local_stats.queries;
    if (nbhd.size() < params.min_pts) continue;  // noise for now (or border)

    const std::int64_t cid = next_cluster++;
    res.is_core[p] = 1;
    res.label[p] = cid;

    // BFS over representative points only.
    std::deque<PointId> frontier;
    auto absorb = [&](const std::vector<PointId>& nb, PointId core_pt) {
      for (PointId q : nb) {
        if (res.label[q] == kNoise) res.label[q] = cid;
      }
      reps.clear();
      pick_representatives(ds, core_pt, nb, params.eps, reps);
      local_stats.expansion_skipped += nb.size() > reps.size()
                                           ? nb.size() - reps.size()
                                           : 0;
      for (PointId r : reps)
        if (!visited[r]) frontier.push_back(r);
    };
    absorb(nbhd, p);

    while (!frontier.empty()) {
      const PointId q = frontier.front();
      frontier.pop_front();
      if (visited[q]) continue;
      visited[q] = 1;
      nbhd.clear();
      tree.query_ball(ds.point(q), params.eps, nbhd);
      ++local_stats.queries;
      if (nbhd.size() < params.min_pts) continue;
      res.is_core[q] = 1;
      if (res.label[q] == kNoise) res.label[q] = cid;
      absorb(nbhd, q);
    }
  }

  if (stats) *stats = local_stats;
  return res;
}

}  // namespace udb
