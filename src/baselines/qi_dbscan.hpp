// QIDBSCAN (Tsai & Huang 2012) — a *deliberately approximate* baseline from
// the paper's related work (Section III): cluster expansion queries only a
// few representative points near the axis directions of a core point's
// eps-extended spherical boundary instead of every neighbor. This skips
// expansion paths, so maximality can be violated — the µDBSCAN paper's
// argument for why QIDBSCAN-style accelerations are not exact. We rebuild it
// to *reproduce that claim*: tests and the quality bench show where its
// clustering diverges from exact DBSCAN and by how much (ARI).

#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"

namespace udb {

struct QiDbscanStats {
  std::uint64_t queries = 0;           // expansion queries actually run
  std::uint64_t expansion_skipped = 0; // neighbors not used for expansion
};

[[nodiscard]] ClusteringResult qi_dbscan(const Dataset& ds,
                                         const DbscanParams& params,
                                         QiDbscanStats* stats = nullptr);

}  // namespace udb
