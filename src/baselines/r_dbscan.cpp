#include "baselines/r_dbscan.hpp"

#include "baselines/uf_labels.hpp"
#include "common/timer.hpp"
#include "index/rtree.hpp"

namespace udb {

ClusteringResult r_dbscan(const Dataset& ds, const DbscanParams& params,
                          RDbscanStats* stats, obs::MetricsRegistry* metrics) {
  const std::size_t n = ds.size();
  WallTimer timer;

  RTree tree(ds.dim());
  for (std::size_t i = 0; i < n; ++i)
    tree.insert(ds.ptr(static_cast<PointId>(i)), static_cast<PointId>(i));
  const double build_s = timer.seconds();

  timer.reset();
  UnionFind uf(n);
  std::vector<std::uint8_t> is_core(n, 0);
  std::vector<std::uint8_t> assigned(n, 0);
  std::vector<PointId> nbhd;
  std::uint64_t queries = 0;

  std::uint64_t unions = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    nbhd.clear();
    tree.query_ball(ds.point(p), params.eps, nbhd);
    ++queries;
    if (metrics) metrics->observe(obs::Hist::kNeighborCount, nbhd.size());
    if (nbhd.size() < params.min_pts) continue;
    is_core[p] = 1;
    assigned[p] = 1;
    for (PointId q : nbhd) {
      if (is_core[q]) {
        uf.union_sets(p, q);
        ++unions;
      } else if (!assigned[q]) {
        uf.union_sets(p, q);
        assigned[q] = 1;
        ++unions;
      }
    }
  }

  if (metrics) {
    metrics->add(obs::Counter::kQueriesPerformed, queries);
    metrics->add(obs::Counter::kUnionCalls, unions);
    metrics->add(obs::Counter::kRtreeNodeVisits, tree.node_visits());
    metrics->add(obs::Counter::kRtreeDistanceEvals, tree.distance_evals());
  }
  if (stats) {
    stats->build_seconds = build_s;
    stats->cluster_seconds = timer.seconds();
    stats->queries = queries;
    stats->distance_evals = tree.distance_evals();
  }
  return extract_labels(uf, std::move(is_core), assigned);
}

}  // namespace udb
