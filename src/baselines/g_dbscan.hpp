// G-DBSCAN (Kumar & Reddy 2016) baseline: accelerates neighbor search with
// the Groups method instead of a spatial index. Points are bucketed into
// groups of radius eps/2 around master points (so all members of one group
// are pairwise within eps of each other); a point's eps-neighborhood can then
// only contain members of groups whose master lies within 1.5*eps. Groups
// with >= MinPts members are all-core without counting.
//
// Exact clustering, no index: fast when groups are few (dense data), slow
// when the group count approaches n (sparse data) — the behaviour visible in
// the paper's Table II, where G-DBSCAN wins on HHP/KDDB but loses badly on
// DGB.

#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"
#include "obs/metrics.hpp"

namespace udb {

struct GDbscanStats {
  std::uint64_t groups = 0;
  std::uint64_t dense_groups = 0;
  double group_seconds = 0.0;
  double cluster_seconds = 0.0;
};

// `metrics` (optional): queries_performed (every point still runs its
// expansion query — required for exact cross-group connectivity), the
// neighbor-count histogram, and queries_avoided_gdbscan_dense_group = the
// core-status determinations satisfied by dense-group membership alone
// ("all-core without counting"). No counting when null.
[[nodiscard]] ClusteringResult g_dbscan(const Dataset& ds,
                                        const DbscanParams& params,
                                        GDbscanStats* stats = nullptr,
                                        obs::MetricsRegistry* metrics = nullptr);

}  // namespace udb
