// Brute-force DBSCAN: O(n^2) linear-scan neighborhoods, union-find
// clustering. This is the ground truth the exactness tests compare every
// other algorithm against — it has no index, no shortcuts, and no pruning,
// so its correctness is auditable by eye.

#pragma once

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"
#include "obs/metrics.hpp"

namespace udb {

// `metrics` (optional): records queries_performed, the neighbor-count
// histogram, and union calls — the baseline's side of the run report's
// query ledger. Counting is skipped entirely when null.
[[nodiscard]] ClusteringResult brute_dbscan(
    const Dataset& ds, const DbscanParams& params,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace udb
