// Brute-force DBSCAN: O(n^2) linear-scan neighborhoods, union-find
// clustering. This is the ground truth the exactness tests compare every
// other algorithm against — it has no index, no shortcuts, and no pruning,
// so its correctness is auditable by eye.

#pragma once

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"

namespace udb {

[[nodiscard]] ClusteringResult brute_dbscan(const Dataset& ds,
                                            const DbscanParams& params);

}  // namespace udb
