// R-DBSCAN: classical DBSCAN with a single R-tree over all n points — the
// paper's primary sequential baseline (Table II). One eps-neighborhood query
// per point, union-find cluster formation (Algorithm 1 of the paper).

#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"
#include "obs/metrics.hpp"

namespace udb {

struct RDbscanStats {
  double build_seconds = 0.0;
  double cluster_seconds = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t distance_evals = 0;
};

// `metrics` (optional): queries_performed, neighbor-count histogram, R-tree
// node visits / distance evals, union calls. No counting when null.
[[nodiscard]] ClusteringResult r_dbscan(const Dataset& ds,
                                        const DbscanParams& params,
                                        RDbscanStats* stats = nullptr,
                                        obs::MetricsRegistry* metrics = nullptr);

}  // namespace udb
