// GridDBSCAN baseline (Kumari et al., ICDCN'17): exact grid-based DBSCAN.
// Space is cut into cells of side eps/sqrt(d) so that all points sharing a
// cell are pairwise strictly within eps; cells holding >= MinPts points are
// "dense" and their points are core with no neighborhood query (the paper's
// "up to 15% of queries saved"). Remaining points query only the cells
// within a Chebyshev radius. Neighbor-cell lists are precomputed per cell —
// the memory footprint that explodes with dimensionality in the µDBSCAN
// paper's Table IV.

#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"
#include "obs/metrics.hpp"

namespace udb {

struct GridDbscanStats {
  std::uint64_t cells = 0;
  std::uint64_t dense_cells = 0;
  std::uint64_t queries = 0;        // performed neighborhood queries
  std::uint64_t queries_saved = 0;  // dense-cell points that skipped theirs
  std::uint64_t neighbor_list_entries = 0;  // total precomputed cell links
  double build_seconds = 0.0;
  double cluster_seconds = 0.0;
};

// `metrics` (optional): queries_performed, queries_avoided_grid_dense_cell
// (dense-cell points that skipped their query — performed + avoided == n),
// neighbor-count histogram, union calls. No counting when null.
[[nodiscard]] ClusteringResult grid_dbscan(
    const Dataset& ds, const DbscanParams& params,
    GridDbscanStats* stats = nullptr, obs::MetricsRegistry* metrics = nullptr);

}  // namespace udb
