// Sampled approximate DBSCAN — a Pardicle/BD-CATS-style baseline (the
// paper's Section III: "sampling based parallel algorithms ... based on
// approximate neighborhood query computations ... compromising the
// clustering quality"). Neighborhood sizes are estimated from a rho-sample
// of the data, so core decisions (and hence clusters) are approximate.
//
// This exists to reproduce the paper's quality argument: the quality bench
// measures how far sampling drifts from exact DBSCAN (ARI, core-point
// precision/recall) as rho shrinks, against the speed it buys.

#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/runguard.hpp"
#include "metrics/clustering.hpp"

namespace udb {

struct SampledDbscanStats {
  std::size_t sample_size = 0;
  std::uint64_t queries = 0;
};

// rho in (0, 1]: sampling fraction. rho = 1 degenerates to exact DBSCAN.
//
// `guard` (optional) adds cooperative checkpoints to the sample-index build
// and the query sweep — the run-guard degradation path hands its guard here
// (in degraded mode) so even the approximate fallback stays Ctrl-C-able.
[[nodiscard]] ClusteringResult sampled_dbscan(const Dataset& ds,
                                              const DbscanParams& params,
                                              double rho,
                                              std::uint64_t seed = 1,
                                              SampledDbscanStats* stats = nullptr,
                                              RunGuard* guard = nullptr);

}  // namespace udb
