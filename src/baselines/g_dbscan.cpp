#include "baselines/g_dbscan.hpp"

#include <algorithm>

#include "baselines/uf_labels.hpp"
#include "common/distance.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"

namespace udb {

namespace {

struct Group {
  PointId master;
  std::vector<PointId> members;  // includes master
};

}  // namespace

ClusteringResult g_dbscan(const Dataset& ds, const DbscanParams& params,
                          GDbscanStats* stats, obs::MetricsRegistry* metrics) {
  const std::size_t n = ds.size();
  const std::size_t dim = ds.dim();
  const double eps = params.eps;
  const double half2 = (eps / 2.0) * (eps / 2.0);
  const double eps2 = eps * eps;
  const double filter = 1.5 * eps;
  const double filter2 = filter * filter;
  WallTimer timer;

  // Phase 1: group formation. A point joins the first group whose master is
  // strictly within eps/2 (so group members are pairwise strictly within
  // eps); otherwise it founds a new group.
  std::vector<Group> groups;
  std::vector<std::uint32_t> group_of(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    const double* pp = ds.ptr(p);
    bool placed = false;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (sq_dist(pp, ds.ptr(groups[g].master), dim) < half2) {
        groups[g].members.push_back(p);
        group_of[p] = static_cast<std::uint32_t>(g);
        placed = true;
        break;
      }
    }
    if (!placed) {
      group_of[p] = static_cast<std::uint32_t>(groups.size());
      groups.push_back(Group{p, {p}});
    }
  }
  const double group_s = timer.seconds();

  timer.reset();
  UnionFind uf(n);
  std::vector<std::uint8_t> is_core(n, 0);
  std::vector<std::uint8_t> assigned(n, 0);

  // Dense groups: every member is core (pairwise < eps covers >= MinPts
  // points); union them upfront.
  std::uint64_t dense = 0, dense_members = 0;
  for (const Group& g : groups) {
    if (g.members.size() < params.min_pts) continue;
    ++dense;
    dense_members += g.members.size();
    for (PointId q : g.members) {
      is_core[q] = 1;
      assigned[q] = 1;
      uf.union_sets(g.master, q);
    }
  }

  // SoA blocks for phase 2: one dim-major block over all group masters (the
  // filter scan) plus one per-group block over the members (the refine
  // scan), so both inner loops run through the dispatched SIMD kernel.
  const std::size_t ngroups = groups.size();
  std::vector<double> master_block(ngroups * dim);
  std::vector<std::size_t> group_off(ngroups + 1, 0);
  std::size_t max_group = 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    const double* mp = ds.ptr(groups[g].master);
    for (std::size_t d = 0; d < dim; ++d)
      master_block[d * ngroups + g] = mp[d];
    group_off[g + 1] = group_off[g] + groups[g].members.size();
    max_group = std::max(max_group, groups[g].members.size());
  }
  std::vector<double> group_blocks(n * dim);
  for (std::size_t g = 0; g < ngroups; ++g) {
    const auto& members = groups[g].members;
    const std::size_t cnt = members.size();
    double* seg = group_blocks.data() + group_off[g] * dim;
    for (std::size_t i = 0; i < cnt; ++i) {
      const double* pt = ds.ptr(members[i]);
      for (std::size_t d = 0; d < dim; ++d) seg[d * cnt + i] = pt[d];
    }
  }

  // Phase 2: per-point neighborhood via group filtering + union-find
  // clustering (same exact scheme as brute_dbscan).
  std::vector<PointId> nbhd;
  std::vector<double> mbuf(ngroups);
  std::vector<double> gbuf(max_group);
  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    const double* pp = ds.ptr(p);
    nbhd.clear();
    sq_dist_block_soa(pp, master_block.data(), ngroups, ngroups, dim,
                      mbuf.data());
    for (std::size_t g = 0; g < ngroups; ++g) {
      if (mbuf[g] > filter2) continue;
      const auto& members = groups[g].members;
      const std::size_t cnt = members.size();
      sq_dist_block_soa(pp, group_blocks.data() + group_off[g] * dim, cnt, cnt,
                        dim, gbuf.data());
      for (std::size_t j = 0; j < cnt; ++j)
        if (gbuf[j] < eps2) nbhd.push_back(members[j]);
    }
    if (metrics) metrics->observe(obs::Hist::kNeighborCount, nbhd.size());
    if (nbhd.size() < params.min_pts) {
      // Non-core: attach to an already-known core neighbor if any (border).
      if (!assigned[p]) {
        for (PointId q : nbhd) {
          if (is_core[q]) {
            uf.union_sets(q, p);
            assigned[p] = 1;
            break;
          }
        }
      }
      continue;
    }
    is_core[p] = 1;
    assigned[p] = 1;
    for (PointId q : nbhd) {
      if (is_core[q]) {
        uf.union_sets(p, q);
      } else if (!assigned[q]) {
        uf.union_sets(p, q);
        assigned[q] = 1;
      }
    }
  }

  if (metrics) {
    metrics->add(obs::Counter::kQueriesPerformed, n);
    metrics->add(obs::Counter::kQueriesAvoidedDenseGroup, dense_members);
  }
  if (stats) {
    stats->groups = groups.size();
    stats->dense_groups = dense;
    stats->group_seconds = group_s;
    stats->cluster_seconds = timer.seconds();
  }
  return extract_labels(uf, std::move(is_core), assigned);
}

}  // namespace udb
