#include "baselines/sampled_dbscan.hpp"

#include <cmath>
#include <stdexcept>

#include "baselines/uf_labels.hpp"
#include "common/rng.hpp"
#include "index/rtree.hpp"

namespace udb {

namespace {
constexpr std::size_t kCheckStride = 2048;
}  // namespace

ClusteringResult sampled_dbscan(const Dataset& ds, const DbscanParams& params,
                                double rho, std::uint64_t seed,
                                SampledDbscanStats* stats, RunGuard* guard) {
  if (!(rho > 0.0) || rho > 1.0)
    throw std::invalid_argument("sampled_dbscan: rho must be in (0, 1]");
  const std::size_t n = ds.size();
  SampledDbscanStats local_stats;

  // Charge the per-point flag/label structures up front; the sample index is
  // charged after it is built (its size depends on the rho draw).
  ScopedCharge flags_charge;
  if (guard)
    flags_charge.acquire_throw(guard, n * (2 + sizeof(PointId)),
                               "sampled_dbscan flags + union-find");

  // rho-sample of the points; only sampled points enter the index, so every
  // neighborhood count is an estimate count/rho.
  Rng rng(seed);
  std::vector<PointId> sample;
  std::vector<std::uint8_t> in_sample(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < rho) {
      sample.push_back(static_cast<PointId>(i));
      in_sample[i] = 1;
    }
  }
  local_stats.sample_size = sample.size();

  RTree tree(ds.dim());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    if (guard && i % kCheckStride == 0)
      guard->check_throw("sampled_dbscan index build");
    tree.insert(ds.ptr(sample[i]), sample[i]);
  }
  ScopedCharge tree_charge;
  if (guard)
    tree_charge.acquire_throw(guard, tree.memory_bytes(),
                              "sampled_dbscan sample index");

  UnionFind uf(n);
  std::vector<std::uint8_t> is_core(n, 0), assigned(n, 0);
  std::vector<PointId> nbhd;
  const double scale = 1.0 / rho;

  for (std::size_t i = 0; i < n; ++i) {
    if (guard && i % kCheckStride == 0)
      guard->check_throw("sampled_dbscan query sweep");
    const PointId p = static_cast<PointId>(i);
    nbhd.clear();
    tree.query_ball(ds.point(p), params.eps, nbhd);
    ++local_stats.queries;
    // Estimated neighborhood size; the point itself always counts once.
    double est = static_cast<double>(nbhd.size()) * scale;
    if (!in_sample[p]) est += 1.0;
    if (est < static_cast<double>(params.min_pts)) {
      if (!assigned[p]) {
        for (PointId q : nbhd) {
          if (is_core[q]) {
            uf.union_sets(q, p);
            assigned[p] = 1;
            break;
          }
        }
      }
      continue;
    }
    is_core[p] = 1;
    assigned[p] = 1;
    for (PointId q : nbhd) {
      if (is_core[q]) {
        uf.union_sets(p, q);
      } else if (!assigned[q]) {
        uf.union_sets(p, q);
        assigned[q] = 1;
      }
    }
  }

  if (stats) *stats = local_stats;
  return extract_labels(uf, std::move(is_core), assigned);
}

}  // namespace udb
