#include "baselines/sampled_dbscan.hpp"

#include <cmath>
#include <stdexcept>

#include "baselines/uf_labels.hpp"
#include "common/rng.hpp"
#include "index/rtree.hpp"

namespace udb {

ClusteringResult sampled_dbscan(const Dataset& ds, const DbscanParams& params,
                                double rho, std::uint64_t seed,
                                SampledDbscanStats* stats) {
  if (!(rho > 0.0) || rho > 1.0)
    throw std::invalid_argument("sampled_dbscan: rho must be in (0, 1]");
  const std::size_t n = ds.size();
  SampledDbscanStats local_stats;

  // rho-sample of the points; only sampled points enter the index, so every
  // neighborhood count is an estimate count/rho.
  Rng rng(seed);
  std::vector<PointId> sample;
  std::vector<std::uint8_t> in_sample(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < rho) {
      sample.push_back(static_cast<PointId>(i));
      in_sample[i] = 1;
    }
  }
  local_stats.sample_size = sample.size();

  RTree tree(ds.dim());
  for (PointId s : sample) tree.insert(ds.ptr(s), s);

  UnionFind uf(n);
  std::vector<std::uint8_t> is_core(n, 0), assigned(n, 0);
  std::vector<PointId> nbhd;
  const double scale = 1.0 / rho;

  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    nbhd.clear();
    tree.query_ball(ds.point(p), params.eps, nbhd);
    ++local_stats.queries;
    // Estimated neighborhood size; the point itself always counts once.
    double est = static_cast<double>(nbhd.size()) * scale;
    if (!in_sample[p]) est += 1.0;
    if (est < static_cast<double>(params.min_pts)) {
      if (!assigned[p]) {
        for (PointId q : nbhd) {
          if (is_core[q]) {
            uf.union_sets(q, p);
            assigned[p] = 1;
            break;
          }
        }
      }
      continue;
    }
    is_core[p] = 1;
    assigned[p] = 1;
    for (PointId q : nbhd) {
      if (is_core[q]) {
        uf.union_sets(p, q);
      } else if (!assigned[q]) {
        uf.union_sets(p, q);
        assigned[q] = 1;
      }
    }
  }

  if (stats) *stats = local_stats;
  return extract_labels(uf, std::move(is_core), assigned);
}

}  // namespace udb
