// Shared helper: turn a union-find structure plus core/assigned flags into a
// ClusteringResult. Every algorithm in this library clusters by UNION
// operations (the PDSDBSCAN formulation); points that are neither core nor
// ever united with a core are noise.

#pragma once

#include <unordered_map>

#include "metrics/clustering.hpp"
#include "unionfind/union_find.hpp"

namespace udb {

namespace detail {

template <typename UF>
ClusteringResult extract_labels_impl(UF& uf, std::vector<std::uint8_t> is_core,
                                     const std::vector<std::uint8_t>& assigned) {
  const std::size_t n = uf.size();
  ClusteringResult res;
  res.is_core = std::move(is_core);
  res.label.assign(n, kNoise);
  std::unordered_map<PointId, std::int64_t> root_to_label;
  for (std::size_t i = 0; i < n; ++i) {
    if (!res.is_core[i] && !assigned[i]) continue;  // noise
    const PointId root = uf.find(static_cast<PointId>(i));
    auto [it, inserted] = root_to_label.try_emplace(
        root, static_cast<std::int64_t>(root_to_label.size()));
    res.label[i] = it->second;
  }
  return res;
}

}  // namespace detail

inline ClusteringResult extract_labels(UnionFind& uf,
                                       std::vector<std::uint8_t> is_core,
                                       const std::vector<std::uint8_t>& assigned) {
  return detail::extract_labels_impl(uf, std::move(is_core), assigned);
}

// Const overload: uses the non-compressing read-only find, so extraction can
// run from const contexts (e.g. MuDbscanEngine::extract_result) without the
// former const_cast.
inline ClusteringResult extract_labels(const UnionFind& uf,
                                       std::vector<std::uint8_t> is_core,
                                       const std::vector<std::uint8_t>& assigned) {
  return detail::extract_labels_impl(uf, std::move(is_core), assigned);
}

}  // namespace udb
