#include "baselines/grid_dbscan.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/uf_labels.hpp"
#include "common/distance.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "index/grid.hpp"

namespace udb {

ClusteringResult grid_dbscan(const Dataset& ds, const DbscanParams& params,
                             GridDbscanStats* stats,
                             obs::MetricsRegistry* metrics) {
  const std::size_t n = ds.size();
  const std::size_t dim = ds.dim();
  const double eps = params.eps;
  const double eps2 = eps * eps;
  WallTimer timer;

  // Cell side just under eps/sqrt(d): the cell diagonal is then strictly
  // below eps, so same-cell points are pairwise strictly within eps (the
  // dense-cell core shortcut is airtight even for adversarial coordinates).
  const double side = eps / std::sqrt(static_cast<double>(dim)) *
                      (1.0 - 1e-12);
  Grid grid(ds, side);
  const auto k = static_cast<std::int64_t>(eps / side) + 1;

  // Precomputed neighbor-cell lists (GridDBSCAN's memory hog).
  const std::size_t ncells = grid.num_cells();
  std::vector<std::vector<Grid::CellId>> nbr_cells(ncells);
  std::uint64_t nbr_entries = 0;
  for (Grid::CellId c = 0; c < ncells; ++c) {
    grid.neighbors_within(c, k, nbr_cells[c]);
    nbr_entries += nbr_cells[c].size();
  }

  // Per-cell SoA coordinate blocks (dim-major, stride = cell population) so
  // the per-point candidate scans below go through the dispatched SIMD
  // kernel instead of one sq_dist call per candidate.
  std::vector<std::size_t> cell_off(ncells + 1, 0);
  for (Grid::CellId c = 0; c < ncells; ++c)
    cell_off[c + 1] = cell_off[c] + grid.points_in(c).size();
  std::vector<double> cell_blocks(n * dim);
  std::size_t max_cell = 0;
  for (Grid::CellId c = 0; c < ncells; ++c) {
    const auto& pts = grid.points_in(c);
    const std::size_t cnt = pts.size();
    max_cell = std::max(max_cell, cnt);
    double* seg = cell_blocks.data() + cell_off[c] * dim;
    for (std::size_t i = 0; i < cnt; ++i) {
      const double* pt = ds.ptr(pts[i]);
      for (std::size_t d = 0; d < dim; ++d) seg[d * cnt + i] = pt[d];
    }
  }
  const double build_s = timer.seconds();

  timer.reset();
  UnionFind uf(n);
  std::vector<std::uint8_t> is_core(n, 0);
  std::vector<std::uint8_t> assigned(n, 0);
  std::vector<std::uint8_t> cell_dense(ncells, 0);

  // Dense cells: all points core, no query; union within the cell.
  std::uint64_t dense_cnt = 0, saved = 0;
  for (Grid::CellId c = 0; c < ncells; ++c) {
    const auto& pts = grid.points_in(c);
    if (pts.size() < params.min_pts) continue;
    cell_dense[c] = 1;
    ++dense_cnt;
    saved += pts.size();
    for (PointId q : pts) {
      is_core[q] = 1;
      assigned[q] = 1;
      uf.union_sets(pts.front(), q);
    }
  }

  // Per-point pass over non-dense-cell points: neighborhood via the
  // precomputed cell lists, union-find clustering.
  std::uint64_t queries = 0;
  std::vector<PointId> nbhd;
  std::vector<double> d2buf(max_cell);
  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    const Grid::CellId c = grid.cell_of_point(p);
    if (cell_dense[c]) continue;  // query saved
    ++queries;
    const double* pp = ds.ptr(p);
    nbhd.clear();
    for (Grid::CellId nc : nbr_cells[c]) {
      const auto& cpts = grid.points_in(nc);
      const std::size_t cnt = cpts.size();
      if (cnt == 0) continue;
      sq_dist_block_soa(pp, cell_blocks.data() + cell_off[nc] * dim, cnt, cnt,
                        dim, d2buf.data());
      for (std::size_t j = 0; j < cnt; ++j)
        if (d2buf[j] < eps2) nbhd.push_back(cpts[j]);
    }
    if (metrics) metrics->observe(obs::Hist::kNeighborCount, nbhd.size());
    if (nbhd.size() < params.min_pts) {
      if (!assigned[p]) {
        for (PointId q : nbhd) {
          if (is_core[q]) {
            uf.union_sets(q, p);
            assigned[p] = 1;
            break;
          }
        }
      }
      continue;
    }
    is_core[p] = 1;
    assigned[p] = 1;
    for (PointId q : nbhd) {
      if (is_core[q]) {
        uf.union_sets(p, q);
      } else if (!assigned[q]) {
        uf.union_sets(p, q);
        assigned[q] = 1;
      }
    }
  }

  // Merge adjacent dense cells: their points never queried, so cross-cell
  // core-core links within eps must be established explicitly.
  for (Grid::CellId c = 0; c < ncells; ++c) {
    if (!cell_dense[c]) continue;
    for (Grid::CellId nc : nbr_cells[c]) {
      if (nc <= c || !cell_dense[nc]) continue;
      const auto& a = grid.points_in(c);
      const auto& b = grid.points_in(nc);
      if (uf.same(a.front(), b.front())) continue;
      bool linked = false;
      for (PointId pa : a) {
        for (PointId pb : b) {
          if (sq_dist(ds.ptr(pa), ds.ptr(pb), dim) < eps2) {
            uf.union_sets(pa, pb);
            linked = true;
            break;
          }
        }
        if (linked) break;
      }
    }
  }

  if (metrics) {
    metrics->add(obs::Counter::kQueriesPerformed, queries);
    metrics->add(obs::Counter::kQueriesAvoidedDenseCell, saved);
  }
  if (stats) {
    stats->cells = ncells;
    stats->dense_cells = dense_cnt;
    stats->queries = queries;
    stats->queries_saved = saved;
    stats->neighbor_list_entries = nbr_entries;
    stats->build_seconds = build_s;
    stats->cluster_seconds = timer.seconds();
  }
  return extract_labels(uf, std::move(is_core), assigned);
}

}  // namespace udb
