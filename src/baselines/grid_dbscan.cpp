#include "baselines/grid_dbscan.hpp"

#include <cmath>

#include "baselines/uf_labels.hpp"
#include "common/distance.hpp"
#include "common/timer.hpp"
#include "index/grid.hpp"

namespace udb {

ClusteringResult grid_dbscan(const Dataset& ds, const DbscanParams& params,
                             GridDbscanStats* stats,
                             obs::MetricsRegistry* metrics) {
  const std::size_t n = ds.size();
  const std::size_t dim = ds.dim();
  const double eps = params.eps;
  const double eps2 = eps * eps;
  WallTimer timer;

  // Cell side just under eps/sqrt(d): the cell diagonal is then strictly
  // below eps, so same-cell points are pairwise strictly within eps (the
  // dense-cell core shortcut is airtight even for adversarial coordinates).
  const double side = eps / std::sqrt(static_cast<double>(dim)) *
                      (1.0 - 1e-12);
  Grid grid(ds, side);
  const auto k = static_cast<std::int64_t>(eps / side) + 1;

  // Precomputed neighbor-cell lists (GridDBSCAN's memory hog).
  const std::size_t ncells = grid.num_cells();
  std::vector<std::vector<Grid::CellId>> nbr_cells(ncells);
  std::uint64_t nbr_entries = 0;
  for (Grid::CellId c = 0; c < ncells; ++c) {
    grid.neighbors_within(c, k, nbr_cells[c]);
    nbr_entries += nbr_cells[c].size();
  }
  const double build_s = timer.seconds();

  timer.reset();
  UnionFind uf(n);
  std::vector<std::uint8_t> is_core(n, 0);
  std::vector<std::uint8_t> assigned(n, 0);
  std::vector<std::uint8_t> cell_dense(ncells, 0);

  // Dense cells: all points core, no query; union within the cell.
  std::uint64_t dense_cnt = 0, saved = 0;
  for (Grid::CellId c = 0; c < ncells; ++c) {
    const auto& pts = grid.points_in(c);
    if (pts.size() < params.min_pts) continue;
    cell_dense[c] = 1;
    ++dense_cnt;
    saved += pts.size();
    for (PointId q : pts) {
      is_core[q] = 1;
      assigned[q] = 1;
      uf.union_sets(pts.front(), q);
    }
  }

  // Per-point pass over non-dense-cell points: neighborhood via the
  // precomputed cell lists, union-find clustering.
  std::uint64_t queries = 0;
  std::vector<PointId> nbhd;
  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    const Grid::CellId c = grid.cell_of_point(p);
    if (cell_dense[c]) continue;  // query saved
    ++queries;
    const double* pp = ds.ptr(p);
    nbhd.clear();
    for (Grid::CellId nc : nbr_cells[c]) {
      for (PointId q : grid.points_in(nc)) {
        if (sq_dist(pp, ds.ptr(q), dim) < eps2) nbhd.push_back(q);
      }
    }
    if (metrics) metrics->observe(obs::Hist::kNeighborCount, nbhd.size());
    if (nbhd.size() < params.min_pts) {
      if (!assigned[p]) {
        for (PointId q : nbhd) {
          if (is_core[q]) {
            uf.union_sets(q, p);
            assigned[p] = 1;
            break;
          }
        }
      }
      continue;
    }
    is_core[p] = 1;
    assigned[p] = 1;
    for (PointId q : nbhd) {
      if (is_core[q]) {
        uf.union_sets(p, q);
      } else if (!assigned[q]) {
        uf.union_sets(p, q);
        assigned[q] = 1;
      }
    }
  }

  // Merge adjacent dense cells: their points never queried, so cross-cell
  // core-core links within eps must be established explicitly.
  for (Grid::CellId c = 0; c < ncells; ++c) {
    if (!cell_dense[c]) continue;
    for (Grid::CellId nc : nbr_cells[c]) {
      if (nc <= c || !cell_dense[nc]) continue;
      const auto& a = grid.points_in(c);
      const auto& b = grid.points_in(nc);
      if (uf.same(a.front(), b.front())) continue;
      bool linked = false;
      for (PointId pa : a) {
        for (PointId pb : b) {
          if (sq_dist(ds.ptr(pa), ds.ptr(pb), dim) < eps2) {
            uf.union_sets(pa, pb);
            linked = true;
            break;
          }
        }
        if (linked) break;
      }
    }
  }

  if (metrics) {
    metrics->add(obs::Counter::kQueriesPerformed, queries);
    metrics->add(obs::Counter::kQueriesAvoidedDenseCell, saved);
  }
  if (stats) {
    stats->cells = ncells;
    stats->dense_cells = dense_cnt;
    stats->queries = queries;
    stats->queries_saved = saved;
    stats->neighbor_list_entries = nbr_entries;
    stats->build_seconds = build_s;
    stats->cluster_seconds = timer.seconds();
  }
  return extract_labels(uf, std::move(is_core), assigned);
}

}  // namespace udb
