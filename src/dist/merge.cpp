#include "dist/merge.hpp"

#include <limits>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "common/status.hpp"
#include "index/rtree.hpp"

namespace udb {

namespace {

struct EdgeMsg {
  std::uint64_t gid_y;  // remote point, local at the receiving owner
  std::uint64_t rep_x;  // sender-side cluster representative of x
  std::uint64_t x_core; // authoritative: x is local at the sender
};

struct ReplyMsg {
  std::uint64_t gid_x;  // border candidate, local at the receiver
  std::uint64_t rep_y;  // owner-side cluster representative of core y
};

struct PairMsg {
  std::uint64_t a;
  std::uint64_t b;
};

// Hash-based union-find over representative gids; absent keys are their own
// roots. Deterministic across ranks because every rank applies the identical
// globally-gathered pair list in the same order.
class GidUnionFind {
 public:
  std::uint64_t find(std::uint64_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) return x;
    // Path compression via recursion on the hash map.
    const std::uint64_t root = find(it->second);
    it->second = root;
    return root;
  }

  void unite(std::uint64_t a, std::uint64_t b) {
    const std::uint64_t ra = find(a);
    const std::uint64_t rb = find(b);
    if (ra == rb) return;
    // Smaller gid wins the root: canonical labels fall out of find().
    if (ra < rb)
      parent_[rb] = ra;
    else
      parent_[ra] = rb;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> parent_;
};

// Strategy 1: gather all pairs everywhere and replay the same union-find.
std::unordered_map<std::uint64_t, std::uint64_t> resolve_allgather(
    mpi::Comm& comm, const std::vector<PairMsg>& my_pairs,
    const std::vector<std::uint64_t>& needed, MergeStats* stats) {
  const std::vector<PairMsg> all_pairs = comm.allgatherv(my_pairs);
  stats->union_pairs = all_pairs.size();
  GidUnionFind guf;
  for (const PairMsg& pr : all_pairs) guf.unite(pr.a, pr.b);
  std::unordered_map<std::uint64_t, std::uint64_t> out;
  out.reserve(needed.size() * 2);
  for (std::uint64_t g : needed) out[g] = guf.find(g);
  return out;
}

// Strategy 2: the paper's reference [19] — a distributed union-find.
// Representatives are hash-owned (owner = gid mod p); each rank stores
// parent pointers only for the gids it owns. Union tasks (u, v) are routed
// to owner(u), chased through locally-owned pointers, forwarded when a
// pointer crosses ownership, and linked root-to-root with the larger gid
// under the smaller — so the final root of a component is its minimum gid,
// identical to the all-gather strategy's labels. Rounds of alltoallv keep
// the protocol synchronous and deadlock-free; termination: every forward
// either strictly descends a parent chain (whose values only shrink) or
// swaps to the partner's strictly smaller root, so the pending task count
// reaches zero (guarded by a generous round cap).
std::unordered_map<std::uint64_t, std::uint64_t> resolve_distributed_uf(
    mpi::Comm& comm, const std::vector<PairMsg>& my_pairs,
    const std::vector<std::uint64_t>& needed, MergeStats* stats) {
  const int p = comm.size();
  const auto owner = [p](std::uint64_t gid) {
    return static_cast<int>(gid % static_cast<std::uint64_t>(p));
  };
  std::unordered_map<std::uint64_t, std::uint64_t> parent;  // owned gids only
  stats->union_pairs = my_pairs.size();  // pairs this rank *generated*

  // Chase g through locally owned pointers; returns the last gid reached
  // (either a root we own or a gid owned elsewhere).
  const auto chase = [&](std::uint64_t g) {
    while (owner(g) == comm.rank()) {
      const auto it = parent.find(g);
      if (it == parent.end()) break;  // local root
      g = it->second;
    }
    return g;
  };

  // Seed: route each pair to owner(a).
  std::vector<std::vector<PairMsg>> tasks_out(static_cast<std::size_t>(p));
  for (const PairMsg& pr : my_pairs)
    tasks_out[static_cast<std::size_t>(owner(pr.a))].push_back(pr);

  constexpr int kMaxRounds = 256;
  int round = 0;
  for (; round < kMaxRounds; ++round) {
    std::int64_t outgoing = 0;
    for (const auto& v : tasks_out) outgoing += static_cast<std::int64_t>(v.size());
    if (comm.allreduce_sum(outgoing) == 0) break;

    const auto tasks_in = comm.alltoallv(tasks_out);
    for (auto& v : tasks_out) v.clear();

    for (int src = 0; src < p; ++src) {
      for (const PairMsg& t : tasks_in[static_cast<std::size_t>(src)]) {
        // Task (a, b): unite the set containing a with the set containing b.
        // Invariant: we only ever assign parent[x] = y with y < x, so parent
        // chains strictly decrease — no cycles are possible even when y is
        // no longer a root, and the final root of every component is its
        // minimum gid (matching the all-gather strategy's labels).
        const std::uint64_t u = chase(t.a);
        const std::uint64_t v = t.b;
        if (u == v) continue;  // already same set
        if (owner(u) != comm.rank()) {
          // Chain crossed ownership: continue the chase there.
          tasks_out[static_cast<std::size_t>(owner(u))].push_back(
              PairMsg{u, v});
          continue;
        }
        // u has no local parent and we own it.
        if (v < u) {
          parent[u] = v;  // monotone link; v's chain continues downward
        } else {
          // Mirror the task so v's owner can link v (or its root) under u.
          tasks_out[static_cast<std::size_t>(owner(v))].push_back(
              PairMsg{v, u});
        }
      }
    }
  }
  if (round >= kMaxRounds)
    throw StatusError(
        InternalError("distributed union-find did not converge"));
  stats->union_rounds = static_cast<std::uint64_t>(round);

  // Resolution: batched pointer jumping. Each query carries (original gid,
  // current position, asking rank); owners advance the position through
  // their chains and reply to the original asker when the root is reached.
  struct Query {
    std::uint64_t original;
    std::uint64_t current;
    std::uint64_t asker;
  };
  std::unordered_map<std::uint64_t, std::uint64_t> out;
  out.reserve(needed.size() * 2);
  std::vector<std::vector<Query>> q_out(static_cast<std::size_t>(p));
  for (std::uint64_t g : needed)
    q_out[static_cast<std::size_t>(owner(g))].push_back(
        Query{g, g, static_cast<std::uint64_t>(comm.rank())});

  for (int jround = 0;; ++jround) {
    if (jround >= kMaxRounds)
      throw StatusError(InternalError("distributed find did not converge"));
    std::int64_t outgoing = 0;
    for (const auto& v : q_out) outgoing += static_cast<std::int64_t>(v.size());
    if (comm.allreduce_sum(outgoing) == 0) break;

    const auto q_in = comm.alltoallv(q_out);
    for (auto& v : q_out) v.clear();
    std::vector<std::vector<Query>> replies(static_cast<std::size_t>(p));
    for (int src = 0; src < p; ++src) {
      for (const Query& q : q_in[static_cast<std::size_t>(src)]) {
        const std::uint64_t next = chase(q.current);
        if (owner(next) == comm.rank()) {
          // Reached the root: answer the original asker.
          replies[static_cast<std::size_t>(q.asker)].push_back(
              Query{q.original, next, q.asker});
        } else {
          q_out[static_cast<std::size_t>(owner(next))].push_back(
              Query{q.original, next, q.asker});
        }
      }
    }
    const auto replies_back = comm.alltoallv(replies);
    for (int src = 0; src < p; ++src)
      for (const Query& r : replies_back[static_cast<std::size_t>(src)])
        out[r.original] = r.current;
  }
  return out;
}

}  // namespace

DistClustering merge_local_clusterings(
    mpi::Comm& comm, std::size_t dim, double eps,
    const std::vector<double>& combined_coords, std::size_t n_local,
    const std::vector<std::uint64_t>& gids, const std::vector<int>& halo_owner,
    const std::vector<Box>& rank_boxes, UnionFind& uf,
    const std::vector<std::uint8_t>& is_core,
    const std::vector<std::uint8_t>& assigned, MergeStats* stats,
    MergeStrategy strategy) {
  const int p = comm.size();
  const int me = comm.rank();
  const double eps2 = eps * eps;
  MergeStats local_stats;

  // ---- cluster representatives: min local gid per local component --------
  // Components are stars around core points; a component's representative is
  // only meaningful if the component contains a local core (otherwise its
  // identity lives on some remote rank and its members are adopted via
  // replies).
  std::unordered_map<PointId, std::uint64_t> rep_of_root;
  std::unordered_map<PointId, bool> root_has_local_core;
  for (std::size_t i = 0; i < n_local; ++i) {
    const PointId pt = static_cast<PointId>(i);
    if (!is_core[pt] && !assigned[pt]) continue;
    const PointId root = uf.find(pt);
    auto [it, inserted] = rep_of_root.try_emplace(root, gids[i]);
    if (!inserted && gids[i] < it->second) it->second = gids[i];
    if (is_core[pt]) root_has_local_core[root] = true;
  }

  // ---- boundary pass: cross edges ----------------------------------------
  // Dense boundary regions generate the same logical edge many times (every
  // member of a local cluster sees the same remote point); deduplicate at
  // the source — edge volume, not edge discovery, is what would otherwise
  // dominate the merge (paper: merging must stay a small slice, Table VII).
  std::vector<std::vector<EdgeMsg>> edges_out(static_cast<std::size_t>(p));
  auto edge_key = [](std::uint64_t a, std::uint64_t b,
                     std::uint64_t flag) noexcept {
    std::uint64_t h = a * 0x9e3779b97f4a7c15ULL;
    h ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= flag + (h << 6) + (h >> 2);
    return h;
  };
  std::unordered_set<std::uint64_t> edge_seen;

  // R-tree over the halo copies only: the boundary pass needs exactly the
  // (local, remote) pairs within eps, and the halo is a small delta-fraction
  // of the data, so this is far cheaper than full neighborhood re-queries.
  const std::size_t n_total = gids.size();
  RTree halo_tree(dim);
  for (std::size_t h = n_local; h < n_total; ++h)
    halo_tree.insert(combined_coords.data() + h * dim,
                     static_cast<PointId>(h));
  for (std::size_t i = 0; i < n_local; ++i) {
    const std::span<const double> pt{combined_coords.data() + i * dim, dim};
    bool boundary = false;
    for (int r = 0; r < p && !boundary; ++r) {
      if (r == me || !rank_boxes[static_cast<std::size_t>(r)].valid()) continue;
      if (rank_boxes[static_cast<std::size_t>(r)].min_sq_dist(pt) <= eps2)
        boundary = true;
    }
    if (!boundary) continue;
    ++local_stats.boundary_points;

    const PointId x = static_cast<PointId>(i);
    const PointId root = uf.find(x);
    const auto rep_it = rep_of_root.find(root);
    const std::uint64_t rep_x =
        rep_it != rep_of_root.end() ? rep_it->second : gids[i];

    const std::uint64_t x_core_flag = is_core[x] ? 1u : 0u;
    halo_tree.visit_ball(pt, eps, [&](PointId q, double) {
      const std::size_t h = q - n_local;
      const int owner = halo_owner[h];
      // Core edges are per-(cluster, remote point); non-core edges are
      // per-(point, remote cluster-ish) — rep_x is the point's own gid for
      // unanchored points, so nothing is lost by the dedup.
      if (edge_seen.insert(edge_key(gids[q], rep_x, x_core_flag)).second) {
        edges_out[static_cast<std::size_t>(owner)].push_back(
            EdgeMsg{gids[q], rep_x, x_core_flag});
        ++local_stats.cross_edges;
      }
      return true;
    });
  }

  const auto edges_in = comm.alltoallv(edges_out);

  // ---- owner-side resolution ---------------------------------------------
  std::unordered_map<std::uint64_t, PointId> gid_to_local;
  gid_to_local.reserve(n_local * 2);
  for (std::size_t i = 0; i < n_local; ++i)
    gid_to_local[gids[i]] = static_cast<PointId>(i);

  // Remote cluster adoption for local points whose component has no local
  // core (their cluster identity lives on the remote side).
  std::vector<std::uint64_t> adopted(n_local,
                                     std::numeric_limits<std::uint64_t>::max());

  std::vector<PairMsg> my_pairs;
  std::unordered_set<std::uint64_t> pair_seen, reply_seen;
  std::vector<std::vector<ReplyMsg>> replies_out(static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    for (const EdgeMsg& e : edges_in[static_cast<std::size_t>(src)]) {
      const auto it = gid_to_local.find(e.gid_y);
      if (it == gid_to_local.end()) continue;  // stale edge; cannot happen
      const PointId y = it->second;
      const bool y_core = is_core[y] != 0;
      if (e.x_core && y_core) {
        const PointId root = uf.find(y);
        const std::uint64_t rep_y = rep_of_root.at(root);
        // Many remote points of one cluster yield the same (rep_x, rep_y):
        // the allgathered pair list is processed by every rank, so dedup
        // here keeps the global resolution linear in distinct pairs.
        if (pair_seen.insert(edge_key(e.rep_x, rep_y, 2)).second)
          my_pairs.push_back(PairMsg{e.rep_x, rep_y});
      } else if (e.x_core && !y_core) {
        // y is a border of x's cluster; adopt if y has no local anchor.
        const PointId root = uf.find(y);
        const bool anchored =
            (is_core[y] || assigned[y]) && root_has_local_core.count(root) > 0;
        if (!anchored && adopted[y] == std::numeric_limits<std::uint64_t>::max())
          adopted[y] = e.rep_x;
      } else if (!e.x_core && y_core) {
        // x may attach to y's cluster as border; x's owner decides. rep_x
        // from a non-core x is its own gid when unanchored; the sender keyed
        // the edge by x's representative, so reply with that. One reply per
        // representative suffices.
        if (reply_seen.insert(edge_key(e.rep_x, 0, 3)).second) {
          const PointId root = uf.find(y);
          replies_out[static_cast<std::size_t>(src)].push_back(
              ReplyMsg{e.rep_x, rep_of_root.at(root)});
        }
      }
      // non-core/non-core edges carry no information.
    }
  }

  const auto replies_in = comm.alltoallv(replies_out);

  // ---- apply replies: border adoption at the x side ----------------------
  // Replies are keyed by rep_x. A reply matters only for points that are
  // non-core and not anchored to a local-core component.
  std::unordered_map<std::uint64_t, std::uint64_t> rep_adoption;
  for (int src = 0; src < p; ++src) {
    for (const ReplyMsg& r : replies_in[static_cast<std::size_t>(src)]) {
      rep_adoption.try_emplace(r.gid_x, r.rep_y);
    }
  }

  // ---- global union over representatives ---------------------------------
  // Collect every representative gid this rank will need a final root for,
  // then resolve them with the selected strategy.
  std::vector<std::uint64_t> needed;
  {
    std::unordered_set<std::uint64_t> need_set;
    for (const auto& [root, rep] : rep_of_root) need_set.insert(rep);
    for (std::uint64_t rep : adopted)
      if (rep != std::numeric_limits<std::uint64_t>::max())
        need_set.insert(rep);
    for (const auto& [k, rep] : rep_adoption) need_set.insert(rep);
    needed.assign(need_set.begin(), need_set.end());
  }
  const std::unordered_map<std::uint64_t, std::uint64_t> root_of =
      strategy == MergeStrategy::AllGatherPairs
          ? resolve_allgather(comm, my_pairs, needed, &local_stats)
          : resolve_distributed_uf(comm, my_pairs, needed, &local_stats);
  auto global_root = [&root_of](std::uint64_t rep) {
    const auto it = root_of.find(rep);
    return it != root_of.end() ? it->second : rep;
  };

  // ---- final labels -------------------------------------------------------
  DistClustering out;
  out.label.assign(n_local, kNoise);
  out.is_core.assign(n_local, 0);
  for (std::size_t i = 0; i < n_local; ++i) {
    const PointId x = static_cast<PointId>(i);
    out.is_core[i] = is_core[x];
    const bool member = is_core[x] || assigned[x];
    const PointId root = member ? uf.find(x) : x;
    const bool anchored = member && root_has_local_core.count(root) > 0;
    if (anchored) {
      out.label[i] = static_cast<std::int64_t>(global_root(rep_of_root.at(root)));
      continue;
    }
    // Unanchored: adopted by a remote cluster either on the owner side (an
    // incoming core edge) or via a reply to our own non-core edge.
    std::uint64_t rep = adopted[i];
    if (rep == std::numeric_limits<std::uint64_t>::max()) {
      const auto rep_it = rep_of_root.find(root);
      const std::uint64_t my_rep =
          member && rep_it != rep_of_root.end() ? rep_it->second : gids[i];
      const auto it = rep_adoption.find(my_rep);
      if (it != rep_adoption.end()) rep = it->second;
    }
    if (rep != std::numeric_limits<std::uint64_t>::max())
      out.label[i] = static_cast<std::int64_t>(global_root(rep));
    // else: genuinely noise (or an unassigned point with no core anywhere
    // within eps) — stays kNoise.
  }

  if (stats) *stats = local_stats;
  return out;
}

}  // namespace udb
