// Per-rank phase checkpoints for the fault-tolerant µDBSCAN-D driver
// (docs/FAULT_MODEL.md §4). The store stands in for reliable stable storage
// (a parallel filesystem): each rank snapshots its phase output after
// partition, halo exchange, and local clustering, and snapshots survive the
// rank — that is the whole point — so survivors can adopt a dead rank's
// partition block and replay only the lost work.
//
// Snapshots are indexed by *logical* rank (the rank numbering of the
// original run). During an attempt, rank r writes only slot r; between
// attempts the single-threaded recovery coordinator reshuffles slots. No
// locking is needed under that access pattern.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.hpp"
#include "common/status.hpp"

namespace udb {

// Output of the kd-partition phase: the rank's owned points.
struct PartitionCkpt {
  bool valid = false;
  std::vector<double> coords;
  std::vector<std::uint64_t> gids;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return coords.size() * sizeof(double) + gids.size() * sizeof(std::uint64_t);
  }
};

// Output of the halo exchange: the eps-strip copies this rank received.
// Owners are stored as logical ranks; the driver remaps them to the current
// attempt's communicator (dead owner -> its adopter) before merging.
struct HaloCkpt {
  bool valid = false;
  std::vector<double> coords;
  std::vector<std::uint64_t> gids;
  std::vector<int> owner_logical;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return coords.size() * sizeof(double) +
           gids.size() * sizeof(std::uint64_t) +
           owner_logical.size() * sizeof(int);
  }
};

// Output of the local clustering phase over the combined local+halo set:
// the union-find partition (as per-element roots) and the point flags —
// everything the merge phase reads from the engine.
struct LocalCkpt {
  bool valid = false;
  std::vector<PointId> uf_root;
  std::vector<std::uint8_t> is_core;
  std::vector<std::uint8_t> assigned;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return uf_root.size() * sizeof(PointId) + is_core.size() +
           assigned.size();
  }
};

class CheckpointStore {
 public:
  explicit CheckpointStore(int nranks)
      : partition_(static_cast<std::size_t>(nranks)),
        halo_(static_cast<std::size_t>(nranks)),
        local_(static_cast<std::size_t>(nranks)) {}

  [[nodiscard]] PartitionCkpt& partition(int r) {
    return partition_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] HaloCkpt& halo(int r) {
    return halo_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] LocalCkpt& local(int r) {
    return local_[static_cast<std::size_t>(r)];
  }

  // Drops every snapshot (full restart after an unrecoverable phase loss).
  void clear() {
    for (auto& c : partition_) c = {};
    for (auto& c : halo_) c = {};
    for (auto& c : local_) c = {};
  }

  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(partition_.size());
  }

  // Durable spill (dist/checkpoint.cpp): the in-memory store stands in for
  // stable storage within one driver process, but a driver restart loses it.
  // save_to serializes every slot (CRC-framed, versioned) and writes through
  // the VFS with the full write-fsync-rename-fsync(dir) discipline — ENOSPC
  // -> RESOURCE_EXHAUSTED, fsync failure -> DATA_LOSS, and a failed save
  // never damages a previous spill at `path`. load_from verifies the CRC and
  // every per-slot length before constructing (DATA_LOSS on any corruption).
  [[nodiscard]] Status save_to(const std::string& path) const;
  [[nodiscard]] static StatusOr<CheckpointStore> load_from(
      const std::string& path);

 private:
  std::vector<PartitionCkpt> partition_;
  std::vector<HaloCkpt> halo_;
  std::vector<LocalCkpt> local_;
};

}  // namespace udb
