// µDBSCAN-SM — the paper's other stated future work ("we intend to extend
// this approach to leverage multiple cores available in each computing
// node", Section VII). The data-parallel decomposition of µDBSCAN-D applies
// unchanged inside a node: spatial partitioning across cores, per-core local
// µDBSCAN, pair merge — only the transport costs change. We therefore
// instantiate µDBSCAN-D on the minimpi runtime with an intra-node cost model
// (shared-memory latency/bandwidth instead of interconnect numbers).
//
// On real multi-socket hardware the ranks would be threads touching disjoint
// partitions; the communication structure and volumes measured here are the
// ones that implementation would exhibit.

#pragma once

#include "dist/mudbscan_d.hpp"

namespace udb {

// Shared-memory transfer model: ~100 ns handoff latency, ~20 GB/s effective
// copy bandwidth.
inline constexpr mpi::CostModel kIntraNodeCost{1e-7, 5e-11};

[[nodiscard]] inline ClusteringResult mudbscan_sm(
    const Dataset& data, const DbscanParams& params, int threads,
    MuDbscanDStats* stats = nullptr, const MuDbscanConfig& cfg = {}) {
  return mudbscan_d(data, params, threads, stats, cfg, kIntraNodeCost);
}

}  // namespace udb
