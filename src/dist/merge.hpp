// Merging of local clusterings (Section V-C): query-free except for the
// boundary-edge pass, which re-queries only the local points lying within eps
// of a foreign partition (the delta*n/p fraction in the paper's complexity).
//
// Protocol (per DESIGN.md):
//   1. Boundary pass: every local point within eps of a foreign rank's box
//      queries an R-tree built over the halo copies alone (far cheaper than
//      re-running its full eps-neighborhood query, which would mostly return
//      local neighbors); the hits become cross edges (local x, remote y).
//   2. Each edge is sent to y's owner, which knows y's authoritative core
//      status: core-core edges become cluster-representative union pairs;
//      core-to-noncore edges adopt the non-core side as border (the owner
//      adopts y directly; for x the owner replies to x's rank).
//   3. Union pairs are allgathered; every rank resolves the same global
//      union-find over cluster representatives, yielding globally consistent
//      labels (canonical label = smallest representative gid in the merged
//      component).
//
// The edge generation deliberately includes non-core remote neighbors:
// wndq-core points never run a neighborhood query, and a remote point that
// looks non-core locally (its witnesses lie outside our halo) can still be
// core at its owner — only the owner can decide (see DESIGN.md §7).

#pragma once

#include <cstdint>
#include <vector>

#include "common/box.hpp"
#include "metrics/clustering.hpp"
#include "mpi/minimpi.hpp"
#include "unionfind/union_find.hpp"

namespace udb {

struct DistClustering {
  // Final labels and core flags for the rank's *local* points (indices
  // 0..n_local). Labels are globally consistent cluster ids (min rep gid).
  std::vector<std::int64_t> label;
  std::vector<std::uint8_t> is_core;
};

struct MergeStats {
  std::uint64_t boundary_points = 0;  // local points run against the halo tree
  std::uint64_t cross_edges = 0;
  std::uint64_t union_pairs = 0;
  std::uint64_t union_rounds = 0;  // DistributedUnionFind only
};

// How step 3 (global resolution of representative union pairs) runs:
//   AllGatherPairs      — every rank gathers all pairs and replays the same
//                         hash union-find (simple; pair list is broadcast).
//   DistributedUnionFind — the paper's reference [19] (Patwary et al.):
//                         representatives are hash-owned by ranks
//                         (owner = gid mod p); union tasks bounce between
//                         the owners of the two roots, linking the larger
//                         root gid under the smaller; final roots are
//                         resolved by batched pointer jumping. No rank ever
//                         sees the full pair list.
// Both produce identical labels (root = minimum gid of the component).
enum class MergeStrategy { AllGatherPairs, DistributedUnionFind };

// Collective. `uf`, `is_core`, `assigned` cover the combined local+halo
// dataset (local points first). `rank_boxes` from exchange_halo.
[[nodiscard]] DistClustering merge_local_clusterings(
    mpi::Comm& comm, std::size_t dim, double eps,
    const std::vector<double>& combined_coords, std::size_t n_local,
    const std::vector<std::uint64_t>& gids, const std::vector<int>& halo_owner,
    const std::vector<Box>& rank_boxes, UnionFind& uf,
    const std::vector<std::uint8_t>& is_core,
    const std::vector<std::uint8_t>& assigned, MergeStats* stats = nullptr,
    MergeStrategy strategy = MergeStrategy::AllGatherPairs);

}  // namespace udb
