// µDBSCAN-D (Section V, Algorithm 9): distributed µDBSCAN over the minimpi
// runtime. Phases: sampling-based kd partitioning → eps-halo exchange →
// local µDBSCAN per rank (on local + halo points) → query-free merge of
// local clusterings. Produces exactly the sequential µDBSCAN (and hence
// classical DBSCAN) clustering.
//
// Reported times are per-phase virtual-time makespans (max over ranks of the
// rank's virtual clock advance in that phase) — see mpi/minimpi.hpp for the
// model. The paper excludes data distribution from its timings; `total`
// likewise excludes t_partition.

#pragma once

#include "common/dataset.hpp"
#include "core/mudbscan.hpp"
#include "dist/merge.hpp"
#include "metrics/clustering.hpp"
#include "mpi/minimpi.hpp"

namespace udb {

// Per-rank observability record. Trivially copyable by construction so the
// ranks can allgatherv the records through minimpi at the end of the run;
// rank 0 deposits the gathered vector in MuDbscanDStats::ranks (obs run
// report `ranks` section, Table 7 per-rank splits).
struct MuDbscanDRank {
  int rank = 0;
  std::uint64_t n_local = 0;
  std::uint64_t n_halo = 0;
  // This rank's own virtual-time delta per phase (not the makespan).
  double t_partition = 0.0;
  double t_halo = 0.0;
  double t_tree = 0.0;
  double t_reach = 0.0;
  double t_cluster = 0.0;
  double t_post = 0.0;
  double t_merge = 0.0;
  std::uint64_t queries_performed = 0;
  // Whole-run comm totals, snapshotted before the stats-gather traffic so
  // the numbers reflect the algorithm, not the reporting.
  mpi::CommStats comm;
};
static_assert(std::is_trivially_copyable_v<MuDbscanDRank>);

struct MuDbscanDStats {
  // Virtual-time makespans per phase (paper Tables VII/VIII).
  double t_partition = 0.0;
  double t_halo = 0.0;
  double t_tree = 0.0;
  double t_reach = 0.0;
  double t_cluster = 0.0;
  double t_post = 0.0;
  double t_merge = 0.0;
  double wall_seconds = 0.0;  // real elapsed time of the whole run

  std::uint64_t halo_points_total = 0;
  std::uint64_t cross_edges = 0;
  std::uint64_t union_pairs = 0;
  std::uint64_t queries_performed = 0;  // summed over ranks

  // One record per rank, in rank order (empty only if the run aborted).
  std::vector<MuDbscanDRank> ranks;

  // The paper's comparable "execution time": everything after partitioning.
  [[nodiscard]] double total() const noexcept {
    return t_halo + t_tree + t_reach + t_cluster + t_post + t_merge;
  }
};

// Runs on `nranks` simulated ranks and returns the global clustering (labels
// indexed by global point id).
[[nodiscard]] ClusteringResult mudbscan_d(
    const Dataset& global, const DbscanParams& params, int nranks,
    MuDbscanDStats* stats = nullptr, const MuDbscanConfig& cfg = {},
    mpi::CostModel cost = {},
    MergeStrategy merge_strategy = MergeStrategy::AllGatherPairs);

}  // namespace udb
