// Sampling-based kd-tree spatial partitioning (Section V-A, following the
// BD-CATS approach the paper cites): log2(p) rounds of recursive halving.
// Each round, the active group picks the axis with the largest spread,
// estimates the median of that axis from a per-rank sample, and exchanges
// points so the lower half of the group keeps coordinates below the median
// and the upper half the rest. Works for any group size (uneven groups split
// at the weighted quantile).

#pragma once

#include <cstdint>
#include <vector>

#include "mpi/minimpi.hpp"

namespace udb {

struct PartitionResult {
  std::size_t dim = 0;
  std::vector<double> coords;        // local points after partitioning
  std::vector<std::uint64_t> gids;   // matching global ids
};

struct PartitionConfig {
  std::size_t sample_per_rank = 128;
  udb::mpi::Tag tag_base = 1000;  // user-tag range for the point exchanges
};

// Collective over the full communicator: every rank passes its initial block
// of points; returns its spatially partitioned block.
[[nodiscard]] PartitionResult kd_partition(mpi::Comm& comm, std::size_t dim,
                                           std::vector<double> coords,
                                           std::vector<std::uint64_t> gids,
                                           const PartitionConfig& cfg = {});

}  // namespace udb
