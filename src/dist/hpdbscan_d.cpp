#include "dist/hpdbscan_d.hpp"

#include <cmath>
#include <mutex>

#include "common/distance.hpp"
#include "common/timer.hpp"
#include "dist/driver_common.hpp"
#include "dist/merge.hpp"
#include "index/grid.hpp"
#include "unionfind/union_find.hpp"

namespace udb {

ClusteringResult hpdbscan_d(const Dataset& global, const DbscanParams& params,
                            int nranks, HpdbscanDStats* stats,
                            mpi::CostModel cost) {
  mpi::Runtime rt(nranks, cost);
  const std::size_t n = global.size();

  ClusteringResult result;
  result.label.assign(n, kNoise);
  result.is_core.assign(n, 0);

  HpdbscanDStats agg;
  std::mutex agg_mu;
  WallTimer wall;

  rt.run([&](mpi::Comm& comm) {
    LocalSetup setup = prepare_local(comm, global, params.eps);
    const Dataset& ds = setup.combined;
    const std::size_t m = ds.size();
    const double eps2 = params.eps * params.eps;

    // HPDBSCAN grids with cell side = eps: queries touch the 3^d surrounding
    // cells (k = 1). Neighbor-cell lists are memoized lazily per cell.
    double t0 = comm.vtime();
    Grid grid(ds, params.eps);
    std::vector<std::vector<Grid::CellId>> nbr_cache(grid.num_cells());
    std::vector<std::uint8_t> nbr_known(grid.num_cells(), 0);
    const double t_build = comm.vtime() - t0;

    auto neighbors_of = [&](Grid::CellId c) -> const std::vector<Grid::CellId>& {
      if (!nbr_known[c]) {
        grid.neighbors_within(c, 1, nbr_cache[c]);
        nbr_known[c] = 1;
      }
      return nbr_cache[c];
    };
    auto query = [&](PointId p, std::vector<std::pair<PointId, double>>& out) {
      const double* pp = ds.ptr(p);
      for (Grid::CellId nc : neighbors_of(grid.cell_of_point(p))) {
        for (PointId q : grid.points_in(nc)) {
          const double d2 = sq_dist(pp, ds.ptr(q), ds.dim());
          if (d2 < eps2) out.emplace_back(q, d2);
        }
      }
    };

    t0 = comm.vtime();
    UnionFind uf(m);
    std::vector<std::uint8_t> is_core(m, 0), assigned(m, 0);
    std::vector<std::pair<PointId, double>> nbhd;
    std::uint64_t queries = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const PointId p = static_cast<PointId>(i);
      nbhd.clear();
      query(p, nbhd);
      ++queries;
      if (nbhd.size() < params.min_pts) continue;
      is_core[p] = 1;
      assigned[p] = 1;
      for (const auto& [q, d2] : nbhd) {
        if (is_core[q]) {
          uf.union_sets(p, q);
        } else if (!assigned[q]) {
          uf.union_sets(p, q);
          assigned[q] = 1;
        }
      }
    }
    const double t_cluster = comm.vtime() - t0;
    comm.barrier();

    t0 = comm.vtime();
    MergeStats merge_stats;
    DistClustering local = merge_local_clusterings(
        comm, ds.dim(), params.eps, ds.raw(), setup.n_local, setup.gids,
        setup.halo_owner, setup.rank_boxes, uf, is_core, assigned,
        &merge_stats);
    const double t_merge = comm.vtime() - t0;

    scatter_result(setup, local.label, local.is_core, result.label,
                   result.is_core);

    const double m_partition = comm.allreduce_max(setup.t_partition);
    const double m_halo = comm.allreduce_max(setup.t_halo);
    const double m_build = comm.allreduce_max(t_build);
    const double m_cluster = comm.allreduce_max(t_cluster);
    const double m_merge = comm.allreduce_max(t_merge);
    const std::int64_t queries_total =
        comm.allreduce_sum(static_cast<std::int64_t>(queries));

    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(agg_mu);
      agg.t_partition = m_partition;
      agg.t_halo = m_halo;
      agg.t_build = m_build;
      agg.t_cluster = m_cluster;
      agg.t_merge = m_merge;
      agg.queries_performed = static_cast<std::uint64_t>(queries_total);
    }
  });

  agg.wall_seconds = wall.seconds();
  if (stats) *stats = agg;
  return result;
}

}  // namespace udb
