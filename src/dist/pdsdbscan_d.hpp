// PDSDBSCAN-D baseline (Patwary et al., SC'12): the disjoint-set parallel
// DBSCAN the paper benchmarks against in Table V / Fig. 5. Same distributed
// scaffolding as µDBSCAN-D (kd partitioning, eps-halo, pair merge), but the
// local phase is classical DBSCAN: a single R-tree over local+halo points
// and one eps-neighborhood query per point — no micro-clusters, no saved
// queries.

#pragma once

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"
#include "mpi/minimpi.hpp"

namespace udb {

struct PdsDbscanDStats {
  double t_partition = 0.0;
  double t_halo = 0.0;
  double t_build = 0.0;    // local R-tree construction
  double t_cluster = 0.0;  // local query + union pass
  double t_merge = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t queries_performed = 0;

  [[nodiscard]] double total() const noexcept {
    return t_halo + t_build + t_cluster + t_merge;
  }
};

[[nodiscard]] ClusteringResult pdsdbscan_d(const Dataset& global,
                                           const DbscanParams& params,
                                           int nranks,
                                           PdsDbscanDStats* stats = nullptr,
                                           mpi::CostModel cost = {});

}  // namespace udb
