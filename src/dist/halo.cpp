#include "dist/halo.hpp"

#include <limits>

namespace udb {

HaloResult exchange_halo(mpi::Comm& comm, std::size_t dim,
                         const std::vector<double>& local_coords,
                         const std::vector<std::uint64_t>& local_gids,
                         double eps) {
  const int p = comm.size();
  const int me = comm.rank();
  const std::size_t n = local_gids.size();

  // 1. Gather every rank's bounding box. Empty ranks publish an inverted box
  // that overlaps nothing.
  std::vector<double> my_box(2 * dim);
  for (std::size_t k = 0; k < dim; ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t i = 0; i < n; ++i) {
      lo = std::min(lo, local_coords[i * dim + k]);
      hi = std::max(hi, local_coords[i * dim + k]);
    }
    my_box[k] = lo;
    my_box[dim + k] = hi;
  }
  const std::vector<double> all_boxes = comm.allgatherv(my_box);

  HaloResult out;
  out.rank_boxes.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    Box b(dim);
    const double* lo = all_boxes.data() + static_cast<std::size_t>(r) * 2 * dim;
    const double* hi = lo + dim;
    // Reconstruct via expand of the two corner points; an empty rank's
    // inverted min/max yields an invalid box, which we keep as-is (it
    // overlaps nothing because lo > hi).
    std::vector<double> corner_lo(lo, lo + dim), corner_hi(hi, hi + dim);
    if (corner_lo[0] <= corner_hi[0]) {
      b.expand(std::span<const double>(corner_lo));
      b.expand(std::span<const double>(corner_hi));
    }
    out.rank_boxes.push_back(std::move(b));
  }

  // 2. For every other rank, ship my points within eps of its box.
  const double eps2 = eps * eps;
  std::vector<std::vector<double>> ship_c(static_cast<std::size_t>(p));
  std::vector<std::vector<std::uint64_t>> ship_g(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    const Box& b = out.rank_boxes[static_cast<std::size_t>(r)];
    if (!b.valid()) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> pt{local_coords.data() + i * dim, dim};
      if (b.min_sq_dist(pt) <= eps2) {
        ship_c[static_cast<std::size_t>(r)].insert(
            ship_c[static_cast<std::size_t>(r)].end(), pt.begin(), pt.end());
        ship_g[static_cast<std::size_t>(r)].push_back(local_gids[i]);
      }
    }
  }

  const auto in_c = comm.alltoallv(ship_c);
  const auto in_g = comm.alltoallv(ship_g);
  for (int r = 0; r < p; ++r) {
    const auto& cs = in_c[static_cast<std::size_t>(r)];
    const auto& gs = in_g[static_cast<std::size_t>(r)];
    out.coords.insert(out.coords.end(), cs.begin(), cs.end());
    out.gids.insert(out.gids.end(), gs.begin(), gs.end());
    out.owner.insert(out.owner.end(), gs.size(), r);
  }
  return out;
}

}  // namespace udb
