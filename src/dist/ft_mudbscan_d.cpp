#include "dist/ft_mudbscan_d.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "common/runguard.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"
#include "core/mudbscan_engine.hpp"
#include "dist/checkpoint.hpp"
#include "dist/halo.hpp"
#include "dist/kd_partition.hpp"

namespace udb {

namespace {

// Everything one attempt shares across its rank threads. Each rank writes
// only its own checkpoint slot and its own gids in the result arrays, so the
// only synchronized member is the stats aggregate.
struct AttemptContext {
  const Dataset* global = nullptr;
  DbscanParams params;
  const FtConfig* cfg = nullptr;
  CheckpointStore* store = nullptr;
  const std::vector<int>* logical_of = nullptr;  // comm rank -> logical rank
  const std::vector<int>* comm_of = nullptr;     // logical rank -> comm rank
  const std::vector<int>* owner_now = nullptr;   // logical rank -> logical
  ClusteringResult* result = nullptr;
  MuDbscanDStats* agg = nullptr;
  std::mutex* agg_mu = nullptr;
  std::atomic<std::uint64_t>* ckpt_bytes = nullptr;
};

void run_rank(mpi::Comm& comm, const AttemptContext& ctx) {
  const int p = comm.size();
  const int me = comm.rank();
  const int logical = (*ctx.logical_of)[static_cast<std::size_t>(me)];
  const Dataset& global = *ctx.global;
  const std::size_t dim = global.dim();
  const std::size_t n = global.size();
  const double eps = ctx.params.eps;
  CheckpointStore& store = *ctx.store;

  const auto charge_ckpt = [&](std::size_t bytes) {
    comm.charge(static_cast<double>(bytes) * ctx.cfg->checkpoint_beta);
    ctx.ckpt_bytes->fetch_add(bytes);
  };

  // ---- phase 1: partition (snapshot reused verbatim on recovery) ---------
  comm.fault_point(kFtPointPartition);
  double t0 = comm.vtime();
  PartitionCkpt& pc = store.partition(logical);
  if (!pc.valid) {
    // Fresh start (first attempt or full restart): contiguous initial block
    // of the shared input, then the collective kd partitioning. Partition
    // validity is all-or-nothing across alive ranks, so every rank takes the
    // same branch and the collective stays aligned.
    const std::size_t lo =
        n * static_cast<std::size_t>(me) / static_cast<std::size_t>(p);
    const std::size_t hi =
        n * (static_cast<std::size_t>(me) + 1) / static_cast<std::size_t>(p);
    std::vector<double> coords(
        global.raw().begin() + static_cast<std::ptrdiff_t>(lo * dim),
        global.raw().begin() + static_cast<std::ptrdiff_t>(hi * dim));
    std::vector<std::uint64_t> gids(hi - lo);
    std::iota(gids.begin(), gids.end(), lo);
    PartitionResult part =
        kd_partition(comm, dim, std::move(coords), std::move(gids));
    pc.coords = std::move(part.coords);
    pc.gids = std::move(part.gids);
    pc.valid = true;
    charge_ckpt(pc.bytes());
  }
  const double t_partition = comm.vtime() - t0;
  comm.barrier();

  // ---- phase 2: halo exchange --------------------------------------------
  comm.fault_point(kFtPointHalo);
  t0 = comm.vtime();
  // The strip exchange re-runs collectively every attempt: that is how an
  // adopter's grown region receives its complete eps-halo. A rank with a
  // valid halo snapshot keeps the snapshot — its bounding box is unchanged,
  // so the freshly received strip is the same point set (possibly reordered,
  // and the local-clustering snapshot is index-order dependent) — and takes
  // only the current rank boxes from the fresh exchange.
  HaloResult fresh = exchange_halo(comm, dim, pc.coords, pc.gids, eps);
  HaloCkpt& hc = store.halo(logical);
  if (!hc.valid) {
    hc.coords = std::move(fresh.coords);
    hc.gids = std::move(fresh.gids);
    hc.owner_logical.resize(fresh.owner.size());
    for (std::size_t i = 0; i < fresh.owner.size(); ++i)
      hc.owner_logical[i] =
          (*ctx.logical_of)[static_cast<std::size_t>(fresh.owner[i])];
    hc.valid = true;
  }
  charge_ckpt(hc.bytes());
  const std::vector<Box> rank_boxes = std::move(fresh.rank_boxes);
  // Route each halo copy to its *current* owner: the rank that holds the
  // point locally in this attempt (a dead owner's points belong to its
  // adopter), expressed in this attempt's communicator numbering.
  std::vector<int> halo_owner(hc.owner_logical.size());
  for (std::size_t i = 0; i < halo_owner.size(); ++i) {
    const int now =
        (*ctx.owner_now)[static_cast<std::size_t>(hc.owner_logical[i])];
    halo_owner[i] = (*ctx.comm_of)[static_cast<std::size_t>(now)];
  }
  const double t_halo = comm.vtime() - t0;
  comm.barrier();

  const std::size_t n_local = pc.gids.size();
  std::vector<double> combined = pc.coords;
  combined.insert(combined.end(), hc.coords.begin(), hc.coords.end());
  std::vector<std::uint64_t> gids = pc.gids;
  gids.insert(gids.end(), hc.gids.begin(), hc.gids.end());
  const std::size_t n_comb = gids.size();
  const Dataset comb_ds(dim, std::move(combined));

  // ---- phase 3: local clustering (pure compute; snapshot or replay) ------
  comm.fault_point(kFtPointLocal);
  double t_tree = 0.0, t_reach = 0.0, t_cluster = 0.0, t_post = 0.0;
  std::uint64_t queries = 0;
  LocalCkpt& lc = store.local(logical);
  UnionFind uf(n_comb);
  std::vector<std::uint8_t> is_core, assigned;
  if (lc.valid) {
    // Restore: replaying the saved roots reproduces the same partition of
    // combined indices (root identities may differ; the merge only groups).
    for (std::size_t i = 0; i < n_comb; ++i) {
      const PointId pt = static_cast<PointId>(i);
      if (lc.uf_root[i] != pt) (void)uf.union_sets(pt, lc.uf_root[i]);
    }
    is_core = lc.is_core;
    assigned = lc.assigned;
    charge_ckpt(lc.bytes());
  } else {
    MuDbscanEngine engine(comb_ds, ctx.params, ctx.cfg->mu);
    t0 = comm.vtime();
    engine.build_tree();
    t_tree = comm.vtime() - t0;
    t0 = comm.vtime();
    engine.find_reachable();
    t_reach = comm.vtime() - t0;
    t0 = comm.vtime();
    engine.cluster();
    t_cluster = comm.vtime() - t0;
    t0 = comm.vtime();
    engine.post_process();
    t_post = comm.vtime() - t0;
    queries = engine.stats.queries_performed;

    UnionFind& euf = engine.uf();
    lc.uf_root.resize(n_comb);
    for (std::size_t i = 0; i < n_comb; ++i)
      lc.uf_root[i] = euf.find(static_cast<PointId>(i));
    lc.is_core = engine.core_flags();
    lc.assigned = engine.assigned_flags();
    lc.valid = true;
    charge_ckpt(lc.bytes());
    for (std::size_t i = 0; i < n_comb; ++i) {
      const PointId pt = static_cast<PointId>(i);
      if (lc.uf_root[i] != pt) (void)uf.union_sets(pt, lc.uf_root[i]);
    }
    is_core = lc.is_core;
    assigned = lc.assigned;
  }
  comm.barrier();

  // ---- phase 4: merge (always replayed — it is the global phase) ---------
  comm.fault_point(kFtPointMerge);
  t0 = comm.vtime();
  MergeStats merge_stats;
  DistClustering local = merge_local_clusterings(
      comm, dim, eps, comb_ds.raw(), n_local, gids, halo_owner, rank_boxes,
      uf, is_core, assigned, &merge_stats, ctx.cfg->merge_strategy);
  const double t_merge = comm.vtime() - t0;

  for (std::size_t i = 0; i < n_local; ++i) {
    ctx.result->label[gids[i]] = local.label[i];
    ctx.result->is_core[gids[i]] = local.is_core[i];
  }

  // Phase makespans + summed counters, as in the fault-free driver. Only the
  // successful attempt's aggregate is consumed.
  const double m_partition = comm.allreduce_max(t_partition);
  const double m_halo = comm.allreduce_max(t_halo);
  const double m_tree = comm.allreduce_max(t_tree);
  const double m_reach = comm.allreduce_max(t_reach);
  const double m_cluster = comm.allreduce_max(t_cluster);
  const double m_post = comm.allreduce_max(t_post);
  const double m_merge = comm.allreduce_max(t_merge);
  const std::int64_t halo_total = comm.allreduce_sum(
      static_cast<std::int64_t>(n_comb - n_local));
  const std::int64_t edges_total =
      comm.allreduce_sum(static_cast<std::int64_t>(merge_stats.cross_edges));
  const std::int64_t queries_total =
      comm.allreduce_sum(static_cast<std::int64_t>(queries));

  if (me == 0) {
    std::lock_guard<std::mutex> lock(*ctx.agg_mu);
    ctx.agg->t_partition = m_partition;
    ctx.agg->t_halo = m_halo;
    ctx.agg->t_tree = m_tree;
    ctx.agg->t_reach = m_reach;
    ctx.agg->t_cluster = m_cluster;
    ctx.agg->t_post = m_post;
    ctx.agg->t_merge = m_merge;
    ctx.agg->halo_points_total = static_cast<std::uint64_t>(halo_total);
    ctx.agg->cross_edges = static_cast<std::uint64_t>(edges_total);
    ctx.agg->union_pairs = merge_stats.union_pairs;
    ctx.agg->queries_performed = static_cast<std::uint64_t>(queries_total);
  }
}

}  // namespace

ClusteringResult mudbscan_d_ft(const Dataset& global,
                               const DbscanParams& params, int nranks,
                               const FtConfig& cfg, FtStats* stats) {
  if (nranks < 1)
    throw std::invalid_argument("mudbscan_d_ft: nranks must be >= 1");
  const std::size_t n = global.size();

  ClusteringResult result;
  result.label.assign(n, kNoise);
  result.is_core.assign(n, 0);

  CheckpointStore store(nranks);
  std::vector<int> alive(static_cast<std::size_t>(nranks));
  std::iota(alive.begin(), alive.end(), 0);
  std::vector<int> owner_now(static_cast<std::size_t>(nranks));
  std::iota(owner_now.begin(), owner_now.end(), 0);

  FtStats ft;
  std::atomic<std::uint64_t> ckpt_bytes{0};
  WallTimer wall;
  const int max_attempts = cfg.max_attempts > 0 ? cfg.max_attempts : nranks + 2;
  bool success = false;

  // Run deadline: prefer the guard shared with the rank engines (it also
  // carries the cancel token and memory budget); a bare cfg.deadline_seconds
  // arms a driver-private guard.
  RunGuard local_guard;
  RunGuard* guard = cfg.mu.guard;
  if (!guard && cfg.deadline_seconds > 0.0) {
    local_guard.arm(RunLimits{cfg.deadline_seconds, 0});
    guard = &local_guard;
  }

  for (int attempt = 0; attempt < max_attempts && !success; ++attempt) {
    if (guard) guard->check_throw("ft attempt start");
    ++ft.attempts;
    const int p = static_cast<int>(alive.size());
    std::vector<int> comm_of(static_cast<std::size_t>(nranks), -1);
    for (int i = 0; i < p; ++i)
      comm_of[static_cast<std::size_t>(alive[static_cast<std::size_t>(i)])] = i;

    // Per-attempt plan: crash/slow specs of dead ranks are dropped, the rest
    // are translated to the attempt's communicator numbering, and message
    // faults are re-rolled per attempt (a retry of the same phase must not
    // deterministically hit the identical loss pattern forever).
    mpi::FaultPlan plan = cfg.plan;
    plan.seed = attempt == 0 ? cfg.plan.seed
                             : mpi::fault_mix(cfg.plan.seed +
                                              static_cast<std::uint64_t>(attempt));
    plan.crashes.clear();
    for (const mpi::CrashSpec& c : cfg.plan.crashes) {
      if (c.rank < 0 || c.rank >= nranks) continue;
      if (comm_of[static_cast<std::size_t>(c.rank)] < 0) continue;
      mpi::CrashSpec cc = c;
      cc.rank = comm_of[static_cast<std::size_t>(c.rank)];
      plan.crashes.push_back(std::move(cc));
    }
    plan.slowdowns.clear();
    for (const mpi::SlowSpec& s : cfg.plan.slowdowns) {
      if (s.rank < 0 || s.rank >= nranks) continue;
      if (comm_of[static_cast<std::size_t>(s.rank)] < 0) continue;
      mpi::SlowSpec ss = s;
      ss.rank = comm_of[static_cast<std::size_t>(s.rank)];
      plan.slowdowns.push_back(ss);
    }

    // Failure-detection timeout from the remaining run deadline: never block
    // a recv longer than half the time the run has left (floor 50 ms keeps
    // detection robust against scheduler jitter), instead of the plan's
    // one-size-fits-all constant. Without a deadline the constant stands.
    if (guard && guard->has_deadline()) {
      const double budget = std::max(0.05, guard->remaining_seconds() / 2.0);
      if (plan.recv_timeout_real < 0.0 || plan.recv_timeout_real > budget)
        plan.recv_timeout_real = budget;
    }

    mpi::Runtime rt(p, cfg.cost);
    rt.set_fault_plan(std::move(plan));

    MuDbscanDStats agg;
    std::mutex agg_mu;
    std::atomic<bool> attempt_failed{false};

    AttemptContext ctx;
    ctx.global = &global;
    ctx.params = params;
    ctx.cfg = &cfg;
    ctx.store = &store;
    ctx.logical_of = &alive;
    ctx.comm_of = &comm_of;
    ctx.owner_now = &owner_now;
    ctx.result = &result;
    ctx.agg = &agg;
    ctx.agg_mu = &agg_mu;
    ctx.ckpt_bytes = &ckpt_bytes;

    rt.run([&](mpi::Comm& comm) {
      try {
        run_rank(comm, ctx);
      } catch (const mpi::TimeoutError&) {
        // A peer stopped talking (crashed rank or lost message): abort the
        // attempt everywhere so no survivor stays blocked in a collective.
        comm.abort_attempt();
        attempt_failed.store(true);
      } catch (const mpi::AttemptAbortedError&) {
        attempt_failed.store(true);
      }
    });

    ft.vtime_total += rt.makespan();
    ft.faults += rt.fault_counts();

    const std::vector<int> crashed_comm = rt.crashed_ranks();
    if (crashed_comm.empty() && !attempt_failed.load()) {
      success = true;
      ft.vtime_final_attempt = rt.makespan();
      ft.survivor_count = p;
      ft.dist = agg;
      break;
    }

    // ---- recovery bookkeeping (single-threaded, between attempts) --------
    std::vector<int> dead;
    for (int cr : crashed_comm) {
      const int d = alive[static_cast<std::size_t>(cr)];
      const char* phase = !store.partition(d).valid ? kFtPointPartition
                          : !store.halo(d).valid    ? kFtPointHalo
                          : !store.local(d).valid   ? kFtPointLocal
                                                    : kFtPointMerge;
      ft.crashed_ranks.push_back(d);
      ft.crash_phases.emplace_back(phase);
      dead.push_back(d);
    }
    for (int d : dead)
      alive.erase(std::remove(alive.begin(), alive.end(), d), alive.end());
    if (alive.empty())
      throw StatusError(UnavailableError("mudbscan_d_ft: every rank failed"));

    bool full_restart = false;
    for (int d : dead)
      if (!store.partition(d).valid) full_restart = true;
    if (full_restart) {
      // The dead rank died before its partition snapshot existed: its block
      // assignment is unrecoverable, so the survivors restart the pipeline
      // from the shared input.
      store.clear();
      ft.full_restarts = true;
      for (int r : alive) owner_now[static_cast<std::size_t>(r)] = r;
    } else {
      for (int d : dead) {
        // Adopt the dead rank's partition block wholesale at the survivor
        // with the fewest points (deterministic; ties to the lowest id).
        // Only the adopter's halo/local snapshots are invalidated — every
        // other survivor replays nothing.
        int adopter = alive.front();
        for (int r : alive)
          if (store.partition(r).gids.size() <
              store.partition(adopter).gids.size())
            adopter = r;
        PartitionCkpt& ap = store.partition(adopter);
        PartitionCkpt& dp = store.partition(d);
        ap.coords.insert(ap.coords.end(), dp.coords.begin(), dp.coords.end());
        ap.gids.insert(ap.gids.end(), dp.gids.begin(), dp.gids.end());
        dp = {};
        store.halo(d) = {};
        store.local(d) = {};
        store.halo(adopter) = {};
        store.local(adopter) = {};
        for (int r = 0; r < nranks; ++r)
          if (owner_now[static_cast<std::size_t>(r)] == d)
            owner_now[static_cast<std::size_t>(r)] = adopter;
      }
    }
  }

  if (!success) {
    if (guard && guard->has_deadline() && guard->remaining_seconds() <= 0.0)
      throw StatusError(DeadlineExceededError(
          "mudbscan_d_ft: deadline exceeded after " +
          std::to_string(ft.attempts) + " attempts"));
    throw StatusError(UnavailableError(
        "mudbscan_d_ft: no attempt completed within " +
        std::to_string(max_attempts) + " attempts"));
  }

  ft.checkpoint_bytes = ckpt_bytes.load();
  ft.dist.wall_seconds = wall.seconds();
  if (stats) *stats = ft;
  return result;
}

}  // namespace udb
