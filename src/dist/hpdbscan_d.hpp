// HPDBSCAN-like distributed baseline (Götz et al., MLHPC'15 — rebuilt, see
// DESIGN.md §2): grid-indexed distributed DBSCAN. Cells reduce the *search
// space* of each query but, unlike µDBSCAN and GridDBSCAN, the number of
// queries is not reduced — every point runs one. Unlike the authors' code
// (which the paper observed to deviate from classical DBSCAN), this rebuild
// is exact, so it serves purely as the fast-grid-competitor column of
// Table V.

#pragma once

#include "common/dataset.hpp"
#include "metrics/clustering.hpp"
#include "mpi/minimpi.hpp"

namespace udb {

struct HpdbscanDStats {
  double t_partition = 0.0;
  double t_halo = 0.0;
  double t_build = 0.0;    // grid construction
  double t_cluster = 0.0;  // query + union pass
  double t_merge = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t queries_performed = 0;

  [[nodiscard]] double total() const noexcept {
    return t_halo + t_build + t_cluster + t_merge;
  }
};

[[nodiscard]] ClusteringResult hpdbscan_d(const Dataset& global,
                                          const DbscanParams& params,
                                          int nranks,
                                          HpdbscanDStats* stats = nullptr,
                                          mpi::CostModel cost = {});

}  // namespace udb
