// Shared scaffolding for the distributed algorithms: every rank takes its
// contiguous slice of the input (standing in for the paper's parallel I/O),
// runs the sampling-based kd partitioning, and exchanges eps-halos. The
// result is the combined local+halo dataset each local clustering algorithm
// operates on.

#pragma once

#include <vector>

#include "common/dataset.hpp"
#include "dist/halo.hpp"
#include "dist/kd_partition.hpp"
#include "mpi/minimpi.hpp"

namespace udb {

struct LocalSetup {
  Dataset combined;  // local points first, then halo copies
  std::size_t n_local = 0;
  std::vector<std::uint64_t> gids;  // combined (local + halo)
  std::vector<int> halo_owner;      // owner rank per halo point
  std::vector<Box> rank_boxes;
  double t_partition = 0.0;  // this rank's virtual time in partitioning
  double t_halo = 0.0;       // ... and in the halo exchange
};

inline LocalSetup prepare_local(mpi::Comm& comm, const Dataset& global,
                                double eps,
                                const PartitionConfig& pcfg = {}) {
  const int p = comm.size();
  const int me = comm.rank();
  const std::size_t n = global.size();
  const std::size_t dim = global.dim();

  // Contiguous initial blocks (the arbitrary pre-partitioning order).
  const std::size_t lo = n * static_cast<std::size_t>(me) / static_cast<std::size_t>(p);
  const std::size_t hi =
      n * (static_cast<std::size_t>(me) + 1) / static_cast<std::size_t>(p);
  std::vector<double> coords(global.raw().begin() + static_cast<std::ptrdiff_t>(lo * dim),
                             global.raw().begin() + static_cast<std::ptrdiff_t>(hi * dim));
  std::vector<std::uint64_t> gids(hi - lo);
  for (std::size_t i = 0; i < gids.size(); ++i) gids[i] = lo + i;

  // Phase times are this rank's own virtual-time delta; barriers between
  // phases stop one phase's load imbalance from bleeding into the next
  // phase's measurement (the reported per-phase makespan is the allreduce
  // max of these deltas).
  LocalSetup out;
  const double t0 = comm.vtime();
  PartitionResult part =
      kd_partition(comm, dim, std::move(coords), std::move(gids), pcfg);
  out.t_partition = comm.vtime() - t0;
  comm.barrier();

  const double t1 = comm.vtime();
  HaloResult halo = exchange_halo(comm, dim, part.coords, part.gids, eps);
  out.t_halo = comm.vtime() - t1;
  comm.barrier();

  out.n_local = part.gids.size();
  out.gids = std::move(part.gids);
  out.gids.insert(out.gids.end(), halo.gids.begin(), halo.gids.end());
  out.halo_owner = std::move(halo.owner);
  out.rank_boxes = std::move(halo.rank_boxes);

  std::vector<double> combined = std::move(part.coords);
  combined.insert(combined.end(), halo.coords.begin(), halo.coords.end());
  out.combined = Dataset(dim, std::move(combined));
  return out;
}

// Scatters a rank's final local labels/core flags into the global result
// arrays (each gid is written by exactly one rank; no synchronization
// needed).
inline void scatter_result(const LocalSetup& setup,
                           const std::vector<std::int64_t>& label,
                           const std::vector<std::uint8_t>& is_core,
                           std::vector<std::int64_t>& global_label,
                           std::vector<std::uint8_t>& global_core) {
  for (std::size_t i = 0; i < setup.n_local; ++i) {
    global_label[setup.gids[i]] = label[i];
    global_core[setup.gids[i]] = is_core[i];
  }
}

}  // namespace udb
