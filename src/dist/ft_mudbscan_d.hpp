// Fault-tolerant µDBSCAN-D: the distributed algorithm of dist/mudbscan_d.hpp
// hardened against injected rank crashes and message faults (see
// docs/FAULT_MODEL.md). The driver is phase-checkpointed — after partition,
// halo exchange, and local clustering each rank snapshots its phase output to
// the CheckpointStore (modeled stable storage) — and runs in attempts:
//
//   attempt:  partition -> halo -> local µDBSCAN -> merge
//             (each phase prefixed by a named fault point: "partition",
//             "halo", "local", "merge")
//   on a detected rank failure (recv TimeoutError), survivors abort the
//   attempt; the coordinator reassigns the dead rank's partition block to
//   the survivor with the fewest points and starts a recovery attempt over
//   the survivor communicator. Survivors whose point set did not change
//   restore their halo and local-clustering snapshots and replay nothing;
//   the adopter recomputes its halo and local clustering; the merge phase
//   always re-runs (it is the global phase). If the dead rank died before
//   its partition snapshot existed, every snapshot is dropped and the
//   pipeline restarts from scratch over the survivors.
//
// The output is the exact DBSCAN clustering (same core set, same core
// partition, same noise set) regardless of which ranks die when — the
// pipeline is exact for every partition shape, and recovery only changes the
// partition shape.

#pragma once

#include <string>
#include <vector>

#include "common/dataset.hpp"
#include "core/mudbscan.hpp"
#include "dist/merge.hpp"
#include "dist/mudbscan_d.hpp"
#include "metrics/clustering.hpp"
#include "mpi/minimpi.hpp"

namespace udb {

// Fault-point names the driver announces (usable in FaultPlan::CrashSpec).
inline constexpr const char* kFtPointPartition = "partition";
inline constexpr const char* kFtPointHalo = "halo";
inline constexpr const char* kFtPointLocal = "local";
inline constexpr const char* kFtPointMerge = "merge";

struct FtConfig {
  mpi::FaultPlan plan;  // faults to inject (default: none)
  MuDbscanConfig mu;
  mpi::CostModel cost;
  MergeStrategy merge_strategy = MergeStrategy::AllGatherPairs;
  int max_attempts = 0;  // 0 -> nranks + 2
  // Virtual-time cost per checkpointed byte (write and restore), modeling
  // the snapshot I/O a real deployment would pay (~1 GB/s default).
  double checkpoint_beta = 1e-9;
  // Wall-clock deadline for the whole run, attempts included (<= 0: none;
  // when mu.guard carries a deadline it takes precedence). Instead of the
  // plan's ad-hoc recv_timeout_real constant, each attempt's failure-detection
  // timeout is derived from the *remaining* deadline, so a run that is almost
  // out of time detects dead peers fast instead of blocking past its budget,
  // and the driver surfaces DEADLINE_EXCEEDED between attempts rather than
  // burning max_attempts after time ran out.
  double deadline_seconds = 0.0;
};

struct FtStats {
  int attempts = 0;
  int survivor_count = 0;
  bool full_restarts = false;  // some recovery could not reuse checkpoints
  std::vector<int> crashed_ranks;        // logical ids, in detection order
  std::vector<std::string> crash_phases; // phase the rank died in
  double vtime_total = 0.0;         // summed makespans over all attempts
  double vtime_final_attempt = 0.0; // makespan of the successful attempt
  std::uint64_t checkpoint_bytes = 0;
  mpi::FaultCounts faults;      // aggregated over all attempts
  MuDbscanDStats dist;          // phase stats of the successful attempt
};

// Runs on `nranks` simulated ranks under cfg.plan's faults and returns the
// exact global clustering. Throws if every rank dies or cfg.max_attempts
// recovery attempts are exhausted (e.g. persistent unreliable-transport
// message loss).
[[nodiscard]] ClusteringResult mudbscan_d_ft(const Dataset& global,
                                             const DbscanParams& params,
                                             int nranks,
                                             const FtConfig& cfg = {},
                                             FtStats* stats = nullptr);

}  // namespace udb
