#include "dist/checkpoint.hpp"

#include <cstring>
#include <limits>
#include <span>

#include "common/vfs.hpp"
#include "serve/crc32.hpp"
#include "serve/wire.hpp"

namespace udb {

namespace {

// Spill layout: magic "UDBC" | u32 version | u64 payload_bytes | payload |
// u32 crc32(payload). Payload: u32 nranks, then per logical rank the three
// phase slots in order, each a u8 valid flag followed by length-prefixed
// arrays. Same rejection discipline as the model snapshot codec: size
// mismatch, CRC mismatch, or any length that disagrees with the bytes
// present is DATA_LOSS, never a partial store.
constexpr char kCkptMagic[4] = {'U', 'D', 'B', 'C'};
constexpr std::uint32_t kCkptVersion = 1;
constexpr std::size_t kCkptHeaderBytes = 4 + 4 + 8;

template <typename T>
void put_array(serve::ByteWriter& w, const std::vector<T>& v) {
  w.u64(v.size());
  w.raw(v.data(), v.size() * sizeof(T));
}

template <typename T>
[[nodiscard]] bool get_array(serve::ByteReader& r, std::vector<T>& v) {
  std::uint64_t n = 0;
  if (!r.u64(n)) return false;
  if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) return false;
  return r.array(v, static_cast<std::size_t>(n));
}

}  // namespace

Status CheckpointStore::save_to(const std::string& path) const {
  serve::ByteWriter payload;
  payload.u32(static_cast<std::uint32_t>(nranks()));
  for (std::size_t r = 0; r < partition_.size(); ++r) {
    const PartitionCkpt& p = partition_[r];
    payload.u8(p.valid ? 1 : 0);
    put_array(payload, p.coords);
    put_array(payload, p.gids);
    const HaloCkpt& h = halo_[r];
    payload.u8(h.valid ? 1 : 0);
    put_array(payload, h.coords);
    put_array(payload, h.gids);
    put_array(payload, h.owner_logical);
    const LocalCkpt& l = local_[r];
    payload.u8(l.valid ? 1 : 0);
    put_array(payload, l.uf_root);
    put_array(payload, l.is_core);
    put_array(payload, l.assigned);
  }

  serve::ByteWriter out;
  out.raw(kCkptMagic, sizeof kCkptMagic);
  out.u32(kCkptVersion);
  out.u64(payload.size());
  out.raw(payload.data().data(), payload.size());
  out.u32(serve::crc32(payload.data().data(), payload.size()));
  return vfs::write_file_atomic(path, out.data().data(), out.size());
}

StatusOr<CheckpointStore> CheckpointStore::load_from(const std::string& path) {
  auto bytes = vfs::read_file(path);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() < kCkptHeaderBytes + 4)
    return DataLossError("checkpoint spill " + path +
                         " too small to hold a header");
  serve::ByteReader header{
      std::span<const std::uint8_t>(bytes->data(), kCkptHeaderBytes)};
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  if (!header.raw(magic, sizeof magic) || !header.u32(version) ||
      !header.u64(payload_bytes) ||
      std::memcmp(magic, kCkptMagic, sizeof magic) != 0)
    return DataLossError("checkpoint spill " + path +
                         " is not a checkpoint spill (bad magic)");
  if (version != kCkptVersion)
    return DataLossError("checkpoint spill " + path + " is version " +
                         std::to_string(version) + ", this build reads " +
                         std::to_string(kCkptVersion));
  if (payload_bytes != bytes->size() - kCkptHeaderBytes - 4)
    return DataLossError("checkpoint spill " + path +
                         " size mismatch — truncated or padded");
  const std::uint8_t* payload = bytes->data() + kCkptHeaderBytes;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload + payload_bytes, sizeof stored_crc);
  if (serve::crc32(payload, static_cast<std::size_t>(payload_bytes)) !=
      stored_crc)
    return DataLossError("checkpoint spill " + path +
                         " fails its checksum — corrupted");

  serve::ByteReader r{std::span<const std::uint8_t>(
      payload, static_cast<std::size_t>(payload_bytes))};
  std::uint32_t nranks = 0;
  if (!r.u32(nranks) || nranks == 0 ||
      nranks > std::numeric_limits<int>::max())
    return DataLossError("checkpoint spill " + path + " has a bad rank count");

  CheckpointStore store(static_cast<int>(nranks));
  for (std::uint32_t rank = 0; rank < nranks; ++rank) {
    const int ri = static_cast<int>(rank);
    std::uint8_t valid = 0;
    PartitionCkpt& p = store.partition(ri);
    if (!r.u8(valid) || valid > 1 || !get_array(r, p.coords) ||
        !get_array(r, p.gids))
      return DataLossError("checkpoint spill " + path +
                           " truncated in partition slot " +
                           std::to_string(rank));
    p.valid = valid == 1;
    HaloCkpt& h = store.halo(ri);
    if (!r.u8(valid) || valid > 1 || !get_array(r, h.coords) ||
        !get_array(r, h.gids) || !get_array(r, h.owner_logical))
      return DataLossError("checkpoint spill " + path +
                           " truncated in halo slot " + std::to_string(rank));
    h.valid = valid == 1;
    LocalCkpt& l = store.local(ri);
    if (!r.u8(valid) || valid > 1 || !get_array(r, l.uf_root) ||
        !get_array(r, l.is_core) || !get_array(r, l.assigned))
      return DataLossError("checkpoint spill " + path +
                           " truncated in local slot " + std::to_string(rank));
    l.valid = valid == 1;
  }
  if (!r.done())
    return DataLossError("checkpoint spill " + path +
                         " has trailing bytes inside its payload");
  return store;
}

}  // namespace udb
