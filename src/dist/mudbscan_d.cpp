#include "dist/mudbscan_d.hpp"

#include <mutex>

#include "common/timer.hpp"
#include "core/mudbscan_engine.hpp"
#include "dist/driver_common.hpp"
#include "dist/merge.hpp"
#include "obs/trace.hpp"

namespace udb {

ClusteringResult mudbscan_d(const Dataset& global, const DbscanParams& params,
                            int nranks, MuDbscanDStats* stats,
                            const MuDbscanConfig& cfg, mpi::CostModel cost,
                            MergeStrategy merge_strategy) {
  mpi::Runtime rt(nranks, cost);
  const std::size_t n = global.size();

  ClusteringResult result;
  result.label.assign(n, kNoise);
  result.is_core.assign(n, 0);

  MuDbscanDStats agg;
  std::mutex agg_mu;
  WallTimer wall;

  rt.run([&](mpi::Comm& comm) {
    // Spans emitted by this rank's engine carry the rank as their trace pid,
    // so Perfetto renders one process lane per simulated rank.
    const int prev_pid = obs::set_trace_pid(comm.rank());
    LocalSetup setup = prepare_local(comm, global, params.eps);

    // Local µDBSCAN on local + halo points. Halo points participate fully:
    // their classification may undercount (their witnesses can lie outside
    // our halo) but never overcounts, so every local decision is globally
    // sound; the merge phase consults each halo point's owner for its
    // authoritative core status.
    // Barriers between phases keep each phase's reported makespan free of
    // the previous phase's imbalance (see driver_common.hpp).
    MuDbscanEngine engine(setup.combined, params, cfg);
    double t0 = comm.vtime();
    engine.build_tree();
    const double t_tree = comm.vtime() - t0;
    comm.barrier();
    t0 = comm.vtime();
    engine.find_reachable();
    const double t_reach = comm.vtime() - t0;
    comm.barrier();
    t0 = comm.vtime();
    engine.cluster();
    const double t_cluster = comm.vtime() - t0;
    comm.barrier();
    t0 = comm.vtime();
    engine.post_process();
    const double t_post = comm.vtime() - t0;
    comm.barrier();

    t0 = comm.vtime();
    MergeStats merge_stats;
    DistClustering local = merge_local_clusterings(
        comm, setup.combined.dim(), params.eps, setup.combined.raw(),
        setup.n_local, setup.gids, setup.halo_owner, setup.rank_boxes,
        engine.uf(), engine.core_flags(), engine.assigned_flags(),
        &merge_stats, merge_strategy);
    const double t_merge = comm.vtime() - t0;

    scatter_result(setup, local.label, local.is_core, result.label,
                   result.is_core);

    // Per-rank record, comm totals snapshotted before the reporting traffic
    // below so they reflect only algorithm communication.
    MuDbscanDRank mine;
    mine.rank = comm.rank();
    mine.n_local = setup.n_local;
    mine.n_halo = setup.gids.size() - setup.n_local;
    mine.t_partition = setup.t_partition;
    mine.t_halo = setup.t_halo;
    mine.t_tree = t_tree;
    mine.t_reach = t_reach;
    mine.t_cluster = t_cluster;
    mine.t_post = t_post;
    mine.t_merge = t_merge;
    mine.queries_performed = engine.stats.queries_performed;
    mine.comm = comm.comm_stats();
    std::vector<MuDbscanDRank> all_ranks =
        comm.allgatherv(std::vector<MuDbscanDRank>{mine});

    // Phase makespans + summed counters.
    const double m_partition = comm.allreduce_max(setup.t_partition);
    const double m_halo = comm.allreduce_max(setup.t_halo);
    const double m_tree = comm.allreduce_max(t_tree);
    const double m_reach = comm.allreduce_max(t_reach);
    const double m_cluster = comm.allreduce_max(t_cluster);
    const double m_post = comm.allreduce_max(t_post);
    const double m_merge = comm.allreduce_max(t_merge);
    const std::int64_t halo_total = comm.allreduce_sum(
        static_cast<std::int64_t>(setup.gids.size() - setup.n_local));
    const std::int64_t edges_total =
        comm.allreduce_sum(static_cast<std::int64_t>(merge_stats.cross_edges));
    const std::int64_t queries_total = comm.allreduce_sum(
        static_cast<std::int64_t>(engine.stats.queries_performed));

    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(agg_mu);
      agg.t_partition = m_partition;
      agg.t_halo = m_halo;
      agg.t_tree = m_tree;
      agg.t_reach = m_reach;
      agg.t_cluster = m_cluster;
      agg.t_post = m_post;
      agg.t_merge = m_merge;
      agg.halo_points_total = static_cast<std::uint64_t>(halo_total);
      agg.cross_edges = static_cast<std::uint64_t>(edges_total);
      agg.union_pairs = merge_stats.union_pairs;  // identical on every rank
      agg.queries_performed = static_cast<std::uint64_t>(queries_total);
      agg.ranks = std::move(all_ranks);
    }
    obs::set_trace_pid(prev_pid);
  });

  agg.wall_seconds = wall.seconds();
  if (stats) *stats = agg;
  return result;
}

}  // namespace udb
