// Halo (eps-extended strip) exchange, Section V-B: after partitioning, every
// rank receives copies of the remote points lying within eps of its local
// bounding region, so that every local point's eps-neighborhood is complete
// without further communication. Conservative and sufficient: a remote point
// within eps of *any* local point lies within eps of the local bounding box.

#pragma once

#include <cstdint>
#include <vector>

#include "common/box.hpp"
#include "mpi/minimpi.hpp"

namespace udb {

struct HaloResult {
  std::vector<double> coords;        // halo point coordinates (row-major)
  std::vector<std::uint64_t> gids;   // matching global ids
  std::vector<int> owner;            // owning rank of each halo point
  std::vector<Box> rank_boxes;       // every rank's local bounding box
};

// Collective over the full communicator.
[[nodiscard]] HaloResult exchange_halo(mpi::Comm& comm, std::size_t dim,
                                       const std::vector<double>& local_coords,
                                       const std::vector<std::uint64_t>& local_gids,
                                       double eps);

}  // namespace udb
