#include "dist/kd_partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/status.hpp"

namespace udb {

namespace {

// One rank's view of the recursive halving: current group is [base, base+g).
struct Group {
  int base;
  int size;
};

}  // namespace

PartitionResult kd_partition(mpi::Comm& comm, std::size_t dim,
                             std::vector<double> coords,
                             std::vector<std::uint64_t> gids,
                             const PartitionConfig& cfg) {
  if (coords.size() != gids.size() * dim)
    throw StatusError(
        InvalidArgumentError("kd_partition: coords/gids size mismatch"));
  const int me = comm.rank();

  Group grp{0, comm.size()};
  mpi::Tag tag = cfg.tag_base;

  while (grp.size > 1) {
    const int g_lo = grp.size / 2;
    const int g_hi = grp.size - g_lo;
    const bool in_lower = me < grp.base + g_lo;

    // 1. Axis with the largest spread across the group.
    std::vector<double> local_minmax(2 * dim);
    for (std::size_t k = 0; k < dim; ++k) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (std::size_t i = 0; i < gids.size(); ++i) {
        lo = std::min(lo, coords[i * dim + k]);
        hi = std::max(hi, coords[i * dim + k]);
      }
      local_minmax[k] = lo;
      local_minmax[dim + k] = hi;
    }
    std::vector<std::size_t> counts;
    const std::vector<double> all_minmax =
        comm.allgatherv(local_minmax, &counts, grp.base, grp.size);
    std::size_t axis = 0;
    double best_spread = -1.0;
    for (std::size_t k = 0; k < dim; ++k) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (int r = 0; r < grp.size; ++r) {
        lo = std::min(lo, all_minmax[static_cast<std::size_t>(r) * 2 * dim + k]);
        hi = std::max(hi,
                      all_minmax[static_cast<std::size_t>(r) * 2 * dim + dim + k]);
      }
      if (hi - lo > best_spread) {
        best_spread = hi - lo;
        axis = k;
      }
    }

    // 2. Split threshold: the g_lo/g quantile of a pooled per-rank sample
    // (the median for even groups — the paper's sampling-based median).
    std::vector<double> sample;
    const std::size_t take = std::min(cfg.sample_per_rank, gids.size());
    for (std::size_t i = 0; i < take; ++i) {
      // Deterministic stride sample: evenly spaced through the local block.
      const std::size_t idx = i * gids.size() / (take == 0 ? 1 : take);
      sample.push_back(coords[idx * dim + axis]);
    }
    std::vector<double> pooled =
        comm.allgatherv(sample, nullptr, grp.base, grp.size);
    double threshold = 0.0;
    if (pooled.empty()) {
      threshold = 0.0;  // degenerate group with no points anywhere
    } else {
      std::sort(pooled.begin(), pooled.end());
      const double q = static_cast<double>(g_lo) / static_cast<double>(grp.size);
      std::size_t pos = static_cast<std::size_t>(
          q * static_cast<double>(pooled.size()));
      if (pos >= pooled.size()) pos = pooled.size() - 1;
      threshold = pooled[pos];
    }

    // 3. Partition local points; ship the foreign half to a partner in the
    // other sub-group (cyclic mapping handles uneven halves).
    std::vector<double> keep_c, ship_c;
    std::vector<std::uint64_t> keep_g, ship_g;
    for (std::size_t i = 0; i < gids.size(); ++i) {
      const bool lower = coords[i * dim + axis] < threshold;
      auto& dst_c = (lower == in_lower) ? keep_c : ship_c;
      auto& dst_g = (lower == in_lower) ? keep_g : ship_g;
      dst_c.insert(dst_c.end(), coords.begin() + static_cast<std::ptrdiff_t>(i * dim),
                   coords.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim));
      dst_g.push_back(gids[i]);
    }

    int partner;
    if (in_lower) {
      const int my_off = me - grp.base;
      partner = grp.base + g_lo + (my_off % g_hi);
    } else {
      const int my_off = me - (grp.base + g_lo);
      partner = grp.base + (my_off % g_lo);
    }

    // Every rank sends exactly one (coords, gids) pair to its partner and
    // receives from every rank that maps onto it.
    comm.send(partner, tag, ship_c);
    comm.send(partner, tag + 1, ship_g);

    std::vector<int> senders;
    if (in_lower) {
      // Upper ranks whose cyclic partner is me.
      const int my_off = me - grp.base;
      for (int off = 0; off < g_hi; ++off)
        if (off % g_lo == my_off) senders.push_back(grp.base + g_lo + off);
    } else {
      const int my_off = me - (grp.base + g_lo);
      for (int off = 0; off < g_lo; ++off)
        if (off % g_hi == my_off) senders.push_back(grp.base + off);
    }
    coords = std::move(keep_c);
    gids = std::move(keep_g);
    for (int src : senders) {
      std::vector<double> in_c = comm.recv<double>(src, tag);
      std::vector<std::uint64_t> in_g = comm.recv<std::uint64_t>(src, tag + 1);
      coords.insert(coords.end(), in_c.begin(), in_c.end());
      gids.insert(gids.end(), in_g.begin(), in_g.end());
    }
    tag += 2;

    // 4. Narrow to my sub-group.
    if (in_lower) {
      grp.size = g_lo;
    } else {
      grp.base += g_lo;
      grp.size = g_hi;
    }
  }

  PartitionResult out;
  out.dim = dim;
  out.coords = std::move(coords);
  out.gids = std::move(gids);
  return out;
}

}  // namespace udb
