// Write-ahead log for streaming ingest (docs/ROBUSTNESS.md §Durability).
//
// StreamingMuDbscan keeps everything in memory; a crash between snapshot
// publishes loses every chunk ingested since the last one. The WAL closes
// that hole with the classic discipline:
//
//   ingest chunk  ->  append CRC-framed record (+ fsync)  ->  insert in RAM
//   publish snapshot generation  ->  reset() the WAL to empty
//   restart  ->  load newest intact generation, replay the WAL on top
//                (serve::recover_stream)
//
// Format (little-endian, all through common/vfs.* so fault injection and
// crash points cover every byte):
//
//   header   magic "UDBW" | u32 version | u64 dim | u64 epoch   (24 bytes)
//   record   u32 payload_len | u32 crc32(payload) | payload
//   payload  u8 type | u64 start_index | u64 count | count*dim f64 coords
//
// Record types: 0 = insert (count ingested points starting at start_index),
// 1 = tombstone (count deleted points, matched during replay by bitwise
// coordinate equality — see IncrementalMuDbscan::erase_equal; start_index is
// written as 0 and ignored). The header epoch ties a log to the snapshot
// generation it extends: reset(generation) stamps it, and recovery replays
// tombstone-bearing logs only when the epoch matches the loaded generation
// (docs/ROBUSTNESS.md §Deletes). Version-1 logs (16-byte header, no type
// byte, no epoch) are still replayed — as insert-only, epoch 0 — but the
// writer refuses to append to them: mixing typed records into an untyped log
// would make old readers mis-parse it.
//
// start_index is the stream insertion index of an insert record's first
// point.
// It makes recovery self-aligning across the publish/reset race: a crash
// after the snapshot generation publishes but before reset() leaves records
// the snapshot already covers — replay skips any point below the snapshot's
// count instead of double-ingesting it, and stops cleanly at a gap (which
// appears when a corrupt newest generation forces fallback to an older one).
//
// A record is *committed* once fully on disk (the append fsyncs by default).
// Replay accepts the longest valid prefix and reports the torn tail a crash
// mid-append leaves behind — those points were never acknowledged as durable,
// so dropping them keeps recovery an exact prefix of the ingestion sequence.
// Appended bytes are charged to the RunGuard memory budget (the WAL is part
// of the run's footprint; an unbounded log would defeat the budget's point).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/runguard.hpp"
#include "common/status.hpp"
#include "common/vfs.hpp"

namespace udb {

inline constexpr char kWalMagic[4] = {'U', 'D', 'B', 'W'};
inline constexpr std::uint32_t kWalVersion = 2;
inline constexpr std::size_t kWalHeaderBytes = 4 + 4 + 8 + 8;
// Version-1 logs (read-compat only): no epoch field, no record type byte.
inline constexpr std::size_t kWalV1HeaderBytes = 4 + 4 + 8;

enum class WalRecordType : std::uint8_t { kInsert = 0, kTombstone = 1 };

struct WalConfig {
  bool sync_each_append = true;  // fsync per record: the durability floor
  RunGuard* guard = nullptr;     // not owned; charged for appended bytes
};

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&&) noexcept;
  WalWriter& operator=(WalWriter&&) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Creates the log (header only) if missing. An existing log must carry a
  // matching header (DATA_LOSS otherwise); a torn tail from a previous crash
  // is cut back to the committed prefix (atomic rewrite) before appending
  // resumes, so new records always extend valid ones.
  [[nodiscard]] static StatusOr<WalWriter> open(const std::string& path,
                                                std::size_t dim,
                                                WalConfig cfg = {});

  // Appends one record of coords.size()/dim points starting at stream index
  // `start_index` (coords.size() must be a non-zero multiple of dim; all
  // values finite; within one log the records must be contiguous —
  // start_index == previous start + previous count). RESOURCE_EXHAUSTED if
  // the RunGuard budget cannot absorb the record *before* anything is
  // written.
  [[nodiscard]] Status append(std::uint64_t start_index,
                              std::span<const double> coords);

  // Appends one tombstone record of coords.size()/dim deleted points
  // (bitwise coordinates of the points to erase on replay; non-finite values
  // allowed — a tombstone must be able to name whatever was ingested).
  // Tombstones sit outside the insert contiguity chain: next_start() does
  // not advance.
  [[nodiscard]] Status append_delete(std::span<const double> coords);

  [[nodiscard]] Status sync();

  // Truncates the log to header-only (atomic rewrite + fsync) — called right
  // after a snapshot generation publishes, making the snapshot the new
  // durability floor — and stamps the header with that generation's epoch.
  // Releases the records' budget charge.
  [[nodiscard]] Status reset(std::uint64_t epoch = 0);

  [[nodiscard]] Status close();

  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  // Stream index the next record must start at (meaningful once the log
  // holds at least one record).
  [[nodiscard]] std::uint64_t next_start() const noexcept {
    return next_start_;
  }
  // Snapshot generation this log extends (0 until reset() stamps one).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  void release_charge() noexcept;
  [[nodiscard]] Status emit_record(WalRecordType type,
                                   std::uint64_t start_index,
                                   std::span<const double> coords);

  std::string path_;
  std::size_t dim_ = 0;
  WalConfig cfg_;
  vfs::File file_;  // owned append handle
  std::uint64_t records_ = 0;
  std::uint64_t insert_records_ = 0;  // records of type kInsert
  std::uint64_t bytes_ = 0;          // total file bytes incl. header
  std::uint64_t next_start_ = 0;     // contiguity check for append
  std::uint64_t epoch_ = 0;          // header epoch (snapshot generation)
  std::size_t charged_bytes_ = 0;    // currently charged to cfg_.guard
  bool open_ = false;
};

struct WalReplay {
  std::size_t dim = 0;
  std::vector<double> coords;           // committed points, append order
  std::vector<std::uint64_t> starts;    // per-record stream start index
  std::vector<std::uint64_t> counts;    // per-record point count
  std::vector<std::uint8_t> types;      // per-record WalRecordType
  std::uint64_t epoch = 0;              // header epoch (0 for v1 logs)
  std::uint64_t records = 0;            // committed records accepted
  std::uint64_t torn_bytes = 0;  // uncommitted tail dropped (crash artifact)

  // All committed coordinate rows, insert and tombstone records combined.
  [[nodiscard]] std::size_t points() const noexcept {
    return dim == 0 ? 0 : coords.size() / dim;
  }
  [[nodiscard]] bool has_tombstones() const noexcept {
    for (const std::uint8_t t : types)
      if (t == static_cast<std::uint8_t>(WalRecordType::kTombstone))
        return true;
    return false;
  }
};

// Reads the longest committed prefix. NOT_FOUND if the file does not exist
// (callers treat that as an empty log); DATA_LOSS if the header itself is
// unreadable or disagrees with `expected_dim` (0 accepts any dim). A torn or
// corrupt record ends the replay cleanly — everything before it is returned,
// the tail is counted in torn_bytes.
[[nodiscard]] StatusOr<WalReplay> replay_wal(const std::string& path,
                                             std::size_t expected_dim = 0);

}  // namespace udb
