#include "core/mudbscan.hpp"

#include <stdexcept>

#include "baselines/uf_labels.hpp"
#include "common/distance.hpp"
#include "common/timer.hpp"
#include "core/mudbscan_engine.hpp"

namespace udb {

MuDbscanEngine::MuDbscanEngine(const Dataset& ds, const DbscanParams& params,
                               MuDbscanConfig cfg)
    : ds_(&ds), params_(params), cfg_(cfg), uf_(ds.size()) {
  if (params_.min_pts == 0)
    throw std::invalid_argument("MuDbscan: MinPts must be >= 1");
  const std::size_t n = ds.size();
  is_core_.assign(n, 0);
  wndq_.assign(n, 0);
  assigned_.assign(n, 0);
}

void MuDbscanEngine::build_tree() {
  WallTimer timer;
  MuRTree::Config tcfg;
  tcfg.two_eps_rule = cfg_.two_eps_rule;
  tcfg.bulk_aux = cfg_.bulk_aux;
  tree_ = std::make_unique<MuRTree>(*ds_, params_.eps, tcfg);
  tree_->compute_inner_circles();
  stats.num_mcs = tree_->num_mcs();
  stats.t_tree = timer.seconds();
}

void MuDbscanEngine::find_reachable() {
  WallTimer timer;
  tree_->compute_reachable();
  stats.t_reach = timer.seconds();
}

void MuDbscanEngine::cluster() {
  WallTimer timer;
  const std::size_t n = ds_->size();
  const double eps = params_.eps;
  const double half2 = (eps / 2.0) * (eps / 2.0);
  const std::uint32_t min_pts = params_.min_pts;

  // --- Algorithm 4: PROCESS-MICRO-CLUSTERS ------------------------------
  // DMC: every inner-circle point is core (Lemma 1) and so is the centre
  // (its eps-ball contains IC plus itself); CMC: the centre is core
  // (Lemma 2). Either way all members are united with the centre — they are
  // directly density-reachable from it.
  for (McId z = 0; z < tree_->num_mcs(); ++z) {
    const MicroCluster& mc = tree_->mc(z);
    const McKind kind = mc.classify(min_pts);
    if (kind == McKind::Sparse) {
      ++stats.smc;
      continue;
    }
    if (kind == McKind::Dense) {
      ++stats.dmc;
      const double* c = ds_->ptr(mc.center);
      for (PointId q : mc.members) {
        if (q != mc.center &&
            sq_dist(c, ds_->ptr(q), ds_->dim()) >= half2)
          continue;  // outside the inner circle: border for the time being
        if (!wndq_[q]) {
          wndq_[q] = 1;
          is_core_[q] = 1;
          wndq_list_.push_back(q);
        }
      }
    } else {  // Core MC
      ++stats.cmc;
      if (!wndq_[mc.center]) {
        wndq_[mc.center] = 1;
        is_core_[mc.center] = 1;
        wndq_list_.push_back(mc.center);
      }
    }
    for (PointId q : mc.members) {
      uf_.union_sets(mc.center, q);
      assigned_[q] = 1;
    }
  }

  // --- Algorithm 6: PROCESS-REM-POINTS ----------------------------------
  std::vector<std::pair<PointId, double>> nbhd;
  for (std::size_t i = 0; i < n; ++i) {
    const PointId p = static_cast<PointId>(i);
    if (wndq_[p]) continue;  // query saved
    ++stats.queries_performed;

    nbhd.clear();
    if (cfg_.mbr_filtration) {
      tree_->query_neighborhood(p, eps, nbhd);
    } else {
      // Ablation: search every reachable MC's aux tree without the MBR
      // filter.
      const McId z = tree_->mc_of_point(p);
      const auto pt = ds_->point(p);
      for (McId r : tree_->mc(z).reach) {
        tree_->aux_tree(r).visit_ball(pt, eps, [&nbhd](PointId id, double d2) {
          nbhd.emplace_back(id, d2);
          return true;
        });
      }
    }

    if (nbhd.size() < min_pts) {
      // Non-core: border if some already-known core is in range, otherwise
      // provisional noise with the neighborhood remembered for Algorithm 8.
      bool attached = assigned_[p] != 0;
      if (!attached) {
        for (const auto& [q, d2] : nbhd) {
          if (is_core_[q]) {
            uf_.union_sets(q, p);
            assigned_[p] = 1;
            attached = true;
            break;
          }
        }
      }
      if (!attached) {
        noise_pts_.push_back(p);
        if (noise_off_.empty()) noise_off_.push_back(0);
        for (const auto& [q, d2] : nbhd)
          if (q != p) noise_nbrs_.push_back(q);
        noise_off_.push_back(static_cast<std::uint32_t>(noise_nbrs_.size()));
      }
      continue;
    }

    // Core point.
    is_core_[p] = 1;
    assigned_[p] = 1;

    // Dynamic wndq promotion (Algorithm 6 lines 18-21): if >= MinPts of the
    // neighbors sit strictly within eps/2 of p, they are pairwise strictly
    // within eps of each other, so each of them is core — no query needed.
    if (cfg_.dynamic_promotion) {
      std::size_t inner = 0;
      for (const auto& [q, d2] : nbhd)
        if (d2 < half2) ++inner;
      if (inner >= min_pts) {
        for (const auto& [q, d2] : nbhd) {
          if (d2 < half2 && !is_core_[q]) {
            is_core_[q] = 1;
            if (!wndq_[q]) {
              wndq_[q] = 1;
              wndq_list_.push_back(q);
            }
          }
        }
      }
    }

    for (const auto& [q, d2] : nbhd) {
      if (is_core_[q]) {
        uf_.union_sets(p, q);
        assigned_[q] = 1;
      } else if (!assigned_[q]) {
        uf_.union_sets(p, q);
        assigned_[q] = 1;
      }
    }
  }
  stats.wndq_core_points = wndq_list_.size();
  stats.t_cluster = timer.seconds();
}

void MuDbscanEngine::post_process() {
  WallTimer timer;
  const double eps2 = params_.eps * params_.eps;

  // --- Algorithm 7: POST-PROCESSING-CORE --------------------------------
  // wndq-core points never ran a query, so their unions with core points of
  // *other* clusters may be missing. For each, scan the filtered reachable
  // MCs and unite with any core point strictly within eps that is not yet in
  // the same set. (Distance is only computed for cores in a different set —
  // far cheaper than a neighborhood query.)
  for (PointId p : wndq_list_) {
    const McId z = tree_->mc_of_point(p);
    const auto pt = ds_->point(p);
    for (McId r : tree_->mc(z).reach) {
      if (cfg_.mbr_filtration &&
          !tree_->aux_tree(r).root_mbr().overlaps_ball(pt, params_.eps))
        continue;
      for (PointId q : tree_->mc(r).members) {
        if (!is_core_[q]) continue;
        if (uf_.find(q) == uf_.find(p)) continue;
        ++stats.post_core_distance_evals;
        if (sq_dist(pt.data(), ds_->ptr(q), ds_->dim()) < eps2)
          uf_.union_sets(p, q);
      }
    }
  }

  // --- Algorithm 8: POST-PROCESSING-NOISE -------------------------------
  // A provisional noise point whose stored neighborhood now contains a core
  // point (one promoted to wndq-core after the noise point was processed)
  // is in fact a border point.
  for (std::size_t i = 0; i < noise_pts_.size(); ++i) {
    const PointId p = noise_pts_[i];
    if (assigned_[p]) continue;
    for (std::uint32_t j = noise_off_[i]; j < noise_off_[i + 1]; ++j) {
      const PointId q = noise_nbrs_[j];
      if (is_core_[q]) {
        uf_.union_sets(q, p);
        assigned_[p] = 1;
        break;
      }
    }
  }
  stats.t_post = timer.seconds();
}

ClusteringResult MuDbscanEngine::extract_result() const {
  UnionFind& uf = const_cast<UnionFind&>(uf_);
  return extract_labels(uf, is_core_, assigned_);
}

void MuDbscanEngine::query_neighborhood(
    PointId p, std::vector<std::pair<PointId, double>>& out) const {
  tree_->query_neighborhood(p, params_.eps, out);
}

ClusteringResult mu_dbscan(const Dataset& ds, const DbscanParams& params,
                           MuDbscanStats* stats, const MuDbscanConfig& cfg) {
  MuDbscanEngine engine(ds, params, cfg);
  engine.run_all();
  if (stats) *stats = engine.stats;
  return engine.extract_result();
}

}  // namespace udb
