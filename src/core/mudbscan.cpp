#include "core/mudbscan.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "baselines/uf_labels.hpp"
#include "common/distance.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/mudbscan_engine.hpp"

namespace udb {

namespace {

// Atomic view of a byte flag shared between threads in the parallel phases.
inline std::atomic_ref<std::uint8_t> flag(std::vector<std::uint8_t>& v,
                                          PointId i) {
  return std::atomic_ref<std::uint8_t>(v[i]);
}

// Sequential-loop checkpoint stride (Algorithms 4/6/7/8). The parallel paths
// checkpoint per chunk via parallel_for_chunked instead.
constexpr std::size_t kSeqCheckStride = 1024;

}  // namespace

MuDbscanEngine::MuDbscanEngine(const Dataset& ds, const DbscanParams& params,
                               MuDbscanConfig cfg)
    : ds_(&ds), params_(params), cfg_(cfg), uf_(ds.size()) {
  if (params_.min_pts == 0)
    throw std::invalid_argument("MuDbscan: MinPts must be >= 1");
  const std::size_t n = ds.size();

  // Run-guard setup: an external guard is shared (distributed ranks all point
  // at the run's guard); limits without a guard get an engine-owned one.
  guard_ = cfg_.guard;
  if (guard_ == nullptr &&
      (cfg_.deadline_seconds > 0.0 || cfg_.mem_budget_bytes > 0)) {
    owned_guard_ = std::make_unique<RunGuard>(
        RunLimits{cfg_.deadline_seconds, cfg_.mem_budget_bytes});
    guard_ = owned_guard_.get();
  }
  // Per-point flag vectors (4 bytes) + the union-find parent array.
  if (guard_)
    flags_charge_.acquire_throw(guard_, n * (4 + sizeof(PointId)),
                                "engine flags + union-find");

  is_core_.assign(n, 0);
  wndq_.assign(n, 0);
  assigned_.assign(n, 0);
  // CSR invariant: noise_off_.size() == noise_pts_.size() + 1 from the start,
  // so the Algorithm 8 scan and per-thread merging need no lazy init.
  noise_off_.assign(1, 0);
  if (cfg_.num_threads > 1)
    pool_ = std::make_unique<ThreadPool>(cfg_.num_threads);
}

void MuDbscanEngine::build_tree() {
  WallTimer timer;
  MuRTree::Config tcfg;
  tcfg.two_eps_rule = cfg_.two_eps_rule;
  tcfg.bulk_aux = cfg_.bulk_aux;
  tcfg.guard = guard_;
  tree_ = std::make_unique<MuRTree>(*ds_, params_.eps, tcfg, pool_.get());
  tree_->compute_inner_circles(pool_.get());
  stats.num_mcs = tree_->num_mcs();
  stats.t_tree = timer.seconds();
}

void MuDbscanEngine::find_reachable() {
  WallTimer timer;
  tree_->compute_reachable(pool_.get());
  stats.t_reach = timer.seconds();
}

void MuDbscanEngine::cluster() {
  if (pool_) {
    cluster_parallel();
    return;
  }
  WallTimer timer;
  const std::size_t n = ds_->size();
  const double eps = params_.eps;
  const double half2 = (eps / 2.0) * (eps / 2.0);
  const std::uint32_t min_pts = params_.min_pts;

  // --- Algorithm 4: PROCESS-MICRO-CLUSTERS ------------------------------
  // DMC: every inner-circle point is core (Lemma 1) and so is the centre
  // (its eps-ball contains IC plus itself); CMC: the centre is core
  // (Lemma 2). Either way all members are united with the centre — they are
  // directly density-reachable from it.
  for (McId z = 0; z < tree_->num_mcs(); ++z) {
    if (guard_ && z % kSeqCheckStride == 0)
      guard_->check_throw("algorithm 4");
    const MicroCluster& mc = tree_->mc(z);
    const McKind kind = mc.classify(min_pts);
    if (kind == McKind::Sparse) {
      ++stats.smc;
      continue;
    }
    if (kind == McKind::Dense) {
      ++stats.dmc;
      const double* c = ds_->ptr(mc.center);
      for (PointId q : mc.members) {
        if (q != mc.center &&
            sq_dist(c, ds_->ptr(q), ds_->dim()) >= half2)
          continue;  // outside the inner circle: border for the time being
        if (!wndq_[q]) {
          wndq_[q] = 1;
          is_core_[q] = 1;
          wndq_list_.push_back(q);
        }
      }
    } else {  // Core MC
      ++stats.cmc;
      if (!wndq_[mc.center]) {
        wndq_[mc.center] = 1;
        is_core_[mc.center] = 1;
        wndq_list_.push_back(mc.center);
      }
    }
    for (PointId q : mc.members) {
      uf_.union_sets(mc.center, q);
      assigned_[q] = 1;
    }
  }

  // --- Algorithm 6: PROCESS-REM-POINTS ----------------------------------
  std::vector<std::pair<PointId, double>> nbhd;
  for (std::size_t i = 0; i < n; ++i) {
    if (guard_ && i % kSeqCheckStride == 0)
      guard_->check_throw("algorithm 6");
    const PointId p = static_cast<PointId>(i);
    if (wndq_[p]) continue;  // query saved
    ++stats.queries_performed;

    nbhd.clear();
    if (cfg_.mbr_filtration) {
      tree_->query_neighborhood(p, eps, nbhd);
    } else {
      // Ablation: search every reachable MC's aux tree without the MBR
      // filter.
      const McId z = tree_->mc_of_point(p);
      const auto pt = ds_->point(p);
      for (McId r : tree_->mc(z).reach) {
        tree_->aux_tree(r).visit_ball(pt, eps, [&nbhd](PointId id, double d2) {
          nbhd.emplace_back(id, d2);
          return true;
        });
      }
    }

    if (nbhd.size() < min_pts) {
      // Non-core: border if some already-known core is in range, otherwise
      // provisional noise with the neighborhood remembered for Algorithm 8.
      bool attached = assigned_[p] != 0;
      if (!attached) {
        for (const auto& [q, d2] : nbhd) {
          if (is_core_[q]) {
            uf_.union_sets(q, p);
            assigned_[p] = 1;
            attached = true;
            break;
          }
        }
      }
      if (!attached) {
        noise_pts_.push_back(p);
        for (const auto& [q, d2] : nbhd)
          if (q != p) noise_nbrs_.push_back(q);
        noise_off_.push_back(static_cast<std::uint32_t>(noise_nbrs_.size()));
      }
      continue;
    }

    // Core point.
    is_core_[p] = 1;
    assigned_[p] = 1;

    // Dynamic wndq promotion (Algorithm 6 lines 18-21): if >= MinPts of the
    // neighbors sit strictly within eps/2 of p, they are pairwise strictly
    // within eps of each other, so each of them is core — no query needed.
    if (cfg_.dynamic_promotion) {
      std::size_t inner = 0;
      for (const auto& [q, d2] : nbhd)
        if (d2 < half2) ++inner;
      if (inner >= min_pts) {
        for (const auto& [q, d2] : nbhd) {
          if (d2 < half2 && !is_core_[q]) {
            is_core_[q] = 1;
            if (!wndq_[q]) {
              wndq_[q] = 1;
              wndq_list_.push_back(q);
            }
          }
        }
      }
    }

    for (const auto& [q, d2] : nbhd) {
      if (is_core_[q]) {
        uf_.union_sets(p, q);
        assigned_[q] = 1;
      } else if (!assigned_[q]) {
        uf_.union_sets(p, q);
        assigned_[q] = 1;
      }
    }
  }
  stats.wndq_core_points = wndq_list_.size();
  charge_scratch();
  stats.t_cluster = timer.seconds();
}

// Thread-parallel Algorithms 4 + 6, exact-equivalent to the sequential path
// above (full argument in docs/PARALLEL.md). Sketch:
//   * Algorithm 4 parallelizes over MCs: every point belongs to exactly one
//     MC, so member flag writes are exclusive to the owning thread; only the
//     lock-free union-find is shared.
//   * Algorithm 6 parallelizes over points. Core points publish is_core_
//     with seq_cst BEFORE scanning their neighborhood; for any two
//     concurrently-queried core neighbors the store/load pattern is Dekker's,
//     so at least one side observes the other and performs the union. Border
//     points are claimed with an atomic exchange on assigned_ (exactly one
//     core adopts an unassigned non-core neighbor — the classic parallel
//     DBSCAN border race). Missed late-promoted cores are repaired by
//     Algorithms 7/8 exactly as in the sequential engine.
//   * wndq additions and the provisional-noise CSR go to per-thread buffers
//     merged after the join, so the Algorithm 7/8 inputs keep their layout.
void MuDbscanEngine::cluster_parallel() {
  WallTimer timer;
  const std::size_t n = ds_->size();
  const double eps = params_.eps;
  const double half2 = (eps / 2.0) * (eps / 2.0);
  const std::uint32_t min_pts = params_.min_pts;
  ThreadPool* pool = pool_.get();
  const unsigned nt = pool->num_threads();

  // --- Algorithm 4 (parallel over MCs) ----------------------------------
  struct alignas(64) McAccum {
    std::uint64_t dmc = 0, cmc = 0, smc = 0;
    std::vector<PointId> wndq;
  };
  std::vector<McAccum> mc_acc(nt);
  parallel_for_chunked(
      pool, tree_->num_mcs(), 16,
      [&](std::size_t begin, std::size_t end, unsigned tid) {
        McAccum& acc = mc_acc[tid];
        for (std::size_t zi = begin; zi < end; ++zi) {
          const MicroCluster& mc = tree_->mc(static_cast<McId>(zi));
          const McKind kind = mc.classify(min_pts);
          if (kind == McKind::Sparse) {
            ++acc.smc;
            continue;
          }
          if (kind == McKind::Dense) {
            ++acc.dmc;
            const double* c = ds_->ptr(mc.center);
            for (PointId q : mc.members) {
              if (q != mc.center &&
                  sq_dist(c, ds_->ptr(q), ds_->dim()) >= half2)
                continue;
              // q is exclusive to this MC (hence this thread): plain writes.
              if (!wndq_[q]) {
                wndq_[q] = 1;
                is_core_[q] = 1;
                acc.wndq.push_back(q);
              }
            }
          } else {  // Core MC
            ++acc.cmc;
            if (!wndq_[mc.center]) {
              wndq_[mc.center] = 1;
              is_core_[mc.center] = 1;
              acc.wndq.push_back(mc.center);
            }
          }
          for (PointId q : mc.members) {
            uf_.union_sets(mc.center, q);
            assigned_[q] = 1;
          }
        }
      },
      guard_);
  for (const McAccum& acc : mc_acc) {
    stats.dmc += acc.dmc;
    stats.cmc += acc.cmc;
    stats.smc += acc.smc;
    wndq_list_.insert(wndq_list_.end(), acc.wndq.begin(), acc.wndq.end());
  }

  // --- Algorithm 6 (parallel over points) -------------------------------
  struct alignas(64) PtAccum {
    std::uint64_t queries = 0;
    std::vector<PointId> wndq;
    std::vector<PointId> noise_pts;
    std::vector<std::uint32_t> noise_len;  // neighbors stored per noise point
    std::vector<PointId> noise_nbrs;
    std::vector<std::pair<PointId, double>> nbhd;  // query scratch
  };
  std::vector<PtAccum> pt_acc(nt);

  parallel_for_chunked(
      pool, n, 64, [&](std::size_t begin, std::size_t end, unsigned tid) {
        PtAccum& acc = pt_acc[tid];
        auto& nbhd = acc.nbhd;
        for (std::size_t i = begin; i < end; ++i) {
          const PointId p = static_cast<PointId>(i);
          // A concurrent promotion may land after this check — p then runs a
          // redundant (but harmless) query, exactly like a sequential run
          // that promoted p after its turn.
          if (flag(wndq_, p).load(std::memory_order_relaxed)) continue;
          ++acc.queries;

          nbhd.clear();
          if (cfg_.mbr_filtration) {
            tree_->query_neighborhood(p, eps, nbhd);
          } else {
            const McId z = tree_->mc_of_point(p);
            const auto pt = ds_->point(p);
            for (McId r : tree_->mc(z).reach) {
              tree_->aux_tree(r).visit_ball(
                  pt, eps, [&nbhd](PointId id, double d2) {
                    nbhd.emplace_back(id, d2);
                    return true;
                  });
            }
          }

          if (nbhd.size() < min_pts) {
            bool attached =
                flag(assigned_, p).load(std::memory_order_acquire) != 0;
            if (!attached) {
              for (const auto& [q, d2] : nbhd) {
                if (flag(is_core_, q).load(std::memory_order_seq_cst)) {
                  // Claim before union: a concurrent core may adopt p via the
                  // same exchange, and only the exchange winner unions — a
                  // load/union/store here would let both unions run and
                  // bridge two clusters through non-core p.
                  if (!flag(assigned_, p)
                           .exchange(1, std::memory_order_acq_rel))
                    uf_.union_sets(q, p);
                  attached = true;
                  break;
                }
              }
            }
            if (!attached) {
              // Conservative: a neighbor may become core after this scan;
              // Algorithm 8 re-checks the stored neighborhood against the
              // final core flags and repairs the label.
              acc.noise_pts.push_back(p);
              std::uint32_t len = 0;
              for (const auto& [q, d2] : nbhd)
                if (q != p) {
                  acc.noise_nbrs.push_back(q);
                  ++len;
                }
              acc.noise_len.push_back(len);
            }
            continue;
          }

          // Core point: publish the flag BEFORE scanning neighbors (seq_cst;
          // Dekker pairing with other queried cores — see docs/PARALLEL.md).
          flag(is_core_, p).store(1, std::memory_order_seq_cst);
          flag(assigned_, p).store(1, std::memory_order_release);

          if (cfg_.dynamic_promotion) {
            std::size_t inner = 0;
            for (const auto& [q, d2] : nbhd)
              if (d2 < half2) ++inner;
            if (inner >= min_pts) {
              for (const auto& [q, d2] : nbhd) {
                if (d2 >= half2) continue;
                const bool was_core =
                    flag(is_core_, q).exchange(1, std::memory_order_seq_cst);
                if (!was_core &&
                    !flag(wndq_, q).exchange(1, std::memory_order_relaxed))
                  acc.wndq.push_back(q);
              }
            }
          }

          for (const auto& [q, d2] : nbhd) {
            if (flag(is_core_, q).load(std::memory_order_seq_cst)) {
              uf_.union_sets(p, q);
              flag(assigned_, q).store(1, std::memory_order_release);
            } else if (!flag(assigned_, q)
                            .exchange(1, std::memory_order_acq_rel)) {
              // Atomically adopted q as this cluster's border point; exactly
              // one core wins this exchange (the parallel-DBSCAN border
              // race), mirroring the sequential first-claimer rule.
              uf_.union_sets(p, q);
            }
          }
        }
      },
      guard_);

  // Per-thread scratch is the phase's hidden allocation: charge its actual
  // footprint while it coexists with the merged engine buffers, then let it
  // go out of scope (the ScopedCharge releases with it).
  ScopedCharge thread_scratch;
  if (guard_) {
    std::size_t scratch_bytes = 0;
    for (const PtAccum& acc : pt_acc)
      scratch_bytes += vector_bytes(acc.wndq) + vector_bytes(acc.noise_pts) +
                       vector_bytes(acc.noise_len) +
                       vector_bytes(acc.noise_nbrs) + vector_bytes(acc.nbhd);
    thread_scratch.acquire_throw(guard_, scratch_bytes,
                                 "per-thread scratch buffers");
  }

  for (PtAccum& acc : pt_acc) {
    stats.queries_performed += acc.queries;
    wndq_list_.insert(wndq_list_.end(), acc.wndq.begin(), acc.wndq.end());
    noise_pts_.insert(noise_pts_.end(), acc.noise_pts.begin(),
                      acc.noise_pts.end());
    noise_nbrs_.insert(noise_nbrs_.end(), acc.noise_nbrs.begin(),
                       acc.noise_nbrs.end());
    for (std::uint32_t len : acc.noise_len)
      noise_off_.push_back(noise_off_.back() + len);
  }
  stats.wndq_core_points = wndq_list_.size();
  charge_scratch();
  stats.t_cluster = timer.seconds();
}

void MuDbscanEngine::charge_scratch() {
  if (!guard_) return;
  scratch_charge_.acquire_throw(
      guard_,
      vector_bytes(wndq_list_) + vector_bytes(noise_pts_) +
          vector_bytes(noise_off_) + vector_bytes(noise_nbrs_),
      "engine worklists + noise CSR");
}

void MuDbscanEngine::post_process() {
  if (pool_) {
    post_process_parallel();
    return;
  }
  WallTimer timer;
  const double eps2 = params_.eps * params_.eps;

  // --- Algorithm 7: POST-PROCESSING-CORE --------------------------------
  // wndq-core points never ran a query, so their unions with core points of
  // *other* clusters may be missing. For each, scan the filtered reachable
  // MCs and unite with any core point strictly within eps that is not yet in
  // the same set. (Distance is only computed for cores in a different set —
  // far cheaper than a neighborhood query.)
  for (std::size_t wi = 0; wi < wndq_list_.size(); ++wi) {
    if (guard_ && wi % kSeqCheckStride == 0)
      guard_->check_throw("algorithm 7");
    const PointId p = wndq_list_[wi];
    const McId z = tree_->mc_of_point(p);
    const auto pt = ds_->point(p);
    for (McId r : tree_->mc(z).reach) {
      if (cfg_.mbr_filtration &&
          !tree_->aux_tree(r).root_mbr().overlaps_ball(pt, params_.eps))
        continue;
      for (PointId q : tree_->mc(r).members) {
        if (!is_core_[q]) continue;
        if (uf_.find(q) == uf_.find(p)) continue;
        ++stats.post_core_distance_evals;
        if (sq_dist(pt.data(), ds_->ptr(q), ds_->dim()) < eps2)
          uf_.union_sets(p, q);
      }
    }
  }

  // --- Algorithm 8: POST-PROCESSING-NOISE -------------------------------
  // A provisional noise point whose stored neighborhood now contains a core
  // point (one promoted to wndq-core after the noise point was processed)
  // is in fact a border point.
  for (std::size_t i = 0; i < noise_pts_.size(); ++i) {
    if (guard_ && i % kSeqCheckStride == 0)
      guard_->check_throw("algorithm 8");
    const PointId p = noise_pts_[i];
    if (assigned_[p]) continue;
    for (std::uint32_t j = noise_off_[i]; j < noise_off_[i + 1]; ++j) {
      const PointId q = noise_nbrs_[j];
      if (is_core_[q]) {
        uf_.union_sets(q, p);
        assigned_[p] = 1;
        break;
      }
    }
  }
  stats.t_post = timer.seconds();
}

// Thread-parallel Algorithms 7 + 8. After cluster() joins, is_core_ is final
// and read-only; Algorithm 7 writes nothing but the lock-free union-find, and
// Algorithm 8 touches assigned_[p] only for its own (unique) noise point, so
// both loops are data-parallel as-is.
void MuDbscanEngine::post_process_parallel() {
  WallTimer timer;
  const double eps2 = params_.eps * params_.eps;
  ThreadPool* pool = pool_.get();
  const unsigned nt = pool->num_threads();

  struct alignas(64) EvalAccum {
    std::uint64_t v = 0;
  };
  std::vector<EvalAccum> evals(nt);
  parallel_for_chunked(
      pool, wndq_list_.size(), 16,
      [&](std::size_t begin, std::size_t end, unsigned tid) {
        for (std::size_t i = begin; i < end; ++i) {
          const PointId p = wndq_list_[i];
          const McId z = tree_->mc_of_point(p);
          const auto pt = ds_->point(p);
          for (McId r : tree_->mc(z).reach) {
            if (cfg_.mbr_filtration &&
                !tree_->aux_tree(r).root_mbr().overlaps_ball(pt, params_.eps))
              continue;
            for (PointId q : tree_->mc(r).members) {
              if (!is_core_[q]) continue;
              // Concurrent unions may make this a stale negative — the
              // worst case is a redundant distance eval + no-op union.
              if (uf_.find(q) == uf_.find(p)) continue;
              ++evals[tid].v;
              if (sq_dist(pt.data(), ds_->ptr(q), ds_->dim()) < eps2)
                uf_.union_sets(p, q);
            }
          }
        }
      },
      guard_);
  for (const EvalAccum& e : evals) stats.post_core_distance_evals += e.v;

  parallel_for_chunked(
      pool, noise_pts_.size(), 64,
      [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t i = begin; i < end; ++i) {
          const PointId p = noise_pts_[i];
          if (assigned_[p]) continue;
          for (std::uint32_t j = noise_off_[i]; j < noise_off_[i + 1]; ++j) {
            const PointId q = noise_nbrs_[j];
            if (is_core_[q]) {
              uf_.union_sets(q, p);
              assigned_[p] = 1;
              break;
            }
          }
        }
      },
      guard_);
  stats.t_post = timer.seconds();
}

ClusteringResult MuDbscanEngine::extract_result() const {
  // uf_ is const in this context, which selects the non-compressing
  // read-only find — no const_cast needed.
  return extract_labels(std::as_const(uf_), is_core_, assigned_);
}

void MuDbscanEngine::query_neighborhood(
    PointId p, std::vector<std::pair<PointId, double>>& out) const {
  tree_->query_neighborhood(p, params_.eps, out);
}

ClusteringResult mu_dbscan(const Dataset& ds, const DbscanParams& params,
                           MuDbscanStats* stats, const MuDbscanConfig& cfg) {
  MuDbscanEngine engine(ds, params, cfg);
  engine.run_all();
  if (stats) *stats = engine.stats;
  return engine.extract_result();
}

}  // namespace udb
